// Tests for the application actors and harness plumbing: pkt_handler
// cost pacing and filter execution, queue_profiler binning, forwarding
// failure accounting, engine lifecycle edge cases, and the experiment
// harness knobs (cpu_ghz, ring_size, bus constraint).
#include <gtest/gtest.h>

#include "apps/harness.hpp"
#include "core/wirecap_engine.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::apps {
namespace {

trace::ConstantRateConfig one_flow(std::uint64_t packets,
                                   double pps = 14'880'952.0) {
  trace::ConstantRateConfig config;
  config.packet_count = packets;
  config.link_bits_per_second = pps * 84 * 8;
  Xoshiro256 rng{0xA991};
  config.flows = {trace::flow_for_queue(rng, 0, 1)};
  return config;
}

TEST(PktHandler, ProcessesAtCalibratedRate) {
  // x=300 at 2.4 GHz must process ~38,844 p/s: measure over one second
  // with an always-full queue.
  ExperimentConfig config;
  config.engine.kind = EngineKind::kWirecapBasic;
  config.engine.chunk_count = 400;  // enough buffer to never drop
  config.x = 300;
  Experiment experiment{config};
  auto trace_config = one_flow(60'000, 60'000.0);  // 1 s of 60 kp/s
  trace::ConstantRateSource source{trace_config};
  const auto result = experiment.run(source, Nanos::from_seconds(1.0));
  EXPECT_NEAR(static_cast<double>(result.processed), 38'844.0, 450.0);
}

TEST(PktHandler, SlowCoreScalesRate) {
  ExperimentConfig config;
  config.engine.kind = EngineKind::kWirecapBasic;
  config.engine.chunk_count = 400;
  config.x = 300;
  config.cpu_ghz = 1.2;  // half the reference clock
  Experiment experiment{config};
  auto trace_config = one_flow(60'000, 60'000.0);
  trace::ConstantRateSource source{trace_config};
  const auto result = experiment.run(source, Nanos::from_seconds(1.0));
  EXPECT_NEAR(static_cast<double>(result.processed), 38'844.0 / 2, 300.0);
}

TEST(PktHandler, ExecutesRealFilter) {
  // With execute_filter on, matched counts actual BPF hits: half the
  // packets are UDP in 131.225.2/24.
  ExperimentConfig config;
  config.engine.kind = EngineKind::kDna;
  config.x = 0;
  config.execute_filter = true;
  config.filter = "131.225.2 and udp";
  Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 2'000;
  trace_config.link_bits_per_second = 1e5 * 84 * 8;
  trace_config.flows = {
      net::FlowKey{net::Ipv4Addr{131, 225, 2, 1}, net::Ipv4Addr{9, 9, 9, 9},
                   1, 53, net::IpProto::kUdp},
      net::FlowKey{net::Ipv4Addr{77, 1, 1, 1}, net::Ipv4Addr{9, 9, 9, 9}, 2,
                   80, net::IpProto::kTcp}};
  trace::ConstantRateSource source{trace_config};
  const auto result = experiment.run(source, Nanos::from_seconds(1));
  EXPECT_EQ(result.processed, 2'000u);
  EXPECT_EQ(experiment.handler(0).stats().matched, 1'000u);
}

TEST(PktHandler, ForwardFailuresCountedWhenTxRingFull) {
  ExperimentConfig config;
  config.engine.kind = EngineKind::kWirecapBasic;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 60;
  config.ring_size = 1024;
  config.x = 0;
  config.forward = true;
  Experiment experiment{config};
  // Starve the TX ring: shrink it is not configurable per side, so
  // instead check the success path accounting is exact.
  auto trace_config = one_flow(3'000, 100'000.0);
  trace::ConstantRateSource source{trace_config};
  const auto result = experiment.run(source, Nanos::from_seconds(2));
  const auto& stats = experiment.handler(0).stats();
  EXPECT_EQ(stats.forwarded + stats.forward_failures, stats.processed);
  EXPECT_EQ(result.forwarded_received, stats.forwarded);
}

TEST(QueueProfiler, BinsArrivalsAtConfiguredWidth) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore core{scheduler, 0};
  const sim::CostModel costs;
  QueueProfiler profiler{core, engine, 0, costs, Nanos::from_millis(10)};

  // 100 packets at 1 p/ms: 10 per 10 ms bin.
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 100;
  trace_config.link_bits_per_second = 1000.0 * 84 * 8;
  Xoshiro256 rng{0xA993};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(1));

  const BinnedSeries& series = profiler.series();
  EXPECT_EQ(series.total(), 100u);
  ASSERT_GE(series.bin_count(), 10u);
  for (std::size_t bin = 0; bin + 1 < 10; ++bin) {
    EXPECT_EQ(series.bin(bin), 10u) << "bin " << bin;
  }
}

TEST(Engine, DoubleOpenIsIdempotent) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore core{scheduler, 0};
  engine.open(0, core);
  const auto free_before = engine.pool(0).free_chunks();
  engine.open(0, core);
  EXPECT_EQ(engine.pool(0).free_chunks(), free_before);
}

TEST(Engine, CloseStopsDelivery) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore core{scheduler, 0};
  engine.open(0, core);
  engine.close(0);
  scheduler.run_until(Nanos::from_millis(5));
  EXPECT_FALSE(engine.try_next(0).has_value());
}

TEST(Harness, BusConstraintCausesDrops) {
  // A bus slower than the offered DMA rate must surface as capture
  // drops even with a fast application.
  ExperimentConfig config;
  config.engine.kind = EngineKind::kDna;
  config.x = 0;
  config.bus_transactions_per_second = 5e6;  // < 14.88M offered
  Experiment experiment{config};
  auto trace_config = one_flow(200'000);
  trace::ConstantRateSource source{trace_config};
  const auto result = experiment.run(source, Nanos::from_seconds(1));
  EXPECT_GT(result.drop_rate(), 0.5);
}

TEST(Harness, RingSizeMattersForType2) {
  const auto run_with_ring = [](std::uint32_t ring) {
    ExperimentConfig config;
    config.engine.kind = EngineKind::kDna;
    config.ring_size = ring;
    config.x = 300;
    Experiment experiment{config};
    auto trace_config = one_flow(20'000);
    trace::ConstantRateSource source{trace_config};
    return experiment.run(source, Nanos::from_seconds(1)).drop_rate();
  };
  // A bigger ring buffers more of the burst (Type-II buffering is
  // ring-bound).
  EXPECT_LT(run_with_ring(4096), run_with_ring(512));
}

}  // namespace
}  // namespace wirecap::apps
