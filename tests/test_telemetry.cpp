// Unit tests for src/telemetry: registry semantics, tracer ring
// behaviour, exporter determinism and validity, sampler wiring, and the
// harness integration (one metrics tree per experiment).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/harness.hpp"
#include "apps/pkt_handler.hpp"
#include "engines/baselines.hpp"
#include "nic/wire.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tracer.hpp"
#include "trace/border_router.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap {
namespace {

using telemetry::EventTracer;
using telemetry::MetricRegistry;
using telemetry::TraceEvent;
using telemetry::TracePhase;

// --- a minimal recursive-descent JSON validator (syntax only) ---

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  [[nodiscard]] bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return eat('"');
  }
  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  [[nodiscard]] bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': {
        ++pos_;
        skip_ws();
        if (eat('}')) return true;
        while (true) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (!eat(':')) return false;
          if (!value()) return false;
          skip_ws();
          if (eat('}')) return true;
          if (!eat(',')) return false;
        }
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (eat(']')) return true;
        while (true) {
          if (!value()) return false;
          skip_ws();
          if (eat(']')) return true;
          if (!eat(',')) return false;
        }
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// --- registry ---

TEST(MetricRegistry, OwnedGetOrCreateSharesTheCell) {
  MetricRegistry registry;
  auto a = registry.counter("engine.q0.delivered");
  auto b = registry.counter("engine.q0.delivered");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistry, KindCollisionThrows) {
  MetricRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x"), std::logic_error);
  EXPECT_THROW(registry.bind_gauge("x", [] { return 0.0; }),
               std::logic_error);
  // Same name + same kind is fine (bound source replaced).
  registry.bind_counter("y", [] { return 1u; });
  registry.bind_counter("y", [] { return 2u; });
  EXPECT_EQ(MetricRegistry::counter_value(registry.entries().at("y")), 2u);
}

TEST(MetricRegistry, EmptyNameThrows) {
  MetricRegistry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
}

TEST(MetricRegistry, LabeledSortsKeys) {
  EXPECT_EQ(MetricRegistry::labeled("drops", {{"queue", "3"}, {"nic", "1"}}),
            "drops{nic=1,queue=3}");
}

TEST(MetricRegistry, SanitizeComponent) {
  EXPECT_EQ(MetricRegistry::sanitize_component("WireCAP-A"), "wirecap_a");
  EXPECT_EQ(MetricRegistry::sanitize_component("DPDK+app-offload"),
            "dpdk_app_offload");
}

TEST(MetricRegistry, EntriesIterateSorted) {
  MetricRegistry registry;
  registry.counter("b");
  registry.counter("a");
  registry.counter("c");
  std::vector<std::string> names;
  for (const auto& [name, entry] : registry.entries()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

// --- tracer ---

TEST(EventTracer, DisabledRecordsNothing) {
  EventTracer tracer{8};
  tracer.instant("e", "t", Nanos{1}, 0);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  telemetry::EventTracer* null_tracer = nullptr;
  WIRECAP_TRACE(null_tracer, instant("e", "t", Nanos{1}, 0));  // must not crash
}

TEST(EventTracer, RingWrapKeepsMostRecent) {
  EventTracer tracer{4};
  tracer.set_enabled(true);
  for (std::int64_t i = 0; i < 20; ++i) {
    tracer.instant("e", "t", Nanos{i}, 0);
  }
  EXPECT_EQ(tracer.total_recorded(), 20u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 16u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Chronological, oldest first: the last four recorded.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].ts_ns, static_cast<std::int64_t>(16 + i));
  }
}

TEST(EventTracer, SetCapacityClearsAndZeroThrows) {
  EventTracer tracer{4};
  tracer.set_enabled(true);
  tracer.instant("e", "t", Nanos{1}, 0);
  tracer.set_capacity(8);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_THROW(tracer.set_capacity(0), std::invalid_argument);
}

// --- exporters ---

TEST(Export, MetricsJsonIsValidAndCsvHasHeader) {
  telemetry::Telemetry tel;
  tel.registry.counter("a.count").add(7);
  tel.registry.gauge("b.depth").set(2.5);
  auto hist = tel.registry.histogram("c.latency");
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);
  auto summary = tel.registry.summary("d.summary");
  summary.record(1.0);
  summary.record(2.0);
  auto series = tel.registry.series("e.series", Nanos::from_millis(10));
  series.record(Nanos::from_millis(5), 3);

  const std::string json = telemetry::metrics_to_json(tel.registry);
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"wirecap.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);

  const std::string csv = telemetry::metrics_to_csv(tel.registry);
  EXPECT_EQ(csv.rfind("name,kind,count,value,p50,p90,p99,min,max,mean\n", 0),
            0u);
}

TEST(Export, TraceJsonIsValidChromeTrace) {
  EventTracer tracer{16};
  tracer.set_enabled(true);
  tracer.instant("chunk.offload", "engine", Nanos{1000}, 2, "to_queue", 3);
  tracer.complete("capture.poll", "engine", Nanos{2000}, Nanos{500}, 0,
                  "chunks", 2, "copied_pkts", 0);
  tracer.counter("pool.free", Nanos{3000}, 0, 97.5);
  const std::string json = telemetry::trace_to_chrome_json(tracer);
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

// --- sampler ---

TEST(Sampler, TicksRunProbesAndEmitGaugeCounters) {
  sim::Scheduler scheduler;
  telemetry::Telemetry tel;
  tel.tracer.set_enabled(true);
  double depth = 1.0;
  tel.registry.bind_gauge("q.depth", [&depth] { return depth; });
  std::uint64_t probe_calls = 0;
  tel.probes.push_back([&probe_calls](Nanos) { ++probe_calls; });

  telemetry::Sampler sampler{scheduler, tel, Nanos::from_millis(1)};
  sampler.start();
  scheduler.run_until(Nanos::from_millis(10.5));
  EXPECT_EQ(sampler.ticks(), 10u);
  EXPECT_EQ(probe_calls, 10u);
  // One counter trace event per gauge per tick.
  std::size_t counters = 0;
  for (const auto& event : tel.tracer.events()) {
    if (event.phase == TracePhase::kCounter) ++counters;
  }
  EXPECT_EQ(counters, 10u);
  EXPECT_THROW((telemetry::Sampler{scheduler, tel, Nanos::zero()}),
               std::invalid_argument);
}

// --- harness integration: one tree, deterministic snapshots ---

struct SmallRun {
  std::string metrics_json;
  std::string trace_json;
  apps::ExperimentResult result;
};

SmallRun small_wirecap_run() {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 40;
  config.num_queues = 2;
  config.x = 0;
  config.telemetry.trace = true;
  config.telemetry.trace_capacity = 1u << 14;
  config.telemetry.sample_interval = Nanos::from_millis(1);
  apps::Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 50'000;
  Xoshiro256 rng{0xFEED};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 2),
                        trace::flow_for_queue(rng, 1, 2)};
  trace::ConstantRateSource source{trace_config};
  const Nanos horizon = Nanos::from_seconds(
      50'000.0 / source.rate().per_second() + 0.5);
  SmallRun run;
  run.result = experiment.run(source, horizon);
  run.metrics_json = telemetry::metrics_to_json(experiment.telemetry().registry);
  run.trace_json = telemetry::trace_to_chrome_json(experiment.telemetry().tracer);
  return run;
}

TEST(Harness, MetricsTreeCoversEngineNicCoreAndApp) {
  const SmallRun run = small_wirecap_run();
  for (const char* name :
       {"engine.wirecap_a.q0.delivered", "engine.wirecap_a.q1.delivered",
        "engine.wirecap_a.q0.delivery_dropped",
        "engine.wirecap_a.q0.chunks_offloaded_out",
        "engine.wirecap_a.q0.chunks_offloaded_in",
        "engine.wirecap_a.q0.pool.free_chunks",
        "engine.wirecap_a.q0.capture_queue.depth",
        "engine.wirecap_a.q0.capture_queue.high_water",
        "engine.wirecap_a.q0.driver.chunks_captured", "nic.q0.rx_received",
        "nic.total_rx_dropped", "core.q0.app_core.utilization",
        "app.q0.processed"}) {
    EXPECT_NE(run.metrics_json.find(std::string{"\""} + name + "\""),
              std::string::npos)
        << "missing metric: " << name;
  }
  EXPECT_TRUE(JsonChecker{run.metrics_json}.valid());
  EXPECT_TRUE(JsonChecker{run.trace_json}.valid());
  // The capture stack leaves events in the trace.
  EXPECT_NE(run.trace_json.find("chunk.capture"), std::string::npos);
  EXPECT_NE(run.trace_json.find("chunk.dequeue"), std::string::npos);
  EXPECT_GT(run.result.delivered, 0u);
}

TEST(Harness, SnapshotsAreByteIdenticalAcrossIdenticalRuns) {
  const SmallRun a = small_wirecap_run();
  const SmallRun b = small_wirecap_run();
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

// --- golden file: a small fig03-style run through the file writers ---

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

TEST(GoldenFile, Fig03StyleRunWritesValidChromeTrace) {
  // A shrunken Figure-3 wiring: border trace into 2 queues, DNA engine,
  // queue profilers, tracer + sampler on.
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 2;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  engines::Type2Engine dna{nic, engines::dna_config()};

  const sim::CostModel costs;
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::QueueProfiler>> profilers;
  for (std::uint32_t q = 0; q < 2; ++q) {
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
    profilers.push_back(
        std::make_unique<apps::QueueProfiler>(*cores[q], dna, q, costs));
  }

  telemetry::Telemetry tel;
  tel.tracer.set_enabled(true);
  dna.bind_telemetry(tel, "engine.dna", 2);
  tel.registry.bind_series("app.q0.arrivals_per_10ms",
                           &profilers[0]->series());
  telemetry::Sampler sampler{scheduler, tel, Nanos::from_millis(10)};
  sampler.start();

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = 0.25;
  trace_config.num_queues = 2;
  trace_config.hot_queue = 0;
  trace_config.bursty_queue = 1;
  auto source = trace::make_border_router_source(trace_config);
  nic::TrafficInjector injector{scheduler, *source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(0.5));

  const std::string metrics_path = "test_telemetry_metrics.golden.json";
  const std::string trace_path = "test_telemetry_trace.golden.json";
  ASSERT_TRUE(telemetry::write_metrics(tel.registry, metrics_path));
  ASSERT_TRUE(telemetry::write_trace(tel.tracer, trace_path));

  // The files round-trip exactly and parse as JSON.
  EXPECT_EQ(read_file(metrics_path),
            telemetry::metrics_to_json(tel.registry));
  const std::string trace_json = read_file(trace_path);
  EXPECT_EQ(trace_json, telemetry::trace_to_chrome_json(tel.tracer));
  EXPECT_TRUE(JsonChecker{trace_json}.valid());
  EXPECT_NE(trace_json.find("\"displayTimeUnit\""), std::string::npos);
  // The sampler turned the engine gauges into counter series.
  EXPECT_NE(trace_json.find("engine.dna.q0.released.pending"),
            std::string::npos);
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Export, CsvPathSelectsCsv) {
  telemetry::Telemetry tel;
  tel.registry.counter("a").add(1);
  const std::string path = "test_telemetry_metrics.golden.csv";
  ASSERT_TRUE(telemetry::write_metrics(tel.registry, path));
  const std::string content = read_file(path);
  EXPECT_EQ(content.rfind("name,kind,", 0), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wirecap
