// Unit tests for src/telemetry: registry semantics, tracer ring
// behaviour, exporter determinism and validity, sampler wiring, and the
// harness integration (one metrics tree per experiment).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <algorithm>
#include <cmath>

#include "apps/harness.hpp"
#include "apps/pkt_handler.hpp"
#include "common/stats.hpp"
#include "core/wirecap_engine.hpp"
#include "engines/baselines.hpp"
#include "nic/wire.hpp"
#include "telemetry/export.hpp"
#include "telemetry/latency.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tracer.hpp"
#include "trace/border_router.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap {
namespace {

using telemetry::EventTracer;
using telemetry::MetricRegistry;
using telemetry::TraceEvent;
using telemetry::TracePhase;

// --- a minimal recursive-descent JSON validator (syntax only) ---

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  [[nodiscard]] bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return eat('"');
  }
  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  [[nodiscard]] bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': {
        ++pos_;
        skip_ws();
        if (eat('}')) return true;
        while (true) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (!eat(':')) return false;
          if (!value()) return false;
          skip_ws();
          if (eat('}')) return true;
          if (!eat(',')) return false;
        }
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (eat(']')) return true;
        while (true) {
          if (!value()) return false;
          skip_ws();
          if (eat(']')) return true;
          if (!eat(',')) return false;
        }
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// --- registry ---

TEST(MetricRegistry, OwnedGetOrCreateSharesTheCell) {
  MetricRegistry registry;
  auto a = registry.counter("engine.q0.delivered");
  auto b = registry.counter("engine.q0.delivered");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistry, KindCollisionThrows) {
  MetricRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x"), std::logic_error);
  EXPECT_THROW(registry.bind_gauge("x", [] { return 0.0; }),
               std::logic_error);
  // Same name + same kind is fine (bound source replaced).
  registry.bind_counter("y", [] { return 1u; });
  registry.bind_counter("y", [] { return 2u; });
  EXPECT_EQ(MetricRegistry::counter_value(registry.entries().at("y")), 2u);
}

TEST(MetricRegistry, EmptyNameThrows) {
  MetricRegistry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
}

TEST(MetricRegistry, LabeledSortsKeys) {
  EXPECT_EQ(MetricRegistry::labeled("drops", {{"queue", "3"}, {"nic", "1"}}),
            "drops{nic=1,queue=3}");
}

TEST(MetricRegistry, SanitizeComponent) {
  EXPECT_EQ(MetricRegistry::sanitize_component("WireCAP-A"), "wirecap_a");
  EXPECT_EQ(MetricRegistry::sanitize_component("DPDK+app-offload"),
            "dpdk_app_offload");
}

TEST(MetricRegistry, EntriesIterateSorted) {
  MetricRegistry registry;
  registry.counter("b");
  registry.counter("a");
  registry.counter("c");
  std::vector<std::string> names;
  for (const auto& [name, entry] : registry.entries()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

// --- tracer ---

TEST(EventTracer, DisabledRecordsNothing) {
  EventTracer tracer{8};
  tracer.instant("e", "t", Nanos{1}, 0);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  telemetry::EventTracer* null_tracer = nullptr;
  WIRECAP_TRACE(null_tracer, instant("e", "t", Nanos{1}, 0));  // must not crash
}

TEST(EventTracer, RingWrapKeepsMostRecent) {
  EventTracer tracer{4};
  tracer.set_enabled(true);
  for (std::int64_t i = 0; i < 20; ++i) {
    tracer.instant("e", "t", Nanos{i}, 0);
  }
  EXPECT_EQ(tracer.total_recorded(), 20u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 16u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Chronological, oldest first: the last four recorded.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].ts_ns, static_cast<std::int64_t>(16 + i));
  }
}

TEST(EventTracer, SetCapacityClearsAndZeroThrows) {
  EventTracer tracer{4};
  tracer.set_enabled(true);
  tracer.instant("e", "t", Nanos{1}, 0);
  tracer.set_capacity(8);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_THROW(tracer.set_capacity(0), std::invalid_argument);
}

// --- HDR histogram ---

TEST(HdrHistogram, SmallValuesLandInExactBuckets) {
  telemetry::HdrHistogram hist;
  for (std::int64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(telemetry::HdrHistogram::index_of(static_cast<std::uint64_t>(v)),
              static_cast<std::size_t>(v));
    hist.record(v);
  }
  EXPECT_EQ(hist.count(), 32u);
  EXPECT_EQ(hist.max_value(), 31u);
  // Below 32 every bucket is width 1, so quantiles are exact (up to the
  // in-bucket interpolation, which stays inside the 1-wide bucket).
  EXPECT_NEAR(hist.quantile(0.5), 16.0, 1.0);
  EXPECT_NEAR(hist.quantile(1.0), 31.0, 1.0);
  // Negative samples clamp to zero instead of indexing garbage.
  hist.record(-5);
  EXPECT_EQ(hist.count(), 33u);
}

TEST(HdrHistogram, BucketGeometryBoundsRelativeError) {
  // Every bucket above the exact range spans at most 1/32 of its floor:
  // that is the structural error bound the quantile test leans on.
  for (const std::uint64_t v :
       {32ull, 33ull, 100ull, 1023ull, 1024ull, 123'456'789ull,
        (1ull << 40) + 12345ull}) {
    const std::size_t index = telemetry::HdrHistogram::index_of(v);
    const std::uint64_t floor = telemetry::HdrHistogram::bucket_floor(index);
    const std::uint64_t width = telemetry::HdrHistogram::bucket_width(index);
    EXPECT_LE(floor, v);
    EXPECT_LT(v, floor + width) << v;
    EXPECT_LE(width, std::max<std::uint64_t>(1, floor / 16)) << v;
  }
}

TEST(HdrHistogram, QuantilesTrackExactAndBeatLog2) {
  // One stream, three consumers: an exact sorted reference, the new HDR
  // histogram, and the coarse Log2Histogram.  HDR must land within one
  // sub-bucket of the exact value; Log2 only within its octave.
  Xoshiro256 rng{0xD15C0};
  telemetry::HdrHistogram hdr;
  Log2Histogram log2;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20'000; ++i) {
    // Span several octaves, as real latencies do.
    const std::uint64_t v = 1000 + rng.next_below(1u << 20);
    values.push_back(v);
    hdr.record(static_cast<std::int64_t>(v));
    log2.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = static_cast<double>(
        values[static_cast<std::size_t>(
            q * static_cast<double>(values.size() - 1))]);
    const double hdr_q = hdr.quantile(q);
    // Within one sub-bucket (~1/16 of the value) plus interpolation slop.
    EXPECT_NEAR(hdr_q, exact, exact / 8.0 + 2.0) << "q=" << q;
    const double log2_q = log2.quantile(q);
    EXPECT_GE(log2_q, exact / 2.0) << "q=" << q;
    EXPECT_LE(log2_q, exact * 2.0 + 2.0) << "q=" << q;
  }
}

TEST(HdrHistogram, MergeMatchesSinglePassAndResetClears) {
  Xoshiro256 rng{0xACC};
  telemetry::HdrHistogram whole;
  telemetry::HdrHistogram first;
  telemetry::HdrHistogram second;
  for (int i = 0; i < 5'000; ++i) {
    const std::int64_t v = static_cast<std::int64_t>(rng.next_below(1u << 24));
    whole.record(v);
    (i % 2 == 0 ? first : second).record(v);
  }
  first.merge(second);
  EXPECT_EQ(first.count(), whole.count());
  EXPECT_EQ(first.max_value(), whole.max_value());
  for (const double q : {0.01, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(first.quantile(q), whole.quantile(q)) << "q=" << q;
  }
  first.reset();
  EXPECT_EQ(first.count(), 0u);
  EXPECT_EQ(first.max_value(), 0u);
  EXPECT_EQ(first.quantile(0.5), 0.0);
}

// --- flight recorder ---

telemetry::ChunkJourney make_journey(std::int64_t arrival,
                                     std::int64_t e2e,
                                     std::uint32_t chunk) {
  telemetry::ChunkJourney j;
  j.ring = 1;
  j.chunk = chunk;
  j.pkt_count = 8;
  j.arrival_ns = arrival;
  j.captured_ns = arrival + e2e / 4;
  j.enqueued_ns = arrival + e2e / 4;
  j.dequeued_ns = arrival + e2e / 2;
  j.released_ns = arrival + e2e;
  return j;
}

TEST(FlightRecorder, RetainsOutliersAboveThreshold) {
  telemetry::FlightRecorder recorder{4};
  recorder.set_threshold(Nanos::from_micros(10));
  for (std::uint32_t i = 0; i < 8; ++i) {
    recorder.push(make_journey(1000 * i, 1000, i));  // 1 us: under
  }
  EXPECT_EQ(recorder.outliers_seen(), 0u);
  // The ring only keeps the last 4.
  const auto recent = recorder.recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().chunk, 4u);
  EXPECT_EQ(recent.back().chunk, 7u);

  recorder.push(make_journey(9000, 50'000, 99));  // 50 us: outlier
  EXPECT_EQ(recorder.outliers_seen(), 1u);
  ASSERT_EQ(recorder.outliers().size(), 1u);
  EXPECT_EQ(recorder.outliers()[0].chunk, 99u);
  const std::string dump = recorder.dump();
  EXPECT_NE(dump.find("chunk=99"), std::string::npos) << dump;
  EXPECT_NE(dump.find("queue_wait"), std::string::npos) << dump;
  recorder.clear();
  EXPECT_TRUE(recorder.recent().empty());
  EXPECT_TRUE(recorder.outliers().empty());
}

TEST(LatencyTracker, DiscardsIncompleteJourneys) {
  telemetry::LatencyTracker tracker;
  tracker.set_enabled(true);
  telemetry::ChunkJourney partial;
  partial.arrival_ns = 100;
  partial.captured_ns = 200;  // never enqueued/dequeued/released
  tracker.record_journey(partial);
  EXPECT_EQ(tracker.journeys_recorded(), 0u);
  EXPECT_EQ(tracker.journeys_incomplete(), 1u);
  tracker.record_journey(make_journey(100, 4000, 7));
  EXPECT_EQ(tracker.journeys_recorded(), 1u);
  using Stage = telemetry::LatencyTracker::Stage;
  EXPECT_GT(tracker.stage_quantile(1, Stage::kE2e, 0.5), 0.0);
  // Unknown queues read zero instead of faulting.
  EXPECT_EQ(tracker.stage_quantile(42, Stage::kE2e, 0.5), 0.0);
}

// --- exporters ---

TEST(Export, MetricsJsonIsValidAndCsvHasHeader) {
  telemetry::Telemetry tel;
  tel.registry.counter("a.count").add(7);
  tel.registry.gauge("b.depth").set(2.5);
  auto hist = tel.registry.histogram("c.latency");
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);
  auto summary = tel.registry.summary("d.summary");
  summary.record(1.0);
  summary.record(2.0);
  auto series = tel.registry.series("e.series", Nanos::from_millis(10));
  series.record(Nanos::from_millis(5), 3);

  const std::string json = telemetry::metrics_to_json(tel.registry);
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"wirecap.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);

  const std::string csv = telemetry::metrics_to_csv(tel.registry);
  EXPECT_EQ(csv.rfind("name,kind,count,value,p50,p90,p99,min,max,mean\n", 0),
            0u);
}

TEST(Export, TraceJsonIsValidChromeTrace) {
  EventTracer tracer{16};
  tracer.set_enabled(true);
  tracer.instant("chunk.offload", "engine", Nanos{1000}, 2, "to_queue", 3);
  tracer.complete("capture.poll", "engine", Nanos{2000}, Nanos{500}, 0,
                  "chunks", 2, "copied_pkts", 0);
  tracer.counter("pool.free", Nanos{3000}, 0, 97.5);
  const std::string json = telemetry::trace_to_chrome_json(tracer);
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Export, HostileMetricNamesStayValidJson) {
  telemetry::Telemetry tel;
  tel.registry.counter("evil\"quote").add(1);
  tel.registry.counter("back\\slash").add(2);
  tel.registry.counter(std::string{"ctrl\x01\r\b\f"} + "tail").add(3);
  const std::string json = telemetry::metrics_to_json(tel.registry);
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  EXPECT_NE(json.find("evil\\\"quote"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\b"), std::string::npos);
  EXPECT_NE(json.find("\\f"), std::string::npos);
  // No raw control byte may survive into the document.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(Export, HostileMetricNamesCannotSmuggleCsvColumns) {
  telemetry::Telemetry tel;
  tel.registry.counter("comma,name").add(1);
  tel.registry.counter("quote\"name").add(2);
  tel.registry.counter("plain.name").add(3);
  const std::string csv = telemetry::metrics_to_csv(tel.registry);
  // RFC 4180: the hostile fields come out quoted, inner quotes doubled.
  EXPECT_NE(csv.find("\"comma,name\",counter"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"quote\"\"name\",counter"), std::string::npos) << csv;
  EXPECT_NE(csv.find("plain.name,counter"), std::string::npos) << csv;
  // Every row still has exactly 10 columns: count separators outside
  // quoted fields.
  std::size_t line_start = 0;
  std::size_t rows = 0;
  bool in_quotes = false;
  std::size_t commas = 0;
  for (std::size_t i = 0; i < csv.size(); ++i) {
    if (csv[i] == '"') {
      in_quotes = !in_quotes;
    } else if (csv[i] == ',' && !in_quotes) {
      ++commas;
    } else if (csv[i] == '\n' && !in_quotes) {
      EXPECT_EQ(commas, 9u) << csv.substr(line_start, i - line_start);
      commas = 0;
      line_start = i + 1;
      ++rows;
    }
  }
  EXPECT_EQ(rows, 4u);  // header + three metrics
}

TEST(Export, HostileTraceNamesStayValidJson) {
  EventTracer tracer{8};
  tracer.set_enabled(true);
  tracer.instant("bad\"name\n", "cat\\egory", Nanos{100}, 0, "arg\"0", 7);
  const std::string json = telemetry::trace_to_chrome_json(tracer);
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  EXPECT_NE(json.find("bad\\\"name\\n"), std::string::npos);
}

// --- sampler ---

TEST(Sampler, TicksRunProbesAndEmitGaugeCounters) {
  sim::Scheduler scheduler;
  telemetry::Telemetry tel;
  tel.tracer.set_enabled(true);
  double depth = 1.0;
  tel.registry.bind_gauge("q.depth", [&depth] { return depth; });
  std::uint64_t probe_calls = 0;
  tel.probes.push_back([&probe_calls](Nanos) { ++probe_calls; });

  telemetry::Sampler sampler{scheduler, tel, Nanos::from_millis(1)};
  sampler.start();
  scheduler.run_until(Nanos::from_millis(10.5));
  EXPECT_EQ(sampler.ticks(), 10u);
  EXPECT_EQ(probe_calls, 10u);
  // One counter trace event per gauge per tick.
  std::size_t counters = 0;
  for (const auto& event : tel.tracer.events()) {
    if (event.phase == TracePhase::kCounter) ++counters;
  }
  EXPECT_EQ(counters, 10u);
  EXPECT_THROW((telemetry::Sampler{scheduler, tel, Nanos::zero()}),
               std::invalid_argument);
}

// --- harness integration: one tree, deterministic snapshots ---

struct SmallRun {
  std::string metrics_json;
  std::string trace_json;
  apps::ExperimentResult result;
};

SmallRun small_wirecap_run() {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 40;
  config.num_queues = 2;
  config.x = 0;
  config.telemetry.trace = true;
  config.telemetry.trace_capacity = 1u << 14;
  config.telemetry.sample_interval = Nanos::from_millis(1);
  apps::Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 50'000;
  Xoshiro256 rng{0xFEED};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 2),
                        trace::flow_for_queue(rng, 1, 2)};
  trace::ConstantRateSource source{trace_config};
  const Nanos horizon = Nanos::from_seconds(
      50'000.0 / source.rate().per_second() + 0.5);
  SmallRun run;
  run.result = experiment.run(source, horizon);
  run.metrics_json = telemetry::metrics_to_json(experiment.telemetry().registry);
  run.trace_json = telemetry::trace_to_chrome_json(experiment.telemetry().tracer);
  return run;
}

TEST(Harness, MetricsTreeCoversEngineNicCoreAndApp) {
  const SmallRun run = small_wirecap_run();
  for (const char* name :
       {"engine.wirecap_a.q0.delivered", "engine.wirecap_a.q1.delivered",
        "engine.wirecap_a.q0.delivery_dropped",
        "engine.wirecap_a.q0.chunks_offloaded_out",
        "engine.wirecap_a.q0.chunks_offloaded_in",
        "engine.wirecap_a.q0.pool.free_chunks",
        "engine.wirecap_a.q0.capture_queue.depth",
        "engine.wirecap_a.q0.capture_queue.high_water",
        "engine.wirecap_a.q0.driver.chunks_captured", "nic.q0.rx_received",
        "nic.total_rx_dropped", "core.q0.app_core.utilization",
        "app.q0.processed"}) {
    EXPECT_NE(run.metrics_json.find(std::string{"\""} + name + "\""),
              std::string::npos)
        << "missing metric: " << name;
  }
  EXPECT_TRUE(JsonChecker{run.metrics_json}.valid());
  EXPECT_TRUE(JsonChecker{run.trace_json}.valid());
  // The capture stack leaves events in the trace.
  EXPECT_NE(run.trace_json.find("chunk.capture"), std::string::npos);
  EXPECT_NE(run.trace_json.find("chunk.dequeue"), std::string::npos);
  EXPECT_GT(run.result.delivered, 0u);
}

TEST(Harness, SnapshotsAreByteIdenticalAcrossIdenticalRuns) {
  const SmallRun a = small_wirecap_run();
  const SmallRun b = small_wirecap_run();
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(Harness, LatencyGaugesPublishJourneyPercentiles) {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 40;
  config.num_queues = 2;
  config.telemetry.trace = true;
  // Room for the full run: the 32 extra latency gauges produce sampler
  // counter events that would wrap a 2^14 ring during the drain tail.
  config.telemetry.trace_capacity = 1u << 16;
  config.telemetry.sample_interval = Nanos::from_millis(1);
  config.telemetry.latency = true;
  apps::Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 50'000;
  Xoshiro256 rng{0xFEED};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 2),
                        trace::flow_for_queue(rng, 1, 2)};
  trace::ConstantRateSource source{trace_config};
  const Nanos horizon = Nanos::from_seconds(
      50'000.0 / source.rate().per_second() + 0.5);
  const apps::ExperimentResult result = experiment.run(source, horizon);
  EXPECT_GT(result.delivered, 0u);

  const auto& latency = experiment.telemetry().latency;
  EXPECT_GT(latency.journeys_recorded(), 0u);
  using Stage = telemetry::LatencyTracker::Stage;
  for (const Stage stage :
       {Stage::kE2e, Stage::kCapture, Stage::kQueueWait, Stage::kDeliver}) {
    EXPECT_LE(latency.stage_quantile(0, stage, 0.5),
              latency.stage_quantile(0, stage, 0.999));
  }
  EXPECT_GT(latency.stage_quantile(0, Stage::kE2e, 0.5), 0.0);

  // Every stage x quantile gauge is published, per queue, and the
  // sampled snapshot carries real values.
  const std::string metrics =
      telemetry::metrics_to_json(experiment.telemetry().registry);
  for (const char* queue : {"q0", "q1"}) {
    for (const char* stage : {"e2e", "capture", "queue_wait", "deliver"}) {
      for (const char* quantile : {"p50", "p90", "p99", "p999"}) {
        const std::string name = std::string{"engine.wirecap_a."} + queue +
                                 ".latency." + stage + "." + quantile;
        EXPECT_NE(metrics.find("\"" + name + "\""), std::string::npos)
            << "missing gauge: " << name;
      }
    }
  }
  const auto& entries = experiment.telemetry().registry.entries();
  EXPECT_GT(MetricRegistry::gauge_value(
                entries.at("engine.wirecap_a.q0.latency.e2e.p50")),
            0.0);

  // Completed journeys land in the trace as Chrome-trace complete spans.
  const std::string trace =
      telemetry::trace_to_chrome_json(experiment.telemetry().tracer);
  EXPECT_NE(trace.find("chunk.journey"), std::string::npos);
}

TEST(Harness, LatencyGaugesAbsentWhenDisabled) {
  const SmallRun run = small_wirecap_run();
  EXPECT_EQ(run.metrics_json.find(".latency."), std::string::npos);
}

// --- queue close/reopen: gauges must tombstone, not go stale ---

TEST(EngineTelemetry, ClosedQueueGaugesReadZeroUntilReopen) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 1;
  nic_config.rx_ring_size = 32;  // R must exceed ring_size / M
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 8;
  engine_config.chunk_count = 12;
  const sim::CostModel costs;
  core::WirecapEngine engine{scheduler, nic, engine_config, costs};
  telemetry::Telemetry tel;
  engine.bind_telemetry(tel, "eng", 1);
  sim::SimCore core{scheduler, 0};
  engine.open(0, core);

  const auto gauge = [&tel](const char* name) {
    return MetricRegistry::gauge_value(tel.registry.entries().at(name));
  };
  EXPECT_GT(gauge("eng.q0.pool.free_chunks"), 0.0);

  // A closed queue's driver object stays alive (held for the epoch
  // check); its gauges must read 0 instead of the dead pool's state.
  engine.close(0);
  EXPECT_EQ(gauge("eng.q0.pool.free_chunks"), 0.0);
  EXPECT_EQ(gauge("eng.q0.capture_queue.depth"), 0.0);
  EXPECT_EQ(gauge("eng.q0.pending.depth"), 0.0);
  EXPECT_EQ(gauge("eng.q0.capture_core.utilization"), 0.0);

  // Reopen rebinds against the fresh driver: liveness returns.
  engine.open(0, core);
  EXPECT_GT(gauge("eng.q0.pool.free_chunks"), 0.0);
}

// --- golden file: a small fig03-style run through the file writers ---

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

TEST(GoldenFile, Fig03StyleRunWritesValidChromeTrace) {
  // A shrunken Figure-3 wiring: border trace into 2 queues, DNA engine,
  // queue profilers, tracer + sampler on.
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 2;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  engines::Type2Engine dna{nic, engines::dna_config()};

  const sim::CostModel costs;
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::QueueProfiler>> profilers;
  for (std::uint32_t q = 0; q < 2; ++q) {
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
    profilers.push_back(
        std::make_unique<apps::QueueProfiler>(*cores[q], dna, q, costs));
  }

  telemetry::Telemetry tel;
  tel.tracer.set_enabled(true);
  dna.bind_telemetry(tel, "engine.dna", 2);
  tel.registry.bind_series("app.q0.arrivals_per_10ms",
                           &profilers[0]->series());
  telemetry::Sampler sampler{scheduler, tel, Nanos::from_millis(10)};
  sampler.start();

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = 0.25;
  trace_config.num_queues = 2;
  trace_config.hot_queue = 0;
  trace_config.bursty_queue = 1;
  auto source = trace::make_border_router_source(trace_config);
  nic::TrafficInjector injector{scheduler, *source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(0.5));

  const std::string metrics_path = "test_telemetry_metrics.golden.json";
  const std::string trace_path = "test_telemetry_trace.golden.json";
  ASSERT_TRUE(telemetry::write_metrics(tel.registry, metrics_path));
  ASSERT_TRUE(telemetry::write_trace(tel.tracer, trace_path));

  // The files round-trip exactly and parse as JSON.
  EXPECT_EQ(read_file(metrics_path),
            telemetry::metrics_to_json(tel.registry));
  const std::string trace_json = read_file(trace_path);
  EXPECT_EQ(trace_json, telemetry::trace_to_chrome_json(tel.tracer));
  EXPECT_TRUE(JsonChecker{trace_json}.valid());
  EXPECT_NE(trace_json.find("\"displayTimeUnit\""), std::string::npos);
  // The sampler turned the engine gauges into counter series.
  EXPECT_NE(trace_json.find("engine.dna.q0.released.pending"),
            std::string::npos);
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Export, CsvPathSelectsCsv) {
  telemetry::Telemetry tel;
  tel.registry.counter("a").add(1);
  const std::string path = "test_telemetry_metrics.golden.csv";
  ASSERT_TRUE(telemetry::write_metrics(tel.registry, path));
  const std::string content = read_file(path);
  EXPECT_EQ(content.rfind("name,kind,", 0), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wirecap
