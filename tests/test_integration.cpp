// End-to-end integration tests: the border-router trace through the
// full stack (trace -> RSS steering -> NIC rings/FIFO -> engine ->
// pkt_handler), reproducing the qualitative Table 1 pattern; plus
// multi-NIC operation and a cross-engine drop-rate ordering check.
#include <gtest/gtest.h>

#include <cstdio>

#include "apps/harness.hpp"
#include "trace/border_router.hpp"

namespace wirecap::apps {
namespace {

/// Table-1-style experiment: border-router traffic, 6 queues, x=300,
/// at full per-queue rates but a shortened duration so tests stay fast.
ExperimentResult run_border(EngineKind kind, double duration_s = 6.0,
                            std::uint32_t m = 256, std::uint32_t r = 100,
                            double t = 0.6) {
  ExperimentConfig config;
  config.engine.kind = kind;
  config.engine.cells_per_chunk = m;
  config.engine.chunk_count = r;
  config.engine.offload_threshold = t;
  config.num_queues = 6;
  config.x = 300;
  Experiment experiment{config};

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = duration_s;
  trace_config.hot_phase_split_s = 1.0;  // overload from t=1s
  auto source = trace::make_border_router_source(trace_config);
  return experiment.run(*source,
                        Nanos::from_seconds(duration_s) +
                            Nanos::from_seconds(5));
}

void print_result(const ExperimentResult& result) {
  std::printf("%-12s sent=%8lu overall=%5.1f%%\n",
              result.engine_label.c_str(),
              static_cast<unsigned long>(result.sent),
              result.drop_rate() * 100);
  for (std::size_t q = 0; q < result.per_queue.size(); ++q) {
    const auto& queue = result.per_queue[q];
    std::printf("  q%zu arrived=%8lu capture=%5.1f%% delivery=%5.1f%%\n", q,
                static_cast<unsigned long>(queue.arrived),
                queue.capture_drop_rate() * 100,
                queue.delivery_drop_rate() * 100);
  }
}

TEST(Table1, DnaPattern) {
  const auto result = run_border(EngineKind::kDna);
  print_result(result);
  // Hot queue 0 (80 kp/s vs 38.8 kp/s): substantial capture drops,
  // paper: 50.1%.
  EXPECT_GT(result.per_queue[0].capture_drop_rate(), 0.30);
  EXPECT_LT(result.per_queue[0].capture_drop_rate(), 0.65);
  // Type-II engines never delivery-drop.
  for (const auto& queue : result.per_queue) {
    EXPECT_EQ(queue.delivery_dropped, 0u);
  }
  // Bursty queue 3: some capture drops from short-term bursts (paper:
  // 9.3%) despite the mean rate being below the processing rate.
  EXPECT_GT(result.per_queue[3].capture_drop_rate(), 0.01);
  EXPECT_LT(result.per_queue[3].capture_drop_rate(), 0.35);
}

TEST(Table1, NetmapPattern) {
  const auto result = run_border(EngineKind::kNetmap);
  print_result(result);
  EXPECT_GT(result.per_queue[0].capture_drop_rate(), 0.30);
  for (const auto& queue : result.per_queue) {
    EXPECT_EQ(queue.delivery_dropped, 0u);
  }
  // NETMAP's batched sync loses at least as much as DNA on the bursty
  // queue (paper: 33.4% vs 9.3%).
  const auto dna = run_border(EngineKind::kDna);
  EXPECT_GE(result.per_queue[3].capture_drop_rate() + 0.005,
            dna.per_queue[3].capture_drop_rate());
}

TEST(Table1, PfRingPattern) {
  const auto result = run_border(EngineKind::kPfRing);
  print_result(result);
  // PF_RING avoids capture drops on the hot queue (NAPI drains the
  // ring) but pays with delivery drops (paper: 0% / 56.8%).
  EXPECT_LT(result.per_queue[0].capture_drop_rate(), 0.05);
  EXPECT_GT(result.per_queue[0].delivery_drop_rate(), 0.35);
  // Bursty queue 3: small-to-no drops (paper: 0.8% capture, 0 delivery).
  EXPECT_LT(result.per_queue[3].capture_drop_rate(), 0.10);
  EXPECT_LT(result.per_queue[3].delivery_drop_rate(), 0.10);
}

TEST(Figure11, WirecapAdvancedBeatsEveryBaseline) {
  const auto wirecap_a = run_border(EngineKind::kWirecapAdvanced);
  print_result(wirecap_a);
  const auto wirecap_b = run_border(EngineKind::kWirecapBasic);
  const auto dna = run_border(EngineKind::kDna);

  // Basic mode already beats DNA (bigger buffers), advanced mode beats
  // basic (offloading) — the Figure 11 ordering.
  EXPECT_LT(wirecap_b.drop_rate(), dna.drop_rate());
  EXPECT_LT(wirecap_a.drop_rate(), wirecap_b.drop_rate());
  EXPECT_GT(wirecap_a.offloaded_chunks, 0u);
  // WireCAP never delivery-drops.
  EXPECT_EQ(wirecap_a.delivery_dropped, 0u);
  // Conservation through the whole stack.
  EXPECT_EQ(wirecap_a.sent, wirecap_a.delivered + wirecap_a.capture_dropped +
                                wirecap_a.delivery_dropped);
}

TEST(MultiNic, IndependentEnginesCoexist) {
  // Two NICs, each with its own engine and buddy group, in one
  // simulation — the §3.2.2d claim that WireCAP "naturally supports
  // multiple NICs" because it operates per receive queue.
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};

  const auto make_fabric = [&](std::uint32_t nic_id) {
    nic::NicConfig nic_config;
    nic_config.nic_id = nic_id;
    nic_config.num_rx_queues = 2;
    return std::make_unique<nic::MultiQueueNic>(scheduler, bus, nic_config);
  };
  auto nic1 = make_fabric(1);
  auto nic2 = make_fabric(2);

  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine1{scheduler, *nic1, engine_config};
  core::WirecapEngine engine2{scheduler, *nic2, engine_config};

  sim::CostModel costs;
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<PktHandler>> handlers;
  for (std::uint32_t q = 0; q < 2; ++q) {
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
    handlers.push_back(std::make_unique<PktHandler>(
        *cores.back(), engine1, q, PktHandlerConfig{0, "", false, {}}, costs));
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, 16 + q));
    handlers.push_back(std::make_unique<PktHandler>(
        *cores.back(), engine2, q, PktHandlerConfig{0, "", false, {}}, costs));
  }

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = 2.0;
  trace_config.num_queues = 2;
  trace_config.hot_queue = 0;
  trace_config.bursty_queue = 1;
  trace_config.hot_rate_late = 10e3;  // light load: no drops expected
  trace_config.hot_rate_early = 5e3;
  auto source1 = trace::make_border_router_source(trace_config);
  trace_config.seed ^= 0x1234;
  auto source2 = trace::make_border_router_source(trace_config);

  nic::TrafficInjector injector1{scheduler, *source1, *nic1};
  nic::TrafficInjector injector2{scheduler, *source2, *nic2};
  injector1.start();
  injector2.start();
  scheduler.run_until(Nanos::from_seconds(5));

  EXPECT_GT(injector1.injected(), 10'000u);
  EXPECT_GT(injector2.injected(), 10'000u);
  EXPECT_EQ(nic1->total_rx_dropped(), 0u);
  EXPECT_EQ(nic2->total_rx_dropped(), 0u);
  const auto stats1 = engine1.total_stats(2);
  const auto stats2 = engine2.total_stats(2);
  EXPECT_EQ(stats1.delivered, injector1.injected());
  EXPECT_EQ(stats2.delivered, injector2.injected());
}

}  // namespace
}  // namespace wirecap::apps
