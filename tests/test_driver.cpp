// Tests for the WireCAP kernel-side substrate: the ring-buffer-pool
// state machine, strict recycle validation (including a metadata fuzz
// sweep — §3.2.2c safety), and the per-queue driver's capture, partial
// rescue, replenish, and transmit paths.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"
#include "driver/chunk_pool.hpp"
#include "driver/wirecap_driver.hpp"
#include "nic/device.hpp"
#include "nic/wire.hpp"
#include "trace/constant_rate.hpp"

namespace wirecap::driver {
namespace {

net::FlowKey test_flow() {
  return net::FlowKey{net::Ipv4Addr{10, 1, 0, 1}, net::Ipv4Addr{10, 1, 0, 2},
                      7777, 80, net::IpProto::kUdp};
}

// --- RingBufferPool ---

TEST(RingBufferPool, Geometry) {
  RingBufferPool pool{1, 0, 64, 10, 2048};
  EXPECT_EQ(pool.capacity_packets(), 640u);
  EXPECT_EQ(pool.memory_bytes(), 640u * 2048u);
  EXPECT_EQ(pool.free_chunks(), 10u);
  EXPECT_EQ(pool.cell(0, 0).size(), 2048u);
  EXPECT_THROW(static_cast<void>(pool.cell(10, 0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(pool.cell(0, 64)), std::out_of_range);
  EXPECT_THROW((RingBufferPool{0, 0, 0, 1}), std::invalid_argument);
}

TEST(RingBufferPool, CellsAreContiguousPerChunk) {
  RingBufferPool pool{1, 0, 4, 2, 256};
  // "A chunk of packet buffers ... occupy physically contiguous memory."
  for (std::uint32_t cell = 0; cell + 1 < 4; ++cell) {
    EXPECT_EQ(pool.cell(0, cell).data() + 256, pool.cell(0, cell + 1).data());
  }
}

TEST(RingBufferPool, StateMachineRoundTrip) {
  RingBufferPool pool{1, 3, 8, 2};
  const auto id = pool.acquire_for_attach();
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(pool.state(*id), ChunkState::kAttached);
  EXPECT_EQ(pool.free_chunks(), 1u);

  const auto meta = pool.mark_captured(*id, 0, 8);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(pool.state(*id), ChunkState::kCaptured);
  EXPECT_EQ(meta->nic_id, 1u);
  EXPECT_EQ(meta->ring_id, 3u);
  EXPECT_EQ(meta->pkt_count, 8u);

  EXPECT_TRUE(pool.recycle(*meta).is_ok());
  EXPECT_EQ(pool.state(*id), ChunkState::kFree);
  EXPECT_EQ(pool.free_chunks(), 2u);
}

TEST(RingBufferPool, ExhaustionReported) {
  RingBufferPool pool{1, 0, 8, 2};
  EXPECT_TRUE(pool.acquire_for_attach().has_value());
  EXPECT_TRUE(pool.acquire_for_attach().has_value());
  EXPECT_EQ(pool.acquire_for_attach().code(), StatusCode::kExhausted);
  EXPECT_EQ(pool.capture_free_chunk(1).code(), StatusCode::kExhausted);
}

TEST(RingBufferPool, CaptureFreeChunkSkipsAttach) {
  RingBufferPool pool{1, 0, 8, 2};
  const auto meta = pool.capture_free_chunk(5);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(pool.state(meta->chunk_id), ChunkState::kCaptured);
  EXPECT_EQ(meta->pkt_count, 5u);
  EXPECT_FALSE(pool.capture_free_chunk(9).has_value());  // > M
}

TEST(RingBufferPool, RecycleValidatesEverything) {
  RingBufferPool pool{1, 2, 8, 4};
  const auto id = pool.acquire_for_attach();
  const auto meta = pool.mark_captured(*id, 0, 8);
  ASSERT_TRUE(meta.has_value());

  ChunkMeta foreign_nic = *meta;
  foreign_nic.nic_id = 9;
  EXPECT_EQ(pool.recycle(foreign_nic).code(), StatusCode::kPermissionDenied);

  ChunkMeta foreign_ring = *meta;
  foreign_ring.ring_id = 5;
  EXPECT_EQ(pool.recycle(foreign_ring).code(), StatusCode::kPermissionDenied);

  ChunkMeta bad_chunk = *meta;
  bad_chunk.chunk_id = 100;
  EXPECT_EQ(pool.recycle(bad_chunk).code(), StatusCode::kInvalidArgument);

  ChunkMeta bad_range = *meta;
  bad_range.pkt_count = 99;
  EXPECT_EQ(pool.recycle(bad_range).code(), StatusCode::kInvalidArgument);

  // Recycling a chunk that is not captured (free/attached) is rejected.
  ChunkMeta not_captured = *meta;
  not_captured.chunk_id = (*id + 1) % 4;
  EXPECT_EQ(pool.recycle(not_captured).code(), StatusCode::kInvalidArgument);

  // The valid one succeeds exactly once (no double recycle).
  EXPECT_TRUE(pool.recycle(*meta).is_ok());
  EXPECT_EQ(pool.recycle(*meta).code(), StatusCode::kInvalidArgument);
}

TEST(RingBufferPool, RecycleFuzzNeverCorrupts) {
  // Property: feeding 10,000 random metadata blobs into recycle() never
  // frees a chunk that is not captured, never throws, and never changes
  // the number of chunks the pool accounts for.
  RingBufferPool pool{2, 1, 16, 8};
  // Put the pool into a mixed state.
  const auto a = pool.acquire_for_attach();
  const auto captured_a = pool.mark_captured(*a, 0, 16);
  static_cast<void>(pool.acquire_for_attach());  // stays attached
  const auto rescued = pool.capture_free_chunk(3);
  ASSERT_TRUE(captured_a.has_value());
  ASSERT_TRUE(rescued.has_value());

  Xoshiro256 rng{99};
  std::uint64_t accepted = 0;
  for (int i = 0; i < 10'000; ++i) {
    ChunkMeta meta;
    meta.nic_id = static_cast<std::uint32_t>(rng.next_below(4));
    meta.ring_id = static_cast<std::uint32_t>(rng.next_below(4));
    meta.chunk_id = static_cast<std::uint32_t>(rng.next_below(12));
    meta.first_cell = static_cast<std::uint32_t>(rng.next_below(20));
    meta.pkt_count = static_cast<std::uint32_t>(rng.next_below(20));
    if (pool.recycle(meta).is_ok()) ++accepted;
  }
  // Only the two captured chunks could ever be legally recycled.
  EXPECT_LE(accepted, 2u);
  // Every chunk is still in a coherent state.
  int free_count = 0, attached = 0, captured_count = 0;
  for (std::uint32_t c = 0; c < 8; ++c) {
    switch (pool.state(c)) {
      case ChunkState::kFree: ++free_count; break;
      case ChunkState::kAttached: ++attached; break;
      case ChunkState::kCaptured: ++captured_count; break;
    }
  }
  EXPECT_EQ(free_count + attached + captured_count, 8);
  EXPECT_EQ(attached, 1);  // chunk `a` was captured; one stayed attached
  EXPECT_EQ(pool.free_chunks(), static_cast<std::uint32_t>(free_count));
}

TEST(RingBufferPool, CookieRoundTrip) {
  const auto cookie = RingBufferPool::make_cookie(12345, 678);
  EXPECT_EQ(RingBufferPool::cookie_chunk(cookie), 12345u);
  EXPECT_EQ(RingBufferPool::cookie_cell(cookie), 678u);
}

// --- WirecapQueueDriver ---

class DriverFixture : public ::testing::Test {
 protected:
  DriverFixture() : bus_(scheduler_) {
    nic::NicConfig config;
    config.nic_id = 1;
    config.num_rx_queues = 1;
    config.rx_ring_size = 16;
    nic_ = std::make_unique<nic::MultiQueueNic>(scheduler_, bus_, config);
  }

  WirecapDriverConfig driver_config(std::uint32_t m = 4, std::uint32_t r = 8) {
    WirecapDriverConfig config;
    config.cells_per_chunk = m;
    config.chunk_count = r;
    config.partial_chunk_timeout = Nanos::from_millis(1);
    return config;
  }

  void inject(std::uint64_t count, Nanos start = Nanos::zero()) {
    trace::ConstantRateConfig config;
    config.packet_count = count;
    config.flows = {test_flow()};
    config.start = start;
    trace::ConstantRateSource source{config};
    while (auto packet = source.next()) nic_->receive(*packet);
    scheduler_.run();
  }

  sim::Scheduler scheduler_;
  sim::IoBus bus_;
  std::unique_ptr<nic::MultiQueueNic> nic_;
};

TEST_F(DriverFixture, OpenAttachesWholeRing) {
  WirecapQueueDriver driver{*nic_, 0, driver_config()};
  driver.open();
  // Ring of 16, segments of 4: four chunks attached, four left free.
  EXPECT_EQ(nic_->rx_ring(0).ready_count(), 16u);
  EXPECT_EQ(driver.pool().free_chunks(), 4u);
}

TEST_F(DriverFixture, ValidatesGeometry) {
  // M > ring size.
  EXPECT_THROW((WirecapQueueDriver{*nic_, 0, driver_config(32, 8)}),
               std::invalid_argument);
  // R <= ring/M provides no buffering beyond the ring.
  EXPECT_THROW((WirecapQueueDriver{*nic_, 0, driver_config(4, 4)}),
               std::invalid_argument);
}

TEST_F(DriverFixture, CapturesFullChunksZeroCopy) {
  WirecapQueueDriver driver{*nic_, 0, driver_config()};
  driver.open();
  inject(9);  // two full chunks of 4, one packet left over

  std::vector<ChunkMeta> out;
  const std::uint32_t copied = driver.capture(scheduler_.now(), 16, out);
  EXPECT_EQ(copied, 0u);  // zero-copy path
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].pkt_count, 4u);
  EXPECT_EQ(out[1].pkt_count, 4u);
  EXPECT_EQ(out[0].first_cell, 0u);
  EXPECT_EQ(driver.stats().chunks_captured, 2u);
  EXPECT_EQ(driver.stats().packets_captured, 8u);

  // The captured cells contain the real packets with per-cell info.
  const auto& pool = driver.pool();
  for (std::uint32_t i = 0; i < 4; ++i) {
    const CellInfo& info = pool.cell_info(out[0].chunk_id, i);
    EXPECT_EQ(info.seq, i);
    EXPECT_EQ(info.wire_length, 64u);
    const auto flow =
        net::parse_flow(pool.cell(out[0].chunk_id, i).first(info.length));
    ASSERT_TRUE(flow.has_value());
    EXPECT_EQ(*flow, test_flow());
  }
}

TEST_F(DriverFixture, ReplenishesAfterCaptureAndRecycle) {
  WirecapQueueDriver driver{*nic_, 0, driver_config()};
  driver.open();
  inject(4);
  std::vector<ChunkMeta> out;
  driver.capture(scheduler_.now(), 16, out);
  ASSERT_EQ(out.size(), 1u);
  // Consuming one segment freed 4 descriptors; a free chunk was attached
  // in its place.
  EXPECT_EQ(nic_->rx_ring(0).ready_count(), 16u);
  EXPECT_EQ(driver.pool().free_chunks(), 3u);

  EXPECT_TRUE(driver.recycle(out[0]).is_ok());
  EXPECT_EQ(driver.pool().free_chunks(), 4u);
  EXPECT_EQ(driver.stats().chunks_recycled, 1u);
}

TEST_F(DriverFixture, PartialChunkRescuedAfterTimeout) {
  WirecapQueueDriver driver{*nic_, 0, driver_config()};
  driver.open();
  inject(2);  // half a chunk

  // Before the timeout: nothing captured.
  std::vector<ChunkMeta> out;
  EXPECT_EQ(driver.capture(scheduler_.now(), 16, out), 0u);
  EXPECT_TRUE(out.empty());

  // After the timeout: the two packets are copied into a free chunk.
  scheduler_.run_until(scheduler_.now() + Nanos::from_millis(2));
  const std::uint32_t copied = driver.capture(scheduler_.now(), 16, out);
  EXPECT_EQ(copied, 2u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pkt_count, 2u);
  EXPECT_EQ(out[0].first_cell, 0u);
  EXPECT_EQ(driver.stats().partial_rescues, 1u);
  EXPECT_EQ(driver.stats().packets_copied, 2u);

  // The rescued copy carries the packet bytes.
  const auto& pool = driver.pool();
  const CellInfo& info = pool.cell_info(out[0].chunk_id, 0);
  EXPECT_EQ(info.seq, 0u);
  const auto flow =
      net::parse_flow(pool.cell(out[0].chunk_id, 0).first(info.length));
  ASSERT_TRUE(flow.has_value());
  EXPECT_EQ(*flow, test_flow());

  // The donor segment continues filling; once complete it is captured
  // with first_cell == 2.
  inject(2, scheduler_.now());
  std::vector<ChunkMeta> rest;
  EXPECT_EQ(driver.capture(scheduler_.now(), 16, rest), 0u);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].first_cell, 2u);
  EXPECT_EQ(rest[0].pkt_count, 2u);
}

TEST_F(DriverFixture, PoolExhaustionCausesNicDrops) {
  // Rebuild the NIC with a tiny internal FIFO so pool/ring exhaustion is
  // visible as drops rather than FIFO parking.
  nic::NicConfig config;
  config.nic_id = 1;
  config.num_rx_queues = 1;
  config.rx_ring_size = 16;
  config.rx_fifo_bytes = 4 * 128;  // four 64-byte frames
  nic_ = std::make_unique<nic::MultiQueueNic>(scheduler_, bus_, config);

  WirecapQueueDriver driver{*nic_, 0, driver_config(4, 8)};
  driver.open();
  // Without a capture thread moving chunks out, buffering is limited to
  // the attached descriptors (16) plus the FIFO (4).
  inject(200);
  EXPECT_EQ(nic_->rx_stats(0).received, 16u);
  EXPECT_EQ(nic_->rx_stats(0).dropped, 200u - 16u - 4u);

  // Once capture runs, freed segments are replenished from the pool and
  // the parked FIFO frames flow in.
  std::vector<ChunkMeta> out;
  driver.capture(scheduler_.now(), 16, out);
  scheduler_.run();
  // 4 full segments, plus the 4 FIFO-parked frames that flowed into the
  // first replenished segment and completed it within the same capture.
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(nic_->rx_stats(0).received, 20u);
}

TEST_F(DriverFixture, TransmitSendsPoolCellZeroCopy) {
  WirecapQueueDriver driver{*nic_, 0, driver_config()};
  driver.open();
  inject(4);
  std::vector<ChunkMeta> out;
  driver.capture(scheduler_.now(), 16, out);
  ASSERT_EQ(out.size(), 1u);

  std::uint64_t egress_seq = 1234;
  nic_->set_egress([&](const net::WirePacket& p) { egress_seq = p.seq(); });
  bool completed = false;
  EXPECT_TRUE(driver.transmit(0, out[0], 1, [&] { completed = true; }));
  scheduler_.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(egress_seq, 1u);
  EXPECT_EQ(nic_->total_transmitted(), 1u);
}

TEST_F(DriverFixture, RecycleRejectsForeignMetadata) {
  WirecapQueueDriver driver{*nic_, 0, driver_config()};
  driver.open();
  ChunkMeta bogus;
  bogus.nic_id = 1;
  bogus.ring_id = 0;
  bogus.chunk_id = 2;  // attached, not captured
  bogus.pkt_count = 4;
  EXPECT_FALSE(driver.recycle(bogus).is_ok());
  EXPECT_EQ(driver.stats().recycle_rejects, 1u);
}

}  // namespace
}  // namespace wirecap::driver
