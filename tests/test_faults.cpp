// Fault-injection and chunk-lifecycle tests: the ChunkLifecycleAuditor
// itself, regression tests for the rescue-path replenish bug and the
// close()-stale-state bug (each fails with its fix reverted), the
// late-bind telemetry regression, and the randomized fault-schedule
// soak asserting chunk-count conservation across 100+ seeds.
#include <gtest/gtest.h>

#include <vector>

#include "core/wirecap_engine.hpp"
#include "driver/wirecap_driver.hpp"
#include "nic/device.hpp"
#include "sim/core.hpp"
#include "testing/faults.hpp"
#include "testing/lifecycle_auditor.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::testing {
namespace {

net::FlowKey test_flow() {
  return net::FlowKey{net::Ipv4Addr{10, 1, 0, 1}, net::Ipv4Addr{10, 1, 0, 2},
                      7777, 80, net::IpProto::kUdp};
}

// --- ChunkLifecycleAuditor ---

TEST(LifecycleAuditor, LegalLifecycleIsClean) {
  driver::RingBufferPool pool{1, 0, 8, 4};
  ChunkLifecycleAuditor auditor;
  pool.set_observer(&auditor);

  const auto id = pool.acquire_for_attach();
  ASSERT_TRUE(id.has_value());
  const auto meta = pool.mark_captured(*id, 0, 8);
  ASSERT_TRUE(meta.has_value());
  EXPECT_TRUE(pool.recycle(*meta).is_ok());
  const auto rescue = pool.capture_free_chunk(3);
  ASSERT_TRUE(rescue.has_value());
  EXPECT_TRUE(pool.recycle(*rescue).is_ok());
  const auto id2 = pool.acquire_for_attach();
  pool.release_attached(*id2);

  EXPECT_TRUE(auditor.clean());
  const AuditorStats& stats = auditor.stats();
  EXPECT_EQ(stats.transitions, 7u);
  EXPECT_EQ(stats.attaches, 2u);
  EXPECT_EQ(stats.captures, 1u);
  EXPECT_EQ(stats.rescues, 1u);
  EXPECT_EQ(stats.recycles, 2u);
  EXPECT_EQ(stats.releases, 1u);
  auditor.check_pool(pool);
  EXPECT_TRUE(auditor.clean());
}

TEST(LifecycleAuditor, FlagsTransitionDisagreeingWithShadow) {
  driver::RingBufferPool pool{1, 0, 8, 4};
  ChunkLifecycleAuditor auditor;
  pool.set_observer(&auditor);
  const auto id = pool.acquire_for_attach();  // shadow: attached
  ASSERT_TRUE(id.has_value());

  // A fabricated report claiming the chunk was free (a double attach /
  // use-after-recycle pattern) must fail fast.
  EXPECT_THROW(auditor.on_transition(pool, *id, driver::ChunkState::kFree,
                                     driver::ChunkState::kAttached, "attach"),
               std::logic_error);
  EXPECT_EQ(auditor.stats().violations, 1u);
  ASSERT_FALSE(auditor.violations().empty());
}

TEST(LifecycleAuditor, FlagsIllegalEdge) {
  driver::RingBufferPool pool{1, 0, 8, 4};
  AuditorConfig config;
  config.throw_on_violation = false;
  ChunkLifecycleAuditor auditor{config};
  pool.set_observer(&auditor);
  const auto id = pool.acquire_for_attach();
  ASSERT_TRUE(id.has_value());

  // attached -> captured reported as "recycle": right edge, wrong op.
  auditor.on_transition(pool, *id, driver::ChunkState::kAttached,
                        driver::ChunkState::kCaptured, "recycle");
  EXPECT_EQ(auditor.stats().violations, 1u);
  // captured -> attached is not an edge of the machine at all.
  auditor.on_transition(pool, *id, driver::ChunkState::kCaptured,
                        driver::ChunkState::kAttached, "attach");
  EXPECT_EQ(auditor.stats().violations, 2u);
}

TEST(LifecycleAuditor, DetectsTransitionsBypassingObserver) {
  driver::RingBufferPool pool{1, 0, 8, 4};
  AuditorConfig config;
  config.throw_on_violation = false;
  ChunkLifecycleAuditor auditor{config};
  pool.set_observer(&auditor);
  static_cast<void>(pool.acquire_for_attach());  // seeds the shadow

  pool.set_observer(nullptr);
  static_cast<void>(pool.acquire_for_attach());  // invisible transition
  pool.set_observer(&auditor);

  auditor.check_pool(pool);
  EXPECT_GE(auditor.stats().violations, 1u);
}

TEST(LifecycleAuditor, SeparatesPoolsByUid) {
  // Two pools with identical coordinates (a reopen in miniature): the
  // shadow of one must not bleed into the other.
  ChunkLifecycleAuditor auditor;
  auto first = std::make_unique<driver::RingBufferPool>(1, 0, 8, 4);
  first->set_observer(&auditor);
  const auto id = first->acquire_for_attach();
  ASSERT_TRUE(id.has_value());
  first.reset();

  driver::RingBufferPool second{1, 0, 8, 4};
  second.set_observer(&auditor);
  // In the fresh pool the same chunk id starts free again; if shadows
  // were keyed by coordinates this attach would be flagged.
  const auto id2 = second.acquire_for_attach();
  ASSERT_TRUE(id2.has_value());
  EXPECT_TRUE(auditor.clean());
}

// --- regression: rescue path must replenish the ring (bug 1) ---

// A 10-descriptor ring with M = 4 holds two whole segments plus two
// slack slots, so a rescue that consumes two cells is exactly what
// pushes empty_slots past the segment threshold.  Only the rescue path
// itself can seize that moment: the free chunk left over from open()
// did not arrive through recycle(), so no other replenish call is
// coming.  Without the rescue-path replenish()/kick() the free chunk
// sits idle and the ring runs 4 descriptors short until some unrelated
// recycle happens along.
TEST(RescueReplenish, RescueReplenishesNonAlignedRing) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.nic_id = 1;
  nic_config.num_rx_queues = 1;
  nic_config.rx_ring_size = 10;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};

  driver::WirecapDriverConfig config;
  config.cells_per_chunk = 4;
  config.chunk_count = 4;
  config.partial_chunk_timeout = Nanos::from_millis(1);
  driver::WirecapQueueDriver driver{nic, 0, config};
  driver.open();
  // Two segments fit (8 of 10 slots); two chunks stay free.
  ASSERT_EQ(nic.rx_ring(0).ready_count(), 8u);
  ASSERT_EQ(driver.pool().state_counts().free, 2u);

  // A 2-packet trickle ages past the partial-chunk timeout.
  std::uint64_t seq = 0;
  for (int p = 0; p < 2; ++p) {
    nic.receive(net::WirePacket::make(scheduler.now(), test_flow(), 64,
                                      seq++));
  }
  scheduler.run();  // DMA completes
  std::vector<driver::ChunkMeta> out;
  const Nanos later = scheduler.now() + Nanos::from_millis(2);
  const std::uint32_t copied = driver.capture(later, 16, out);
  ASSERT_EQ(copied, 2u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().pkt_count, 2u);
  EXPECT_EQ(driver.stats().partial_rescues, 1u);
  EXPECT_EQ(driver.stats().packets_copied, 2u);

  // The rescue freed 2 slots (10 - 8 + 2 = 4 empty): the remaining free
  // chunk must be attached right here, not deferred to a future recycle.
  EXPECT_EQ(nic.rx_ring(0).ready_count(), 10u)
      << "rescue path did not replenish the ring";
  EXPECT_EQ(driver.pool().state_counts().free, 0u);
  EXPECT_EQ(driver.stats().attach_failures, 0u);

  // The replenished ring keeps absorbing sustained partial load: the
  // donor's remainder goes out zero-copy once it fills, then the next
  // segment takes over.
  for (int p = 0; p < 2; ++p) {
    nic.receive(net::WirePacket::make(scheduler.now(), test_flow(), 64,
                                      seq++));
  }
  scheduler.run();
  EXPECT_EQ(driver.capture(scheduler.now(), 16, out), 0u);  // zero-copy
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.back().pkt_count, 2u);

  for (const driver::ChunkMeta& meta : out) {
    EXPECT_GT(meta.pkt_count, 0u);
    EXPECT_TRUE(driver.recycle(meta).is_ok());
  }
  scheduler.run();
  // All chunks home: pool conservation after the dust settles.
  const driver::ChunkStateCounts counts = driver.pool().state_counts();
  EXPECT_EQ(counts.free + counts.attached + counts.captured, 4u);
  EXPECT_EQ(counts.captured, 0u);
}

// --- regression: close() must not leak state into a reopen (bug 2) ---

class CloseLifecycleFixture : public ::testing::Test {
 protected:
  CloseLifecycleFixture() : bus_(scheduler_) {
    nic::NicConfig nic_config;
    nic_config.nic_id = 1;
    nic_config.num_rx_queues = 1;
    nic_config.rx_ring_size = 32;
    nic_ = std::make_unique<nic::MultiQueueNic>(scheduler_, bus_, nic_config);
    core::WirecapConfig engine_config;
    engine_config.cells_per_chunk = 8;
    engine_config.chunk_count = 6;
    engine_ = std::make_unique<core::WirecapEngine>(scheduler_, *nic_,
                                                    engine_config);
    app_core_ = std::make_unique<sim::SimCore>(scheduler_, 0);
  }

  void inject(std::uint32_t count) {
    for (std::uint32_t p = 0; p < count; ++p) {
      nic_->receive(net::WirePacket::make(scheduler_.now(), test_flow(), 64,
                                          seq_++));
    }
    scheduler_.run_until(scheduler_.now() + Nanos::from_millis(1));
  }

  sim::Scheduler scheduler_;
  sim::IoBus bus_;
  std::unique_ptr<nic::MultiQueueNic> nic_;
  std::unique_ptr<core::WirecapEngine> engine_;
  std::unique_ptr<sim::SimCore> app_core_;
  std::uint64_t seq_ = 0;
};

TEST_F(CloseLifecycleFixture, CloseReopenWithHeldViewsStaysSafe) {
  ChunkLifecycleAuditor auditor;
  engine_->set_pool_observer(&auditor);
  engine_->open(0, *app_core_);
  inject(24);  // three full chunks

  // The application holds packets across the close: their chunks stay
  // in the outstanding map when close() runs.
  std::vector<engines::CaptureView> held;
  for (int i = 0; i < 10; ++i) {
    auto view = engine_->try_next(0);
    ASSERT_TRUE(view.has_value());
    held.push_back(*view);
  }

  engine_->close(0);
  engine_->open(0, *app_core_);  // fresh pool, same coordinates
  inject(16);

  // Late done() on pre-close views must be dropped by the epoch check —
  // with stale metadata surviving close() they would be recycled into
  // the new pool and corrupt it (logic_error from the next poll).
  for (const engines::CaptureView& view : held) {
    EXPECT_NO_THROW(engine_->done(0, view));
  }
  EXPECT_NO_THROW(scheduler_.run_until(scheduler_.now() + Nanos::from_millis(5)));

  // The reopened queue still delivers, and its pool stays consistent.
  std::uint32_t delivered_after_reopen = 0;
  while (auto view = engine_->try_next(0)) {
    ++delivered_after_reopen;
    engine_->done(0, *view);
  }
  EXPECT_GT(delivered_after_reopen, 0u);
  scheduler_.run_until(scheduler_.now() + Nanos::from_millis(5));
  auditor.check_conservation(*engine_, 0);
  EXPECT_TRUE(auditor.clean());
}

TEST_F(CloseLifecycleFixture, CloseDrainsQueuedChunksBackToPool) {
  engine_->open(0, *app_core_);
  inject(24);
  // Chunks are sitting on the capture queue, undelivered.
  engine_->close(0);
  // Everything reachable went home synchronously: only chunks held by
  // the application may remain captured, and here none are held.
  const driver::ChunkStateCounts counts = engine_->pool(0).state_counts();
  EXPECT_EQ(counts.captured, 0u);
  EXPECT_EQ(counts.attached, 0u);
  EXPECT_EQ(counts.free, 6u);
  EXPECT_EQ(nic_->rx_ring(0).ready_count(), 0u);  // ring reset
}

// --- regression: telemetry binding for late-opened queues (bug 3) ---

TEST_F(CloseLifecycleFixture, QueueOpenedAfterBindPublishesMetrics) {
  telemetry::Telemetry telemetry;
  engine_->bind_telemetry(telemetry, "wirecap", 1);
  EXPECT_FALSE(telemetry.registry.contains("wirecap.q0.pool.free_chunks"));

  engine_->open(0, *app_core_);  // opened after bind_telemetry
  ASSERT_TRUE(telemetry.registry.contains("wirecap.q0.pool.free_chunks"));
  ASSERT_TRUE(telemetry.registry.contains("wirecap.q0.driver.chunks_captured"));

  const auto& entry =
      telemetry.registry.entries().at("wirecap.q0.pool.free_chunks");
  ASSERT_TRUE(entry.gauge_fn);
  // 32-slot ring / 8-cell chunks: 4 attached at open, 2 of 6 left free.
  EXPECT_DOUBLE_EQ(entry.gauge_fn(), 2.0);

  // The binding survives a close/open cycle (it resolves through the
  // engine's queue state, not the torn-down driver).
  engine_->close(0);
  engine_->open(0, *app_core_);
  EXPECT_DOUBLE_EQ(entry.gauge_fn(), 2.0);
}

// --- regression: close() must return the queue's quota charge to the
// owning tenant's budget (bug 4) ---

TEST(CloseQuota, CloseReturnsChargedChunksToTenantBudget) {
  // A tenant at its quota closes one queue while the application still
  // holds views: the stranded chunks can never recycle (the epoch bump
  // drops their metadata), so close() itself must settle the charge.
  // With the credit missing, the reopened queue starts life already at
  // quota and captures nothing ever again.
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.nic_id = 1;
  nic_config.num_rx_queues = 2;
  nic_config.rx_ring_size = 32;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 8;
  engine_config.chunk_count = 6;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore app_core{scheduler, 0};
  engine.open(0, app_core);
  engine.open(1, app_core);

  engines::TenantSpec spec;
  spec.name = "capped";
  spec.queues = {0, 1};
  spec.chunk_quota = 3;
  const engines::TenantId tenant = engine.register_tenant(spec);

  // RSS on a two-queue NIC: pick a flow that definitely lands on queue 0.
  Xoshiro256 rng{99};
  const net::FlowKey flow = trace::flow_for_queue(rng, 0, 2);
  std::uint64_t seq = 0;
  const auto inject = [&](std::uint32_t count) {
    for (std::uint32_t p = 0; p < count; ++p) {
      nic.receive(net::WirePacket::make(scheduler.now(), flow, 64, seq++));
    }
    scheduler.run_until(scheduler.now() + Nanos::from_millis(1));
  };

  inject(24);  // three full chunks: the whole budget
  EXPECT_EQ(engine.tenant_account(tenant).charged, 3u);

  // The app holds views across the close: their chunks stay captured.
  std::vector<engines::CaptureView> held;
  for (int i = 0; i < 10; ++i) {
    auto view = engine.try_next(0);
    ASSERT_TRUE(view.has_value());
    held.push_back(*view);
  }

  engine.close(0);
  EXPECT_EQ(engine.tenant_account(tenant).charged, 0u)
      << "close() leaked the queue's quota charge";

  // Late done() on pre-close views is epoch-dropped and must not
  // double-credit the account either.
  for (const engines::CaptureView& view : held) engine.done(0, view);
  EXPECT_EQ(engine.tenant_account(tenant).charged, 0u);

  // The reopened queue has its full budget back.
  engine.open(0, app_core);
  inject(24);
  EXPECT_EQ(engine.tenant_account(tenant).charged, 3u);
  EXPECT_EQ(engine.pool(0).state_counts().captured, 3u);
}

// --- fault harness ---

TEST(FaultHarness, SingleSeedRunsCleanAndIsDeterministic) {
  FaultHarnessConfig config;
  config.plan.seed = 7;
  FaultRunResult first = FaultHarness{config}.run();
  EXPECT_TRUE(first.clean()) << (first.violations.empty()
                                     ? ""
                                     : first.violations.front());
  EXPECT_GT(first.delivered, 0u);
  EXPECT_GT(first.auditor.transitions, 0u);
  EXPECT_GT(first.auditor.conservation_checks, 0u);

  FaultRunResult second = FaultHarness{config}.run();
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.forwarded, second.forwarded);
  EXPECT_EQ(first.reopens, second.reopens);
  EXPECT_EQ(first.auditor.transitions, second.auditor.transitions);
  EXPECT_EQ(first.auditor.recycle_rejects, second.auditor.recycle_rejects);
}

TEST(FaultHarness, ReportsThroughTelemetry) {
  FaultHarnessConfig config;
  config.plan.seed = 11;
  FaultHarness harness{config};
  const FaultRunResult result = harness.run();
  EXPECT_TRUE(result.clean());
  const telemetry::MetricRegistry& registry = harness.telemetry().registry;
  ASSERT_TRUE(registry.contains("faults.auditor.transitions"));
  EXPECT_EQ(registry.entries().at("faults.auditor.transitions").counter_fn(),
            result.auditor.transitions);
  ASSERT_TRUE(registry.contains("faults.q0.driver.partial_rescues"));
  ASSERT_TRUE(registry.contains("faults.q1.pool.free_chunks"));
}

// --- flight recorder: a fault-plan slow-drain spike must be explainable
// from its retained span sequence ---

TEST(FaultHarness, FlightRecorderCapturesSlowDrainOutliers) {
  FaultHarnessConfig config;
  config.plan.seed = 21;
  config.plan.spool_faults = true;  // schedule kSlowDisk / kDiskFull
  config.spool = true;              // blocking policy: backlog -> queue_wait
  config.latency = true;
  config.latency_outlier_threshold = Nanos::from_micros(50);
  FaultHarness harness{config};
  const FaultRunResult result = harness.run();
  EXPECT_TRUE(result.clean()) << (result.violations.empty()
                                      ? ""
                                      : result.violations.front());

  const telemetry::LatencyTracker& latency = harness.telemetry().latency;
  EXPECT_GT(latency.journeys_recorded(), 0u);
  const telemetry::FlightRecorder& recorder = latency.recorder();
  ASSERT_GT(recorder.outliers_seen(), 0u)
      << "slow-disk backpressure produced no e2e outlier";
  for (const telemetry::ChunkJourney& journey : recorder.outliers()) {
    // The retained span sequence is a full, monotone journey whose
    // stages add up: the spike is attributable, not just visible.
    EXPECT_TRUE(journey.complete());
    EXPECT_GE(journey.e2e_ns(), config.latency_outlier_threshold.count());
    EXPECT_EQ(journey.e2e_ns(), journey.capture_ns() +
                                    journey.queue_wait_ns() +
                                    journey.deliver_ns());
  }
  const std::string dump = recorder.dump();
  EXPECT_NE(dump.find("outliers seen"), std::string::npos) << dump;
  EXPECT_NE(dump.find("queue_wait="), std::string::npos) << dump;

  // The per-stage percentile gauges came up under the harness prefix
  // (latency was enabled before bind_telemetry).
  const telemetry::MetricRegistry& registry = harness.telemetry().registry;
  ASSERT_TRUE(registry.contains("faults.q0.latency.e2e.p999"));
  ASSERT_TRUE(registry.contains("faults.q1.latency.queue_wait.p99"));
  EXPECT_GT(registry.entries().at("faults.q0.latency.e2e.p50").gauge_fn(),
            0.0);
}

// --- the property: chunk-count conservation across randomized fault
// schedules (>= 100 seeds) ---

TEST(FaultSoak, ConservationHoldsAcross100Seeds) {
  // Default harness config: the lock-free SPSC-ring + steal-inbox
  // handoff, so every adversity hammers the fast path.
  const SoakResult soak = run_fault_soak(1, 100);
  EXPECT_EQ(soak.seeds_run, 100u);
  EXPECT_EQ(soak.total_violations, 0u)
      << (soak.failures.empty() ? "" : soak.failures.front());
  EXPECT_EQ(soak.seeds_clean, soak.seeds_run);
  // The soak must have actually exercised the adversities.
  EXPECT_GT(soak.total_delivered, 0u);
  EXPECT_GT(soak.total_reopens, 0u);
  EXPECT_GT(soak.total_conservation_checks, 1000u);
  EXPECT_GT(soak.total_transitions, 10'000u);
}

TEST(FaultPlan, TenantConfigShapesSchedule) {
  FaultPlanConfig config;
  config.num_queues = 4;
  config.num_tenants = 2;
  config.fault_queue_limit = 2;
  config.event_count = 64;
  const FaultPlan plan = FaultPlan::generate(config);
  ASSERT_EQ(plan.events().size(), 64u);
  bool saw_tenant_exhaust = false;
  for (const FaultEvent& event : plan.events()) {
    EXPECT_LT(event.queue, 2u);  // adversity confined to tenant 0
    if (event.kind == FaultKind::kTenantExhaust) saw_tenant_exhaust = true;
  }
  EXPECT_TRUE(saw_tenant_exhaust);
}

TEST(FaultSoak, MultiTenantConservationHoldsAcross100Seeds) {
  // Two tenants of two queues each, tight per-tenant quotas, the whole
  // adversity menu including kTenantExhaust: the per-ring law AND the
  // per-tenant four-way census must hold on every seed.
  FaultHarnessConfig base;
  base.plan.num_queues = 4;
  base.plan.num_tenants = 2;
  base.tenant_quota = 10;
  const SoakResult soak = run_fault_soak(1, 100, base);
  EXPECT_EQ(soak.seeds_run, 100u);
  EXPECT_EQ(soak.total_violations, 0u)
      << (soak.failures.empty() ? "" : soak.failures.front());
  EXPECT_EQ(soak.seeds_clean, soak.seeds_run);
  EXPECT_GT(soak.total_delivered, 0u);
  EXPECT_GT(soak.total_reopens, 0u);
  EXPECT_GT(soak.total_conservation_checks, 1000u);
  EXPECT_GT(soak.total_tenant_checks, 1000u);
}

TEST(FaultSoak, TenantFaultsNeverReduceNeighborDelivery) {
  // Isolation, 100 paired seeds: a quiet run (no faults) vs the same
  // seed with every adversity — pool exhaustion, tenant exhaustion,
  // stalls, reopens — aimed exclusively at tenant 0's queues.  Tenant
  // 1's workload derives from its own RNG streams and its own quota, so
  // its delivered count must never go down when its neighbour suffers.
  std::uint64_t victim_delivered = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    FaultHarnessConfig stormy;
    stormy.plan.seed = seed;
    stormy.plan.num_queues = 4;
    stormy.plan.num_tenants = 2;
    stormy.plan.fault_queue_limit = 2;  // tenant 0 owns queues {0, 1}
    stormy.tenant_quota = 6;
    FaultHarnessConfig quiet = stormy;
    quiet.plan.event_count = 0;

    const FaultRunResult calm = FaultHarness{quiet}.run();
    const FaultRunResult hit = FaultHarness{stormy}.run();
    ASSERT_TRUE(calm.clean()) << "seed " << seed;
    ASSERT_TRUE(hit.clean())
        << "seed " << seed << ": "
        << (hit.violations.empty() ? "" : hit.violations.front());
    ASSERT_EQ(calm.tenant_delivered.size(), 2u);
    ASSERT_EQ(hit.tenant_delivered.size(), 2u);
    EXPECT_GE(hit.tenant_delivered[1], calm.tenant_delivered[1])
        << "seed " << seed << ": tenant 0's faults cost tenant 1 "
        << calm.tenant_delivered[1] - hit.tenant_delivered[1] << " packets";
    victim_delivered += hit.tenant_delivered[1];
  }
  EXPECT_GT(victim_delivered, 0u);
}

TEST(FaultSoak, ConservationHoldsWithMutexHandoff) {
  // The blocking MpmcQueue pair stays supported (§5e shared-queue
  // paradigm); it must satisfy the same conservation law under faults.
  FaultHarnessConfig base;
  base.handoff = HandoffMode::kMutex;
  const SoakResult soak = run_fault_soak(1, 100, base);
  EXPECT_EQ(soak.seeds_run, 100u);
  EXPECT_EQ(soak.total_violations, 0u)
      << (soak.failures.empty() ? "" : soak.failures.front());
  EXPECT_EQ(soak.seeds_clean, soak.seeds_run);
  EXPECT_GT(soak.total_delivered, 0u);
  EXPECT_GT(soak.total_reopens, 0u);
}

}  // namespace
}  // namespace wirecap::testing
