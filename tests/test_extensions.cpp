// Tests for the extension surface: VLAN and IPv6 header support, IPv6
// Toeplitz RSS (against the published verification vectors), the BPF
// language additions (ip6 / vlan / portrange / greater / less), and the
// DPDK engine model.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <unistd.h>

#include "apps/harness.hpp"
#include "bpf/codegen.hpp"
#include "bpf/eval.hpp"
#include "bpf/parser.hpp"
#include "bpf/vm.hpp"
#include "engines/dpdk_engine.hpp"
#include "net/headers.hpp"
#include "net/pcapfile.hpp"
#include "net/pcapng.hpp"
#include "net/rss.hpp"
#include "trace/constant_rate.hpp"
#include "trace/pcap_source.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap {
namespace {

using net::FlowKey;
using net::IpProto;
using net::Ipv4Addr;
using net::Ipv6Addr;

// --- VLAN ---

TEST(Vlan, BuildAndParseTaggedFrame) {
  FlowKey flow{Ipv4Addr{131, 225, 2, 5}, Ipv4Addr{10, 0, 0, 9}, 1234, 53,
               IpProto::kUdp};
  std::array<std::byte, 128> buf{};
  const std::size_t n =
      net::build_vlan_frame(buf, flow, 42, 68, net::MacAddr{}, net::MacAddr{});
  EXPECT_EQ(n, 68u);

  const auto eth = net::parse_ethernet(buf);
  ASSERT_TRUE(eth.has_value());
  EXPECT_EQ(eth->ether_type, net::kEtherTypeVlan);

  const auto tag = net::parse_vlan(buf);
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(tag->vid, 42);
  EXPECT_EQ(tag->inner_ether_type, net::kEtherTypeIpv4);

  // parse_flow skips the tag transparently.
  const auto parsed = net::parse_flow(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, flow);

  EXPECT_EQ(net::l3_offset(buf).value(), 18u);
}

TEST(Vlan, UntaggedFrameHasNoTag) {
  FlowKey flow{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 1, 2,
               IpProto::kUdp};
  std::array<std::byte, 64> buf{};
  net::build_frame(buf, flow, 64, net::MacAddr{}, net::MacAddr{});
  EXPECT_FALSE(net::parse_vlan(buf).has_value());
  EXPECT_EQ(net::l3_offset(buf).value(), 14u);
}

TEST(Vlan, TciFieldsRoundTrip) {
  std::array<std::byte, 64> buf{};
  net::write_ethernet(buf, net::EthernetHeader{{}, {}, net::kEtherTypeVlan});
  net::VlanTag tag;
  tag.pcp = 5;
  tag.dei = true;
  tag.vid = 0xABC;
  tag.inner_ether_type = net::kEtherTypeIpv6;
  net::write_vlan(buf, tag);
  const auto parsed = net::parse_vlan(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pcp, 5);
  EXPECT_TRUE(parsed->dei);
  EXPECT_EQ(parsed->vid, 0xABC);
  EXPECT_EQ(parsed->inner_ether_type, net::kEtherTypeIpv6);
}

// --- IPv6 ---

TEST(Ipv6, AddressParseAndFormat) {
  const auto full = Ipv6Addr::parse("2001:db8:0:1:1:1:1:1");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->to_string(), "2001:db8:0:1:1:1:1:1");

  const auto elided = Ipv6Addr::parse("3ffe:2501:200:3::1");
  ASSERT_TRUE(elided.has_value());
  EXPECT_EQ(elided->octets[0], 0x3f);
  EXPECT_EQ(elided->octets[1], 0xfe);
  EXPECT_EQ(elided->octets[15], 0x01);
  EXPECT_EQ(elided->octets[7], 0x03);

  const auto loopback = Ipv6Addr::parse("::1");
  ASSERT_TRUE(loopback.has_value());
  for (std::size_t i = 0; i < 15; ++i) EXPECT_EQ(loopback->octets[i], 0);
  EXPECT_EQ(loopback->octets[15], 1);

  EXPECT_FALSE(Ipv6Addr::parse("").has_value());
  EXPECT_FALSE(Ipv6Addr::parse("1:2:3").has_value());
  EXPECT_FALSE(Ipv6Addr::parse("1::2::3").has_value());
  EXPECT_FALSE(Ipv6Addr::parse("12345::1").has_value());
  EXPECT_FALSE(Ipv6Addr::parse("gg::1").has_value());
}

TEST(Ipv6, BuildAndParseFrame) {
  const auto src = Ipv6Addr::parse("2001:db8::aa").value();
  const auto dst = Ipv6Addr::parse("2001:db8::bb").value();
  std::array<std::byte, 128> buf{};
  const std::size_t n = net::build_ipv6_frame(buf, src, dst, IpProto::kUdp,
                                              5000, 53, 80);
  EXPECT_EQ(n, 80u);

  const auto eth = net::parse_ethernet(buf);
  ASSERT_TRUE(eth.has_value());
  EXPECT_EQ(eth->ether_type, net::kEtherTypeIpv6);

  const auto ip6 = net::parse_ipv6(
      std::span<const std::byte>{buf}.subspan(14));
  ASSERT_TRUE(ip6.has_value());
  EXPECT_EQ(ip6->src, src);
  EXPECT_EQ(ip6->dst, dst);
  EXPECT_EQ(ip6->next_header, IpProto::kUdp);
  EXPECT_EQ(ip6->payload_length, 80 - 14 - 40);
  EXPECT_EQ(ip6->hop_limit, 64);

  // IPv4 flow parsing correctly refuses an IPv6 frame.
  EXPECT_FALSE(net::parse_flow(buf).has_value());
}

TEST(Ipv6, ParseRejectsIpv4Header) {
  std::array<std::byte, 64> buf{};
  FlowKey flow;
  flow.proto = IpProto::kUdp;
  net::build_frame(buf, flow, 64, net::MacAddr{}, net::MacAddr{});
  EXPECT_FALSE(
      net::parse_ipv6(std::span<const std::byte>{buf}.subspan(14)).has_value());
}

// The IPv6 rows of the Microsoft RSS verification suite.
struct RssV6Vector {
  const char* src;
  const char* dst;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint32_t l4_hash;
  std::uint32_t ip_hash;
};

class RssV6Vectors : public ::testing::TestWithParam<RssV6Vector> {};

TEST_P(RssV6Vectors, ToeplitzMatchesPublishedHashes) {
  const auto& v = GetParam();
  const auto src = Ipv6Addr::parse(v.src);
  const auto dst = Ipv6Addr::parse(v.dst);
  ASSERT_TRUE(src.has_value());
  ASSERT_TRUE(dst.has_value());
  EXPECT_EQ(net::rss_hash_ipv6(*src, *dst, v.src_port, v.dst_port, true),
            v.l4_hash);
  EXPECT_EQ(net::rss_hash_ipv6(*src, *dst, 0, 0, false), v.ip_hash);
}

INSTANTIATE_TEST_SUITE_P(
    Published, RssV6Vectors,
    ::testing::Values(
        RssV6Vector{"3ffe:2501:200:1fff::7", "3ffe:2501:200:3::1", 2794,
                    1766, 0x40207d3d, 0x2cc18cd5},
        RssV6Vector{"3ffe:501:8::260:97ff:fe40:efab", "ff02::1", 14230, 4739,
                    0xdde51bbf, 0x0f0c461c},
        RssV6Vector{"3ffe:1900:4545:3:200:f8ff:fe21:67cf",
                    "fe80::200:f8ff:fe21:67cf", 44251, 38024, 0x02d1feef,
                    0x4b61e985}));

// --- pcapng ---

class PcapngTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("wirecap_test_" + std::to_string(::getpid()) + ".pcapng");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(PcapngTest, RoundTripNanosecondTimestamps) {
  FlowKey flow{Ipv4Addr{131, 225, 2, 3}, Ipv4Addr{10, 0, 0, 1}, 999, 53,
               IpProto::kUdp};
  {
    net::PcapngWriter writer{path_};
    for (int i = 0; i < 25; ++i) {
      writer.write(net::WirePacket::make(
          Nanos{7'000'000'123LL + i * 1'000'000LL}, flow, 64,
          static_cast<std::uint64_t>(i)));
    }
    EXPECT_EQ(writer.records_written(), 25u);
  }
  net::PcapngReader reader{path_};
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 25u);
  EXPECT_EQ(reader.interfaces_seen(), 1u);
  EXPECT_EQ(reader.hardware(), "WireCAP simulated NIC");
  EXPECT_EQ(records[0].timestamp.count(), 7'000'000'123LL);
  EXPECT_EQ(records[24].timestamp.count(), 7'024'000'123LL);
  EXPECT_EQ(records[0].orig_len, 64u);
  EXPECT_EQ(records[0].interface_id, 0u);
  const auto parsed = net::parse_flow(records[0].data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, flow);
}

TEST_F(PcapngTest, NonFourByteAlignedPayloadsPadded) {
  {
    net::PcapngWriter writer{path_};
    std::array<std::byte, 61> odd{};
    odd[0] = std::byte{0xAB};
    odd[60] = std::byte{0xCD};
    writer.write(Nanos{1}, odd, 61);
    std::array<std::byte, 64> even{};
    writer.write(Nanos{2}, even, 64);
  }
  net::PcapngReader reader{path_};
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].data.size(), 61u);
  EXPECT_EQ(records[0].data[60], std::byte{0xCD});
  EXPECT_EQ(records[1].data.size(), 64u);
}

TEST_F(PcapngTest, DestructorFlushesUnclosedTail) {
  // Regression: an abandoned writer (destroyed without close()) used to
  // lose buffered tail bytes; reopening must find every packet,
  // including the last one and its packet id.
  FlowKey flow{Ipv4Addr{131, 225, 2, 3}, Ipv4Addr{10, 0, 0, 1}, 999, 53,
               IpProto::kUdp};
  {
    auto writer = std::make_unique<net::PcapngWriter>(path_);
    for (int i = 0; i < 9; ++i) {
      const auto pkt = net::WirePacket::make(Nanos{500LL * (i + 1)}, flow, 64,
                                             static_cast<std::uint64_t>(i));
      writer->write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(), 0,
                    static_cast<std::uint64_t>(100 + i));
    }
    writer.reset();  // destructor, no close()
  }
  net::PcapngReader reader{path_};
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 9u);
  EXPECT_EQ(records.back().timestamp.count(), 4'500LL);
  ASSERT_TRUE(records.back().packet_id.has_value());
  EXPECT_EQ(*records.back().packet_id, 108u);
}

TEST_F(PcapngTest, RejectsGarbage) {
  {
    std::ofstream out{path_, std::ios::binary};
    out << "definitely not pcapng";
  }
  EXPECT_THROW(net::PcapngReader{path_}, std::runtime_error);
}

TEST_F(PcapngTest, RejectsClassicPcap) {
  {
    net::PcapWriter writer{path_};  // classic format
    net::FlowKey flow;
    flow.proto = IpProto::kUdp;
    writer.write(net::WirePacket::make(Nanos{0}, flow, 64));
  }
  EXPECT_THROW(net::PcapngReader{path_}, std::runtime_error);
}

TEST_F(PcapngTest, ReplaySourceRoundTrip) {
  // Write a recording (classic pcap), replay it through the source, and
  // check timing, ordering and payload fidelity; then again at 2x speed
  // and with two loops.
  const auto pcap_path = std::filesystem::temp_directory_path() /
                         ("wirecap_replay_" + std::to_string(::getpid()) +
                          ".pcap");
  FlowKey flow{Ipv4Addr{131, 225, 2, 8}, Ipv4Addr{10, 9, 9, 9}, 1000, 53,
               IpProto::kUdp};
  {
    net::PcapWriter writer{pcap_path};
    for (int i = 0; i < 10; ++i) {
      writer.write(net::WirePacket::make(
          Nanos{1'000'000LL + i * 500'000LL}, flow, 64,
          static_cast<std::uint64_t>(i)));
    }
  }

  trace::PcapReplayConfig config;
  config.path = pcap_path;
  auto source = trace::make_pcap_replay_source(config);
  EXPECT_EQ(source->expected_packets(), 10u);
  int count = 0;
  Nanos last{-1};
  while (auto packet = source->next()) {
    // Rebased: the first packet departs at t=0, spacing preserved.
    EXPECT_EQ(packet->timestamp().count(), count * 500'000LL);
    EXPECT_GT(packet->timestamp(), last);
    last = packet->timestamp();
    const auto parsed = net::parse_flow(packet->bytes());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, flow);
    ++count;
  }
  EXPECT_EQ(count, 10);

  // 2x speedup halves the spacing.
  config.speedup = 2.0;
  auto fast = trace::make_pcap_replay_source(config);
  fast->next();
  EXPECT_EQ(fast->next()->timestamp().count(), 250'000LL);

  // Two loops double the volume and stay monotonic.
  config.speedup = 1.0;
  config.loops = 2;
  auto looped = trace::make_pcap_replay_source(config);
  EXPECT_EQ(looped->expected_packets(), 20u);
  int looped_count = 0;
  Nanos prev{-1};
  while (auto packet = looped->next()) {
    EXPECT_GT(packet->timestamp(), prev);
    prev = packet->timestamp();
    ++looped_count;
  }
  EXPECT_EQ(looped_count, 20);
  std::filesystem::remove(pcap_path);
}

TEST_F(PcapngTest, ReplaySourceReadsPcapng) {
  FlowKey flow{Ipv4Addr{10, 1, 1, 1}, Ipv4Addr{10, 2, 2, 2}, 5, 6,
               IpProto::kTcp};
  {
    net::PcapngWriter writer{path_};
    writer.write(net::WirePacket::make(Nanos{500}, flow, 64, 0));
    writer.write(net::WirePacket::make(Nanos{900}, flow, 64, 1));
  }
  trace::PcapReplayConfig config;
  config.path = path_;
  config.start = Nanos{100};
  auto source = trace::make_pcap_replay_source(config);
  EXPECT_EQ(source->next()->timestamp().count(), 100);
  EXPECT_EQ(source->next()->timestamp().count(), 500);
  EXPECT_FALSE(source->next().has_value());
}

TEST(PcapReplay, RejectsBadConfig) {
  trace::PcapReplayConfig config;
  config.path = "/nonexistent/file.pcap";
  EXPECT_THROW(trace::make_pcap_replay_source(config), std::runtime_error);
}

// --- BPF language extensions ---

TEST(BpfExtensions, ParseRendering) {
  using bpf::parse_filter;
  using bpf::to_string;
  EXPECT_EQ(to_string(*parse_filter("ip6")), "ip6");
  EXPECT_EQ(to_string(*parse_filter("vlan")), "vlan");
  EXPECT_EQ(to_string(*parse_filter("vlan 42")), "vlan 42");
  EXPECT_EQ(to_string(*parse_filter("portrange 100-200")),
            "portrange 100-200");
  EXPECT_EQ(to_string(*parse_filter("src portrange 1-1024")),
            "src portrange 1-1024");
  EXPECT_EQ(to_string(*parse_filter("greater 512")), "len >= 512");
  EXPECT_EQ(to_string(*parse_filter("less 128")), "len <= 128");
  EXPECT_THROW(parse_filter("portrange 200-100"), bpf::ParseError);
  EXPECT_THROW(parse_filter("portrange 5"), bpf::ParseError);
  EXPECT_THROW(parse_filter("vlan 5000"), bpf::ParseError);
}

TEST(BpfExtensions, Ip6PrimitiveMatchesIpv6Frames) {
  const bpf::Program program = bpf::compile_filter("ip6");
  std::array<std::byte, 80> v6{};
  net::build_ipv6_frame(v6, Ipv6Addr::parse("::1").value(),
                        Ipv6Addr::parse("::2").value(), IpProto::kUdp, 1, 2,
                        80);
  EXPECT_TRUE(bpf::matches(program, v6, 80));

  std::array<std::byte, 64> v4{};
  FlowKey flow;
  flow.proto = IpProto::kUdp;
  net::build_frame(v4, flow, 64, net::MacAddr{}, net::MacAddr{});
  EXPECT_FALSE(bpf::matches(program, v4, 64));
  EXPECT_FALSE(bpf::matches(bpf::compile_filter("ip"), v6, 80));
}

TEST(BpfExtensions, VlanPrimitiveMatchesTagAndVid) {
  FlowKey flow{Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 7, 8,
               IpProto::kUdp};
  std::array<std::byte, 128> tagged{};
  net::build_vlan_frame(tagged, flow, 77, 68, net::MacAddr{}, net::MacAddr{});
  std::array<std::byte, 64> untagged{};
  net::build_frame(untagged, flow, 64, net::MacAddr{}, net::MacAddr{});

  EXPECT_TRUE(bpf::matches(bpf::compile_filter("vlan"), tagged, 68));
  EXPECT_FALSE(bpf::matches(bpf::compile_filter("vlan"), untagged, 64));
  EXPECT_TRUE(bpf::matches(bpf::compile_filter("vlan 77"), tagged, 68));
  EXPECT_FALSE(bpf::matches(bpf::compile_filter("vlan 78"), tagged, 68));
}

TEST(BpfExtensions, PortRangeSemantics) {
  const auto frame_with_ports = [](std::uint16_t sport, std::uint16_t dport) {
    std::array<std::byte, 64> buf{};
    FlowKey flow{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, sport, dport,
                 IpProto::kTcp};
    net::build_frame(buf, flow, 64, net::MacAddr{}, net::MacAddr{});
    return buf;
  };
  const bpf::Program program = bpf::compile_filter("portrange 100-200");
  EXPECT_TRUE(bpf::matches(program, frame_with_ports(100, 9999), 64));
  EXPECT_TRUE(bpf::matches(program, frame_with_ports(200, 9999), 64));
  EXPECT_TRUE(bpf::matches(program, frame_with_ports(9999, 150), 64));
  EXPECT_FALSE(bpf::matches(program, frame_with_ports(99, 201), 64));
  EXPECT_FALSE(bpf::matches(program, frame_with_ports(9999, 9999), 64));

  const bpf::Program src_only = bpf::compile_filter("src portrange 100-200");
  EXPECT_TRUE(bpf::matches(src_only, frame_with_ports(150, 9999), 64));
  EXPECT_FALSE(bpf::matches(src_only, frame_with_ports(9999, 150), 64));
}

class ExtensionOracleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExtensionOracleTest, CompiledAgreesWithOracleOnMixedFrames) {
  const bpf::ExprPtr expr = bpf::parse_filter(GetParam());
  const bpf::Program program = bpf::compile(expr.get());
  ASSERT_TRUE(bpf::verify(program).ok);

  Xoshiro256 rng{0xE47};
  int matched = 0;
  for (int i = 0; i < 1500; ++i) {
    std::array<std::byte, 256> buf{};
    std::size_t len = 0;
    const double pick = rng.next_double();
    FlowKey flow = trace::random_flow(rng);
    flow.src_port = static_cast<std::uint16_t>(rng.next_in(1, 400));
    flow.dst_port = static_cast<std::uint16_t>(rng.next_in(1, 400));
    if (pick < 0.4) {
      len = net::build_frame(buf, flow, 64, net::MacAddr{}, net::MacAddr{});
    } else if (pick < 0.7) {
      len = net::build_vlan_frame(
          buf, flow, static_cast<std::uint16_t>(rng.next_below(100)), 68,
          net::MacAddr{}, net::MacAddr{});
    } else {
      Ipv6Addr src, dst;
      for (auto& o : src.octets) o = static_cast<std::uint8_t>(rng.next());
      for (auto& o : dst.octets) o = static_cast<std::uint8_t>(rng.next());
      len = net::build_ipv6_frame(buf, src, dst, flow.proto, flow.src_port,
                                  flow.dst_port, 90);
    }
    const auto frame = std::span<const std::byte>{buf}.first(len);
    const bool vm = bpf::matches(program, frame,
                                 static_cast<std::uint32_t>(len));
    const bool oracle =
        bpf::evaluate(expr.get(), frame, static_cast<std::uint32_t>(len));
    ASSERT_EQ(vm, oracle) << GetParam() << " i=" << i;
    if (vm) ++matched;
  }
  EXPECT_GT(matched, 0) << GetParam();
  EXPECT_LT(matched, 1500) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Filters, ExtensionOracleTest,
                         ::testing::Values("ip6", "vlan", "vlan 42",
                                           "ip6 or vlan",
                                           "portrange 50-250",
                                           "src portrange 100-300 and udp",
                                           "not (ip6 or vlan)",
                                           "greater 70", "less 70",
                                           "ip and not vlan"));

// --- DPDK engine ---

TEST(DpdkEngine, MempoolBoundBuffering) {
  // DPDK's RX lcore keeps the ring drained, so a burst up to roughly
  // the mempool size survives a slow consumer; DNA (ring-bound) loses
  // the same burst.
  const auto run_with = [](apps::EngineKind kind) {
    apps::ExperimentConfig config;
    config.engine.kind = kind;
    config.engine.cells_per_chunk = 256;  // DPDK mempool = 256*100
    config.engine.chunk_count = 100;
    config.num_queues = 1;
    config.x = 300;
    apps::Experiment experiment{config};
    trace::ConstantRateConfig trace_config;
    trace_config.packet_count = 20'000;
    Xoshiro256 rng{0xD9D};
    trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
    trace::ConstantRateSource source{trace_config};
    return experiment.run(source, Nanos::from_seconds(2));
  };
  EXPECT_EQ(run_with(apps::EngineKind::kDpdk).drop_rate(), 0.0);
  EXPECT_GT(run_with(apps::EngineKind::kDna).drop_rate(), 0.5);
}

TEST(DpdkEngine, ConservationAndZeroCopy) {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kDpdk;
  config.num_queues = 1;
  config.x = 0;
  apps::Experiment experiment{config};
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 50'000;
  Xoshiro256 rng{0xD9E};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};
  const auto result = experiment.run(source, Nanos::from_seconds(2));
  EXPECT_EQ(result.sent, result.delivered + result.capture_dropped);
  EXPECT_EQ(result.copies, 0u);
}

TEST(DpdkEngine, AppOffloadRecoversImbalance) {
  const auto run_with = [](apps::EngineKind kind) {
    apps::ExperimentConfig config;
    config.engine.kind = kind;
    config.engine.cells_per_chunk = 64;
    config.engine.chunk_count = 50;  // mempool 3,200
    config.num_queues = 2;
    config.x = 300;
    apps::Experiment experiment{config};
    trace::ConstantRateConfig trace_config;
    trace_config.packet_count = 140'000;
    trace_config.link_bits_per_second = 70e3 * 84 * 8;
    Xoshiro256 rng{0xD9F};
    trace_config.flows = {trace::flow_for_queue(rng, 0, 2)};
    trace::ConstantRateSource source{trace_config};
    return experiment.run(source,
                          Nanos::from_seconds(2) + Nanos::from_seconds(30));
  };
  const auto plain = run_with(apps::EngineKind::kDpdk);
  const auto offload = run_with(apps::EngineKind::kDpdkAppOffload);
  EXPECT_GT(plain.drop_rate(), 0.3);
  EXPECT_LT(offload.drop_rate(), 0.02);
  EXPECT_GT(offload.offloaded_chunks, 0u);
  EXPECT_GT(offload.per_queue[1].processed, 140'000u / 4);
}

TEST(DpdkEngine, RejectsBadGeometry) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  engines::DpdkConfig config;
  config.mempool_size = 512;  // smaller than the 1024 ring
  EXPECT_THROW((engines::DpdkEngine{scheduler, nic, config}),
               std::invalid_argument);
}

}  // namespace
}  // namespace wirecap
