// Tests for the traffic substrate: constant-rate pacing, RSS-aware flow
// synthesis, the border-router generator's imbalance shape (the Figure 3
// preconditions), determinism, and trace recording/replay.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/rss.hpp"
#include "trace/border_router.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"
#include "trace/source.hpp"
#include "trace/trace_stats.hpp"

namespace wirecap::trace {
namespace {

TEST(FlowGen, FlowForQueueLandsOnQueue) {
  Xoshiro256 rng{5};
  for (std::uint32_t queue = 0; queue < 6; ++queue) {
    for (int i = 0; i < 20; ++i) {
      const net::FlowKey flow = flow_for_queue(rng, queue, 6);
      EXPECT_EQ(net::rss_queue(flow, 6), queue);
    }
  }
}

TEST(FlowGen, FlowsForQueueAreDistinct) {
  Xoshiro256 rng{6};
  const auto flows = flows_for_queue(rng, 2, 6, 50);
  ASSERT_EQ(flows.size(), 50u);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (std::size_t j = i + 1; j < flows.size(); ++j) {
      EXPECT_NE(flows[i], flows[j]);
    }
  }
}

TEST(FlowGen, FrameSizesAreTrimodalAndLegal) {
  Xoshiro256 rng{7};
  int small = 0, large = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint32_t size = sample_frame_size(rng);
    ASSERT_GE(size, 64u);
    ASSERT_LE(size, 1518u);
    if (size <= 100) ++small;
    if (size >= 1400) ++large;
  }
  EXPECT_GT(small, 4000);
  EXPECT_GT(large, 3000);
}

TEST(ConstantRate, PacesAtExactWireRate) {
  ConstantRateConfig config;
  config.packet_count = 14'880;  // 1 ms at 64-byte wire rate
  config.frame_bytes = 64;
  config.flows = {net::FlowKey{}};
  ConstantRateSource source{config};
  EXPECT_NEAR(source.rate().per_second(), 14'880'952.0, 1.0);

  std::uint64_t count = 0;
  Nanos last{};
  while (auto packet = source.next()) {
    last = packet->timestamp();
    EXPECT_EQ(packet->wire_len(), 64u);
    EXPECT_EQ(packet->seq(), count);
    ++count;
  }
  EXPECT_EQ(count, 14'880u);
  // 14,880 packets at 14.88 Mp/s span ~1 ms.
  EXPECT_NEAR(last.millis(), 1.0, 0.01);
}

TEST(ConstantRate, RoundRobinsFlows) {
  Xoshiro256 rng{8};
  ConstantRateConfig config;
  config.packet_count = 6;
  config.flows = {random_flow(rng), random_flow(rng), random_flow(rng)};
  ConstantRateSource source{config};
  std::vector<net::FlowKey> seen;
  while (auto packet = source.next()) seen.push_back(packet->flow());
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen[0], seen[3]);
  EXPECT_EQ(seen[1], seen[4]);
  EXPECT_EQ(seen[2], seen[5]);
  EXPECT_NE(seen[0], seen[1]);
}

TEST(ConstantRate, RequiresFlows) {
  ConstantRateConfig config;
  EXPECT_THROW(ConstantRateSource{config}, std::invalid_argument);
}

BorderRouterConfig small_config() {
  BorderRouterConfig config;
  config.scale = 0.05;  // 20x smaller for fast tests
  return config;
}

TEST(BorderRouter, Deterministic) {
  auto a = make_border_router_source(small_config());
  auto b = make_border_router_source(small_config());
  int compared = 0;
  while (true) {
    const auto pa = a->next();
    const auto pb = b->next();
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa) break;
    ASSERT_EQ(pa->timestamp(), pb->timestamp());
    ASSERT_EQ(pa->flow(), pb->flow());
    ASSERT_EQ(pa->wire_len(), pb->wire_len());
    ++compared;
  }
  EXPECT_GT(compared, 10'000);
}

TEST(BorderRouter, TimestampsNonDecreasing) {
  auto source = make_border_router_source(small_config());
  Nanos last = Nanos::zero();
  while (auto packet = source->next()) {
    ASSERT_GE(packet->timestamp(), last);
    last = packet->timestamp();
  }
  EXPECT_GT(last.seconds(), 25.0);  // spans most of the 32 s window
}

TEST(BorderRouter, ReproducesPaperImbalanceShape) {
  // The Figure 3 preconditions: with six queues, queue 0 carries a
  // sustained overload after t=10 s (~80 kp/s at full scale) and queue 3
  // a moderate load (~20 kp/s) with bursts.
  const BorderRouterConfig config = small_config();
  auto source = make_border_router_source(config);
  const TraceStats stats = analyze(*source, 6);

  ASSERT_EQ(stats.per_queue.size(), 6u);
  const double scale = config.scale;

  // Queue 0 dominates.
  for (std::uint32_t q = 1; q < 6; ++q) {
    EXPECT_GT(stats.queue_totals[0], stats.queue_totals[q]) << "queue " << q;
  }
  // Queue 3 carries clearly more than the background-only queues.
  EXPECT_GT(stats.queue_totals[3], stats.queue_totals[1] * 3 / 2);

  // Long-term imbalance: mean rate on queue 0 in the second phase is
  // roughly hot_rate_late (scaled).
  const BinnedSeries& q0 = stats.per_queue[0];
  std::uint64_t late_packets = 0;
  std::size_t late_bins = 0;
  for (std::size_t bin = 1200; bin < q0.bin_count(); ++bin) {  // t > 12 s
    late_packets += q0.bin(bin);
    ++late_bins;
  }
  ASSERT_GT(late_bins, 0u);
  const double late_rate =
      static_cast<double>(late_packets) / (static_cast<double>(late_bins) * 0.01);
  EXPECT_NEAR(late_rate, config.hot_rate_late * scale,
              config.hot_rate_late * scale * 0.25);

  // Short-term burstiness on queue 3: peak bin well above its mean bin.
  const BinnedSeries& q3 = stats.per_queue[3];
  EXPECT_GT(static_cast<double>(q3.peak()), 4.0 * q3.mean());
}

TEST(BorderRouter, ScaleScalesVolume) {
  BorderRouterConfig big = small_config();
  BorderRouterConfig half = small_config();
  half.scale = big.scale / 2;
  auto big_source = make_border_router_source(big);
  auto half_source = make_border_router_source(half);
  std::uint64_t big_count = 0, half_count = 0;
  while (big_source->next()) ++big_count;
  while (half_source->next()) ++half_count;
  EXPECT_NEAR(static_cast<double>(half_count),
              static_cast<double>(big_count) / 2.0,
              static_cast<double>(big_count) * 0.1);
}

TEST(BorderRouter, ValidatesConfig) {
  BorderRouterConfig config;
  config.num_queues = 0;
  EXPECT_THROW(make_border_router_source(config), std::invalid_argument);
  config = BorderRouterConfig{};
  config.hot_queue = 99;
  EXPECT_THROW(make_border_router_source(config), std::invalid_argument);
}

TEST(RecordedTrace, RecordAndReplayIdentical) {
  BorderRouterConfig config = small_config();
  config.scale = 0.01;
  auto source = make_border_router_source(config);
  const RecordedTrace trace = RecordedTrace::record(*source);
  ASSERT_GT(trace.size(), 1000u);

  auto replay = trace.replay();
  EXPECT_EQ(replay->expected_packets(), trace.size());
  std::size_t i = 0;
  while (auto packet = replay->next()) {
    ASSERT_EQ(packet->timestamp(), trace.packets()[i].timestamp());
    ASSERT_EQ(packet->seq(), trace.packets()[i].seq());
    ++i;
  }
  EXPECT_EQ(i, trace.size());
}

TEST(TraceStats, ComputesRatesAndFlows) {
  ConstantRateConfig config;
  config.packet_count = 1000;
  Xoshiro256 rng{3};
  config.flows = {random_flow(rng), random_flow(rng)};
  ConstantRateSource source{config};
  const TraceStats stats = analyze(source, 4);
  EXPECT_EQ(stats.total_packets, 1000u);
  EXPECT_EQ(stats.flow_count, 2u);
  EXPECT_EQ(stats.total_bytes, 64'000u);
  EXPECT_NEAR(stats.mean_rate(), 14'880'952.0, 20'000.0);
}

}  // namespace
}  // namespace wirecap::trace
