// Unit tests for the discrete-event substrate: scheduler ordering and
// cancellation, simulated-core rate behaviour and priority starvation
// (the receive-livelock ingredient), and the I/O bus model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/bus.hpp"
#include "sim/core.hpp"
#include "sim/costs.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(Nanos{30}, [&] { order.push_back(3); });
  scheduler.schedule_at(Nanos{10}, [&] { order.push_back(1); });
  scheduler.schedule_at(Nanos{20}, [&] { order.push_back(2); });
  EXPECT_EQ(scheduler.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), Nanos{30});
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    scheduler.schedule_at(Nanos{100}, [&, i] { order.push_back(i); });
  }
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RunUntilAdvancesClock) {
  Scheduler scheduler;
  int fired = 0;
  scheduler.schedule_at(Nanos{50}, [&] { ++fired; });
  scheduler.schedule_at(Nanos{150}, [&] { ++fired; });
  scheduler.run_until(Nanos{100});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(scheduler.now(), Nanos{100});
  scheduler.run_until(Nanos{200});
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CancellationPreventsExecution) {
  Scheduler scheduler;
  int fired = 0;
  EventHandle handle = scheduler.schedule_at(Nanos{10}, [&] { ++fired; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  scheduler.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CallbackMaySchedule) {
  Scheduler scheduler;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) scheduler.schedule_after(Nanos{10}, step);
  };
  scheduler.schedule_after(Nanos{0}, step);
  scheduler.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(scheduler.now(), Nanos{40});
}

TEST(Scheduler, PastSchedulingThrows) {
  Scheduler scheduler;
  scheduler.schedule_at(Nanos{100}, [] {});
  scheduler.run();
  EXPECT_THROW(scheduler.schedule_at(Nanos{50}, [] {}), std::invalid_argument);
}

TEST(SimCore, SerializesWork) {
  Scheduler scheduler;
  SimCore core{scheduler, 0};
  std::vector<std::int64_t> completion_times;
  for (int i = 0; i < 3; ++i) {
    core.submit(WorkPriority::kUser, Nanos{100}, [&] {
      completion_times.push_back(scheduler.now().count());
    });
  }
  scheduler.run();
  EXPECT_EQ(completion_times, (std::vector<std::int64_t>{100, 200, 300}));
  EXPECT_EQ(core.busy_time(), Nanos{300});
}

TEST(SimCore, SpeedScaling) {
  Scheduler scheduler;
  SimCore slow{scheduler, 0, 1.2};  // half of the 2.4 GHz reference
  std::int64_t done_at = 0;
  slow.submit(WorkPriority::kUser, Nanos{100},
              [&] { done_at = scheduler.now().count(); });
  scheduler.run();
  EXPECT_EQ(done_at, 200);
}

TEST(SimCore, KernelWorkStarvesUserWork) {
  // The receive-livelock mechanism: a stream of kernel-priority items
  // keeps jumping ahead of queued user work.
  Scheduler scheduler;
  SimCore core{scheduler, 0};
  std::int64_t user_done_at = -1;
  int kernel_done = 0;

  // Feed 10 kernel items; each completion enqueues the next, emulating
  // NAPI polling under sustained arrivals.
  std::function<void()> kernel_feed = [&] {
    ++kernel_done;
    if (kernel_done < 10) {
      core.submit(WorkPriority::kKernel, Nanos{100}, kernel_feed);
    }
  };
  core.submit(WorkPriority::kKernel, Nanos{100}, kernel_feed);
  core.submit(WorkPriority::kUser, Nanos{100},
              [&] { user_done_at = scheduler.now().count(); });
  scheduler.run();
  // All 10 kernel items ran before the single user item.
  EXPECT_EQ(user_done_at, 1100);
}

TEST(SimCore, UtilizationReflectsBusyFraction) {
  Scheduler scheduler;
  SimCore core{scheduler, 0};
  core.submit(WorkPriority::kUser, Nanos{250}, [] {});
  scheduler.schedule_at(Nanos{1000}, [] {});
  scheduler.run();
  EXPECT_NEAR(core.utilization(), 0.25, 1e-9);
}

TEST(IoBus, UnconstrainedCompletesSynchronously) {
  Scheduler scheduler;
  IoBus bus{scheduler};
  bool done = false;
  bus.issue(5.0, [&] { done = true; });
  EXPECT_TRUE(done);  // no scheduling round-trip
  EXPECT_DOUBLE_EQ(bus.total_transactions(), 5.0);
}

TEST(IoBus, ConstrainedSerializesAtCapacity) {
  Scheduler scheduler;
  IoBus bus{scheduler, Rate{1e6}};  // 1 transaction per microsecond
  std::vector<std::int64_t> completions;
  for (int i = 0; i < 3; ++i) {
    bus.issue(1.0, [&] { completions.push_back(scheduler.now().count()); });
  }
  scheduler.run();
  EXPECT_EQ(completions, (std::vector<std::int64_t>{1000, 2000, 3000}));
}

TEST(IoBus, BacklogDelayGrowsUnderOverload) {
  Scheduler scheduler;
  IoBus bus{scheduler, Rate{1e6}};
  for (int i = 0; i < 100; ++i) bus.issue(1.0, [] {});
  EXPECT_EQ(bus.current_backlog_delay(), Nanos::from_micros(100));
}

TEST(CostModel, PktHandlerRateMatchesPaper) {
  // x = 300 at 2.4 GHz must give the paper's 38,844 p/s.
  const CostModel costs;
  const Nanos per_packet = costs.pkt_handler_cost(300);
  const double rate = 1e9 / static_cast<double>(per_packet.count());
  EXPECT_NEAR(rate, kPaperPktHandlerRate300, 40.0);
}

TEST(CostModel, X0StaysAboveWireRate) {
  // With x = 0 a single core must keep up with 14.88 Mp/s (Figure 8:
  // DNA, NETMAP and WireCAP capture at wire speed without loss).
  const CostModel costs;
  const double rate =
      1e9 / static_cast<double>(costs.pkt_handler_cost(0).count() +
                                costs.ring_sync_cost.count());
  EXPECT_GT(rate, kWireRate64B);
}

}  // namespace
}  // namespace wirecap::sim
