// Tests for the NIC hardware model: RX ring state machine, descriptor
// exhaustion drops, the internal RX FIFO, steering policies, the DMA
// path (bytes actually land in attached buffers), TX serialization, and
// the traffic injector.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/rss.hpp"
#include "nic/device.hpp"
#include "nic/rx_ring.hpp"
#include "nic/steering.hpp"
#include "nic/wire.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::nic {
namespace {

net::FlowKey test_flow(std::uint16_t src_port = 1000) {
  return net::FlowKey{net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2},
                      src_port, 80, net::IpProto::kUdp};
}

// --- RxRing state machine ---

class RxRingTest : public ::testing::Test {
 protected:
  RxRing ring_{4};
  std::vector<std::byte> memory_ = std::vector<std::byte>(4 * 128);

  DmaBuffer buffer(std::uint64_t cookie) {
    return DmaBuffer{{memory_.data() + cookie * 128, 128}, cookie};
  }
};

TEST_F(RxRingTest, InitialStateEmpty) {
  EXPECT_EQ(ring_.size(), 4u);
  EXPECT_EQ(ring_.empty_slots(), 4u);
  EXPECT_FALSE(ring_.can_receive());
  EXPECT_FALSE(ring_.has_filled());
  EXPECT_EQ(ring_.ready_count(), 0u);
}

TEST_F(RxRingTest, AttachMakesReady) {
  EXPECT_TRUE(ring_.attach(buffer(0)));
  EXPECT_TRUE(ring_.can_receive());
  EXPECT_EQ(ring_.ready_count(), 1u);
  EXPECT_EQ(ring_.empty_slots(), 3u);
}

TEST_F(RxRingTest, FullRingRefusesAttach) {
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(ring_.attach(buffer(i)));
  EXPECT_FALSE(ring_.attach(buffer(0)));
}

TEST_F(RxRingTest, DmaLifecycle) {
  ring_.attach(buffer(7 % 4));
  const std::uint32_t index = ring_.begin_dma();
  EXPECT_FALSE(ring_.can_receive());
  EXPECT_FALSE(ring_.has_filled());  // in flight, not yet visible
  RxWriteback writeback;
  writeback.length = 60;
  writeback.seq = 42;
  ring_.complete_dma(index, writeback);
  ASSERT_TRUE(ring_.has_filled());
  EXPECT_EQ(ring_.filled_count(), 1u);
  EXPECT_EQ(ring_.peek_writeback().seq, 42u);
  const auto consumed = ring_.consume();
  EXPECT_EQ(consumed.writeback.length, 60u);
  EXPECT_EQ(ring_.empty_slots(), 4u);
}

TEST_F(RxRingTest, FifoOrderAcrossWrap) {
  // Cycle 3 batches through the 4-slot ring; cookies must come back in
  // attach order every time.
  std::uint64_t next_cookie = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) ring_.attach(buffer((next_cookie++) % 4));
    for (int i = 0; i < 4; ++i) {
      const auto index = ring_.begin_dma();
      RxWriteback writeback;
      writeback.seq = static_cast<std::uint64_t>(round * 4 + i);
      ring_.complete_dma(index, writeback);
    }
    for (int i = 0; i < 4; ++i) {
      const auto consumed = ring_.consume();
      EXPECT_EQ(consumed.writeback.seq,
                static_cast<std::uint64_t>(round * 4 + i));
    }
  }
}

TEST_F(RxRingTest, MisuseThrows) {
  EXPECT_THROW(ring_.begin_dma(), std::logic_error);
  EXPECT_THROW(ring_.consume(), std::logic_error);
  EXPECT_THROW(static_cast<void>(ring_.peek_writeback()), std::logic_error);
  ring_.attach(buffer(0));
  const auto index = ring_.begin_dma();
  ring_.complete_dma(index, RxWriteback{});
  EXPECT_THROW(ring_.complete_dma(index, RxWriteback{}), std::logic_error);
  EXPECT_THROW(ring_.attach(DmaBuffer{}), std::invalid_argument);
}

// --- steering ---

TEST(Steering, RssIsPerFlowStable) {
  RssSteering rss;
  const auto p1 = net::WirePacket::make(Nanos{0}, test_flow(1), 64);
  const auto p2 = net::WirePacket::make(Nanos{1}, test_flow(1), 64);
  EXPECT_EQ(rss.select_queue(p1, 6), rss.select_queue(p2, 6));
  EXPECT_EQ(rss.select_queue(p1, 6), net::rss_queue(test_flow(1), 6));
}

TEST(Steering, RoundRobinCycles) {
  RoundRobinSteering rr;
  const auto p = net::WirePacket::make(Nanos{0}, test_flow(), 64);
  for (std::uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(rr.select_queue(p, 4), i % 4);
  }
}

TEST(Steering, RoundRobinSplitsOneFlow) {
  // The §2.3 strawman: round-robin spreads even a single flow across
  // queues, breaking application logic.
  RoundRobinSteering rr;
  const auto p = net::WirePacket::make(Nanos{0}, test_flow(), 64);
  EXPECT_NE(rr.select_queue(p, 4), rr.select_queue(p, 4));
}

TEST(Steering, FlowDirectorProgramAndFallback) {
  FlowDirectorSteering fdir{2};
  const auto p = net::WirePacket::make(Nanos{0}, test_flow(), 64);
  const std::uint32_t rss_choice = net::rss_queue(test_flow(), 8);
  EXPECT_EQ(fdir.select_queue(p, 8), rss_choice);  // miss -> RSS
  EXPECT_TRUE(fdir.program(test_flow(), (rss_choice + 1) % 8));
  EXPECT_EQ(fdir.select_queue(p, 8), (rss_choice + 1) % 8);
  // Capacity enforcement.
  EXPECT_TRUE(fdir.program(test_flow(2), 0));
  EXPECT_FALSE(fdir.program(test_flow(3), 0));
  fdir.remove(test_flow());
  EXPECT_EQ(fdir.select_queue(p, 8), rss_choice);
}

// --- device ---

class NicFixture : public ::testing::Test {
 protected:
  NicFixture() : bus_(scheduler_) {}

  MultiQueueNic make_nic(NicConfig config) {
    return MultiQueueNic{scheduler_, bus_, config};
  }

  /// Attach `count` buffers to queue 0 of `nic`.
  void attach(MultiQueueNic& nic, std::uint32_t count) {
    memory_.resize(static_cast<std::size_t>(count) * 2048);
    for (std::uint32_t i = 0; i < count; ++i) {
      nic.rx_ring(0).attach(
          DmaBuffer{{memory_.data() + i * 2048, 2048}, i});
    }
    nic.kick(0);
  }

  sim::Scheduler scheduler_;
  sim::IoBus bus_;
  std::vector<std::byte> memory_;
};

TEST_F(NicFixture, DmaWritesPacketBytesIntoBuffer) {
  NicConfig config;
  config.num_rx_queues = 1;
  config.rx_ring_size = 8;
  auto nic = make_nic(config);
  attach(nic, 8);

  const auto packet = net::WirePacket::make(Nanos{100}, test_flow(), 64, 5);
  nic.receive(packet);
  scheduler_.run();

  RxRing& ring = nic.rx_ring(0);
  ASSERT_TRUE(ring.has_filled());
  const auto consumed = ring.consume();
  EXPECT_EQ(consumed.writeback.seq, 5u);
  EXPECT_EQ(consumed.writeback.wire_length, 64u);
  EXPECT_EQ(consumed.writeback.timestamp, Nanos{100});
  // The DMA'd bytes are the real frame: parse them back.
  const auto flow = net::parse_flow(
      consumed.buffer.data.first(consumed.writeback.length));
  ASSERT_TRUE(flow.has_value());
  EXPECT_EQ(*flow, test_flow());
  EXPECT_EQ(nic.rx_stats(0).received, 1u);
}

TEST_F(NicFixture, DropsWhenNoDescriptorAndFifoFull) {
  NicConfig config;
  config.num_rx_queues = 1;
  config.rx_ring_size = 4;
  config.rx_fifo_bytes = 2 * 128;  // room for two 64-byte frames
  auto nic = make_nic(config);
  attach(nic, 4);

  for (int i = 0; i < 10; ++i) {
    nic.receive(net::WirePacket::make(Nanos{i}, test_flow(), 64,
                                      static_cast<std::uint64_t>(i)));
  }
  scheduler_.run();
  // 4 into the ring, 2 into the FIFO, 4 dropped.
  EXPECT_EQ(nic.rx_stats(0).received, 4u);
  EXPECT_EQ(nic.rx_stats(0).fifo_buffered, 2u);
  EXPECT_EQ(nic.rx_stats(0).dropped, 4u);
  EXPECT_EQ(nic.total_rx_dropped(), 4u);
}

TEST_F(NicFixture, KickDrainsFifoIntoRefilledRing) {
  NicConfig config;
  config.num_rx_queues = 1;
  config.rx_ring_size = 2;
  auto nic = make_nic(config);
  attach(nic, 2);

  for (int i = 0; i < 4; ++i) {
    nic.receive(net::WirePacket::make(Nanos{i}, test_flow(), 64,
                                      static_cast<std::uint64_t>(i)));
  }
  scheduler_.run();
  EXPECT_EQ(nic.rx_stats(0).received, 2u);  // ring full, 2 wait in FIFO

  // Consume both and refill: the FIFO drains in arrival order.
  RxRing& ring = nic.rx_ring(0);
  EXPECT_EQ(ring.consume().writeback.seq, 0u);
  EXPECT_EQ(ring.consume().writeback.seq, 1u);
  for (std::uint32_t i = 0; i < 2; ++i) {
    ring.attach(DmaBuffer{{memory_.data() + i * 2048, 2048}, i});
  }
  nic.kick(0);
  scheduler_.run();
  EXPECT_EQ(nic.rx_stats(0).received, 4u);
  EXPECT_EQ(ring.consume().writeback.seq, 2u);
  EXPECT_EQ(ring.consume().writeback.seq, 3u);
}

TEST_F(NicFixture, FifoFootprintUsesSlotGranularity) {
  NicConfig config;
  config.num_rx_queues = 1;
  config.rx_ring_size = 1;
  config.rx_fifo_bytes = 512;   // 4 slots of 128
  config.rx_fifo_slot_bytes = 128;
  auto nic = make_nic(config);
  attach(nic, 1);

  // First packet takes the descriptor.  A 200-byte frame occupies two
  // 128-byte slots, so only two fit in the 512-byte FIFO.
  for (int i = 0; i < 4; ++i) {
    nic.receive(net::WirePacket::make(Nanos{i}, test_flow(), 200,
                                      static_cast<std::uint64_t>(i)));
  }
  scheduler_.run();
  EXPECT_EQ(nic.rx_stats(0).fifo_buffered, 2u);
  EXPECT_EQ(nic.rx_stats(0).dropped, 1u);
}

TEST_F(NicFixture, RxInterruptFiresPerCompletion) {
  NicConfig config;
  config.num_rx_queues = 1;
  config.rx_ring_size = 8;
  auto nic = make_nic(config);
  attach(nic, 8);
  int interrupts = 0;
  nic.set_rx_interrupt(0, [&] { ++interrupts; });
  for (int i = 0; i < 5; ++i) {
    nic.receive(net::WirePacket::make(Nanos{i}, test_flow(), 64));
  }
  scheduler_.run();
  EXPECT_EQ(interrupts, 5);
}

TEST_F(NicFixture, SteersAcrossQueues) {
  NicConfig config;
  config.num_rx_queues = 4;
  config.rx_ring_size = 64;
  auto nic = make_nic(config);
  std::vector<std::vector<std::byte>> cells(4);
  for (std::uint32_t q = 0; q < 4; ++q) {
    cells[q].resize(64 * 2048);
    for (std::uint32_t i = 0; i < 64; ++i) {
      nic.rx_ring(q).attach(DmaBuffer{{cells[q].data() + i * 2048, 2048}, i});
    }
  }

  Xoshiro256 rng{11};
  std::array<std::uint64_t, 4> expected{};
  for (int i = 0; i < 200; ++i) {
    const auto flow = trace::random_flow(rng);
    ++expected[net::rss_queue(flow, 4)];
    nic.receive(net::WirePacket::make(Nanos{i}, flow, 64));
  }
  scheduler_.run();
  for (std::uint32_t q = 0; q < 4; ++q) {
    EXPECT_EQ(nic.rx_stats(q).received + nic.rx_stats(q).dropped, expected[q]);
  }
}

TEST_F(NicFixture, TransmitSerializesAtLineRate) {
  NicConfig config;
  config.num_tx_queues = 1;
  auto nic = make_nic(config);
  std::vector<std::int64_t> egress_times;
  nic.set_egress([&](const net::WirePacket&) {
    egress_times.push_back(scheduler_.now().count());
  });

  const auto packet = net::WirePacket::make(Nanos{0}, test_flow(), 64);
  std::vector<std::byte> frame{packet.bytes().begin(), packet.bytes().end()};
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    TxRequest request;
    request.frame = frame;
    request.wire_length = 64;
    request.on_complete = [&] { ++completions; };
    EXPECT_TRUE(nic.transmit(0, std::move(request)));
  }
  scheduler_.run();
  EXPECT_EQ(completions, 3);
  ASSERT_EQ(egress_times.size(), 3u);
  // 64 + 20 bytes at 10 Gb/s = 67.2 ns per frame.
  EXPECT_NEAR(static_cast<double>(egress_times[0]), 67.2, 1.0);
  EXPECT_NEAR(static_cast<double>(egress_times[2] - egress_times[1]), 67.2,
              2.0);
  EXPECT_EQ(nic.total_transmitted(), 3u);
}

TEST_F(NicFixture, TxRingFullDrops) {
  NicConfig config;
  config.tx_ring_size = 2;
  auto nic = make_nic(config);
  const auto packet = net::WirePacket::make(Nanos{0}, test_flow(), 64);
  std::vector<std::byte> frame{packet.bytes().begin(), packet.bytes().end()};
  int accepted = 0;
  for (int i = 0; i < 5; ++i) {
    TxRequest request;
    request.frame = frame;
    request.wire_length = 64;
    if (nic.transmit(0, std::move(request))) ++accepted;
  }
  // The first transmit starts immediately (popped from the queue by the
  // drain loop via the synchronous unconstrained bus), freeing a slot.
  EXPECT_GE(accepted, 2);
  EXPECT_GT(nic.tx_stats(0).dropped, 0u);
}

TEST_F(NicFixture, InjectorDeliversAtTimestamps) {
  NicConfig config;
  config.rx_ring_size = 32;
  auto nic = make_nic(config);
  attach(nic, 32);

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 10;
  trace_config.flows = {test_flow()};
  trace::ConstantRateSource source{trace_config};
  TrafficInjector injector{scheduler_, source, nic};
  injector.start();
  scheduler_.run();
  EXPECT_EQ(injector.injected(), 10u);
  EXPECT_EQ(nic.rx_stats(0).received, 10u);
  // Clock advanced to the last packet's timestamp (9 intervals).
  EXPECT_NEAR(static_cast<double>(scheduler_.now().count()), 9 * 67.2, 2.0);
}

}  // namespace
}  // namespace wirecap::nic
