// Unit tests for src/common: containers, queues, RNG, statistics, units.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "common/fixed_ring.hpp"
#include "common/handoff.hpp"
#include "common/log.hpp"
#include "common/mpmc_queue.hpp"
#include "common/rng.hpp"
#include "common/spsc_queue.hpp"
#include "common/spsc_ring.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/steal_inbox.hpp"
#include "common/units.hpp"

namespace wirecap {
namespace {

// --- units ---

TEST(Units, WireRate64BytesIs14_88Mpps) {
  const Rate rate = ethernet::wire_rate(ethernet::k10GbpsBits, 64);
  EXPECT_NEAR(rate.per_second(), 14'880'952.0, 1.0);
}

TEST(Units, WireRate1518BytesIs812Kpps) {
  const Rate rate = ethernet::wire_rate(ethernet::k10GbpsBits, 1518);
  EXPECT_NEAR(rate.per_second(), 812'743.8, 1.0);
}

TEST(Units, NanosArithmetic) {
  const Nanos a = Nanos::from_millis(1.5);
  EXPECT_EQ(a.count(), 1'500'000);
  EXPECT_DOUBLE_EQ(a.seconds(), 0.0015);
  EXPECT_EQ((a + Nanos{500'000}).count(), 2'000'000);
  EXPECT_LT(Nanos{1}, Nanos{2});
}

TEST(Units, RateInterval) {
  const Rate rate{1e6};
  EXPECT_EQ(rate.interval().count(), 1000);
  EXPECT_EQ(rate.events_in(Nanos::from_seconds(2.0)), 2'000'000);
  EXPECT_EQ(Rate{0.0}.interval(), Nanos::max());
}

// --- status ---

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status bad{StatusCode::kExhausted};
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.message(), "exhausted");
}

TEST(Result, ValueAndError) {
  Result<int> good{42};
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, 42);
  Result<int> bad{StatusCode::kNotFound};
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_THROW(static_cast<void>(bad.value()), std::runtime_error);
}

// --- FixedRing ---

TEST(FixedRing, PushPopFifo) {
  FixedRing<int> ring{4};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push_back(i));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push_back(99));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.pop_front(), i);
  EXPECT_TRUE(ring.empty());
}

TEST(FixedRing, WrapAround) {
  FixedRing<int> ring{3};
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.push_back(round));
    EXPECT_EQ(ring.pop_front(), round);
  }
}

TEST(FixedRing, PushFrontAndAt) {
  FixedRing<int> ring{4};
  ring.push_back(2);
  ring.push_front(1);
  ring.push_back(3);
  EXPECT_EQ(ring.at(0), 1);
  EXPECT_EQ(ring.at(1), 2);
  EXPECT_EQ(ring.at(2), 3);
  EXPECT_EQ(ring.back(), 3);
  EXPECT_EQ(ring.pop_back(), 3);
  EXPECT_THROW(static_cast<void>(ring.at(5)), std::out_of_range);
}

TEST(FixedRing, EmptyAccessThrows) {
  FixedRing<int> ring{2};
  EXPECT_THROW(static_cast<void>(ring.pop_front()), std::out_of_range);
  EXPECT_THROW(static_cast<void>(ring.front()), std::out_of_range);
  EXPECT_THROW(FixedRing<int>{0}, std::invalid_argument);
}

// --- SpscQueue ---

TEST(SpscQueue, BasicFifo) {
  SpscQueue<int> queue{8};
  EXPECT_EQ(queue.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(8));
  EXPECT_EQ(queue.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(queue.try_pop().value(), i);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(SpscQueue, FillFraction) {
  SpscQueue<int> queue{10};
  for (int i = 0; i < 6; ++i) queue.try_push(i);
  EXPECT_DOUBLE_EQ(queue.fill_fraction(), 0.6);
}

TEST(SpscQueue, PopBatch) {
  SpscQueue<int> queue{16};
  for (int i = 0; i < 10; ++i) queue.try_push(i);
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(queue.try_pop_batch(out, 100), 6u);
  EXPECT_EQ(out.size(), 10u);
}

TEST(SpscQueue, ConcurrentStress) {
  // Linearizability smoke test: one real producer and one real consumer
  // move a million integers; all arrive exactly once, in order.
  constexpr int kCount = 1'000'000;
  SpscQueue<int> queue{1024};
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!queue.try_push(i)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int expected = 0;
  while (expected < kCount) {
    if (auto v = queue.try_pop()) {
      ASSERT_EQ(*v, expected);
      sum += *v;
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

// --- SpscRing ---

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>{1}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{3}.capacity(), 4u);
  EXPECT_EQ(SpscRing<int>{8}.capacity(), 8u);
  EXPECT_EQ(SpscRing<int>{100}.capacity(), 128u);
  EXPECT_THROW(SpscRing<int>{0}, std::invalid_argument);
}

TEST(SpscRing, FifoAndFull) {
  SpscRing<int> ring{4};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i).ok());
  EXPECT_EQ(ring.try_push(99).result, PushResult::kFull);
  EXPECT_EQ(ring.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, DepthAtPushIncludesOwnPush) {
  // The producer's PushOutcome::depth is the instrument high-water
  // accounting records: it must count the pushed element itself, so the
  // peak a push creates can never be missed by a racing consumer.
  SpscRing<int> ring{8};
  for (int i = 0; i < 8; ++i) {
    const PushOutcome outcome = ring.try_push(i);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.depth, static_cast<std::size_t>(i) + 1);
  }
}

TEST(SpscRing, WrapAroundManyCycles) {
  // Free-running 64-bit counters masked into a 4-slot array: push/pop
  // far past the capacity and the indexing must stay consistent.
  SpscRing<int> ring{4};
  int v = -1;
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(ring.try_push(i).ok());
    ASSERT_TRUE(ring.try_push(i + 1'000'000).ok());
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i + 1'000'000);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopBatchDrainsInOrder) {
  SpscRing<int> ring{16};
  for (int i = 0; i < 10; ++i) ring.try_push(i);
  std::vector<int> out;
  EXPECT_EQ(ring.try_pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.try_pop_batch(out, 100), 6u);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.back(), 9);
  EXPECT_EQ(ring.try_pop_batch(out, 4), 0u);
}

TEST(SpscRing, CloseRejectsPushesAndConsumerDrains) {
  SpscRing<int> ring{4};
  ring.try_push(1);
  ring.close();
  EXPECT_EQ(ring.try_push(2).result, PushResult::kClosed);
  int v = -1;
  EXPECT_TRUE(ring.try_pop(v));  // close() never loses queued items
  EXPECT_EQ(v, 1);
  ring.reopen();
  EXPECT_TRUE(ring.try_push(3).ok());
}

TEST(SpscRing, SnapshotSeesQueuedItems) {
  SpscRing<int> ring{8};
  for (int i = 0; i < 5; ++i) ring.try_push(i);
  int v = -1;
  ring.try_pop(v);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(SpscRing, ConcurrentStressInOrder) {
  // One real producer, one real consumer: all elements arrive exactly
  // once, in order.  (Run under TSan in CI.)
  constexpr int kCount = 200'000;
  SpscRing<int> ring{1024};
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!ring.try_push(i).ok()) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int expected = 0;
  int v = -1;
  while (expected < kCount) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      sum += v;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(SpscRing, ConcurrentBatchedConsumerConservation) {
  // Batched reads against a live producer: every element arrives once,
  // in order, regardless of how the batches slice the stream.
  constexpr int kCount = 100'000;
  SpscRing<int> ring{256};
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!ring.try_push(i).ok()) std::this_thread::yield();
    }
  });
  std::vector<int> got;
  got.reserve(kCount);
  while (got.size() < kCount) {
    if (ring.try_pop_batch(got, 64) == 0) std::this_thread::yield();
  }
  producer.join();
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(SpscRing, ConcurrentDepthAtPushNeverMissesOwnElement) {
  // The depth-at-push regression: with a consumer popping as fast as it
  // can, a size() read after the push can already see the element gone
  // — the PushOutcome depth must still always include it (>= 1) and
  // never exceed capacity.
  constexpr int kCount = 50'000;
  SpscRing<int> ring{64};
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    int v = -1;
    while (!done.load(std::memory_order_acquire)) {
      if (!ring.try_pop(v)) std::this_thread::yield();
    }
    while (ring.try_pop(v)) {
    }
  });
  std::size_t max_depth = 0;
  for (int i = 0; i < kCount; ++i) {
    PushOutcome outcome = ring.try_push(i);
    while (!outcome.ok()) {
      std::this_thread::yield();
      outcome = ring.try_push(i);
    }
    ASSERT_GE(outcome.depth, 1u);
    ASSERT_LE(outcome.depth, ring.capacity());
    max_depth = std::max(max_depth, outcome.depth);
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_GE(max_depth, 1u);
}

TEST(SpscRing, ConcurrentCloseRace) {
  // Closing while the producer runs: pushes after close observe
  // kClosed, and everything accepted before is still popped exactly
  // once.  (TSan checks the closed flag's synchronization.)
  SpscRing<int> ring{128};
  std::atomic<long long> pushed_sum{0};
  std::atomic<int> pushed_count{0};
  std::thread producer([&] {
    for (int i = 1; i <= 100'000; ++i) {
      const PushOutcome outcome = ring.try_push(i);
      if (outcome.result == PushResult::kClosed) break;
      if (outcome.ok()) {
        pushed_sum += i;
        pushed_count += 1;
      } else {
        std::this_thread::yield();
      }
    }
  });
  int v = -1;
  long long popped_sum = 0;
  int popped = 0;
  while (popped < 1000) {
    if (ring.try_pop(v)) {
      popped_sum += v;
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  ring.close();
  producer.join();
  while (ring.try_pop(v)) {
    popped_sum += v;
    ++popped;
  }
  EXPECT_EQ(popped, pushed_count.load());
  EXPECT_EQ(popped_sum, pushed_sum.load());
}

// --- StealInbox ---

TEST(StealInbox, DepositClaimRoundTrip) {
  StealInbox<int> inbox;
  using Inbox = StealInbox<int>;
  EXPECT_EQ(inbox.try_deposit(7), Inbox::Deposit::kOk);
  EXPECT_EQ(inbox.size_approx(), 1u);
  int v = -1;
  EXPECT_TRUE(inbox.try_claim(v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(inbox.try_claim(v));
}

TEST(StealInbox, FullAfterCapacityDeposits) {
  StealInbox<int, 4> inbox;
  using Inbox = StealInbox<int, 4>;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(inbox.try_deposit(i), Inbox::Deposit::kOk);
  EXPECT_EQ(inbox.try_deposit(99), Inbox::Deposit::kFull);
  // Claiming frees a slot for the next deposit.
  int v = -1;
  EXPECT_TRUE(inbox.try_claim(v));
  EXPECT_EQ(inbox.try_deposit(99), Inbox::Deposit::kOk);
}

TEST(StealInbox, SnapshotSeesReadySlots) {
  StealInbox<int> inbox;
  inbox.try_deposit(1);
  inbox.try_deposit(2);
  const std::vector<int> snap = inbox.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(inbox.size_approx(), 2u);  // snapshot does not claim
}

TEST(StealInbox, MultiProducerConservation) {
  // Four producers race CAS claims on the slots while one consumer
  // drains: every deposited value is claimed exactly once, and the
  // loser-falls-home outcomes (kContended/kFull) lose nothing.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  StealInbox<int, 8> inbox;
  using Inbox = StealInbox<int, 8>;
  std::atomic<long long> deposited_sum{0};
  std::atomic<int> deposited{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i + 1;
        for (;;) {
          const Inbox::Deposit outcome = inbox.try_deposit(value);
          if (outcome == Inbox::Deposit::kOk) {
            deposited_sum += value;
            deposited += 1;
            break;
          }
          // kContended or kFull: a real dispatcher would fall home;
          // here we retry so the totals stay comparable.
          std::this_thread::yield();
        }
      }
    });
  }
  long long claimed_sum = 0;
  int claimed = 0;
  const int expected = kProducers * kPerProducer;
  int v = -1;
  while (claimed < expected) {
    if (inbox.try_claim(v)) {
      claimed_sum += v;
      ++claimed;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(claimed, deposited.load());
  EXPECT_EQ(claimed_sum, deposited_sum.load());
  EXPECT_FALSE(inbox.try_claim(v));
}

// --- MpmcQueue ---

TEST(MpmcQueue, TryOperations) {
  MpmcQueue<int> queue{2};
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.try_pop().value(), 1);
  EXPECT_EQ(queue.try_pop().value(), 2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpmcQueue, PushResultDistinguishesFullFromClosed) {
  // The bool try_push conflated "full" with "closed"; push_result must
  // tell them apart so a dispatcher can fall home immediately on a
  // closed buddy instead of treating it as transient backpressure.
  MpmcQueue<int> queue{2};
  EXPECT_EQ(queue.push_result(1).result, PushResult::kOk);
  EXPECT_EQ(queue.push_result(2).result, PushResult::kOk);
  EXPECT_EQ(queue.push_result(3).result, PushResult::kFull);
  queue.close();
  EXPECT_EQ(queue.push_result(4).result, PushResult::kClosed);
}

TEST(MpmcQueue, PushResultReportsDepthAtPush) {
  MpmcQueue<int> queue{8};
  for (int i = 0; i < 8; ++i) {
    const PushOutcome outcome = queue.push_result(i);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.depth, static_cast<std::size_t>(i) + 1);
  }
}

TEST(MpmcQueue, TryPopBatch) {
  MpmcQueue<int> queue{16};
  for (int i = 0; i < 10; ++i) queue.try_push(i);
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(queue.try_pop_batch(out, 100), 6u);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.back(), 9);
  EXPECT_EQ(queue.try_pop_batch(out, 1), 0u);
}

TEST(MpmcQueue, ConcurrentPushResultDepthInvariant) {
  // Under MPMC contention every accepted push's reported depth includes
  // the pushed element and never exceeds capacity, and nothing is lost.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  constexpr std::size_t kCapacity = 64;
  MpmcQueue<int> queue{kCapacity};
  std::atomic<long long> pushed_sum{0};
  std::vector<std::thread> producers;
  std::atomic<bool> depth_ok{true};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i + 1;
        for (;;) {
          const PushOutcome outcome = queue.push_result(value);
          if (outcome.ok()) {
            if (outcome.depth < 1 || outcome.depth > kCapacity) {
              depth_ok.store(false);
            }
            pushed_sum += value;
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  long long popped_sum = 0;
  int popped = 0;
  const int expected = kProducers * kPerProducer;
  while (popped < expected) {
    if (const std::optional<int> v = queue.try_pop()) {
      popped_sum += *v;
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(depth_ok.load());
  EXPECT_EQ(popped_sum, pushed_sum.load());
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpmcQueue, CloseDrains) {
  MpmcQueue<int> queue{4};
  queue.try_push(1);
  queue.close();
  EXPECT_FALSE(queue.try_push(2));
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(MpmcQueue, MultiThreadedSum) {
  constexpr int kPerProducer = 50'000;
  MpmcQueue<int> queue{256};
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) queue.push(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = queue.pop()) sum += *v;
    });
  }
  for (int p = 0; p < 3; ++p) threads[static_cast<std::size_t>(p)].join();
  queue.close();
  threads[3].join();
  threads[4].join();
  EXPECT_EQ(sum.load(),
            3LL * kPerProducer * (kPerProducer + 1) / 2);
}

// --- RNG ---

TEST(Rng, Deterministic) {
  Xoshiro256 a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Xoshiro256 rng{7};
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (const int count : seen) EXPECT_GT(count, 800);  // roughly uniform
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Xoshiro256 rng{11};
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(Rng, BoundedParetoWithinBounds) {
  Xoshiro256 rng{13};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_bounded_pareto(1.2, 2.0, 1000.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LE(v, 1000.0);
  }
}

TEST(Rng, ZipfSkewsTowardHead) {
  Xoshiro256 rng{17};
  ZipfSampler zipf{1.1, 100};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 10 * counts[99]);
}

// --- stats ---

TEST(BinnedSeries, BinsAtTenMs) {
  BinnedSeries series{Nanos::from_millis(10)};
  series.record(Nanos::from_millis(5));        // bin 0
  series.record(Nanos::from_millis(15));       // bin 1
  series.record(Nanos::from_millis(19.9));     // bin 1
  series.record(Nanos::from_millis(35), 10);   // bin 3
  ASSERT_EQ(series.bin_count(), 4u);
  EXPECT_EQ(series.bin(0), 1u);
  EXPECT_EQ(series.bin(1), 2u);
  EXPECT_EQ(series.bin(2), 0u);
  EXPECT_EQ(series.bin(3), 10u);
  EXPECT_EQ(series.total(), 13u);
  EXPECT_EQ(series.peak(), 10u);
}

TEST(Log2Histogram, QuantileApproximation) {
  Log2Histogram hist;
  for (std::uint64_t i = 1; i <= 1000; ++i) hist.record(i);
  EXPECT_EQ(hist.count(), 1000u);
  const double p50 = hist.quantile(0.5);
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1024.0);
}

TEST(Log2Histogram, QuantileOfAllZerosIsZero) {
  // Bucket 0 holds only the value 0; no quantile of it may interpolate
  // to a fractional value.
  Log2Histogram hist;
  for (int i = 0; i < 7; ++i) hist.record(0);
  EXPECT_EQ(hist.quantile(0.0), 0.0);
  EXPECT_EQ(hist.quantile(0.5), 0.0);
  EXPECT_EQ(hist.quantile(1.0), 0.0);
}

TEST(Log2Histogram, QuantileExtremesAreFiniteBucketBounds) {
  Log2Histogram hist;
  for (int i = 0; i < 10; ++i) hist.record(100);  // bucket 7: [64, 128)
  // q=0 is the lower bound of the first non-empty bucket, q=1 the upper
  // bound of the last — never interpolated past it, never 2^64.
  EXPECT_EQ(hist.quantile(0.0), 64.0);
  EXPECT_EQ(hist.quantile(1.0), 128.0);
  EXPECT_LT(hist.quantile(0.999999), 128.0 + 1e-9);
}

TEST(Log2Histogram, QuantileMixedZeroAndLarge) {
  Log2Histogram hist;
  for (int i = 0; i < 50; ++i) hist.record(0);
  for (int i = 0; i < 50; ++i) hist.record(1'000'000);  // bucket 20
  EXPECT_EQ(hist.quantile(0.25), 0.0);
  const double p99 = hist.quantile(0.99);
  EXPECT_GE(p99, 524288.0);           // 2^19, bucket 20's lower bound
  EXPECT_LE(p99, 1048576.0);          // 2^20, its upper bound
  EXPECT_EQ(hist.quantile(1.0), 1048576.0);
}

TEST(SummaryStats, WelfordMatchesDirect) {
  SummaryStats stats;
  const std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (const double v : values) stats.record(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.5);
  EXPECT_NEAR(stats.variance(), 9.1666667, 1e-6);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 10.0);
}

TEST(Log, SinkCapturesWholeFormattedLines) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  log_line(LogLevel::kWarn, "test", "hello world");
  log_line(LogLevel::kError, "test", "second");
  set_log_sink(nullptr);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[warn] test: hello world");
  EXPECT_EQ(lines[1], "[error] test: second");
}

TEST(Log, SinkRespectsLevelFilter) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  log_line(LogLevel::kDebug, "test", "below the default kWarn threshold");
  set_log_sink(nullptr);
  EXPECT_TRUE(lines.empty());
}

TEST(Formatting, Thousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(14'880'952), "14,880,952");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(as_percent(0.465), "46.5%");
  EXPECT_EQ(as_percent(0.0), "0.0%");
}

}  // namespace
}  // namespace wirecap
