// Unit tests for src/common: containers, queues, RNG, statistics, units.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "common/fixed_ring.hpp"
#include "common/log.hpp"
#include "common/mpmc_queue.hpp"
#include "common/rng.hpp"
#include "common/spsc_queue.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace wirecap {
namespace {

// --- units ---

TEST(Units, WireRate64BytesIs14_88Mpps) {
  const Rate rate = ethernet::wire_rate(ethernet::k10GbpsBits, 64);
  EXPECT_NEAR(rate.per_second(), 14'880'952.0, 1.0);
}

TEST(Units, WireRate1518BytesIs812Kpps) {
  const Rate rate = ethernet::wire_rate(ethernet::k10GbpsBits, 1518);
  EXPECT_NEAR(rate.per_second(), 812'743.8, 1.0);
}

TEST(Units, NanosArithmetic) {
  const Nanos a = Nanos::from_millis(1.5);
  EXPECT_EQ(a.count(), 1'500'000);
  EXPECT_DOUBLE_EQ(a.seconds(), 0.0015);
  EXPECT_EQ((a + Nanos{500'000}).count(), 2'000'000);
  EXPECT_LT(Nanos{1}, Nanos{2});
}

TEST(Units, RateInterval) {
  const Rate rate{1e6};
  EXPECT_EQ(rate.interval().count(), 1000);
  EXPECT_EQ(rate.events_in(Nanos::from_seconds(2.0)), 2'000'000);
  EXPECT_EQ(Rate{0.0}.interval(), Nanos::max());
}

// --- status ---

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status bad{StatusCode::kExhausted};
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.message(), "exhausted");
}

TEST(Result, ValueAndError) {
  Result<int> good{42};
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, 42);
  Result<int> bad{StatusCode::kNotFound};
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_THROW(static_cast<void>(bad.value()), std::runtime_error);
}

// --- FixedRing ---

TEST(FixedRing, PushPopFifo) {
  FixedRing<int> ring{4};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push_back(i));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push_back(99));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.pop_front(), i);
  EXPECT_TRUE(ring.empty());
}

TEST(FixedRing, WrapAround) {
  FixedRing<int> ring{3};
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.push_back(round));
    EXPECT_EQ(ring.pop_front(), round);
  }
}

TEST(FixedRing, PushFrontAndAt) {
  FixedRing<int> ring{4};
  ring.push_back(2);
  ring.push_front(1);
  ring.push_back(3);
  EXPECT_EQ(ring.at(0), 1);
  EXPECT_EQ(ring.at(1), 2);
  EXPECT_EQ(ring.at(2), 3);
  EXPECT_EQ(ring.back(), 3);
  EXPECT_EQ(ring.pop_back(), 3);
  EXPECT_THROW(static_cast<void>(ring.at(5)), std::out_of_range);
}

TEST(FixedRing, EmptyAccessThrows) {
  FixedRing<int> ring{2};
  EXPECT_THROW(static_cast<void>(ring.pop_front()), std::out_of_range);
  EXPECT_THROW(static_cast<void>(ring.front()), std::out_of_range);
  EXPECT_THROW(FixedRing<int>{0}, std::invalid_argument);
}

// --- SpscQueue ---

TEST(SpscQueue, BasicFifo) {
  SpscQueue<int> queue{8};
  EXPECT_EQ(queue.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(8));
  EXPECT_EQ(queue.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(queue.try_pop().value(), i);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(SpscQueue, FillFraction) {
  SpscQueue<int> queue{10};
  for (int i = 0; i < 6; ++i) queue.try_push(i);
  EXPECT_DOUBLE_EQ(queue.fill_fraction(), 0.6);
}

TEST(SpscQueue, PopBatch) {
  SpscQueue<int> queue{16};
  for (int i = 0; i < 10; ++i) queue.try_push(i);
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(queue.try_pop_batch(out, 100), 6u);
  EXPECT_EQ(out.size(), 10u);
}

TEST(SpscQueue, ConcurrentStress) {
  // Linearizability smoke test: one real producer and one real consumer
  // move a million integers; all arrive exactly once, in order.
  constexpr int kCount = 1'000'000;
  SpscQueue<int> queue{1024};
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!queue.try_push(i)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int expected = 0;
  while (expected < kCount) {
    if (auto v = queue.try_pop()) {
      ASSERT_EQ(*v, expected);
      sum += *v;
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

// --- MpmcQueue ---

TEST(MpmcQueue, TryOperations) {
  MpmcQueue<int> queue{2};
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.try_pop().value(), 1);
  EXPECT_EQ(queue.try_pop().value(), 2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpmcQueue, CloseDrains) {
  MpmcQueue<int> queue{4};
  queue.try_push(1);
  queue.close();
  EXPECT_FALSE(queue.try_push(2));
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(MpmcQueue, MultiThreadedSum) {
  constexpr int kPerProducer = 50'000;
  MpmcQueue<int> queue{256};
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) queue.push(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = queue.pop()) sum += *v;
    });
  }
  for (int p = 0; p < 3; ++p) threads[static_cast<std::size_t>(p)].join();
  queue.close();
  threads[3].join();
  threads[4].join();
  EXPECT_EQ(sum.load(),
            3LL * kPerProducer * (kPerProducer + 1) / 2);
}

// --- RNG ---

TEST(Rng, Deterministic) {
  Xoshiro256 a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Xoshiro256 rng{7};
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (const int count : seen) EXPECT_GT(count, 800);  // roughly uniform
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Xoshiro256 rng{11};
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(Rng, BoundedParetoWithinBounds) {
  Xoshiro256 rng{13};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_bounded_pareto(1.2, 2.0, 1000.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LE(v, 1000.0);
  }
}

TEST(Rng, ZipfSkewsTowardHead) {
  Xoshiro256 rng{17};
  ZipfSampler zipf{1.1, 100};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 10 * counts[99]);
}

// --- stats ---

TEST(BinnedSeries, BinsAtTenMs) {
  BinnedSeries series{Nanos::from_millis(10)};
  series.record(Nanos::from_millis(5));        // bin 0
  series.record(Nanos::from_millis(15));       // bin 1
  series.record(Nanos::from_millis(19.9));     // bin 1
  series.record(Nanos::from_millis(35), 10);   // bin 3
  ASSERT_EQ(series.bin_count(), 4u);
  EXPECT_EQ(series.bin(0), 1u);
  EXPECT_EQ(series.bin(1), 2u);
  EXPECT_EQ(series.bin(2), 0u);
  EXPECT_EQ(series.bin(3), 10u);
  EXPECT_EQ(series.total(), 13u);
  EXPECT_EQ(series.peak(), 10u);
}

TEST(Log2Histogram, QuantileApproximation) {
  Log2Histogram hist;
  for (std::uint64_t i = 1; i <= 1000; ++i) hist.record(i);
  EXPECT_EQ(hist.count(), 1000u);
  const double p50 = hist.quantile(0.5);
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1024.0);
}

TEST(Log2Histogram, QuantileOfAllZerosIsZero) {
  // Bucket 0 holds only the value 0; no quantile of it may interpolate
  // to a fractional value.
  Log2Histogram hist;
  for (int i = 0; i < 7; ++i) hist.record(0);
  EXPECT_EQ(hist.quantile(0.0), 0.0);
  EXPECT_EQ(hist.quantile(0.5), 0.0);
  EXPECT_EQ(hist.quantile(1.0), 0.0);
}

TEST(Log2Histogram, QuantileExtremesAreFiniteBucketBounds) {
  Log2Histogram hist;
  for (int i = 0; i < 10; ++i) hist.record(100);  // bucket 7: [64, 128)
  // q=0 is the lower bound of the first non-empty bucket, q=1 the upper
  // bound of the last — never interpolated past it, never 2^64.
  EXPECT_EQ(hist.quantile(0.0), 64.0);
  EXPECT_EQ(hist.quantile(1.0), 128.0);
  EXPECT_LT(hist.quantile(0.999999), 128.0 + 1e-9);
}

TEST(Log2Histogram, QuantileMixedZeroAndLarge) {
  Log2Histogram hist;
  for (int i = 0; i < 50; ++i) hist.record(0);
  for (int i = 0; i < 50; ++i) hist.record(1'000'000);  // bucket 20
  EXPECT_EQ(hist.quantile(0.25), 0.0);
  const double p99 = hist.quantile(0.99);
  EXPECT_GE(p99, 524288.0);           // 2^19, bucket 20's lower bound
  EXPECT_LE(p99, 1048576.0);          // 2^20, its upper bound
  EXPECT_EQ(hist.quantile(1.0), 1048576.0);
}

TEST(SummaryStats, WelfordMatchesDirect) {
  SummaryStats stats;
  const std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (const double v : values) stats.record(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.5);
  EXPECT_NEAR(stats.variance(), 9.1666667, 1e-6);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 10.0);
}

TEST(Log, SinkCapturesWholeFormattedLines) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  log_line(LogLevel::kWarn, "test", "hello world");
  log_line(LogLevel::kError, "test", "second");
  set_log_sink(nullptr);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[warn] test: hello world");
  EXPECT_EQ(lines[1], "[error] test: second");
}

TEST(Log, SinkRespectsLevelFilter) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  log_line(LogLevel::kDebug, "test", "below the default kWarn threshold");
  set_log_sink(nullptr);
  EXPECT_TRUE(lines.empty());
}

TEST(Formatting, Thousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(14'880'952), "14,880,952");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(as_percent(0.465), "46.5%");
  EXPECT_EQ(as_percent(0.0), "0.0%");
}

}  // namespace
}  // namespace wirecap
