// Fuzz-style robustness tests:
//
//   * random cBPF programs through the verifier; every program the
//     verifier accepts must execute without crashing on random packets
//     (the kernel-filter safety contract);
//   * random operation sequences against the WireCAP queue driver,
//     checking the chunk-conservation invariant after every step;
//   * random interleavings of capture/recycle metadata (including
//     corrupted metadata) against the pool;
//   * lexer/parser robustness on random byte strings (never crashes,
//     only ParseError);
//   * pcap reader robustness on truncated/corrupted files.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bpf/insn.hpp"
#include "bpf/parser.hpp"
#include "bpf/vm.hpp"
#include "common/rng.hpp"
#include "driver/wirecap_driver.hpp"
#include "net/pcapfile.hpp"
#include "nic/device.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap {
namespace {

TEST(BpfFuzz, VerifiedProgramsNeverCrash) {
  Xoshiro256 rng{0xF0221};
  int accepted = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::size_t length = 1 + rng.next_below(12);
    bpf::Program program;
    program.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      bpf::Insn insn;
      insn.code = static_cast<std::uint16_t>(rng.next_below(0x200));
      insn.jt = static_cast<std::uint8_t>(rng.next_below(8));
      insn.jf = static_cast<std::uint8_t>(rng.next_below(8));
      insn.k = static_cast<std::uint32_t>(rng.next_below(256));
      program.push_back(insn);
    }
    // The verifier demands exact terminal-RET codes, so purely random
    // programs almost never get past it; half the trials plant a valid
    // RET to make the accepted set large enough to exercise the VM.
    if (rng.next_bool(0.5)) {
      program.back() = bpf::stmt(
          bpf::kClassRet | (rng.next_bool(0.5) ? bpf::kRetK : bpf::kRetA),
          static_cast<std::uint32_t>(rng.next_below(256)));
    }
    if (!bpf::verify(program).ok) continue;
    ++accepted;
    // Run on a random small packet; must terminate and not throw.
    std::array<std::byte, 64> packet{};
    for (auto& b : packet) b = static_cast<std::byte>(rng.next());
    ASSERT_NO_THROW(static_cast<void>(
        bpf::run(program, packet, static_cast<std::uint32_t>(
                                      rng.next_in(64, 1518)))));
  }
  // The verifier accepts a reasonable fraction of random programs (the
  // RET-terminated ones with in-range fields), so the property above
  // actually exercised the VM.
  EXPECT_GT(accepted, 50);
}

TEST(BpfFuzz, ParserNeverCrashesOnGarbage) {
  Xoshiro256 rng{0xF0222};
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 ().-/<>=&|!:";
  for (int trial = 0; trial < 20'000; ++trial) {
    std::string text;
    const std::size_t length = rng.next_below(32);
    for (std::size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    // ParseError is the ONLY permitted escape: out-of-range numerics
    // and over-deep nesting must be caught inside the parser, not leak
    // as std::out_of_range / std::invalid_argument from stoul et al.
    try {
      const auto expr = bpf::parse_filter(text);
      static_cast<void>(expr);
    } catch (const bpf::ParseError&) {
      // expected for most inputs
    }
  }
  SUCCEED();
}

TEST(DriverFuzz, RandomOpSequencePreservesChunkConservation) {
  Xoshiro256 rng{0xF0223};
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.rx_ring_size = 16;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  driver::WirecapDriverConfig config;
  config.cells_per_chunk = 4;
  config.chunk_count = 10;
  driver::WirecapQueueDriver driver{nic, 0, config};
  driver.open();

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = std::numeric_limits<std::uint64_t>::max();
  Xoshiro256 flow_rng{1};
  trace_config.flows = {trace::flow_for_queue(flow_rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};

  std::vector<driver::ChunkMeta> captured;
  for (int step = 0; step < 50'000; ++step) {
    switch (rng.next_below(4)) {
      case 0: {  // a few packets arrive
        const auto count = rng.next_in(1, 6);
        for (std::uint64_t i = 0; i < count; ++i) nic.receive(*source.next());
        scheduler.run();
        break;
      }
      case 1: {  // capture
        std::vector<driver::ChunkMeta> out;
        driver.capture(scheduler.now(), rng.next_in(1, 4), out);
        for (const auto& meta : captured) static_cast<void>(meta);
        captured.insert(captured.end(), out.begin(), out.end());
        break;
      }
      case 2: {  // recycle a random captured chunk
        if (!captured.empty()) {
          const std::size_t pick = rng.next_below(captured.size());
          ASSERT_TRUE(driver.recycle(captured[pick]).is_ok());
          captured.erase(captured.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        }
        break;
      }
      case 3: {  // attack: recycle corrupted metadata
        driver::ChunkMeta bogus;
        bogus.nic_id = static_cast<std::uint32_t>(rng.next_below(3));
        bogus.ring_id = static_cast<std::uint32_t>(rng.next_below(3));
        bogus.chunk_id = static_cast<std::uint32_t>(rng.next_below(16));
        bogus.first_cell = static_cast<std::uint32_t>(rng.next_below(8));
        bogus.pkt_count = static_cast<std::uint32_t>(rng.next_below(8));
        // Never matches an outstanding captured chunk we hold, unless by
        // luck it does — then it must have been exactly a double free,
        // which the pool rejects (we still hold the metadata).
        const bool is_ours =
            std::any_of(captured.begin(), captured.end(),
                        [&](const driver::ChunkMeta& m) {
                          return m.chunk_id == bogus.chunk_id &&
                                 bogus.nic_id == nic.nic_id() &&
                                 bogus.ring_id == 0;
                        });
        const Status status = driver.recycle(bogus);
        if (status.is_ok()) {
          // Accepted ONLY when it names a chunk we legitimately hold
          // (the pool validates identity + range, not the exact counts).
          ASSERT_TRUE(is_ours);
          std::erase_if(captured, [&](const driver::ChunkMeta& m) {
            return m.chunk_id == bogus.chunk_id;
          });
        }
        break;
      }
    }
    // Invariant: every chunk is in exactly one of the three states, and
    // the captured set we hold matches the pool's captured count.
    const auto& pool = driver.pool();
    int free_count = 0, attached = 0, captured_count = 0;
    for (std::uint32_t c = 0; c < config.chunk_count; ++c) {
      switch (pool.state(c)) {
        case driver::ChunkState::kFree: ++free_count; break;
        case driver::ChunkState::kAttached: ++attached; break;
        case driver::ChunkState::kCaptured: ++captured_count; break;
      }
    }
    ASSERT_EQ(free_count + attached + captured_count,
              static_cast<int>(config.chunk_count));
    ASSERT_EQ(captured_count, static_cast<int>(captured.size()));
    ASSERT_EQ(pool.free_chunks(), static_cast<std::uint32_t>(free_count));
  }
}

TEST(PcapFuzz, TruncatedAndCorruptFilesNeverCrash) {
  Xoshiro256 rng{0xF0224};
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = dir / ("wirecap_fuzz_" + std::to_string(::getpid()) +
                           ".pcap");

  // A valid two-record file as the corpus seed.
  std::vector<char> corpus;
  {
    net::PcapWriter writer{path};
    net::FlowKey flow;
    flow.proto = net::IpProto::kUdp;
    writer.write(net::WirePacket::make(Nanos{1000}, flow, 64));
    writer.write(net::WirePacket::make(Nanos{2000}, flow, 128));
  }
  {
    std::ifstream in{path, std::ios::binary};
    corpus.assign(std::istreambuf_iterator<char>(in), {});
  }

  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<char> mutated = corpus;
    // Truncate and/or flip random bytes.
    if (rng.next_bool(0.7)) {
      mutated.resize(rng.next_below(mutated.size() + 1));
    }
    const auto flips = rng.next_below(4);
    for (std::uint64_t f = 0; f < flips && !mutated.empty(); ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<char>(1 << rng.next_below(8));
    }
    {
      std::ofstream out{path, std::ios::binary | std::ios::trunc};
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    try {
      net::PcapReader reader{path};
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
      // corrupt files must fail cleanly
    }
  }
  std::filesystem::remove(path);
  SUCCEED();
}

}  // namespace
}  // namespace wirecap
