// Tests for the classic-BPF substrate: VM instruction semantics,
// verifier rejections, filter-language parsing, and a randomized
// property sweep checking compile()+run() against the direct AST
// evaluator over generated packets.
#include <gtest/gtest.h>

#include <array>
#include <span>
#include <stdexcept>
#include <vector>

#include "bpf/ast.hpp"
#include "bpf/codegen.hpp"
#include "bpf/disasm.hpp"
#include "bpf/eval.hpp"
#include "bpf/parser.hpp"
#include "bpf/predecode.hpp"
#include "bpf/vm.hpp"
#include "common/rng.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"

namespace wirecap::bpf {
namespace {

using net::FlowKey;
using net::IpProto;
using net::Ipv4Addr;

std::array<std::byte, 64> make_frame(const FlowKey& flow) {
  std::array<std::byte, 64> buf{};
  net::build_frame(buf, flow, 64, net::MacAddr{}, net::MacAddr{});
  return buf;
}

// --- VM instruction semantics ---

TEST(BpfVm, ReturnsConstant) {
  const Program program{stmt(kClassRet | kRetK, 42)};
  EXPECT_EQ(run(program, {}, 0), 42u);
}

TEST(BpfVm, LoadImmediateAndRetA) {
  const Program program{stmt(kClassLd | kModeImm, 1234),
                        stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(program, {}, 0), 1234u);
}

TEST(BpfVm, AbsoluteLoadsAllSizes) {
  std::array<std::byte, 8> pkt{std::byte{0x11}, std::byte{0x22},
                               std::byte{0x33}, std::byte{0x44},
                               std::byte{0x55}, std::byte{0x66},
                               std::byte{0x77}, std::byte{0x88}};
  const Program word{stmt(kClassLd | kSizeW | kModeAbs, 0),
                     stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(word, pkt, 8), 0x11223344u);
  const Program half{stmt(kClassLd | kSizeH | kModeAbs, 2),
                     stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(half, pkt, 8), 0x3344u);
  const Program byte{stmt(kClassLd | kSizeB | kModeAbs, 7),
                     stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(byte, pkt, 8), 0x88u);
}

TEST(BpfVm, OutOfBoundsLoadRejectsPacket) {
  std::array<std::byte, 4> pkt{};
  const Program program{stmt(kClassLd | kSizeW | kModeAbs, 2),
                        stmt(kClassRet | kRetK, 99)};
  EXPECT_EQ(run(program, pkt, 4), 0u);
}

TEST(BpfVm, IndirectLoadUsesX) {
  std::array<std::byte, 8> pkt{};
  pkt[6] = std::byte{0xAB};
  const Program program{stmt(kClassLdx | kModeImm, 4),
                        stmt(kClassLd | kSizeB | kModeInd, 2),
                        stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(program, pkt, 8), 0xABu);
}

TEST(BpfVm, LenLoadsWireLength) {
  const Program program{stmt(kClassLd | kModeLen, 0),
                        stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(program, {}, 1518), 1518u);
}

TEST(BpfVm, MshComputesHeaderLength) {
  // MSH: X <- 4 * (pkt[k] & 0x0F).  IP byte 0x47 -> ihl 7 -> 28.
  std::array<std::byte, 2> pkt{std::byte{0x47}};
  const Program program{stmt(kClassLdx | kSizeB | kModeMsh, 0),
                        stmt(kClassMisc | kMiscTxa, 0),
                        stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(program, pkt, 2), 28u);
}

TEST(BpfVm, ScratchMemoryStoreLoad) {
  const Program program{
      stmt(kClassLd | kModeImm, 77), stmt(kClassSt, 3),
      stmt(kClassLd | kModeImm, 0),  stmt(kClassLd | kModeMem, 3),
      stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(program, {}, 0), 77u);
}

TEST(BpfVm, AluOperations) {
  const auto alu = [](std::uint16_t op, std::uint32_t a, std::uint32_t k) {
    const Program program{stmt(kClassLd | kModeImm, a),
                          stmt(kClassAlu | op | kSrcK, k),
                          stmt(kClassRet | kRetA, 0)};
    return run(program, {}, 0);
  };
  EXPECT_EQ(alu(kAluAdd, 10, 3), 13u);
  EXPECT_EQ(alu(kAluSub, 10, 3), 7u);
  EXPECT_EQ(alu(kAluMul, 10, 3), 30u);
  EXPECT_EQ(alu(kAluDiv, 10, 3), 3u);
  EXPECT_EQ(alu(kAluMod, 10, 3), 1u);
  EXPECT_EQ(alu(kAluAnd, 0xFF, 0x0F), 0x0Fu);
  EXPECT_EQ(alu(kAluOr, 0xF0, 0x0F), 0xFFu);
  EXPECT_EQ(alu(kAluXor, 0xFF, 0x0F), 0xF0u);
  EXPECT_EQ(alu(kAluLsh, 1, 4), 16u);
  EXPECT_EQ(alu(kAluRsh, 16, 4), 1u);
  // Underflow wraps (uint32 semantics).
  EXPECT_EQ(alu(kAluSub, 0, 1), 0xFFFFFFFFu);
}

TEST(BpfVm, NegNegates) {
  const Program program{stmt(kClassLd | kModeImm, 1),
                        stmt(kClassAlu | kAluNeg, 0),
                        stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(program, {}, 0), 0xFFFFFFFFu);
}

TEST(BpfVm, DivideByXZeroRejects) {
  const Program program{stmt(kClassLd | kModeImm, 10),
                        stmt(kClassLdx | kModeImm, 0),
                        stmt(kClassAlu | kAluDiv | kSrcX, 0),
                        stmt(kClassRet | kRetK, 5)};
  EXPECT_EQ(run(program, {}, 0), 0u);
}

TEST(BpfVm, ConditionalJumps) {
  // if (A == 5) return 1 else return 2
  const auto test_jump = [](std::uint16_t op, std::uint32_t a,
                            std::uint32_t k) {
    const Program program{stmt(kClassLd | kModeImm, a),
                          jump(kClassJmp | op | kSrcK, k, 0, 1),
                          stmt(kClassRet | kRetK, 1),
                          stmt(kClassRet | kRetK, 2)};
    return run(program, {}, 0);
  };
  EXPECT_EQ(test_jump(kJmpJeq, 5, 5), 1u);
  EXPECT_EQ(test_jump(kJmpJeq, 6, 5), 2u);
  EXPECT_EQ(test_jump(kJmpJgt, 6, 5), 1u);
  EXPECT_EQ(test_jump(kJmpJgt, 5, 5), 2u);
  EXPECT_EQ(test_jump(kJmpJge, 5, 5), 1u);
  EXPECT_EQ(test_jump(kJmpJge, 4, 5), 2u);
  EXPECT_EQ(test_jump(kJmpJset, 0x0F, 0x08), 1u);
  EXPECT_EQ(test_jump(kJmpJset, 0x07, 0x08), 2u);
}

TEST(BpfVm, UnconditionalJumpSkips) {
  const Program program{stmt(kClassJmp | kJmpJa, 1),
                        stmt(kClassRet | kRetK, 1),
                        stmt(kClassRet | kRetK, 2)};
  EXPECT_EQ(run(program, {}, 0), 2u);
}

TEST(BpfVm, TaxTxa) {
  const Program program{stmt(kClassLd | kModeImm, 9),
                        stmt(kClassMisc | kMiscTax, 0),
                        stmt(kClassLd | kModeImm, 0),
                        stmt(kClassMisc | kMiscTxa, 0),
                        stmt(kClassRet | kRetA, 0)};
  EXPECT_EQ(run(program, {}, 0), 9u);
}

// --- verifier ---

TEST(BpfVerifier, AcceptsCompiledPrograms) {
  EXPECT_TRUE(verify(compile_filter("udp")).ok);
  EXPECT_TRUE(verify(compile_filter("131.225.2 and udp")).ok);
}

TEST(BpfVerifier, RejectsEmpty) { EXPECT_FALSE(verify({}).ok); }

TEST(BpfVerifier, RejectsMissingRet) {
  EXPECT_FALSE(verify({stmt(kClassLd | kModeImm, 1)}).ok);
}

TEST(BpfVerifier, RejectsJumpOutOfRange) {
  const Program program{jump(kClassJmp | kJmpJeq | kSrcK, 0, 5, 0),
                        stmt(kClassRet | kRetK, 0)};
  EXPECT_FALSE(verify(program).ok);
}

TEST(BpfVerifier, RejectsJaOutOfRange) {
  const Program program{stmt(kClassJmp | kJmpJa, 99),
                        stmt(kClassRet | kRetK, 0)};
  EXPECT_FALSE(verify(program).ok);
}

TEST(BpfVerifier, RejectsDivisionByConstantZero) {
  const Program program{stmt(kClassAlu | kAluDiv | kSrcK, 0),
                        stmt(kClassRet | kRetK, 0)};
  EXPECT_FALSE(verify(program).ok);
}

TEST(BpfVerifier, RejectsBadMemSlot) {
  const Program program{stmt(kClassSt, 16), stmt(kClassRet | kRetK, 0)};
  EXPECT_FALSE(verify(program).ok);
  const Program load{stmt(kClassLd | kModeMem, 99),
                     stmt(kClassRet | kRetK, 0)};
  EXPECT_FALSE(verify(load).ok);
}

TEST(BpfVerifier, RejectsUnknownOpcodes) {
  const Program program{Insn{0xFFFF, 0, 0, 0}, stmt(kClassRet | kRetK, 0)};
  EXPECT_FALSE(verify(program).ok);
}

// --- parser ---

TEST(BpfParser, EmptyMeansMatchAll) {
  EXPECT_EQ(parse_filter(""), nullptr);
  EXPECT_EQ(parse_filter("   "), nullptr);
}

TEST(BpfParser, PaperFilter) {
  // The experiment filter: "131.225.2 and UDP" (case-insensitive).
  const ExprPtr expr = parse_filter("131.225.2 and UDP");
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(to_string(*expr), "(net 131.225.2.0/24 and udp)");
}

TEST(BpfParser, PrecedenceAndParens) {
  const ExprPtr expr = parse_filter("tcp or udp and port 53");
  // 'and' binds tighter than 'or'.
  EXPECT_EQ(to_string(*expr), "(tcp or (udp and port 53))");
  const ExprPtr parens = parse_filter("(tcp or udp) and port 53");
  EXPECT_EQ(to_string(*parens), "((tcp or udp) and port 53)");
}

TEST(BpfParser, NotAndOperators) {
  EXPECT_EQ(to_string(*parse_filter("not udp")), "(not udp)");
  EXPECT_EQ(to_string(*parse_filter("!udp")), "(not udp)");
  EXPECT_EQ(to_string(*parse_filter("tcp && !udp")), "(tcp and (not udp))");
  EXPECT_EQ(to_string(*parse_filter("tcp || udp")), "(tcp or udp)");
}

TEST(BpfParser, DirectionalPrimitives) {
  EXPECT_EQ(to_string(*parse_filter("src host 1.2.3.4")),
            "src host 1.2.3.4");
  EXPECT_EQ(to_string(*parse_filter("dst port 80")), "dst port 80");
  EXPECT_EQ(to_string(*parse_filter("src net 10.0.0.0/8")),
            "src net 10.0.0.0/8");
}

TEST(BpfParser, Juxtaposition) {
  EXPECT_EQ(to_string(*parse_filter("udp port 53")), "(udp and port 53)");
}

TEST(BpfParser, LenComparisons) {
  EXPECT_EQ(to_string(*parse_filter("len <= 128")), "len <= 128");
  EXPECT_EQ(to_string(*parse_filter("len >= 1000")), "len >= 1000");
}

TEST(BpfParser, Errors) {
  EXPECT_THROW(parse_filter("bogus"), ParseError);
  EXPECT_THROW(parse_filter("port 99999"), ParseError);
  EXPECT_THROW(parse_filter("host 300.1.1.1"), ParseError);
  EXPECT_THROW(parse_filter("udp and"), ParseError);
  EXPECT_THROW(parse_filter("(udp"), ParseError);
  EXPECT_THROW(parse_filter("udp)"), ParseError);
  EXPECT_THROW(parse_filter("net 1.2.3.0/40"), ParseError);
  EXPECT_THROW(parse_filter("src udp"), ParseError);
  EXPECT_THROW(parse_filter("host 1.2.3"), ParseError);
}

// --- codegen end-to-end on real frames ---

TEST(BpfCodegen, PaperFilterMatchesCorrectly) {
  const Program program = compile_filter("131.225.2 and udp");
  const auto match = make_frame(FlowKey{Ipv4Addr{131, 225, 2, 9},
                                        Ipv4Addr{8, 8, 8, 8}, 99, 53,
                                        IpProto::kUdp});
  EXPECT_TRUE(matches(program, match, 64));
  const auto wrong_net = make_frame(FlowKey{Ipv4Addr{131, 225, 3, 9},
                                            Ipv4Addr{8, 8, 8, 8}, 99, 53,
                                            IpProto::kUdp});
  EXPECT_FALSE(matches(program, wrong_net, 64));
  const auto wrong_proto = make_frame(FlowKey{Ipv4Addr{131, 225, 2, 9},
                                              Ipv4Addr{8, 8, 8, 8}, 99, 53,
                                              IpProto::kTcp});
  EXPECT_FALSE(matches(program, wrong_proto, 64));
  // Destination inside the net also matches (either direction).
  const auto dst_match = make_frame(FlowKey{Ipv4Addr{8, 8, 8, 8},
                                            Ipv4Addr{131, 225, 2, 1}, 99, 53,
                                            IpProto::kUdp});
  EXPECT_TRUE(matches(program, dst_match, 64));
}

TEST(BpfCodegen, EmptyFilterAcceptsEverything) {
  const Program program = compile_filter("");
  EXPECT_EQ(program.size(), 1u);
  EXPECT_TRUE(matches(program, {}, 0));
}

TEST(BpfCodegen, PortMatchesEitherDirection) {
  const Program program = compile_filter("port 443");
  const auto to443 = make_frame(
      FlowKey{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 5000, 443,
              IpProto::kTcp});
  const auto from443 = make_frame(
      FlowKey{Ipv4Addr{2, 2, 2, 2}, Ipv4Addr{1, 1, 1, 1}, 443, 5000,
              IpProto::kTcp});
  const auto other = make_frame(FlowKey{Ipv4Addr{1, 1, 1, 1},
                                        Ipv4Addr{2, 2, 2, 2}, 5000, 80,
                                        IpProto::kTcp});
  EXPECT_TRUE(matches(program, to443, 64));
  EXPECT_TRUE(matches(program, from443, 64));
  EXPECT_FALSE(matches(program, other, 64));
}

TEST(BpfCodegen, PortIgnoresIcmp) {
  const Program program = compile_filter("port 0");
  const auto icmp = make_frame(FlowKey{Ipv4Addr{1, 1, 1, 1},
                                       Ipv4Addr{2, 2, 2, 2}, 0, 0,
                                       IpProto::kIcmp});
  EXPECT_FALSE(matches(program, icmp, 64));
}

TEST(BpfCodegen, NonIpNeverMatchesIpPrimitives) {
  std::array<std::byte, 64> frame{};  // ethertype 0 -> not IPv4
  for (const char* filter : {"ip", "tcp", "udp", "icmp", "host 1.2.3.4",
                             "net 10.0.0.0/8", "port 80"}) {
    EXPECT_FALSE(matches(compile_filter(filter), frame, 64)) << filter;
  }
}

TEST(BpfCodegen, IPv4CheckEliminatedInAndChains) {
  // The common-subexpression elimination: an AND chain needs exactly one
  // ethertype check (the left operand's true-path proves IPv4), as in
  // tcpdump's optimized output.
  const auto count_ethertype_loads = [](const Program& program) {
    int loads = 0;
    for (const Insn& insn : program) {
      if (insn.code == (kClassLd | kSizeH | kModeAbs) && insn.k == 12) {
        ++loads;
      }
    }
    return loads;
  };
  EXPECT_EQ(count_ethertype_loads(
                compile_filter("udp and port 53 and 131.225.2")),
            1);
  EXPECT_EQ(count_ethertype_loads(compile_filter("tcp and dst port 443")), 1);
  // OR cannot share the check: the right side runs when the left failed.
  EXPECT_EQ(count_ethertype_loads(compile_filter("udp or port 53")), 2);
  // NOT invalidates the proof.
  EXPECT_EQ(count_ethertype_loads(
                compile_filter("not udp and port 53")),
            2);
  // An OR of two establishing operands still proves IPv4 to its AND
  // sibling.
  EXPECT_EQ(count_ethertype_loads(
                compile_filter("(udp or tcp) and port 53")),
            2);  // one per OR arm, none for `port`
}

TEST(BpfCodegen, DisassemblesToPlausibleListing) {
  const Program program = compile_filter("udp");
  const std::string listing = disassemble(program);
  EXPECT_NE(listing.find("ldh [12]"), std::string::npos);
  EXPECT_NE(listing.find("jeq #0x800"), std::string::npos);
  EXPECT_NE(listing.find("ret #"), std::string::npos);
}

// --- property sweep: VM result == direct AST evaluation ---

class FilterOracleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FilterOracleTest, CompiledProgramAgreesWithOracle) {
  const char* filter_text = GetParam();
  const ExprPtr expr = parse_filter(filter_text);
  const Program program = compile(expr.get());
  ASSERT_TRUE(verify(program).ok);

  Xoshiro256 rng{0xBF5EED};
  int match_count = 0;
  for (int i = 0; i < 2000; ++i) {
    FlowKey flow;
    // Bias the address space so filters actually match sometimes.
    flow.src_ip = rng.next_bool(0.4)
                      ? Ipv4Addr{131, 225, static_cast<std::uint8_t>(
                                               rng.next_below(4)),
                                 static_cast<std::uint8_t>(rng.next_in(1, 254))}
                      : Ipv4Addr{static_cast<std::uint32_t>(rng.next() &
                                                            0xFFFFFFFFu)};
    flow.dst_ip = rng.next_bool(0.4)
                      ? Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(
                                               rng.next_in(1, 254))}
                      : Ipv4Addr{static_cast<std::uint32_t>(rng.next() &
                                                            0xFFFFFFFFu)};
    const double proto_pick = rng.next_double();
    flow.proto = proto_pick < 0.45   ? IpProto::kTcp
                 : proto_pick < 0.9  ? IpProto::kUdp
                                     : IpProto::kIcmp;
    flow.src_port = rng.next_bool(0.3)
                        ? 53
                        : static_cast<std::uint16_t>(rng.next_in(1, 65535));
    flow.dst_port = rng.next_bool(0.3)
                        ? 443
                        : static_cast<std::uint16_t>(rng.next_in(1, 65535));
    const auto wire_len = static_cast<std::uint32_t>(rng.next_in(64, 1518));

    const auto packet = net::WirePacket::make(Nanos{0}, flow, wire_len);
    const bool vm_result =
        matches(program, packet.bytes(), packet.wire_len());
    const bool oracle_result =
        evaluate(expr.get(), packet.bytes(), packet.wire_len());
    ASSERT_EQ(vm_result, oracle_result)
        << "filter '" << filter_text << "' disagrees on "
        << flow.to_string() << " len " << wire_len;
    if (vm_result) ++match_count;
  }
  // Sanity: the sweep exercised both branches for every filter.
  EXPECT_GT(match_count, 0) << filter_text;
  EXPECT_LT(match_count, 2000) << filter_text;
}

INSTANTIATE_TEST_SUITE_P(
    Filters, FilterOracleTest,
    ::testing::Values(
        "udp", "tcp", "icmp", "ip and not tcp", "131.225.2 and udp",
        "host 10.0.0.7", "src net 131.225.0.0/16", "dst net 10.0.0.0/24",
        "port 53", "src port 53", "dst port 443", "udp port 53",
        "tcp and dst port 443 and src net 131.225.0.0/16",
        "not (udp or icmp)", "len <= 512", "len >= 512 and tcp",
        "(131.225.2 or 10.0.0.0/24) and (udp or tcp)",
        "udp and not port 53", "src host 131.225.2.1 or dst host 10.0.0.1"));

// --- pre-decoded executor ---

// Parity across every truncation length: the checked/unchecked dispatch
// boundary (abs_guard_) and every fused op's bounds handling sit inside
// this sweep, because each length lands a different load out of bounds.
TEST(Predecoded, MatchesVmAtEveryTruncationLength) {
  for (const char* filter_text :
       {"udp", "131.225.2 and udp", "tcp and dst port 443",
        "src net 131.225.0.0/16", "udp port 53"}) {
    const Program program = compile_filter(filter_text);
    const Predecoded pre{program};
    for (const auto& flow :
         {FlowKey{Ipv4Addr{131, 225, 2, 9}, Ipv4Addr{8, 8, 8, 8}, 999, 53,
                  IpProto::kUdp},
          FlowKey{Ipv4Addr{192, 168, 1, 1}, Ipv4Addr{10, 0, 0, 2}, 4000, 443,
                  IpProto::kTcp}}) {
      const auto frame = make_frame(flow);
      for (std::size_t len = 0; len <= frame.size(); ++len) {
        const auto pkt = std::span<const std::byte>{frame}.first(len);
        ASSERT_EQ(pre.run(pkt, 64), run(program, pkt, 64))
            << filter_text << " caplen " << len;
      }
    }
  }
}

TEST(Predecoded, FusionEmitsFusedOpsForBenchFilter) {
  const Predecoded pre{compile_filter("131.225.2 and udp")};
  bool saw_fused = false;
  for (const PInsn& insn : pre.insns()) {
    if (insn.op == Op::kLdIndWAndKJeqK || insn.op == Op::kLdAbsWAndKJeqK ||
        insn.op == Op::kLdxMemLdIndBJeqK) {
      saw_fused = true;
    }
  }
  EXPECT_TRUE(saw_fused);
}

// A branch landing on the second instruction of a fusable pair must
// block the fusion: the jf path below enters at the jeq directly, so the
// jeq has to stay live even though (2,3) looks like a ld+jeq pair.
TEST(Predecoded, FusionBlockedWhenSecondInsnIsJumpTarget) {
  const Program program{
      stmt(kClassLd | kSizeH | kModeAbs, 2),          // 0: A <- P[2:2]
      jump(kClassJmp | kJmpJeq, 0, 0, 1),             // 1: ==0 ? 2 : 3
      stmt(kClassLd | kSizeH | kModeAbs, 0),          // 2: A <- P[0:2]
      jump(kClassJmp | kJmpJeq, 0x1122, 0, 1),        // 3: ==0x1122 ? 4 : 5
      stmt(kClassRet | kRetK, 7),                     // 4
      stmt(kClassRet | kRetK, 9),                     // 5
  };
  const Predecoded pre{program};
  std::array<std::byte, 4> pkt{std::byte{0x11}, std::byte{0x22},
                               std::byte{0x11}, std::byte{0x22}};
  // P[2:2] = 0x1122 != 0, so execution enters insn 3 with A still 0x1122.
  EXPECT_EQ(pre.run(pkt, 4), 7u);
  EXPECT_EQ(pre.run(pkt, 4), run(program, pkt, 4));
  std::array<std::byte, 4> zero_tail{std::byte{0x11}, std::byte{0x22},
                                     std::byte{0x00}, std::byte{0x00}};
  // P[2:2] = 0, so insn 2 reloads A = 0x1122 before the compare.
  EXPECT_EQ(pre.run(zero_tail, 4), 7u);
  EXPECT_EQ(pre.run(zero_tail, 4), run(program, pkt, 4));
}

TEST(Predecoded, ShiftByThirtyTwoOrMoreYieldsZero) {
  for (const std::uint16_t op : {kAluLsh, kAluRsh}) {
    const Program program{stmt(kClassLd | kModeImm, 0xFFFFFFFF),
                          stmt(kClassAlu | op | kSrcK, 32),
                          stmt(kClassRet | kRetA, 0)};
    const Predecoded pre{program};
    EXPECT_EQ(pre.run({}, 0), 0u);
    EXPECT_EQ(pre.run({}, 0), run(program, {}, 0));
  }
}

TEST(Predecoded, DivisionByZeroXRejects) {
  const Program program{stmt(kClassLdx | kModeImm, 0),
                        stmt(kClassLd | kModeImm, 10),
                        stmt(kClassAlu | kAluDiv | kSrcX, 0),
                        stmt(kClassRet | kRetK, 1)};
  const Predecoded pre{program};
  EXPECT_EQ(pre.run({}, 0), 0u);
}

TEST(Predecoded, InvalidProgramThrows) {
  EXPECT_THROW(Predecoded{Program{}}, std::invalid_argument);
  const Program bad_jump{jump(kClassJmp | kJmpJeq, 1, 40, 40),
                         stmt(kClassRet | kRetK, 0)};
  EXPECT_THROW(Predecoded{bad_jump}, std::invalid_argument);
}

TEST(Predecoded, RunBatchFlagsEachPacket) {
  const Predecoded pre{compile_filter("udp")};
  const auto udp_frame = make_frame(FlowKey{
      Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 53, 53, IpProto::kUdp});
  const auto tcp_frame = make_frame(FlowKey{
      Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 80, 80, IpProto::kTcp});
  std::array<std::byte, 64> buf_a = udp_frame;
  std::array<std::byte, 64> buf_b = tcp_frame;
  std::array<std::byte, 64> buf_c = udp_frame;
  engines::PacketBatch batch;
  for (auto* buf : {&buf_a, &buf_b, &buf_c}) {
    engines::CaptureView view;
    view.bytes = std::span<std::byte>{*buf};
    view.wire_len = 64;
    batch.views.push_back(view);
  }
  std::vector<std::uint8_t> accepts;
  EXPECT_EQ(pre.run_batch(batch, accepts), 2u);
  ASSERT_EQ(accepts.size(), 3u);
  EXPECT_NE(accepts[0], 0);
  EXPECT_EQ(accepts[1], 0);
  EXPECT_NE(accepts[2], 0);
  batch.views.clear();
  EXPECT_EQ(pre.run_batch(batch, accepts), 0u);
  EXPECT_TRUE(accepts.empty());
}

// A batch whose every view has zero captured bytes: every absolute load
// is out of bounds, so a data-dependent filter rejects all packets —
// but the call itself must stay well-defined and size `accepts`.
TEST(Predecoded, RunBatchHandlesZeroLengthViews) {
  const Predecoded pre{compile_filter("udp")};
  engines::PacketBatch batch;
  for (int i = 0; i < 3; ++i) {
    engines::CaptureView view;
    view.bytes = {};  // captured length 0
    view.wire_len = 64;
    batch.views.push_back(view);
  }
  std::vector<std::uint8_t> accepts{0xFF};  // stale content must be reset
  EXPECT_EQ(pre.run_batch(batch, accepts), 0u);
  ASSERT_EQ(accepts.size(), 3u);
  for (const std::uint8_t a : accepts) EXPECT_EQ(a, 0);
}

// All packets rejected: the shape a pipeline FilterStage compacts to an
// empty batch (its deferred release path depends on this count being
// exact).
TEST(Predecoded, RunBatchAllPacketsRejected) {
  const Predecoded pre{compile_filter("tcp port 9999")};
  std::vector<std::array<std::byte, 64>> frames;
  for (std::uint16_t p = 0; p < 4; ++p) {
    frames.push_back(make_frame(FlowKey{Ipv4Addr{10, 0, 0, 1},
                                        Ipv4Addr{10, 0, 0, 2},
                                        static_cast<std::uint16_t>(1000 + p),
                                        53, IpProto::kUdp}));
  }
  engines::PacketBatch batch;
  for (auto& frame : frames) {
    engines::CaptureView view;
    view.bytes = std::span<std::byte>{frame};
    view.wire_len = 64;
    batch.views.push_back(view);
  }
  std::vector<std::uint8_t> accepts;
  EXPECT_EQ(pre.run_batch(batch, accepts), 0u);
  ASSERT_EQ(accepts.size(), 4u);
  for (const std::uint8_t a : accepts) EXPECT_EQ(a, 0);
}

}  // namespace
}  // namespace wirecap::bpf
