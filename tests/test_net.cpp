// Unit tests for src/net: byte helpers, checksums, header round-trips,
// flow parsing, Toeplitz RSS (against the published verification
// vectors), packets, and pcap file I/O.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <memory>

#include <fstream>
#include <unistd.h>

#include "common/rng.hpp"
#include "net/bytes.hpp"
#include "net/checksum.hpp"
#include "net/flow.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/pcapfile.hpp"
#include "net/rss.hpp"

namespace wirecap::net {
namespace {

TEST(Bytes, RoundTrip) {
  std::array<std::byte, 8> buf{};
  write_be16(buf, 0, 0xBEEF);
  write_be32(buf, 2, 0xDEADBEEF);
  write_u8(buf, 6, 0x42);
  EXPECT_EQ(read_be16(buf, 0), 0xBEEF);
  EXPECT_EQ(read_be32(buf, 2), 0xDEADBEEFu);
  EXPECT_EQ(read_u8(buf, 6), 0x42);
  EXPECT_THROW(static_cast<void>(read_be32(buf, 6)), std::out_of_range);
  EXPECT_THROW(write_be16(buf, 7, 1), std::out_of_range);
}

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071: 0001 f203 f4f5 f6f7 -> checksum
  // complement of 2ddf0 folded = ~(ddf2) = 220d.
  const std::array<std::byte, 8> data{
      std::byte{0x00}, std::byte{0x01}, std::byte{0xf2}, std::byte{0x03},
      std::byte{0xf4}, std::byte{0xf5}, std::byte{0xf6}, std::byte{0xf7}};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLength) {
  const std::array<std::byte, 3> data{std::byte{0x01}, std::byte{0x02},
                                      std::byte{0x03}};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xFBFD.
  EXPECT_EQ(internet_checksum(data), 0xFBFD);
}

TEST(Checksum, VerifiesToZero) {
  // A buffer with its own checksum inserted sums to 0xFFFF (i.e. the
  // verification checksum is 0).
  std::array<std::byte, 20> header{};
  write_be16(header, 0, 0x4500);
  write_be32(header, 12, Ipv4Addr{131, 225, 2, 10}.value());
  write_be32(header, 16, Ipv4Addr{192, 168, 1, 1}.value());
  const std::uint16_t csum = internet_checksum(header);
  write_be16(header, 10, csum);
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(Ipv4Addr, FormattingAndPrefix) {
  const Ipv4Addr addr{131, 225, 2, 42};
  EXPECT_EQ(addr.to_string(), "131.225.2.42");
  EXPECT_TRUE(addr.in_prefix(Ipv4Addr{131, 225, 2, 0}, 24));
  EXPECT_TRUE(addr.in_prefix(Ipv4Addr{131, 225, 0, 0}, 16));
  EXPECT_FALSE(addr.in_prefix(Ipv4Addr{131, 225, 3, 0}, 24));
  EXPECT_TRUE(addr.in_prefix(Ipv4Addr{0, 0, 0, 0}, 0));
}

TEST(Headers, BuildAndParseUdpFrame) {
  FlowKey flow;
  flow.src_ip = Ipv4Addr{131, 225, 2, 10};
  flow.dst_ip = Ipv4Addr{192, 168, 7, 7};
  flow.src_port = 40000;
  flow.dst_port = 53;
  flow.proto = IpProto::kUdp;

  std::array<std::byte, 128> buf{};
  const std::size_t n = build_frame(buf, flow, 64, MacAddr::of(1, 2, 3, 4, 5, 6),
                                    MacAddr::of(6, 5, 4, 3, 2, 1), 77);
  EXPECT_EQ(n, 64u);

  const auto eth = parse_ethernet(buf);
  ASSERT_TRUE(eth.has_value());
  EXPECT_EQ(eth->ether_type, kEtherTypeIpv4);

  const auto ip = parse_ipv4(std::span<const std::byte>{buf}.subspan(14));
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->src, flow.src_ip);
  EXPECT_EQ(ip->dst, flow.dst_ip);
  EXPECT_EQ(ip->protocol, IpProto::kUdp);
  EXPECT_EQ(ip->total_length, 50);
  EXPECT_EQ(ip->identification, 77);
  // Header checksum must verify.
  EXPECT_EQ(internet_checksum(
                std::span<const std::byte>{buf}.subspan(14, 20)),
            0);

  const auto parsed = parse_flow(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, flow);
}

TEST(Headers, BuildAndParseTcpFrameWithChecksum) {
  FlowKey flow;
  flow.src_ip = Ipv4Addr{10, 0, 0, 1};
  flow.dst_ip = Ipv4Addr{10, 0, 0, 2};
  flow.src_port = 12345;
  flow.dst_port = 443;
  flow.proto = IpProto::kTcp;

  std::array<std::byte, 256> buf{};
  build_frame(buf, flow, 100, MacAddr{}, MacAddr{});
  const auto parsed = parse_flow(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, flow);

  // Verify the TCP checksum over pseudo-header + segment.
  const auto l3 = std::span<const std::byte>{buf}.subspan(14);
  const auto l4 = l3.subspan(20, 100 - 14 - 20);
  std::array<std::byte, 12> pseudo{};
  write_be32(pseudo, 0, flow.src_ip.value());
  write_be32(pseudo, 4, flow.dst_ip.value());
  write_u8(pseudo, 9, 6);
  write_be16(pseudo, 10, static_cast<std::uint16_t>(l4.size()));
  std::uint64_t sum = checksum_partial(pseudo);
  sum = checksum_partial(l4, sum);
  EXPECT_EQ(finish_checksum(sum), 0);
}

TEST(Headers, RejectsTruncated) {
  std::array<std::byte, 10> tiny{};
  EXPECT_FALSE(parse_ethernet(tiny).has_value());
  EXPECT_FALSE(parse_ipv4(tiny).has_value());
  EXPECT_FALSE(parse_flow(tiny).has_value());
  std::array<std::byte, 64> buf{};
  FlowKey flow;
  flow.proto = IpProto::kUdp;
  build_frame(buf, flow, 64, MacAddr{}, MacAddr{});
  EXPECT_THROW(build_frame(std::span<std::byte>{buf}.first(30), flow, 64,
                           MacAddr{}, MacAddr{}),
               std::invalid_argument);
  EXPECT_THROW(build_frame(buf, flow, 10, MacAddr{}, MacAddr{}),
               std::invalid_argument);
}

// The Microsoft RSS verification suite vectors (also in the 82599
// datasheet), using the well-known default key.
struct RssVector {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint32_t l4_hash;   // IPv4 with TCP
  std::uint32_t ip_hash;   // IPv4 only
};

class RssVectors : public ::testing::TestWithParam<RssVector> {};

TEST_P(RssVectors, ToeplitzMatchesPublishedHashes) {
  const RssVector& v = GetParam();
  FlowKey tcp_flow{v.src, v.dst, v.src_port, v.dst_port, IpProto::kTcp};
  EXPECT_EQ(rss_hash(tcp_flow), v.l4_hash);
  // Address-only hash (the NIC's fallback for non-TCP/UDP IP packets).
  FlowKey icmp_flow{v.src, v.dst, 0, 0, IpProto::kIcmp};
  EXPECT_EQ(rss_hash(icmp_flow), v.ip_hash);
}

INSTANTIATE_TEST_SUITE_P(
    Published, RssVectors,
    ::testing::Values(
        RssVector{Ipv4Addr{66, 9, 149, 187}, Ipv4Addr{161, 142, 100, 80},
                  2794, 1766, 0x51ccc178, 0x323e8fc2},
        RssVector{Ipv4Addr{199, 92, 111, 2}, Ipv4Addr{65, 69, 140, 83},
                  14230, 4739, 0xc626b0ea, 0xd718262a},
        RssVector{Ipv4Addr{24, 19, 198, 95}, Ipv4Addr{12, 22, 207, 184},
                  12898, 38024, 0x5c2b394a, 0xd2d0a5de},
        RssVector{Ipv4Addr{38, 27, 205, 30}, Ipv4Addr{209, 142, 163, 6},
                  48228, 2217, 0xafc7327f, 0x82989176},
        RssVector{Ipv4Addr{153, 39, 163, 191}, Ipv4Addr{202, 188, 127, 2},
                  44251, 1303, 0x10e828a2, 0x5d1809c5}));

TEST(Rss, QueueSelectionIsStablePerFlow) {
  FlowKey flow{Ipv4Addr{1, 2, 3, 4}, Ipv4Addr{5, 6, 7, 8}, 1000, 2000,
               IpProto::kTcp};
  const std::uint32_t q = rss_queue(flow, 6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rss_queue(flow, 6), q);
  EXPECT_LT(q, 6u);
}

TEST(Rss, SpreadsFlowsAcrossQueues) {
  // Many random flows should touch every queue (statistically certain).
  Xoshiro256 rng{42};
  std::array<int, 6> counts{};
  for (int i = 0; i < 6000; ++i) {
    FlowKey flow;
    flow.src_ip = Ipv4Addr{static_cast<std::uint32_t>(rng.next() & 0xFFFFFFFFu)};
    flow.dst_ip = Ipv4Addr{static_cast<std::uint32_t>(rng.next() & 0xFFFFFFFFu)};
    flow.src_port = static_cast<std::uint16_t>(rng.next());
    flow.dst_port = static_cast<std::uint16_t>(rng.next());
    flow.proto = IpProto::kTcp;
    ++counts[rss_queue(flow, 6)];
  }
  for (const int c : counts) EXPECT_GT(c, 500);
}

TEST(WirePacket, MaterializesRealFrame) {
  FlowKey flow{Ipv4Addr{131, 225, 2, 1}, Ipv4Addr{10, 1, 1, 1}, 5000, 80,
               IpProto::kTcp};
  const auto pkt = WirePacket::make(Nanos{1000}, flow, 64, 7);
  EXPECT_EQ(pkt.wire_len(), 64u);
  EXPECT_EQ(pkt.seq(), 7u);
  const auto parsed = parse_flow(pkt.bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, flow);
}

TEST(WirePacket, LargeFrameSnapsHeaders) {
  FlowKey flow{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 1, 2,
               IpProto::kUdp};
  const auto pkt = WirePacket::make(Nanos{0}, flow, 1518);
  EXPECT_EQ(pkt.wire_len(), 1518u);
  EXPECT_EQ(pkt.snap_len(), WirePacket::kSnapBytes);
  const auto parsed = parse_flow(pkt.bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, flow);
  // The embedded IP total_length reflects the true wire length.
  const auto ip = parse_ipv4(pkt.bytes().subspan(14));
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->total_length, 1518 - 14);
}

TEST(WirePacket, MinimumSizeEnforced) {
  FlowKey flow;
  flow.proto = IpProto::kUdp;
  const auto pkt = WirePacket::make(Nanos{0}, flow, 10);
  EXPECT_GE(pkt.wire_len(), min_frame_len(IpProto::kUdp));
}

class PcapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("wirecap_test_" + std::to_string(::getpid()) + ".pcap");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(PcapFileTest, RoundTripNanosecond) {
  FlowKey flow{Ipv4Addr{131, 225, 2, 9}, Ipv4Addr{8, 8, 8, 8}, 999, 53,
               IpProto::kUdp};
  {
    PcapWriter writer{path_};
    for (int i = 0; i < 10; ++i) {
      const auto pkt = WirePacket::make(
          Nanos{1'000'000'000LL + i * 1'000'000LL + 123}, flow, 64,
          static_cast<std::uint64_t>(i));
      writer.write(pkt);
    }
    EXPECT_EQ(writer.records_written(), 10u);
  }
  PcapReader reader{path_};
  EXPECT_TRUE(reader.nanosecond());
  EXPECT_EQ(reader.linktype(), kLinktypeEthernet);
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(records[0].timestamp.count(), 1'000'000'123LL);
  EXPECT_EQ(records[3].timestamp.count(), 1'003'000'123LL);
  EXPECT_EQ(records[0].orig_len, 64u);
  const auto parsed = parse_flow(records[0].data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, flow);
}

TEST_F(PcapFileTest, MicrosecondVariant) {
  {
    PcapWriter writer{path_, 65535, /*nanosecond=*/false};
    std::array<std::byte, 60> data{};
    writer.write(Nanos{5'000'001'500LL}, data, 60);
  }
  PcapReader reader{path_};
  EXPECT_FALSE(reader.nanosecond());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  // Microsecond resolution truncates the 500 ns.
  EXPECT_EQ(record->timestamp.count(), 5'000'001'000LL);
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapFileTest, DestructorFlushesUnclosedTail) {
  // Regression: a writer destroyed without close() used to lose its
  // buffered tail bytes; the destructor must flush so the last packet
  // survives a crashless-but-careless teardown.
  FlowKey flow{Ipv4Addr{131, 225, 2, 9}, Ipv4Addr{8, 8, 8, 8}, 999, 53,
               IpProto::kUdp};
  {
    auto writer = std::make_unique<PcapWriter>(path_);
    for (int i = 0; i < 7; ++i) {
      writer->write(WirePacket::make(Nanos{1'000LL * (i + 1)}, flow, 64,
                                     static_cast<std::uint64_t>(i)));
    }
    writer.reset();  // destructor, no close()
  }
  PcapReader reader{path_};
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records.back().timestamp.count(), 7'000LL);
  EXPECT_EQ(records.back().orig_len, 64u);
}

TEST_F(PcapFileTest, RejectsGarbage) {
  {
    std::ofstream out{path_, std::ios::binary};
    out << "this is not a pcap file at all";
  }
  EXPECT_THROW(PcapReader{path_}, std::runtime_error);
}

}  // namespace
}  // namespace wirecap::net
