// Behavioural tests for the baseline engines, driven through the
// experiment harness: Type-II ring-limited buffering, PF_RING's copy
// path / delivery drops / receive livelock, PSIOE's user-space copy, and
// cross-engine conservation (sent == delivered + dropped after drain).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "apps/harness.hpp"
#include "core/wirecap_engine.hpp"
#include "engines/factory.hpp"
#include "net/packet.hpp"
#include "nic/device.hpp"
#include "sim/bus.hpp"
#include "sim/core.hpp"
#include "sim/scheduler.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::apps {
namespace {

/// A single-queue burst experiment: P 64-byte packets at wire rate into
/// one queue, handler with the given x, run until drained.
ExperimentResult run_burst(EngineKind kind, std::uint64_t packets, unsigned x,
                           Nanos drain = Nanos::from_seconds(3)) {
  ExperimentConfig config;
  config.engine.kind = kind;
  config.num_queues = 1;
  config.x = x;
  Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  Xoshiro256 rng{21};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};

  const Nanos horizon =
      Nanos::from_seconds(static_cast<double>(packets) /
                          source.rate().per_second()) + drain;
  return experiment.run(source, horizon);
}

void expect_conservation(const ExperimentResult& result) {
  EXPECT_EQ(result.sent, result.delivered + result.capture_dropped +
                             result.delivery_dropped)
      << result.engine_label;
  EXPECT_EQ(result.processed, result.delivered) << result.engine_label;
}

class AllEnginesBurst : public ::testing::TestWithParam<EngineKind> {};

TEST_P(AllEnginesBurst, SmallBurstLossless) {
  // Every engine must capture a burst smaller than its ring without loss.
  const auto result = run_burst(GetParam(), 500, 0);
  EXPECT_EQ(result.drop_rate(), 0.0) << result.engine_label;
  expect_conservation(result);
}

TEST_P(AllEnginesBurst, ConservationUnderOverload) {
  // Even when packets drop, the accounting must balance exactly.
  const auto result = run_burst(GetParam(), 50'000, 300,
                                Nanos::from_seconds(10));
  EXPECT_GT(result.sent, 0u);
  expect_conservation(result);
}

INSTANTIATE_TEST_SUITE_P(Engines, AllEnginesBurst,
                         ::testing::Values(EngineKind::kDna,
                                           EngineKind::kNetmap,
                                           EngineKind::kPfRing,
                                           EngineKind::kPsioe,
                                           EngineKind::kWirecapBasic));

TEST(Type2Engines, WireRateCaptureNoLossAtX0) {
  // Figure 8: DNA and NETMAP capture 64-byte packets at wire rate
  // without loss when the application applies no processing load.
  for (const EngineKind kind : {EngineKind::kDna, EngineKind::kNetmap}) {
    const auto result = run_burst(kind, 200'000, 0);
    EXPECT_EQ(result.drop_rate(), 0.0) << result.engine_label;
    EXPECT_EQ(result.copies, 0u) << "Type-II engines are zero-copy";
  }
}

TEST(Type2Engines, BufferingLimitedToRingPlusFifo) {
  // Figure 9: under a heavy processing load (x=300), a Type-II engine
  // buffers roughly ring (1024) + NIC FIFO (4096 slots) packets of a
  // wire-rate burst; beyond that, capture drops.
  const auto small = run_burst(EngineKind::kDna, 5'000, 300,
                               Nanos::from_seconds(2));
  EXPECT_EQ(small.drop_rate(), 0.0);

  const auto big = run_burst(EngineKind::kDna, 20'000, 300,
                             Nanos::from_seconds(2));
  EXPECT_GT(big.capture_dropped, 0u);
  EXPECT_EQ(big.delivery_dropped, 0u);  // Type-II never delivery-drops
  // Kept packets ~= ring + FIFO + processed-during-burst.
  EXPECT_NEAR(static_cast<double>(big.sent - big.capture_dropped), 5200.0,
              500.0);
}

TEST(Type2Engines, NetmapHoldsMoreRingBackThanDna) {
  // NETMAP's batched sync leaves fewer ready descriptors under pressure,
  // so at the same overload it drops at least as much as DNA.
  const auto dna = run_burst(EngineKind::kDna, 20'000, 300,
                             Nanos::from_seconds(2));
  const auto netmap = run_burst(EngineKind::kNetmap, 20'000, 300,
                                Nanos::from_seconds(2));
  EXPECT_GE(netmap.capture_dropped, dna.capture_dropped);
}

TEST(PfRing, CopiesEveryPacket) {
  const auto result = run_burst(EngineKind::kPfRing, 1'000, 0);
  EXPECT_EQ(result.copies, result.delivered);
  EXPECT_GT(result.delivered, 0u);
}

TEST(PfRing, CannotCaptureAtWireRate) {
  // Figure 8: PF_RING suffers significant drops even with x=0 — its
  // per-packet kernel work exceeds the 67.2 ns wire-rate budget.
  const auto result = run_burst(EngineKind::kPfRing, 200'000, 0,
                                Nanos::from_seconds(2));
  EXPECT_GT(result.drop_rate(), 0.5);
}

TEST(PfRing, DeliveryDropsUnderHeavyLoad) {
  // Table 1 queue 0 pattern: at a sustained rate the kernel keeps up
  // (few capture drops) but the application cannot, so the pf_ring
  // buffer overflows -> delivery drops.
  ExperimentConfig config;
  config.engine.kind = EngineKind::kPfRing;
  config.num_queues = 1;
  config.x = 300;  // app processes ~38.8 kp/s
  Experiment experiment{config};

  // 80 kp/s sustained for 2 s, as on the paper's queue 0.
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 160'000;
  trace_config.frame_bytes = 64;
  // 80 kp/s = wire rate of a link throttled accordingly; use explicit
  // link speed to pace: 80e3 pps * 84 bytes * 8 bits.
  trace_config.link_bits_per_second = 80e3 * 84 * 8;
  Xoshiro256 rng{22};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};

  const auto result = experiment.run(source, Nanos::from_seconds(4));
  EXPECT_GT(result.delivery_dropped, 0u);
  const double delivery_rate = static_cast<double>(result.delivery_dropped) /
                               static_cast<double>(result.sent);
  // Roughly (80k - ~34k effective) / 80k ~ 55-60%.
  EXPECT_GT(delivery_rate, 0.40);
  EXPECT_LT(delivery_rate, 0.75);
  // Capture drops stay negligible: NAPI keeps the ring drained.
  EXPECT_LT(result.per_queue[0].capture_drop_rate(), 0.02);
}

TEST(PfRing, LivelockStealsAppThroughput) {
  // Receive livelock shows up under *sustained* overload: while packets
  // keep arriving faster than NAPI can drain them, the kernel-priority
  // copy work monopolizes the core and the application starves.  Measure
  // packets processed during a 0.3 s window of 1 Mp/s arrivals.
  const auto run_sustained = [](EngineKind kind) {
    ExperimentConfig config;
    config.engine.kind = kind;
    config.num_queues = 1;
    config.x = 300;
    Experiment experiment{config};
    trace::ConstantRateConfig trace_config;
    trace_config.packet_count = 300'000;
    trace_config.link_bits_per_second = 1e6 * 84 * 8;  // 1 Mp/s of 64B
    Xoshiro256 rng{23};
    trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
    trace::ConstantRateSource source{trace_config};
    // No drain: stop at the end of the arrival window.
    return experiment.run(source, Nanos::from_seconds(0.3));
  };
  const auto dna = run_sustained(EngineKind::kDna);
  const auto pfring = run_sustained(EngineKind::kPfRing);
  // DNA's app runs at its full 38.8 kp/s; PF_RING's app is starved by
  // kernel-priority NAPI work on the same core.
  EXPECT_GT(dna.processed, 10'000u);
  EXPECT_LT(pfring.processed, dna.processed / 2);
}

TEST(Psioe, CopiesInUserSpaceAndConserves) {
  const auto result = run_burst(EngineKind::kPsioe, 2'000, 0);
  EXPECT_EQ(result.drop_rate(), 0.0);
  EXPECT_GE(result.copies, result.delivered);  // one user copy per packet
  expect_conservation(result);
}

TEST(Harness, LabelsAreStable) {
  EngineParams params;
  params.kind = EngineKind::kWirecapBasic;
  params.cells_per_chunk = 256;
  params.chunk_count = 500;
  EXPECT_EQ(params.label(), "WireCAP-B-(256,500)");
  params.kind = EngineKind::kWirecapAdvanced;
  params.offload_threshold = 0.6;
  EXPECT_EQ(params.label(), "WireCAP-A-(256,500,60%)");
  params.kind = EngineKind::kDna;
  EXPECT_EQ(params.label(), "DNA");
}

// --- the CLI boundary: strings become enums exactly once ---

TEST(CliParsing, OffloadPolicyRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_offload_policy("least-busy"), OffloadPolicy::kLeastBusy);
  EXPECT_EQ(parse_offload_policy("random"), OffloadPolicy::kRandomBuddy);
  EXPECT_EQ(parse_offload_policy("round-robin"), OffloadPolicy::kRoundRobin);
  for (const OffloadPolicy policy :
       {OffloadPolicy::kLeastBusy, OffloadPolicy::kRandomBuddy,
        OffloadPolicy::kRoundRobin}) {
    EXPECT_EQ(parse_offload_policy(to_string(policy)), policy);
  }
  try {
    static_cast<void>(parse_offload_policy("fastest"));
    FAIL() << "unknown policy accepted";
  } catch (const std::invalid_argument& error) {
    // The message names the offender and lists the allowed set.
    EXPECT_NE(std::string(error.what()).find("fastest"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("least-busy"),
              std::string::npos);
  }
}

TEST(CliParsing, HandoffModeRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_handoff_mode("lock-free"), HandoffMode::kLockFree);
  EXPECT_EQ(parse_handoff_mode("mutex"), HandoffMode::kMutex);
  try {
    static_cast<void>(parse_handoff_mode("spinlock"));
    FAIL() << "unknown handoff mode accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("spinlock"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("lock-free"),
              std::string::npos);
  }
}

TEST(EngineFactory, TenantRegistrationWorksAcrossEngineKinds) {
  // register_tenant is part of the CaptureEngine surface: the WireCAP
  // engine maps it onto buddy groups + quotas, the DPDK model onto its
  // app-layer peer groups, and the base class rejects bad specs for
  // engines with no grouping concept at all.
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 2;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  sim::SimCore core{scheduler, 0};

  auto dpdk = engines::make_engine("DPDK+app-offload", nic);
  dpdk->open(0, core);
  dpdk->open(1, core);
  engines::TenantSpec spec;
  spec.name = "pair";
  spec.queues = {0, 1};
  const engines::TenantId id = dpdk->register_tenant(spec);
  EXPECT_EQ(dpdk->tenant_of(0), id);
  EXPECT_EQ(dpdk->tenant_of(1), id);
  ASSERT_EQ(dpdk->tenants().size(), 1u);

  engines::TenantSpec bad;
  bad.queues = {0};
  EXPECT_THROW(dpdk->register_tenant(bad), std::invalid_argument);
}

// --- batch read API ---

TEST(BatchApi, WirecapBatchesAreChunkBoundedAndHonorLimit) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 1;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  engines::EngineConfig config;
  config.cells_per_chunk = 32;
  config.chunk_count = 40;
  auto engine = engines::make_engine("WireCAP-B", nic, config);
  sim::SimCore core{scheduler, 0};
  engine->open(0, core);

  const net::FlowKey flow{net::Ipv4Addr{10, 0, 0, 1},
                          net::Ipv4Addr{10, 0, 0, 2}, 5000, 53,
                          net::IpProto::kUdp};
  constexpr std::uint64_t kPackets = 100;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    nic.receive(net::WirePacket::make(
        Nanos::from_micros(2.0 * static_cast<double>(i + 1)), flow, 64));
  }

  engines::PacketBatch batch;
  std::uint64_t drained = 0;
  bool limited_pull_done = false;
  int idle = 0;
  while (idle < 2) {
    scheduler.run_until(scheduler.now() + Nanos::from_millis(5));
    bool any = false;
    std::size_t n;
    while ((n = engine->try_next_batch(0, limited_pull_done ? 1000 : 5,
                                       batch)) > 0) {
      if (!limited_pull_done) {
        EXPECT_LE(n, 5u);  // max_packets is a hard cap
        limited_pull_done = true;
      }
      EXPECT_EQ(n, batch.views.size());
      EXPECT_LE(n, 32u);  // chunk == batch: a batch never spans chunks
      drained += n;
      engine->done_batch(0, batch);
      any = true;
    }
    idle = any ? 0 : idle + 1;
  }
  EXPECT_TRUE(limited_pull_done);
  EXPECT_EQ(drained, kPackets);
  EXPECT_EQ(engine->queue_stats(0).delivered, kPackets);
  engine->close(0);
}

TEST(BatchApi, BaselineAdapterDeliversSameStreamAsPerPacket) {
  const auto run_path = [](bool batched) {
    sim::Scheduler scheduler;
    sim::IoBus bus{scheduler};
    nic::NicConfig nic_config;
    nic_config.num_rx_queues = 1;
    nic::MultiQueueNic nic{scheduler, bus, nic_config};
    auto engine = engines::make_engine("DNA", nic, engines::EngineConfig{});
    sim::SimCore core{scheduler, 0};
    engine->open(0, core);

    const net::FlowKey flow{net::Ipv4Addr{10, 0, 0, 3},
                            net::Ipv4Addr{10, 0, 0, 4}, 6000, 80,
                            net::IpProto::kTcp};
    for (std::uint64_t i = 0; i < 60; ++i) {
      nic.receive(net::WirePacket::make(
          Nanos::from_micros(2.0 * static_cast<double>(i + 1)), flow, 64));
    }

    std::vector<std::uint64_t> seqs;
    engines::PacketBatch batch;
    int idle = 0;
    while (idle < 2) {
      scheduler.run_until(scheduler.now() + Nanos::from_millis(5));
      bool any = false;
      if (batched) {
        while (engine->try_next_batch(0, 7, batch) > 0) {
          for (const engines::CaptureView& view : batch.views) {
            seqs.push_back(view.seq);
          }
          engine->done_batch(0, batch);
          any = true;
        }
      } else {
        while (auto view = engine->try_next(0)) {
          seqs.push_back(view->seq);
          engine->done(0, *view);
          any = true;
        }
      }
      idle = any ? 0 : idle + 1;
    }
    engine->close(0);
    return seqs;
  };
  const auto per_packet = run_path(false);
  const auto via_batches = run_path(true);
  EXPECT_EQ(per_packet.size(), 60u);
  EXPECT_EQ(per_packet, via_batches);
}

// --- the refs-based release contract (PacketBatch::refs) ---

// try_next_batch() mints release obligations (`refs`) matching the
// batch's extent at read time; done_batch() settles the refs, not the
// views.  Compacting views in place — even to zero — must not leak a
// single cell.
TEST(BatchApi, RefsSettleReleasesNotViews) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 1;
  nic_config.rx_ring_size = 32;  // R must exceed ring_size / M
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  engines::EngineConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 12;  // tiny pool: a leaked chunk shows up fast
  auto engine = engines::make_engine("WireCAP-B", nic, config);
  auto& wirecap = dynamic_cast<core::WirecapEngine&>(*engine);
  sim::SimCore core{scheduler, 0};
  engine->open(0, core);

  const net::FlowKey flow{net::Ipv4Addr{10, 0, 0, 1},
                          net::Ipv4Addr{10, 0, 0, 2}, 5000, 53,
                          net::IpProto::kUdp};
  constexpr std::uint64_t kPackets = 500;  // several pool generations
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = kPackets;
  trace_config.flows = {flow};
  trace::ConstantRateSource source{trace_config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();

  engines::PacketBatch batch;
  std::uint64_t drained = 0;
  bool dropped_all_once = false;
  int idle = 0;
  while (idle < 2) {
    scheduler.run_until(scheduler.now() + Nanos::from_millis(5));
    bool any = false;
    while (engine->try_next_batch(0, 1000, batch) > 0) {
      ASSERT_FALSE(batch.refs.empty());
      ASSERT_EQ(batch.pending_releases(), batch.views.size());
      drained += batch.views.size();
      if (!dropped_all_once) {
        batch.views.clear();  // total compaction
        dropped_all_once = true;
      } else {
        batch.views.resize(batch.views.size() / 2);  // partial compaction
      }
      engine->done_batch(0, batch);  // refs settle the FULL extent
      any = true;
    }
    idle = any ? 0 : idle + 1;
  }
  EXPECT_TRUE(dropped_all_once);
  EXPECT_EQ(drained, kPackets);  // the tiny pool never ran dry: no leak
  EXPECT_EQ(nic.rx_stats(0).dropped, 0u);

  const auto census = wirecap.captured_census(0);
  EXPECT_EQ(census.outstanding, 0u);
  EXPECT_EQ(wirecap.pool(0).state_counts().captured, census.total());
  engine->close(0);
}

// A view released out of band (an individual done(), forward()) is
// subtracted from the batch's refs via note_released(), and done_batch()
// releases exactly the remainder; over-subtracting throws.
TEST(BatchApi, NoteReleasedKeepsRefsInStepWithOutOfBandReleases) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 1;
  nic_config.rx_ring_size = 32;  // R must exceed ring_size / M
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  engines::EngineConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 12;
  auto engine = engines::make_engine("WireCAP-B", nic, config);
  auto& wirecap = dynamic_cast<core::WirecapEngine&>(*engine);
  sim::SimCore core{scheduler, 0};
  engine->open(0, core);

  const net::FlowKey flow{net::Ipv4Addr{10, 0, 0, 5},
                          net::Ipv4Addr{10, 0, 0, 6}, 7000, 80,
                          net::IpProto::kTcp};
  for (std::uint64_t i = 0; i < 8; ++i) {
    nic.receive(net::WirePacket::make(
        Nanos::from_micros(2.0 * static_cast<double>(i + 1)), flow, 64));
  }
  scheduler.run_until(Nanos::from_millis(5));

  engines::PacketBatch batch;
  ASSERT_GT(engine->try_next_batch(0, 1000, batch), 0u);
  const std::size_t extent = batch.views.size();
  ASSERT_GE(extent, 2u);

  // Release the first view through the per-packet path, then keep the
  // batch's books in step.
  engine->done(0, batch.views.front());
  batch.note_released(batch.views.front().handle);
  EXPECT_EQ(batch.pending_releases(), extent - 1);

  engine->done_batch(0, batch);  // settles exactly the remainder

  const auto census = wirecap.captured_census(0);
  EXPECT_EQ(census.outstanding, 0u);

  // Over-subtraction is a caller bug and throws.
  engines::PacketBatch standalone;
  standalone.refs.push_back(engines::BatchRef{77, 1});
  standalone.note_released(77);
  EXPECT_THROW(standalone.note_released(77), std::logic_error);
  engine->close(0);
}

}  // namespace
}  // namespace wirecap::apps
