// Tests for the capture-to-disk spool (src/store): segment index
// round-trips, segment rotation, the k-way-merging StoreReader (stable
// order on duplicate timestamps, index-driven segment skipping),
// backpressure policies, the Experiment spool integration, and the
// round-trip conservation property under the fault soak.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "apps/harness.hpp"
#include "common/rng.hpp"
#include "core/wirecap_engine.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "store/reader.hpp"
#include "store/segment_index.hpp"
#include "store/spool.hpp"
#include "testing/faults.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::store {
namespace {

const net::FlowKey kFlowA{net::Ipv4Addr{131, 225, 2, 9},
                          net::Ipv4Addr{10, 0, 0, 1}, 4000, 53,
                          net::IpProto::kUdp};
const net::FlowKey kFlowB{net::Ipv4Addr{192, 168, 7, 7},
                          net::Ipv4Addr{10, 0, 0, 2}, 5000, 80,
                          net::IpProto::kTcp};

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wirecap_store_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST(SegmentIndexCodec, RoundTrip) {
  SegmentIndex index;
  index.shard_id = 3;
  index.segment_seq = 17;
  index.packet_count = 1234;
  index.byte_count = 99'000;
  index.min_timestamp = Nanos{1'000};
  index.max_timestamp = Nanos{2'000'000};
  index.unindexed_packets = 7;
  index.flows.push_back(SegmentFlowEntry{kFlowA, 900});
  index.flows.push_back(SegmentFlowEntry{kFlowB, 327});

  const auto encoded = encode_segment_index(index);
  const auto decoded = decode_segment_index(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard_id, 3u);
  EXPECT_EQ(decoded->segment_seq, 17u);
  EXPECT_EQ(decoded->packet_count, 1234u);
  EXPECT_EQ(decoded->byte_count, 99'000u);
  EXPECT_EQ(decoded->min_timestamp.count(), 1'000);
  EXPECT_EQ(decoded->max_timestamp.count(), 2'000'000);
  EXPECT_EQ(decoded->unindexed_packets, 7u);
  ASSERT_EQ(decoded->flows.size(), 2u);
  EXPECT_EQ(decoded->flows[0].flow, kFlowA);
  EXPECT_EQ(decoded->flows[0].packets, 900u);
  EXPECT_EQ(decoded->flows[1].flow, kFlowB);

  // Truncated payloads must decode to nullopt, not crash.
  for (std::size_t cut = 0; cut < encoded.size(); cut += 7) {
    std::vector<std::byte> partial(encoded.begin(),
                                   encoded.begin() +
                                       static_cast<std::ptrdiff_t>(cut));
    (void)decode_segment_index(partial);
  }

  // Bloom round-trip (version 2): inserted flows stay queryable.
  index.flow_bloom = FlowBloom::make(1024, 4);
  index.flow_bloom.insert(kFlowA);
  const auto encoded_bloom = encode_segment_index(index);
  const auto decoded_bloom = decode_segment_index(encoded_bloom);
  ASSERT_TRUE(decoded_bloom.has_value());
  EXPECT_EQ(decoded_bloom->flow_bloom, index.flow_bloom);
  EXPECT_TRUE(decoded_bloom->flow_bloom.may_contain(kFlowA));
  for (std::size_t cut = encoded.size(); cut < encoded_bloom.size(); ++cut) {
    std::vector<std::byte> partial(
        encoded_bloom.begin(),
        encoded_bloom.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_segment_index(partial).has_value());
  }

  // A version-1 payload (no bloom section) still decodes.  `encoded`
  // carried an empty bloom, so stripping its 8-byte header and patching
  // the version word reproduces the v1 layout byte-for-byte.
  std::vector<std::byte> v1(encoded.begin(), encoded.end() - 8);
  v1[4] = std::byte{1};
  const auto decoded_v1 = decode_segment_index(v1);
  ASSERT_TRUE(decoded_v1.has_value());
  EXPECT_TRUE(decoded_v1->flow_bloom.empty());
  EXPECT_EQ(decoded_v1->packet_count, 1234u);
  // ...and without the bloom, a nonzero unindexed count keeps flow
  // queries conservative.
  EXPECT_TRUE(decoded_v1->may_contain_flow(kFlowB));
}

TEST(SegmentNames, RoundTrip) {
  const std::string name = SegmentWriter::segment_name(2, 17);
  EXPECT_EQ(name, "shard002-seg000017.pcapng");
  const auto parsed = SegmentWriter::parse_segment_name(name);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, 2u);
  EXPECT_EQ(parsed->second, 17u);
  EXPECT_FALSE(SegmentWriter::parse_segment_name("other.pcapng").has_value());
  EXPECT_FALSE(SegmentWriter::parse_segment_name("shard002-seg0.txt")
                   .has_value());
}

TEST_F(StoreTest, SegmentWriterRotatesAndIndexes) {
  SegmentWriter::Options options;
  options.segment_max_bytes = 2'000;  // a handful of packets per segment
  options.segment_max_span = Nanos::from_millis(100.0);
  SegmentWriter writer{dir_, 0, options};
  for (int i = 0; i < 40; ++i) {
    const auto pkt = net::WirePacket::make(Nanos{1'000LL * (i + 1)}, kFlowA,
                                           128, static_cast<std::uint64_t>(i));
    writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(),
                 static_cast<std::uint64_t>(i));
  }
  writer.finish();
  EXPECT_GE(writer.segments_opened(), 3u);
  EXPECT_EQ(writer.packets_written(), 40u);

  StoreReader reader{dir_};
  ASSERT_EQ(reader.segments().size(), writer.segments_opened());
  std::uint64_t total = 0;
  Nanos min = Nanos::max();
  Nanos max{0};
  for (const SegmentIndex& index : reader.segments()) {
    total += index.packet_count;
    EXPECT_GT(index.packet_count, 0u);
    EXPECT_LE(index.min_timestamp, index.max_timestamp);
    if (index.min_timestamp < min) min = index.min_timestamp;
    if (index.max_timestamp > max) max = index.max_timestamp;
    // One flow, fully indexed.
    ASSERT_EQ(index.flows.size(), 1u);
    EXPECT_EQ(index.flows[0].flow, kFlowA);
    EXPECT_EQ(index.unindexed_packets, 0u);
  }
  EXPECT_EQ(total, 40u);
  EXPECT_EQ(min.count(), 1'000);
  EXPECT_EQ(max.count(), 40'000);

  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].timestamp.count(),
              1'000LL * (i + 1));
    ASSERT_TRUE(records[static_cast<std::size_t>(i)].packet_id.has_value());
    EXPECT_EQ(*records[static_cast<std::size_t>(i)].packet_id,
              static_cast<std::uint64_t>(i));
  }
}

// Satellite: duplicate timestamps across shards must merge in a stable,
// deterministic order (shard id breaks the tie) with every packet
// appearing exactly once.
TEST_F(StoreTest, MergeBreaksDuplicateTimestampTiesByShard) {
  constexpr int kShards = 3;
  constexpr int kPackets = 30;  // per shard; every timestamp collides
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    SegmentWriter::Options options;
    options.segment_max_bytes = 1'500;  // several segments per shard
    SegmentWriter writer{dir_, shard, options};
    for (int i = 0; i < kPackets; ++i) {
      const std::uint64_t id =
          static_cast<std::uint64_t>(shard) * 1'000 +
          static_cast<std::uint64_t>(i);
      const auto pkt = net::WirePacket::make(Nanos{100LL * i}, kFlowA, 80, id);
      writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(), id);
    }
    writer.finish();
  }

  StoreReader reader{dir_};
  std::unordered_set<std::uint64_t> seen;
  Nanos last{-1};
  std::uint32_t last_shard = 0;
  std::uint64_t records = 0;
  reader.read_merged({}, [&](const net::PcapngRecord& record,
                             std::uint32_t shard) {
    ++records;
    EXPECT_GE(record.timestamp, last);
    if (record.timestamp == last) {
      // Ties come out ordered by shard id (stable merge).
      EXPECT_GE(shard, last_shard);
    }
    last = record.timestamp;
    last_shard = shard;
    ASSERT_TRUE(record.packet_id.has_value());
    EXPECT_TRUE(seen.insert(*record.packet_id).second)
        << "duplicate packet id " << *record.packet_id;
  });
  EXPECT_EQ(records, static_cast<std::uint64_t>(kShards) * kPackets);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kShards) * kPackets);
}

TEST_F(StoreTest, IndexSkipsSegmentsByTimeAndFlow) {
  // Two widely separated segments with disjoint flows: span rotation
  // splits them, so the index can prune either dimension.
  SegmentWriter::Options options;
  options.segment_max_span = Nanos::from_millis(1.0);
  SegmentWriter writer{dir_, 0, options};
  for (int i = 0; i < 10; ++i) {
    const auto pkt = net::WirePacket::make(Nanos{1'000LL * i}, kFlowA, 80,
                                           static_cast<std::uint64_t>(i));
    writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(),
                 static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 10; ++i) {
    const auto pkt = net::WirePacket::make(
        Nanos::from_millis(50.0) + Nanos{1'000LL * i}, kFlowB, 80,
        static_cast<std::uint64_t>(100 + i));
    writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(),
                 static_cast<std::uint64_t>(100 + i));
  }
  writer.finish();

  StoreReader reader{dir_};
  ASSERT_GE(reader.segments().size(), 2u);

  StoreQuery late;
  late.start = Nanos::from_millis(40.0);
  std::uint64_t matched = 0;
  const auto late_stats =
      reader.read_merged(late, [&](const net::PcapngRecord& record,
                                   std::uint32_t) {
        ++matched;
        EXPECT_GE(record.timestamp, *late.start);
      });
  EXPECT_EQ(matched, 10u);
  EXPECT_GE(late_stats.segments_skipped_time, 1u);

  StoreQuery by_flow;
  by_flow.flow = kFlowA;
  matched = 0;
  const auto flow_stats =
      reader.read_merged(by_flow, [&](const net::PcapngRecord& record,
                                      std::uint32_t) {
        ++matched;
        const auto parsed = net::parse_flow(record.data);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kFlowA);
      });
  EXPECT_EQ(matched, 10u);
  EXPECT_GE(flow_stats.segments_skipped_flow, 1u);

  StoreQuery by_filter;
  by_filter.filter = "tcp";
  matched = 0;
  reader.read_merged(by_filter,
                     [&](const net::PcapngRecord&, std::uint32_t) {
                       ++matched;
                     });
  EXPECT_EQ(matched, 10u);  // the kFlowB half
}

// --- backpressure policies against a stalled simulated disk ---

/// Fabricates a chunk of `count` packets backed by `storage` (which must
/// outlive the chunk's journey through the spool).
engines::ChunkCaptureView make_chunk(
    std::vector<std::unique_ptr<std::vector<std::byte>>>& storage,
    std::uint32_t ring, std::uint64_t first_seq, std::size_t count,
    Nanos first_ts) {
  engines::ChunkCaptureView chunk;
  chunk.source_ring = ring;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seq = first_seq + i;
    const auto pkt =
        net::WirePacket::make(first_ts + Nanos{static_cast<std::int64_t>(i)},
                              kFlowA, 80, seq);
    storage.push_back(std::make_unique<std::vector<std::byte>>(
        pkt.bytes().begin(), pkt.bytes().end()));
    engines::CaptureView view;
    view.bytes = std::span<std::byte>(*storage.back());
    view.wire_len = pkt.wire_len();
    view.timestamp = pkt.timestamp();
    view.seq = seq;
    chunk.packets.push_back(view);
  }
  return chunk;
}

struct PolicyOutcome {
  ShardStats stats;
  std::uint64_t releases = 0;
  std::uint64_t on_disk = 0;
};

PolicyOutcome run_policy(const std::filesystem::path& dir,
                         BackpressurePolicy policy) {
  sim::Scheduler scheduler;
  sim::CostModel costs;
  SpoolConfig config;
  config.dir = dir;
  config.num_shards = 1;
  config.policy = policy;
  config.queue_capacity_chunks = 2;
  config.record_lost_seqs = true;
  Spool spool{scheduler, costs, config};
  SpoolShard& shard = spool.shard(0);
  // Stall the disk so offers pile into the bounded queue.
  shard.set_disk_full(Nanos::from_micros(500.0));

  std::vector<std::unique_ptr<std::vector<std::byte>>> storage;
  PolicyOutcome outcome;
  for (int c = 0; c < 5; ++c) {
    if (policy == BackpressurePolicy::kBlock && !shard.accepting()) break;
    shard.offer(make_chunk(storage, 0, static_cast<std::uint64_t>(c) * 10, 4,
                           Nanos{1'000LL * (c + 1)}),
                [&outcome](const engines::ChunkCaptureView&) {
                  ++outcome.releases;
                });
  }
  scheduler.run_until(Nanos::from_millis(10.0));
  EXPECT_TRUE(spool.drained());
  spool.close();
  outcome.stats = shard.stats();

  StoreReader reader{dir};
  outcome.on_disk = reader.read_all().size();
  return outcome;
}

TEST_F(StoreTest, BackpressurePolicies) {
  {
    const auto block = run_policy(dir_ / "block", BackpressurePolicy::kBlock);
    // The producer gated on accepting(): nothing dropped, no overruns,
    // and the two accepted chunks reached the disk after the stall.
    EXPECT_EQ(block.stats.block_overruns, 0u);
    EXPECT_EQ(block.stats.chunks_dropped_newest, 0u);
    EXPECT_EQ(block.stats.chunks_dropped_oldest, 0u);
    EXPECT_EQ(block.releases, 2u);
    EXPECT_EQ(block.on_disk, 8u);
    EXPECT_GE(block.stats.full_stalls, 1u);
  }
  {
    const auto newest =
        run_policy(dir_ / "newest", BackpressurePolicy::kDropNewest);
    // Queue bound 2: chunks 3-5 are discarded on arrival.
    EXPECT_EQ(newest.stats.chunks_dropped_newest, 3u);
    EXPECT_EQ(newest.stats.packets_dropped_newest, 12u);
    EXPECT_EQ(newest.releases, 5u);  // every chunk released exactly once
    EXPECT_EQ(newest.on_disk, 8u);
  }
  {
    const auto oldest =
        run_policy(dir_ / "oldest", BackpressurePolicy::kDropOldest);
    // The queue keeps the freshest two; three old chunks fall out.
    EXPECT_EQ(oldest.stats.chunks_dropped_oldest, 3u);
    EXPECT_EQ(oldest.releases, 5u);
    EXPECT_EQ(oldest.on_disk, 8u);
  }
}

// --- chunk lifecycle regressions: close / evict_ring vs outstanding
// writes, zero-capacity config ---

// Regression: close() used to abandon the in-flight chunk — its bytes
// were on disk but the release never fired, leaking the chunk (and its
// ring cells) forever.  close() must settle outstanding writes, and the
// stale completion event must then find nothing to double-release.
TEST_F(StoreTest, CloseSettlesInFlightWrites) {
  sim::Scheduler scheduler;
  sim::CostModel costs;
  SpoolConfig config;
  config.dir = dir_;
  Spool spool{scheduler, costs, config};

  std::vector<std::unique_ptr<std::vector<std::byte>>> storage;
  std::uint64_t releases = 0;
  spool.shard(0).offer(make_chunk(storage, 0, 0, 4, Nanos{1'000}),
                       [&releases](const engines::ChunkCaptureView&) {
                         ++releases;
                       });
  // The write was submitted synchronously (bytes are on disk), but its
  // completion event is still pending on the virtual clock.
  EXPECT_EQ(releases, 0u);
  EXPECT_EQ(spool.shard(0).backlog(), 1u);

  spool.close();
  EXPECT_EQ(releases, 1u) << "close() leaked the in-flight chunk";
  EXPECT_EQ(spool.shard(0).stats().in_flight_settled, 1u);
  EXPECT_EQ(spool.shard(0).stats().chunks_evicted, 0u)
      << "a settled write is not a loss: the bytes are on disk";
  EXPECT_TRUE(spool.drained());

  // The orphaned completion event must no-op, not release again.
  scheduler.run_until(Nanos::from_millis(10.0));
  EXPECT_EQ(releases, 1u);

  StoreReader reader{dir_};
  EXPECT_EQ(reader.read_all().size(), 4u);
}

// Regression: queue_capacity_chunks == 0 under kDropOldest popped an
// empty deque on the first offer.  The config is now rejected up front
// for every policy (a spool that can hold nothing is a misconfiguration).
TEST_F(StoreTest, ZeroQueueCapacityRejected) {
  sim::Scheduler scheduler;
  sim::CostModel costs;
  for (const auto policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kDropNewest,
        BackpressurePolicy::kDropOldest}) {
    SpoolConfig config;
    config.dir = dir_;
    config.policy = policy;
    config.queue_capacity_chunks = 0;
    EXPECT_THROW((Spool{scheduler, costs, config}), std::invalid_argument)
        << to_string(policy);
  }
}

// Regression: evict_ring() only filtered the queue; a write still
// outstanding on the simulated disk kept its deferred completion, which
// later released a chunk into the (by then) torn-down pool.  The shard
// must settle in-flight writes from the evicted ring synchronously and
// exactly once.
TEST_F(StoreTest, EvictRingSettlesInFlightWrites) {
  sim::Scheduler scheduler;
  sim::CostModel costs;
  SpoolConfig config;
  config.dir = dir_;
  config.disk_queue_depth = 4;
  Spool spool{scheduler, costs, config};
  SpoolShard& shard = spool.shard(0);
  // Stretch transfers so every write stays outstanding for a long time.
  shard.set_slow_disk(1'000.0, Nanos::from_seconds(1.0));

  std::vector<std::unique_ptr<std::vector<std::byte>>> storage;
  bool ring7_pool_alive = true;
  std::uint64_t ring7_releases = 0, ring3_releases = 0, late_releases = 0;
  for (int c = 0; c < 4; ++c) {
    const std::uint32_t ring = (c % 2 == 0) ? 7u : 3u;
    shard.offer(make_chunk(storage, ring, static_cast<std::uint64_t>(c) * 10,
                           4, Nanos{1'000LL * (c + 1)}),
                [&, ring](const engines::ChunkCaptureView&) {
                  if (ring == 7) {
                    ++ring7_releases;
                    if (!ring7_pool_alive) ++late_releases;
                  } else {
                    ++ring3_releases;
                  }
                });
  }
  // Depth 4: all four writes went straight to the device.
  EXPECT_EQ(shard.stats().in_flight_high_water, 4u);
  EXPECT_EQ(shard.backlog(), 4u);
  EXPECT_EQ(ring7_releases, 0u);

  shard.evict_ring(7);
  EXPECT_EQ(ring7_releases, 2u)
      << "in-flight writes from the evicted ring were not settled";
  EXPECT_EQ(shard.stats().in_flight_settled, 2u);
  ring7_pool_alive = false;  // ring 7's pool is torn down from here on

  scheduler.run_until(Nanos::from_seconds(2.0));
  EXPECT_EQ(late_releases, 0u)
      << "a deferred completion released into the torn-down pool";
  EXPECT_EQ(ring7_releases, 2u);
  EXPECT_EQ(ring3_releases, 2u);
  EXPECT_TRUE(spool.drained());
  spool.close();
}

// The multi-outstanding drain is the point of the disk queue: identical
// work must finish strictly sooner at depth 4 than at depth 1, because
// the fixed per-op completion latency overlaps across outstanding
// writes while the device serializes only the transfers.
TEST_F(StoreTest, DeepDiskQueueOverlapsOpLatency) {
  const auto drain_finish = [](const std::filesystem::path& dir,
                               unsigned depth) {
    sim::Scheduler scheduler;
    sim::CostModel costs;
    SpoolConfig config;
    config.dir = dir;
    config.disk_queue_depth = depth;
    Spool spool{scheduler, costs, config};
    std::vector<std::unique_ptr<std::vector<std::byte>>> storage;
    std::uint64_t releases = 0;
    Nanos last_release = Nanos::zero();
    for (int c = 0; c < 8; ++c) {
      spool.shard(0).offer(
          make_chunk(storage, 0, static_cast<std::uint64_t>(c) * 100, 16,
                     Nanos{1'000LL * (c + 1)}),
          [&](const engines::ChunkCaptureView&) {
            ++releases;
            last_release = scheduler.now();
          });
    }
    scheduler.run_until(Nanos::from_millis(50.0));
    EXPECT_EQ(releases, 8u);
    EXPECT_TRUE(spool.drained());
    EXPECT_LE(spool.shard(0).stats().in_flight_high_water, depth);
    spool.close();
    return last_release;
  };
  const Nanos deep = drain_finish(dir_ / "deep", 4);
  const Nanos serial = drain_finish(dir_ / "serial", 1);
  EXPECT_LT(deep, serial);
}

// --- crash-truncated segments and index-driven pruning ---

// A segment cut off mid-EPB (writer crashed mid-write, no footer) must
// still serve its readable prefix, merge cleanly with intact shards,
// and keep duplicate-timestamp ties ordered by shard id.
TEST_F(StoreTest, ReaderServesTruncatedSegmentPrefix) {
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    SegmentWriter writer{dir_, shard, SegmentWriter::Options{}};
    for (int i = 0; i < 10; ++i) {
      const std::uint64_t id = shard * 1'000 + static_cast<std::uint64_t>(i);
      const auto pkt = net::WirePacket::make(Nanos{100LL * i}, kFlowA, 80, id);
      writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(), id);
    }
    writer.finish();
  }
  // Shard 2 "crashes": no footer, and the file loses its tail mid-block.
  const auto crashed = dir_ / SegmentWriter::segment_name(2, 0);
  {
    net::PcapngWriter writer{crashed};
    for (int i = 0; i < 10; ++i) {
      const std::uint64_t id = 2'000 + static_cast<std::uint64_t>(i);
      const auto pkt = net::WirePacket::make(Nanos{100LL * i}, kFlowA, 80, id);
      writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(), 0, id);
    }
    writer.close();
  }
  std::filesystem::resize_file(crashed,
                               std::filesystem::file_size(crashed) - 8);

  StoreReader reader{dir_};
  EXPECT_EQ(reader.truncated_segments(), 1u);
  ASSERT_EQ(reader.segments().size(), 3u);
  EXPECT_EQ(reader.segments()[2].packet_count, 9u)
      << "the readable prefix is 9 whole records";

  std::unordered_set<std::uint64_t> seen;
  Nanos last{-1};
  std::uint32_t last_shard = 0;
  std::uint64_t records = 0;
  reader.read_merged({}, [&](const net::PcapngRecord& record,
                             std::uint32_t shard) {
    ++records;
    EXPECT_GE(record.timestamp, last);
    if (record.timestamp == last) {
      EXPECT_GE(shard, last_shard);
    }
    last = record.timestamp;
    last_shard = shard;
    ASSERT_TRUE(record.packet_id.has_value());
    EXPECT_TRUE(seen.insert(*record.packet_id).second)
        << "duplicate packet id " << *record.packet_id;
  });
  EXPECT_EQ(records, 29u);  // 10 + 10 + the 9-record prefix
}

net::FlowKey flow_n(std::uint8_t n) {
  return net::FlowKey{net::Ipv4Addr{10, 1, 0, n}, net::Ipv4Addr{10, 2, 0, 1},
                      static_cast<std::uint16_t>(1'000 + n), 53,
                      net::IpProto::kUdp};
}

// Past flow_index_cap the exact tally goes blind (unindexed_packets >
// 0), which used to force a scan of every such segment.  The footer
// bloom keeps pruning exact-flow queries — and BPF filters that pin a
// full 5-tuple — beyond the cap.
TEST_F(StoreTest, BloomSkipsSegmentsBeyondFlowIndexCap) {
  SegmentWriter::Options options;
  options.flow_index_cap = 4;
  options.segment_max_span = Nanos::from_millis(1.0);
  SegmentWriter writer{dir_, 0, options};
  std::uint64_t id = 0;
  // Segment 1: flows 0..19 — cardinality far past the cap.
  for (int i = 0; i < 20; ++i) {
    const auto pkt = net::WirePacket::make(
        Nanos{1'000LL * i}, flow_n(static_cast<std::uint8_t>(i)), 80, id);
    writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(), id);
    ++id;
  }
  // Far-future timestamps trip span rotation; segment 2: flows 100..119.
  for (int i = 0; i < 20; ++i) {
    const auto pkt = net::WirePacket::make(
        Nanos::from_millis(50.0) + Nanos{1'000LL * i},
        flow_n(static_cast<std::uint8_t>(100 + i)), 80, id);
    writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(), id);
    ++id;
  }
  writer.finish();

  StoreReader reader{dir_};
  ASSERT_EQ(reader.segments().size(), 2u);
  for (const SegmentIndex& index : reader.segments()) {
    EXPECT_GT(index.unindexed_packets, 0u) << "cap never engaged";
    EXPECT_FALSE(index.flow_bloom.empty());
  }

  // A flow only in segment 2 — and past its tally cap — skips segment 1.
  StoreQuery q;
  q.flow = flow_n(119);
  std::uint64_t matched = 0;
  auto stats = reader.read_merged(
      q, [&](const net::PcapngRecord&, std::uint32_t) { ++matched; });
  EXPECT_EQ(matched, 1u);
  EXPECT_EQ(stats.segments_skipped_flow, 1u)
      << "bloom must prune where the capped tally cannot";

  // An absent flow touches no segment at all.
  q.flow = flow_n(250);
  matched = 0;
  stats = reader.read_merged(
      q, [&](const net::PcapngRecord&, std::uint32_t) { ++matched; });
  EXPECT_EQ(matched, 0u);
  EXPECT_EQ(stats.segments_skipped_flow, 2u);
  EXPECT_EQ(stats.packets_scanned, 0u);

  // A filter pinning the full 5-tuple prunes like an exact flow query.
  StoreQuery pinned;
  pinned.filter =
      "src host 10.1.0.105 and dst host 10.2.0.1 and src port 1105 and "
      "dst port 53 and udp";
  matched = 0;
  stats = reader.read_merged(
      pinned, [&](const net::PcapngRecord&, std::uint32_t) { ++matched; });
  EXPECT_EQ(matched, 1u);
  EXPECT_EQ(stats.segments_skipped_filter, 1u);

  // An unpinned filter must not engage segment pruning.
  StoreQuery broad;
  broad.filter = "udp";
  matched = 0;
  stats = reader.read_merged(
      broad, [&](const net::PcapngRecord&, std::uint32_t) { ++matched; });
  EXPECT_EQ(matched, 40u);
  EXPECT_EQ(stats.segments_skipped_filter, 0u);
}

// The vectored gather path and the packet-at-a-time path must produce
// byte-equivalent record streams (timestamps, payloads, packet ids).
TEST_F(StoreTest, VectoredChunkWriteMatchesPerPacketPath) {
  const auto dir_scalar = dir_ / "scalar";
  const auto dir_vector = dir_ / "vector";
  std::filesystem::create_directories(dir_scalar);
  std::filesystem::create_directories(dir_vector);
  SegmentWriter::Options options;
  options.segment_max_bytes = 4'000;  // several rotations either way

  std::vector<std::unique_ptr<std::vector<std::byte>>> storage;
  std::vector<engines::ChunkCaptureView> chunks;
  for (int c = 0; c < 6; ++c) {
    chunks.push_back(make_chunk(storage, 0,
                                static_cast<std::uint64_t>(c) * 100, 8,
                                Nanos{5'000LL * c + 1}));
  }
  {
    SegmentWriter writer{dir_scalar, 0, options};
    for (const auto& chunk : chunks) {
      for (const auto& view : chunk.packets) {
        writer.write(view.timestamp, view.bytes, view.wire_len, view.seq);
      }
    }
    writer.finish();
  }
  {
    SegmentWriter writer{dir_vector, 0, options};
    for (const auto& chunk : chunks) writer.write_chunk(chunk.packets);
    writer.finish();
  }

  StoreReader scalar{dir_scalar};
  StoreReader vectored{dir_vector};
  const auto a = scalar.read_all();
  const auto b = vectored.read_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].orig_len, b[i].orig_len);
    ASSERT_TRUE(a[i].packet_id.has_value());
    ASSERT_TRUE(b[i].packet_id.has_value());
    EXPECT_EQ(*a[i].packet_id, *b[i].packet_id);
    ASSERT_EQ(a[i].data.size(), b[i].data.size());
    EXPECT_TRUE(std::equal(a[i].data.begin(), a[i].data.end(),
                           b[i].data.begin()));
  }
}

// --- Experiment integration: capture → spool → merged read-back ---

TEST_F(StoreTest, ExperimentSpoolRoundTrip) {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapBasic;
  config.engine.cells_per_chunk = 16;
  config.engine.chunk_count = 64;
  config.ring_size = 256;
  SpoolConfig spool_config;
  spool_config.dir = dir_;
  spool_config.segment_max_bytes = 32u << 10;
  config.spool = spool_config;
  apps::Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 5'000;
  trace_config.link_bits_per_second = 1e9;
  Xoshiro256 rng{0xBEEF};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};
  const auto result = experiment.run(source, Nanos::from_seconds(1.0));

  EXPECT_EQ(result.delivered, 5'000u);
  EXPECT_EQ(result.processed, 5'000u);
  const ShardStats totals = experiment.spool()->total_stats();
  EXPECT_EQ(totals.packets_written, 5'000u);
  EXPECT_EQ(totals.chunks_dropped_newest + totals.chunks_dropped_oldest +
                totals.chunks_evicted,
            0u);

  StoreReader reader{dir_};
  EXPECT_GE(reader.segments().size(), 2u);  // size rotation engaged
  std::unordered_set<std::uint64_t> seen;
  Nanos last{0};
  reader.read_merged({}, [&](const net::PcapngRecord& record, std::uint32_t) {
    EXPECT_GE(record.timestamp, last);
    last = record.timestamp;
    ASSERT_TRUE(record.packet_id.has_value());
    EXPECT_TRUE(seen.insert(*record.packet_id).second);
  });
  EXPECT_EQ(seen.size(), 5'000u);
}

TEST_F(StoreTest, SpoolBacklogFeedsOffloadDecision) {
  // Advanced engine, two queues, one flooded queue whose shard disk is
  // 50x slow: the spool backlog must push its buddy-group fill over T
  // and offload chunks to the idle queue.
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 16;
  config.engine.chunk_count = 32;
  config.engine.offload_threshold = 0.25;
  config.num_queues = 2;
  config.ring_size = 256;
  SpoolConfig spool_config;
  spool_config.dir = dir_;
  spool_config.queue_capacity_chunks = 4;
  config.spool = spool_config;
  apps::Experiment experiment{config};

  // All traffic steers to one queue.
  Xoshiro256 rng{0x50FF};
  const auto flows = trace::flows_for_queue(rng, 0, 2, 1);
  auto* engine = dynamic_cast<core::WirecapEngine*>(&experiment.engine());
  ASSERT_NE(engine, nullptr);
  experiment.spool()->shard(0).set_slow_disk(50.0,
                                             Nanos::from_seconds(10.0));

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 20'000;
  trace_config.link_bits_per_second = 10e9;
  trace_config.flows = flows;
  trace::ConstantRateSource source{trace_config};
  const auto result = experiment.run(source, Nanos::from_seconds(1.0));
  (void)result;

  EXPECT_GT(engine->queue_stats(0).chunks_offloaded_out, 0u)
      << "spool backlog never engaged the offload feedback";
}

// --- round-trip conservation under the fault soak (CI gate) ---

TEST(StoreSoak, ConservationUnderFaults) {
  testing::FaultHarnessConfig base;
  base.plan.num_queues = 2;
  base.plan.spool_faults = true;
  base.spool = true;
  const auto soak = testing::run_fault_soak(1, 4, base);
  EXPECT_EQ(soak.seeds_run, 4u);
  EXPECT_GT(soak.total_spooled, 0u);
  EXPECT_TRUE(soak.clean()) << (soak.failures.empty()
                                    ? "(no failure message)"
                                    : soak.failures.front());
}

// The evict_ring in-flight bug class, driven from generated fault
// plans: seeds whose schedule combines a slow disk (writes pile up
// outstanding) with a queue reopen (ring close evicts mid-flight) are
// exactly the interaction that used to double-release or leak.
TEST(StoreSoak, SlowDiskPlusRingCloseFaultPlans) {
  testing::FaultPlanConfig plan_config;
  plan_config.num_queues = 2;
  plan_config.spool_faults = true;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t seed = 1; seed <= 2'000 && seeds.size() < 5; ++seed) {
    plan_config.seed = seed;
    const auto plan = testing::FaultPlan::generate(plan_config);
    bool slow = false, reopen = false;
    for (const auto& event : plan.events()) {
      slow = slow || event.kind == testing::FaultKind::kSlowDisk;
      reopen = reopen || event.kind == testing::FaultKind::kQueueReopen;
    }
    if (slow && reopen) seeds.push_back(seed);
  }
  ASSERT_FALSE(seeds.empty())
      << "no generated plan combines slow-disk with a ring close";
  for (const std::uint64_t seed : seeds) {
    testing::FaultHarnessConfig base;
    base.plan = plan_config;
    base.spool = true;
    const auto soak = testing::run_fault_soak(seed, 1, base);
    EXPECT_TRUE(soak.clean())
        << "seed " << seed << ": "
        << (soak.failures.empty() ? "(no failure message)"
                                  : soak.failures.front());
  }
}

// Acceptance gate: 100 seeds of slow-disk / disk-full / ring-close
// faults against the multi-outstanding drain, chunk conservation
// audited on every one.
TEST(StoreSoak, ConservationHundredSeeds) {
  testing::FaultHarnessConfig base;
  base.plan.num_queues = 2;
  base.plan.spool_faults = true;
  base.spool = true;
  const auto soak = testing::run_fault_soak(1, 100, base);
  EXPECT_EQ(soak.seeds_run, 100u);
  EXPECT_GT(soak.total_spooled, 0u);
  EXPECT_TRUE(soak.clean()) << soak.failures.size() << " seed(s) failed; "
                            << (soak.failures.empty()
                                    ? "(no failure message)"
                                    : soak.failures.front());
}

TEST(StoreSoak, ConservationUnderDropPolicies) {
  // Drop policies lose chunks by design; the conservation law still
  // holds because losses are counted and excluded from the expectation.
  for (const auto policy :
       {BackpressurePolicy::kDropNewest, BackpressurePolicy::kDropOldest}) {
    testing::FaultHarnessConfig base;
    base.plan.num_queues = 2;
    base.plan.spool_faults = true;
    base.spool = true;
    base.spool_policy = policy;
    const auto soak = testing::run_fault_soak(100, 2, base);
    EXPECT_TRUE(soak.clean()) << to_string(policy) << ": "
                              << (soak.failures.empty()
                                      ? "(no failure message)"
                                      : soak.failures.front());
    EXPECT_GT(soak.total_spooled, 0u);
  }
}

}  // namespace
}  // namespace wirecap::store
