// Differential-oracle tests for the BPF filter stack (see
// src/testing/difftest.hpp):
//
//   * failing-first regressions for the VLAN divergences the oracle
//     exposed (the old evaluator bailed on ether_type 0x8100 and the
//     old compiler hard-coded L3 at offset 14, so "vlan and tcp port
//     80" matched in neither path and bare "ip" missed tagged frames);
//   * a table-driven golden suite: ~40 filter expressions against a
//     checked-in packet corpus with expected match sets, asserted for
//     BOTH the evaluator and the compiled VM path;
//   * parse -> to_string -> reparse -> recompile round-trip equality;
//   * verifier strictness goldens (exact RET/MISC codes, W-only
//     register loads, garbage high code bits);
//   * fixed-seed differential soaks (the CI gate) and the five-engine
//     crosscheck through pcap_compat;
//   * the crash corpus under tests/corpus/bpf — every file must either
//     parse cleanly or raise ParseError, nothing else.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "bpf/codegen.hpp"
#include "bpf/disasm.hpp"
#include "bpf/eval.hpp"
#include "bpf/parser.hpp"
#include "bpf/vm.hpp"
#include "common/rng.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "telemetry/telemetry.hpp"
#include "testing/difftest.hpp"

namespace wirecap::testing {
namespace {

using net::FlowKey;
using net::IpProto;
using net::Ipv4Addr;

struct GoldenFrame {
  std::vector<std::byte> bytes;  // captured view (may be truncated)
  std::uint32_t wire_len = 0;
  std::string label;
};

GoldenFrame build(const net::Ipv4FrameSpec& spec, const std::string& label,
                  std::size_t caplen = SIZE_MAX) {
  std::array<std::byte, 512> buf{};
  const std::size_t wire = net::build_ipv4_frame(buf, spec);
  const std::size_t keep = std::min(caplen, wire);
  GoldenFrame out;
  out.bytes.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(keep));
  out.wire_len = static_cast<std::uint32_t>(wire);
  out.label = label;
  return out;
}

/// The checked-in packet corpus the golden suite matches against.
std::vector<GoldenFrame> golden_corpus() {
  std::vector<GoldenFrame> frames;
  const Ipv4Addr border{131, 225, 2, 4};
  const Ipv4Addr dns{8, 8, 8, 8};
  const Ipv4Addr ten{10, 0, 0, 1};
  const Ipv4Addr priv{192, 168, 0, 1};

  net::Ipv4FrameSpec spec;  // f0: plain TCP 131.225.2.4:1234 -> 8.8.8.8:80
  spec.flow = FlowKey{border, dns, 1234, 80, IpProto::kTcp};
  spec.wire_len = 100;
  frames.push_back(build(spec, "f0 plain tcp :80"));

  spec = {};  // f1: plain UDP 10.0.0.1:53 -> 131.225.2.4:5353
  spec.flow = FlowKey{ten, border, 53, 5353, IpProto::kUdp};
  spec.wire_len = 64;
  frames.push_back(build(spec, "f1 plain udp 53"));

  spec = {};  // f2: plain ICMP 192.168.0.1 -> 10.0.0.1
  spec.flow = FlowKey{priv, ten, 0, 0, IpProto::kIcmp};
  spec.wire_len = 64;
  frames.push_back(build(spec, "f2 icmp"));

  spec = {};  // f3: VLAN 7, TCP 131.225.2.4:1234 -> 8.8.8.8:80
  spec.flow = FlowKey{border, dns, 1234, 80, IpProto::kTcp};
  spec.vlan_vids = {7};
  spec.wire_len = 100;
  frames.push_back(build(spec, "f3 vlan7 tcp :80"));

  spec = {};  // f4: VLAN 42, UDP 10.0.0.1:9999 -> 192.168.0.1:53
  spec.flow = FlowKey{ten, priv, 9999, 53, IpProto::kUdp};
  spec.vlan_vids = {42};
  spec.wire_len = 68;
  frames.push_back(build(spec, "f4 vlan42 udp :53"));

  spec = {};  // f5: QinQ 7/42, TCP (IP primitives must NOT descend)
  spec.flow = FlowKey{border, dns, 1234, 80, IpProto::kTcp};
  spec.vlan_vids = {7, 42};
  spec.wire_len = 104;
  frames.push_back(build(spec, "f5 qinq tcp"));

  {  // f6: IPv6 UDP :53
    std::array<std::byte, 512> buf{};
    net::Ipv6Addr src{}, dst{};
    src.octets[15] = 1;
    dst.octets[15] = 2;
    const std::size_t wire =
        net::build_ipv6_frame(buf, src, dst, IpProto::kUdp, 53, 53, 90);
    GoldenFrame f;
    f.bytes.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(wire));
    f.wire_len = static_cast<std::uint32_t>(wire);
    f.label = "f6 ipv6 udp";
    frames.push_back(std::move(f));
  }

  {  // f7: 64 zero bytes (ether_type 0 -> not IP, not VLAN)
    GoldenFrame f;
    f.bytes.assign(64, std::byte{0});
    f.wire_len = 64;
    f.label = "f7 zero garbage";
    frames.push_back(std::move(f));
  }

  spec = {};  // f8: IP options (ihl=8), TCP 131.225.2.4:1234 -> 8.8.8.8:443
  spec.flow = FlowKey{border, dns, 1234, 443, IpProto::kTcp};
  spec.ihl = 8;
  spec.wire_len = 120;
  frames.push_back(build(spec, "f8 ihl8 tcp :443"));

  spec = {};  // f9: non-first fragment, UDP 10.0.0.1 -> 8.8.8.8 (no L4)
  spec.flow = FlowKey{ten, dns, 53, 53, IpProto::kUdp};
  spec.flags_fragment = 0x00B9;  // offset 185, MF clear
  spec.wire_len = 90;
  frames.push_back(build(spec, "f9 udp fragment"));

  spec = {};  // f10: VLAN 7 TCP frame truncated mid-IP-header (caplen 20)
  spec.flow = FlowKey{border, dns, 1234, 80, IpProto::kTcp};
  spec.vlan_vids = {7};
  spec.wire_len = 100;
  frames.push_back(build(spec, "f10 vlan7 truncated", 20));

  spec = {};  // f11: small plain TCP 10.0.0.1:5000 -> 10.0.0.2:5001
  spec.flow = FlowKey{ten, Ipv4Addr{10, 0, 0, 2}, 5000, 5001, IpProto::kTcp};
  spec.wire_len = 60;
  frames.push_back(build(spec, "f11 small tcp"));

  return frames;
}

/// Asserts that both the evaluator and the compiled VM path match
/// exactly the frames in `expected` (by corpus index).
void expect_matches(const std::vector<GoldenFrame>& corpus,
                    const std::string& filter,
                    const std::set<std::size_t>& expected) {
  const bpf::ExprPtr expr =
      filter.empty() ? nullptr : bpf::parse_filter(filter);
  const bpf::Program prog = bpf::compile(expr.get());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto& f = corpus[i];
    const bool want = expected.count(i) != 0;
    EXPECT_EQ(bpf::evaluate(expr.get(), f.bytes, f.wire_len), want)
        << "eval: filter '" << filter << "' on " << f.label;
    EXPECT_EQ(bpf::matches(prog, f.bytes, f.wire_len), want)
        << "vm: filter '" << filter << "' on " << f.label;
  }
}

// --- VLAN regressions (failing-first against the pre-fix code) ---
//
// Before this change the evaluator refused any frame whose outer
// ether_type was not 0x0800 and the compiler loaded IP fields at fixed
// offsets from L3 == 14, so every one of these assertions failed in at
// least one path.  They pin the agreed semantics: IP primitives descend
// through exactly one 802.1Q tag; "vlan" inspects the outer tag only.

TEST(VlanRegression, VlanAndTcpPort80MatchesTaggedFrame) {
  const auto corpus = golden_corpus();
  // f3 is the VLAN-7 TCP:80 frame; the truncated copy (f10) aborts.
  expect_matches(corpus, "vlan and tcp port 80", {3});
}

TEST(VlanRegression, VlanWithIdAndHostMatchesTaggedFrame) {
  const auto corpus = golden_corpus();
  // f5 (QinQ, outer vid 7) passes "vlan 7" but its host lookup must
  // NOT descend two tags; f10 aborts on the truncated address field.
  expect_matches(corpus, "vlan 7 and host 131.225.2.4", {3});
  expect_matches(corpus, "vlan 7", {3, 5, 10});
}

TEST(VlanRegression, BareIpSeesThroughSingleTagOnly) {
  const auto corpus = golden_corpus();
  expect_matches(corpus, "ip", {0, 1, 2, 3, 4, 8, 9, 10, 11});
}

TEST(VlanRegression, TaggedFramesMatchIpPrimitivesEndToEnd) {
  const auto corpus = golden_corpus();
  expect_matches(corpus, "host 131.225.2.4", {0, 1, 3, 8});
  expect_matches(corpus, "udp port 53", {1, 4});
  expect_matches(corpus, "tcp", {0, 3, 8, 11});
}

// --- table-driven golden suite ---

TEST(DifftestGolden, FortyFiltersAgainstPacketCorpus) {
  const auto corpus = golden_corpus();
  const std::size_t n = corpus.size();
  std::set<std::size_t> all;
  for (std::size_t i = 0; i < n; ++i) all.insert(i);

  const struct {
    const char* filter;
    std::set<std::size_t> expected;
  } kGolden[] = {
      {"ip", {0, 1, 2, 3, 4, 8, 9, 10, 11}},
      {"ip6", {6}},
      {"tcp", {0, 3, 8, 11}},
      {"udp", {1, 4, 9}},
      {"icmp", {2}},
      {"vlan", {3, 4, 5, 10}},
      {"vlan 7", {3, 5, 10}},
      {"vlan 42", {4}},
      {"host 131.225.2.4", {0, 1, 3, 8}},
      {"src host 131.225.2.4", {0, 3, 8}},
      {"dst host 131.225.2.4", {1}},
      {"host 8.8.8.8", {0, 3, 8, 9}},
      {"net 131.225.0.0/16", {0, 1, 3, 8}},
      {"net 10.0.0.0/8", {1, 2, 4, 9, 11}},
      {"src net 10.0.0.0/24", {1, 4, 9, 11}},
      {"port 80", {0, 3}},
      {"tcp port 80", {0, 3}},
      {"udp port 53", {1, 4}},
      {"src port 53", {1}},
      {"dst port 53", {4}},
      {"portrange 50-100", {0, 1, 3, 4}},
      {"portrange 1000-2000", {0, 3, 8}},
      {"portrange 53-53", {1, 4}},
      {"len >= 100", {0, 3, 5, 8, 10}},
      {"len <= 64", {1, 2, 7, 11}},
      {"vlan and tcp", {3}},
      {"vlan and tcp port 80", {3}},
      {"vlan 7 and host 131.225.2.4", {3}},
      {"vlan and udp port 53", {4}},
      {"not ip", {5, 6, 7}},
      {"not vlan", {0, 1, 2, 6, 7, 8, 9, 11}},
      {"ip and not tcp", {1, 2, 4, 9}},
      {"tcp or udp", {0, 1, 3, 4, 8, 9, 11}},
      // An aborted lhs short-circuits the whole OR (f10's proto byte is
      // beyond caplen), matching the VM's load-failure-rejects rule.
      {"icmp or vlan", {2, 3, 4, 5}},
      {"not (tcp or udp or icmp)", {5, 6, 7}},
      {"(tcp or udp) and net 131.225.0.0/16", {0, 1, 3, 8}},
      {"host 131.225.2.4 and port 80", {0, 3}},
      {"udp and len <= 70", {1, 4}},
      {"tcp and len >= 100", {0, 3, 8}},
      {"src host 10.0.0.1 and dst host 8.8.8.8", {9}},
      {"131.225.2 and udp", {1}},
  };

  expect_matches(corpus, "", all);  // empty filter accepts everything
  for (const auto& row : kGolden) {
    expect_matches(corpus, row.filter, row.expected);
  }
}

// --- parse -> to_string -> reparse -> recompile round-trip ---

TEST(DifftestRoundTrip, CanonicalFiltersRecompileIdentically) {
  for (const char* text :
       {"tcp", "vlan and tcp port 80", "131.225.2 and udp",
        "not (udp or icmp) and len >= 128", "src net 10.0.0.0/24",
        "vlan 7 and host 131.225.2.4", "portrange 1000-2000 or ip6",
        "dst port 53 and not vlan"}) {
    const auto expr = bpf::parse_filter(text);
    const auto prog = bpf::compile(expr.get());
    const auto reparsed = bpf::parse_filter(bpf::to_string(*expr));
    EXPECT_EQ(prog, bpf::compile(reparsed.get())) << text;
    EXPECT_TRUE(bpf::verify(prog).ok) << text;
    EXPECT_FALSE(bpf::disassemble(prog).empty()) << text;
  }
}

TEST(DifftestRoundTrip, GeneratedFiltersRecompileIdentically) {
  FilterGenerator gen{0xD1FF};
  for (int i = 0; i < 200; ++i) {
    const auto expr = gen.next_expr();
    const std::string text = bpf::to_string(*expr);
    const auto reparsed = bpf::parse_filter(text);
    EXPECT_EQ(bpf::compile(expr.get()), bpf::compile(reparsed.get())) << text;
  }
}

// --- verifier strictness goldens ---

TEST(VerifierStrictness, ExactRetAndMiscCodesOnly) {
  using namespace bpf;
  const Program ok_ret_k{stmt(kClassRet | kRetK, 1)};
  const Program ok_ret_a{stmt(kClassRet | kRetA, 0)};
  EXPECT_TRUE(verify(ok_ret_k).ok);
  EXPECT_TRUE(verify(ok_ret_a).ok);
  // Stray mode/size bits on RET must be rejected, not masked away.
  EXPECT_FALSE(verify({stmt(kClassRet | kRetK | 0x20, 1)}).ok);
  EXPECT_FALSE(verify({stmt(kClassRet | 0x08, 1)}).ok);
  const Program tax{stmt(kClassMisc | kMiscTax, 0), stmt(kClassRet | kRetK, 1)};
  const Program txa{stmt(kClassMisc | kMiscTxa, 0), stmt(kClassRet | kRetK, 1)};
  EXPECT_TRUE(verify(tax).ok);
  EXPECT_TRUE(verify(txa).ok);
  EXPECT_FALSE(
      verify({stmt(kClassMisc | 0x40, 0), stmt(kClassRet | kRetK, 1)}).ok);
}

TEST(VerifierStrictness, RegisterLoadsAreWordSizedOnly) {
  using namespace bpf;
  const auto with_ret = [](Insn insn) {
    return Program{insn, stmt(kClassRet | kRetK, 1)};
  };
  EXPECT_TRUE(verify(with_ret(stmt(kClassLd | kSizeW | kModeImm, 7))).ok);
  EXPECT_FALSE(verify(with_ret(stmt(kClassLd | kSizeH | kModeImm, 7))).ok);
  EXPECT_FALSE(verify(with_ret(stmt(kClassLd | kSizeB | kModeMem, 0))).ok);
  EXPECT_FALSE(verify(with_ret(stmt(kClassLd | kSizeH | kModeLen, 0))).ok);
  EXPECT_TRUE(verify(with_ret(stmt(kClassLdx | kSizeW | kModeMem, 3))).ok);
  EXPECT_FALSE(verify(with_ret(stmt(kClassLdx | kSizeH | kModeLen, 0))).ok);
  // MSH is byte-sized by definition; the W encoding is invalid.
  EXPECT_TRUE(verify(with_ret(stmt(kClassLdx | kSizeB | kModeMsh, 14))).ok);
  EXPECT_FALSE(verify(with_ret(stmt(kClassLdx | kSizeW | kModeMsh, 14))).ok);
  // Packet loads keep all three widths.
  EXPECT_TRUE(verify(with_ret(stmt(kClassLd | kSizeB | kModeAbs, 12))).ok);
  EXPECT_TRUE(verify(with_ret(stmt(kClassLd | kSizeH | kModeInd, 2))).ok);
}

TEST(VerifierStrictness, GarbageHighCodeBitsRejected) {
  using namespace bpf;
  Insn insn = stmt(kClassRet | kRetK, 1);
  insn.code |= 0x100;
  EXPECT_FALSE(verify({insn}).ok);
}

TEST(VerifierStrictness, VmEdgeCasesReject) {
  using namespace bpf;
  std::array<std::byte, 16> pkt{};
  // LDX MSH beyond caplen rejects (returns 0) instead of faulting.
  const Program msh{stmt(kClassLdx | kSizeB | kModeMsh, 64),
                    stmt(kClassMisc | kMiscTxa, 0),
                    stmt(kClassRet | kRetA, 0)};
  ASSERT_TRUE(verify(msh).ok);
  EXPECT_EQ(run(msh, pkt, 64), 0u);
  // IND load where x + k exceeds caplen rejects, even when the 32-bit
  // sum would wrap back into range.
  const Program ind{stmt(kClassLdx | kSizeW | kModeImm, 0xFFFFFFF0u),
                    stmt(kClassLd | kSizeB | kModeInd, 0x20),
                    stmt(kClassRet | kRetK, 1)};
  ASSERT_TRUE(verify(ind).ok);
  EXPECT_EQ(run(ind, pkt, 64), 0u);
}

// --- random valid programs: verify() acceptance implies run() safety ---

TEST(DifftestPrograms, GeneratedProgramsVerifyAndRunSafely) {
  Xoshiro256 rng{0xBEEF};
  FrameGenerator frames{0xF00D};
  for (int i = 0; i < 500; ++i) {
    const bpf::Program prog = generate_valid_program(rng);
    const auto v = bpf::verify(prog);
    ASSERT_TRUE(v.ok) << v.error << "\n" << bpf::disassemble(prog);
    const GeneratedFrame g = frames.next();
    ASSERT_NO_THROW(static_cast<void>(bpf::run(prog, g.bytes, g.wire_len)))
        << bpf::disassemble(prog);
  }
}

// --- the differential oracle itself ---

TEST(Difftest, FixedSeedRunIsCleanAndBindsTelemetry) {
  telemetry::Telemetry telemetry;
  DifftestConfig config;
  config.seed = 1;
  config.telemetry = &telemetry;
  const DifftestResult result = run_difftest(config);
  for (const auto& d : result.divergences) {
    ADD_FAILURE() << "[" << d.kind << "] filter '" << d.filter << "' frame '"
                  << d.frame << "': " << d.detail;
  }
  EXPECT_TRUE(result.clean());
  EXPECT_GT(result.pairs, 1000u);
  EXPECT_GT(result.program_runs, 0u);
  EXPECT_GT(result.parse_rejects, 0u);
  EXPECT_EQ(telemetry.registry.counter("difftest.pairs").value(), result.pairs);
  EXPECT_EQ(telemetry.registry.counter("difftest.divergences").value(), 0u);
}

TEST(Difftest, MultiSeedSoakIsClean) {
  // CI raises the seed count via WIRECAP_DIFFTEST_SOAK_SEEDS (500 in
  // the release job); the default keeps the tier-1 run fast.
  std::uint32_t seeds = 25;
  if (const char* env = std::getenv("WIRECAP_DIFFTEST_SOAK_SEEDS")) {
    seeds = static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  const DifftestSoakResult soak = run_difftest_soak(1, seeds);
  if (!soak.clean()) {
    // Leave the full divergence report behind as the CI artifact.
    const char* path = std::getenv("WIRECAP_DIFFTEST_REPORT");
    std::ofstream out{path != nullptr ? path : "difftest_report.txt"};
    out << soak.report();
  }
  EXPECT_TRUE(soak.clean()) << soak.report();
  EXPECT_EQ(soak.seeds_clean, soak.seeds_run);
  EXPECT_GT(soak.total_pairs, 0u);
}

// --- tier 2: five-engine crosscheck through pcap_compat ---

TEST(EngineCrosscheck, VlanFilterAgreesAcrossAllEngines) {
  EngineCrosscheckConfig config;
  config.seed = 3;
  config.filter = "vlan and tcp port 80";
  const EngineCrosscheckResult result = run_engine_crosscheck(config);
  for (const auto& p : result.problems) ADD_FAILURE() << p;
  ASSERT_EQ(result.engines.size(), 5u);
  for (const auto& e : result.engines) {
    EXPECT_EQ(e.matched, result.oracle_matched) << e.name;
    EXPECT_EQ(e.drop, 0u) << e.name;
    EXPECT_EQ(e.ifdrop, 0u) << e.name;
  }
}

TEST(EngineCrosscheck, PaperFilterAgreesAcrossAllEngines) {
  telemetry::Telemetry telemetry;
  EngineCrosscheckConfig config;
  config.seed = 5;
  config.filter = "131.225.2 and udp";
  config.telemetry = &telemetry;
  const EngineCrosscheckResult result = run_engine_crosscheck(config);
  for (const auto& p : result.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(telemetry.registry.counter("difftest.engine.mismatches").value(),
            0u);
  EXPECT_GT(telemetry.registry.counter("difftest.engine.frames").value(), 0u);
}

TEST(EngineCrosscheck, GeneratedFilterAgreesAcrossAllEngines) {
  EngineCrosscheckConfig config;
  config.seed = 7;  // filter generated from the seed
  const EngineCrosscheckResult result = run_engine_crosscheck(config);
  for (const auto& p : result.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(result.clean());
}

// --- tier 2b: batched vs per-packet delivery equivalence ---

TEST(BatchEquivalence, PathsAgreeOnGeneratedTraffic) {
  BatchEquivalenceConfig config;
  config.seed = 11;
  const BatchEquivalenceResult result = run_batch_equivalence(config);
  for (const auto& p : result.problems) ADD_FAILURE() << p;
  ASSERT_EQ(result.engines.size(), 5u);
  for (const auto& e : result.engines) {
    EXPECT_EQ(e.matched, result.oracle_matched) << e.name;
    // The batched path actually batched: far fewer pulls than packets.
    EXPECT_GT(e.batches, 0u) << e.name;
    EXPECT_LT(e.batches, e.packets) << e.name;
  }
}

TEST(BatchEquivalence, ExplicitFilterWithTinyBatchesAgrees) {
  BatchEquivalenceConfig config;
  config.seed = 13;
  config.filter = "vlan and tcp port 80";
  config.max_batch = 3;
  const BatchEquivalenceResult result = run_batch_equivalence(config);
  for (const auto& p : result.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(result.clean());
}

TEST(BatchEquivalence, AdversarialHundredSeedSoakIsClean) {
  // Random per-pull limits plus held-back LIFO batch releases: the
  // deferred / out-of-order recycling paths (WireCAP deref_n, PF_RING
  // read-ahead window) under 100 seeds of generated filters+traffic.
  std::uint32_t seeds = 100;
  if (const char* env = std::getenv("WIRECAP_BATCH_SOAK_SEEDS")) {
    seeds = static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  BatchEquivalenceConfig base;
  base.frames = 96;
  base.adversarial = true;
  const BatchEquivalenceSoakResult soak =
      run_batch_equivalence_soak(1, seeds, base);
  for (const auto& f : soak.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(soak.clean());
  EXPECT_EQ(soak.seeds_clean, soak.seeds_run);
  EXPECT_GT(soak.total_packets, 0u);
}

// --- crash corpus ---

TEST(BpfCorpus, EveryFileParsesCleanlyOrRaisesParseError) {
  const std::filesystem::path dir{WIRECAP_BPF_CORPUS_DIR};
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    std::ifstream in{entry.path()};
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    try {
      const auto expr = bpf::parse_filter(text);
      // Whatever parses must compile (or hit the documented jump-range
      // rejection) without tripping codegen internal errors.
      if (expr != nullptr) {
        try {
          static_cast<void>(bpf::compile(expr.get()));
        } catch (const std::invalid_argument&) {
        }
      }
    } catch (const bpf::ParseError&) {
      // the expected rejection for malformed corpus entries
    } catch (const std::exception& e) {
      ADD_FAILURE() << entry.path().filename() << " escaped with "
                    << e.what();
    }
  }
  EXPECT_GE(files, 20u);
}

TEST(BpfCorpus, KnownMalformedEntriesRaiseParseError) {
  const std::filesystem::path dir{WIRECAP_BPF_CORPUS_DIR};
  for (const char* name :
       {"number-overflow", "port-overflow", "len-overflow", "dotted-overflow",
        "octet-overflow", "paren-bomb", "not-bomb", "trailing-and",
        "unbalanced-paren", "empty-parens", "portrange-bounds",
        "prefix-too-wide"}) {
    std::ifstream in{dir / name};
    ASSERT_TRUE(in.good()) << name;
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_THROW(static_cast<void>(bpf::parse_filter(ss.str())),
                 bpf::ParseError)
        << name;
  }
}

}  // namespace
}  // namespace wirecap::testing
