// Tests for the libpcap-compatible facade: open/dispatch/loop semantics,
// kernel-style filtering, stats, breakloop, and inject (forwarding).
#include <gtest/gtest.h>

#include "apps/harness.hpp"
#include "bpf/parser.hpp"
#include "pcapcompat/pcap_compat.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::pcap {
namespace {

class PcapCompatFixture : public ::testing::Test {
 protected:
  PcapCompatFixture() {
    apps::ExperimentConfig config;
    config.engine.kind = apps::EngineKind::kWirecapBasic;
    config.engine.cells_per_chunk = 64;
    config.engine.chunk_count = 20;
    config.num_queues = 1;
    experiment_ = std::make_unique<apps::Experiment>(config);
  }

  /// Injects `count` packets alternating between a UDP flow in
  /// 131.225.2/24 and a TCP flow outside it.
  void inject(std::uint64_t count) {
    trace::ConstantRateConfig config;
    config.packet_count = count;
    net::FlowKey udp_flow{net::Ipv4Addr{131, 225, 2, 4},
                          net::Ipv4Addr{10, 0, 0, 1}, 5001, 53,
                          net::IpProto::kUdp};
    net::FlowKey tcp_flow{net::Ipv4Addr{192, 168, 0, 1},
                          net::Ipv4Addr{10, 0, 0, 1}, 5002, 80,
                          net::IpProto::kTcp};
    // Both flows must steer to queue 0 of a 1-queue NIC (trivially true).
    config.flows = {udp_flow, tcp_flow};
    source_ = std::make_unique<trace::ConstantRateSource>(config);
    injector_ = std::make_unique<nic::TrafficInjector>(
        experiment_->scheduler(), *source_, experiment_->nic());
    injector_->start();
  }

  std::unique_ptr<apps::Experiment> experiment_;
  std::unique_ptr<trace::ConstantRateSource> source_;
  std::unique_ptr<nic::TrafficInjector> injector_;
};

TEST_F(PcapCompatFixture, DispatchDeliversCapturedPackets) {
  // Note: the Experiment already runs a PktHandler on queue 0; use a
  // separate single-queue fabric for the pcap handle instead.
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore app_core{scheduler, 0};

  PcapHandle handle{scheduler, engine, nic, 0, app_core};

  trace::ConstantRateConfig config;
  config.packet_count = 100;
  Xoshiro256 rng{41};
  config.flows = {trace::random_flow(rng)};
  trace::ConstantRateSource source{config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(1));

  int seen = 0;
  std::uint32_t last_len = 0;
  const int handled = handle.dispatch(0, [&](const PacketHeader& header,
                                             std::span<const std::byte> data) {
    ++seen;
    last_len = header.len;
    EXPECT_EQ(header.caplen, data.size());
    EXPECT_GT(header.ts_ns, -1);
  });
  EXPECT_EQ(handled, 100);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(last_len, 64u);
  EXPECT_EQ(handle.stats().ps_recv, 100u);
  EXPECT_EQ(handle.stats().ps_ifdrop, 0u);
}

TEST(PcapCompat, FilterSelectsMatchingPackets) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore app_core{scheduler, 0};
  PcapHandle handle{scheduler, engine, nic, 0, app_core};
  handle.set_filter(PcapHandle::compile("131.225.2 and udp"));

  trace::ConstantRateConfig config;
  config.packet_count = 60;  // 30 UDP-matching + 30 TCP
  config.flows = {net::FlowKey{net::Ipv4Addr{131, 225, 2, 4},
                               net::Ipv4Addr{10, 0, 0, 1}, 5001, 53,
                               net::IpProto::kUdp},
                  net::FlowKey{net::Ipv4Addr{192, 168, 0, 1},
                               net::Ipv4Addr{10, 0, 0, 1}, 5002, 80,
                               net::IpProto::kTcp}};
  trace::ConstantRateSource source{config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(1));

  int matched = 0;
  handle.dispatch(0, [&](const PacketHeader&, std::span<const std::byte>) {
    ++matched;
  });
  EXPECT_EQ(matched, 30);
  // ps_recv counts everything the handle consumed, matching libpcap.
  EXPECT_EQ(handle.stats().ps_recv, 60u);
}

TEST(PcapCompat, LoopHonorsCountAndBreak) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore app_core{scheduler, 0};
  PcapHandle handle{scheduler, engine, nic, 0, app_core};

  trace::ConstantRateConfig config;
  config.packet_count = 50;
  Xoshiro256 rng{42};
  config.flows = {trace::random_flow(rng)};
  trace::ConstantRateSource source{config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();

  // loop() advances the simulation itself ("blocking read").
  int seen = 0;
  const int handled = handle.loop(
      20, [&](const PacketHeader&, std::span<const std::byte>) { ++seen; });
  EXPECT_EQ(handled, 20);
  EXPECT_EQ(seen, 20);

  // breakloop from inside the handler.
  const int result = handle.loop(0, [&](const PacketHeader&,
                                        std::span<const std::byte>) {
    ++seen;
    if (seen == 25) handle.breakloop();
  });
  EXPECT_EQ(result, -2);
  EXPECT_EQ(seen, 25);
}

TEST(PcapCompat, InjectForwardsZeroCopy) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.nic_id = 1;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  nic::NicConfig nic2_config;
  nic2_config.nic_id = 2;
  nic::MultiQueueNic nic2{scheduler, bus, nic2_config};

  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore app_core{scheduler, 0};
  PcapHandle handle{scheduler, engine, nic, 0, app_core};

  std::uint64_t egress = 0;
  nic2.set_egress([&](const net::WirePacket&) { ++egress; });

  trace::ConstantRateConfig config;
  config.packet_count = 32;
  Xoshiro256 rng{43};
  config.flows = {trace::random_flow(rng)};
  trace::ConstantRateSource source{config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(1));

  handle.dispatch(0, [&](const PacketHeader&, std::span<const std::byte>) {
    EXPECT_GT(handle.inject(nic2, 0), 0);
  });
  scheduler.run_until(Nanos::from_seconds(2));
  EXPECT_EQ(egress, 32u);
  // inject outside a handler fails.
  EXPECT_EQ(handle.inject(nic2, 0), -1);
}

TEST(PcapCompat, CompileRejectsBadFilters) {
  EXPECT_THROW(PcapHandle::compile("no such primitive"), bpf::ParseError);
}

TEST(PcapCompat, NextExYieldsEachPacketThenZero) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore app_core{scheduler, 0};
  PcapHandle handle{scheduler, engine, nic, 0, app_core};

  trace::ConstantRateConfig config;
  config.packet_count = 50;
  Xoshiro256 rng{43};
  config.flows = {trace::random_flow(rng)};
  trace::ConstantRateSource source{config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();

  int yielded = 0;
  int idle = 0;
  while (idle < 2) {
    scheduler.run_until(scheduler.now() + Nanos::from_millis(5));
    PacketHeader header;
    std::span<const std::byte> data;
    bool any = false;
    int rc;
    while ((rc = handle.next_ex(header, data)) == 1) {
      EXPECT_GT(header.caplen, 0u);
      EXPECT_EQ(header.caplen, data.size());
      EXPECT_GE(header.len, header.caplen);
      // The span must stay readable until the next call into the handle
      // (deferred batch recycling — the libpcap validity contract).
      EXPECT_NO_FATAL_FAILURE(static_cast<void>(data[0]));
      ++yielded;
      any = true;
    }
    EXPECT_EQ(rc, 0);  // non-blocking: 0 when nothing is pending
    idle = any ? 0 : idle + 1;
  }
  EXPECT_EQ(yielded, 50);
  EXPECT_EQ(handle.stats().ps_recv, 50u);
}

TEST(PcapCompat, DeprecatedLegacyHandlerStillDelivers) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore app_core{scheduler, 0};
  PcapHandle handle{scheduler, engine, nic, 0, app_core};

  trace::ConstantRateConfig config;
  config.packet_count = 20;
  Xoshiro256 rng{44};
  config.flows = {trace::random_flow(rng)};
  trace::ConstantRateSource source{config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(1));

  int seen = 0;
  const LegacyHandler legacy = [&](const PacketHeader* header,
                                   const std::byte* bytes, std::size_t len) {
    ASSERT_NE(header, nullptr);
    ASSERT_NE(bytes, nullptr);
    EXPECT_EQ(header->caplen, len);
    ++seen;
  };
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const int handled = handle.dispatch(0, legacy);
#pragma GCC diagnostic pop
  EXPECT_EQ(handled, 20);
  EXPECT_EQ(seen, 20);
}

// Regression: a pushdown batch hook that compacts a batch to ZERO views
// must not leak the batch's chunks.  The deferred release keys off the
// batch's refs, not its views — an early-out on `views.empty()` here
// once dropped the whole chunk on the floor (permanent pool exhaustion).
TEST(PcapCompat, BatchCompactedToZeroStillRecycles) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.rx_ring_size = 32;  // R must exceed ring_size / M
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = 8;
  engine_config.chunk_count = 12;  // small pool: a leak exhausts it fast
  core::WirecapEngine engine{scheduler, nic, engine_config};
  sim::SimCore app_core{scheduler, 0};

  PcapHandle handle{scheduler, engine, nic, 0, app_core};
  std::uint64_t hook_batches = 0;
  std::uint64_t hook_packets = 0;
  handle.set_batch_hook([&](engines::PacketBatch& batch) {
    ++hook_batches;
    hook_packets += batch.views.size();
    batch.views.clear();  // compact everything away; refs stay
  });

  trace::ConstantRateConfig config;
  config.packet_count = 400;  // > pool capacity (12 * 8 = 96 cells)
  Xoshiro256 rng{43};
  config.flows = {trace::random_flow(rng)};
  trace::ConstantRateSource source{config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();

  int seen = 0;
  const auto drain = [&] {
    handle.dispatch(0, [&seen](const PacketHeader&,
                               std::span<const std::byte>) { ++seen; });
  };
  // Interleave injection and dispatch so a leak would exhaust the pool
  // mid-run (capture drops), not just strand chunks at the end.
  for (int step = 1; step <= 20; ++step) {
    scheduler.run_until(Nanos::from_micros(50.0 * step));
    drain();
  }
  scheduler.run_until(Nanos::from_seconds(1));
  drain();

  EXPECT_EQ(seen, 0);  // every packet was compacted away pre-delivery
  EXPECT_GT(hook_batches, 0u);
  EXPECT_EQ(hook_packets, 400u);  // nothing dropped: the pool never ran dry
  EXPECT_EQ(handle.stats().ps_ifdrop, 0u);

  // Every chunk settled home: nothing outstanding, nothing captured.
  const auto census = engine.captured_census(0);
  EXPECT_EQ(census.outstanding, 0u);
  EXPECT_EQ(engine.pool(0).state_counts().captured, census.total());
}

}  // namespace
}  // namespace wirecap::pcap
