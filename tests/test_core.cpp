// Tests for the WireCAP engine (the paper's contribution): basic-mode
// burst absorption proportional to R*M, R/M interchangeability (the
// Figure 10 property), zero-copy delivery, end-of-burst flush via the
// partial-rescue timeout, advanced-mode buddy offloading, chunk
// conservation, and zero-copy forwarding.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>

#include "apps/harness.hpp"
#include "core/wirecap_engine.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::apps {
namespace {

ExperimentResult run_wirecap_burst(std::uint32_t m, std::uint32_t r,
                                   std::uint64_t packets, unsigned x,
                                   Nanos drain = Nanos::from_seconds(5)) {
  ExperimentConfig config;
  config.engine.kind = EngineKind::kWirecapBasic;
  config.engine.cells_per_chunk = m;
  config.engine.chunk_count = r;
  config.num_queues = 1;
  config.x = x;
  Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  Xoshiro256 rng{31};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};
  const Nanos horizon =
      Nanos::from_seconds(static_cast<double>(packets) /
                          source.rate().per_second()) + drain;
  return experiment.run(source, horizon);
}

TEST(WirecapBasic, WireRateCaptureNoLoss) {
  // Figure 8: WireCAP captures at wire speed without loss for any
  // (M, R), x=0.
  for (const auto& [m, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {64, 100}, {128, 100}, {256, 100}, {256, 500}}) {
    const auto result = run_wirecap_burst(m, r, 100'000, 0);
    EXPECT_EQ(result.drop_rate(), 0.0)
        << "WireCAP-B-(" << m << "," << r << ")";
    EXPECT_EQ(result.delivered, result.sent);
  }
}

TEST(WirecapBasic, BurstAbsorptionProportionalToRM) {
  // Figure 9: the burst WireCAP-B survives scales with R*M.  A pool of
  // 256x100 = 25,600 packets absorbs what DNA (1024-ring) cannot.
  const auto small_pool = run_wirecap_burst(64, 20, 30'000, 300);
  EXPECT_GT(small_pool.drop_rate(), 0.5);  // 1,280-packet pool overwhelmed

  const auto big_pool = run_wirecap_burst(256, 100, 25'000, 300);
  EXPECT_EQ(big_pool.drop_rate(), 0.0);  // 25,600-packet pool absorbs it

  // And the kept volume under overflow tracks pool + FIFO capacity.
  const auto overflowed = run_wirecap_burst(256, 100, 100'000, 300,
                                            Nanos::from_seconds(5));
  const auto kept =
      static_cast<double>(overflowed.sent - overflowed.capture_dropped);
  EXPECT_NEAR(kept, 256 * 100 + 4096, 1200.0);
  EXPECT_EQ(overflowed.delivery_dropped, 0u);  // WireCAP never delivery-drops
}

TEST(WirecapBasic, Figure10Property) {
  // Figure 10: with R*M fixed, the individual R and M do not matter.
  const auto a = run_wirecap_burst(64, 400, 40'000, 300);
  const auto b = run_wirecap_burst(128, 200, 40'000, 300);
  const auto c = run_wirecap_burst(256, 100, 40'000, 300);
  EXPECT_NEAR(a.drop_rate(), b.drop_rate(), 0.03);
  EXPECT_NEAR(b.drop_rate(), c.drop_rate(), 0.03);
}

TEST(WirecapBasic, ConservationWithChunks) {
  const auto result = run_wirecap_burst(64, 30, 50'000, 300,
                                        Nanos::from_seconds(30));
  EXPECT_EQ(result.sent, result.delivered + result.capture_dropped +
                             result.delivery_dropped);
  EXPECT_EQ(result.processed, result.delivered);
}

TEST(WirecapBasic, TailFlushedByPartialRescue) {
  // A burst that is not a multiple of M: the leftover packets must
  // still reach the application via the timeout-copy path.
  const auto result = run_wirecap_burst(256, 100, 1000, 0);
  EXPECT_EQ(result.delivered, 1000u);
  // 1000 = 3 full chunks of 256 + 232 leftover, delivered by copy.
  EXPECT_GT(result.copies, 0u);
  EXPECT_LE(result.copies, 232u + 256u);
}

TEST(WirecapBasic, MostDeliveryIsZeroCopy) {
  // For a large burst the copy fraction (timeout rescues only) is tiny.
  const auto result = run_wirecap_burst(256, 100, 100'000, 0);
  EXPECT_EQ(result.delivered, 100'000u);
  EXPECT_LT(static_cast<double>(result.copies),
            0.01 * static_cast<double>(result.delivered));
}

/// Two-queue experiment with a hot queue and an idle queue.
ExperimentResult run_imbalanced(EngineKind kind, double threshold,
                                std::uint64_t packets, Nanos horizon) {
  ExperimentConfig config;
  config.engine.kind = kind;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 50;
  config.engine.offload_threshold = threshold;
  config.num_queues = 2;
  config.x = 300;
  Experiment experiment{config};

  // All traffic to queue 0 at 70 kp/s: far beyond one handler's
  // 38.8 kp/s but within two handlers' combined 77.6 kp/s.
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  trace_config.link_bits_per_second = 70e3 * 84 * 8;
  Xoshiro256 rng{32};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 2)};
  trace::ConstantRateSource source{trace_config};
  return experiment.run(source, horizon);
}

TEST(WirecapAdvanced, OffloadingRecoversLongTermImbalance) {
  // Figure 11: basic mode drops heavily under a long-term single-queue
  // overload; advanced mode offloads to the idle buddy and keeps losses
  // near zero.
  const std::uint64_t packets = 140'000;  // 2 s at 70 kp/s
  const Nanos horizon = Nanos::from_seconds(2.0) + Nanos::from_seconds(30);

  const auto basic =
      run_imbalanced(EngineKind::kWirecapBasic, 0.6, packets, horizon);
  EXPECT_GT(basic.drop_rate(), 0.3);
  EXPECT_EQ(basic.offloaded_chunks, 0u);

  const auto advanced =
      run_imbalanced(EngineKind::kWirecapAdvanced, 0.6, packets, horizon);
  EXPECT_LT(advanced.drop_rate(), 0.02);
  EXPECT_GT(advanced.offloaded_chunks, 0u);
  // The buddy (queue 1) did real work.
  EXPECT_GT(advanced.per_queue[1].processed, packets / 4);
  // Conservation still holds with offloading in play.
  EXPECT_EQ(advanced.sent, advanced.delivered + advanced.capture_dropped +
                               advanced.delivery_dropped);
}

TEST(WirecapAdvanced, LowerThresholdOffloadsSooner) {
  // Figure 12: a lower T triggers offloading earlier, dropping less (or
  // at least offloading no fewer chunks).
  const std::uint64_t packets = 100'000;
  const Nanos horizon = Nanos::from_seconds(1.0) + Nanos::from_seconds(20);
  const auto low =
      run_imbalanced(EngineKind::kWirecapAdvanced, 0.5, packets, horizon);
  const auto high =
      run_imbalanced(EngineKind::kWirecapAdvanced, 0.9, packets, horizon);
  EXPECT_LE(low.drop_rate(), high.drop_rate() + 0.01);
  EXPECT_GE(low.offloaded_chunks, high.offloaded_chunks);
}

TEST(WirecapEngine, BuddyGroupRequiresOpenQueues) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 2;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapEngine engine{scheduler, nic, core::WirecapConfig{}};
  EXPECT_THROW(engine.set_buddy_group({0, 1}), std::logic_error);
}

TEST(WirecapEngine, RejectsBadThreshold) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig config;
  config.offload_threshold = 1.5;
  EXPECT_THROW((core::WirecapEngine{scheduler, nic, config}),
               std::invalid_argument);
}

TEST(WirecapForward, ZeroCopyForwardingDeliversToReceiver) {
  ExperimentConfig config;
  config.engine.kind = EngineKind::kWirecapBasic;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 50;
  config.num_queues = 1;
  config.x = 0;
  config.forward = true;
  Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 5'000;
  Xoshiro256 rng{33};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};

  const auto result = experiment.run(source, Nanos::from_seconds(3));
  EXPECT_EQ(result.forwarded_received, 5'000u);
  EXPECT_EQ(result.forwarding_drop_rate(), 0.0);
  // Forwarding a captured chunk's packets is metadata-only: the only
  // copies are timeout rescues of the burst tail.
  EXPECT_LT(result.copies, 100u);
}

/// Manual fabric for dispatch-policy regressions: a NIC, a WireCAP
/// engine with explicit buddy groups, and metronome traffic — one full
/// chunk injected per capture-poll interval per hot queue, so every
/// poll captures and dispatches exactly one chunk and hot queues
/// dispatch in lockstep.  No consumers: capture queues fill, the
/// offload threshold trips, and the buddy-selection policy is the only
/// thing deciding where chunks land.
class DispatchFabric {
 public:
  DispatchFabric(core::WirecapConfig config, std::uint32_t num_queues,
                 const std::vector<std::vector<std::uint32_t>>& groups,
                 bool use_tenant_api = false)
      : bus_{scheduler_}, num_queues_{num_queues} {
    nic::NicConfig nic_config;
    nic_config.num_rx_queues = num_queues;
    // Small rings so a modest R still satisfies R > ring_size / M.
    nic_config.rx_ring_size = 64;
    nic_ = std::make_unique<nic::MultiQueueNic>(scheduler_, bus_, nic_config);
    engine_ = std::make_unique<core::WirecapEngine>(scheduler_, *nic_,
                                                    std::move(config));
    core_ = std::make_unique<sim::SimCore>(scheduler_, 0);
    for (std::uint32_t q = 0; q < num_queues; ++q) engine_->open(q, *core_);
    for (const auto& group : groups) {
      if (use_tenant_api) {
        engines::TenantSpec spec;
        spec.name = "group-q";
        spec.name += std::to_string(
            *std::min_element(group.begin(), group.end()));
        spec.queues = group;
        engine_->register_tenant(spec);
      } else {
        engine_->set_buddy_group(group);
      }
    }
    seqs_.resize(num_queues, 0);
  }

  /// Schedules `chunks` full chunks' worth of packets to `queue`: burst
  /// k of cells_per_chunk packets lands 10 us after poll k, i.e. 40 us
  /// before poll k+1 captures it as one full chunk.
  void inject_chunks(std::uint32_t queue, std::uint32_t chunks) {
    Xoshiro256 rng{41 + queue};
    const net::FlowKey flow =
        trace::flow_for_queue(rng, queue, num_queues_);
    const Nanos poll = sim::CostModel{}.capture_poll_interval;
    const std::uint32_t m = engine_->config().cells_per_chunk;
    for (std::uint32_t k = 0; k < chunks; ++k) {
      const Nanos at =
          Nanos{poll.count() * k} + Nanos::from_micros(10);
      scheduler_.schedule_at(at, [this, queue, flow, m] {
        for (std::uint32_t p = 0; p < m; ++p) {
          nic_->receive(net::WirePacket::make(scheduler_.now(), flow, 64,
                                              seqs_[queue]++));
        }
      });
    }
  }

  void run(Nanos until) { scheduler_.run_until(until); }

  [[nodiscard]] core::WirecapEngine& engine() { return *engine_; }

 private:
  sim::Scheduler scheduler_;
  sim::IoBus bus_;
  std::uint32_t num_queues_;
  std::unique_ptr<nic::MultiQueueNic> nic_;
  std::unique_ptr<core::WirecapEngine> engine_;
  std::unique_ptr<sim::SimCore> core_;
  std::vector<std::uint64_t> seqs_;
};

TEST(WirecapDispatch, RoundRobinCyclesPerQueue) {
  // Two hot queues in different buddy groups dispatch in lockstep.
  // Round-robin state must be per-queue: queue 0's cycle over its two
  // buddies may not be perturbed by queue 3's dispatches (a shared
  // engine-global counter advances once per q3 chunk, flipping q0's
  // parity so one buddy gets everything).
  core::WirecapConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 16;
  config.offload_threshold = 0.25;
  config.offload_policy = core::OffloadPolicy::kRoundRobin;
  config.handoff = HandoffMode::kMutex;  // ample remote capacity
  DispatchFabric fabric{config, 5, {{0, 1, 2}, {3, 4}}};
  fabric.inject_chunks(0, 16);
  fabric.inject_chunks(3, 16);
  fabric.run(Nanos::from_millis(5));

  const auto& engine = fabric.engine();
  // Threshold 0.25 * R=16: chunks 1-5 stay home, 6-16 offload.
  const std::uint64_t out = engine.queue_stats(0).chunks_offloaded_out;
  EXPECT_EQ(out, 11u);
  const std::uint64_t in1 = engine.queue_stats(1).chunks_offloaded_in;
  const std::uint64_t in2 = engine.queue_stats(2).chunks_offloaded_in;
  EXPECT_EQ(in1 + in2, out);
  // A true per-queue round-robin alternates: 6/5.  The shared-counter
  // regression starves one buddy completely.
  EXPECT_GE(in1, out / 4);
  EXPECT_GE(in2, out / 4);
}

TEST(WirecapDispatch, RandomBuddyStreamIndependentAcrossQueues) {
  // The random-buddy draw sequence of one queue must not depend on how
  // busy any other queue is (a shared engine-global RNG interleaves
  // both queues' draws).  Run the same queue-0 workload with and
  // without a second hot queue in an unrelated buddy group: queue 0's
  // per-buddy offload distribution must be bit-identical.
  const auto distribution = [](bool second_group_hot) {
    core::WirecapConfig config;
    config.cells_per_chunk = 8;
    config.chunk_count = 32;
    config.offload_threshold = 0.25;
    config.offload_policy = core::OffloadPolicy::kRandomBuddy;
    config.handoff = HandoffMode::kMutex;  // ample remote capacity
    DispatchFabric fabric{config, 6, {{0, 1, 2, 3}, {4, 5}}};
    fabric.inject_chunks(0, 32);
    if (second_group_hot) fabric.inject_chunks(4, 32);
    fabric.run(Nanos::from_millis(5));
    return std::array<std::uint64_t, 3>{
        fabric.engine().queue_stats(1).chunks_offloaded_in,
        fabric.engine().queue_stats(2).chunks_offloaded_in,
        fabric.engine().queue_stats(3).chunks_offloaded_in};
  };
  const auto alone = distribution(false);
  const auto with_neighbor = distribution(true);
  // Queue 0 offloaded at all, spread over its buddies by the draws.
  EXPECT_GT(alone[0] + alone[1] + alone[2], 10u);
  EXPECT_EQ(alone, with_neighbor);
}

TEST(WirecapDispatch, LeastBusyJudgesOneLoadObservation) {
  // The home load is volatile (spool-backlog probes, concurrent
  // consumers).  The load observation that trips the offload threshold
  // must be the one compared against the best buddy: re-reading it can
  // see the backlog already cleared and keep every chunk home.  Probe
  // reports a huge backlog exactly once — one offload must result.
  core::WirecapConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 16;
  config.offload_threshold = 0.5;
  config.offload_policy = core::OffloadPolicy::kLeastBusy;
  DispatchFabric fabric{config, 2, {{0, 1}}};
  auto calls = std::make_shared<std::uint64_t>(0);
  fabric.engine().set_spool_backlog_probe(
      0, [calls]() -> std::size_t { return (*calls)++ == 0 ? 1000 : 0; });
  // Six chunks: depth alone (<= 6 of 16) never trips T=0.5, so the
  // probe's single spike is the only offload trigger.
  fabric.inject_chunks(0, 6);
  fabric.run(Nanos::from_millis(5));

  const auto& engine = fabric.engine();
  EXPECT_EQ(engine.queue_stats(0).chunks_offloaded_out, 1u);
  EXPECT_EQ(engine.queue_stats(1).chunks_offloaded_in, 1u);
  // Default lock-free handoff: the offload arrived as a steal deposit.
  EXPECT_EQ(engine.extra_stats(1).handoff_steals, 1u);
}

TEST(WirecapDispatch, InboxFullFallsHomeWithoutParking) {
  // Lock-free mode bounds a buddy's steal inbox; once it fills, every
  // further offload attempt must fall home in one step (counted as a
  // fallback) — never park in `pending` waiting on a buddy.
  core::WirecapConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 32;
  config.offload_threshold = 0.25;
  config.offload_policy = core::OffloadPolicy::kLeastBusy;
  DispatchFabric fabric{config, 2, {{0, 1}}};
  fabric.inject_chunks(0, 32);
  fabric.run(Nanos::from_millis(5));

  const auto& engine = fabric.engine();
  // Chunks 1-9 stay home (T=0.25 * R=32); the buddy's 8-slot inbox
  // absorbs the next 8; the rest fall home as fallbacks.
  EXPECT_EQ(engine.extra_stats(1).handoff_steals, 8u);
  EXPECT_EQ(engine.queue_stats(0).chunks_offloaded_out, 8u);
  EXPECT_GE(engine.extra_stats(0).handoff_fallbacks, 10u);
  // Fallbacks landed on the home ring, not in `pending`.
  EXPECT_EQ(engine.extra_stats(0).pending_high_water, 0u);
  // Depth-at-push high water: home kept 9 + the fallbacks.
  EXPECT_GE(engine.extra_stats(0).capture_queue_high_water, 20u);
}

TEST(WirecapEngine, PoolAccounting) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 2;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig config;
  config.cells_per_chunk = 128;
  config.chunk_count = 16;
  core::WirecapEngine engine{scheduler, nic, config};
  sim::SimCore core{scheduler, 0};
  engine.open(0, core);
  engine.open(1, core);
  EXPECT_EQ(engine.total_pool_bytes(), 2ull * 128 * 16 * 2048);
  EXPECT_EQ(engine.pool(0).cells_per_chunk(), 128u);
}

TEST(WirecapTenancy, ShimAndTenantApiProduceIdenticalDispatch) {
  // The deprecated set_buddy_group shim must forward to the tenant
  // registry without perturbing anything: the same lockstep workload
  // through both APIs yields identical per-queue dispatch streams.
  const auto run = [](bool use_tenant_api) {
    core::WirecapConfig config;
    config.cells_per_chunk = 8;
    config.chunk_count = 16;
    config.offload_threshold = 0.25;
    config.offload_policy = core::OffloadPolicy::kRoundRobin;
    config.handoff = HandoffMode::kMutex;  // ample remote capacity
    DispatchFabric fabric{config, 5, {{0, 1, 2}, {3, 4}}, use_tenant_api};
    fabric.inject_chunks(0, 16);
    fabric.inject_chunks(3, 16);
    fabric.run(Nanos::from_millis(5));
    std::vector<std::array<std::uint64_t, 4>> streams;
    for (std::uint32_t q = 0; q < 5; ++q) {
      const auto stats = fabric.engine().queue_stats(q);
      const auto extra = fabric.engine().extra_stats(q);
      streams.push_back({stats.chunks_offloaded_out,
                         stats.chunks_offloaded_in, extra.handoff_steals,
                         extra.capture_queue_high_water});
    }
    return streams;
  };
  const auto shim = run(false);
  const auto api = run(true);
  EXPECT_EQ(shim, api);
  // And the comparison is non-trivial: chunks really moved.
  EXPECT_GT(shim[0][0], 0u);
}

TEST(WirecapTenancy, ShimRegistersDistinctCoexistingTenants) {
  core::WirecapConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 16;
  config.offload_threshold = 0.25;
  DispatchFabric fabric{config, 5, {{0, 1, 2}, {3, 4}}};
  core::WirecapEngine& engine = fabric.engine();
  ASSERT_EQ(engine.tenants().size(), 2u);
  EXPECT_EQ(engine.tenant_of(0), engine.tenant_of(2));
  EXPECT_EQ(engine.tenant_of(3), engine.tenant_of(4));
  EXPECT_NE(engine.tenant_of(0), engine.tenant_of(3));
  // Re-issuing the same group upserts rather than multiplying tenants.
  engine.set_buddy_group({0, 1, 2});
  EXPECT_EQ(engine.tenants().size(), 2u);
}

TEST(WirecapTenancy, RegistrationValidatesSpecs) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 2;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapEngine engine{scheduler, nic, core::WirecapConfig{}};

  engines::TenantSpec closed;
  closed.name = "closed";
  closed.queues = {0};
  EXPECT_THROW(engine.register_tenant(closed), std::logic_error);

  sim::SimCore core{scheduler, 0};
  engine.open(0, core);
  engine.open(1, core);

  engines::TenantSpec nameless;
  nameless.queues = {0};
  EXPECT_THROW(engine.register_tenant(nameless), std::invalid_argument);

  engines::TenantSpec queueless;
  queueless.name = "queueless";
  EXPECT_THROW(engine.register_tenant(queueless), std::invalid_argument);

  engines::TenantSpec doubled;
  doubled.name = "doubled";
  doubled.queues = {1, 1};
  EXPECT_THROW(engine.register_tenant(doubled), std::invalid_argument);
}

TEST(WirecapTenancy, UpsertAndStealKeepQueuesDisjoint) {
  core::WirecapConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 16;
  DispatchFabric fabric{config, 3, {}};
  core::WirecapEngine& engine = fabric.engine();

  engines::TenantSpec a;
  a.name = "a";
  a.queues = {0, 1};
  const engines::TenantId ta = engine.register_tenant(a);

  // "b" claims queue 1: the registry stays a partition — 1 moves to b
  // and is released from a without any throw.
  engines::TenantSpec b;
  b.name = "b";
  b.queues = {1, 2};
  const engines::TenantId tb = engine.register_tenant(b);
  EXPECT_NE(ta, tb);
  EXPECT_EQ(engine.tenant_of(0), ta);
  EXPECT_EQ(engine.tenant_of(1), tb);
  EXPECT_EQ(engine.tenant_of(2), tb);
  ASSERT_EQ(engine.tenants().size(), 2u);
  EXPECT_EQ(engine.tenants()[ta].queues, (std::vector<std::uint32_t>{0}));

  // Re-registering "a" upserts in place: same id, same tenant count.
  a.queues = {0};
  a.chunk_quota = 7;
  EXPECT_EQ(engine.register_tenant(a), ta);
  EXPECT_EQ(engine.tenants().size(), 2u);
  EXPECT_EQ(engine.tenant_account(ta).quota, 7u);
}

TEST(WirecapTenancy, QuotaCapsCaptureAndIsolatesNeighbor) {
  // Tenant "a" (queue 0) gets a 4-chunk budget and no consumer: its
  // capture must stop at exactly 4 charged chunks while uncapped "b"
  // (queue 1) keeps capturing the same workload.
  core::WirecapConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 16;
  DispatchFabric fabric{config, 2, {}};
  core::WirecapEngine& engine = fabric.engine();

  engines::TenantSpec a;
  a.name = "a";
  a.queues = {0};
  a.chunk_quota = 4;
  engines::TenantSpec b;
  b.name = "b";
  b.queues = {1};
  const engines::TenantId ta = engine.register_tenant(a);
  const engines::TenantId tb = engine.register_tenant(b);

  fabric.inject_chunks(0, 10);
  fabric.inject_chunks(1, 10);
  fabric.run(Nanos::from_millis(5));

  EXPECT_EQ(engine.tenant_account(ta).charged, 4u);
  EXPECT_GT(engine.tenant_account(ta).quota_stalls, 0u);
  EXPECT_EQ(engine.pool(0).state_counts().captured, 4u);
  // The neighbour was not throttled by a's exhaustion.
  EXPECT_GT(engine.tenant_account(tb).charged, 4u);
  EXPECT_EQ(engine.tenant_account(tb).quota_stalls, 0u);

  // The four-way per-tenant census agrees for both tenants.
  for (const engines::TenantId t : {ta, tb}) {
    const auto census = engine.tenant_census(t);
    EXPECT_EQ(census.account_charged, census.queue_charged);
    EXPECT_EQ(census.account_charged, census.pool_captured);
    EXPECT_EQ(census.account_charged, census.engine_census);
  }
}

TEST(WirecapNuma, RemoteHandoffsCountedPerDispatcher) {
  // Queue 0 on the NIC's socket, buddy queue 1 on the other: every
  // offload crosses the interconnect and is counted against the
  // dispatching queue.
  core::WirecapConfig config;
  config.cells_per_chunk = 8;
  config.chunk_count = 16;
  config.offload_threshold = 0.25;
  config.handoff = HandoffMode::kMutex;  // ample remote capacity
  config.nic_numa_node = 0;
  config.queue_numa_node = {0, 1};
  DispatchFabric fabric{config, 2, {{0, 1}}, /*use_tenant_api=*/true};
  fabric.inject_chunks(0, 16);
  fabric.run(Nanos::from_millis(5));

  const auto& engine = fabric.engine();
  const std::uint64_t out = engine.queue_stats(0).chunks_offloaded_out;
  EXPECT_GT(out, 0u);
  EXPECT_EQ(engine.extra_stats(0).numa_remote_handoffs, out);
  EXPECT_EQ(engine.extra_stats(1).numa_remote_handoffs, 0u);
}

TEST(WirecapNuma, RemotePoolPlacementChargesCaptureCost) {
  // The same burst, pool local vs remote to the NIC: an (artificially
  // large) per-chunk remote-capture penalty must slow the capture path
  // enough to overflow the ring, where the local run loses nothing.
  const auto run = [](std::uint32_t node) {
    ExperimentConfig config;
    config.engine.kind = EngineKind::kWirecapBasic;
    config.engine.cells_per_chunk = 64;
    config.engine.chunk_count = 100;
    config.engine.nic_numa_node = 0;
    config.engine.queue_numa_node = {node};
    config.num_queues = 1;
    config.x = 0;
    config.costs.numa_remote_capture_cost = Nanos::from_micros(400);
    Experiment experiment{config};

    trace::ConstantRateConfig trace_config;
    trace_config.packet_count = 50'000;
    Xoshiro256 rng{77};
    trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
    trace::ConstantRateSource source{trace_config};
    const Nanos horizon =
        Nanos::from_seconds(50'000.0 / source.rate().per_second()) +
        Nanos::from_seconds(5);
    return experiment.run(source, horizon);
  };
  const auto local = run(0);
  const auto remote = run(1);
  EXPECT_EQ(local.drop_rate(), 0.0);
  EXPECT_GT(remote.capture_dropped, local.capture_dropped);
}

}  // namespace
}  // namespace wirecap::apps
