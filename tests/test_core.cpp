// Tests for the WireCAP engine (the paper's contribution): basic-mode
// burst absorption proportional to R*M, R/M interchangeability (the
// Figure 10 property), zero-copy delivery, end-of-burst flush via the
// partial-rescue timeout, advanced-mode buddy offloading, chunk
// conservation, and zero-copy forwarding.
#include <gtest/gtest.h>

#include "apps/harness.hpp"
#include "core/wirecap_engine.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::apps {
namespace {

ExperimentResult run_wirecap_burst(std::uint32_t m, std::uint32_t r,
                                   std::uint64_t packets, unsigned x,
                                   Nanos drain = Nanos::from_seconds(5)) {
  ExperimentConfig config;
  config.engine.kind = EngineKind::kWirecapBasic;
  config.engine.cells_per_chunk = m;
  config.engine.chunk_count = r;
  config.num_queues = 1;
  config.x = x;
  Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  Xoshiro256 rng{31};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};
  const Nanos horizon =
      Nanos::from_seconds(static_cast<double>(packets) /
                          source.rate().per_second()) + drain;
  return experiment.run(source, horizon);
}

TEST(WirecapBasic, WireRateCaptureNoLoss) {
  // Figure 8: WireCAP captures at wire speed without loss for any
  // (M, R), x=0.
  for (const auto& [m, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {64, 100}, {128, 100}, {256, 100}, {256, 500}}) {
    const auto result = run_wirecap_burst(m, r, 100'000, 0);
    EXPECT_EQ(result.drop_rate(), 0.0)
        << "WireCAP-B-(" << m << "," << r << ")";
    EXPECT_EQ(result.delivered, result.sent);
  }
}

TEST(WirecapBasic, BurstAbsorptionProportionalToRM) {
  // Figure 9: the burst WireCAP-B survives scales with R*M.  A pool of
  // 256x100 = 25,600 packets absorbs what DNA (1024-ring) cannot.
  const auto small_pool = run_wirecap_burst(64, 20, 30'000, 300);
  EXPECT_GT(small_pool.drop_rate(), 0.5);  // 1,280-packet pool overwhelmed

  const auto big_pool = run_wirecap_burst(256, 100, 25'000, 300);
  EXPECT_EQ(big_pool.drop_rate(), 0.0);  // 25,600-packet pool absorbs it

  // And the kept volume under overflow tracks pool + FIFO capacity.
  const auto overflowed = run_wirecap_burst(256, 100, 100'000, 300,
                                            Nanos::from_seconds(5));
  const auto kept =
      static_cast<double>(overflowed.sent - overflowed.capture_dropped);
  EXPECT_NEAR(kept, 256 * 100 + 4096, 1200.0);
  EXPECT_EQ(overflowed.delivery_dropped, 0u);  // WireCAP never delivery-drops
}

TEST(WirecapBasic, Figure10Property) {
  // Figure 10: with R*M fixed, the individual R and M do not matter.
  const auto a = run_wirecap_burst(64, 400, 40'000, 300);
  const auto b = run_wirecap_burst(128, 200, 40'000, 300);
  const auto c = run_wirecap_burst(256, 100, 40'000, 300);
  EXPECT_NEAR(a.drop_rate(), b.drop_rate(), 0.03);
  EXPECT_NEAR(b.drop_rate(), c.drop_rate(), 0.03);
}

TEST(WirecapBasic, ConservationWithChunks) {
  const auto result = run_wirecap_burst(64, 30, 50'000, 300,
                                        Nanos::from_seconds(30));
  EXPECT_EQ(result.sent, result.delivered + result.capture_dropped +
                             result.delivery_dropped);
  EXPECT_EQ(result.processed, result.delivered);
}

TEST(WirecapBasic, TailFlushedByPartialRescue) {
  // A burst that is not a multiple of M: the leftover packets must
  // still reach the application via the timeout-copy path.
  const auto result = run_wirecap_burst(256, 100, 1000, 0);
  EXPECT_EQ(result.delivered, 1000u);
  // 1000 = 3 full chunks of 256 + 232 leftover, delivered by copy.
  EXPECT_GT(result.copies, 0u);
  EXPECT_LE(result.copies, 232u + 256u);
}

TEST(WirecapBasic, MostDeliveryIsZeroCopy) {
  // For a large burst the copy fraction (timeout rescues only) is tiny.
  const auto result = run_wirecap_burst(256, 100, 100'000, 0);
  EXPECT_EQ(result.delivered, 100'000u);
  EXPECT_LT(static_cast<double>(result.copies),
            0.01 * static_cast<double>(result.delivered));
}

/// Two-queue experiment with a hot queue and an idle queue.
ExperimentResult run_imbalanced(EngineKind kind, double threshold,
                                std::uint64_t packets, Nanos horizon) {
  ExperimentConfig config;
  config.engine.kind = kind;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 50;
  config.engine.offload_threshold = threshold;
  config.num_queues = 2;
  config.x = 300;
  Experiment experiment{config};

  // All traffic to queue 0 at 70 kp/s: far beyond one handler's
  // 38.8 kp/s but within two handlers' combined 77.6 kp/s.
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  trace_config.link_bits_per_second = 70e3 * 84 * 8;
  Xoshiro256 rng{32};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 2)};
  trace::ConstantRateSource source{trace_config};
  return experiment.run(source, horizon);
}

TEST(WirecapAdvanced, OffloadingRecoversLongTermImbalance) {
  // Figure 11: basic mode drops heavily under a long-term single-queue
  // overload; advanced mode offloads to the idle buddy and keeps losses
  // near zero.
  const std::uint64_t packets = 140'000;  // 2 s at 70 kp/s
  const Nanos horizon = Nanos::from_seconds(2.0) + Nanos::from_seconds(30);

  const auto basic =
      run_imbalanced(EngineKind::kWirecapBasic, 0.6, packets, horizon);
  EXPECT_GT(basic.drop_rate(), 0.3);
  EXPECT_EQ(basic.offloaded_chunks, 0u);

  const auto advanced =
      run_imbalanced(EngineKind::kWirecapAdvanced, 0.6, packets, horizon);
  EXPECT_LT(advanced.drop_rate(), 0.02);
  EXPECT_GT(advanced.offloaded_chunks, 0u);
  // The buddy (queue 1) did real work.
  EXPECT_GT(advanced.per_queue[1].processed, packets / 4);
  // Conservation still holds with offloading in play.
  EXPECT_EQ(advanced.sent, advanced.delivered + advanced.capture_dropped +
                               advanced.delivery_dropped);
}

TEST(WirecapAdvanced, LowerThresholdOffloadsSooner) {
  // Figure 12: a lower T triggers offloading earlier, dropping less (or
  // at least offloading no fewer chunks).
  const std::uint64_t packets = 100'000;
  const Nanos horizon = Nanos::from_seconds(1.0) + Nanos::from_seconds(20);
  const auto low =
      run_imbalanced(EngineKind::kWirecapAdvanced, 0.5, packets, horizon);
  const auto high =
      run_imbalanced(EngineKind::kWirecapAdvanced, 0.9, packets, horizon);
  EXPECT_LE(low.drop_rate(), high.drop_rate() + 0.01);
  EXPECT_GE(low.offloaded_chunks, high.offloaded_chunks);
}

TEST(WirecapEngine, BuddyGroupRequiresOpenQueues) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 2;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapEngine engine{scheduler, nic, core::WirecapConfig{}};
  EXPECT_THROW(engine.set_buddy_group({0, 1}), std::logic_error);
}

TEST(WirecapEngine, RejectsBadThreshold) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig config;
  config.offload_threshold = 1.5;
  EXPECT_THROW((core::WirecapEngine{scheduler, nic, config}),
               std::invalid_argument);
}

TEST(WirecapForward, ZeroCopyForwardingDeliversToReceiver) {
  ExperimentConfig config;
  config.engine.kind = EngineKind::kWirecapBasic;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 50;
  config.num_queues = 1;
  config.x = 0;
  config.forward = true;
  Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 5'000;
  Xoshiro256 rng{33};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};

  const auto result = experiment.run(source, Nanos::from_seconds(3));
  EXPECT_EQ(result.forwarded_received, 5'000u);
  EXPECT_EQ(result.forwarding_drop_rate(), 0.0);
  // Forwarding a captured chunk's packets is metadata-only: the only
  // copies are timeout rescues of the burst tail.
  EXPECT_LT(result.copies, 100u);
}

TEST(WirecapEngine, PoolAccounting) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 2;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  core::WirecapConfig config;
  config.cells_per_chunk = 128;
  config.chunk_count = 16;
  core::WirecapEngine engine{scheduler, nic, config};
  sim::SimCore core{scheduler, 0};
  engine.open(0, core);
  engine.open(1, core);
  EXPECT_EQ(engine.total_pool_bytes(), 2ull * 128 * 16 * 2048);
  EXPECT_EQ(engine.pool(0).cells_per_chunk(), 128u);
}

}  // namespace
}  // namespace wirecap::apps
