// Parameterized property sweeps across the experiment space:
//
//   * monotonicity: drop rate never decreases with burst size P, and
//     never increases with pool size R;
//   * the paper's basic-mode buffering formula (§3.2.2a): WireCAP
//     handles a maximum burst of about Pin*(R*M)/(Pin-Pp) packets;
//   * conservation (sent == delivered + dropped) over an engine x
//     workload matrix;
//   * kept-volume accounting: sent - dropped ~= buffering + processed
//     during the burst, for every (M, R).
#include <gtest/gtest.h>

#include <cctype>

#include "apps/harness.hpp"
#include "sim/costs.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::apps {
namespace {

ExperimentResult burst_run(EngineKind kind, std::uint32_t m, std::uint32_t r,
                           std::uint64_t packets, unsigned x,
                           double drain_s = 1.0) {
  ExperimentConfig config;
  config.engine.kind = kind;
  config.engine.cells_per_chunk = m;
  config.engine.chunk_count = r;
  config.num_queues = 1;
  config.x = x;
  Experiment experiment{config};
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  Xoshiro256 rng{0x9201};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};
  const Nanos horizon = Nanos::from_seconds(
      static_cast<double>(packets) / source.rate().per_second() + drain_s);
  return experiment.run(source, horizon);
}

// --- monotonicity in P ---

class MonotonicInP : public ::testing::TestWithParam<EngineKind> {};

TEST_P(MonotonicInP, DropRateNeverDecreasesWithBurstSize) {
  double last = -1.0;
  for (const std::uint64_t p :
       {2'000ull, 8'000ull, 32'000ull, 128'000ull, 512'000ull}) {
    const double rate = burst_run(GetParam(), 256, 100, p, 300).drop_rate();
    EXPECT_GE(rate, last - 0.01)
        << to_string(GetParam()) << " at P=" << p;
    last = std::max(last, rate);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, MonotonicInP,
                         ::testing::Values(EngineKind::kDna,
                                           EngineKind::kNetmap,
                                           EngineKind::kWirecapBasic,
                                           EngineKind::kDpdk));

// --- monotonicity in R ---

TEST(MonotonicInR, BiggerPoolsNeverDropMore) {
  double last = 2.0;
  for (const std::uint32_t r : {20u, 50u, 100u, 200u, 400u}) {
    const double rate =
        burst_run(EngineKind::kWirecapBasic, 128, r, 40'000, 300).drop_rate();
    EXPECT_LE(rate, last + 0.01) << "R=" << r;
    last = std::min(last, rate);
  }
}

// --- the paper's burst formula ---

class BasicModeFormula
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(BasicModeFormula, MaxLosslessBurstTracksTheory) {
  // "WireCAP in the basic mode can handle a maximum burst of
  //  Pin*(R*M)/(Pin-Pp) packets without loss."  With the NIC FIFO the
  //  effective buffer is R*M + fifo.
  const auto [m, r] = GetParam();
  const sim::CostModel costs;
  const double pin = sim::kWireRate64B;
  const double pp = 1e9 / static_cast<double>(
                              costs.pkt_handler_cost(300).count());
  const double buffer = static_cast<double>(m) * r + 4096.0;
  const double predicted = pin * buffer / (pin - pp);

  // Just below the prediction: lossless.  Well above: drops.
  const auto below = burst_run(EngineKind::kWirecapBasic, m, r,
                               static_cast<std::uint64_t>(predicted * 0.9),
                               300);
  EXPECT_EQ(below.drop_rate(), 0.0) << "M=" << m << " R=" << r;
  const auto above = burst_run(EngineKind::kWirecapBasic, m, r,
                               static_cast<std::uint64_t>(predicted * 1.3),
                               300);
  EXPECT_GT(above.drop_rate(), 0.0) << "M=" << m << " R=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Pools, BasicModeFormula,
    ::testing::Values(std::pair<std::uint32_t, std::uint32_t>{64, 100},
                      std::pair<std::uint32_t, std::uint32_t>{128, 100},
                      std::pair<std::uint32_t, std::uint32_t>{256, 100},
                      std::pair<std::uint32_t, std::uint32_t>{256, 300}));

// --- conservation matrix ---

struct ConservationCase {
  EngineKind kind;
  std::uint64_t packets;
  unsigned x;
};

class ConservationMatrix : public ::testing::TestWithParam<ConservationCase> {
};

TEST_P(ConservationMatrix, SentEqualsDeliveredPlusDropped) {
  const auto& param = GetParam();
  const auto result = burst_run(param.kind, 64, 60, param.packets, param.x,
                                /*drain_s=*/20.0);
  EXPECT_EQ(result.sent, result.delivered + result.capture_dropped +
                             result.delivery_dropped)
      << result.engine_label << " P=" << param.packets << " x=" << param.x;
  EXPECT_EQ(result.processed, result.delivered);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConservationMatrix,
    ::testing::Values(
        ConservationCase{EngineKind::kDna, 3'000, 0},
        ConservationCase{EngineKind::kDna, 60'000, 300},
        ConservationCase{EngineKind::kNetmap, 60'000, 300},
        ConservationCase{EngineKind::kPfRing, 30'000, 300},
        ConservationCase{EngineKind::kPsioe, 30'000, 100},
        ConservationCase{EngineKind::kWirecapBasic, 3'000, 0},
        ConservationCase{EngineKind::kWirecapBasic, 60'000, 300},
        ConservationCase{EngineKind::kDpdk, 60'000, 300}),
    [](const ::testing::TestParamInfo<ConservationCase>& param_info) {
      std::string name = to_string(param_info.param.kind) + "_P" +
                         std::to_string(param_info.param.packets) + "_x" +
                         std::to_string(param_info.param.x);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- kept-volume accounting ---

class KeptVolume
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(KeptVolume, KeptTracksBufferPlusProcessing) {
  const auto [m, r] = GetParam();
  const std::uint64_t packets = 200'000;  // overwhelms every tested pool
  const auto result =
      burst_run(EngineKind::kWirecapBasic, m, r, packets, 300, 1.0);
  const double burst_seconds =
      static_cast<double>(packets) / sim::kWireRate64B;
  const sim::CostModel costs;
  const double pp =
      1e9 / static_cast<double>(costs.pkt_handler_cost(300).count());
  const double expected_kept =
      static_cast<double>(m) * r + 4096.0 + pp * burst_seconds;
  const double kept =
      static_cast<double>(result.sent - result.capture_dropped);
  EXPECT_NEAR(kept, expected_kept, expected_kept * 0.08)
      << "M=" << m << " R=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Pools, KeptVolume,
    ::testing::Values(std::pair<std::uint32_t, std::uint32_t>{64, 100},
                      std::pair<std::uint32_t, std::uint32_t>{256, 100},
                      std::pair<std::uint32_t, std::uint32_t>{128, 400},
                      std::pair<std::uint32_t, std::uint32_t>{512, 100}));

}  // namespace
}  // namespace wirecap::apps
