// Tests for the in-capture processing pipeline: stage semantics
// (filter/sample/truncate/aggregate), the spec parser, net::FlowTable,
// zero-copy fan-out refcounting in both modes (engine shares and the
// slot fallback), shared-engine vs dedicated-engine result equality,
// and the 100-seed fan-out fault soak under the lifecycle auditor.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/harness.hpp"
#include "bpf/codegen.hpp"
#include "common/rng.hpp"
#include "core/wirecap_engine.hpp"
#include "engines/factory.hpp"
#include "net/flow_table.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "nic/device.hpp"
#include "nic/wire.hpp"
#include "pipeline/fanout.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/spec.hpp"
#include "pipeline/stages.hpp"
#include "sim/bus.hpp"
#include "sim/core.hpp"
#include "sim/costs.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/telemetry.hpp"
#include "testing/lifecycle_auditor.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::pipeline {
namespace {

net::FlowKey udp_flow(std::uint16_t src_port = 1111) {
  return net::FlowKey{net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2},
                      src_port, 53, net::IpProto::kUdp};
}

net::FlowKey tcp_flow(std::uint16_t src_port = 2222) {
  return net::FlowKey{net::Ipv4Addr{10, 0, 0, 3}, net::Ipv4Addr{10, 0, 0, 4},
                      src_port, 80, net::IpProto::kTcp};
}

/// Hand-built batch over owned frames (refs stay empty: these tests
/// exercise stage semantics, not release accounting).
struct TestBatch {
  std::vector<net::WirePacket> packets;
  engines::PacketBatch batch;

  void add(const net::FlowKey& flow, std::uint32_t wire_len,
           Nanos timestamp = Nanos::zero()) {
    packets.push_back(net::WirePacket::make(timestamp, flow, wire_len,
                                            packets.size()));
  }

  engines::PacketBatch& build() {
    batch.clear();
    for (net::WirePacket& packet : packets) {
      engines::CaptureView view;
      view.bytes = packet.mutable_bytes();
      view.wire_len = packet.wire_len();
      view.timestamp = packet.timestamp();
      view.seq = packet.seq();
      batch.views.push_back(view);
    }
    return batch;
  }
};

// --- stages ---

TEST(FilterStage, CompactsRejectedViewsInPlace) {
  TestBatch tb;
  tb.add(udp_flow(), 100);
  tb.add(tcp_flow(), 200);
  tb.add(udp_flow(4000), 300);
  engines::PacketBatch& batch = tb.build();

  FilterStage stage{"udp"};
  stage.process(batch);

  ASSERT_EQ(batch.views.size(), 2u);
  EXPECT_EQ(batch.views[0].seq, 0u);
  EXPECT_EQ(batch.views[1].seq, 2u);
  EXPECT_EQ(stage.stats().packets_in, 3u);
  EXPECT_EQ(stage.stats().packets_out, 2u);
  EXPECT_EQ(stage.stats().dropped(), 1u);
}

TEST(FilterStage, CanCompactToZero) {
  TestBatch tb;
  tb.add(tcp_flow(), 100);
  tb.add(tcp_flow(), 100);
  engines::PacketBatch& batch = tb.build();

  FilterStage stage{"udp"};
  stage.process(batch);
  EXPECT_TRUE(batch.views.empty());
  EXPECT_EQ(stage.stats().dropped(), 2u);
}

TEST(FilterStage, RejectsInvalidExpression) {
  // bpf::ParseError, a std::runtime_error.
  EXPECT_THROW(FilterStage{"this is not bpf"}, std::runtime_error);
}

TEST(SampleStage, OneInNIsDeterministicAcrossBatches) {
  SampleStage stage{SampleMode::kOneInN, 4};
  TestBatch first;
  for (int i = 0; i < 6; ++i) first.add(udp_flow(), 100);
  engines::PacketBatch& batch1 = first.build();
  stage.process(batch1);
  // Stream positions 0..5: keep 0 and 4.
  ASSERT_EQ(batch1.views.size(), 2u);
  EXPECT_EQ(batch1.views[0].seq, 0u);
  EXPECT_EQ(batch1.views[1].seq, 4u);

  TestBatch second;
  for (int i = 0; i < 6; ++i) second.add(udp_flow(), 100);
  engines::PacketBatch& batch2 = second.build();
  stage.process(batch2);
  // Positions 6..11: keep 8 (index 2 of this batch).
  ASSERT_EQ(batch2.views.size(), 1u);
  EXPECT_EQ(batch2.views[0].seq, 2u);
  EXPECT_EQ(stage.stats().packets_in, 12u);
  EXPECT_EQ(stage.stats().packets_out, 3u);
}

TEST(SampleStage, PerFlowKeepsFlowsWhole) {
  const std::uint32_t n = 2;
  std::vector<net::FlowKey> flows;
  for (std::uint16_t p = 0; p < 8; ++p) flows.push_back(udp_flow(5000 + p));

  TestBatch tb;
  for (int round = 0; round < 3; ++round) {
    for (const net::FlowKey& flow : flows) tb.add(flow, 128);
  }
  engines::PacketBatch& batch = tb.build();

  SampleStage stage{SampleMode::kPerFlow, n};
  stage.process(batch);

  // Survivors are exactly the packets of flows with mix() % n == 0 —
  // three per sampled flow (flows stay whole).
  std::size_t expected = 0;
  for (const net::FlowKey& flow : flows) {
    if (flow.mix() % n == 0) expected += 3;
  }
  EXPECT_EQ(batch.views.size(), expected);
  for (const engines::CaptureView& view : batch.views) {
    const auto flow = net::parse_flow(view.bytes);
    ASSERT_TRUE(flow.has_value());
    EXPECT_EQ(flow->mix() % n, 0u);
  }
}

TEST(TruncateStage, SlicesViewsWithoutTouchingWireLen) {
  TestBatch tb;
  tb.add(udp_flow(), 1000);  // snap length 64 > 48: truncated
  tb.add(udp_flow(), 48);    // already under the snaplen
  engines::PacketBatch& batch = tb.build();

  TruncateStage stage{48};
  stage.process(batch);

  ASSERT_EQ(batch.views.size(), 2u);
  EXPECT_EQ(batch.views[0].bytes.size(), 48u);
  EXPECT_EQ(batch.views[0].wire_len, 1000u);
  EXPECT_EQ(batch.views[1].bytes.size(), 48u);
  EXPECT_EQ(stage.truncated(), 1u);
  EXPECT_EQ(stage.stats().dropped(), 0u);
}

TEST(AggregateStage, AccumulatesAndSweepsIdleFlows) {
  AggregateStage stage{Nanos::from_millis(10)};
  std::vector<std::pair<net::FlowKey, net::FlowRecord>> exported;
  stage.set_exporter([&exported](const net::FlowKey& flow,
                                 const net::FlowRecord& record) {
    exported.emplace_back(flow, record);
  });

  TestBatch early;
  early.add(udp_flow(), 100, Nanos::from_millis(1));
  early.add(udp_flow(), 150, Nanos::from_millis(2));
  stage.process(early.build());
  EXPECT_EQ(stage.table().size(), 1u);
  EXPECT_EQ(stage.table().total_packets(), 2u);

  // 40 ms later: the idle sweep must have exported the early flow.
  TestBatch late;
  late.add(tcp_flow(), 200, Nanos::from_millis(40));
  stage.process(late.build());

  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].first, udp_flow());
  EXPECT_EQ(exported[0].second.packets, 2u);
  EXPECT_EQ(exported[0].second.bytes, 250u);
  EXPECT_EQ(stage.table().size(), 1u);  // only the live tcp flow remains
}

// --- Pipeline ---

TEST(Pipeline, RunsStagesInOrderWithEarlyOut) {
  Pipeline pipeline;
  pipeline.emplace<FilterStage>("udp");
  auto& sample = pipeline.emplace<SampleStage>(SampleMode::kOneInN, 1);

  TestBatch tb;
  tb.add(tcp_flow(), 100);  // rejected by the filter
  engines::PacketBatch& batch = tb.build();
  pipeline.run(batch);

  EXPECT_TRUE(batch.views.empty());
  // Early-out: the sample stage never saw the emptied batch.
  EXPECT_EQ(sample.stats().batches, 0u);
  EXPECT_EQ(pipeline.batches(), 1u);
  EXPECT_EQ(pipeline.packets_in(), 1u);
  EXPECT_EQ(pipeline.packets_out(), 0u);
  EXPECT_NE(pipeline.find("filter"), nullptr);
  EXPECT_EQ(pipeline.find("aggregate"), nullptr);
}

TEST(Pipeline, BindsPerStageTelemetry) {
  Pipeline pipeline;
  pipeline.emplace<FilterStage>("udp");
  pipeline.emplace<FilterStage>("tcp");  // duplicate name: ordinal suffix
  pipeline.emplace<TruncateStage>(64);

  telemetry::Telemetry telemetry;
  pipeline.bind_telemetry(telemetry, "pipeline.q0");

  EXPECT_TRUE(telemetry.registry.contains("pipeline.q0.batches"));
  EXPECT_TRUE(telemetry.registry.contains("pipeline.q0.filter.dropped"));
  EXPECT_TRUE(telemetry.registry.contains("pipeline.q0.filter2.dropped"));
  EXPECT_TRUE(telemetry.registry.contains("pipeline.q0.truncate.packets_out"));

  TestBatch tb;
  tb.add(udp_flow(), 100);
  tb.add(tcp_flow(), 100);
  pipeline.run(tb.build());
  EXPECT_EQ(telemetry::MetricRegistry::counter_value(
                telemetry.registry.entries().at("pipeline.q0.filter.dropped")),
            1u);
}

// --- spec parser ---

TEST(PipelineSpec, ParsesFullChain) {
  Pipeline pipeline =
      parse_pipeline_spec("filter:tcp port 80|sample:1/8|truncate:96|"
                          "aggregate:30");
  ASSERT_EQ(pipeline.size(), 4u);
  EXPECT_EQ(pipeline.stages()[0]->name(), "filter");
  EXPECT_EQ(pipeline.stages()[1]->name(), "sample");
  EXPECT_EQ(pipeline.stages()[2]->name(), "truncate");
  EXPECT_EQ(pipeline.stages()[3]->name(), "aggregate");

  const auto* sample =
      dynamic_cast<const SampleStage*>(pipeline.stages()[1].get());
  EXPECT_EQ(sample->mode(), SampleMode::kOneInN);
  EXPECT_EQ(sample->n(), 8u);
  const auto* aggregate =
      dynamic_cast<const AggregateStage*>(pipeline.stages()[3].get());
  EXPECT_EQ(aggregate->table().idle_timeout(), Nanos::from_seconds(30));
}

TEST(PipelineSpec, ParsesFlowSamplingAndEmptySpec) {
  Pipeline pipeline = parse_pipeline_spec(" sample:flow/4 ");
  ASSERT_EQ(pipeline.size(), 1u);
  const auto* sample =
      dynamic_cast<const SampleStage*>(pipeline.stages()[0].get());
  EXPECT_EQ(sample->mode(), SampleMode::kPerFlow);
  EXPECT_EQ(sample->n(), 4u);

  EXPECT_TRUE(parse_pipeline_spec("").empty());
  EXPECT_TRUE(parse_pipeline_spec("  |  ").empty());
}

TEST(PipelineSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_pipeline_spec("frobnicate:3"), std::invalid_argument);
  EXPECT_THROW(parse_pipeline_spec("sample:2/4"), std::invalid_argument);
  EXPECT_THROW(parse_pipeline_spec("sample:1/0"), std::invalid_argument);
  EXPECT_THROW(parse_pipeline_spec("sample:1"), std::invalid_argument);
  EXPECT_THROW(parse_pipeline_spec("truncate:zero"), std::invalid_argument);
  EXPECT_THROW(parse_pipeline_spec("filter:"), std::invalid_argument);
  EXPECT_THROW(parse_pipeline_spec("filter:not a ++ filter"),
               std::invalid_argument);
  try {
    const Pipeline unused = parse_pipeline_spec("filter:udp|bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

// --- net::FlowTable ---

TEST(FlowTable, UpdatesMergesAndRanks) {
  net::FlowTable a;
  a.update(udp_flow(), Nanos::from_millis(1), 100);
  a.update(udp_flow(), Nanos::from_millis(3), 100);
  a.update(tcp_flow(), Nanos::from_millis(2), 5000);

  net::FlowTable b;
  b.update(udp_flow(), Nanos::from_millis(0), 50);

  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.total_packets(), 4u);
  EXPECT_EQ(a.total_bytes(), 5250u);
  const net::FlowRecord& merged = a.records().at(udp_flow());
  EXPECT_EQ(merged.packets, 3u);
  EXPECT_EQ(merged.first, Nanos::from_millis(0));  // envelope widened
  EXPECT_EQ(merged.last, Nanos::from_millis(3));

  const auto top = a.top_by_bytes(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, tcp_flow());
}

TEST(FlowTable, CountsUnclassifiedPackets) {
  net::FlowTable table;
  const std::array<std::byte, 20> junk{};  // too short for eth+ip
  engines::CaptureView view;
  view.bytes = std::span<std::byte>(const_cast<std::byte*>(junk.data()),
                                    junk.size());
  view.wire_len = 20;
  EXPECT_FALSE(table.update(view).has_value());
  EXPECT_EQ(table.unclassified(), 1u);
  EXPECT_TRUE(table.empty());
}

TEST(FlowTable, SweepExportsIdleFlowsOnly) {
  net::FlowTable table{Nanos::from_millis(5)};
  table.update(udp_flow(), Nanos::from_millis(0), 10);
  table.update(tcp_flow(), Nanos::from_millis(9), 10);

  std::vector<net::FlowKey> exported;
  const std::size_t swept = table.sweep_idle(
      Nanos::from_millis(10),
      [&exported](const net::FlowKey& flow, const net::FlowRecord&) {
        exported.push_back(flow);
      });
  EXPECT_EQ(swept, 1u);
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0], udp_flow());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.exported(), 1u);
}

// --- fan-out over real engines ---

/// Runs a single-queue experiment in pipeline mode and returns it for
/// inspection.  The caller's factory provides the subscribers.
struct FanOutRun {
  std::unique_ptr<apps::Experiment> experiment;
  apps::ExperimentResult result;
};

FanOutRun run_fanout(
    apps::EngineKind kind, Steering steering,
    std::function<std::vector<Subscriber>(std::uint32_t)> subscribers,
    std::uint64_t packets = 4000, const std::string& spec = "") {
  apps::ExperimentConfig config;
  config.engine.kind = kind;
  config.engine.cells_per_chunk = 16;
  config.engine.chunk_count = 16;
  config.ring_size = 128;  // R must exceed ring_size / M
  config.num_queues = 1;
  config.filter = "";
  config.pipeline = spec;
  config.steering = steering;
  config.subscribers = std::move(subscribers);

  FanOutRun run;
  run.experiment = std::make_unique<apps::Experiment>(std::move(config));

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  Xoshiro256 rng{99};
  trace_config.flows =
      trace::flows_for_queue(rng, 0, 1, 6, /*udp_fraction=*/0.5);
  trace::ConstantRateSource source{trace_config};
  run.result = run.experiment->run(source, Nanos::from_seconds(2));
  return run;
}

TEST(FanOut, BroadcastDeliversEverySubscriberEveryPacket) {
  std::array<std::uint64_t, 3> counts{};
  auto factory = [&counts](std::uint32_t) {
    std::vector<Subscriber> subs;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      subs.push_back({"sub" + std::to_string(i),
                      [&counts, i](SharedBatch batch) {
                        counts[i] += batch.batch().size();
                      },
                      std::nullopt});
    }
    return subs;
  };
  const FanOutRun run = run_fanout(apps::EngineKind::kWirecapAdvanced,
                                   Steering::kBroadcast, factory);

  EXPECT_GT(run.result.delivered, 0u);
  for (const std::uint64_t count : counts) {
    EXPECT_EQ(count, run.result.delivered);
  }
  const FanOut& fanout = run.experiment->fanout(0);
  EXPECT_TRUE(fanout.uses_engine_shares());
  // Two extra shares per offered batch (three receivers).
  EXPECT_EQ(fanout.shares_granted(), fanout.offers() * 3u);
  EXPECT_EQ(fanout.slots_in_flight(), 0u);
}

TEST(FanOut, FlowHashPartitionsWithoutSplittingFlows) {
  std::array<net::FlowTable, 2> tables;
  auto factory = [&tables](std::uint32_t) {
    std::vector<Subscriber> subs;
    for (std::size_t i = 0; i < tables.size(); ++i) {
      subs.push_back({"part" + std::to_string(i),
                      [&tables, i](SharedBatch batch) {
                        for (const engines::CaptureView& view :
                             batch.batch()) {
                          tables[i].update(view);
                        }
                      },
                      std::nullopt});
    }
    return subs;
  };
  const FanOutRun run = run_fanout(apps::EngineKind::kWirecapAdvanced,
                                   Steering::kFlowHash, factory);

  // A partition: packet totals add up, and no flow appears on both
  // subscribers.
  EXPECT_EQ(tables[0].total_packets() + tables[1].total_packets(),
            run.result.delivered);
  for (const auto& [flow, record] : tables[0].records()) {
    EXPECT_EQ(tables[1].records().count(flow), 0u) << flow.to_string();
  }
}

TEST(FanOut, BpfMatchSteersBySubscriberProgram) {
  std::uint64_t udp_count = 0, tcp_count = 0, all_count = 0;
  auto factory = [&](std::uint32_t) {
    std::vector<Subscriber> subs;
    subs.push_back({"udp",
                    [&udp_count](SharedBatch batch) {
                      udp_count += batch.batch().size();
                    },
                    bpf::compile_filter("udp")});
    subs.push_back({"tcp",
                    [&tcp_count](SharedBatch batch) {
                      tcp_count += batch.batch().size();
                    },
                    bpf::compile_filter("tcp")});
    subs.push_back({"all",
                    [&all_count](SharedBatch batch) {
                      all_count += batch.batch().size();
                    },
                    std::nullopt});
    return subs;
  };
  const FanOutRun run = run_fanout(apps::EngineKind::kWirecapAdvanced,
                                   Steering::kBpfMatch, factory);

  EXPECT_EQ(all_count, run.result.delivered);
  EXPECT_EQ(udp_count + tcp_count, run.result.delivered);
  EXPECT_GT(udp_count, 0u);
  EXPECT_GT(tcp_count, 0u);
}

TEST(FanOut, RetainedSharedBatchesKeepChunksAliveUntilRelease) {
  testing::ChunkLifecycleAuditor auditor;
  std::vector<SharedBatch> held;
  std::uint64_t released_packets = 0;

  auto factory = [&](std::uint32_t) {
    std::vector<Subscriber> subs;
    subs.push_back({"spooler",
                    [&held](SharedBatch batch) {
                      held.push_back(std::move(batch));  // retain
                    },
                    std::nullopt});
    subs.push_back({"counter",
                    [&released_packets](SharedBatch batch) {
                      released_packets += batch.batch().size();
                    },
                    std::nullopt});
    return subs;
  };

  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 16;
  config.engine.chunk_count = 64;  // enough headroom to retain everything
  config.ring_size = 128;
  config.num_queues = 1;
  config.steering = Steering::kBroadcast;
  config.subscribers = factory;
  apps::Experiment experiment{std::move(config)};

  auto& wirecap = dynamic_cast<core::WirecapEngine&>(experiment.engine());
  wirecap.set_pool_observer(&auditor);

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 600;
  Xoshiro256 rng{7};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};
  const apps::ExperimentResult result =
      experiment.run(source, Nanos::from_seconds(2));

  EXPECT_GT(result.delivered, 0u);
  EXPECT_EQ(released_packets, result.delivered);
  EXPECT_FALSE(held.empty());

  // The spooler still holds its references: the chunks stay outstanding
  // even though the counter (and the original) released long ago.
  const auto census_before = wirecap.captured_census(0);
  EXPECT_GT(census_before.outstanding, 0u);

  std::uint64_t held_packets = 0;
  for (SharedBatch& batch : held) held_packets += batch.batch().size();
  EXPECT_EQ(held_packets, result.delivered);

  held.clear();  // drop the last references
  const auto census_after = wirecap.captured_census(0);
  EXPECT_EQ(census_after.outstanding, 0u);

  // Kernel-side share counts fully settled.
  for (std::uint32_t c = 0; c < 64; ++c) {
    EXPECT_EQ(wirecap.pool(0).extra_shares(c), 0u) << "chunk " << c;
  }
  auditor.check_pool(wirecap.pool(0));
  EXPECT_TRUE(auditor.clean()) << auditor.violations().front();
}

TEST(FanOut, SlotFallbackForEnginesWithoutShares) {
  std::vector<SharedBatch> held;
  std::uint64_t count = 0;
  auto factory = [&](std::uint32_t) {
    std::vector<Subscriber> subs;
    subs.push_back({"hold",
                    [&held](SharedBatch batch) {
                      held.push_back(std::move(batch));
                    },
                    std::nullopt});
    subs.push_back({"count",
                    [&count](SharedBatch batch) {
                      count += batch.batch().size();
                    },
                    std::nullopt});
    return subs;
  };
  FanOutRun run = run_fanout(apps::EngineKind::kPsioe, Steering::kBroadcast,
                             factory, /*packets=*/1000);

  FanOut& fanout = run.experiment->fanout(0);
  EXPECT_FALSE(fanout.uses_engine_shares());
  EXPECT_EQ(fanout.shares_granted(), 0u);
  EXPECT_EQ(count, run.result.delivered);
  // Every offered batch is parked in a slot until the holder lets go.
  EXPECT_EQ(fanout.slots_in_flight(), held.size());
  held.clear();
  EXPECT_EQ(fanout.slots_in_flight(), 0u);
  EXPECT_EQ(fanout.releases(), fanout.offers() * 2u);
}

TEST(FanOut, CompactedToZeroBatchesStillRelease) {
  // A pipeline that drops everything: the fan-out must settle the refs
  // (no subscriber ever fires), and no chunk may leak.
  std::uint64_t seen = 0;
  auto factory = [&seen](std::uint32_t) {
    std::vector<Subscriber> subs;
    subs.push_back({"never",
                    [&seen](SharedBatch batch) {
                      seen += batch.batch().size();
                    },
                    std::nullopt});
    return subs;
  };
  FanOutRun run =
      run_fanout(apps::EngineKind::kWirecapAdvanced, Steering::kBroadcast,
                 factory, /*packets=*/2000, /*spec=*/"filter:tcp port 9999");

  EXPECT_EQ(seen, 0u);
  EXPECT_GT(run.result.delivered, 0u);
  const FanOut& fanout = run.experiment->fanout(0);
  EXPECT_EQ(fanout.unclaimed(), fanout.offers());
  auto& wirecap =
      dynamic_cast<core::WirecapEngine&>(run.experiment->engine());
  EXPECT_EQ(wirecap.captured_census(0).outstanding, 0u);
}

// --- shared engine vs dedicated engines: identical per-app results ---

struct AppDigest {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t mix = 0;

  void fold(const engines::CaptureView& view) {
    ++packets;
    bytes += view.wire_len;
    std::uint64_t h = view.seq * 0x9E3779B97F4A7C15ULL + view.wire_len;
    for (const std::byte b : view.bytes.first(
             std::min<std::size_t>(view.bytes.size(), 16))) {
      h = h * 1099511628211ULL + static_cast<std::uint64_t>(b);
    }
    mix ^= h;
  }
  bool operator==(const AppDigest&) const = default;
};

TEST(SharedEngine, ByteIdenticalResultsVsDedicatedEngines) {
  constexpr std::uint64_t kPackets = 8000;
  const auto make_source = [] {
    trace::ConstantRateConfig trace_config;
    trace_config.packet_count = kPackets;
    Xoshiro256 rng{31};
    trace_config.flows =
        trace::flows_for_queue(rng, 0, 1, 8, /*udp_fraction=*/0.4);
    return trace::ConstantRateSource{trace_config};
  };
  const Nanos horizon = Nanos::from_seconds(2);

  // One engine, two zero-copy subscriptions (the ids_monitor layout).
  AppDigest shared_ids, shared_flows;
  {
    apps::ExperimentConfig config;
    config.engine.kind = apps::EngineKind::kWirecapAdvanced;
    config.num_queues = 1;
    config.steering = Steering::kBroadcast;
    config.subscribers = [&](std::uint32_t) {
      std::vector<Subscriber> subs;
      subs.push_back({"ids",
                      [&shared_ids](SharedBatch batch) {
                        for (const auto& view : batch.batch()) {
                          shared_ids.fold(view);
                        }
                      },
                      std::nullopt});
      subs.push_back({"flows",
                      [&shared_flows](SharedBatch batch) {
                        for (const auto& view : batch.batch()) {
                          shared_flows.fold(view);
                        }
                      },
                      std::nullopt});
      return subs;
    };
    apps::Experiment experiment{std::move(config)};
    auto source = make_source();
    const auto result = experiment.run(source, horizon);
    ASSERT_EQ(result.capture_dropped + result.delivery_dropped, 0u)
        << "load must stay below capacity for the equality to be exact";
    ASSERT_EQ(result.delivered, kPackets);
  }

  // The same apps, each owning a dedicated engine over the same trace.
  const auto dedicated_run = [&] {
    AppDigest digest;
    apps::ExperimentConfig config;
    config.engine.kind = apps::EngineKind::kWirecapAdvanced;
    config.num_queues = 1;
    config.filter = "";
    config.execute_filter = false;
    apps::Experiment experiment{std::move(config)};
    experiment.handler(0).set_packet_hook(
        [&digest](const engines::CaptureView& view) { digest.fold(view); });
    auto source = make_source();
    const auto result = experiment.run(source, horizon);
    EXPECT_EQ(result.capture_dropped + result.delivery_dropped, 0u);
    return digest;
  };
  const AppDigest dedicated_ids = dedicated_run();
  const AppDigest dedicated_flows = dedicated_run();

  EXPECT_EQ(shared_ids, dedicated_ids);
  EXPECT_EQ(shared_flows, dedicated_flows);
  EXPECT_EQ(shared_ids, shared_flows);  // broadcast: same stream
}

// --- the 100-seed fan-out fault soak ---

/// One seeded fan-out adversity run: small pool geometry, random
/// steering mode, random stage chain, subscribers that randomly retain
/// SharedBatches and release them on a seeded schedule, all under the
/// lifecycle auditor with periodic conservation checks.
std::vector<std::string> run_fanout_soak_seed(std::uint64_t seed) {
  constexpr std::uint32_t kCells = 8;
  constexpr std::uint32_t kChunks = 12;
  Xoshiro256 rng{seed};

  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 1;
  nic_config.rx_ring_size = 32;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};

  engines::EngineConfig engine_config;
  engine_config.cells_per_chunk = kCells;
  engine_config.chunk_count = kChunks;
  auto engine = engines::make_engine("WireCAP-A", nic, engine_config);
  auto& wirecap = dynamic_cast<core::WirecapEngine&>(*engine);

  testing::AuditorConfig auditor_config;
  auditor_config.throw_on_violation = false;
  testing::ChunkLifecycleAuditor auditor{auditor_config};
  wirecap.set_pool_observer(&auditor);

  const auto steering = static_cast<Steering>(rng.next() % 3);
  FanOut fanout{*engine, steering};

  struct Held {
    SharedBatch batch;
    Nanos release_at;
  };
  std::vector<Held> held;
  std::uint64_t received = 0;

  for (int i = 0; i < 3; ++i) {
    std::optional<bpf::Program> match;
    if (steering == Steering::kBpfMatch && i < 2) {
      match = bpf::compile_filter(i == 0 ? "udp" : "tcp");
    }
    fanout.subscribe(
        {"sub" + std::to_string(i),
         [&rng, &held, &received, &scheduler](SharedBatch batch) {
           received += batch.batch().size();
           if (rng.next() % 100 < 45) {  // retain for a random while
             const Nanos release_at =
                 scheduler.now() +
                 Nanos{static_cast<std::int64_t>(rng.next() % 200'000)};
             held.push_back(Held{std::move(batch), release_at});
           }  // else: released at scope exit
         },
         std::move(match)});
  }

  // Random stage chain in front of the fan-out.
  Pipeline pipeline;
  if (rng.next() % 2 == 0) pipeline.emplace<SampleStage>(SampleMode::kOneInN, 2);
  if (rng.next() % 2 == 0) pipeline.emplace<TruncateStage>(60);

  sim::CostModel costs;
  sim::SimCore core{scheduler, 0};
  PipelineRunnerConfig runner_config;
  runner_config.batch_packets = kCells;
  PipelineRunner runner{core,          *engine,       0, std::move(pipeline),
                       fanout,        runner_config, costs};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 1200 + rng.next() % 800;
  Xoshiro256 flow_rng{seed ^ 0xABCDEF};
  trace_config.flows =
      trace::flows_for_queue(flow_rng, 0, 1, 4, /*udp_fraction=*/0.5);
  trace::ConstantRateSource source{trace_config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();

  // Periodic tick: release due batches, audit conservation.
  const Nanos horizon = Nanos::from_millis(2);
  std::function<void()> tick = [&] {
    const Nanos now = scheduler.now();
    std::erase_if(held, [now](Held& h) {
      if (h.release_at <= now) {
        h.batch.release();
        return true;
      }
      return false;
    });
    // Quiesced between events: the conservation law must hold, shares
    // included.
    auditor.check_pool(wirecap.pool(0));
    auditor.check_conservation(wirecap, 0);
    if (scheduler.now() < horizon + Nanos::from_millis(1)) {
      scheduler.schedule_after(Nanos::from_micros(25), tick);
    }
  };
  scheduler.schedule_after(Nanos::from_micros(25), tick);
  scheduler.run_until(horizon + Nanos::from_millis(1));

  // Final settlement: drop every retained reference, then verify the
  // books: nothing outstanding, no kernel-side shares left, auditor
  // clean.
  for (Held& h : held) h.batch.release();
  held.clear();
  scheduler.run_until(scheduler.now() + Nanos::from_millis(1));

  auditor.check_pool(wirecap.pool(0));
  auditor.check_conservation(wirecap, 0);

  std::vector<std::string> problems(auditor.violations());
  const auto census = wirecap.captured_census(0);
  if (census.outstanding != 0) {
    problems.push_back("outstanding chunks after full release");
  }
  for (std::uint32_t c = 0; c < kChunks; ++c) {
    if (wirecap.pool(0).extra_shares(c) != 0) {
      problems.push_back("leftover shares on chunk " + std::to_string(c));
    }
  }
  if (fanout.slots_in_flight() != 0) {
    problems.push_back("fan-out slots still in flight");
  }
  if (received == 0) problems.push_back("no traffic reached subscribers");
  return problems;
}

TEST(FanOutSoak, RefcountConservationAcross100Seeds) {
  std::uint32_t dirty = 0;
  std::vector<std::string> first_failures;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const std::vector<std::string> problems = run_fanout_soak_seed(seed);
    if (!problems.empty()) {
      ++dirty;
      if (first_failures.size() < 5) {
        first_failures.push_back("seed " + std::to_string(seed) + ": " +
                                 problems.front());
      }
    }
  }
  std::string summary;
  for (const std::string& failure : first_failures) {
    summary += failure + "\n";
  }
  EXPECT_EQ(dirty, 0u) << summary;
}

}  // namespace
}  // namespace wirecap::pipeline
