// Fan-out overhead benchmark: what does serving THREE zero-copy
// subscribers from one capture engine cost over serving one?
//
// Both sides run the identical simulated workload — a single-queue
// WireCAP-A capture of `kPackets` 64-byte frames with a PipelineRunner
// feeding a broadcast FanOut — and differ only in subscriber count.
// The per-chunk refcount means no packet memory is ever copied for the
// extra subscribers; what remains is the steering pass, the per-
// subscriber view vectors, and the share accounting.  That machinery
// runs on the host, so the honest measure is host wall-clock of the
// whole simulation, best-of-`kRepeats` to shed scheduler noise.
//
// Emits BENCH_pipeline.json (override with --out=FILE).  CI gates on
// fanout3 <= 1.35x single.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/harness.hpp"
#include "bench/bench_util.hpp"
#include "pipeline/fanout.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::bench {
namespace {

constexpr std::uint64_t kPackets = 200'000;
constexpr int kRepeats = 3;
constexpr double kRatioTarget = 1.35;

struct RunResult {
  double wall_ns = 0.0;            // best-of-repeats host wall-clock
  std::uint64_t delivered = 0;     // packets the runner handed to the fan-out
  std::uint64_t sub_packets = 0;   // packets per subscriber (broadcast: equal)
  std::uint64_t shares_granted = 0;
};

/// One timed simulation: capture kPackets through a PipelineRunner into
/// a broadcast FanOut with `subscriber_count` trivial consumers.
RunResult run_once(std::size_t subscriber_count) {
  std::vector<std::uint64_t> counts(subscriber_count, 0);
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 256;
  config.engine.chunk_count = 100;
  config.num_queues = 1;
  config.x = 0;
  config.filter = "";
  config.steering = pipeline::Steering::kBroadcast;
  config.subscribers = [&counts](std::uint32_t) {
    std::vector<pipeline::Subscriber> subs;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      subs.push_back({"sub" + std::to_string(i),
                      [&counts, i](pipeline::SharedBatch batch) {
                        counts[i] += batch.batch().size();
                      },
                      std::nullopt});
    }
    return subs;
  };

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = kPackets;
  trace_config.frame_bytes = 64;
  trace_config.link_bits_per_second = 0.5 * 10e9;  // below capacity
  Xoshiro256 rng{0xFA11};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};

  const auto start = std::chrono::steady_clock::now();
  apps::Experiment experiment{std::move(config)};
  trace::ConstantRateSource source{trace_config};
  const Nanos horizon = Nanos::from_seconds(
      static_cast<double>(kPackets) / source.rate().per_second() + 0.05);
  const apps::ExperimentResult result = experiment.run(source, horizon);
  const auto stop = std::chrono::steady_clock::now();

  RunResult run;
  run.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  run.delivered = result.delivered;
  run.sub_packets = counts.front();
  run.shares_granted = experiment.fanout(0).shares_granted();
  for (const std::uint64_t count : counts) {
    if (count != run.sub_packets) {
      std::fprintf(stderr, "bench_pipeline: broadcast subscribers disagree "
                           "(%llu vs %llu)\n",
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(run.sub_packets));
      std::exit(1);
    }
  }
  return run;
}

RunResult best_of(std::size_t subscriber_count) {
  RunResult best;
  for (int i = 0; i < kRepeats; ++i) {
    const RunResult run = run_once(subscriber_count);
    if (run.delivered != kPackets || run.sub_packets != kPackets) {
      std::fprintf(stderr, "bench_pipeline: lossy run (%llu delivered, "
                           "%llu per sub) — below-capacity load expected "
                           "lossless\n",
                   static_cast<unsigned long long>(run.delivered),
                   static_cast<unsigned long long>(run.sub_packets));
      std::exit(1);
    }
    if (best.wall_ns == 0.0 || run.wall_ns < best.wall_ns) best = run;
  }
  return best;
}

void write_json(const std::string& path, const RunResult& single,
                const RunResult& fanout3, double ratio) {
  std::ofstream out{path};
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"benchmark\": \"pipeline_fanout_overhead\",\n"
      "  \"packets\": %llu,\n"
      "  \"repeats\": %d,\n"
      "  \"single_wall_ns\": %.0f,\n"
      "  \"fanout3_wall_ns\": %.0f,\n"
      "  \"ratio\": %.4f,\n"
      "  \"ratio_target\": %.2f,\n"
      "  \"single_delivered\": %llu,\n"
      "  \"fanout3_delivered\": %llu,\n"
      "  \"fanout3_packets_per_subscriber\": %llu,\n"
      "  \"fanout3_shares_granted\": %llu\n"
      "}\n",
      static_cast<unsigned long long>(kPackets), kRepeats, single.wall_ns,
      fanout3.wall_ns, ratio, kRatioTarget,
      static_cast<unsigned long long>(single.delivered),
      static_cast<unsigned long long>(fanout3.delivered),
      static_cast<unsigned long long>(fanout3.sub_packets),
      static_cast<unsigned long long>(fanout3.shares_granted));
  out << buf;
}

int run(const std::string& out_path) {
  title("fan-out overhead: 3 zero-copy subscribers vs 1, same capture");

  // Warm-up run outside the timings (page cache, allocator pools).
  static_cast<void>(run_once(1));

  const RunResult single = best_of(1);
  const RunResult fanout3 = best_of(3);
  const double ratio = fanout3.wall_ns / single.wall_ns;

  std::printf("  %-22s %12s %14s %14s\n", "configuration", "packets",
              "wall-clock", "per packet");
  std::printf("  %-22s %12llu %12.1fms %12.1fns\n", "single subscriber",
              static_cast<unsigned long long>(single.delivered),
              single.wall_ns / 1e6,
              single.wall_ns / static_cast<double>(kPackets));
  std::printf("  %-22s %12llu %12.1fms %12.1fns\n", "3-way broadcast",
              static_cast<unsigned long long>(fanout3.delivered),
              fanout3.wall_ns / 1e6,
              fanout3.wall_ns / static_cast<double>(kPackets));
  std::printf("  ratio: %.3fx (gate: <= %.2fx); shares granted: %llu\n",
              ratio, kRatioTarget,
              static_cast<unsigned long long>(fanout3.shares_granted));
  note("every subscriber's views alias the same chunks — the delta is "
       "steering, per-subscriber view vectors, and share accounting");

  write_json(out_path, single, fanout3, ratio);
  std::printf("  -> %s\n", out_path.c_str());
  return ratio <= kRatioTarget ? 0 : 1;
}

}  // namespace
}  // namespace wirecap::bench

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = std::string(arg.substr(6));
  }
  return wirecap::bench::run(out_path);
}
