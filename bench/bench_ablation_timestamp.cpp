// Ablation: timestamping accuracy under batching (§5c).
//
// "WireCAP uses batch processing to reduce packet capture costs.
// Applying this type of technique may entail side effects, such as
// latency increases and inaccurate time-stamping."
//
// Software-only engines must timestamp when the *application* first
// sees the packet; the error vs the true arrival time is exactly the
// delivery latency, which grows with batching.  This experiment
// measures that error distribution per engine at a moderate load
// (50 kp/s, x=50) — WireCAP's chunk granularity (M packets per capture)
// buys throughput at the cost of timestamp accuracy, the paper's
// stated trade-off.  The hardware-timestamp column (what our NIC
// writeback carries) is exact by construction.
#include <cstdio>
#include <memory>

#include "apps/pkt_handler.hpp"
#include "bench/bench_util.hpp"
#include "common/stats.hpp"

namespace {

using namespace wirecap;

struct LatencyResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t packets = 0;
};

LatencyResult run_latency(const apps::EngineParams& params) {
  apps::ExperimentConfig config;
  config.engine = params;
  config.num_queues = 1;
  config.x = 50;
  apps::Experiment experiment{config};

  Log2Histogram latency_ns;
  experiment.handler(0).set_packet_hook(
      [&latency_ns, &experiment](const engines::CaptureView& view) {
        const Nanos now = experiment.scheduler().now();
        const std::int64_t error = (now - view.timestamp).count();
        latency_ns.record(static_cast<std::uint64_t>(std::max<std::int64_t>(
            error, 0)));
      });

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 100'000;
  trace_config.link_bits_per_second = 50e3 * 84 * 8;  // 50 kp/s
  Xoshiro256 rng{0x7157};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};
  experiment.run(source, Nanos::from_seconds(4));

  LatencyResult result;
  result.p50_us = latency_ns.quantile(0.5) / 1000.0;
  result.p99_us = latency_ns.quantile(0.99) / 1000.0;
  result.packets = latency_ns.count();
  return result;
}

int run() {
  bench::title("Ablation: software-timestamp error vs batching (§5c)");
  bench::note("50 kp/s, x=50; error = application-visible time minus true "
              "arrival");

  std::printf("%-24s %12s %12s %10s\n", "engine", "p50 (us)", "p99 (us)",
              "packets");
  std::vector<apps::EngineParams> engines;
  apps::EngineParams params;
  params.kind = apps::EngineKind::kDna;
  engines.push_back(params);
  params.kind = apps::EngineKind::kPfRing;
  engines.push_back(params);
  params.kind = apps::EngineKind::kWirecapBasic;
  params.cells_per_chunk = 64;
  params.chunk_count = 400;
  engines.push_back(params);
  params.cells_per_chunk = 256;
  params.chunk_count = 100;
  engines.push_back(params);
  params.cells_per_chunk = 1024;
  params.chunk_count = 25;
  engines.push_back(params);

  for (const auto& engine_params : engines) {
    const auto result = run_latency(engine_params);
    std::printf("%-24s %12.1f %12.1f %10llu\n",
                engine_params.label().c_str(), result.p50_us, result.p99_us,
                static_cast<unsigned long long>(result.packets));
  }

  std::printf(
      "\nreading: per-packet engines (DNA) deliver within microseconds;\n"
      "WireCAP's error grows with the chunk size M — a full chunk must\n"
      "fill (M / arrival-rate) or the 1 ms rescue timeout must fire before\n"
      "the application can see a packet.  The NIC hardware timestamp the\n"
      "driver records in each cell is exact regardless (the paper's\n"
      "recommended mitigation).\n");
  return 0;
}

}  // namespace

int main() { return run(); }
