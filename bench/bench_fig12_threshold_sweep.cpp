// Figure 12 — "WireCAP packet capture in the advanced mode (R and M are
// fixed, T is varied)".
//
// The offloading percentage threshold T is swept over 60/70/80/90% with
// WireCAP-A-(256,100) on the border trace.  Paper: "WireCAP performs
// better when T is set to a relatively lower value" — lower T offloads
// sooner and drops less.
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

int run() {
  bench::title("Figure 12: offloading threshold sweep (WireCAP-A-(256,100))");

  std::printf("%-26s %10s %10s %10s %12s\n", "overall drop rate", "4 queues",
              "5 queues", "6 queues", "offloaded");
  for (const double t : {0.6, 0.7, 0.8, 0.9}) {
    apps::EngineParams params;
    params.kind = apps::EngineKind::kWirecapAdvanced;
    params.cells_per_chunk = 256;
    params.chunk_count = 100;
    params.offload_threshold = t;
    std::printf("WireCAP-A-(256,100,%2.0f%%)  ", t * 100);
    std::uint64_t offloaded = 0;
    for (const std::uint32_t queues : {4u, 5u, 6u}) {
      const auto result = bench::run_border_trace(params, queues, 16.0);
      std::printf(" %10s", bench::percent(result.drop_rate()).c_str());
      offloaded = result.offloaded_chunks;
    }
    std::printf(" %12llu\n", static_cast<unsigned long long>(offloaded));
  }

  std::printf("\npaper shape: drop rate rises with T (60%% best, 90%% worst)\n");
  return 0;
}

}  // namespace

int main() { return run(); }
