// Ablation: the §2.3 steering alternatives.
//
// "A first approach is to apply a round-robin traffic steering mechanism
// at the NIC level to distribute the traffic evenly across the queues.
// However, this approach cannot preserve the application logic because
// packets belonging to the same flow can be delivered to different
// applications."
//
// This experiment runs the border trace through three steering policies
// with DNA capture on six queues (two "applications" own three queues
// each) and measures both the drop rate AND the application-logic
// violation: flows whose packets were delivered to more than one
// application.
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "apps/pkt_handler.hpp"
#include "bench/bench_util.hpp"
#include "engines/baselines.hpp"
#include "net/rss.hpp"
#include "nic/steering.hpp"
#include "nic/wire.hpp"
#include "trace/border_router.hpp"

namespace {

using namespace wirecap;

struct SteeringResult {
  double drop_rate = 0.0;
  std::uint64_t flows_total = 0;
  std::uint64_t flows_split_across_apps = 0;
};

SteeringResult run_steering(std::unique_ptr<nic::SteeringPolicy> policy) {
  constexpr std::uint32_t kQueues = 6;
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = kQueues;
  nic::MultiQueueNic nic{scheduler, bus, nic_config, std::move(policy)};
  engines::Type2Engine engine{nic, engines::dna_config()};

  // Application A owns queues 0-2, application B owns queues 3-5.
  std::unordered_map<net::FlowKey, std::uint8_t> flow_apps;  // bitmask
  const sim::CostModel costs;
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::PktHandler>> handlers;
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
    apps::PktHandlerConfig config;
    config.x = 300;
    config.filter = "";
    config.execute_filter = false;
    handlers.push_back(std::make_unique<apps::PktHandler>(
        *cores.back(), engine, q, config, costs));
    const std::uint8_t app_bit = q < 3 ? 1 : 2;
    handlers.back()->set_packet_hook(
        [&flow_apps, app_bit](const engines::CaptureView& view) {
          if (const auto flow = net::parse_flow(view.bytes)) {
            flow_apps[*flow] |= app_bit;
          }
        });
  }

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = 8.0;
  auto source = trace::make_border_router_source(trace_config);
  nic::TrafficInjector injector{scheduler, *source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(trace_config.duration_s + 5));

  SteeringResult result;
  result.drop_rate = static_cast<double>(nic.total_rx_dropped()) /
                     static_cast<double>(injector.injected());
  result.flows_total = flow_apps.size();
  for (const auto& [flow, apps_seen] : flow_apps) {
    if (apps_seen == 3) ++result.flows_split_across_apps;
  }
  return result;
}

int run() {
  bench::title("Ablation: NIC steering policies (§2.3), DNA, 2 apps x 3 "
               "queues, x=300");

  struct Row {
    const char* name;
    SteeringResult result;
  };
  std::vector<Row> rows;
  rows.push_back({"RSS (per-flow)", run_steering(nic::make_rss_steering())});
  rows.push_back({"round-robin",
                  run_steering(std::make_unique<nic::RoundRobinSteering>())});
  auto fdir = std::make_unique<nic::FlowDirectorSteering>();
  rows.push_back({"Flow Director (RSS miss)", run_steering(std::move(fdir))});

  std::printf("%-26s %10s %14s %18s\n", "policy", "drop rate", "flows seen",
              "split across apps");
  for (const auto& row : rows) {
    std::printf("%-26s %10s %14llu %15llu\n", row.name,
                bench::percent(row.result.drop_rate).c_str(),
                static_cast<unsigned long long>(row.result.flows_total),
                static_cast<unsigned long long>(
                    row.result.flows_split_across_apps));
  }
  std::printf(
      "\nreading: round-robin spreads load (lower drops) but splits nearly\n"
      "every multi-packet flow across both applications — the application-\n"
      "logic violation that rules it out; per-flow RSS keeps flows whole\n"
      "and WireCAP fixes its imbalance at the capture layer instead\n");
  return 0;
}

}  // namespace

int main() { return run(); }
