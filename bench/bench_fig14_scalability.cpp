// Figure 14 — "Scalability experiment".
//
// Methodology (§4): NIC1 and NIC2 each receive 64-byte or 100-byte
// packets at wire rate from separate generators; each NIC is configured
// with n receive queues (n = 1..6); a multi_pkt_handler per NIC captures
// with x=0 and forwards every packet out the *other* NIC; receivers
// behind each NIC count what arrives.  Both NICs share one I/O bus.
//
// Paper findings reproduced here:
//   * at 100-byte frames (~20 Mp/s aggregate) nobody drops;
//   * at 64-byte frames (~30 Mp/s aggregate) the bus saturates and both
//     DNA and WireCAP drop; WireCAP pays extra bus transactions for its
//     chunk management so it drops slightly more, especially at
//     queues/NIC = 1;
//   * WireCAP-A-(256,500) degrades at 5-6 queues/NIC: very large ring
//     buffer pools incur page-table pressure ("a big-memory application
//     pays a high cost for page-based virtual memory").
//
// Scale note: the paper sends 1e9 packets per NIC; we send 1e6 per NIC —
// drop rates are rate-driven and scale-invariant here.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/pkt_handler.hpp"
#include "bench/bench_util.hpp"
#include "core/wirecap_engine.hpp"
#include "engines/baselines.hpp"
#include "nic/wire.hpp"

namespace {

using namespace wirecap;

constexpr std::uint64_t kPacketsPerNic = 1'000'000;
constexpr double kBusTransactionsPerSecond = 52e6;

struct EngineSpec {
  std::string label;
  bool wirecap = false;
  std::uint32_t m = 256;
  std::uint32_t r = 100;
};

double run_one(const EngineSpec& spec, std::uint32_t queues_per_nic,
               std::uint32_t frame_bytes) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler, Rate{kBusTransactionsPerSecond}};
  const sim::CostModel costs;

  // WireCAP's extra per-packet bus traffic: chunk management plus
  // page-table pressure proportional to total pool memory.
  double rx_transactions = 1.0;
  if (spec.wirecap) {
    const double pool_mib = 2.0 * queues_per_nic * spec.m * spec.r * 2048.0 /
                            (1024.0 * 1024.0);
    rx_transactions += costs.wirecap_extra_transactions_per_packet +
                       costs.memory_pressure_transactions_per_mib * pool_mib;
  }

  const auto make_nic = [&](std::uint32_t id) {
    nic::NicConfig config;
    config.nic_id = id;
    config.num_rx_queues = queues_per_nic;
    config.num_tx_queues = queues_per_nic;
    config.rx_transactions_per_packet = rx_transactions;
    return std::make_unique<nic::MultiQueueNic>(scheduler, bus, config);
  };
  auto nic1 = make_nic(1);
  auto nic2 = make_nic(2);

  std::unique_ptr<engines::CaptureEngine> engine1, engine2;
  if (spec.wirecap) {
    core::WirecapConfig config;
    config.cells_per_chunk = spec.m;
    config.chunk_count = spec.r;
    config.offload_threshold = 0.6;
    engine1 = std::make_unique<core::WirecapEngine>(scheduler, *nic1, config,
                                                    costs);
    engine2 = std::make_unique<core::WirecapEngine>(scheduler, *nic2, config,
                                                    costs);
  } else {
    engine1 = std::make_unique<engines::Type2Engine>(*nic1,
                                                     engines::dna_config());
    engine2 = std::make_unique<engines::Type2Engine>(*nic2,
                                                     engines::dna_config());
  }

  // multi_pkt_handler per NIC: one thread per queue, x=0, forwarding out
  // the other NIC.
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::PktHandler>> handlers;
  const auto spawn = [&](engines::CaptureEngine& engine,
                         nic::MultiQueueNic& out, std::uint32_t core_base) {
    for (std::uint32_t q = 0; q < queues_per_nic; ++q) {
      cores.push_back(
          std::make_unique<sim::SimCore>(scheduler, core_base + q));
      apps::PktHandlerConfig config;
      config.x = 0;
      config.filter = "";
      config.execute_filter = false;
      config.forward = apps::ForwardTarget{&out, q};
      handlers.push_back(std::make_unique<apps::PktHandler>(
          *cores.back(), engine, q, config, costs));
    }
  };
  spawn(*engine1, *nic2, 0);
  spawn(*engine2, *nic1, 32);

  if (spec.wirecap) {
    std::vector<std::uint32_t> group;
    for (std::uint32_t q = 0; q < queues_per_nic; ++q) group.push_back(q);
    dynamic_cast<core::WirecapEngine*>(engine1.get())->set_buddy_group(group);
    dynamic_cast<core::WirecapEngine*>(engine2.get())->set_buddy_group(group);
  }

  // One flow per queue, engineered onto its queue by the real RSS hash,
  // so each generator loads all n queues evenly at wire rate.
  const auto make_source = [&](std::uint64_t seed) {
    trace::ConstantRateConfig config;
    config.packet_count = kPacketsPerNic;
    config.frame_bytes = frame_bytes;
    Xoshiro256 rng{seed};
    for (std::uint32_t q = 0; q < queues_per_nic; ++q) {
      config.flows.push_back(trace::flow_for_queue(rng, q, queues_per_nic));
    }
    return std::make_unique<trace::ConstantRateSource>(config);
  };
  auto source1 = make_source(0xF14A);
  auto source2 = make_source(0xF14B);

  // Receivers behind each NIC count arrivals.
  std::uint64_t received = 0;
  nic1->set_egress([&](const net::WirePacket&) { ++received; });
  nic2->set_egress([&](const net::WirePacket&) { ++received; });

  nic::TrafficInjector injector1{scheduler, *source1, *nic1};
  nic::TrafficInjector injector2{scheduler, *source2, *nic2};
  injector1.start();
  injector2.start();

  const double send_seconds =
      static_cast<double>(kPacketsPerNic) /
      ethernet::wire_rate(10e9, frame_bytes).per_second();
  scheduler.run_until(Nanos::from_seconds(send_seconds + 2.0));

  const std::uint64_t sent = injector1.injected() + injector2.injected();
  return sent ? static_cast<double>(sent - received) /
                    static_cast<double>(sent)
              : 0.0;
}

int run() {
  bench::title("Figure 14: scalability (2 NICs, shared bus, forwarding)");
  bench::note("bus model: 52M transactions/s; RX DMA + TX DMA each cost 1");
  bench::note("1e6 packets/NIC (paper: 1e9; drop rates are rate-driven)");

  const std::vector<EngineSpec> specs{
      {"DNA", false},
      {"WireCAP-A-(256,100,60%)", true, 256, 100},
      {"WireCAP-A-(256,500,60%)", true, 256, 500},
  };

  for (const std::uint32_t frame : {64u, 100u}) {
    std::printf("\n-- %u-byte frames (aggregate %.1f Mp/s) --\n", frame,
                2 * ethernet::wire_rate(10e9, frame).per_second() / 1e6);
    std::printf("%-26s", "queues/NIC");
    for (std::uint32_t q = 1; q <= 6; ++q) std::printf(" %8u", q);
    std::printf("\n");
    for (const auto& spec : specs) {
      std::printf("%-26s", spec.label.c_str());
      for (std::uint32_t q = 1; q <= 6; ++q) {
        std::printf(" %8s", bench::percent(run_one(spec, q, frame)).c_str());
      }
      std::printf("\n");
    }
  }

  std::printf("\npaper shape: 0%% at 100B; at 64B the bus saturates — "
              "WireCAP > DNA at 1 queue, similar at more queues, and "
              "WireCAP-A-(256,500) degrades at 5-6 queues (memory "
              "pressure)\n");
  return 0;
}

}  // namespace

int main() { return run(); }
