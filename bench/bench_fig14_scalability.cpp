// Figure 14 — "Scalability experiment".
//
// Methodology (§4): NIC1 and NIC2 each receive 64-byte or 100-byte
// packets at wire rate from separate generators; each NIC is configured
// with n receive queues (n = 1..6); a multi_pkt_handler per NIC captures
// with x=0 and forwards every packet out the *other* NIC; receivers
// behind each NIC count what arrives.  Both NICs share one I/O bus.
//
// Paper findings reproduced here:
//   * at 100-byte frames (~20 Mp/s aggregate) nobody drops;
//   * at 64-byte frames (~30 Mp/s aggregate) the bus saturates and both
//     DNA and WireCAP drop; WireCAP pays extra bus transactions for its
//     chunk management so it drops slightly more, especially at
//     queues/NIC = 1;
//   * WireCAP-A-(256,500) degrades at 5-6 queues/NIC: very large ring
//     buffer pools incur page-table pressure ("a big-memory application
//     pays a high cost for page-based virtual memory").
//
// Scale note: the paper sends 1e9 packets per NIC; we send 1e6 per NIC —
// drop rates are rate-driven and scale-invariant here.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/pkt_handler.hpp"
#include "bench/bench_util.hpp"
#include "core/wirecap_engine.hpp"
#include "engines/baselines.hpp"
#include "engines/tenant.hpp"
#include "nic/wire.hpp"

namespace {

using namespace wirecap;

constexpr std::uint64_t kPacketsPerNic = 1'000'000;
constexpr double kBusTransactionsPerSecond = 52e6;

struct EngineSpec {
  std::string label;
  bool wirecap = false;
  std::uint32_t m = 256;
  std::uint32_t r = 100;
};

double run_one(const EngineSpec& spec, std::uint32_t queues_per_nic,
               std::uint32_t frame_bytes, std::uint32_t tenants = 1) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler, Rate{kBusTransactionsPerSecond}};
  const sim::CostModel costs;

  // WireCAP's extra per-packet bus traffic: chunk management plus
  // page-table pressure proportional to total pool memory.
  double rx_transactions = 1.0;
  if (spec.wirecap) {
    const double pool_mib = 2.0 * queues_per_nic * spec.m * spec.r * 2048.0 /
                            (1024.0 * 1024.0);
    rx_transactions += costs.wirecap_extra_transactions_per_packet +
                       costs.memory_pressure_transactions_per_mib * pool_mib;
  }

  const auto make_nic = [&](std::uint32_t id) {
    nic::NicConfig config;
    config.nic_id = id;
    config.num_rx_queues = queues_per_nic;
    config.num_tx_queues = queues_per_nic;
    config.rx_transactions_per_packet = rx_transactions;
    return std::make_unique<nic::MultiQueueNic>(scheduler, bus, config);
  };
  auto nic1 = make_nic(1);
  auto nic2 = make_nic(2);

  std::unique_ptr<engines::CaptureEngine> engine1, engine2;
  if (spec.wirecap) {
    core::WirecapConfig config;
    config.cells_per_chunk = spec.m;
    config.chunk_count = spec.r;
    config.offload_threshold = 0.6;
    engine1 = std::make_unique<core::WirecapEngine>(scheduler, *nic1, config,
                                                    costs);
    engine2 = std::make_unique<core::WirecapEngine>(scheduler, *nic2, config,
                                                    costs);
  } else {
    engine1 = std::make_unique<engines::Type2Engine>(*nic1,
                                                     engines::dna_config());
    engine2 = std::make_unique<engines::Type2Engine>(*nic2,
                                                     engines::dna_config());
  }

  // multi_pkt_handler per NIC: one thread per queue, x=0, forwarding out
  // the other NIC.
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::PktHandler>> handlers;
  const auto spawn = [&](engines::CaptureEngine& engine,
                         nic::MultiQueueNic& out, std::uint32_t core_base) {
    for (std::uint32_t q = 0; q < queues_per_nic; ++q) {
      cores.push_back(
          std::make_unique<sim::SimCore>(scheduler, core_base + q));
      apps::PktHandlerConfig config;
      config.x = 0;
      config.filter = "";
      config.execute_filter = false;
      config.forward = apps::ForwardTarget{&out, q};
      handlers.push_back(std::make_unique<apps::PktHandler>(
          *cores.back(), engine, q, config, costs));
    }
  };
  spawn(*engine1, *nic2, 0);
  spawn(*engine2, *nic1, 32);

  // Partition each NIC's queues into `tenants` disjoint buddy groups via
  // the tenant API (tenants = 1 reproduces the paper's single shared
  // group).  Offloading never crosses a tenant boundary.
  if (spec.wirecap) {
    const auto register_tenants = [&](engines::CaptureEngine& engine) {
      auto* wirecap = dynamic_cast<core::WirecapEngine*>(&engine);
      for (std::uint32_t t = 0; t < tenants; ++t) {
        engines::TenantSpec tenant;
        tenant.name = "t";
        tenant.name += std::to_string(t);
        for (std::uint32_t q = 0; q < queues_per_nic; ++q) {
          if (q * tenants / queues_per_nic == t) tenant.queues.push_back(q);
        }
        if (!tenant.queues.empty()) wirecap->register_tenant(tenant);
      }
    };
    register_tenants(*engine1);
    register_tenants(*engine2);
  }

  // One flow per queue, engineered onto its queue by the real RSS hash,
  // so each generator loads all n queues evenly at wire rate.
  const auto make_source = [&](std::uint64_t seed) {
    trace::ConstantRateConfig config;
    config.packet_count = kPacketsPerNic;
    config.frame_bytes = frame_bytes;
    Xoshiro256 rng{seed};
    for (std::uint32_t q = 0; q < queues_per_nic; ++q) {
      config.flows.push_back(trace::flow_for_queue(rng, q, queues_per_nic));
    }
    return std::make_unique<trace::ConstantRateSource>(config);
  };
  auto source1 = make_source(0xF14A);
  auto source2 = make_source(0xF14B);

  // Receivers behind each NIC count arrivals.
  std::uint64_t received = 0;
  nic1->set_egress([&](const net::WirePacket&) { ++received; });
  nic2->set_egress([&](const net::WirePacket&) { ++received; });

  nic::TrafficInjector injector1{scheduler, *source1, *nic1};
  nic::TrafficInjector injector2{scheduler, *source2, *nic2};
  injector1.start();
  injector2.start();

  const double send_seconds =
      static_cast<double>(kPacketsPerNic) /
      ethernet::wire_rate(10e9, frame_bytes).per_second();
  scheduler.run_until(Nanos::from_seconds(send_seconds + 2.0));

  const std::uint64_t sent = injector1.injected() + injector2.injected();
  return sent ? static_cast<double>(sent - received) /
                    static_cast<double>(sent)
              : 0.0;
}

// --- multi-tenant fairness experiment ---
//
// One NIC, four queues, split between a victim tenant (queues 0-1,
// drained by x=0 handlers) and an aggressor tenant (queues 2-3).  In the
// baseline run the aggressor's queues are simply absent; in the stalled
// run they are open and quota-capped but never drained, so the aggressor
// pins its budget at the quota and stalls for the whole run.  The offered
// load on the victim's queues is identical either way (one RSS-engineered
// flow per queue, round-robin at wire rate), so any victim throughput
// delta is cross-tenant interference.

struct FairnessResult {
  double victim_pps = 0.0;
  std::uint64_t aggressor_quota_stalls = 0;
  std::uint64_t aggressor_charged = 0;
};

FairnessResult run_fairness_side(bool aggressor_present) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler, Rate{kBusTransactionsPerSecond}};
  const sim::CostModel costs;

  nic::NicConfig nic_config;
  nic_config.nic_id = 1;
  nic_config.num_rx_queues = 4;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};

  core::WirecapConfig config;
  config.cells_per_chunk = 64;
  config.chunk_count = 32;
  config.offload_threshold = 0.6;
  core::WirecapEngine engine{scheduler, nic, config, costs};

  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::PktHandler>> handlers;
  for (std::uint32_t q = 0; q < 2; ++q) {
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
    engine.open(q, *cores.back());
    apps::PktHandlerConfig handler_config;
    handler_config.x = 0;
    handler_config.filter = "";
    handler_config.execute_filter = false;
    handlers.push_back(std::make_unique<apps::PktHandler>(
        *cores.back(), engine, q, handler_config, costs));
  }
  engines::TenantSpec victim;
  victim.name = "victim";
  victim.queues = {0, 1};
  engine.register_tenant(victim);

  engines::TenantId aggressor_id = engines::kNoTenant;
  if (aggressor_present) {
    for (std::uint32_t q = 2; q < 4; ++q) {
      cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
      engine.open(q, *cores.back());  // no handler: never drained
    }
    engines::TenantSpec aggressor;
    aggressor.name = "aggressor";
    aggressor.queues = {2, 3};
    aggressor.chunk_quota = 16;
    aggressor_id = engine.register_tenant(aggressor);
  }

  // One flow per queue in both runs, so the victim's share of the wire
  // is identical; packets for absent/stalled queues die at their rings.
  trace::ConstantRateConfig source_config;
  source_config.packet_count = 400'000;
  source_config.frame_bytes = 64;
  Xoshiro256 rng{0xFA17};
  for (std::uint32_t q = 0; q < 4; ++q) {
    source_config.flows.push_back(trace::flow_for_queue(rng, q, 4));
  }
  trace::ConstantRateSource source{source_config};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();

  const double send_seconds =
      static_cast<double>(source_config.packet_count) /
      ethernet::wire_rate(10e9, source_config.frame_bytes).per_second();
  scheduler.run_until(Nanos::from_seconds(send_seconds + 1.0));

  FairnessResult result;
  std::uint64_t processed = 0;
  for (std::uint32_t q = 0; q < 2; ++q) processed += handlers[q]->stats().processed;
  result.victim_pps = static_cast<double>(processed) / send_seconds;
  if (aggressor_present) {
    const engines::TenantAccount& account = engine.tenant_account(aggressor_id);
    result.aggressor_quota_stalls = account.quota_stalls;
    result.aggressor_charged = account.charged;
  }
  return result;
}

struct SweepPoint {
  std::uint32_t tenants = 1;
  double drop_rate = 0.0;
};

constexpr double kFairnessTarget = 0.9;

void write_tenant_json(const std::string& path,
                       const std::vector<SweepPoint>& sweep,
                       const FairnessResult& solo,
                       const FairnessResult& stalled, double ratio) {
  std::ofstream out{path};
  out << "{\n  \"benchmark\": \"tenant_fairness\",\n  \"tenants_sweep\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"tenants\": %u, \"drop_rate\": %.6f}",
                  i ? "," : "", sweep[i].tenants, sweep[i].drop_rate);
    out << buf;
  }
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\n  ],\n"
      "  \"fairness\": {\n"
      "    \"victim_solo_pps\": %.1f,\n"
      "    \"victim_stalled_pps\": %.1f,\n"
      "    \"ratio\": %.4f,\n"
      "    \"target\": %.2f\n"
      "  },\n"
      "  \"aggressor_quota_stalls\": %llu,\n"
      "  \"aggressor_charged\": %llu\n"
      "}\n",
      solo.victim_pps, stalled.victim_pps, ratio, kFairnessTarget,
      static_cast<unsigned long long>(stalled.aggressor_quota_stalls),
      static_cast<unsigned long long>(stalled.aggressor_charged));
  out << buf;
}

int run(std::uint32_t max_tenants, const std::string& out_path,
        bool fairness_only) {
  const EngineSpec wirecap_spec{"WireCAP-A-(256,100,60%)", true, 256, 100};

  if (!fairness_only) {
    bench::title("Figure 14: scalability (2 NICs, shared bus, forwarding)");
    bench::note("bus model: 52M transactions/s; RX DMA + TX DMA each cost 1");
    bench::note("1e6 packets/NIC (paper: 1e9; drop rates are rate-driven)");

    const std::vector<EngineSpec> specs{
        {"DNA", false},
        wirecap_spec,
        {"WireCAP-A-(256,500,60%)", true, 256, 500},
    };

    for (const std::uint32_t frame : {64u, 100u}) {
      std::printf("\n-- %u-byte frames (aggregate %.1f Mp/s) --\n", frame,
                  2 * ethernet::wire_rate(10e9, frame).per_second() / 1e6);
      std::printf("%-26s", "queues/NIC");
      for (std::uint32_t q = 1; q <= 6; ++q) std::printf(" %8u", q);
      std::printf("\n");
      for (const auto& spec : specs) {
        std::printf("%-26s", spec.label.c_str());
        for (std::uint32_t q = 1; q <= 6; ++q) {
          std::printf(" %8s", bench::percent(run_one(spec, q, frame)).c_str());
        }
        std::printf("\n");
      }
    }

    std::printf("\npaper shape: 0%% at 100B; at 64B the bus saturates — "
                "WireCAP > DNA at 1 queue, similar at more queues, and "
                "WireCAP-A-(256,500) degrades at 5-6 queues (memory "
                "pressure)\n");
  }

  // Multi-tenant sweep at the bus-saturation point (64B frames,
  // 6 queues/NIC, ~30 Mp/s aggregate): the same NIC split into N
  // disjoint buddy groups.  Fewer buddies per group means less slack
  // for offloading, so drops may creep up slightly with tenant count.
  bench::title("Multi-tenant sweep (64B frames, 6 queues/NIC, shared bus)");
  std::vector<SweepPoint> sweep;
  std::printf("  %-10s %10s\n", "tenants", "drop rate");
  for (std::uint32_t t = 1; t <= std::min(max_tenants, 6u); ++t) {
    SweepPoint point;
    point.tenants = t;
    point.drop_rate = run_one(wirecap_spec, 6, 64, t);
    std::printf("  %-10u %10s\n", t, bench::percent(point.drop_rate).c_str());
    sweep.push_back(point);
  }

  bench::title("Tenant fairness: victim throughput under co-tenant stall");
  const FairnessResult solo = run_fairness_side(false);
  const FairnessResult stalled = run_fairness_side(true);
  const double ratio =
      solo.victim_pps > 0.0 ? stalled.victim_pps / solo.victim_pps : 0.0;
  std::printf("  victim solo:    %12.0f p/s\n", solo.victim_pps);
  std::printf("  victim+stalled: %12.0f p/s (aggressor: %llu chunks "
              "charged, %llu quota stalls)\n",
              stalled.victim_pps,
              static_cast<unsigned long long>(stalled.aggressor_charged),
              static_cast<unsigned long long>(stalled.aggressor_quota_stalls));
  std::printf("  ratio: %.4f (gate: >= %.2f)\n", ratio, kFairnessTarget);
  bench::note("disjoint buddy groups + per-tenant quotas: a stalled "
              "co-tenant exhausts only its own budget");

  write_tenant_json(out_path, sweep, solo, stalled, ratio);
  std::printf("  -> %s\n", out_path.c_str());
  return ratio >= kFairnessTarget ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t max_tenants = 2;
  std::string out_path = "BENCH_tenant.json";
  bool fairness_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--tenants=", 0) == 0) {
      max_tenants = static_cast<std::uint32_t>(
          std::stoul(std::string(arg.substr(10))));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg == "--fairness-only") {
      fairness_only = true;
    }
  }
  return run(std::max(1u, max_tenants), out_path, fairness_only);
}
