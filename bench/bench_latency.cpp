// Latency-vs-throughput sweep over the chunk-journey pipeline: offered
// load stepped as a fraction of the 64-byte wire rate, in three receive
// modes —
//
//   blocking:    the harness fabric on the mutex+condvar capture-queue
//                pair (HandoffMode::kMutex): every chunk handoff pays
//                the lock plus a condvar wakeup before the pkt_handler
//                runs;
//   nonblocking: the same fabric on the lock-free SPSC-ring/steal-inbox
//                handoff (HandoffMode::kLockFree, the engine default) —
//                no lock, no wakeup detour;
//   polling:     an application draining try_next_batch() on a fixed
//                20 us timer regardless of arrivals, trading CPU for
//                the poll-period latency floor.
//
// Per point it reports end-to-end and per-stage percentiles from the
// LatencyTracker (chunk-journey spans, virtual time) next to the drop
// rate, and writes the whole sweep to BENCH_latency.json (override
// with --out=FILE).  --mode=NAME restricts the sweep to one mode.
// Accepts the standard --metrics-out/--trace-out flags; the last run
// wins those files.  CI gates on nonblocking e2e p99 <= blocking at
// every load.
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.hpp"
#include "engines/factory.hpp"
#include "nic/wire.hpp"
#include "telemetry/latency.hpp"

namespace wirecap::bench {
namespace {

using Stage = telemetry::LatencyTracker::Stage;

constexpr std::uint64_t kPackets = 100'000;
constexpr double kLinkBps = 10e9;
constexpr Nanos kPollInterval = Nanos::from_micros(20);

struct SweepPoint {
  std::string mode;
  double load = 0.0;
  double offered_pps = 0.0;
  std::uint64_t delivered = 0;
  double drop_rate = 0.0;
  double e2e_p50 = 0.0;
  double e2e_p99 = 0.0;
  double e2e_p999 = 0.0;
  double capture_p99 = 0.0;
  double queue_wait_p99 = 0.0;
  double deliver_p99 = 0.0;
};

void fill_percentiles(SweepPoint& point,
                      const telemetry::LatencyTracker& latency) {
  point.e2e_p50 = latency.stage_quantile(0, Stage::kE2e, 0.50);
  point.e2e_p99 = latency.stage_quantile(0, Stage::kE2e, 0.99);
  point.e2e_p999 = latency.stage_quantile(0, Stage::kE2e, 0.999);
  point.capture_p99 = latency.stage_quantile(0, Stage::kCapture, 0.99);
  point.queue_wait_p99 = latency.stage_quantile(0, Stage::kQueueWait, 0.99);
  point.deliver_p99 = latency.stage_quantile(0, Stage::kDeliver, 0.99);
}

trace::ConstantRateConfig traffic_at(double load) {
  trace::ConstantRateConfig config;
  config.packet_count = kPackets;
  config.frame_bytes = 64;
  config.link_bits_per_second = load * kLinkBps;
  Xoshiro256 rng{0x1A7E};
  config.flows = {trace::flow_for_queue(rng, 0, 1)};
  return config;
}

/// Blocking / nonblocking modes: the full Experiment harness
/// (pkt_handler driven by batch delivery) over the selected capture-
/// queue handoff — kMutex pays lock + condvar wakeup per chunk,
/// kLockFree hands off through the SPSC ring.
SweepPoint run_harness(std::string_view mode, HandoffMode handoff,
                       double load, const apps::TelemetryFlags* flags) {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapBasic;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 64;
  config.engine.handoff = handoff;
  config.num_queues = 1;
  config.x = 0;
  if (flags) flags->apply(config);
  config.telemetry.latency = true;
  apps::Experiment experiment{config};

  trace::ConstantRateSource source{traffic_at(load)};
  const Nanos horizon = Nanos::from_seconds(
      static_cast<double>(kPackets) / source.rate().per_second() + 0.05);
  const apps::ExperimentResult result = experiment.run(source, horizon);
  if (flags) flags->write(experiment.telemetry());

  SweepPoint point;
  point.mode = std::string(mode);
  point.load = load;
  point.offered_pps = source.rate().per_second();
  point.delivered = result.delivered;
  point.drop_rate = result.drop_rate();
  fill_percentiles(point, experiment.telemetry().latency);
  return point;
}

/// Polling mode: a hand-built fabric whose application drains the
/// batch API on a fixed timer.
SweepPoint run_polling(double load) {
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = 1;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  engines::EngineConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 64;
  auto engine = engines::make_engine("WireCAP-B", nic, engine_config);
  telemetry::Telemetry telemetry;
  telemetry.latency.set_enabled(true);
  engine->bind_telemetry(telemetry, "bench", 1);
  sim::SimCore app_core{scheduler, 0};
  engine->open(0, app_core);

  trace::ConstantRateSource source{traffic_at(load)};
  const double offered_pps = source.rate().per_second();
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();

  const Nanos horizon = Nanos::from_seconds(
      static_cast<double>(kPackets) / offered_pps + 0.05);
  std::uint64_t delivered = 0;
  engines::PacketBatch batch;
  // The fixed-cadence poll loop: drain whatever is queued, sleep the
  // poll period, repeat — arrivals never wake it early.
  std::function<void()> poll = [&] {
    while (engine->try_next_batch(0, engine_config.cells_per_chunk, batch) >
           0) {
      delivered += batch.views.size();
      engine->done_batch(0, batch);
    }
    if (scheduler.now() < horizon) {
      scheduler.schedule_after(kPollInterval, poll);
    }
  };
  scheduler.schedule_at(Nanos::zero(), poll);
  scheduler.run_until(horizon);
  engine->close(0);

  SweepPoint point;
  point.mode = "polling";
  point.load = load;
  point.offered_pps = offered_pps;
  point.delivered = delivered;
  point.drop_rate =
      1.0 - static_cast<double>(delivered) / static_cast<double>(kPackets);
  fill_percentiles(point, telemetry.latency);
  return point;
}

void write_json(const std::string& path,
                const std::vector<SweepPoint>& points) {
  std::ofstream out{path};
  out << "{\n"
      << "  \"benchmark\": \"latency_sweep\",\n"
      << "  \"packets_per_point\": " << kPackets << ",\n"
      << "  \"link_bits_per_second\": " << kLinkBps << ",\n"
      << "  \"poll_interval_ns\": " << kPollInterval.count() << ",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"load\": %.2f, "
                  "\"offered_pps\": %.0f, \"delivered\": %llu, "
                  "\"drop_rate\": %.6f, \"e2e_p50_ns\": %.0f, "
                  "\"e2e_p99_ns\": %.0f, \"e2e_p999_ns\": %.0f, "
                  "\"capture_p99_ns\": %.0f, \"queue_wait_p99_ns\": %.0f, "
                  "\"deliver_p99_ns\": %.0f}%s\n",
                  p.mode.c_str(), p.load, p.offered_pps,
                  static_cast<unsigned long long>(p.delivered), p.drop_rate,
                  p.e2e_p50, p.e2e_p99, p.e2e_p999, p.capture_p99,
                  p.queue_wait_p99, p.deliver_p99,
                  i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

int run(const apps::TelemetryFlags& flags, const std::string& out_path,
        const std::string& mode_filter) {
  const std::vector<double> loads = {0.2, 0.5, 0.8, 0.95};
  std::vector<SweepPoint> points;

  title("latency vs load: chunk-journey percentiles per receive mode");
  std::printf("  %-11s %5s %11s %9s %9s %9s %9s %9s\n", "mode", "load",
              "drop", "e2e p50", "e2e p99", "e2e p999", "qwait p99",
              "deliver99");
  for (const std::string_view mode : {"blocking", "nonblocking", "polling"}) {
    if (!mode_filter.empty() && mode != mode_filter) continue;
    for (const double load : loads) {
      SweepPoint point;
      if (mode == "blocking") {
        point = run_harness(mode, HandoffMode::kMutex, load, &flags);
      } else if (mode == "nonblocking") {
        point = run_harness(mode, HandoffMode::kLockFree, load, &flags);
      } else {
        point = run_polling(load);
      }
      std::printf("  %-11s %5.2f %11s %7.1fus %7.1fus %7.1fus %7.1fus "
                  "%7.1fus\n",
                  point.mode.c_str(), point.load,
                  percent(point.drop_rate).c_str(), point.e2e_p50 / 1000.0,
                  point.e2e_p99 / 1000.0, point.e2e_p999 / 1000.0,
                  point.queue_wait_p99 / 1000.0, point.deliver_p99 / 1000.0);
      if (point.delivered == 0 || point.e2e_p50 <= 0.0) {
        std::fprintf(stderr, "bench_latency: %s at load %.2f produced no "
                             "journeys\n",
                     point.mode.c_str(), point.load);
        return 1;
      }
      points.push_back(point);
    }
  }
  note("blocking pays lock + condvar wakeup per chunk; nonblocking rides "
       "the SPSC ring; polling pays the 20us timer floor");
  write_json(out_path, points);
  std::printf("  -> %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace wirecap::bench

int main(int argc, char** argv) {
  std::string out_path = "BENCH_latency.json";
  std::string mode_filter;  // empty = all modes
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode_filter = std::string(arg.substr(7));
    } else if (arg == "--mode" && i + 1 < argc) {
      mode_filter = argv[++i];
    }
  }
  if (!mode_filter.empty() && mode_filter != "blocking" &&
      mode_filter != "nonblocking" && mode_filter != "polling") {
    std::fprintf(stderr,
                 "bench_latency: unknown --mode '%s' (expected blocking, "
                 "nonblocking or polling)\n",
                 mode_filter.c_str());
    return 2;
  }
  const wirecap::apps::TelemetryFlags flags =
      wirecap::apps::parse_telemetry_flags(argc, argv);
  return wirecap::bench::run(flags, out_path, mode_filter);
}
