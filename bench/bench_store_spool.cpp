// Capture-to-disk spool benchmark: sustained spool throughput and drop
// accounting per backpressure policy, plus the offload-feedback
// demonstration — one shard's simulated disk is slowed and the spool
// backlog pushes the owning queue over the buddy-group threshold T, so
// chunks (and their disk work) migrate to the idle buddy.
//
// Accepts --metrics-out/--trace-out; the CI job uploads the metrics
// JSON as a build artifact.
#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "bench/bench_util.hpp"
#include "core/wirecap_engine.hpp"
#include "store/reader.hpp"
#include "store/spool.hpp"

namespace wirecap::bench {
namespace {

struct SpoolRun {
  apps::ExperimentResult result;
  store::ShardStats stats;
  std::uint64_t offloaded = 0;
  double seconds = 0.0;
};

std::filesystem::path bench_dir(const std::string& leaf) {
  return std::filesystem::temp_directory_path() /
         ("wirecap_bench_spool_" + std::to_string(::getpid())) / leaf;
}

SpoolRun run_spool(store::BackpressurePolicy policy, double slow_factor,
                   const apps::TelemetryFlags* flags) {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 64;
  config.engine.offload_threshold = 0.25;
  config.num_queues = 2;
  config.ring_size = 512;
  store::SpoolConfig spool_config;
  spool_config.dir = bench_dir(std::string(to_string(policy)) +
                               (slow_factor > 1.0 ? "-slow" : ""));
  spool_config.policy = policy;
  spool_config.queue_capacity_chunks = 8;
  if (flags) flags->apply(config);
  config.spool = spool_config;
  apps::Experiment experiment{config};

  if (slow_factor > 1.0) {
    experiment.spool()->shard(0).set_slow_disk(slow_factor,
                                               Nanos::from_seconds(100.0));
  }

  // All traffic steers to queue 0: its shard takes the whole write
  // load, so backpressure (and, with a slow disk, offloading) engages.
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 200'000;
  trace_config.frame_bytes = 256;
  trace_config.link_bits_per_second = 10e9;
  Xoshiro256 rng{0x570CE};
  trace_config.flows = trace::flows_for_queue(rng, 0, 2, 1);
  trace::ConstantRateSource source{trace_config};

  const double trace_s = static_cast<double>(trace_config.packet_count) /
                         source.rate().per_second();
  SpoolRun run;
  run.result = experiment.run(source, Nanos::from_seconds(trace_s + 5.0));
  run.stats = experiment.spool()->total_stats();
  auto* engine = dynamic_cast<core::WirecapEngine*>(&experiment.engine());
  run.offloaded = engine ? engine->queue_stats(0).chunks_offloaded_out : 0;
  run.seconds = trace_s;
  if (flags) flags->write(experiment.telemetry());
  std::filesystem::remove_all(spool_config.dir);
  return run;
}

int run(const apps::TelemetryFlags& flags) {
  title("capture-to-disk spool: backpressure policies, shard 0 disk 25x slow");
  std::printf("  %-12s %10s %12s %12s %10s %10s\n", "policy", "written",
              "MB/s(disk)", "dropped", "offloaded", "stalls");
  for (const auto policy :
       {store::BackpressurePolicy::kBlock,
        store::BackpressurePolicy::kDropNewest,
        store::BackpressurePolicy::kDropOldest}) {
    // The last policy run wins the --metrics-out file; each publishes
    // the same store.shard<N>.* metric names.
    const SpoolRun r = run_spool(policy, 25.0, &flags);
    const double mb_per_s =
        static_cast<double>(r.stats.bytes_written) / r.seconds / 1e6;
    std::printf("  %-12s %10llu %12.1f %12llu %10llu %10llu\n",
                to_string(policy),
                static_cast<unsigned long long>(r.stats.packets_written),
                mb_per_s,
                static_cast<unsigned long long>(
                    r.stats.packets_dropped_newest +
                    r.stats.packets_dropped_oldest),
                static_cast<unsigned long long>(r.offloaded),
                static_cast<unsigned long long>(r.stats.full_stalls));
  }

  title("offload feedback: queue 0's shard disk slowed 50x (policy=block)");
  const SpoolRun fast = run_spool(store::BackpressurePolicy::kBlock, 1.0,
                                  nullptr);
  const SpoolRun slow = run_spool(store::BackpressurePolicy::kBlock, 50.0,
                                  nullptr);
  std::printf("  healthy disk: offloaded=%llu drop=%s\n",
              static_cast<unsigned long long>(fast.offloaded),
              percent(fast.result.drop_rate()).c_str());
  std::printf("  slow shard 0: offloaded=%llu drop=%s\n",
              static_cast<unsigned long long>(slow.offloaded),
              percent(slow.result.drop_rate()).c_str());
  note("the spool backlog feeds effective load, so a slow disk pushes its");
  note("queue over T and buddy capture threads absorb the chunks");
  if (slow.offloaded == 0) {
    std::printf("UNEXPECTED: slow disk never engaged offloading\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace wirecap::bench

int main(int argc, char** argv) {
  return wirecap::bench::telemetry_main(argc, argv, wirecap::bench::run);
}
