// Capture-to-disk spool benchmark: sustained spool throughput and drop
// accounting per backpressure policy, plus the offload-feedback
// demonstration — one shard's simulated disk is slowed and the spool
// backlog pushes the owning queue over the buddy-group threshold T, so
// chunks (and their disk work) migrate to the idle buddy.
//
// `bench_store_spool --drain-compare[=BENCH_spool.json]` instead runs
// the deterministic (virtual-time) drain comparison the CI gate
// consumes: vectored multi-outstanding drain vs packet-at-a-time
// depth-1 drain over identical chunks, plus the bloom filter-skip
// segment-touch ratio.
//
// Accepts --metrics-out/--trace-out; the CI job uploads the metrics
// JSON as a build artifact.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.hpp"
#include "core/wirecap_engine.hpp"
#include "net/packet.hpp"
#include "store/reader.hpp"
#include "store/spool.hpp"

namespace wirecap::bench {
namespace {

struct SpoolRun {
  apps::ExperimentResult result;
  store::ShardStats stats;
  std::uint64_t offloaded = 0;
  double seconds = 0.0;
};

std::filesystem::path bench_dir(const std::string& leaf) {
  return std::filesystem::temp_directory_path() /
         ("wirecap_bench_spool_" + std::to_string(::getpid())) / leaf;
}

SpoolRun run_spool(store::BackpressurePolicy policy, double slow_factor,
                   const apps::TelemetryFlags* flags) {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 64;
  config.engine.chunk_count = 64;
  config.engine.offload_threshold = 0.25;
  config.num_queues = 2;
  config.ring_size = 512;
  store::SpoolConfig spool_config;
  spool_config.dir = bench_dir(std::string(to_string(policy)) +
                               (slow_factor > 1.0 ? "-slow" : ""));
  spool_config.policy = policy;
  spool_config.queue_capacity_chunks = 8;
  if (flags) flags->apply(config);
  config.spool = spool_config;
  apps::Experiment experiment{config};

  if (slow_factor > 1.0) {
    experiment.spool()->shard(0).set_slow_disk(slow_factor,
                                               Nanos::from_seconds(100.0));
  }

  // All traffic steers to queue 0: its shard takes the whole write
  // load, so backpressure (and, with a slow disk, offloading) engages.
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 200'000;
  trace_config.frame_bytes = 256;
  trace_config.link_bits_per_second = 10e9;
  Xoshiro256 rng{0x570CE};
  trace_config.flows = trace::flows_for_queue(rng, 0, 2, 1);
  trace::ConstantRateSource source{trace_config};

  const double trace_s = static_cast<double>(trace_config.packet_count) /
                         source.rate().per_second();
  SpoolRun run;
  run.result = experiment.run(source, Nanos::from_seconds(trace_s + 5.0));
  run.stats = experiment.spool()->total_stats();
  auto* engine = dynamic_cast<core::WirecapEngine*>(&experiment.engine());
  run.offloaded = engine ? engine->queue_stats(0).chunks_offloaded_out : 0;
  run.seconds = trace_s;
  if (flags) flags->write(experiment.telemetry());
  std::filesystem::remove_all(spool_config.dir);
  return run;
}

// --- deterministic drain comparison (--drain-compare) ---

/// Virtual nanoseconds for one shard to drain `chunk_count` identical
/// chunks, offered up front at t=0.  Deterministic: the simulation
/// clock is the only clock involved.
struct DrainOutcome {
  double virtual_ns = 0.0;
  std::uint64_t bytes = 0;
};

DrainOutcome run_drain(const std::filesystem::path& dir, bool vectored,
                       unsigned depth, std::uint64_t chunk_count,
                       std::uint32_t cells_per_chunk) {
  std::filesystem::create_directories(dir);
  sim::Scheduler scheduler;
  sim::CostModel costs;
  store::SpoolConfig config;
  config.dir = dir;
  config.vectored_drain = vectored;
  config.disk_queue_depth = depth;
  config.queue_capacity_chunks = chunk_count * 2;
  store::Spool spool{scheduler, costs, config};

  std::vector<std::unique_ptr<std::vector<std::byte>>> storage;
  Nanos last_release = Nanos::zero();
  std::uint64_t releases = 0;
  for (std::uint64_t c = 0; c < chunk_count; ++c) {
    engines::ChunkCaptureView chunk;
    chunk.source_ring = 0;
    for (std::uint32_t i = 0; i < cells_per_chunk; ++i) {
      const std::uint64_t seq = c * cells_per_chunk + i;
      const auto pkt = net::WirePacket::make(
          Nanos{static_cast<std::int64_t>(seq)},
          net::FlowKey{net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2},
                       4000, 53, net::IpProto::kUdp},
          256, seq);
      storage.push_back(std::make_unique<std::vector<std::byte>>(
          pkt.bytes().begin(), pkt.bytes().end()));
      engines::CaptureView view;
      view.bytes = std::span<std::byte>(*storage.back());
      view.wire_len = pkt.wire_len();
      view.timestamp = pkt.timestamp();
      view.seq = seq;
      chunk.packets.push_back(view);
    }
    spool.shard(0).offer(std::move(chunk),
                         [&](const engines::ChunkCaptureView&) {
                           ++releases;
                           last_release = scheduler.now();
                         });
  }
  scheduler.run_until(Nanos::from_seconds(60.0));
  DrainOutcome outcome;
  outcome.virtual_ns = static_cast<double>(last_release.count());
  outcome.bytes = spool.shard(0).stats().bytes_written;
  if (releases != chunk_count || !spool.drained()) {
    std::fprintf(stderr, "drain-compare: shard never drained (%llu/%llu)\n",
                 static_cast<unsigned long long>(releases),
                 static_cast<unsigned long long>(chunk_count));
    outcome.virtual_ns = -1.0;
  }
  spool.close();
  std::filesystem::remove_all(dir);
  return outcome;
}

/// Segment-touch ratio of a 5-tuple-pinned BPF query over a spool of
/// high-cardinality segments: every segment is past flow_index_cap, so
/// only the footer bloom can prune.
struct SkipOutcome {
  std::uint64_t segments_total = 0;
  std::uint64_t segments_touched = 0;
};

SkipOutcome run_filter_skip(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  constexpr int kSegments = 16;
  constexpr int kFlowsPerSegment = 24;
  store::SegmentWriter::Options options;
  options.flow_index_cap = 4;  // force beyond-cap indexes
  options.segment_max_span = Nanos::from_millis(1.0);
  store::SegmentWriter writer{dir, 0, options};
  std::uint64_t id = 0;
  for (int seg = 0; seg < kSegments; ++seg) {
    const Nanos base = Nanos::from_millis(10.0 * seg);  // span-rotates
    for (int f = 0; f < kFlowsPerSegment; ++f) {
      const int n = seg * kFlowsPerSegment + f;
      const net::FlowKey flow{
          net::Ipv4Addr{10, 1, static_cast<std::uint8_t>(n >> 8),
                        static_cast<std::uint8_t>(n & 0xFF)},
          net::Ipv4Addr{10, 2, 0, 1},
          static_cast<std::uint16_t>(10'000 + (n & 0xFFF)), 53,
          net::IpProto::kUdp};
      const auto pkt = net::WirePacket::make(base + Nanos{1'000LL * f}, flow,
                                             128, id);
      writer.write(pkt.timestamp(), pkt.bytes(), pkt.wire_len(), id);
      ++id;
    }
  }
  writer.finish();

  store::StoreReader reader{dir};
  // Pin the 5-tuple of the last segment's last flow: only that segment
  // should be opened.
  const int target = kSegments * kFlowsPerSegment - 1;
  char filter[160];
  std::snprintf(filter, sizeof(filter),
                "src host 10.1.%d.%d and dst host 10.2.0.1 and "
                "src port %d and dst port 53 and udp",
                target >> 8, target & 0xFF, 10'000 + (target & 0xFFF));
  store::StoreQuery query;
  query.filter = filter;
  const auto stats = reader.read_merged(
      query, [](const net::PcapngRecord&, std::uint32_t) {});

  SkipOutcome outcome;
  outcome.segments_total = stats.segments_total;
  outcome.segments_touched = stats.segments_total -
                             stats.segments_skipped_time -
                             stats.segments_skipped_flow -
                             stats.segments_skipped_filter;
  std::filesystem::remove_all(dir);
  return outcome;
}

int run_drain_compare(const std::string& out_path) {
  constexpr std::uint64_t kChunks = 64;
  constexpr std::uint32_t kCells = 64;
  constexpr double kTarget = 1.5;

  title("spool drain: vectored multi-outstanding vs packet-at-a-time");
  const DrainOutcome vectored =
      run_drain(bench_dir("drain-vectored"), /*vectored=*/true, /*depth=*/0,
                kChunks, kCells);
  const DrainOutcome scalar =
      run_drain(bench_dir("drain-scalar"), /*vectored=*/false, /*depth=*/1,
                kChunks, kCells);
  if (vectored.virtual_ns <= 0.0 || scalar.virtual_ns <= 0.0) return 2;

  const double vectored_mbps = static_cast<double>(vectored.bytes) /
                               vectored.virtual_ns * 1e3;
  const double scalar_mbps = static_cast<double>(scalar.bytes) /
                             scalar.virtual_ns * 1e3;
  const double speedup = scalar.virtual_ns / vectored.virtual_ns;
  const bool meets_target = speedup >= kTarget;
  std::printf("  packet-at-a-time, depth 1: %8.1f MB/s (%.0f us)\n",
              scalar_mbps, scalar.virtual_ns / 1e3);
  std::printf("  vectored, cost-model depth: %7.1f MB/s (%.0f us)\n",
              vectored_mbps, vectored.virtual_ns / 1e3);
  std::printf("  drain speedup: %.2fx (target %.1fx)\n", speedup, kTarget);

  title("bloom filter-skip: 5-tuple-pinned query over 16 over-cap segments");
  const SkipOutcome skip = run_filter_skip(bench_dir("filter-skip"));
  const double touch_ratio =
      skip.segments_total
          ? static_cast<double>(skip.segments_touched) /
                static_cast<double>(skip.segments_total)
          : 1.0;
  std::printf("  touched %llu of %llu segments (ratio %.3f)\n",
              static_cast<unsigned long long>(skip.segments_touched),
              static_cast<unsigned long long>(skip.segments_total),
              touch_ratio);

  {
    std::ofstream out{out_path};
    out << "{\n"
        << "  \"benchmark\": \"spool_drain\",\n"
        << "  \"chunks\": " << kChunks << ",\n"
        << "  \"cells_per_chunk\": " << kCells << ",\n"
        << "  \"scalar_drain_ns\": " << scalar.virtual_ns << ",\n"
        << "  \"vectored_drain_ns\": " << vectored.virtual_ns << ",\n"
        << "  \"scalar_drain_mbps\": " << scalar_mbps << ",\n"
        << "  \"vectored_drain_mbps\": " << vectored_mbps << ",\n"
        << "  \"drain_speedup\": " << speedup << ",\n"
        << "  \"target_speedup\": " << kTarget << ",\n"
        << "  \"meets_target\": " << (meets_target ? "true" : "false")
        << ",\n"
        << "  \"filter_skip_segments_total\": " << skip.segments_total
        << ",\n"
        << "  \"filter_skip_segments_touched\": " << skip.segments_touched
        << ",\n"
        << "  \"filter_skip_touch_ratio\": " << touch_ratio << "\n"
        << "}\n";
  }
  std::printf("drain-compare: speedup %.2fx, touch ratio %.3f -> %s\n",
              speedup, touch_ratio, out_path.c_str());
  if (!meets_target) {
    std::fprintf(stderr,
                 "drain-compare: FAIL — vectored drain below %.1fx\n",
                 kTarget);
    return 1;
  }
  return 0;
}

int run(const apps::TelemetryFlags& flags) {
  title("capture-to-disk spool: backpressure policies, shard 0 disk 25x slow");
  std::printf("  %-12s %10s %12s %12s %10s %10s\n", "policy", "written",
              "MB/s(disk)", "dropped", "offloaded", "stalls");
  for (const auto policy :
       {store::BackpressurePolicy::kBlock,
        store::BackpressurePolicy::kDropNewest,
        store::BackpressurePolicy::kDropOldest}) {
    // The last policy run wins the --metrics-out file; each publishes
    // the same store.shard<N>.* metric names.
    const SpoolRun r = run_spool(policy, 25.0, &flags);
    const double mb_per_s =
        static_cast<double>(r.stats.bytes_written) / r.seconds / 1e6;
    std::printf("  %-12s %10llu %12.1f %12llu %10llu %10llu\n",
                to_string(policy),
                static_cast<unsigned long long>(r.stats.packets_written),
                mb_per_s,
                static_cast<unsigned long long>(
                    r.stats.packets_dropped_newest +
                    r.stats.packets_dropped_oldest),
                static_cast<unsigned long long>(r.offloaded),
                static_cast<unsigned long long>(r.stats.full_stalls));
  }

  title("offload feedback: queue 0's shard disk slowed 50x (policy=block)");
  const SpoolRun fast = run_spool(store::BackpressurePolicy::kBlock, 1.0,
                                  nullptr);
  const SpoolRun slow = run_spool(store::BackpressurePolicy::kBlock, 50.0,
                                  nullptr);
  std::printf("  healthy disk: offloaded=%llu drop=%s\n",
              static_cast<unsigned long long>(fast.offloaded),
              percent(fast.result.drop_rate()).c_str());
  std::printf("  slow shard 0: offloaded=%llu drop=%s\n",
              static_cast<unsigned long long>(slow.offloaded),
              percent(slow.result.drop_rate()).c_str());
  note("the spool backlog feeds effective load, so a slow disk pushes its");
  note("queue over T and buddy capture threads absorb the chunks");
  if (slow.offloaded == 0) {
    std::printf("UNEXPECTED: slow disk never engaged offloading\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace wirecap::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--drain-compare" || arg.starts_with("--drain-compare=")) {
      const auto eq = arg.find('=');
      const std::string out{eq == std::string_view::npos
                                ? std::string_view{"BENCH_spool.json"}
                                : arg.substr(eq + 1)};
      return wirecap::bench::run_drain_compare(out);
    }
  }
  return wirecap::bench::telemetry_main(argc, argv, wirecap::bench::run);
}
