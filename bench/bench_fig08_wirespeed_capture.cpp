// Figure 8 — "WireCAP packet capture in the basic mode, with no packet
// processing load (x=0)".
//
// Methodology (§4): the generator transmits P 64-byte packets at the
// 10 GbE wire rate (14.88 Mp/s) into a single receive queue; pkt_handler
// with x=0 captures and discards.  P sweeps 1e3..1e7.  The paper shows
// zero drops for DNA, NETMAP and every WireCAP-B configuration, and
// significant drops for PF_RING (its kernel copy path cannot sustain
// wire rate).
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

int run() {
  bench::title(
      "Figure 8: basic-mode capture at wire rate, x=0 (drop rate vs P)");

  std::vector<apps::EngineParams> engines;
  const auto add = [&](apps::EngineKind kind, std::uint32_t m = 0,
                       std::uint32_t r = 0) {
    apps::EngineParams params;
    params.kind = kind;
    if (m) params.cells_per_chunk = m;
    if (r) params.chunk_count = r;
    engines.push_back(params);
  };
  add(apps::EngineKind::kDna);
  add(apps::EngineKind::kPfRing);
  add(apps::EngineKind::kNetmap);
  add(apps::EngineKind::kWirecapBasic, 64, 100);
  add(apps::EngineKind::kWirecapBasic, 128, 100);
  add(apps::EngineKind::kWirecapBasic, 256, 100);
  add(apps::EngineKind::kWirecapBasic, 256, 500);

  const std::vector<std::uint64_t> sweep{1'000,     10'000,    100'000,
                                         1'000'000, 10'000'000};

  std::printf("%-22s", "P (packets)");
  for (const auto p : sweep) std::printf(" %10llu", static_cast<unsigned long long>(p));
  std::printf("\n");

  for (const auto& params : engines) {
    std::printf("%-22s", params.label().c_str());
    for (const auto p : sweep) {
      const auto result = bench::run_burst(params, p, 0, 2.0);
      std::printf(" %10s", bench::percent(result.drop_rate()).c_str());
    }
    std::printf("\n");
  }

  std::printf("\npaper shape: 0%% everywhere except PF_RING, which drops "
              "heavily at every P beyond its buffering\n");
  return 0;
}

}  // namespace

int main() { return run(); }
