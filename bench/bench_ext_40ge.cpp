// Extension: 40 GbE (§7: "Although our current work has been with 10 GE
// technology, our objective is to support 40 GE and, eventually, 100 GE
// ... In the near future, we will apply WireCAP for 40 GE networks").
//
// At 40 GbE, 64-byte frames arrive at 59.5 Mp/s — far beyond one core.
// This experiment sweeps the queue count and asks: how many queues
// (cores) does each engine need to capture a 40 GbE wire-rate burst
// losslessly with a light application (x=2, ~4.4 Mp/s per core)?
// Flows are spread evenly across queues by the real RSS hash.
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

/// NUMA layout for the two-socket sweep: all queues local to the NIC's
/// socket, or the upper half of the queues on the remote socket (the
/// realistic many-core shape once one socket runs out of cores).
enum class NumaLayout { kSingleSocket, kSplitSockets };

double run_40ge(apps::EngineKind kind, std::uint32_t queues,
                std::uint64_t packets,
                NumaLayout layout = NumaLayout::kSingleSocket,
                Nanos remote_capture_cost = Nanos{0}) {
  apps::ExperimentConfig config;
  config.engine.kind = kind;
  config.engine.cells_per_chunk = 256;
  config.engine.chunk_count = 200;
  config.num_queues = queues;
  config.x = 2;  // light analysis: ~4.4 Mp/s per 2.4 GHz core
  if (layout == NumaLayout::kSplitSockets) {
    config.engine.nic_numa_node = 0;
    for (std::uint32_t q = 0; q < queues; ++q) {
      config.engine.queue_numa_node.push_back(q < queues / 2 ? 0u : 1u);
    }
  }
  if (remote_capture_cost.count() > 0) {
    config.costs.numa_remote_capture_cost = remote_capture_cost;
  }
  apps::Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  trace_config.frame_bytes = 64;
  trace_config.link_bits_per_second = ethernet::k40GbpsBits;
  Xoshiro256 rng{0x40CE};
  for (std::uint32_t q = 0; q < queues; ++q) {
    trace_config.flows.push_back(trace::flow_for_queue(rng, q, queues));
  }
  trace::ConstantRateSource source{trace_config};
  const Nanos horizon = Nanos::from_seconds(
      static_cast<double>(packets) / source.rate().per_second() + 2.0);
  return experiment.run(source, horizon).drop_rate();
}

int run() {
  bench::title("Extension: 40 GbE wire rate (59.5 Mp/s of 64-byte frames)");
  bench::note("x=2 per-packet analysis; 2e6-packet burst; RSS spreads one "
              "flow per queue");

  const std::uint64_t packets = 2'000'000;
  std::printf("%-14s", "queues");
  for (std::uint32_t q = 4; q <= 16; q += 2) std::printf(" %8u", q);
  std::printf("\n");
  for (const auto kind : {apps::EngineKind::kDna,
                          apps::EngineKind::kWirecapAdvanced}) {
    apps::EngineParams params;
    params.kind = kind;
    std::printf("%-14s", params.label().c_str());
    for (std::uint32_t q = 4; q <= 16; q += 2) {
      std::printf(" %8s", bench::percent(run_40ge(kind, q, packets)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nreading: the per-queue architecture scales to 40 GbE once "
              "enough cores are attached; WireCAP's pools absorb the "
              "rebalancing transients that still cost DNA packets near "
              "the capacity knee\n");

  // Two-socket sweep: beyond one socket's core count, half the queues
  // land on the remote socket and every captured chunk pays the
  // cross-socket penalty.  The default penalty (300 ns/chunk, amortised
  // over 256 cells) is nearly free; a slow interconnect makes the
  // remote-half capture threads the bottleneck near the knee.
  bench::title("Two-socket NUMA sweep (WireCAP-A, NIC on node 0)");
  bench::note("split = upper half of queues on node 1; slow-QPI charges "
              "50us per remote chunk capture");
  std::printf("%-26s", "queues");
  for (std::uint32_t q = 4; q <= 16; q += 2) std::printf(" %8u", q);
  std::printf("\n");
  struct NumaRow {
    const char* label;
    NumaLayout layout;
    Nanos remote_cost;
  };
  const NumaRow rows[] = {
      {"1-socket (all local)", NumaLayout::kSingleSocket, Nanos{0}},
      {"2-socket split", NumaLayout::kSplitSockets, Nanos{0}},
      {"2-socket, slow QPI", NumaLayout::kSplitSockets,
       Nanos::from_micros(50)},
  };
  for (const NumaRow& row : rows) {
    std::printf("%-26s", row.label);
    for (std::uint32_t q = 4; q <= 16; q += 2) {
      std::printf(" %8s",
                  bench::percent(run_40ge(apps::EngineKind::kWirecapAdvanced,
                                          q, packets, row.layout,
                                          row.remote_cost))
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("\nreading: NUMA-aware placement is free at the default "
              "interconnect cost; only a pathologically slow link drags "
              "the remote half below wire rate\n");
  return 0;
}

}  // namespace

int main() { return run(); }
