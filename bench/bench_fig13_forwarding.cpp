// Figure 13 — "WireCAP packet forwarding".
//
// Methodology (§4): the Figure 11 experiment with one modification to
// pkt_handler — "a processed packet is forwarded through NIC2 instead of
// being discarded"; NIC2 connects to a packet receiver, and the drop
// rate is computed from sender vs receiver counts.  NETMAP is excluded
// exactly as in the paper: its NIOC*SYNC operations are not
// per-queue, so multi_pkt_handler cannot combine receive and transmit
// (our NETMAP model implements forwarding, but the figure keeps the
// paper's roster).
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

int run() {
  bench::title("Figure 13: packet forwarding (border trace, x=300)");

  std::vector<apps::EngineParams> engines;
  const auto add = [&](apps::EngineKind kind, std::uint32_t m = 0,
                       std::uint32_t r = 0, double t = 0.6) {
    apps::EngineParams params;
    params.kind = kind;
    if (m) params.cells_per_chunk = m;
    if (r) params.chunk_count = r;
    params.offload_threshold = t;
    engines.push_back(params);
  };
  add(apps::EngineKind::kPfRing);
  add(apps::EngineKind::kDna);
  add(apps::EngineKind::kWirecapBasic, 256, 100);
  add(apps::EngineKind::kWirecapBasic, 256, 500);
  add(apps::EngineKind::kWirecapAdvanced, 256, 100, 0.6);
  add(apps::EngineKind::kWirecapAdvanced, 256, 500, 0.6);

  std::printf("%-26s %10s %10s %10s\n",
              "drop rate (sender vs receiver)", "4 queues", "5 queues",
              "6 queues");
  for (const auto& params : engines) {
    std::printf("%-26s", params.label().c_str());
    for (const std::uint32_t queues : {4u, 5u, 6u}) {
      const auto result =
          bench::run_border_trace(params, queues, 16.0, /*forward=*/true);
      std::printf(" %10s",
                  bench::percent(result.forwarding_drop_rate()).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n(NETMAP excluded, as in the paper: NIOC*SYNC is not "
              "per-queue, so multi_pkt_handler cannot run under it)\n");
  std::printf("paper shape: same ordering as Figure 11; offloading again "
              "recovers most losses\n");
  return 0;
}

}  // namespace

int main() { return run(); }
