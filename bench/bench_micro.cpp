// Micro-benchmarks (google-benchmark) of the performance-critical
// primitives: SPSC work queues, the cBPF interpreters (classic and
// pre-decoded), the Toeplitz RSS hash, internet checksum, frame
// building, the chunk capture/recycle driver ops, and the
// discrete-event scheduler itself.
//
// `bench_micro --compare-batch[=OUT.json]` runs the batched-vs-
// per-packet delivery comparison instead (see run_compare_batch below)
// and exits non-zero when the batched path is not faster — the CI
// regression gate behind BENCH_batch.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

#include "bpf/codegen.hpp"
#include "bpf/predecode.hpp"
#include "bpf/vm.hpp"
#include "common/spsc_queue.hpp"
#include "driver/wirecap_driver.hpp"
#include "engines/factory.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/rss.hpp"
#include "nic/device.hpp"
#include "sim/bus.hpp"
#include "sim/core.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/constant_rate.hpp"

namespace {

using namespace wirecap;

void BM_SpscQueuePushPop(benchmark::State& state) {
  SpscQueue<std::uint64_t> queue{1024};
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.try_push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscQueuePushPop);

void BM_ToeplitzHash(benchmark::State& state) {
  net::FlowKey flow{net::Ipv4Addr{131, 225, 2, 1}, net::Ipv4Addr{10, 0, 0, 1},
                    4242, 443, net::IpProto::kTcp};
  for (auto _ : state) {
    flow.src_port++;
    benchmark::DoNotOptimize(net::rss_hash(flow));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ToeplitzHash);

void BM_BpfFilterRun(benchmark::State& state) {
  const bpf::Program program = bpf::compile_filter("131.225.2 and udp");
  const auto packet = net::WirePacket::make(
      Nanos{0},
      net::FlowKey{net::Ipv4Addr{131, 225, 2, 9}, net::Ipv4Addr{8, 8, 8, 8},
                   999, 53, net::IpProto::kUdp},
      64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bpf::run(program, packet.bytes(), packet.wire_len()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BpfFilterRun);

void BM_BpfPredecodedRun(benchmark::State& state) {
  const bpf::Predecoded program{bpf::compile_filter("131.225.2 and udp")};
  const auto packet = net::WirePacket::make(
      Nanos{0},
      net::FlowKey{net::Ipv4Addr{131, 225, 2, 9}, net::Ipv4Addr{8, 8, 8, 8},
                   999, 53, net::IpProto::kUdp},
      64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.run(packet.bytes(), packet.wire_len()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BpfPredecodedRun);

void BM_BpfRunBatch(benchmark::State& state) {
  const bpf::Predecoded program{bpf::compile_filter("131.225.2 and udp")};
  auto packet = net::WirePacket::make(
      Nanos{0},
      net::FlowKey{net::Ipv4Addr{131, 225, 2, 9}, net::Ipv4Addr{8, 8, 8, 8},
                   999, 53, net::IpProto::kUdp},
      64);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> storage{packet.bytes().begin(), packet.bytes().end()};
  engines::PacketBatch batch;
  for (std::size_t i = 0; i < n; ++i) {
    engines::CaptureView view;
    view.bytes = std::span<std::byte>(storage);
    view.wire_len = packet.wire_len();
    view.seq = i;
    batch.views.push_back(view);
  }
  std::vector<std::uint8_t> accepts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.run_batch(batch, accepts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BpfRunBatch)->Arg(64)->Arg(256);

void BM_BpfCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bpf::compile_filter("tcp and dst port 443 and src net 131.225.0.0/16"));
  }
}
BENCHMARK(BM_BpfCompile);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1518);

void BM_BuildFrame(benchmark::State& state) {
  std::array<std::byte, 2048> buf{};
  net::FlowKey flow{net::Ipv4Addr{10, 1, 1, 1}, net::Ipv4Addr{10, 2, 2, 2},
                    1000, 80, net::IpProto::kUdp};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::build_frame(buf, flow, 64, net::MacAddr{}, net::MacAddr{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BuildFrame);

void BM_SchedulerEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler scheduler;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      scheduler.schedule_at(Nanos{i}, [] {});
    }
    benchmark::DoNotOptimize(scheduler.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SchedulerEventChurn);

void BM_ChunkCaptureRecycle(benchmark::State& state) {
  // The full driver round-trip: M packets DMA'd, chunk captured to user
  // space (metadata only) and recycled.
  const std::uint32_t m = 64;
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.rx_ring_size = 512;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  driver::WirecapDriverConfig config;
  config.cells_per_chunk = m;
  config.chunk_count = 32;
  driver::WirecapQueueDriver driver{nic, 0, config};
  driver.open();

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 1;
  trace_config.flows = {net::FlowKey{net::Ipv4Addr{10, 0, 0, 1},
                                     net::Ipv4Addr{10, 0, 0, 2}, 1, 2,
                                     net::IpProto::kUdp}};
  trace::ConstantRateSource proto{trace_config};
  const net::WirePacket packet = *proto.next();

  std::vector<driver::ChunkMeta> out;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < m; ++i) nic.receive(packet);
    out.clear();
    driver.capture(scheduler.now(), 4, out);
    for (const auto& meta : out) {
      benchmark::DoNotOptimize(driver.recycle(meta));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_ChunkCaptureRecycle);

void BM_PacketSynthesis(benchmark::State& state) {
  trace::ConstantRateConfig config;
  config.packet_count = std::numeric_limits<std::uint64_t>::max();
  config.flows = {net::FlowKey{net::Ipv4Addr{10, 0, 0, 1},
                               net::Ipv4Addr{10, 0, 0, 2}, 1, 2,
                               net::IpProto::kUdp}};
  trace::ConstantRateSource source{config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketSynthesis);

// --- batched vs per-packet delivery comparison (--compare-batch) ---
//
// Measures the real (wall-clock) application-side cost per packet of
// the two WireCAP read paths over identical traffic:
//
//   per-packet: try_next() -> bpf::run() -> done()         (old API)
//   batched:    try_next_batch() -> Predecoded::run_batch()
//                 -> done_batch()                          (new API)
//
// The simulation clock only ferries packets to the capture queue
// between drains; the timed region is exactly the filter + delivery
// hot path an application executes.
int run_compare_batch(const std::string& out_path) {
  using Clock = std::chrono::steady_clock;
  constexpr std::uint32_t kCells = 256;   // M: one chunk == one batch
  constexpr int kRounds = 64;
  constexpr std::uint64_t kChunksPerRound = 8;
  constexpr std::uint64_t kRoundPackets = kChunksPerRound * kCells;
  const char* const filter_text = "131.225.2 and udp";

  const bpf::Program program = bpf::compile_filter(filter_text);
  const bpf::Predecoded predecoded{program};

  const auto matching = net::WirePacket::make(
      Nanos{0},
      net::FlowKey{net::Ipv4Addr{131, 225, 2, 9}, net::Ipv4Addr{8, 8, 8, 8},
                   999, 53, net::IpProto::kUdp},
      64);
  const auto other = net::WirePacket::make(
      Nanos{0},
      net::FlowKey{net::Ipv4Addr{192, 168, 1, 1}, net::Ipv4Addr{8, 8, 4, 4},
                   1000, 443, net::IpProto::kTcp},
      64);

  // Returns the measured app-side cost per delivered packet, in ns.
  const auto measure = [&](bool batched) -> double {
    sim::Scheduler scheduler;
    sim::IoBus bus{scheduler};
    nic::NicConfig nic_config;
    nic_config.rx_ring_size = 4096;
    nic::MultiQueueNic nic{scheduler, bus, nic_config};
    engines::EngineConfig engine_config;
    engine_config.cells_per_chunk = kCells;
    engine_config.chunk_count = 64;
    auto engine = engines::make_engine("WireCAP-B", nic, engine_config);
    sim::SimCore app_core{scheduler, 0};
    engine->open(0, app_core);

    std::uint64_t drained = 0;
    std::uint64_t matched = 0;
    double total_ns = 0.0;
    engines::PacketBatch batch;
    std::vector<std::uint8_t> accepts;
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint64_t i = 0; i < kRoundPackets; ++i) {
        nic.receive(i % 2 == 0 ? matching : other);
      }
      // Interleave simulated capture-thread progress with timed drains
      // until the round's packets have all been delivered.
      const std::uint64_t target = drained + kRoundPackets;
      int stalls = 0;
      while (drained < target && stalls < 1000) {
        scheduler.run_until(scheduler.now() + Nanos::from_millis(5));
        const std::uint64_t before = drained;
        const auto start = Clock::now();
        if (batched) {
          while (engine->try_next_batch(0, kCells, batch) > 0) {
            matched += predecoded.run_batch(batch, accepts);
            drained += batch.views.size();
            engine->done_batch(0, batch);
          }
        } else {
          while (auto view = engine->try_next(0)) {
            matched += bpf::run(program, view->bytes, view->wire_len) != 0;
            ++drained;
            engine->done(0, *view);
          }
        }
        total_ns += std::chrono::duration<double, std::nano>(Clock::now() -
                                                             start)
                        .count();
        stalls = drained > before ? 0 : stalls + 1;
      }
    }
    engine->close(0);
    if (drained == 0 || matched != drained / 2) {
      std::fprintf(stderr,
                   "compare-batch: %s path drained %llu packets, matched "
                   "%llu (expected %llu)\n",
                   batched ? "batched" : "per-packet",
                   static_cast<unsigned long long>(drained),
                   static_cast<unsigned long long>(matched),
                   static_cast<unsigned long long>(drained / 2));
      return -1.0;
    }
    return total_ns / static_cast<double>(drained);
  };

  // Warm up both paths once (page in code + pool), then take the best
  // of several interleaved trials per path: min-over-trials is the
  // standard noise-robust estimator when the machine is shared, and
  // interleaving means transient load hits both paths alike.
  (void)measure(false);
  (void)measure(true);
  constexpr int kTrials = 5;
  double per_packet_ns = std::numeric_limits<double>::infinity();
  double batched_ns = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < kTrials; ++trial) {
    const double scalar = measure(false);
    const double batch_cost = measure(true);
    if (scalar < 0 || batch_cost < 0) return 2;
    per_packet_ns = std::min(per_packet_ns, scalar);
    batched_ns = std::min(batched_ns, batch_cost);
  }
  const double speedup = per_packet_ns / batched_ns;
  const bool faster = speedup > 1.0;
  const bool meets_target = speedup >= 2.0;

  {
    std::ofstream out{out_path};
    out << "{\n"
        << "  \"benchmark\": \"compare_batch\",\n"
        << "  \"engine\": \"WireCAP-B\",\n"
        << "  \"filter\": \"" << filter_text << "\",\n"
        << "  \"packets_per_path\": " << (kRounds * kRoundPackets) << ",\n"
        << "  \"per_packet_path_ns\": " << per_packet_ns << ",\n"
        << "  \"batched_path_ns\": " << batched_ns << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"target_speedup\": 2.0,\n"
        << "  \"meets_target\": " << (meets_target ? "true" : "false") << ",\n"
        << "  \"batched_faster\": " << (faster ? "true" : "false") << "\n"
        << "}\n";
  }
  std::printf(
      "compare-batch: per-packet %.1f ns/pkt, batched %.1f ns/pkt, "
      "speedup %.2fx (target 2.0x) -> %s\n",
      per_packet_ns, batched_ns, speedup, out_path.c_str());
  if (!faster) {
    std::fprintf(stderr,
                 "compare-batch: FAIL — batched path is not faster\n");
    return 1;
  }
  return 0;
}

// --- latency-instrumentation overhead (--latency-overhead) ---
//
// Times the batched hot path (the run_compare_batch fabric) in three
// telemetry states:
//
//   baseline: no telemetry bound (latency pointer null)
//   disabled: telemetry bound, LatencyTracker disabled — the shipping
//             default; every stamp site costs one predicted branch
//   enabled:  chunk journeys stamped and folded into histograms
//
// The CI gate reads disabled_overhead from the JSON: the disabled state
// must stay within 2% of baseline or the one-branch-gating claim broke.
int run_latency_overhead(const std::string& out_path) {
  using Clock = std::chrono::steady_clock;
  constexpr std::uint32_t kCells = 256;
  constexpr int kRounds = 64;
  constexpr std::uint64_t kChunksPerRound = 8;
  constexpr std::uint64_t kRoundPackets = kChunksPerRound * kCells;

  const auto packet = net::WirePacket::make(
      Nanos{0},
      net::FlowKey{net::Ipv4Addr{131, 225, 2, 9}, net::Ipv4Addr{8, 8, 8, 8},
                   999, 53, net::IpProto::kUdp},
      64);

  enum class Mode { kBaseline, kDisabled, kEnabled };
  // Returns app-side cost per delivered packet on the batched read
  // path, in ns.
  const auto measure = [&](Mode mode) -> double {
    sim::Scheduler scheduler;
    sim::IoBus bus{scheduler};
    nic::NicConfig nic_config;
    nic_config.rx_ring_size = 4096;
    nic::MultiQueueNic nic{scheduler, bus, nic_config};
    engines::EngineConfig engine_config;
    engine_config.cells_per_chunk = kCells;
    engine_config.chunk_count = 64;
    auto engine = engines::make_engine("WireCAP-B", nic, engine_config);
    telemetry::Telemetry telemetry;
    if (mode != Mode::kBaseline) {
      telemetry.latency.set_enabled(mode == Mode::kEnabled);
      engine->bind_telemetry(telemetry, "bench", 1);
    }
    sim::SimCore app_core{scheduler, 0};
    engine->open(0, app_core);

    std::uint64_t drained = 0;
    double total_ns = 0.0;
    engines::PacketBatch batch;
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint64_t i = 0; i < kRoundPackets; ++i) nic.receive(packet);
      const std::uint64_t target = drained + kRoundPackets;
      int stalls = 0;
      while (drained < target && stalls < 1000) {
        scheduler.run_until(scheduler.now() + Nanos::from_millis(5));
        const std::uint64_t before = drained;
        const auto start = Clock::now();
        while (engine->try_next_batch(0, kCells, batch) > 0) {
          drained += batch.views.size();
          engine->done_batch(0, batch);
        }
        total_ns += std::chrono::duration<double, std::nano>(Clock::now() -
                                                             start)
                        .count();
        stalls = drained > before ? 0 : stalls + 1;
      }
    }
    engine->close(0);
    if (drained == 0) return -1.0;
    if (mode == Mode::kEnabled && telemetry.latency.journeys_recorded() == 0) {
      std::fprintf(stderr,
                   "latency-overhead: enabled run recorded no journeys\n");
      return -1.0;
    }
    return total_ns / static_cast<double>(drained);
  };

  // Warm up, then min-over-interleaved-trials (same estimator as
  // compare-batch: robust to shared-machine noise, fair to all states).
  for (const Mode m : {Mode::kBaseline, Mode::kDisabled, Mode::kEnabled}) {
    (void)measure(m);
  }
  constexpr int kTrials = 9;
  double best[3] = {std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
  // Rotate the state order every trial so clock drift / thermal ramp on
  // a shared machine cannot systematically favor one state.
  for (int trial = 0; trial < kTrials; ++trial) {
    for (int slot = 0; slot < 3; ++slot) {
      const int mode = (trial + slot) % 3;
      const double cost = measure(static_cast<Mode>(mode));
      if (cost < 0) return 2;
      best[mode] = std::min(best[mode], cost);
    }
  }
  const double baseline_ns = best[0];
  const double disabled_ns = best[1];
  const double enabled_ns = best[2];
  const double disabled_overhead = disabled_ns / baseline_ns - 1.0;
  const double enabled_overhead = enabled_ns / baseline_ns - 1.0;

  {
    std::ofstream out{out_path};
    out << "{\n"
        << "  \"benchmark\": \"latency_overhead\",\n"
        << "  \"engine\": \"WireCAP-B\",\n"
        << "  \"packets_per_state\": " << (kRounds * kRoundPackets) << ",\n"
        << "  \"baseline_ns\": " << baseline_ns << ",\n"
        << "  \"disabled_ns\": " << disabled_ns << ",\n"
        << "  \"enabled_ns\": " << enabled_ns << ",\n"
        << "  \"disabled_overhead\": " << disabled_overhead << ",\n"
        << "  \"enabled_overhead\": " << enabled_overhead << ",\n"
        << "  \"disabled_overhead_target\": 0.02\n"
        << "}\n";
  }
  std::printf(
      "latency-overhead: baseline %.2f ns/pkt, disabled %.2f ns/pkt "
      "(%+.2f%%), enabled %.2f ns/pkt (%+.2f%%) -> %s\n",
      baseline_ns, disabled_ns, disabled_overhead * 100.0, enabled_ns,
      enabled_overhead * 100.0, out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--compare-batch" || arg.starts_with("--compare-batch=")) {
      std::string out = "BENCH_batch.json";
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        out = std::string(arg.substr(eq + 1));
      }
      return run_compare_batch(out);
    }
    if (arg == "--latency-overhead" ||
        arg.starts_with("--latency-overhead=")) {
      std::string out = "BENCH_latency_overhead.json";
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        out = std::string(arg.substr(eq + 1));
      }
      return run_latency_overhead(out);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
