// Micro-benchmarks (google-benchmark) of the performance-critical
// primitives: SPSC work queues, the cBPF interpreter, the Toeplitz RSS
// hash, internet checksum, frame building, the chunk capture/recycle
// driver ops, and the discrete-event scheduler itself.
#include <benchmark/benchmark.h>

#include <optional>

#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"
#include "common/spsc_queue.hpp"
#include "driver/wirecap_driver.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/rss.hpp"
#include "nic/device.hpp"
#include "sim/scheduler.hpp"
#include "trace/constant_rate.hpp"

namespace {

using namespace wirecap;

void BM_SpscQueuePushPop(benchmark::State& state) {
  SpscQueue<std::uint64_t> queue{1024};
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.try_push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscQueuePushPop);

void BM_ToeplitzHash(benchmark::State& state) {
  net::FlowKey flow{net::Ipv4Addr{131, 225, 2, 1}, net::Ipv4Addr{10, 0, 0, 1},
                    4242, 443, net::IpProto::kTcp};
  for (auto _ : state) {
    flow.src_port++;
    benchmark::DoNotOptimize(net::rss_hash(flow));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ToeplitzHash);

void BM_BpfFilterRun(benchmark::State& state) {
  const bpf::Program program = bpf::compile_filter("131.225.2 and udp");
  const auto packet = net::WirePacket::make(
      Nanos{0},
      net::FlowKey{net::Ipv4Addr{131, 225, 2, 9}, net::Ipv4Addr{8, 8, 8, 8},
                   999, 53, net::IpProto::kUdp},
      64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bpf::run(program, packet.bytes(), packet.wire_len()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BpfFilterRun);

void BM_BpfCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bpf::compile_filter("tcp and dst port 443 and src net 131.225.0.0/16"));
  }
}
BENCHMARK(BM_BpfCompile);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1518);

void BM_BuildFrame(benchmark::State& state) {
  std::array<std::byte, 2048> buf{};
  net::FlowKey flow{net::Ipv4Addr{10, 1, 1, 1}, net::Ipv4Addr{10, 2, 2, 2},
                    1000, 80, net::IpProto::kUdp};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::build_frame(buf, flow, 64, net::MacAddr{}, net::MacAddr{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BuildFrame);

void BM_SchedulerEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler scheduler;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      scheduler.schedule_at(Nanos{i}, [] {});
    }
    benchmark::DoNotOptimize(scheduler.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SchedulerEventChurn);

void BM_ChunkCaptureRecycle(benchmark::State& state) {
  // The full driver round-trip: M packets DMA'd, chunk captured to user
  // space (metadata only) and recycled.
  const std::uint32_t m = 64;
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.rx_ring_size = 512;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  driver::WirecapDriverConfig config;
  config.cells_per_chunk = m;
  config.chunk_count = 32;
  driver::WirecapQueueDriver driver{nic, 0, config};
  driver.open();

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 1;
  trace_config.flows = {net::FlowKey{net::Ipv4Addr{10, 0, 0, 1},
                                     net::Ipv4Addr{10, 0, 0, 2}, 1, 2,
                                     net::IpProto::kUdp}};
  trace::ConstantRateSource proto{trace_config};
  const net::WirePacket packet = *proto.next();

  std::vector<driver::ChunkMeta> out;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < m; ++i) nic.receive(packet);
    out.clear();
    driver.capture(scheduler.now(), 4, out);
    for (const auto& meta : out) {
      benchmark::DoNotOptimize(driver.recycle(meta));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_ChunkCaptureRecycle);

void BM_PacketSynthesis(benchmark::State& state) {
  trace::ConstantRateConfig config;
  config.packet_count = std::numeric_limits<std::uint64_t>::max();
  config.flows = {net::FlowKey{net::Ipv4Addr{10, 0, 0, 1},
                               net::Ipv4Addr{10, 0, 0, 2}, 1, 2,
                               net::IpProto::kUdp}};
  trace::ConstantRateSource source{config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketSynthesis);

}  // namespace

BENCHMARK_MAIN();
