// Ablations of WireCAP's design choices (beyond the paper's own
// figures):
//
//   1. the partial-chunk timeout: without the timeout-copy rescue path,
//      a burst tail shorter than M stays stuck in the receive ring —
//      measured as packets still undelivered after a long drain;
//   2. the offload target policy: least-busy buddy (the paper) vs
//      random vs round-robin under an uneven buddy group;
//   3. capture batching: chunks moved per capture ioctl (max_chunks).
#include <cstdio>
#include <memory>

#include "apps/pkt_handler.hpp"
#include "bench/bench_util.hpp"
#include "core/wirecap_engine.hpp"
#include "nic/wire.hpp"

namespace {

using namespace wirecap;

void ablate_timeout() {
  bench::title("Ablation 1: partial-chunk timeout (burst tail delivery)");
  for (const bool rescue_enabled : {true, false}) {
    sim::Scheduler scheduler;
    sim::IoBus bus{scheduler};
    nic::NicConfig nic_config;
    nic::MultiQueueNic nic{scheduler, bus, nic_config};
    sim::CostModel costs;
    if (!rescue_enabled) {
      costs.partial_chunk_timeout = Nanos::from_seconds(1e6);  // never
    }
    core::WirecapConfig engine_config;  // M=256, R=100
    core::WirecapEngine engine{scheduler, nic, engine_config, costs};
    sim::SimCore core{scheduler, 0};
    apps::PktHandler handler{core, engine, 0,
                             apps::PktHandlerConfig{0, "", false, {}}, costs};

    trace::ConstantRateConfig trace_config;
    trace_config.packet_count = 1000;  // 3 full chunks + 232-packet tail
    Xoshiro256 rng{0xAB1};
    trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
    trace::ConstantRateSource source{trace_config};
    nic::TrafficInjector injector{scheduler, source, nic};
    injector.start();
    scheduler.run_until(Nanos::from_seconds(5));

    std::printf("  timeout %-8s delivered %4llu/1000, stuck in ring %4llu\n",
                rescue_enabled ? "enabled:" : "disabled:",
                static_cast<unsigned long long>(handler.stats().processed),
                static_cast<unsigned long long>(
                    1000 - handler.stats().processed));
  }
  std::printf("  -> the rescue path is what bounds delivery latency for "
              "partial chunks\n");
}

void ablate_offload_policy() {
  bench::title("Ablation 2: offload target policy (uneven buddy group)");
  // Queue 0 overloaded; queue 1 moderately loaded; queue 2 idle.  The
  // least-busy policy should route to queue 2 and drop least.
  for (const auto& [name, policy] :
       std::vector<std::pair<const char*, core::OffloadPolicy>>{
           {"least-busy (paper)", core::OffloadPolicy::kLeastBusy},
           {"random buddy", core::OffloadPolicy::kRandomBuddy},
           {"round-robin", core::OffloadPolicy::kRoundRobin}}) {
    apps::ExperimentConfig config;
    config.engine.kind = apps::EngineKind::kWirecapAdvanced;
    config.engine.cells_per_chunk = 64;
    config.engine.chunk_count = 50;
    config.engine.offload_threshold = 0.6;
    config.engine.offload_policy = policy;
    config.num_queues = 3;
    config.x = 300;
    apps::Experiment experiment{config};

    trace::ConstantRateConfig trace_config;
    trace_config.packet_count = 200'000;
    trace_config.link_bits_per_second = 100e3 * 84 * 8;  // 100 kp/s
    Xoshiro256 rng{0xAB2};
    // 70% of traffic to queue 0, 30% to queue 1, queue 2 idle.
    trace_config.flows = {
        trace::flow_for_queue(rng, 0, 3), trace::flow_for_queue(rng, 0, 3),
        trace::flow_for_queue(rng, 0, 3), trace::flow_for_queue(rng, 0, 3),
        trace::flow_for_queue(rng, 0, 3), trace::flow_for_queue(rng, 0, 3),
        trace::flow_for_queue(rng, 0, 3), trace::flow_for_queue(rng, 1, 3),
        trace::flow_for_queue(rng, 1, 3), trace::flow_for_queue(rng, 1, 3)};
    trace::ConstantRateSource source{trace_config};
    const auto result = experiment.run(
        source, Nanos::from_seconds(2) + Nanos::from_seconds(30));
    std::printf("  %-20s drop %7s  offloaded %6llu  q2 processed %7llu\n",
                name, bench::percent(result.drop_rate()).c_str(),
                static_cast<unsigned long long>(result.offloaded_chunks),
                static_cast<unsigned long long>(
                    result.per_queue[2].processed));
  }
}

void ablate_capture_batch() {
  bench::title("Ablation 3: chunks per capture ioctl (max_chunks)");
  for (const std::size_t batch : {1u, 4u, 16u, 64u}) {
    sim::Scheduler scheduler;
    sim::IoBus bus{scheduler};
    nic::NicConfig nic_config;
    nic::MultiQueueNic nic{scheduler, bus, nic_config};
    const sim::CostModel costs;
    core::WirecapConfig engine_config;
    engine_config.cells_per_chunk = 256;
    engine_config.chunk_count = 100;
    engine_config.max_chunks_per_capture = batch;
    core::WirecapEngine engine{scheduler, nic, engine_config, costs};
    sim::SimCore core{scheduler, 0};
    apps::PktHandler handler{core, engine, 0,
                             apps::PktHandlerConfig{0, "", false, {}}, costs};

    trace::ConstantRateConfig trace_config;
    trace_config.packet_count = 1'000'000;  // 67 ms at wire rate
    Xoshiro256 rng{0xAB3};
    trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
    trace::ConstantRateSource source{trace_config};
    nic::TrafficInjector injector{scheduler, source, nic};
    injector.start();
    scheduler.run_until(Nanos::from_seconds(2));

    const auto dropped = nic.total_rx_dropped();
    std::printf("  max_chunks=%2zu  delivered %7llu  dropped %6llu  "
                "capture-thread util %4.1f%%\n",
                batch,
                static_cast<unsigned long long>(handler.stats().processed),
                static_cast<unsigned long long>(dropped),
                engine.capture_core_utilization(0) * 100.0);
  }
  std::printf("  -> batching keeps the per-chunk ioctl cost amortized; "
              "tiny batches stall the ring at wire rate\n");
}

int run() {
  ablate_timeout();
  ablate_offload_policy();
  ablate_capture_batch();
  return 0;
}

}  // namespace

int main() { return run(); }
