// Figure 3 — "Load imbalance".
//
// Methodology (§2.2 Experiment 1): the traffic generator replays the
// border-router capture at recorded speed into a NIC configured with six
// receive queues; a queue_profiler on each queue counts packets per
// 10 ms bin; DNA is the capture engine and no packets drop.  The paper
// plots the queue 0 and queue 3 series: queue 0 shows a long-term
// overload (~80 kp/s after t=10 s), queue 3 a moderate rate (~20 kp/s)
// with short-term bursts.
#include <cstdio>
#include <memory>

#include "apps/pkt_handler.hpp"
#include "bench/bench_util.hpp"
#include "engines/baselines.hpp"
#include "nic/wire.hpp"
#include "trace/border_router.hpp"

namespace {

using namespace wirecap;

int run(const apps::TelemetryFlags& flags) {
  bench::title("Figure 3: load imbalance (packets per 10 ms bin)");
  bench::note("replaying the synthetic border-router trace, 6 RSS queues,");
  bench::note("DNA capture engine, one queue_profiler per queue (x=0)");

  constexpr std::uint32_t kQueues = 6;
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = kQueues;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};
  engines::Type2Engine dna{nic, engines::dna_config()};

  const sim::CostModel costs;
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::QueueProfiler>> profilers;
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
    profilers.push_back(
        std::make_unique<apps::QueueProfiler>(*cores[q], dna, q, costs));
  }

  // This bench wires its fabric by hand (no Experiment), so it also
  // builds its telemetry tree by hand: engine counters, the per-queue
  // profiler series that *are* this figure, and the NIC drop counters.
  telemetry::Telemetry tel;
  std::unique_ptr<telemetry::Sampler> sampler;
  if (flags.any()) {
    tel.tracer.set_enabled(!flags.trace_out.empty());
    dna.bind_telemetry(tel, "engine.dna", kQueues);
    for (std::uint32_t q = 0; q < kQueues; ++q) {
      const std::string qn = std::to_string(q);
      tel.registry.bind_series("app.q" + qn + ".arrivals_per_10ms",
                               &profilers[q]->series());
      tel.registry.bind_counter("nic.q" + qn + ".rx_dropped", [&nic, q] {
        return nic.rx_stats(q).dropped;
      });
    }
    tel.registry.bind_counter("nic.total_rx_dropped",
                              [&nic] { return nic.total_rx_dropped(); });
    sampler = std::make_unique<telemetry::Sampler>(scheduler, tel,
                                                   Nanos::from_millis(10));
    sampler->start();
  }

  trace::BorderRouterConfig trace_config;  // the full 32 s, ~4.4 M packets
  auto source = trace::make_border_router_source(trace_config);
  nic::TrafficInjector injector{scheduler, *source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(trace_config.duration_s + 2));
  flags.write(tel);

  std::printf("packets injected: %llu, NIC drops: %llu (paper: none)\n",
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(nic.total_rx_dropped()));

  const auto& q0 = profilers[0]->series();
  const auto& q3 = profilers[3]->series();
  std::printf("%8s %10s %10s\n", "t(s)", "queue0", "queue3");
  const std::size_t bins = std::max(q0.bin_count(), q3.bin_count());
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const auto v0 = bin < q0.bin_count() ? q0.bin(bin) : 0;
    const auto v3 = bin < q3.bin_count() ? q3.bin(bin) : 0;
    std::printf("%8.2f %10llu %10llu\n", static_cast<double>(bin) * 0.01,
                static_cast<unsigned long long>(v0),
                static_cast<unsigned long long>(v3));
  }

  std::printf("\nsummary (paper shape: q0 ~800/bin after t=10s, "
              "q3 ~200/bin with bursts to ~2700/110ms):\n");
  std::printf("  queue0: total=%llu peak/bin=%llu mean/bin=%.0f\n",
              static_cast<unsigned long long>(q0.total()),
              static_cast<unsigned long long>(q0.peak()), q0.mean());
  std::printf("  queue3: total=%llu peak/bin=%llu mean/bin=%.0f\n",
              static_cast<unsigned long long>(q3.total()),
              static_cast<unsigned long long>(q3.peak()), q3.mean());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return wirecap::bench::telemetry_main(argc, argv, run);
}
