// Table 2 — "WireCAP vs existing packet-capture engines".
//
// The paper's table is qualitative (goal + deficiency per engine).  This
// benchmark *measures* the properties behind each cell on the live
// implementations:
//
//   * buffering capability — the largest wire-rate burst (x=300)
//     survived without loss, found by exponential+binary search;
//   * copying — copies per delivered packet on a lossless run;
//   * offloading — whether a 2-queue single-hot-queue overload is
//     recovered by moving work to the idle queue.
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

std::uint64_t lossless_burst_limit(const apps::EngineParams& params) {
  // Exponential search for the first failing size, then binary refine.
  std::uint64_t good = 0, bad = 0;
  for (std::uint64_t p = 1'000; p <= 400'000; p *= 2) {
    const auto result = bench::run_burst(params, p, 300, 1.0);
    if (result.drop_rate() == 0.0) {
      good = p;
    } else {
      bad = p;
      break;
    }
  }
  if (bad == 0) return good;  // survived everything we tried
  while (bad - good > std::max<std::uint64_t>(good / 16, 256)) {
    const std::uint64_t mid = good + (bad - good) / 2;
    const auto result = bench::run_burst(params, mid, 300, 1.0);
    (result.drop_rate() == 0.0 ? good : bad) = mid;
  }
  return good;
}

double copies_per_packet(const apps::EngineParams& params) {
  const auto result = bench::run_burst(params, 2'000, 0, 2.0);
  return result.delivered
             ? static_cast<double>(result.copies) /
                   static_cast<double>(result.delivered)
             : 0.0;
}

bool offload_recovers(const apps::EngineParams& params) {
  apps::ExperimentConfig config;
  config.engine = params;
  config.num_queues = 2;
  config.x = 300;
  apps::Experiment experiment{config};
  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = 140'000;  // 2 s at 70 kp/s, all to queue 0
  trace_config.link_bits_per_second = 70e3 * 84 * 8;
  Xoshiro256 rng{0x7AB2};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 2)};
  trace::ConstantRateSource source{trace_config};
  const auto result =
      experiment.run(source, Nanos::from_seconds(2) + Nanos::from_seconds(30));
  return result.drop_rate() < 0.02;
}

int run() {
  bench::title("Table 2: engine comparison matrix (measured)");

  struct Entry {
    apps::EngineParams params;
    const char* paper_goal;
  };
  std::vector<Entry> entries;
  const auto add = [&](apps::EngineKind kind, const char* goal,
                       std::uint32_t m = 0, std::uint32_t r = 0) {
    apps::EngineParams params;
    params.kind = kind;
    if (m) params.cells_per_chunk = m;
    if (r) params.chunk_count = r;
    entries.push_back({params, goal});
  };
  add(apps::EngineKind::kWirecapAdvanced, "avoid packet drops", 256, 100);
  add(apps::EngineKind::kDna, "minimize capture costs");
  add(apps::EngineKind::kNetmap, "minimize capture costs");
  add(apps::EngineKind::kPsioe, "maximize system throughput");
  add(apps::EngineKind::kPfRing, "minimize capture costs");

  std::printf("%-26s %16s %12s %10s  %s\n", "engine", "lossless burst",
              "copies/pkt", "offload", "paper goal");
  for (const auto& entry : entries) {
    const std::uint64_t burst = lossless_burst_limit(entry.params);
    const double copies = copies_per_packet(entry.params);
    const bool offload = offload_recovers(entry.params);
    std::printf("%-26s %16llu %12.2f %10s  %s\n",
                entry.params.label().c_str(),
                static_cast<unsigned long long>(burst), copies,
                offload ? "yes" : "no", entry.paper_goal);
  }

  std::printf("\npaper deficiencies reproduced: Type-II limited buffering & "
              "no offload; PSIOE copy + limited buffering; PF_RING copy + "
              "livelock + no offload; WireCAP uses extra resources\n");
  return 0;
}

}  // namespace

int main() { return run(); }
