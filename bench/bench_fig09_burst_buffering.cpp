// Figure 9 — "WireCAP packet capture in the basic mode, with a heavy
// packet-processing load (x=300)".
//
// Same wire-rate burst sweep as Figure 8 but with x=300: the application
// consumes at only 38,844 p/s, so the maximum P an engine survives
// without loss measures its buffering for short-term bursts.  Paper
// anchors: DNA drops ~15% at P=6,000; WireCAP-B-(256,100) drops ~71% at
// P=100,000; WireCAP-B-(256,500) still has no drops at P=100,000.
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

int run() {
  bench::title(
      "Figure 9: basic-mode burst buffering, x=300 (drop rate vs P)");

  std::vector<apps::EngineParams> engines;
  const auto add = [&](apps::EngineKind kind, std::uint32_t m = 0,
                       std::uint32_t r = 0) {
    apps::EngineParams params;
    params.kind = kind;
    if (m) params.cells_per_chunk = m;
    if (r) params.chunk_count = r;
    engines.push_back(params);
  };
  add(apps::EngineKind::kDna);
  add(apps::EngineKind::kPfRing);
  add(apps::EngineKind::kNetmap);
  add(apps::EngineKind::kWirecapBasic, 256, 100);
  add(apps::EngineKind::kWirecapBasic, 256, 500);

  const std::vector<std::uint64_t> sweep{1'000,   3'000,   6'000,    10'000,
                                         30'000,  100'000, 1'000'000,
                                         10'000'000};

  std::printf("%-22s", "P (packets)");
  for (const auto p : sweep) {
    std::printf(" %9llu", static_cast<unsigned long long>(p));
  }
  std::printf("\n");

  for (const auto& params : engines) {
    std::printf("%-22s", params.label().c_str());
    for (const auto p : sweep) {
      // Drops all happen during/just after the burst; a short drain
      // suffices to count them (the backlog is delivered, not dropped).
      const auto result = bench::run_burst(params, p, 300, 1.0);
      std::printf(" %9s", bench::percent(result.drop_rate()).c_str());
    }
    std::printf("\n");
  }

  std::printf("\npaper anchors: DNA ~15%% @ P=6k; WireCAP-B-(256,100) ~71%% "
              "@ P=100k; WireCAP-B-(256,500) 0%% @ P=100k\n");
  return 0;
}

}  // namespace

int main() { return run(); }
