// Extension: the comparison the paper leaves as future work (§7):
// "Comparing WireCAP with DPDK (with offloading) will be our future
// research areas.  However, a fair comparison can only be achieved when
// DPDK provides its own version of offloading mechanism."
//
// We implement the DPDK model of §6 (user-space mempools, poll-mode
// burst receive, no engine-level offloading) plus the hand-rolled
// application-layer offloading a DPDK application would need, and run
// the Figure 11 experiment across all four designs.  Equal buffering
// everywhere: DPDK mempool == WireCAP R*M == 25,600 packets.
//
// The interesting outputs:
//   * DPDK without offloading behaves like WireCAP-B: big buffers, but
//     long-term imbalance still drops;
//   * DPDK with app-layer offloading recovers like WireCAP-A, but pays
//     for the redirection on the *application* cores — visible as extra
//     busy time on the hot queue's core — and needs the application to
//     implement steering, synchronization and cross-thread buffer
//     return itself (the complexity §6 enumerates).
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

int run() {
  bench::title("Extension: WireCAP vs DPDK with application-layer "
               "offloading (future work of §7)");
  bench::note("border trace, x=300, equal buffering (25,600 packets/queue)");

  std::printf("%-26s %10s %10s %10s %12s\n", "overall drop rate", "4 queues",
              "5 queues", "6 queues", "offload ops");
  for (const auto kind :
       {apps::EngineKind::kWirecapBasic, apps::EngineKind::kDpdk,
        apps::EngineKind::kWirecapAdvanced,
        apps::EngineKind::kDpdkAppOffload}) {
    apps::EngineParams params;
    params.kind = kind;
    params.cells_per_chunk = 256;
    params.chunk_count = 100;
    params.offload_threshold = 0.6;
    std::printf("%-26s", params.label().c_str());
    std::uint64_t offloaded = 0;
    for (const std::uint32_t queues : {4u, 5u, 6u}) {
      const auto result = bench::run_border_trace(params, queues, 16.0);
      std::printf(" %10s", bench::percent(result.drop_rate()).c_str());
      offloaded = result.offloaded_chunks;
    }
    std::printf(" %12llu\n", static_cast<unsigned long long>(offloaded));
  }

  std::printf(
      "\nreading: both offloading designs recover the long-term imbalance;\n"
      "WireCAP does it below the application (capture threads, kernel\n"
      "pools, no application logic); the DPDK application had to hand-roll\n"
      "software queues, a steering policy and cross-thread mbuf return,\n"
      "and pays the redirection cost on its own packet-processing cores.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
