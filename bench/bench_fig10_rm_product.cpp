// Figure 10 — "WireCAP packet capture in the basic mode (R and M are
// varied, R*M is fixed)".
//
// The paper's claim: buffering capability is proportional to the product
// R*M; the individual descriptor-segment size M and pool size R do not
// matter.  WireCAP-B-(64,400), (128,200) and (256,100) — all 25,600
// packets of pool — produce approximately the same drop curve.
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

int run() {
  bench::title("Figure 10: R x M product determines buffering (x=300)");

  std::vector<apps::EngineParams> engines;
  for (const auto& [m, r] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {64, 400}, {128, 200}, {256, 100}}) {
    apps::EngineParams params;
    params.kind = apps::EngineKind::kWirecapBasic;
    params.cells_per_chunk = m;
    params.chunk_count = r;
    engines.push_back(params);
  }

  const std::vector<std::uint64_t> sweep{1'000,    10'000,  20'000, 30'000,
                                         50'000,   100'000, 1'000'000,
                                         10'000'000};

  std::printf("%-22s", "P (packets)");
  for (const auto p : sweep) {
    std::printf(" %9llu", static_cast<unsigned long long>(p));
  }
  std::printf("\n");

  for (const auto& params : engines) {
    std::printf("%-22s", params.label().c_str());
    for (const auto p : sweep) {
      const auto result = bench::run_burst(params, p, 300, 1.0);
      std::printf(" %9s", bench::percent(result.drop_rate()).c_str());
    }
    std::printf("\n");
  }

  std::printf("\npaper shape: the three curves coincide (same R*M = 25,600)\n");
  return 0;
}

}  // namespace

int main() { return run(); }
