// Table 1 — "Packet drop rates".
//
// Methodology (§2.2 Experiment 2): the border-router trace is replayed
// into six RSS queues; a pkt_handler with x=300 (38,844 p/s on a 2.4 GHz
// core) runs on each queue's core; each NIC ring has 1,024 descriptors;
// PF_RING (mode 2) uses a 10,240-slot pf_ring buffer.  The table reports
// capture and delivery drop rates for queue 0 (long-term overload) and
// queue 3 (short-term bursts) under NETMAP, DNA and PF_RING.
//
// Paper values:                NETMAP    DNA   PF_RING
//   q0 capture drops            46.5%  50.1%      0%
//   q0 delivery drops              0%     0%    56.8%
//   q3 capture drops            33.4%   9.3%     0.8%
//   q3 delivery drops              0%     0%       0%
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

int run(const apps::TelemetryFlags& flags) {
  bench::title("Table 1: packet drop rates (border trace, 6 queues, x=300)");

  struct Row {
    apps::EngineKind kind;
    apps::ExperimentResult result;
  };
  std::vector<Row> rows;
  for (const auto kind : {apps::EngineKind::kNetmap, apps::EngineKind::kDna,
                          apps::EngineKind::kPfRing}) {
    apps::EngineParams params;
    params.kind = kind;
    // Last run wins the telemetry files: PF_RING, the engine whose
    // delivery-drop column this table exists to explain.
    rows.push_back(Row{kind, bench::run_border_trace(
                                 params, 6, 32.0, false, 300, 5.0,
                                 flags.any() ? &flags : nullptr)});
  }

  const auto print_metric = [&](const char* name, auto getter) {
    std::printf("%-26s", name);
    for (const auto& row : rows) {
      std::printf(" %8s", bench::percent(getter(row.result)).c_str());
    }
    std::printf("\n");
  };

  std::printf("%-26s", "");
  for (const auto& row : rows) {
    std::printf(" %8s", apps::to_string(row.kind).c_str());
  }
  std::printf("\nReceive Queue 0:\n");
  print_metric("  Packet Capture Drops", [](const auto& r) {
    return r.per_queue[0].capture_drop_rate();
  });
  print_metric("  Packet Delivery Drops", [](const auto& r) {
    return r.per_queue[0].delivery_drop_rate();
  });
  std::printf("Receive Queue 3:\n");
  print_metric("  Packet Capture Drops", [](const auto& r) {
    return r.per_queue[3].capture_drop_rate();
  });
  print_metric("  Packet Delivery Drops", [](const auto& r) {
    return r.per_queue[3].delivery_drop_rate();
  });

  std::printf("\npaper:                       NETMAP      DNA  PF_RING\n");
  std::printf("  q0 capture / delivery   46.5%%/0%%  50.1%%/0%%  0%%/56.8%%\n");
  std::printf("  q3 capture / delivery   33.4%%/0%%   9.3%%/0%%   0.8%%/0%%\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return wirecap::bench::telemetry_main(argc, argv, run);
}
