// Figure 11 — "WireCAP packet capture in the advanced mode, with a heavy
// packet-processing load (x=300)".
//
// Methodology (§4): the border-router trace replayed into n receive
// queues (n = 4, 5, 6), each with a pkt_handler thread at x=300; for
// WireCAP-A the n queues form a single buddy group.  The paper shows
// every baseline and WireCAP-B dropping heavily (long-term overload on
// queue 0) while the buddy-group offloading of WireCAP-A recovers most
// of the loss.
//
// Note on scale: the paper replays its full 32 s capture; we replay a
// 16 s trace with identical rates (the drop rates are rate-driven and
// duration-invariant once past the warm-up).
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace wirecap;

int run(const apps::TelemetryFlags& flags) {
  bench::title("Figure 11: advanced-mode offloading (border trace, x=300)");

  std::vector<apps::EngineParams> engines;
  const auto add = [&](apps::EngineKind kind, std::uint32_t m = 0,
                       std::uint32_t r = 0, double t = 0.6) {
    apps::EngineParams params;
    params.kind = kind;
    if (m) params.cells_per_chunk = m;
    if (r) params.chunk_count = r;
    params.offload_threshold = t;
    engines.push_back(params);
  };
  add(apps::EngineKind::kPfRing);
  add(apps::EngineKind::kDna);
  add(apps::EngineKind::kNetmap);
  add(apps::EngineKind::kWirecapBasic, 256, 100);
  add(apps::EngineKind::kWirecapBasic, 256, 500);
  add(apps::EngineKind::kWirecapAdvanced, 256, 100, 0.6);
  add(apps::EngineKind::kWirecapAdvanced, 256, 500, 0.6);

  std::printf("%-26s %10s %10s %10s\n", "overall drop rate", "4 queues",
              "5 queues", "6 queues");
  for (const auto& params : engines) {
    std::printf("%-26s", params.label().c_str());
    for (const std::uint32_t queues : {4u, 5u, 6u}) {
      // Telemetry only for the offloading runs (successive writes
      // overwrite, so the files describe the last WireCAP-A run — the
      // configuration this figure exists to show).
      const bool observed =
          params.kind == apps::EngineKind::kWirecapAdvanced && flags.any();
      const auto result = bench::run_border_trace(
          params, queues, 16.0, false, 300, 5.0, observed ? &flags : nullptr);
      std::printf(" %10s", bench::percent(result.drop_rate()).c_str());
    }
    std::printf("\n");
  }

  std::printf("\npaper shape: baselines and WireCAP-B drop 15-45%%; "
              "WireCAP-A recovers to a few %% via offloading\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return wirecap::bench::telemetry_main(argc, argv, run);
}
