// Shared plumbing for the reproduction benchmarks: the burst and
// border-trace experiment shapes used by the paper's figures, plus
// minimal table formatting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/harness.hpp"
#include "trace/border_router.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::bench {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void note(const std::string& text) {
  std::printf("    %s\n", text.c_str());
}

/// The --pipeline/--steering flags parsed by telemetry_main(), applied
/// by the shared experiment shapes below so every flag-aware bench can
/// run its workload through an in-capture stage chain + fan-out.
inline apps::PipelineFlags& pipeline_flags() {
  static apps::PipelineFlags flags;
  return flags;
}

/// The --offload-policy/--handoff/--tenants/--tenant-quota flags parsed
/// by telemetry_main(); enum conversion (with the allowed set in the
/// error) happens at the CLI boundary, configs carry enums only.
inline apps::EngineFlags& engine_flags() {
  static apps::EngineFlags flags;
  return flags;
}

/// "The traffic generator transmits P 64-byte packets at the wire rate
/// (14.88 Mp/s)": single queue, one flow, pkt_handler with the given x.
/// With `flags`, the run writes --metrics-out/--trace-out files
/// (successive runs overwrite: last run wins).
inline apps::ExperimentResult run_burst(
    const apps::EngineParams& engine, std::uint64_t packets, unsigned x,
    double drain_s = 5.0, const apps::TelemetryFlags* flags = nullptr) {
  apps::ExperimentConfig config;
  config.engine = engine;
  config.num_queues = 1;
  config.x = x;
  if (flags) flags->apply(config);
  if (pipeline_flags().any()) pipeline_flags().apply(config);
  if (engine_flags().any()) engine_flags().apply(config.engine);
  apps::Experiment experiment{config};

  trace::ConstantRateConfig trace_config;
  trace_config.packet_count = packets;
  Xoshiro256 rng{0xB0B0};
  trace_config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{trace_config};

  const Nanos horizon = Nanos::from_seconds(
      static_cast<double>(packets) / source.rate().per_second() + drain_s);
  auto result = experiment.run(source, horizon);
  if (flags) flags->write(experiment.telemetry());
  return result;
}

/// "The traffic generator replays the captured data at the speed exactly
/// as recorded": the synthetic border-router trace, n queues, x=300.
inline apps::ExperimentResult run_border_trace(
    const apps::EngineParams& engine, std::uint32_t num_queues,
    double duration_s, bool forward = false, unsigned x = 300,
    double drain_s = 5.0, const apps::TelemetryFlags* flags = nullptr) {
  apps::ExperimentConfig config;
  config.engine = engine;
  config.num_queues = num_queues;
  config.x = x;
  config.forward = forward;
  if (flags) flags->apply(config);
  if (pipeline_flags().any()) pipeline_flags().apply(config);
  if (engine_flags().any()) engine_flags().apply(config.engine);
  apps::Experiment experiment{config};

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = duration_s;
  trace_config.num_queues = num_queues;
  trace_config.hot_queue = 0;
  trace_config.bursty_queue = 3 % num_queues;
  auto source = trace::make_border_router_source(trace_config);
  auto result = experiment.run(*source,
                               Nanos::from_seconds(duration_s + drain_s));
  if (flags) flags->write(experiment.telemetry());
  return result;
}

inline std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 100.0);
  return buf;
}

/// Shared main() body for benches taking the standard observability
/// flags (--metrics-out/--trace-out): parses argv once and forwards the
/// flags into the bench's run().  Replaces the main() previously
/// copy-pasted into every flag-aware bench.
inline int telemetry_main(int argc, char** argv,
                          int (*run)(const apps::TelemetryFlags&)) {
  try {
    pipeline_flags() = apps::parse_pipeline_flags(argc, argv);
    if (pipeline_flags().any()) {
      apps::ExperimentConfig scratch;  // validate spec/steering up front
      pipeline_flags().apply(scratch);
    }
    engine_flags() = apps::parse_engine_flags(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  return run(apps::parse_telemetry_flags(argc, argv));
}

}  // namespace wirecap::bench
