#include "telemetry/sampler.hpp"

#include <stdexcept>

namespace wirecap::telemetry {

Sampler::Sampler(sim::Scheduler& scheduler, Telemetry& telemetry,
                 Nanos interval)
    : scheduler_(scheduler), telemetry_(telemetry), interval_(interval) {
  if (interval.count() <= 0) {
    throw std::invalid_argument("Sampler: interval must be positive");
  }
}

void Sampler::start() {
  if (running_) return;
  running_ = true;
  next_ = scheduler_.schedule_after(interval_, [this] { tick(); });
}

void Sampler::stop() {
  running_ = false;
  next_.cancel();
}

void Sampler::tick() {
  if (!running_) return;
  ++ticks_;
  const Nanos now = scheduler_.now();

  for (const auto& probe : telemetry_.probes) probe(now);

  if (telemetry_.tracer.enabled()) {
    if (telemetry_.registry.size() != seen_registry_size_) {
      gauges_.clear();
      for (const auto& [name, entry] : telemetry_.registry.entries()) {
        if (entry.kind == MetricKind::kGauge) {
          gauges_.emplace_back(name.c_str(), &entry);
        }
      }
      seen_registry_size_ = telemetry_.registry.size();
    }
    for (const auto& [name, entry] : gauges_) {
      telemetry_.tracer.counter(name, now, 0,
                                MetricRegistry::gauge_value(*entry));
    }
  }

  next_ = scheduler_.schedule_after(interval_, [this] { tick(); });
}

}  // namespace wirecap::telemetry
