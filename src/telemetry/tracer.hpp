// Virtual-time event tracing (ROADMAP: unified telemetry).
//
// A fixed-capacity ring buffer of trace events stamped with Scheduler
// virtual time.  Producers are the hot paths of the capture stack —
// chunk capture/recycle/offload, descriptor-segment attaches, capture-
// thread polls, application dequeues — so the design goal is that a
// *disabled* tracer costs exactly one predicted branch per site:
//
//   * runtime gate: every call site checks `tracer && tracer->enabled()`
//     (or goes through WIRECAP_TRACE, which does it for you);
//   * compile-time gate: building with -DWIRECAP_TRACING_COMPILED_IN=0
//     turns enabled() into a constant false and lets the compiler delete
//     the recording code entirely.
//
// Event names/categories are `const char*` and must point to string
// literals (or other storage outliving the tracer) — nothing is copied
// on the hot path.  The buffer wraps: the most recent `capacity` events
// survive, `dropped()` reports how many were overwritten.  Export to
// Chrome-trace JSON (export.hpp) makes a run openable in Perfetto.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

#ifndef WIRECAP_TRACING_COMPILED_IN
#define WIRECAP_TRACING_COMPILED_IN 1
#endif

namespace wirecap::telemetry {

/// Chrome-trace phases (the subset the stack emits).
enum class TracePhase : char {
  kBegin = 'B',
  kEnd = 'E',
  kComplete = 'X',  // ts + dur
  kInstant = 'i',
  kCounter = 'C',
};

struct TraceEvent {
  const char* name = "";
  const char* category = "";
  TracePhase phase = TracePhase::kInstant;
  std::int64_t ts_ns = 0;   // virtual time
  std::int64_t dur_ns = 0;  // kComplete only
  /// Track id: receive-queue index for engine/driver events, core id for
  /// core events.
  std::uint32_t tid = 0;
  /// Up to two integer arguments, labeled.
  const char* arg0_name = nullptr;
  std::uint64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
  /// Sample value for kCounter events (doubles survive, so fractional
  /// gauges like core utilization stay meaningful in the trace viewer).
  double counter_value = 0.0;
};

class EventTracer {
 public:
  static constexpr bool kCompiledIn = WIRECAP_TRACING_COMPILED_IN != 0;
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit EventTracer(std::size_t capacity = kDefaultCapacity);

  /// The one-branch hot-path gate.
  [[nodiscard]] bool enabled() const { return kCompiledIn && enabled_; }
  void set_enabled(bool enabled) { enabled_ = kCompiledIn && enabled; }

  /// Resizes the ring; discards recorded events.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  void record(const TraceEvent& event) {
    if (!enabled()) return;
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = event;
    ++total_;
  }

  // Convenience constructors for the common shapes.  Deliberately
  // out-of-line: the hot paths carry only the enabled() test and a call
  // that is never taken while tracing is off — inlining the TraceEvent
  // construction at every site measurably bloats the capture loop.
  void instant(const char* name, const char* category, Nanos ts,
               std::uint32_t tid, const char* arg0_name = nullptr,
               std::uint64_t arg0 = 0, const char* arg1_name = nullptr,
               std::uint64_t arg1 = 0);
  void complete(const char* name, const char* category, Nanos ts, Nanos dur,
                std::uint32_t tid, const char* arg0_name = nullptr,
                std::uint64_t arg0 = 0, const char* arg1_name = nullptr,
                std::uint64_t arg1 = 0);
  /// `name` is the counter-series name; `value` its sample at `ts`.
  void counter(const char* name, Nanos ts, std::uint32_t tid, double value);

  void clear();

  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(
        total_ < static_cast<std::uint64_t>(ring_.size())
            ? total_
            : static_cast<std::uint64_t>(ring_.size()));
  }
  /// Everything ever recorded, including overwritten events.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(size());
  }

  /// Retained events in recording (= chronological) order, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

 private:
  bool enabled_ = false;
  std::uint64_t total_ = 0;
  std::vector<TraceEvent> ring_;
};

/// Records through `tracer` (a possibly-null EventTracer*) with the
/// disabled cost of a single branch.  `op` is one of the convenience
/// member calls, e.g.:
///   WIRECAP_TRACE(tracer_, instant("chunk.offload", "engine", now, q));
#define WIRECAP_TRACE(tracer, op)                                  \
  do {                                                             \
    if ((tracer) && (tracer)->enabled()) [[unlikely]] (tracer)->op; \
  } while (0)

}  // namespace wirecap::telemetry
