#include "telemetry/tracer.hpp"

#include <stdexcept>

namespace wirecap::telemetry {

EventTracer::EventTracer(std::size_t capacity) { set_capacity(capacity); }

void EventTracer::set_capacity(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("EventTracer: capacity must be positive");
  }
  ring_.assign(capacity, TraceEvent{});
  total_ = 0;
}

void EventTracer::clear() { total_ = 0; }

void EventTracer::instant(const char* name, const char* category, Nanos ts,
                          std::uint32_t tid, const char* arg0_name,
                          std::uint64_t arg0, const char* arg1_name,
                          std::uint64_t arg1) {
  if (!enabled()) return;
  record(TraceEvent{name, category, TracePhase::kInstant, ts.count(), 0, tid,
                    arg0_name, arg0, arg1_name, arg1});
}

void EventTracer::complete(const char* name, const char* category, Nanos ts,
                           Nanos dur, std::uint32_t tid, const char* arg0_name,
                           std::uint64_t arg0, const char* arg1_name,
                           std::uint64_t arg1) {
  if (!enabled()) return;
  record(TraceEvent{name, category, TracePhase::kComplete, ts.count(),
                    dur.count(), tid, arg0_name, arg0, arg1_name, arg1});
}

void EventTracer::counter(const char* name, Nanos ts, std::uint32_t tid,
                          double value) {
  if (!enabled()) return;
  record(TraceEvent{name, "sampler", TracePhase::kCounter, ts.count(), 0, tid,
                    nullptr, 0, nullptr, 0, value});
}

std::vector<TraceEvent> EventTracer::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - static_cast<std::uint64_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        ring_[static_cast<std::size_t>((first + i) % ring_.size())]);
  }
  return out;
}

}  // namespace wirecap::telemetry
