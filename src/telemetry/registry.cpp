#include "telemetry/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace wirecap::telemetry {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kSummary: return "summary";
    case MetricKind::kSeries: return "series";
  }
  return "?";
}

MetricRegistry::Entry& MetricRegistry::get_or_create(const std::string& name,
                                                     MetricKind kind) {
  if (name.empty()) {
    throw std::invalid_argument("MetricRegistry: empty metric name");
  }
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricRegistry: metric '" + name +
                           "' already registered as " +
                           to_string(it->second.kind) + ", requested as " +
                           to_string(kind));
  }
  return it->second;
}

MetricRegistry::Counter MetricRegistry::counter(const std::string& name) {
  Entry& entry = get_or_create(name, MetricKind::kCounter);
  if (!entry.counter) {
    if (entry.counter_fn) {
      throw std::logic_error("MetricRegistry: counter '" + name +
                             "' is bound to a callback");
    }
    entry.counter = std::make_shared<std::uint64_t>(0);
  }
  return Counter{entry.counter};
}

MetricRegistry::Gauge MetricRegistry::gauge(const std::string& name) {
  Entry& entry = get_or_create(name, MetricKind::kGauge);
  if (!entry.gauge) {
    if (entry.gauge_fn) {
      throw std::logic_error("MetricRegistry: gauge '" + name +
                             "' is bound to a callback");
    }
    entry.gauge = std::make_shared<double>(0.0);
  }
  return Gauge{entry.gauge};
}

MetricRegistry::Histogram MetricRegistry::histogram(const std::string& name) {
  Entry& entry = get_or_create(name, MetricKind::kHistogram);
  if (!entry.histogram) entry.histogram = std::make_shared<Log2Histogram>();
  return Histogram{entry.histogram};
}

MetricRegistry::Summary MetricRegistry::summary(const std::string& name) {
  Entry& entry = get_or_create(name, MetricKind::kSummary);
  if (!entry.summary) entry.summary = std::make_shared<SummaryStats>();
  return Summary{entry.summary};
}

MetricRegistry::Series MetricRegistry::series(const std::string& name,
                                              Nanos bin_width) {
  Entry& entry = get_or_create(name, MetricKind::kSeries);
  if (entry.series_view) {
    throw std::logic_error("MetricRegistry: series '" + name +
                           "' is bound to a view");
  }
  if (!entry.series) entry.series = std::make_shared<BinnedSeries>(bin_width);
  return Series{entry.series};
}

void MetricRegistry::bind_counter(const std::string& name,
                                  std::function<std::uint64_t()> fn) {
  Entry& entry = get_or_create(name, MetricKind::kCounter);
  if (entry.counter) {
    throw std::logic_error("MetricRegistry: counter '" + name +
                           "' already owned by a handle");
  }
  entry.counter_fn = std::move(fn);
}

void MetricRegistry::bind_gauge(const std::string& name,
                                std::function<double()> fn) {
  Entry& entry = get_or_create(name, MetricKind::kGauge);
  if (entry.gauge) {
    throw std::logic_error("MetricRegistry: gauge '" + name +
                           "' already owned by a handle");
  }
  entry.gauge_fn = std::move(fn);
}

void MetricRegistry::bind_series(const std::string& name,
                                 const BinnedSeries* view) {
  Entry& entry = get_or_create(name, MetricKind::kSeries);
  if (entry.series) {
    throw std::logic_error("MetricRegistry: series '" + name +
                           "' already owned by a handle");
  }
  entry.series_view = view;
}

std::uint64_t MetricRegistry::counter_value(const Entry& entry) {
  if (entry.counter) return *entry.counter;
  if (entry.counter_fn) return entry.counter_fn();
  return 0;
}

double MetricRegistry::gauge_value(const Entry& entry) {
  if (entry.gauge) return *entry.gauge;
  if (entry.gauge_fn) return entry.gauge_fn();
  return 0.0;
}

const BinnedSeries* MetricRegistry::series_of(const Entry& entry) {
  if (entry.series) return entry.series.get();
  return entry.series_view;
}

std::string MetricRegistry::labeled(
    std::string_view name,
    std::vector<std::pair<std::string, std::string>> labels) {
  if (labels.empty()) return std::string{name};
  std::sort(labels.begin(), labels.end());
  std::string out{name};
  out.push_back('{');
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += labels[i].first;
    out.push_back('=');
    out += labels[i].second;
  }
  out.push_back('}');
  return out;
}

std::string MetricRegistry::sanitize_component(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc)
                      ? static_cast<char>(std::tolower(uc))
                      : '_');
  }
  return out;
}

}  // namespace wirecap::telemetry
