#include "telemetry/export.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace wirecap::telemetry {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

/// RFC-4180 CSV field: quoted (with inner quotes doubled) whenever the
/// value contains a separator, quote, or line break — hostile metric
/// names must not be able to smuggle extra columns or rows into the
/// export.
void append_csv_field(std::string& out, std::string_view s) {
  const bool needs_quoting =
      s.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) {
    out += s;
    return;
  }
  out.push_back('"');
  for (const char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  append_escaped(out, s);
  out.push_back('"');
}

/// Locale-independent, deterministic double formatting; non-finite
/// values (which valid JSON cannot carry) become null.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_histogram(std::string& out, const Log2Histogram& hist) {
  out += "\"count\":";
  append_u64(out, hist.count());
  out += ",\"p50\":";
  append_number(out, hist.quantile(0.5));
  out += ",\"p90\":";
  append_number(out, hist.quantile(0.9));
  out += ",\"p99\":";
  append_number(out, hist.quantile(0.99));
  out += ",\"buckets\":{";
  bool first = true;
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    if (hist.bucket(i) == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += std::to_string(i);
    out += "\":";
    append_u64(out, hist.bucket(i));
  }
  out.push_back('}');
}

void append_summary(std::string& out, const SummaryStats& stats) {
  out += "\"count\":";
  append_u64(out, stats.count());
  out += ",\"mean\":";
  append_number(out, stats.mean());
  out += ",\"stddev\":";
  append_number(out, stats.stddev());
  out += ",\"min\":";
  append_number(out, stats.min());
  out += ",\"max\":";
  append_number(out, stats.max());
}

void append_series(std::string& out, const BinnedSeries& series) {
  out += "\"bin_width_ns\":";
  append_u64(out, static_cast<std::uint64_t>(series.bin_width().count()));
  out += ",\"total\":";
  append_u64(out, series.total());
  out += ",\"peak\":";
  append_u64(out, series.peak());
  out += ",\"bins\":[";
  for (std::size_t i = 0; i < series.bin_count(); ++i) {
    if (i != 0) out.push_back(',');
    append_u64(out, series.bin(i));
  }
  out.push_back(']');
}

}  // namespace

std::string metrics_to_json(const MetricRegistry& registry) {
  std::string out;
  out.reserve(256 + registry.size() * 64);
  out += "{\"schema\":\"wirecap.metrics.v1\",\"metrics\":[";
  bool first = true;
  for (const auto& [name, entry] : registry.entries()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, name);
    out += ",\"kind\":\"";
    out += to_string(entry.kind);
    out += "\",";
    switch (entry.kind) {
      case MetricKind::kCounter:
        out += "\"value\":";
        append_u64(out, MetricRegistry::counter_value(entry));
        break;
      case MetricKind::kGauge:
        out += "\"value\":";
        append_number(out, MetricRegistry::gauge_value(entry));
        break;
      case MetricKind::kHistogram:
        append_histogram(out, *entry.histogram);
        break;
      case MetricKind::kSummary:
        append_summary(out, *entry.summary);
        break;
      case MetricKind::kSeries: {
        const BinnedSeries* series = MetricRegistry::series_of(entry);
        if (series) {
          append_series(out, *series);
        } else {
          out += "\"total\":0";
        }
        break;
      }
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string metrics_to_csv(const MetricRegistry& registry) {
  std::string out = "name,kind,count,value,p50,p90,p99,min,max,mean\n";
  for (const auto& [name, entry] : registry.entries()) {
    std::string row;
    append_csv_field(row, name);
    row.push_back(',');
    row += to_string(entry.kind);
    switch (entry.kind) {
      case MetricKind::kCounter:
        row += ",,";
        append_u64(row, MetricRegistry::counter_value(entry));
        row += ",,,,,,";
        break;
      case MetricKind::kGauge:
        row += ",,";
        append_number(row, MetricRegistry::gauge_value(entry));
        row += ",,,,,,";
        break;
      case MetricKind::kHistogram: {
        const Log2Histogram& hist = *entry.histogram;
        row.push_back(',');
        append_u64(row, hist.count());
        row += ",,";
        append_number(row, hist.quantile(0.5));
        row.push_back(',');
        append_number(row, hist.quantile(0.9));
        row.push_back(',');
        append_number(row, hist.quantile(0.99));
        row += ",,,";
        break;
      }
      case MetricKind::kSummary: {
        const SummaryStats& stats = *entry.summary;
        row.push_back(',');
        append_u64(row, stats.count());
        row += ",,,,,";
        append_number(row, stats.min());
        row.push_back(',');
        append_number(row, stats.max());
        row.push_back(',');
        append_number(row, stats.mean());
        break;
      }
      case MetricKind::kSeries: {
        const BinnedSeries* series = MetricRegistry::series_of(entry);
        row.push_back(',');
        append_u64(row, series ? series->total() : 0);
        row += ",,,,,,";
        append_u64(row, series ? series->peak() : 0);
        row.push_back(',');
        append_number(row, series ? series->mean() : 0.0);
        break;
      }
    }
    out += row;
    out.push_back('\n');
  }
  return out;
}

std::string trace_to_chrome_json(const EventTracer& tracer) {
  const std::vector<TraceEvent> events = tracer.events();
  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, event.name);
    out += ",\"cat\":";
    append_json_string(out, event.category);
    out += ",\"ph\":\"";
    out.push_back(static_cast<char>(event.phase));
    out += "\",\"pid\":0,\"tid\":";
    append_u64(out, event.tid);
    // Chrome-trace timestamps are microseconds.
    char ts[48];
    std::snprintf(ts, sizeof(ts), ",\"ts\":%.3f",
                  static_cast<double>(event.ts_ns) / 1000.0);
    out += ts;
    if (event.phase == TracePhase::kComplete) {
      std::snprintf(ts, sizeof(ts), ",\"dur\":%.3f",
                    static_cast<double>(event.dur_ns) / 1000.0);
      out += ts;
    }
    if (event.phase == TracePhase::kCounter) {
      out += ",\"args\":{\"value\":";
      append_number(out, event.counter_value);
      out.push_back('}');
    } else if (event.arg0_name) {
      out += ",\"args\":{";
      append_json_string(out, event.arg0_name);
      out.push_back(':');
      append_u64(out, event.arg0);
      if (event.arg1_name) {
        out.push_back(',');
        append_json_string(out, event.arg1_name);
        out.push_back(':');
        append_u64(out, event.arg1);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out += "]}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    log_line(LogLevel::kWarn, "telemetry", "cannot open " + path);
    return false;
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  if (!ok) {
    log_line(LogLevel::kWarn, "telemetry", "short write to " + path);
  }
  return ok;
}

bool write_metrics(const MetricRegistry& registry, const std::string& path) {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  return write_file(path, csv ? metrics_to_csv(registry)
                              : metrics_to_json(registry));
}

bool write_trace(const EventTracer& tracer, const std::string& path) {
  return write_file(path, trace_to_chrome_json(tracer));
}

}  // namespace wirecap::telemetry
