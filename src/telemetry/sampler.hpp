// Periodic telemetry sampler (the paper's time-series figures are all
// fixed-interval samples of queue state; Figure 3 is 10 ms bins).
//
// At every virtual-time tick the sampler (1) runs each registered probe
// — components update high-water marks and other poll-only state there
// — and (2) when tracing is enabled, emits one Chrome-trace counter
// event per *gauge* in the registry, so queue depths, pool free-chunk
// counts and core utilization become zoomable time series in Perfetto.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace wirecap::telemetry {

class Sampler {
 public:
  /// Ticks every `interval` of virtual time once started.
  Sampler(sim::Scheduler& scheduler, Telemetry& telemetry, Nanos interval);

  /// Schedules the first tick one interval from now.  Idempotent.
  void start();
  void stop();

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void tick();

  sim::Scheduler& scheduler_;
  Telemetry& telemetry_;
  Nanos interval_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
  sim::EventHandle next_;
  /// Gauge entries cached for counter-event emission; refreshed when the
  /// registry grows (entries are never removed, and std::map nodes are
  /// stable, so the cached pointers stay valid).
  std::size_t seen_registry_size_ = 0;
  std::vector<std::pair<const char*, const MetricRegistry::Entry*>> gauges_;
};

}  // namespace wirecap::telemetry
