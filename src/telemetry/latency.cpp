#include "telemetry/latency.hpp"

#include <algorithm>
#include <cstdio>

namespace wirecap::telemetry {

// --- HdrHistogram ---

std::uint64_t HdrHistogram::bucket_floor(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint32_t octave =
      kSubBucketBits +
      static_cast<std::uint32_t>((index - kSubBuckets) / kSubBuckets);
  const std::uint64_t sub = (index - kSubBuckets) % kSubBuckets;
  return (std::uint64_t{1} << octave) + (sub << (octave - kSubBucketBits));
}

std::uint64_t HdrHistogram::bucket_width(std::size_t index) {
  if (index < kSubBuckets) return 1;
  const std::uint32_t octave =
      kSubBucketBits +
      static_cast<std::uint32_t>((index - kSubBuckets) / kSubBuckets);
  return std::uint64_t{1} << (octave - kSubBucketBits);
}

double HdrHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (counts_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          (target - cumulative) / static_cast<double>(counts_[i]);
      const double lo = static_cast<double>(bucket_floor(i));
      const double hi =
          std::min(lo + static_cast<double>(bucket_width(i)),
                   static_cast<double>(max_) + 1.0);
      return lo + within * std::max(0.0, hi - lo);
    }
    cumulative = next;
  }
  // Numeric slack: fall back to the recorded maximum.
  return static_cast<double>(max_);
}

void HdrHistogram::merge(const HdrHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  max_ = std::max(max_, other.max_);
}

void HdrHistogram::reset() {
  counts_.fill(0);
  count_ = 0;
  max_ = 0;
}

// --- FlightRecorder ---

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::set_capacity(std::size_t capacity) {
  ring_.assign(capacity == 0 ? 1 : capacity, ChunkJourney{});
  head_ = 0;
  size_ = 0;
}

void FlightRecorder::push(const ChunkJourney& journey) {
  ring_[head_] = journey;
  head_ = (head_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  if (journey.e2e_ns() >= threshold_.count()) {
    ++outliers_seen_;
    if (outliers_.size() < kMaxRetained) outliers_.push_back(journey);
  }
}

std::vector<ChunkJourney> FlightRecorder::recent() const {
  std::vector<ChunkJourney> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  head_ = 0;
  size_ = 0;
  outliers_.clear();
  outliers_seen_ = 0;
}

std::string FlightRecorder::dump() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "flight recorder: %llu outliers seen (threshold %lld ns), "
                "%zu retained\n",
                static_cast<unsigned long long>(outliers_seen_),
                static_cast<long long>(threshold_.count()),
                outliers_.size());
  out += line;
  for (const ChunkJourney& j : outliers_) {
    std::snprintf(
        line, sizeof(line),
        "  ring=%u chunk=%u pkts=%u via_queue=%u%s e2e=%lld ns "
        "[capture=%lld enqueue=%lld queue_wait=%lld deliver=%lld]\n",
        j.ring, j.chunk, j.pkt_count, j.dequeue_queue,
        j.rescued ? " rescued" : "", static_cast<long long>(j.e2e_ns()),
        static_cast<long long>(j.capture_ns()),
        static_cast<long long>(j.enqueued_ns - j.captured_ns),
        static_cast<long long>(j.queue_wait_ns()),
        static_cast<long long>(j.deliver_ns()));
    out += line;
  }
  return out;
}

// --- LatencyTracker ---

void LatencyTracker::record_journey(const ChunkJourney& journey) {
  if (!journey.complete()) {
    ++incomplete_;
    return;
  }
  if (journey.ring >= queues_.size()) queues_.resize(journey.ring + 1);
  StageHistograms& h = queues_[journey.ring];
  h.e2e.record(journey.e2e_ns());
  h.capture.record(journey.capture_ns());
  h.queue_wait.record(journey.queue_wait_ns());
  h.deliver.record(journey.deliver_ns());
  recorder_.push(journey);
  ++recorded_;
}

double LatencyTracker::stage_quantile(std::uint32_t queue, Stage stage,
                                      double q) const {
  const StageHistograms* h = queue_histograms(queue);
  if (h == nullptr) return 0.0;
  switch (stage) {
    case Stage::kE2e:
      return h->e2e.quantile(q);
    case Stage::kCapture:
      return h->capture.quantile(q);
    case Stage::kQueueWait:
      return h->queue_wait.quantile(q);
    case Stage::kDeliver:
      return h->deliver.quantile(q);
  }
  return 0.0;
}

void LatencyTracker::reset() {
  queues_.clear();
  recorder_.clear();
  recorded_ = 0;
  incomplete_ = 0;
}

}  // namespace wirecap::telemetry
