// Machine-readable exporters for the telemetry layer.
//
// All serializers are deterministic: metrics are emitted in registry
// (name-sorted) order, trace events in recording order, and doubles are
// formatted with a fixed locale-independent format — two identical
// virtual-time runs produce byte-identical files, which is what the
// bench-trajectory tracking (BENCH_*.json) and the golden-file tests
// rely on.
#pragma once

#include <string>

#include "telemetry/registry.hpp"
#include "telemetry/tracer.hpp"

namespace wirecap::telemetry {

/// JSON snapshot of every metric in the registry:
///   {"schema":"wirecap.metrics.v1","metrics":[{"name":...,"kind":...},..]}
[[nodiscard]] std::string metrics_to_json(const MetricRegistry& registry);

/// Flat CSV (name,kind,count,value,p50,p90,p99,min,max,mean) with empty
/// fields where a column does not apply to the metric kind.
[[nodiscard]] std::string metrics_to_csv(const MetricRegistry& registry);

/// Chrome-trace JSON ({"traceEvents":[...]}) of the retained events —
/// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
/// Timestamps are virtual-time microseconds.
[[nodiscard]] std::string trace_to_chrome_json(const EventTracer& tracer);

/// Writes `content` to `path` (single fwrite).  Returns false and logs
/// a warning on I/O failure.
bool write_file(const std::string& path, const std::string& content);

/// Writes metrics_to_json, or metrics_to_csv when `path` ends in ".csv".
bool write_metrics(const MetricRegistry& registry, const std::string& path);

/// Writes trace_to_chrome_json to `path`.
bool write_trace(const EventTracer& tracer, const std::string& path);

}  // namespace wirecap::telemetry
