// End-to-end latency observability for the chunk data path.
//
// Three pieces, all fixed-memory so they can sit on the hot path:
//
//  * HdrHistogram — an HDR-style log-linear histogram over integer
//    nanosecond values.  Each power-of-two octave is split into 32
//    linear sub-buckets, bounding relative quantile error at ~3.1%
//    while keeping the whole structure a flat 1920-counter array
//    (~15 KiB).  Values below 32 ns are exact.
//
//  * ChunkJourney / LatencyTracker — one journey record per chunk,
//    stamped at each lifecycle transition (arrival → captured →
//    enqueued → dequeued → released); the tracker folds completed
//    journeys into per-queue, per-stage histograms.  A single
//    `enabled()` flag gates every stamp so the disabled cost is one
//    predicted branch (the pattern EventTracer established).
//
//  * FlightRecorder — a ring of recently completed journeys plus a
//    retained list of outliers (end-to-end latency above a
//    configurable threshold), so a p999 spike is explainable from its
//    full span sequence, not just visible in a histogram.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace wirecap::telemetry {

/// Log-linear fixed-memory histogram of non-negative nanosecond values.
///
/// Layout: indices [0, 32) hold values 0..31 exactly; above that each
/// octave `o` (values [2^o, 2^(o+1))) is split into 32 linear
/// sub-buckets of width 2^(o-5).  Recording, like Log2Histogram, is a
/// handful of bit operations; quantiles interpolate uniformly within
/// the hit bucket.
class HdrHistogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;  // 32
  /// Octaves 5..63 (values 32 .. 2^64-1) each contribute kSubBuckets.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;  // 1920

  void record(std::int64_t value_ns) {
    const std::uint64_t v =
        value_ns < 0 ? 0u : static_cast<std::uint64_t>(value_ns);
    counts_[index_of(v)] += 1;
    count_ += 1;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t max_value() const { return max_; }

  /// Value at quantile q in [0, 1], interpolated within the bucket.
  /// Mirrors Log2Histogram::quantile; returns 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  void merge(const HdrHistogram& other);
  void reset();

  /// Inclusive lower bound of bucket `index` (exposed for tests).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t index);
  /// Width of bucket `index` (exposed for tests).
  [[nodiscard]] static std::uint64_t bucket_width(std::size_t index);

  [[nodiscard]] static std::size_t index_of(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const std::uint32_t octave =
        static_cast<std::uint32_t>(std::bit_width(v)) - 1;
    const std::uint64_t sub =
        (v - (std::uint64_t{1} << octave)) >> (octave - kSubBucketBits);
    return kSubBuckets +
           static_cast<std::size_t>(octave - kSubBucketBits) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

/// One chunk's trip through the data path, stamped in virtual time.
/// A field of -1 means "stage not reached".  `ring` is the owning
/// ring (pool) the chunk recycles to; `dequeue_queue` is the queue an
/// application popped it from (differs from `ring` after offloading).
struct ChunkJourney {
  std::uint32_t ring = 0;
  std::uint32_t chunk = 0;
  std::uint32_t pkt_count = 0;
  std::uint32_t dequeue_queue = 0;
  bool rescued = false;
  /// Enqueued onto a buddy via the offload handoff rather than the
  /// home queue (work-stealing path in lock-free mode).
  bool stolen = false;
  std::int64_t arrival_ns = -1;   // first-cell NIC writeback timestamp
  std::int64_t captured_ns = -1;  // capture ioctl completed
  std::int64_t enqueued_ns = -1;  // pushed onto a capture queue
  std::int64_t dequeued_ns = -1;  // popped by an application
  std::int64_t released_ns = -1;  // last reference dropped / recycled

  [[nodiscard]] bool complete() const {
    return arrival_ns >= 0 && captured_ns >= arrival_ns &&
           enqueued_ns >= captured_ns && dequeued_ns >= enqueued_ns &&
           released_ns >= dequeued_ns;
  }
  [[nodiscard]] std::int64_t e2e_ns() const { return released_ns - arrival_ns; }
  [[nodiscard]] std::int64_t capture_ns() const {
    return captured_ns - arrival_ns;
  }
  [[nodiscard]] std::int64_t queue_wait_ns() const {
    return dequeued_ns - captured_ns;
  }
  [[nodiscard]] std::int64_t deliver_ns() const {
    return released_ns - dequeued_ns;
  }
};

/// Ring of recent journeys plus retained outliers.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;
  static constexpr std::size_t kMaxRetained = 64;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void set_capacity(std::size_t capacity);
  void set_threshold(Nanos threshold) { threshold_ = threshold; }
  [[nodiscard]] Nanos threshold() const { return threshold_; }

  /// Record a completed journey; retains it as an outlier when its
  /// end-to-end latency meets the threshold.
  void push(const ChunkJourney& journey);

  /// Recent journeys, oldest first.
  [[nodiscard]] std::vector<ChunkJourney> recent() const;
  [[nodiscard]] const std::vector<ChunkJourney>& outliers() const {
    return outliers_;
  }
  /// Total outliers seen (retention caps at kMaxRetained).
  [[nodiscard]] std::uint64_t outliers_seen() const { return outliers_seen_; }

  /// Human-readable dump of retained outliers with per-stage deltas.
  [[nodiscard]] std::string dump() const;

  void clear();

 private:
  std::vector<ChunkJourney> ring_;
  std::size_t head_ = 0;   // next write slot
  std::size_t size_ = 0;   // valid entries
  Nanos threshold_ = Nanos::from_millis(1);
  std::vector<ChunkJourney> outliers_;
  std::uint64_t outliers_seen_ = 0;
};

/// Per-queue, per-stage latency aggregation for the capture engine.
/// Lives inside Telemetry; the engine holds a pointer and gates every
/// stamp on `enabled()`.
class LatencyTracker {
 public:
  enum class Stage : std::uint8_t { kE2e, kCapture, kQueueWait, kDeliver };

  struct StageHistograms {
    HdrHistogram e2e;
    HdrHistogram capture;
    HdrHistogram queue_wait;
    HdrHistogram deliver;
  };

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void set_outlier_threshold(Nanos threshold) {
    recorder_.set_threshold(threshold);
  }
  void set_recorder_capacity(std::size_t capacity) {
    recorder_.set_capacity(capacity);
  }

  /// Folds a completed journey into the owning ring's histograms and
  /// the flight recorder.  Incomplete journeys are counted and
  /// discarded (a chunk captured before enabling, or released on a
  /// non-delivery path, has no meaningful span sequence).
  void record_journey(const ChunkJourney& journey);

  [[nodiscard]] std::uint64_t journeys_recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t journeys_incomplete() const {
    return incomplete_;
  }

  /// Quantile of one stage on one queue; 0 when the queue has no data.
  [[nodiscard]] double stage_quantile(std::uint32_t queue, Stage stage,
                                      double q) const;
  [[nodiscard]] const StageHistograms* queue_histograms(
      std::uint32_t queue) const {
    return queue < queues_.size() ? &queues_[queue] : nullptr;
  }

  [[nodiscard]] FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }

  void reset();

 private:
  bool enabled_ = false;
  std::vector<StageHistograms> queues_;
  FlightRecorder recorder_;
  std::uint64_t recorded_ = 0;
  std::uint64_t incomplete_ = 0;
};

}  // namespace wirecap::telemetry
