// The metrics registry — one tree for every counter, gauge and
// distribution the reproduction collects (ROADMAP: unified telemetry).
//
// Metrics live under hierarchical dotted names ("engine.wirecap_a.q3.
// delivered"); the registry keeps them in a sorted map so snapshots and
// exports are deterministic.  Two flavours coexist:
//
//   * owned metrics — the registry allocates the cell and hands out a
//     cheap copyable handle (Counter/Gauge/Histogram/Summary/Series);
//   * bound metrics — a callback (or a const view of an existing stats
//     object) is registered as the value source, which lets the long-
//     standing per-component structs (engines::EngineQueueStats,
//     driver::WirecapDriverStats, core::WirecapQueueExtraStats, the
//     queue_profiler BinnedSeries) publish through the same tree without
//     adding a single instruction to the paths that update them.
//
// Collision rules: requesting an existing name with the same kind
// returns the existing metric (owned) or replaces the source (bound);
// requesting it with a different kind throws std::logic_error.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace wirecap::telemetry {

enum class MetricKind : std::uint8_t {
  kCounter,    // monotone std::uint64_t
  kGauge,      // instantaneous double
  kHistogram,  // Log2Histogram
  kSummary,    // SummaryStats
  kSeries,     // BinnedSeries (virtual-time binned counts)
};

[[nodiscard]] const char* to_string(MetricKind kind);

class MetricRegistry {
 public:
  class Counter {
   public:
    Counter() = default;
    void add(std::uint64_t n = 1) { *cell_ += n; }
    [[nodiscard]] std::uint64_t value() const { return cell_ ? *cell_ : 0; }

   private:
    friend class MetricRegistry;
    explicit Counter(std::shared_ptr<std::uint64_t> cell)
        : cell_(std::move(cell)) {}
    std::shared_ptr<std::uint64_t> cell_;
  };

  class Gauge {
   public:
    Gauge() = default;
    void set(double v) { *cell_ = v; }
    [[nodiscard]] double value() const { return cell_ ? *cell_ : 0.0; }

   private:
    friend class MetricRegistry;
    explicit Gauge(std::shared_ptr<double> cell) : cell_(std::move(cell)) {}
    std::shared_ptr<double> cell_;
  };

  class Histogram {
   public:
    Histogram() = default;
    void record(std::uint64_t v) { cell_->record(v); }
    [[nodiscard]] const Log2Histogram& hist() const { return *cell_; }

   private:
    friend class MetricRegistry;
    explicit Histogram(std::shared_ptr<Log2Histogram> cell)
        : cell_(std::move(cell)) {}
    std::shared_ptr<Log2Histogram> cell_;
  };

  class Summary {
   public:
    Summary() = default;
    void record(double v) { cell_->record(v); }
    [[nodiscard]] const SummaryStats& stats() const { return *cell_; }

   private:
    friend class MetricRegistry;
    explicit Summary(std::shared_ptr<SummaryStats> cell)
        : cell_(std::move(cell)) {}
    std::shared_ptr<SummaryStats> cell_;
  };

  class Series {
   public:
    Series() = default;
    void record(Nanos t, std::uint64_t n = 1) { cell_->record(t, n); }
    [[nodiscard]] const BinnedSeries& series() const { return *cell_; }

   private:
    friend class MetricRegistry;
    explicit Series(std::shared_ptr<BinnedSeries> cell)
        : cell_(std::move(cell)) {}
    std::shared_ptr<BinnedSeries> cell_;
  };

  /// One registered metric.  Exactly one of the owned cells / bound
  /// sources matching `kind` is set.
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::shared_ptr<std::uint64_t> counter;
    std::function<std::uint64_t()> counter_fn;
    std::shared_ptr<double> gauge;
    std::function<double()> gauge_fn;
    std::shared_ptr<Log2Histogram> histogram;
    std::shared_ptr<SummaryStats> summary;
    std::shared_ptr<BinnedSeries> series;
    const BinnedSeries* series_view = nullptr;
  };

  // --- owned metrics (get-or-create) ---
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);
  Summary summary(const std::string& name);
  Series series(const std::string& name, Nanos bin_width);

  // --- bound metrics (register-or-replace the source) ---
  void bind_counter(const std::string& name, std::function<std::uint64_t()> fn);
  void bind_gauge(const std::string& name, std::function<double()> fn);
  /// The view must outlive the registry's last snapshot.
  void bind_series(const std::string& name, const BinnedSeries* view);

  // --- inspection ---
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.count(name) != 0;
  }
  /// Sorted by name — the deterministic iteration order every exporter
  /// relies on.
  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }

  /// Resolved current value of a counter/gauge entry (owned or bound).
  [[nodiscard]] static std::uint64_t counter_value(const Entry& entry);
  [[nodiscard]] static double gauge_value(const Entry& entry);
  /// The series an entry exposes (owned or view); null when absent.
  [[nodiscard]] static const BinnedSeries* series_of(const Entry& entry);

  /// Formats "name{k1=v1,k2=v2}" with labels sorted by key, the
  /// canonical spelling for labeled metrics.
  [[nodiscard]] static std::string labeled(
      std::string_view name,
      std::vector<std::pair<std::string, std::string>> labels);

  /// Lowercases `component` and maps every non-alphanumeric character to
  /// '_' so engine names ("WireCAP-A") become path segments
  /// ("wirecap_a").
  [[nodiscard]] static std::string sanitize_component(std::string_view name);

 private:
  Entry& get_or_create(const std::string& name, MetricKind kind);

  std::map<std::string, Entry> entries_;
};

}  // namespace wirecap::telemetry
