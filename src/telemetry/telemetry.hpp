// The telemetry context threaded through an experiment: one metrics
// registry, one event tracer, and the probe list the periodic sampler
// drives.  Components receive a Telemetry& in bind_telemetry()-style
// hooks and register their metrics/probes against it; the harness owns
// the instance and the exporters read from it after the run.
#pragma once

#include <functional>
#include <vector>

#include "common/units.hpp"
#include "telemetry/latency.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/tracer.hpp"

namespace wirecap::telemetry {

/// Harness-facing knobs (apps::ExperimentConfig::telemetry).
struct TelemetryConfig {
  /// Runtime gate for event tracing (the compile-time gate is
  /// WIRECAP_TRACING_COMPILED_IN).
  bool trace = false;
  std::size_t trace_capacity = EventTracer::kDefaultCapacity;
  /// Virtual-time period of the gauge sampler; zero disables it (the
  /// default, so unrelated experiments schedule no extra events).
  Nanos sample_interval = Nanos::zero();
  /// Runtime gate for chunk-journey latency tracking (stage histograms
  /// + flight recorder).  Off by default: the hot path then pays one
  /// predicted branch per stamp site.
  bool latency = false;
  /// End-to-end latency at which a journey is retained by the flight
  /// recorder as an outlier.
  Nanos latency_outlier_threshold = Nanos::from_millis(1);
  /// Journeys the flight recorder keeps in its recent-history ring.
  std::size_t flight_recorder_capacity = FlightRecorder::kDefaultCapacity;
};

struct Telemetry {
  MetricRegistry registry;
  EventTracer tracer;
  /// Chunk-journey latency aggregation (per-stage histograms, flight
  /// recorder).  Disabled until the harness enables it.
  LatencyTracker latency;
  /// Invoked by the Sampler at every tick with the current virtual
  /// time.  Components use probes for state only visible by polling
  /// (high-water marks); instantaneous values should be bound gauges,
  /// which the sampler already turns into trace counter series.
  std::vector<std::function<void(Nanos)>> probes;
};

}  // namespace wirecap::telemetry
