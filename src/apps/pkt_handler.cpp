#include "apps/pkt_handler.hpp"

#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"

namespace wirecap::apps {

PktHandler::PktHandler(sim::SimCore& core, engines::CaptureEngine& engine,
                       std::uint32_t queue, PktHandlerConfig config,
                       const sim::CostModel& costs)
    : core_(core),
      engine_(engine),
      queue_(queue),
      config_(std::move(config)),
      filter_(bpf::compile_filter(config_.filter)) {
  per_packet_cost_ =
      costs.pkt_handler_cost(config_.x) + engine.app_overhead_per_packet();
  if (config_.forward) {
    per_packet_cost_ += costs.forward_attach_cost;
  }
  engine_.open(queue_, core_);
  engine_.set_data_callback(queue_, [this] { maybe_start(); });
  maybe_start();
}

void PktHandler::maybe_start() {
  if (busy_) return;
  busy_ = true;
  process_next();
}

void PktHandler::process_next() {
  auto view = engine_.try_next(queue_);
  if (!view) {
    busy_ = false;  // back to blocking on the capture API
    return;
  }
  // Charge the full processing cost (capture call + x BPF applications
  // [+ forward attach]), then act on the packet.
  core_.submit(sim::WorkPriority::kUser, per_packet_cost_,
               [this, v = *view]() mutable {
    ++stats_.processed;
    const bool matches = !config_.execute_filter ||
                         bpf::matches(filter_, v.bytes, v.wire_len);
    if (matches) ++stats_.matched;
    if (hook_) hook_(v);
    if (config_.forward) {
      if (engine_.forward(queue_, v, *config_.forward->nic,
                          config_.forward->tx_queue)) {
        ++stats_.forwarded;
      } else {
        ++stats_.forward_failures;
      }
    } else {
      engine_.done(queue_, v);
    }
    process_next();
  });
}

QueueProfiler::QueueProfiler(sim::SimCore& core,
                             engines::CaptureEngine& engine,
                             std::uint32_t queue, const sim::CostModel& costs,
                             Nanos bin_width)
    : series_(bin_width),
      handler_(core, engine, queue, PktHandlerConfig{0, "", false, {}},
               costs) {
  handler_.set_packet_hook([this](const engines::CaptureView& view) {
    series_.record(view.timestamp);
  });
}

}  // namespace wirecap::apps
