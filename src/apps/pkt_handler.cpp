#include "apps/pkt_handler.hpp"

#include "bpf/codegen.hpp"

namespace wirecap::apps {

PktHandler::PktHandler(sim::SimCore& core, engines::CaptureEngine& engine,
                       std::uint32_t queue, PktHandlerConfig config,
                       const sim::CostModel& costs)
    : core_(core),
      engine_(engine),
      queue_(queue),
      config_(std::move(config)),
      filter_(bpf::compile_filter(config_.filter)) {
  per_packet_cost_ =
      costs.pkt_handler_cost(config_.x) + engine.app_overhead_per_packet();
  if (config_.forward) {
    per_packet_cost_ += costs.forward_attach_cost;
  }
  if (config_.batch_packets == 0) config_.batch_packets = 1;
  engine_.open(queue_, core_);
  engine_.set_data_callback(queue_, [this] { maybe_start(); });
  maybe_start();
}

void PktHandler::maybe_start() {
  if (busy_) return;
  busy_ = true;
  process_batch();
}

void PktHandler::process_batch() {
  const std::size_t n =
      engine_.try_next_batch(queue_, config_.batch_packets, batch_);
  if (n == 0) {
    busy_ = false;  // back to blocking on the capture API
    return;
  }
  // Charge the whole batch's processing cost (capture call + x BPF
  // applications [+ forward attach] per packet) as one work item, then
  // act on the batch.  batch_ is stable until this item completes:
  // maybe_start() never re-enters while busy_.
  core_.submit(sim::WorkPriority::kUser,
               per_packet_cost_ * static_cast<std::int64_t>(n), [this] {
    const std::size_t count = batch_.size();
    ++stats_.batches;
    stats_.processed += count;  // one stats update per batch
    if (config_.execute_filter) {
      stats_.matched += filter_.run_batch(batch_, accepts_);
    } else {
      stats_.matched += count;
    }
    if (hook_) {
      for (const engines::CaptureView& view : batch_.views) hook_(view);
    }
    if (config_.forward) {
      // forward() releases the buffer on both outcomes (TX completion
      // or full-ring drop): subtract each view from the batch's refs so
      // done_batch() does not release it a second time.
      for (const engines::CaptureView& view : batch_.views) {
        if (engine_.forward(queue_, view, *config_.forward->nic,
                            config_.forward->tx_queue)) {
          ++stats_.forwarded;
        } else {
          ++stats_.forward_failures;
        }
        batch_.note_released(view.handle);
      }
    }
    engine_.done_batch(queue_, batch_);  // one recycle per batch
    process_batch();
  });
}

QueueProfiler::QueueProfiler(sim::SimCore& core,
                             engines::CaptureEngine& engine,
                             std::uint32_t queue, const sim::CostModel& costs,
                             Nanos bin_width)
    : series_(bin_width),
      handler_(core, engine, queue, PktHandlerConfig{0, "", false, {}},
               costs) {
  handler_.set_packet_hook([this](const engines::CaptureView& view) {
    series_.record(view.timestamp);
  });
}

}  // namespace wirecap::apps
