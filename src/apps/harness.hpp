// Experiment harness: wires a traffic source, the simulated NIC(s), a
// capture engine, per-queue cores and pkt_handler threads into one
// runnable experiment, and collects the drop-rate accounting used by
// every figure and table.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/pkt_handler.hpp"
#include "core/wirecap_engine.hpp"
#include "engines/baselines.hpp"
#include "nic/wire.hpp"
#include "pipeline/fanout.hpp"
#include "pipeline/runner.hpp"
#include "sim/bus.hpp"
#include "store/spool.hpp"
#include "store/store_sink.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/source.hpp"

namespace wirecap::apps {

enum class EngineKind {
  kPfRing,
  kDna,
  kNetmap,
  kPsioe,
  kWirecapBasic,
  kWirecapAdvanced,
  kDpdk,            // DPDK model, no offloading (as shipped)
  kDpdkAppOffload,  // DPDK model + hand-rolled app-layer offloading
};

[[nodiscard]] std::string to_string(EngineKind kind);

struct EngineParams {
  EngineKind kind = EngineKind::kWirecapBasic;
  /// WireCAP parameters (M, R, T).
  std::uint32_t cells_per_chunk = 256;
  std::uint32_t chunk_count = 100;
  double offload_threshold = 0.6;
  core::OffloadPolicy offload_policy = core::OffloadPolicy::kLeastBusy;
  /// Capture-queue handoff (WireCAP modes): lock-free SPSC/steal fast
  /// path or the mutex+condvar blocking baseline.
  HandoffMode handoff = HandoffMode::kLockFree;
  /// Tenants sharing the NIC (kWirecapAdvanced only): the queues are
  /// partitioned into `tenants` contiguous slices, each registered as
  /// its own TenantSpec/buddy group.  1 keeps the paper's single
  /// "multi_pkt_handler application" arrangement.
  std::uint32_t tenants = 1;
  /// Per-tenant chunk-pool quota (0 = each tenant's full pools).
  std::uint32_t tenant_quota = 0;
  /// NUMA node the NIC DMAs into, and per-queue placement of capture
  /// pools/threads (empty = all on nic_numa_node).  WireCAP-only.
  std::uint32_t nic_numa_node = 0;
  std::vector<std::uint32_t> queue_numa_node;

  [[nodiscard]] std::string label() const;

  /// True for either WireCAP mode.
  [[nodiscard]] bool is_wirecap() const {
    return kind == EngineKind::kWirecapBasic ||
           kind == EngineKind::kWirecapAdvanced;
  }
};

struct ExperimentConfig {
  EngineParams engine;
  std::uint32_t num_queues = 1;
  std::uint32_t ring_size = 1024;
  double cpu_ghz = 2.4;
  /// pkt_handler BPF repetitions.
  unsigned x = 0;
  std::string filter = "131.225.2 and udp";
  /// Execute the filter in the BPF VM per packet (slower; benches charge
  /// the cost but skip execution, tests enable it).
  bool execute_filter = false;
  /// Forward processed packets out a second NIC (Figures 13-14).
  bool forward = false;
  /// I/O bus capacity in transactions/s; 0 = unconstrained.
  double bus_transactions_per_second = 0.0;
  sim::CostModel costs{};
  /// Observability knobs (tracer gate/capacity, sampler period).
  /// (Fully qualified: the member name shadows the namespace in class
  /// scope.)
  wirecap::telemetry::TelemetryConfig telemetry{};
  /// Capture-to-disk mode: the per-queue pkt_handlers are replaced by
  /// StoreSinks spooling whole chunks into `spool->dir`, one shard per
  /// queue (num_shards is overridden to num_queues).  WireCAP engines
  /// additionally get the spool-backlog offload feedback wired up.
  std::optional<store::SpoolConfig> spool;
  /// In-capture processing pipeline spec (see pipeline/spec.hpp).
  /// Non-empty enables pipeline mode: each queue gets a PipelineRunner
  /// feeding a FanOut instead of a pkt_handler.  An empty spec string
  /// with a non-null `subscribers` factory also enables pipeline mode
  /// (fan-out with no stages).
  /// (Fully qualified below: the member shadows the namespace.)
  std::string pipeline;
  wirecap::pipeline::Steering steering =
      wirecap::pipeline::Steering::kBroadcast;
  /// Pipeline mode: builds each queue's subscribers.  Null attaches one
  /// internal release-only "sink" subscriber, whose delivery counts are
  /// readable via Experiment::fanout(q).subscriber_stats(0).
  std::function<std::vector<wirecap::pipeline::Subscriber>(std::uint32_t)>
      subscribers;

  [[nodiscard]] bool pipeline_mode() const {
    return !spool && (!pipeline.empty() || subscribers != nullptr);
  }
};

/// The standard observability command-line surface of the benches:
///   --metrics-out=FILE          write the metrics snapshot (JSON; CSV if .csv)
///   --trace-out=FILE            enable tracing, write Chrome-trace JSON
///   --latency                   enable chunk-journey latency tracking
///   --latency-threshold-us=N    flight-recorder outlier threshold
///   --flight-out=FILE           write the flight-recorder dump
/// Unrecognized arguments are ignored so benches can mix in their own.
struct TelemetryFlags {
  std::string metrics_out;
  std::string trace_out;
  bool latency = false;
  double latency_threshold_us = 0.0;  // 0 keeps the config default
  std::string flight_out;

  [[nodiscard]] bool any() const {
    return !metrics_out.empty() || !trace_out.empty() || latency ||
           !flight_out.empty();
  }
  /// Turns the flags into harness knobs: tracing on when --trace-out was
  /// given (with a bench-sized ring), gauge sampling on when either
  /// output is requested.
  void apply(ExperimentConfig& config) const;
  /// Writes the requested files from a finished experiment's telemetry.
  void write(const telemetry::Telemetry& source) const;
};

[[nodiscard]] TelemetryFlags parse_telemetry_flags(int argc, char** argv);

/// The pipeline command-line surface:
///   --pipeline=SPEC    stage chain, e.g. "filter:tcp|sample:1/8|aggregate"
///   --steering=MODE    broadcast (default) | flow | bpf
/// Unrecognized arguments are ignored (same contract as telemetry flags).
struct PipelineFlags {
  std::string spec;
  std::string steering = "broadcast";

  [[nodiscard]] bool any() const { return !spec.empty(); }
  /// Validates the spec/steering and installs them into `config`.
  /// Throws std::invalid_argument on a malformed spec or steering name.
  void apply(ExperimentConfig& config) const;
};

[[nodiscard]] PipelineFlags parse_pipeline_flags(int argc, char** argv);

/// The engine command-line surface:
///   --offload-policy=NAME   least-busy (default) | random | round-robin
///   --handoff=NAME          lock-free (default) | mutex
///   --tenants=N             partition the queues into N tenant groups
///   --tenant-quota=N        per-tenant chunk quota (0 = uncapped)
/// Strings are converted (and unknown values rejected with the allowed
/// set spelled out) right here at the CLI boundary — EngineParams and
/// EngineConfig carry enums only.
struct EngineFlags {
  std::optional<core::OffloadPolicy> offload_policy;
  std::optional<HandoffMode> handoff;
  std::optional<std::uint32_t> tenants;
  std::optional<std::uint32_t> tenant_quota;

  [[nodiscard]] bool any() const {
    return offload_policy || handoff || tenants || tenant_quota;
  }
  void apply(EngineParams& params) const;
};

/// Throws std::invalid_argument on an unknown policy/mode name.
[[nodiscard]] EngineFlags parse_engine_flags(int argc, char** argv);

struct QueueResult {
  std::uint64_t arrived = 0;          // steered to this queue
  std::uint64_t capture_dropped = 0;  // lost at the NIC ring/FIFO
  std::uint64_t delivery_dropped = 0; // lost between ring and app
  std::uint64_t delivered = 0;        // packets handed to the app thread
  std::uint64_t processed = 0;        // finished by pkt_handler

  [[nodiscard]] double capture_drop_rate() const {
    return arrived ? static_cast<double>(capture_dropped) /
                         static_cast<double>(arrived)
                   : 0.0;
  }
  [[nodiscard]] double delivery_drop_rate() const {
    return arrived ? static_cast<double>(delivery_dropped) /
                         static_cast<double>(arrived)
                   : 0.0;
  }
};

struct ExperimentResult {
  std::string engine_label;
  std::uint64_t sent = 0;
  std::uint64_t capture_dropped = 0;
  std::uint64_t delivery_dropped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t processed = 0;
  std::uint64_t forwarded_received = 0;  // counted by the packet receiver
  std::uint64_t copies = 0;
  std::uint64_t offloaded_chunks = 0;
  std::vector<QueueResult> per_queue;

  /// Overall drop rate, the paper's headline metric ("to make the
  /// comparison easier, we only calculate the overall packet drop
  /// rate").
  [[nodiscard]] double drop_rate() const {
    return sent ? static_cast<double>(capture_dropped + delivery_dropped) /
                      static_cast<double>(sent)
                : 0.0;
  }
  /// Drop rate measured as the forwarding experiments do: sent minus
  /// packets seen by the receiver behind the second NIC.
  [[nodiscard]] double forwarding_drop_rate() const {
    return sent ? static_cast<double>(sent - forwarded_received) /
                      static_cast<double>(sent)
                : 0.0;
  }
};

/// One fully wired experiment.  Construction builds the fabric; run()
/// injects a traffic source and executes the simulation.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs `source` through the fabric until `horizon` (which must cover
  /// the trace plus drain time), then gathers results.
  ExperimentResult run(trace::TrafficSource& source, Nanos horizon);

  // Wiring access for tests and specialized benches.
  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] nic::MultiQueueNic& nic() { return *nic_; }
  [[nodiscard]] nic::MultiQueueNic& out_nic() { return *nic2_; }
  [[nodiscard]] engines::CaptureEngine& engine() { return *engine_; }
  [[nodiscard]] PktHandler& handler(std::uint32_t queue) {
    return *handlers_.at(queue);
  }
  /// Pipeline mode only (config().pipeline_mode()).
  [[nodiscard]] wirecap::pipeline::FanOut& fanout(std::uint32_t queue) {
    return *fanouts_.at(queue);
  }
  [[nodiscard]] wirecap::pipeline::PipelineRunner& runner(
      std::uint32_t queue) {
    return *runners_.at(queue);
  }
  /// Null unless the experiment was configured with a spool.
  [[nodiscard]] store::Spool* spool() { return spool_.get(); }
  [[nodiscard]] store::StoreSink& store_sink(std::uint32_t queue) {
    return *sinks_.at(queue);
  }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] wirecap::telemetry::Telemetry& telemetry() {
    return telemetry_;
  }
  [[nodiscard]] const wirecap::telemetry::Telemetry& telemetry() const {
    return telemetry_;
  }

 private:
  void bind_telemetry();

  ExperimentConfig config_;
  sim::Scheduler scheduler_;
  wirecap::telemetry::Telemetry telemetry_;
  std::unique_ptr<sim::IoBus> bus_;
  std::unique_ptr<nic::MultiQueueNic> nic_;
  std::unique_ptr<nic::MultiQueueNic> nic2_;  // forwarding target
  std::unique_ptr<engines::CaptureEngine> engine_;
  std::vector<std::unique_ptr<sim::SimCore>> app_cores_;
  std::vector<std::unique_ptr<PktHandler>> handlers_;
  // Pipeline mode (declared after engine_: fan-out slots can hold
  // batches aliasing engine pools, so they tear down first).
  std::vector<std::unique_ptr<wirecap::pipeline::FanOut>> fanouts_;
  std::vector<std::unique_ptr<wirecap::pipeline::PipelineRunner>> runners_;
  // Declared after engine_: sinks/spool hold chunk views into engine
  // pools and must be torn down first.
  std::unique_ptr<store::Spool> spool_;
  std::vector<std::unique_ptr<store::StoreSink>> sinks_;
  std::unique_ptr<wirecap::telemetry::Sampler> sampler_;
};

/// Creates an engine of `kind` over `nic`.
[[nodiscard]] std::unique_ptr<engines::CaptureEngine> make_engine(
    const EngineParams& params, sim::Scheduler& scheduler,
    nic::MultiQueueNic& nic, const sim::CostModel& costs);

}  // namespace wirecap::apps
