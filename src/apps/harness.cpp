#include "apps/harness.hpp"

#include "engines/dpdk_engine.hpp"

#include <cstdio>
#include <stdexcept>

namespace wirecap::apps {

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPfRing: return "PF_RING";
    case EngineKind::kDna: return "DNA";
    case EngineKind::kNetmap: return "NETMAP";
    case EngineKind::kPsioe: return "PSIOE";
    case EngineKind::kWirecapBasic: return "WireCAP-B";
    case EngineKind::kWirecapAdvanced: return "WireCAP-A";
    case EngineKind::kDpdk: return "DPDK";
    case EngineKind::kDpdkAppOffload: return "DPDK+app-offload";
  }
  return "?";
}

std::string EngineParams::label() const {
  switch (kind) {
    case EngineKind::kWirecapBasic: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "WireCAP-B-(%u,%u)", cells_per_chunk,
                    chunk_count);
      return buf;
    }
    case EngineKind::kWirecapAdvanced: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "WireCAP-A-(%u,%u,%.0f%%)",
                    cells_per_chunk, chunk_count, offload_threshold * 100.0);
      return buf;
    }
    default:
      return to_string(kind);
  }
}

std::unique_ptr<engines::CaptureEngine> make_engine(
    const EngineParams& params, sim::Scheduler& scheduler,
    nic::MultiQueueNic& nic, const sim::CostModel& costs) {
  switch (params.kind) {
    case EngineKind::kPfRing: {
      engines::PfRingConfig config;
      config.kernel_cost_per_packet = costs.pfring_kernel_cost;
      config.napi_wakeup_delay = costs.napi_wakeup_delay;
      return std::make_unique<engines::PfRingEngine>(scheduler, nic, config);
    }
    case EngineKind::kDna:
      return std::make_unique<engines::Type2Engine>(nic,
                                                    engines::dna_config());
    case EngineKind::kNetmap:
      return std::make_unique<engines::Type2Engine>(nic,
                                                    engines::netmap_config());
    case EngineKind::kPsioe:
      return std::make_unique<engines::PsioeEngine>(nic,
                                                    engines::PsioeConfig{});
    case EngineKind::kDpdk:
    case EngineKind::kDpdkAppOffload: {
      engines::DpdkConfig config;
      // Match the WireCAP pool under comparison: mempool == R * M.
      config.mempool_size = params.cells_per_chunk * params.chunk_count;
      config.app_offload = params.kind == EngineKind::kDpdkAppOffload;
      config.app_offload_threshold = params.offload_threshold;
      return std::make_unique<engines::DpdkEngine>(scheduler, nic, config);
    }
    case EngineKind::kWirecapBasic:
    case EngineKind::kWirecapAdvanced: {
      core::WirecapConfig config;
      config.cells_per_chunk = params.cells_per_chunk;
      config.chunk_count = params.chunk_count;
      config.offload_policy = params.offload_policy;
      if (params.kind == EngineKind::kWirecapAdvanced) {
        config.offload_threshold = params.offload_threshold;
      }
      return std::make_unique<core::WirecapEngine>(scheduler, nic, config,
                                                   costs);
    }
  }
  throw std::invalid_argument("make_engine: unknown kind");
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  bus_ = std::make_unique<sim::IoBus>(
      scheduler_, Rate{config_.bus_transactions_per_second});

  nic::NicConfig nic_config;
  nic_config.nic_id = 1;
  nic_config.num_rx_queues = config_.num_queues;
  nic_config.num_tx_queues = std::max(1u, config_.num_queues);
  nic_config.rx_ring_size = config_.ring_size;
  if (config_.engine.is_wirecap()) {
    // WireCAP pays extra bus transactions per packet for its chunk
    // management, plus page-table pressure proportional to total pool
    // memory (§4 "Scalability", §5a) — only observable when the bus is
    // constrained.
    const double pool_mib =
        static_cast<double>(config_.num_queues) *
        config_.engine.cells_per_chunk * config_.engine.chunk_count * 2048.0 /
        (1024.0 * 1024.0);
    nic_config.rx_transactions_per_packet =
        1.0 + config_.costs.wirecap_extra_transactions_per_packet +
        config_.costs.memory_pressure_transactions_per_mib * pool_mib;
  }
  nic_ = std::make_unique<nic::MultiQueueNic>(scheduler_, *bus_, nic_config);

  if (config_.forward) {
    nic::NicConfig nic2_config = nic_config;
    nic2_config.nic_id = 2;
    nic2_ = std::make_unique<nic::MultiQueueNic>(scheduler_, *bus_,
                                                 nic2_config);
  }

  engine_ = make_engine(config_.engine, scheduler_, *nic_, config_.costs);

  for (std::uint32_t q = 0; q < config_.num_queues; ++q) {
    app_cores_.push_back(
        std::make_unique<sim::SimCore>(scheduler_, q, config_.cpu_ghz));
    PktHandlerConfig handler_config;
    handler_config.x = config_.x;
    handler_config.filter = config_.filter;
    handler_config.execute_filter = config_.execute_filter;
    if (config_.forward) {
      handler_config.forward = ForwardTarget{nic2_.get(), q};
    }
    handlers_.push_back(std::make_unique<PktHandler>(
        *app_cores_[q], *engine_, q, handler_config, config_.costs));
  }

  if (config_.engine.kind == EngineKind::kWirecapAdvanced) {
    // The paper's advanced-mode experiments: "the n queues form a single
    // buddy group" (one multi_pkt_handler application).
    auto* wirecap = dynamic_cast<core::WirecapEngine*>(engine_.get());
    std::vector<std::uint32_t> group;
    for (std::uint32_t q = 0; q < config_.num_queues; ++q) group.push_back(q);
    wirecap->set_buddy_group(group);
  }
  if (config_.engine.kind == EngineKind::kDpdkAppOffload) {
    auto* dpdk = dynamic_cast<engines::DpdkEngine*>(engine_.get());
    std::vector<std::uint32_t> group;
    for (std::uint32_t q = 0; q < config_.num_queues; ++q) group.push_back(q);
    dpdk->set_peer_group(group);
  }
}

Experiment::~Experiment() = default;

ExperimentResult Experiment::run(trace::TrafficSource& source, Nanos horizon) {
  nic::TrafficInjector injector(scheduler_, source, *nic_);
  injector.start();
  scheduler_.run_until(horizon);

  ExperimentResult result;
  result.engine_label = config_.engine.label();
  result.sent = injector.injected();
  result.per_queue.resize(config_.num_queues);
  for (std::uint32_t q = 0; q < config_.num_queues; ++q) {
    const auto& rx = nic_->rx_stats(q);
    const auto engine_stats = engine_->queue_stats(q);
    QueueResult& queue_result = result.per_queue[q];
    queue_result.arrived = rx.received + rx.dropped;
    queue_result.capture_dropped = rx.dropped;
    queue_result.delivery_dropped = engine_stats.delivery_dropped;
    queue_result.delivered = engine_stats.delivered;
    queue_result.processed = handlers_[q]->stats().processed;

    result.capture_dropped += rx.dropped;
    result.delivery_dropped += engine_stats.delivery_dropped;
    result.delivered += engine_stats.delivered;
    result.processed += queue_result.processed;
    result.copies += engine_stats.copies;
    result.offloaded_chunks += engine_stats.chunks_offloaded_out;
  }
  if (nic2_) result.forwarded_received = nic2_->total_transmitted();
  return result;
}

}  // namespace wirecap::apps
