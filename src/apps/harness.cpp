#include "apps/harness.hpp"

#include "engines/dpdk_engine.hpp"
#include "engines/factory.hpp"
#include "pipeline/spec.hpp"
#include "telemetry/export.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace wirecap::apps {

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPfRing: return "PF_RING";
    case EngineKind::kDna: return "DNA";
    case EngineKind::kNetmap: return "NETMAP";
    case EngineKind::kPsioe: return "PSIOE";
    case EngineKind::kWirecapBasic: return "WireCAP-B";
    case EngineKind::kWirecapAdvanced: return "WireCAP-A";
    case EngineKind::kDpdk: return "DPDK";
    case EngineKind::kDpdkAppOffload: return "DPDK+app-offload";
  }
  return "?";
}

std::string EngineParams::label() const {
  switch (kind) {
    case EngineKind::kWirecapBasic: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "WireCAP-B-(%u,%u)", cells_per_chunk,
                    chunk_count);
      return buf;
    }
    case EngineKind::kWirecapAdvanced: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "WireCAP-A-(%u,%u,%.0f%%)",
                    cells_per_chunk, chunk_count, offload_threshold * 100.0);
      return buf;
    }
    default:
      return to_string(kind);
  }
}

std::unique_ptr<engines::CaptureEngine> make_engine(
    const EngineParams& params, sim::Scheduler& /*scheduler*/,
    nic::MultiQueueNic& nic, const sim::CostModel& costs) {
  // Delegates to the engines::make_engine registry — to_string(kind) is
  // the registered name, EngineParams maps onto EngineConfig.
  engines::EngineConfig config;
  config.costs = costs;
  config.cells_per_chunk = params.cells_per_chunk;
  config.chunk_count = params.chunk_count;
  config.offload_threshold = params.offload_threshold;
  config.offload_policy = params.offload_policy;
  config.handoff = params.handoff;
  config.nic_numa_node = params.nic_numa_node;
  config.queue_numa_node = params.queue_numa_node;
  return engines::make_engine(to_string(params.kind), nic, config);
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  bus_ = std::make_unique<sim::IoBus>(
      scheduler_, Rate{config_.bus_transactions_per_second});

  nic::NicConfig nic_config;
  nic_config.nic_id = 1;
  nic_config.num_rx_queues = config_.num_queues;
  nic_config.num_tx_queues = std::max(1u, config_.num_queues);
  nic_config.rx_ring_size = config_.ring_size;
  if (config_.engine.is_wirecap()) {
    // WireCAP pays extra bus transactions per packet for its chunk
    // management, plus page-table pressure proportional to total pool
    // memory (§4 "Scalability", §5a) — only observable when the bus is
    // constrained.
    const double pool_mib =
        static_cast<double>(config_.num_queues) *
        config_.engine.cells_per_chunk * config_.engine.chunk_count * 2048.0 /
        (1024.0 * 1024.0);
    nic_config.rx_transactions_per_packet =
        1.0 + config_.costs.wirecap_extra_transactions_per_packet +
        config_.costs.memory_pressure_transactions_per_mib * pool_mib;
  }
  nic_ = std::make_unique<nic::MultiQueueNic>(scheduler_, *bus_, nic_config);

  if (config_.forward) {
    nic::NicConfig nic2_config = nic_config;
    nic2_config.nic_id = 2;
    nic2_ = std::make_unique<nic::MultiQueueNic>(scheduler_, *bus_,
                                                 nic2_config);
  }

  engine_ = make_engine(config_.engine, scheduler_, *nic_, config_.costs);

  for (std::uint32_t q = 0; q < config_.num_queues; ++q) {
    app_cores_.push_back(
        std::make_unique<sim::SimCore>(scheduler_, q, config_.cpu_ghz));
    if (config_.spool) continue;  // spool mode replaces the handlers
    if (config_.pipeline_mode()) {
      // Pipeline mode: stages + fan-out replace the pkt_handler.  The
      // fan-out is built (and its subscribers registered) before the
      // runner starts pulling batches.
      fanouts_.push_back(std::make_unique<wirecap::pipeline::FanOut>(
          *engine_, config_.steering));
      if (config_.subscribers) {
        for (wirecap::pipeline::Subscriber& sub : config_.subscribers(q)) {
          fanouts_.back()->subscribe(std::move(sub));
        }
      } else {
        // Release-only sink so delivery still drains and is counted.
        fanouts_.back()->subscribe(wirecap::pipeline::Subscriber{
            "sink", [](wirecap::pipeline::SharedBatch batch) {
              batch.release();
            },
            std::nullopt});
      }
      wirecap::pipeline::PipelineRunnerConfig runner_config;
      runner_config.x = config_.x;
      runners_.push_back(std::make_unique<wirecap::pipeline::PipelineRunner>(
          *app_cores_[q], *engine_, q,
          wirecap::pipeline::parse_pipeline_spec(config_.pipeline),
          *fanouts_.back(), runner_config, config_.costs));
      continue;
    }
    PktHandlerConfig handler_config;
    handler_config.x = config_.x;
    handler_config.filter = config_.filter;
    handler_config.execute_filter = config_.execute_filter;
    if (config_.forward) {
      handler_config.forward = ForwardTarget{nic2_.get(), q};
    }
    handlers_.push_back(std::make_unique<PktHandler>(
        *app_cores_[q], *engine_, q, handler_config, config_.costs));
  }

  if (config_.spool) {
    store::SpoolConfig spool_config = *config_.spool;
    spool_config.num_shards = config_.num_queues;
    spool_ = std::make_unique<store::Spool>(scheduler_, config_.costs,
                                            spool_config);
    auto* wirecap = dynamic_cast<core::WirecapEngine*>(engine_.get());
    for (std::uint32_t q = 0; q < config_.num_queues; ++q) {
      engine_->open(q, *app_cores_[q]);  // done by PktHandler otherwise
      sinks_.push_back(std::make_unique<store::StoreSink>(
          *engine_, q, spool_->shard(q)));
      if (wirecap) {
        store::SpoolShard* shard = &spool_->shard(q);
        wirecap->set_spool_backlog_probe(
            q, [shard] { return shard->backlog(); });
      }
    }
    for (const auto& sink : sinks_) sink->start();
  }

  if (config_.engine.kind == EngineKind::kWirecapAdvanced) {
    // The paper's advanced-mode experiments: "the n queues form a single
    // buddy group" (one multi_pkt_handler application) — generalized to
    // `tenants` co-resident applications, each owning a contiguous slice
    // of the queues as its own buddy group with its own quota.
    auto* wirecap = dynamic_cast<core::WirecapEngine*>(engine_.get());
    const std::uint32_t tenants = std::max(1u, config_.engine.tenants);
    for (std::uint32_t t = 0; t < tenants; ++t) {
      engines::TenantSpec spec;
      spec.name = "t";
      spec.name += std::to_string(t);
      spec.chunk_quota = config_.engine.tenant_quota;
      for (std::uint32_t q = 0; q < config_.num_queues; ++q) {
        if (q * tenants / config_.num_queues == t) spec.queues.push_back(q);
      }
      if (!spec.queues.empty()) wirecap->register_tenant(spec);
    }
  }
  if (config_.engine.kind == EngineKind::kDpdkAppOffload) {
    auto* dpdk = dynamic_cast<engines::DpdkEngine*>(engine_.get());
    std::vector<std::uint32_t> group;
    for (std::uint32_t q = 0; q < config_.num_queues; ++q) group.push_back(q);
    dpdk->set_peer_group(group);
  }

  bind_telemetry();
}

void Experiment::bind_telemetry() {
  telemetry_.tracer.set_enabled(config_.telemetry.trace);
  if (config_.telemetry.trace_capacity != telemetry_.tracer.capacity()) {
    telemetry_.tracer.set_capacity(config_.telemetry.trace_capacity);
  }
  if (config_.telemetry.latency) {
    telemetry_.latency.set_outlier_threshold(
        config_.telemetry.latency_outlier_threshold);
    telemetry_.latency.set_recorder_capacity(
        config_.telemetry.flight_recorder_capacity);
    telemetry_.latency.set_enabled(true);
  }

  // The engine publishes under engine.<sanitized name>.q<N>.*; the NIC,
  // application cores and pkt_handlers under nic./core./app. — one tree
  // for the whole experiment.
  const std::string prefix =
      "engine." +
      wirecap::telemetry::MetricRegistry::sanitize_component(engine_->name());
  engine_->bind_telemetry(telemetry_, prefix, config_.num_queues);

  for (std::uint32_t q = 0; q < config_.num_queues; ++q) {
    const std::string qn = std::to_string(q);
    telemetry_.registry.bind_counter(
        "nic.q" + qn + ".rx_received",
        [this, q] { return nic_->rx_stats(q).received; });
    telemetry_.registry.bind_counter(
        "nic.q" + qn + ".rx_dropped",
        [this, q] { return nic_->rx_stats(q).dropped; });
    telemetry_.registry.bind_gauge(
        "core.q" + qn + ".app_core.utilization",
        [this, q] { return app_cores_[q]->utilization(); });
    if (config_.spool) {
      const store::StoreSink& sink = *sinks_[q];
      telemetry_.registry.bind_counter(
          "app.q" + qn + ".processed",
          [&sink] { return sink.packets_consumed(); });
      continue;
    }
    if (config_.pipeline_mode()) {
      const wirecap::pipeline::PipelineRunnerStats& rs =
          runners_[q]->stats();
      telemetry_.registry.bind_counter("app.q" + qn + ".processed",
                                       [&rs] { return rs.packets_in; });
      runners_[q]->pipeline().bind_telemetry(telemetry_, "pipeline.q" + qn);
      fanouts_[q]->bind_telemetry(telemetry_, "fanout.q" + qn);
      continue;
    }
    const PktHandlerStats& hs = handlers_[q]->stats();
    telemetry_.registry.bind_counter("app.q" + qn + ".processed",
                                     [&hs] { return hs.processed; });
    telemetry_.registry.bind_counter("app.q" + qn + ".matched",
                                     [&hs] { return hs.matched; });
    if (config_.forward) {
      telemetry_.registry.bind_counter("app.q" + qn + ".forwarded",
                                       [&hs] { return hs.forwarded; });
      telemetry_.registry.bind_counter("app.q" + qn + ".forward_failures",
                                       [&hs] { return hs.forward_failures; });
    }
  }
  if (spool_) spool_->bind_telemetry(telemetry_, "store");
  telemetry_.registry.bind_counter(
      "nic.total_rx_dropped", [this] { return nic_->total_rx_dropped(); });
  if (nic2_) {
    telemetry_.registry.bind_counter(
        "nic2.tx_transmitted", [this] { return nic2_->total_transmitted(); });
  }

  if (config_.telemetry.sample_interval > Nanos::zero()) {
    sampler_ = std::make_unique<wirecap::telemetry::Sampler>(
        scheduler_, telemetry_, config_.telemetry.sample_interval);
    sampler_->start();
  }
}

PipelineFlags parse_pipeline_flags(int argc, char** argv) {
  PipelineFlags flags;
  constexpr std::string_view kPipeline = "--pipeline=";
  constexpr std::string_view kSteering = "--steering=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with(kPipeline)) {
      flags.spec = std::string(arg.substr(kPipeline.size()));
    } else if (arg.starts_with(kSteering)) {
      flags.steering = std::string(arg.substr(kSteering.size()));
    }
  }
  return flags;
}

void PipelineFlags::apply(ExperimentConfig& config) const {
  // Parse once here so a typo fails at flag time, not mid-experiment.
  (void)wirecap::pipeline::parse_pipeline_spec(spec);
  config.pipeline = spec;
  if (steering == "broadcast") {
    config.steering = wirecap::pipeline::Steering::kBroadcast;
  } else if (steering == "flow") {
    config.steering = wirecap::pipeline::Steering::kFlowHash;
  } else if (steering == "bpf") {
    config.steering = wirecap::pipeline::Steering::kBpfMatch;
  } else {
    throw std::invalid_argument("--steering must be broadcast, flow or bpf");
  }
}

EngineFlags parse_engine_flags(int argc, char** argv) {
  EngineFlags flags;
  constexpr std::string_view kPolicy = "--offload-policy=";
  constexpr std::string_view kHandoff = "--handoff=";
  constexpr std::string_view kTenants = "--tenants=";
  constexpr std::string_view kQuota = "--tenant-quota=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with(kPolicy)) {
      flags.offload_policy =
          parse_offload_policy(arg.substr(kPolicy.size()));
    } else if (arg.starts_with(kHandoff)) {
      flags.handoff = parse_handoff_mode(arg.substr(kHandoff.size()));
    } else if (arg.starts_with(kTenants)) {
      flags.tenants = static_cast<std::uint32_t>(
          std::stoul(std::string(arg.substr(kTenants.size()))));
    } else if (arg.starts_with(kQuota)) {
      flags.tenant_quota = static_cast<std::uint32_t>(
          std::stoul(std::string(arg.substr(kQuota.size()))));
    }
  }
  return flags;
}

void EngineFlags::apply(EngineParams& params) const {
  if (offload_policy) params.offload_policy = *offload_policy;
  if (handoff) params.handoff = *handoff;
  if (tenants) params.tenants = std::max(1u, *tenants);
  if (tenant_quota) params.tenant_quota = *tenant_quota;
}

TelemetryFlags parse_telemetry_flags(int argc, char** argv) {
  TelemetryFlags flags;
  constexpr std::string_view kMetrics = "--metrics-out=";
  constexpr std::string_view kTrace = "--trace-out=";
  constexpr std::string_view kThreshold = "--latency-threshold-us=";
  constexpr std::string_view kFlight = "--flight-out=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with(kMetrics)) {
      flags.metrics_out = std::string(arg.substr(kMetrics.size()));
    } else if (arg.starts_with(kTrace)) {
      flags.trace_out = std::string(arg.substr(kTrace.size()));
    } else if (arg == "--latency") {
      flags.latency = true;
    } else if (arg.starts_with(kThreshold)) {
      flags.latency_threshold_us =
          std::atof(std::string(arg.substr(kThreshold.size())).c_str());
    } else if (arg.starts_with(kFlight)) {
      flags.flight_out = std::string(arg.substr(kFlight.size()));
    }
  }
  return flags;
}

void TelemetryFlags::apply(ExperimentConfig& config) const {
  if (!trace_out.empty()) {
    config.telemetry.trace = true;
    // The multi-second border traces record millions of events; a bench-
    // sized ring keeps the interesting (offload-heavy) tail.
    config.telemetry.trace_capacity = 1u << 20;
  }
  if (any()) {
    // Figure-3 granularity for the gauge counter series.
    config.telemetry.sample_interval = Nanos::from_millis(10);
  }
  if (latency || !flight_out.empty()) {
    config.telemetry.latency = true;
  }
  if (latency_threshold_us > 0.0) {
    config.telemetry.latency_outlier_threshold =
        Nanos::from_micros(latency_threshold_us);
  }
}

void TelemetryFlags::write(const telemetry::Telemetry& source) const {
  if (!metrics_out.empty()) {
    telemetry::write_metrics(source.registry, metrics_out);
  }
  if (!trace_out.empty()) {
    telemetry::write_trace(source.tracer, trace_out);
  }
  if (!flight_out.empty()) {
    const std::string dump = source.latency.recorder().dump();
    if (std::FILE* f = std::fopen(flight_out.c_str(), "wb")) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
    }
  }
}

Experiment::~Experiment() = default;

ExperimentResult Experiment::run(trace::TrafficSource& source, Nanos horizon) {
  nic::TrafficInjector injector(scheduler_, source, *nic_);
  injector.start();
  scheduler_.run_until(horizon);

  if (spool_) {
    // Let the disks catch up, then finalize the footers.  Bounded: a
    // shard stuck behind a never-ending disk-full fault would otherwise
    // spin the capture polls forever.
    Nanos deadline = scheduler_.now();
    for (int i = 0; i < 10'000 && !spool_->drained(); ++i) {
      deadline += Nanos::from_millis(1.0);
      scheduler_.run_until(deadline);
    }
    spool_->close();
  }

  ExperimentResult result;
  result.engine_label = config_.engine.label();
  result.sent = injector.injected();
  result.per_queue.resize(config_.num_queues);
  for (std::uint32_t q = 0; q < config_.num_queues; ++q) {
    const auto& rx = nic_->rx_stats(q);
    const auto engine_stats = engine_->queue_stats(q);
    QueueResult& queue_result = result.per_queue[q];
    queue_result.arrived = rx.received + rx.dropped;
    queue_result.capture_dropped = rx.dropped;
    queue_result.delivery_dropped = engine_stats.delivery_dropped;
    queue_result.delivered = engine_stats.delivered;
    queue_result.processed = config_.spool
                                 ? sinks_[q]->packets_consumed()
                                 : (config_.pipeline_mode()
                                        ? runners_[q]->stats().packets_in
                                        : handlers_[q]->stats().processed);

    result.capture_dropped += rx.dropped;
    result.delivery_dropped += engine_stats.delivery_dropped;
    result.delivered += engine_stats.delivered;
    result.processed += queue_result.processed;
    result.copies += engine_stats.copies;
    result.offloaded_chunks += engine_stats.chunks_offloaded_out;
  }
  if (nic2_) result.forwarded_received = nic2_->total_transmitted();
  return result;
}

}  // namespace wirecap::apps
