// The paper's experiment applications (§2.2, §4):
//
//   * pkt_handler — "captures and processes packets from a specific
//     queue and executes a repeating while loop.  In each loop, a packet
//     is captured and applied with a BPF filter x times before being
//     discarded."  x = 0 measures pure capture; x = 300 emulates a
//     heavy application (38,844 p/s on a 2.4 GHz core).  The forwarding
//     variant transmits each processed packet out another NIC instead of
//     discarding it (Figures 13-14).
//
// Both are simulation actors: their per-packet CPU cost is charged to
// their core and their logic runs at the resulting rate.
//
// The read loop is batch-granular: each iteration pulls one batch via
// try_next_batch(), charges the batch's total processing cost as one
// work item, filters it in a single bpf::Predecoded::run_batch() pass,
// updates the stats once, and recycles with one done_batch() — the
// application-side counterpart of the engine's chunk-granularity
// handoff.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bpf/insn.hpp"
#include "bpf/predecode.hpp"
#include "common/stats.hpp"
#include "engines/engine.hpp"
#include "sim/core.hpp"
#include "sim/costs.hpp"

namespace wirecap::apps {

struct ForwardTarget {
  nic::MultiQueueNic* nic = nullptr;
  std::uint32_t tx_queue = 0;
};

struct PktHandlerConfig {
  /// BPF applications per packet (the paper's x).
  unsigned x = 0;
  /// Filter expression; the paper uses "131.225.2 and udp".
  std::string filter = "131.225.2 and udp";
  /// Actually execute the compiled filter once per packet (the full x
  /// executions are charged as cost either way; executing all x in the
  /// VM would only slow the simulator down without changing results).
  bool execute_filter = true;
  /// Forward processed packets instead of discarding them.
  std::optional<ForwardTarget> forward;
  /// Packets pulled per try_next_batch() call.  The batch's cost is
  /// charged as one work item, so this also bounds how long the app
  /// core runs between yields to kernel-priority work.
  std::size_t batch_packets = 64;
};

struct PktHandlerStats {
  std::uint64_t processed = 0;
  std::uint64_t matched = 0;    // filter hits
  std::uint64_t forwarded = 0;
  std::uint64_t forward_failures = 0;  // TX ring full
  std::uint64_t batches = 0;    // try_next_batch calls that delivered
};

class PktHandler {
 public:
  PktHandler(sim::SimCore& core, engines::CaptureEngine& engine,
             std::uint32_t queue, PktHandlerConfig config,
             const sim::CostModel& costs);

  [[nodiscard]] const PktHandlerStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t queue() const { return queue_; }

  /// Optional per-packet observer (queue_profiler, tests).
  void set_packet_hook(
      std::function<void(const engines::CaptureView&)> hook) {
    hook_ = std::move(hook);
  }

 private:
  void maybe_start();
  void process_batch();

  sim::SimCore& core_;
  engines::CaptureEngine& engine_;
  std::uint32_t queue_;
  PktHandlerConfig config_;
  Nanos per_packet_cost_;
  bpf::Predecoded filter_;  // verified + decoded once, at construction
  PktHandlerStats stats_;
  engines::PacketBatch batch_;
  std::vector<std::uint8_t> accepts_;
  std::function<void(const engines::CaptureView&)> hook_;
  bool busy_ = false;
};

/// queue_profiler: a PktHandler with x = 0 recording 10 ms arrival bins.
class QueueProfiler {
 public:
  QueueProfiler(sim::SimCore& core, engines::CaptureEngine& engine,
                std::uint32_t queue, const sim::CostModel& costs,
                Nanos bin_width = Nanos::from_millis(10));

  [[nodiscard]] const BinnedSeries& series() const { return series_; }
  [[nodiscard]] const PktHandlerStats& stats() const {
    return handler_.stats();
  }

 private:
  BinnedSeries series_;
  PktHandler handler_;
};

}  // namespace wirecap::apps
