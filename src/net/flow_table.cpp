#include "net/flow_table.hpp"

#include <algorithm>

#include "net/headers.hpp"

namespace wirecap::net {

std::optional<FlowKey> FlowTable::update(const engines::CaptureView& view) {
  const std::optional<FlowKey> flow = parse_flow(view.bytes);
  if (!flow) {
    ++unclassified_;
    return std::nullopt;
  }
  update(*flow, view.timestamp, view.wire_len);
  return flow;
}

void FlowTable::update(const FlowKey& flow, Nanos timestamp,
                       std::uint64_t wire_bytes) {
  FlowRecord& record = records_[flow];
  if (record.packets == 0) record.first = timestamp;
  // Timestamps may arrive slightly out of order across merge sources;
  // keep first/last as a true envelope.
  record.first = std::min(record.first, timestamp);
  record.last = std::max(record.last, timestamp);
  ++record.packets;
  record.bytes += wire_bytes;
  ++total_packets_;
  total_bytes_ += wire_bytes;
}

std::size_t FlowTable::sweep_idle(Nanos now, const Exporter& exporter) {
  const Nanos cutoff = now - idle_timeout_;
  std::size_t swept = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.last < cutoff) {
      if (exporter) exporter(it->first, it->second);
      it = records_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  exported_ += swept;
  return swept;
}

void FlowTable::merge(const FlowTable& other) {
  for (const auto& [flow, record] : other.records_) {
    FlowRecord& into = records_[flow];
    if (into.packets == 0) {
      into = record;
    } else {
      into.first = std::min(into.first, record.first);
      into.last = std::max(into.last, record.last);
      into.packets += record.packets;
      into.bytes += record.bytes;
    }
  }
  total_packets_ += other.total_packets_;
  total_bytes_ += other.total_bytes_;
  unclassified_ += other.unclassified_;
}

std::vector<std::pair<FlowKey, FlowRecord>> FlowTable::top_by_bytes(
    std::size_t n) const {
  std::vector<std::pair<FlowKey, FlowRecord>> sorted(records_.begin(),
                                                     records_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.bytes != b.second.bytes) {
      return a.second.bytes > b.second.bytes;
    }
    return a.first < b.first;  // deterministic order for equal volumes
  });
  if (sorted.size() > n) sorted.resize(n);
  return sorted;
}

}  // namespace wirecap::net
