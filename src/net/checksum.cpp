#include "net/checksum.hpp"

namespace wirecap::net {

std::uint64_t checksum_partial(std::span<const std::byte> data,
                               std::uint64_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint64_t>(data[i]) << 8) |
           static_cast<std::uint64_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint64_t>(data[i]) << 8;  // odd trailing byte
  }
  return sum;
}

std::uint16_t finish_checksum(std::uint64_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::byte> data) {
  return finish_checksum(checksum_partial(data));
}

}  // namespace wirecap::net
