// Flow identity: the IP 5-tuple.  The NIC's per-flow traffic steering
// ("a flow is defined by one or more fields of the IP 5-tuple") hashes
// this key; application logic requires all packets of one flow to reach
// one application.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace wirecap::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

[[nodiscard]] constexpr const char* to_string(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp: return "icmp";
    case IpProto::kTcp: return "tcp";
    case IpProto::kUdp: return "udp";
  }
  return "?";
}

/// IPv4 address in host byte order with dotted-quad formatting.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) |
               static_cast<std::uint32_t>(d)) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// True when this address lies inside `prefix`/`prefix_len`.
  [[nodiscard]] constexpr bool in_prefix(Ipv4Addr prefix,
                                         unsigned prefix_len) const {
    if (prefix_len == 0) return true;
    const std::uint32_t mask = prefix_len >= 32
                                   ? 0xFFFFFFFFu
                                   : ~((1u << (32 - prefix_len)) - 1);
    return (value_ & mask) == (prefix.value_ & mask);
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

struct FlowKey {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;

  constexpr auto operator<=>(const FlowKey&) const = default;

  [[nodiscard]] std::string to_string() const;

  /// A stable 64-bit mix of the 5-tuple for hash containers (NOT the RSS
  /// Toeplitz hash — that lives in nic/rss.hpp and is computed exactly as
  /// the NIC does).
  [[nodiscard]] constexpr std::uint64_t mix() const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    auto mix_in = [&h](std::uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    };
    mix_in(src_ip.value());
    mix_in(dst_ip.value());
    mix_in((static_cast<std::uint64_t>(src_port) << 32) | dst_port);
    mix_in(static_cast<std::uint64_t>(proto));
    return h;
  }
};

}  // namespace wirecap::net

template <>
struct std::hash<wirecap::net::FlowKey> {
  std::size_t operator()(const wirecap::net::FlowKey& key) const noexcept {
    return static_cast<std::size_t>(key.mix());
  }
};
