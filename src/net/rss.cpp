#include "net/rss.hpp"

#include <stdexcept>

namespace wirecap::net {

std::uint32_t toeplitz_hash(std::span<const std::uint8_t> input,
                            std::span<const std::uint8_t> key) {
  if (key.size() < input.size() + 4) {
    throw std::invalid_argument(
        "toeplitz_hash: key must exceed input length by at least 32 bits");
  }
  std::uint32_t result = 0;
  // The sliding 32-bit window over the key, advanced one bit per input
  // bit.  Initialize with the first 32 key bits.
  std::uint32_t window = (static_cast<std::uint32_t>(key[0]) << 24) |
                         (static_cast<std::uint32_t>(key[1]) << 16) |
                         (static_cast<std::uint32_t>(key[2]) << 8) |
                         static_cast<std::uint32_t>(key[3]);
  std::size_t next_key_byte = 4;
  std::uint8_t pending = 0;
  int pending_bits = 0;

  for (const std::uint8_t byte : input) {
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) result ^= window;
      // Shift the window left one bit, pulling the next key bit in.
      if (pending_bits == 0) {
        pending = next_key_byte < key.size() ? key[next_key_byte] : 0;
        ++next_key_byte;
        pending_bits = 8;
      }
      window = (window << 1) | ((pending >> 7) & 1);
      pending = static_cast<std::uint8_t>(pending << 1);
      --pending_bits;
    }
  }
  return result;
}

std::uint32_t rss_hash(const FlowKey& flow, std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, 12> input{};
  const auto put32 = [&](std::size_t off, std::uint32_t v) {
    input[off] = static_cast<std::uint8_t>(v >> 24);
    input[off + 1] = static_cast<std::uint8_t>(v >> 16);
    input[off + 2] = static_cast<std::uint8_t>(v >> 8);
    input[off + 3] = static_cast<std::uint8_t>(v);
  };
  put32(0, flow.src_ip.value());
  put32(4, flow.dst_ip.value());
  const bool has_ports =
      flow.proto == IpProto::kTcp || flow.proto == IpProto::kUdp;
  if (has_ports) {
    input[8] = static_cast<std::uint8_t>(flow.src_port >> 8);
    input[9] = static_cast<std::uint8_t>(flow.src_port);
    input[10] = static_cast<std::uint8_t>(flow.dst_port >> 8);
    input[11] = static_cast<std::uint8_t>(flow.dst_port);
    return toeplitz_hash(input, key);
  }
  return toeplitz_hash(std::span<const std::uint8_t>{input.data(), 8}, key);
}

std::uint32_t rss_hash_ipv6(const Ipv6Addr& src, const Ipv6Addr& dst,
                            std::uint16_t src_port, std::uint16_t dst_port,
                            bool with_ports,
                            std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, 36> input{};
  for (std::size_t i = 0; i < 16; ++i) {
    input[i] = src.octets[i];
    input[16 + i] = dst.octets[i];
  }
  if (!with_ports) {
    return toeplitz_hash(std::span<const std::uint8_t>{input.data(), 32}, key);
  }
  input[32] = static_cast<std::uint8_t>(src_port >> 8);
  input[33] = static_cast<std::uint8_t>(src_port);
  input[34] = static_cast<std::uint8_t>(dst_port >> 8);
  input[35] = static_cast<std::uint8_t>(dst_port);
  return toeplitz_hash(input, key);
}

}  // namespace wirecap::net
