// Per-flow accounting keyed by the IP 5-tuple — the reusable core of a
// NetFlow-style collector, extracted from the ad-hoc map that
// examples/flow_stats.cpp grew.  Used by the pipeline's aggregate stage
// (src/pipeline) and directly by applications.
//
// A table is single-threaded by design: in the WireCAP model each
// application thread keeps its own table (per-flow NIC steering plus
// buddy offloading guarantee a flow's packets stay inside one
// application), and tables are merge()d for whole-application reports.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "engines/packet_view.hpp"
#include "net/flow.hpp"

namespace wirecap::net {

/// Accumulated statistics of one flow.
struct FlowRecord {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  // wire bytes (not snapped capture lengths)
  Nanos first{};
  Nanos last{};

  [[nodiscard]] double duration_s() const { return (last - first).seconds(); }
  [[nodiscard]] double rate_pps() const {
    const double d = duration_s();
    return d > 0 ? static_cast<double>(packets) / d : 0.0;
  }
};

class FlowTable {
 public:
  /// Callback receiving flows evicted by the idle-timeout sweep.
  using Exporter = std::function<void(const FlowKey&, const FlowRecord&)>;

  /// `idle_timeout` bounds how long a flow may go without traffic
  /// before sweep_idle() exports and evicts it.
  explicit FlowTable(Nanos idle_timeout = Nanos::from_seconds(60))
      : idle_timeout_(idle_timeout) {}

  /// Parses the view down to its 5-tuple and folds it in.  Returns the
  /// flow key when the packet was IPv4 TCP/UDP (and was counted),
  /// nullopt otherwise (not counted).
  std::optional<FlowKey> update(const engines::CaptureView& view);

  /// Folds one already-classified packet in.
  void update(const FlowKey& flow, Nanos timestamp, std::uint64_t wire_bytes);

  /// Export sweep: every flow idle since before `now - idle_timeout` is
  /// handed to `exporter` (may be null) and removed.  Returns the
  /// number of flows exported.
  std::size_t sweep_idle(Nanos now, const Exporter& exporter = nullptr);

  /// Folds `other`'s records into this table (first/last widen, counts
  /// add) — the whole-application merge across per-thread tables.
  void merge(const FlowTable& other);

  /// Flows sorted by descending byte count, truncated to `n` — the
  /// classic heavy-hitter report.
  [[nodiscard]] std::vector<std::pair<FlowKey, FlowRecord>> top_by_bytes(
      std::size_t n) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  /// Packets update() could not classify (non-IPv4 / non-TCP/UDP).
  [[nodiscard]] std::uint64_t unclassified() const { return unclassified_; }
  /// Flows evicted by sweep_idle() over the table's lifetime.
  [[nodiscard]] std::uint64_t exported() const { return exported_; }
  [[nodiscard]] Nanos idle_timeout() const { return idle_timeout_; }

  [[nodiscard]] const std::unordered_map<FlowKey, FlowRecord>& records()
      const {
    return records_;
  }

  void clear() {
    records_.clear();
    total_packets_ = 0;
    total_bytes_ = 0;
    unclassified_ = 0;
    exported_ = 0;
  }

 private:
  Nanos idle_timeout_;
  std::unordered_map<FlowKey, FlowRecord> records_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t unclassified_ = 0;
  std::uint64_t exported_ = 0;
};

}  // namespace wirecap::net
