#include "net/packet.hpp"

#include <algorithm>
#include <stdexcept>

namespace wirecap::net {

namespace {
constexpr MacAddr kDefaultSrcMac = MacAddr::of(0x02, 0x57, 0x43, 0x41, 0x50, 0x01);
constexpr MacAddr kDefaultDstMac = MacAddr::of(0x02, 0x57, 0x43, 0x41, 0x50, 0x02);
}  // namespace

WirePacket WirePacket::make(Nanos timestamp, const FlowKey& flow,
                            std::uint32_t wire_len, std::uint64_t seq,
                            std::uint16_t ip_id) {
  WirePacket pkt;
  pkt.timestamp_ = timestamp;
  pkt.wire_len_ = std::max<std::uint32_t>(
      wire_len, static_cast<std::uint32_t>(min_frame_len(flow.proto)));
  pkt.snap_len_ =
      static_cast<std::uint32_t>(std::min<std::size_t>(pkt.wire_len_, kSnapBytes));
  pkt.seq_ = seq;
  pkt.flow_ = flow;

  // Build the full header region.  If the materialized prefix is shorter
  // than the frame, build into a scratch buffer and copy the prefix; the
  // IP total_length field still reflects the true wire length.
  if (pkt.wire_len_ <= kSnapBytes) {
    build_frame({pkt.data_.data(), pkt.data_.size()}, flow, pkt.wire_len_,
                kDefaultSrcMac, kDefaultDstMac, ip_id);
  } else {
    std::array<std::byte, 2048> scratch{};
    build_frame(scratch, flow, pkt.wire_len_, kDefaultSrcMac, kDefaultDstMac,
                ip_id);
    std::copy_n(scratch.begin(), kSnapBytes, pkt.data_.begin());
  }
  return pkt;
}

WirePacket WirePacket::from_bytes(Nanos timestamp,
                                  std::span<const std::byte> frame,
                                  std::uint32_t wire_len, std::uint64_t seq) {
  if (wire_len < frame.size()) {
    throw std::invalid_argument("WirePacket: wire_len shorter than bytes");
  }
  WirePacket pkt;
  pkt.timestamp_ = timestamp;
  pkt.wire_len_ = wire_len;
  pkt.snap_len_ =
      static_cast<std::uint32_t>(std::min<std::size_t>(frame.size(), kSnapBytes));
  pkt.seq_ = seq;
  std::copy_n(frame.begin(), pkt.snap_len_, pkt.data_.begin());
  if (auto flow = parse_flow(pkt.bytes())) pkt.flow_ = *flow;
  return pkt;
}

}  // namespace wirecap::net
