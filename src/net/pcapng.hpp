// pcapng (pcap next generation) writer and reader for the block subset
// every tool understands: Section Header Block, Interface Description
// Block, and Enhanced Packet Blocks.  Implemented from the pcapng
// specification (draft-ietf-opsawg-pcapng); no libpcap dependency.
//
// Files are written in host byte order with the standard byte-order
// magic, nanosecond timestamp resolution (if_tsresol = 9), and are
// readable by wireshark/tshark/tcpdump.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "net/packet.hpp"

namespace wirecap::net {

inline constexpr std::uint32_t kPcapngShbType = 0x0A0D0D0A;
inline constexpr std::uint32_t kPcapngIdbType = 0x00000001;
inline constexpr std::uint32_t kPcapngEpbType = 0x00000006;
/// Custom Block (copyable variant) — carries a Private Enterprise
/// Number plus opaque payload; foreign readers skip it.  The store
/// layer uses it for per-segment footer indexes.
inline constexpr std::uint32_t kPcapngCbType = 0x00000BAD;
inline constexpr std::uint32_t kPcapngByteOrderMagic = 0x1A2B3C4D;

/// One packet in a vectored (scatter-gather) batch.  The data span must
/// stay valid until write_gather() returns; the writer never copies
/// packet payloads into its own buffers.
struct GatherSlice {
  Nanos timestamp;
  std::span<const std::byte> data;
  std::uint32_t orig_len = 0;
  /// Stamped as an epb_packetid option on every gathered record.
  std::uint64_t packet_id = 0;
};

struct PcapngRecord {
  std::uint32_t interface_id = 0;
  Nanos timestamp;
  std::uint32_t orig_len = 0;
  std::vector<std::byte> data;
  /// epb_packetid option (code 5), when the writer stamped one.
  std::optional<std::uint64_t> packet_id;
};

class PcapngWriter {
 public:
  /// Creates/truncates `path`, writing the SHB and one Ethernet IDB.
  /// `hardware`/`application` fill the SHB options (shown by wireshark
  /// in the capture properties).
  explicit PcapngWriter(const std::filesystem::path& path,
                        std::uint32_t snaplen = 65535,
                        const std::string& hardware = "WireCAP simulated NIC",
                        const std::string& application = "wirecap");

  /// Flushes any buffered tail bytes; errors are swallowed (use close()
  /// to observe them).
  ~PcapngWriter();

  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  /// Appends an Enhanced Packet Block.  With `packet_id`, an
  /// epb_packetid option stamps the record with a 64-bit identity
  /// (StoreReader round-trips it for conservation checks).
  void write(Nanos timestamp, std::span<const std::byte> data,
             std::uint32_t orig_len, std::uint32_t interface_id = 0,
             std::optional<std::uint64_t> packet_id = std::nullopt);

  void write(const WirePacket& packet) {
    write(packet.timestamp(), packet.bytes(), packet.wire_len());
  }

  /// Appends one Enhanced Packet Block per slice and commits the whole
  /// batch through a single writev()-shaped vectored call (netsniff-ng's
  /// pcap_sg scheme): block framing is encoded into a reusable arena,
  /// packet payloads are referenced in place, and the resulting iovec
  /// list is flushed in IOV_MAX-sized chunks.  Every record carries an
  /// epb_packetid option.
  void write_gather(std::span<const GatherSlice> slices,
                    std::uint32_t interface_id = 0);

  /// Appends a Custom Block (type 0x00000BAD) carrying `payload` under
  /// `pen`.  Readers that do not recognize the PEN skip the block.
  void write_custom_block(std::uint32_t pen,
                          std::span<const std::byte> payload);

  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  /// File offset after the last completed block (segment-size rotation).
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  void flush();
  /// Flushes and closes the underlying stream, throwing on failure.
  /// Idempotent; further write() calls throw.
  void close();

 private:
  void ensure_open() const;
  void put_bytes(const void* data, std::size_t size);
  void put32(std::uint32_t value);
  void put16(std::uint16_t value);
  void put_option(std::uint16_t code, std::span<const std::byte> value);
  void put_end_of_options();

  /// One iovec-to-be: either a range of `gather_arena_` (framing bytes)
  /// or an external packet-payload span.  Arena ranges are resolved to
  /// pointers only after the arena stops growing.
  struct GatherPiece {
    std::size_t arena_offset = 0;
    const std::byte* external = nullptr;
    std::size_t len = 0;
  };

  std::FILE* out_ = nullptr;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  // Reused across write_gather() calls to keep the hot path allocation
  // free once warmed up.
  std::vector<std::byte> gather_arena_;
  std::vector<GatherPiece> gather_pieces_;
};

class PcapngReader {
 public:
  explicit PcapngReader(const std::filesystem::path& path);

  /// Next Enhanced Packet Block (other block types are skipped);
  /// nullopt at end of section/file.  Throws std::runtime_error on a
  /// corrupt file.
  std::optional<PcapngRecord> next();

  std::vector<PcapngRecord> read_all();

  [[nodiscard]] std::uint32_t interfaces_seen() const {
    return interfaces_seen_;
  }
  [[nodiscard]] const std::string& hardware() const { return hardware_; }

 private:
  bool read_block(std::uint32_t& type, std::vector<std::byte>& body);
  [[nodiscard]] std::uint32_t get32(std::span<const std::byte> data,
                                    std::size_t offset) const;

  std::ifstream in_;
  bool swapped_ = false;
  std::uint32_t interfaces_seen_ = 0;
  /// tsresol power-of-10 divisor per interface (we write 9; readers of
  /// foreign files may see 6).
  std::vector<std::uint32_t> tsresol_digits_;
  std::string hardware_;
};

}  // namespace wirecap::net
