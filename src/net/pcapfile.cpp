#include "net/pcapfile.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace wirecap::net {

namespace {

// On-disk structures are written field-by-field in host order (pcap
// files carry their own byte-order marker, the magic).
void put32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put16(std::ofstream& out, std::uint16_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool get32(std::ifstream& in, std::uint32_t& v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}
bool get16(std::ifstream& in, std::uint16_t& v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}

}  // namespace

PcapWriter::PcapWriter(const std::filesystem::path& path, std::uint32_t snaplen,
                       bool nanosecond)
    : out_(path, std::ios::binary | std::ios::trunc), nanosecond_(nanosecond) {
  if (!out_) {
    throw std::runtime_error("PcapWriter: cannot open " + path.string());
  }
  put32(out_, nanosecond_ ? kPcapMagicNanos : kPcapMagicMicros);
  put16(out_, 2);  // version major
  put16(out_, 4);  // version minor
  put32(out_, 0);  // thiszone
  put32(out_, 0);  // sigfigs
  put32(out_, snaplen);
  put32(out_, kLinktypeEthernet);
}

void PcapWriter::write(Nanos timestamp, std::span<const std::byte> data,
                       std::uint32_t orig_len) {
  const auto total_ns = timestamp.count();
  if (total_ns < 0) throw std::invalid_argument("PcapWriter: negative time");
  const auto secs = static_cast<std::uint32_t>(total_ns / 1'000'000'000);
  const auto frac_ns = static_cast<std::uint32_t>(total_ns % 1'000'000'000);
  put32(out_, secs);
  put32(out_, nanosecond_ ? frac_ns : frac_ns / 1000);
  put32(out_, static_cast<std::uint32_t>(data.size()));
  put32(out_, orig_len);
  out_.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  if (!out_) throw std::runtime_error("PcapWriter: write failed");
  ++records_;
}

void PcapWriter::flush() { out_.flush(); }

PcapWriter::~PcapWriter() {
  if (out_.is_open()) out_.flush();
}

void PcapWriter::close() {
  if (!out_.is_open()) return;
  out_.flush();
  out_.close();
  if (!out_) throw std::runtime_error("PcapWriter: close failed");
}

PcapReader::PcapReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("PcapReader: cannot open " + path.string());
  }
  std::uint32_t magic = 0;
  if (!get32(in_, magic)) throw std::runtime_error("PcapReader: empty file");
  switch (magic) {
    case kPcapMagicMicros: nanosecond_ = false; swapped_ = false; break;
    case kPcapMagicNanos: nanosecond_ = true; swapped_ = false; break;
    case 0xD4C3B2A1: nanosecond_ = false; swapped_ = true; break;
    case 0x4D3CB2A1: nanosecond_ = true; swapped_ = true; break;
    default:
      throw std::runtime_error("PcapReader: bad magic");
  }
  std::uint16_t major = 0, minor = 0;
  std::uint32_t thiszone = 0, sigfigs = 0;
  if (!get16(in_, major) || !get16(in_, minor) || !get32(in_, thiszone) ||
      !get32(in_, sigfigs) || !get32(in_, snaplen_) || !get32(in_, linktype_)) {
    throw std::runtime_error("PcapReader: truncated header");
  }
  snaplen_ = fix32(snaplen_);
  linktype_ = fix32(linktype_);
}

namespace {
constexpr std::uint32_t bswap32(std::uint32_t v) {
  return (v << 24) | ((v << 8) & 0x00FF0000u) | ((v >> 8) & 0x0000FF00u) |
         (v >> 24);
}
constexpr std::uint16_t bswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}
}  // namespace

std::uint32_t PcapReader::fix32(std::uint32_t v) const {
  return swapped_ ? bswap32(v) : v;
}
std::uint16_t PcapReader::fix16(std::uint16_t v) const {
  return swapped_ ? bswap16(v) : v;
}

std::optional<PcapRecord> PcapReader::next() {
  std::uint32_t secs = 0;
  if (!get32(in_, secs)) return std::nullopt;  // clean EOF
  std::uint32_t frac = 0, incl_len = 0, orig_len = 0;
  if (!get32(in_, frac) || !get32(in_, incl_len) || !get32(in_, orig_len)) {
    throw std::runtime_error("PcapReader: truncated record header");
  }
  secs = fix32(secs);
  frac = fix32(frac);
  incl_len = fix32(incl_len);
  orig_len = fix32(orig_len);
  if (incl_len > (1u << 26)) {
    throw std::runtime_error("PcapReader: implausible record length");
  }
  PcapRecord record;
  const std::int64_t ns =
      static_cast<std::int64_t>(secs) * 1'000'000'000 +
      static_cast<std::int64_t>(nanosecond_ ? frac : frac * 1000ULL);
  record.timestamp = Nanos{ns};
  record.orig_len = orig_len;
  record.data.resize(incl_len);
  if (!in_.read(reinterpret_cast<char*>(record.data.data()),
                static_cast<std::streamsize>(incl_len))) {
    throw std::runtime_error("PcapReader: truncated record body");
  }
  return record;
}

std::vector<PcapRecord> PcapReader::read_all() {
  std::vector<PcapRecord> records;
  while (auto record = next()) records.push_back(std::move(*record));
  return records;
}

}  // namespace wirecap::net
