// Ethernet / IPv4 / UDP / TCP header parsing and construction over raw
// byte spans.  The trace generator materializes real frames with these
// builders; BPF programs and forwarding examples parse them back.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "net/flow.hpp"

namespace wirecap::net {

struct MacAddr {
  std::array<std::uint8_t, 6> octets{};

  constexpr auto operator<=>(const MacAddr&) const = default;

  [[nodiscard]] static constexpr MacAddr of(std::uint8_t a, std::uint8_t b,
                                            std::uint8_t c, std::uint8_t d,
                                            std::uint8_t e, std::uint8_t f) {
    return MacAddr{{a, b, c, d, e, f}};
  }
};

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86DD;
inline constexpr std::size_t kEthernetHeaderLen = 14;
inline constexpr std::size_t kVlanTagLen = 4;
inline constexpr std::size_t kIpv4MinHeaderLen = 20;
inline constexpr std::size_t kIpv6HeaderLen = 40;
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kTcpMinHeaderLen = 20;

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = kEtherTypeIpv4;
};

struct Ipv4Header {
  std::uint8_t ihl = 5;  // header length in 32-bit words
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0x4000;  // DF set
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  std::uint16_t checksum = 0;
  Ipv4Addr src;
  Ipv4Addr dst;

  [[nodiscard]] constexpr std::size_t header_len() const {
    return static_cast<std::size_t>(ihl) * 4;
  }
};

/// 802.1Q VLAN tag (the 4 bytes following the source MAC).
struct VlanTag {
  std::uint8_t pcp = 0;        // priority code point
  bool dei = false;            // drop eligible indicator
  std::uint16_t vid = 0;       // VLAN identifier (12 bits)
  std::uint16_t inner_ether_type = kEtherTypeIpv4;
};

/// IPv6 address (16 bytes, network order).
struct Ipv6Addr {
  std::array<std::uint8_t, 16> octets{};

  constexpr auto operator<=>(const Ipv6Addr&) const = default;

  [[nodiscard]] std::string to_string() const;

  /// Parses "2001:db8::1"-style text (supports one "::" elision).
  /// Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv6Addr> parse(std::string_view text);
};

struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  IpProto next_header = IpProto::kUdp;
  std::uint8_t hop_limit = 64;
  Ipv6Addr src;
  Ipv6Addr dst;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // header length in 32-bit words
  std::uint8_t flags = 0x10;     // ACK
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  [[nodiscard]] constexpr std::size_t header_len() const {
    return static_cast<std::size_t>(data_offset) * 4;
  }
};

// --- parsing (returns nullopt on truncated/malformed input) ---

[[nodiscard]] std::optional<EthernetHeader> parse_ethernet(
    std::span<const std::byte> frame);
/// Parses the 802.1Q tag at frame offset 12 (ether_type must be 0x8100).
[[nodiscard]] std::optional<VlanTag> parse_vlan(
    std::span<const std::byte> frame);
[[nodiscard]] std::optional<Ipv4Header> parse_ipv4(
    std::span<const std::byte> l3);
[[nodiscard]] std::optional<Ipv6Header> parse_ipv6(
    std::span<const std::byte> l3);
[[nodiscard]] std::optional<UdpHeader> parse_udp(std::span<const std::byte> l4);
[[nodiscard]] std::optional<TcpHeader> parse_tcp(std::span<const std::byte> l4);

/// Parses a full Ethernet[/802.1Q]/IPv4/{TCP,UDP} frame down to the
/// 5-tuple, transparently skipping a single VLAN tag.  Returns nullopt
/// for non-IPv4 or non-TCP/UDP frames.
[[nodiscard]] std::optional<FlowKey> parse_flow(
    std::span<const std::byte> frame);

/// Offset of the L3 header in `frame`: 14, or 18 when 802.1Q-tagged.
/// Returns nullopt if the frame is too short.
[[nodiscard]] std::optional<std::size_t> l3_offset(
    std::span<const std::byte> frame);

// --- construction ---

/// Writes an Ethernet header at frame[0..14).
void write_ethernet(std::span<std::byte> frame, const EthernetHeader& eth);

/// Writes an 802.1Q tag at frame[12..18) and shifts responsibility for
/// the inner ethertype to the tag (the Ethernet header must already be
/// written with ether_type kEtherTypeVlan).
void write_vlan(std::span<std::byte> frame, const VlanTag& tag);

/// Writes an IPv4 header (with correct checksum) at l3[0..20).
/// `header.total_length` must already be set.
void write_ipv4(std::span<std::byte> l3, const Ipv4Header& header);

/// Writes an IPv6 header at l3[0..40).
void write_ipv6(std::span<std::byte> l3, const Ipv6Header& header);

/// Writes a UDP header; checksum left zero (legal for IPv4 UDP).
void write_udp(std::span<std::byte> l4, const UdpHeader& header);

/// Writes a TCP header; checksum is computed over the pseudo-header and
/// `payload`.
void write_tcp(std::span<std::byte> l4, const TcpHeader& header,
               Ipv4Addr src_ip, Ipv4Addr dst_ip,
               std::span<const std::byte> payload);

/// Builds a complete Ethernet/IPv4/{UDP,TCP} frame of exactly
/// `frame_len` bytes (>= minimum for the protocol; zero-padded payload)
/// into `out`, returning the bytes written.  frame_len excludes the FCS.
std::size_t build_frame(std::span<std::byte> out, const FlowKey& flow,
                        std::size_t frame_len, MacAddr src_mac, MacAddr dst_mac,
                        std::uint16_t ip_id = 0);

/// Builds a complete Ethernet/802.1Q/IPv4/{UDP,TCP} frame: the IPv4
/// variant of build_frame with a VLAN tag inserted.
std::size_t build_vlan_frame(std::span<std::byte> out, const FlowKey& flow,
                             std::uint16_t vid, std::size_t frame_len,
                             MacAddr src_mac, MacAddr dst_mac);

/// Full-control IPv4 frame description for build_ipv4_frame: any 802.1Q
/// stack depth (outermost tag first), IP options (ihl > 5, zero-filled),
/// and fragments (a nonzero fragment offset suppresses the L4 header —
/// the payload is patterned filler, as in a real non-first fragment).
struct Ipv4FrameSpec {
  FlowKey flow;
  std::size_t wire_len = 64;
  std::uint8_t ihl = 5;  // 5..15; >5 appends zeroed options
  std::uint16_t flags_fragment = 0x4000;  // DF set, offset 0
  std::vector<std::uint16_t> vlan_vids;   // outer → inner 802.1Q tags
  MacAddr src_mac{};
  MacAddr dst_mac{};
  std::uint16_t ip_id = 0;
};

/// Builds the frame described by `spec` into `out`, returning the bytes
/// written (== spec.wire_len).  Throws std::invalid_argument when the
/// spec is inconsistent (ihl out of range, wire_len below the header
/// minimum, buffer too small).
std::size_t build_ipv4_frame(std::span<std::byte> out,
                             const Ipv4FrameSpec& spec);

/// Builds a complete Ethernet/IPv6/{UDP,TCP} frame of `frame_len` bytes.
std::size_t build_ipv6_frame(std::span<std::byte> out, const Ipv6Addr& src,
                             const Ipv6Addr& dst, IpProto proto,
                             std::uint16_t src_port, std::uint16_t dst_port,
                             std::size_t frame_len, MacAddr src_mac = {},
                             MacAddr dst_mac = {});

/// Minimum buildable frame length for a flow's protocol (headers only).
[[nodiscard]] std::size_t min_frame_len(IpProto proto);

}  // namespace wirecap::net
