#include "net/headers.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/bytes.hpp"
#include "net/checksum.hpp"

namespace wirecap::net {

std::optional<EthernetHeader> parse_ethernet(std::span<const std::byte> frame) {
  if (frame.size() < kEthernetHeaderLen) return std::nullopt;
  EthernetHeader eth;
  for (std::size_t i = 0; i < 6; ++i) {
    eth.dst.octets[i] = read_u8(frame, i);
    eth.src.octets[i] = read_u8(frame, 6 + i);
  }
  eth.ether_type = read_be16(frame, 12);
  return eth;
}

std::optional<VlanTag> parse_vlan(std::span<const std::byte> frame) {
  if (frame.size() < kEthernetHeaderLen + kVlanTagLen) return std::nullopt;
  if (read_be16(frame, 12) != kEtherTypeVlan) return std::nullopt;
  const std::uint16_t tci = read_be16(frame, 14);
  VlanTag tag;
  tag.pcp = static_cast<std::uint8_t>(tci >> 13);
  tag.dei = ((tci >> 12) & 1) != 0;
  tag.vid = tci & 0x0FFF;
  tag.inner_ether_type = read_be16(frame, 16);
  return tag;
}

std::string Ipv6Addr::to_string() const {
  // Plain uncompressed form, 8 groups.
  char buf[48];
  char* out = buf;
  for (std::size_t group = 0; group < 8; ++group) {
    const unsigned value = (static_cast<unsigned>(octets[2 * group]) << 8) |
                           octets[2 * group + 1];
    out += std::snprintf(out, 6, group == 0 ? "%x" : ":%x", value);
  }
  return buf;
}

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  // Split on "::" (at most once), then parse colon-separated groups.
  std::array<std::uint16_t, 8> head{}, tail{};
  std::size_t head_count = 0, tail_count = 0;
  const std::size_t elision = text.find("::");

  const auto parse_groups = [](std::string_view part,
                               std::array<std::uint16_t, 8>& out,
                               std::size_t& count) -> bool {
    if (part.empty()) return true;
    std::size_t start = 0;
    while (start <= part.size()) {
      const std::size_t colon = part.find(':', start);
      const std::string_view group =
          part.substr(start, colon == std::string_view::npos
                                 ? std::string_view::npos
                                 : colon - start);
      if (group.empty() || group.size() > 4 || count >= 8) return false;
      unsigned value = 0;
      for (const char c : group) {
        value <<= 4;
        if (c >= '0' && c <= '9') {
          value |= static_cast<unsigned>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          value |= static_cast<unsigned>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          value |= static_cast<unsigned>(c - 'A' + 10);
        } else {
          return false;
        }
      }
      out[count++] = static_cast<std::uint16_t>(value);
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    return true;
  };

  if (elision == std::string_view::npos) {
    if (!parse_groups(text, head, head_count) || head_count != 8) {
      return std::nullopt;
    }
  } else {
    if (text.find("::", elision + 1) != std::string_view::npos) {
      return std::nullopt;  // only one elision allowed
    }
    if (!parse_groups(text.substr(0, elision), head, head_count)) {
      return std::nullopt;
    }
    if (!parse_groups(text.substr(elision + 2), tail, tail_count)) {
      return std::nullopt;
    }
    if (head_count + tail_count >= 8) return std::nullopt;
  }

  Ipv6Addr addr;
  for (std::size_t i = 0; i < head_count; ++i) {
    addr.octets[2 * i] = static_cast<std::uint8_t>(head[i] >> 8);
    addr.octets[2 * i + 1] = static_cast<std::uint8_t>(head[i] & 0xFF);
  }
  for (std::size_t i = 0; i < tail_count; ++i) {
    const std::size_t group = 8 - tail_count + i;
    addr.octets[2 * group] = static_cast<std::uint8_t>(tail[i] >> 8);
    addr.octets[2 * group + 1] = static_cast<std::uint8_t>(tail[i] & 0xFF);
  }
  return addr;
}

std::optional<Ipv6Header> parse_ipv6(std::span<const std::byte> l3) {
  if (l3.size() < kIpv6HeaderLen) return std::nullopt;
  const std::uint32_t word = read_be32(l3, 0);
  if ((word >> 28) != 6) return std::nullopt;
  Ipv6Header header;
  header.traffic_class = static_cast<std::uint8_t>((word >> 20) & 0xFF);
  header.flow_label = word & 0xFFFFF;
  header.payload_length = read_be16(l3, 4);
  header.next_header = static_cast<IpProto>(read_u8(l3, 6));
  header.hop_limit = read_u8(l3, 7);
  for (std::size_t i = 0; i < 16; ++i) {
    header.src.octets[i] = read_u8(l3, 8 + i);
    header.dst.octets[i] = read_u8(l3, 24 + i);
  }
  return header;
}

std::optional<Ipv4Header> parse_ipv4(std::span<const std::byte> l3) {
  if (l3.size() < kIpv4MinHeaderLen) return std::nullopt;
  const std::uint8_t version_ihl = read_u8(l3, 0);
  if ((version_ihl >> 4) != 4) return std::nullopt;
  Ipv4Header header;
  header.ihl = version_ihl & 0x0F;
  if (header.ihl < 5 || l3.size() < header.header_len()) return std::nullopt;
  header.dscp_ecn = read_u8(l3, 1);
  header.total_length = read_be16(l3, 2);
  header.identification = read_be16(l3, 4);
  header.flags_fragment = read_be16(l3, 6);
  header.ttl = read_u8(l3, 8);
  header.protocol = static_cast<IpProto>(read_u8(l3, 9));
  header.checksum = read_be16(l3, 10);
  header.src = Ipv4Addr{read_be32(l3, 12)};
  header.dst = Ipv4Addr{read_be32(l3, 16)};
  return header;
}

std::optional<UdpHeader> parse_udp(std::span<const std::byte> l4) {
  if (l4.size() < kUdpHeaderLen) return std::nullopt;
  UdpHeader header;
  header.src_port = read_be16(l4, 0);
  header.dst_port = read_be16(l4, 2);
  header.length = read_be16(l4, 4);
  header.checksum = read_be16(l4, 6);
  return header;
}

std::optional<TcpHeader> parse_tcp(std::span<const std::byte> l4) {
  if (l4.size() < kTcpMinHeaderLen) return std::nullopt;
  TcpHeader header;
  header.src_port = read_be16(l4, 0);
  header.dst_port = read_be16(l4, 2);
  header.seq = read_be32(l4, 4);
  header.ack = read_be32(l4, 8);
  header.data_offset = static_cast<std::uint8_t>(read_u8(l4, 12) >> 4);
  header.flags = read_u8(l4, 13);
  header.window = read_be16(l4, 14);
  header.checksum = read_be16(l4, 16);
  header.urgent = read_be16(l4, 18);
  if (header.data_offset < 5) return std::nullopt;
  return header;
}

std::optional<std::size_t> l3_offset(std::span<const std::byte> frame) {
  const auto eth = parse_ethernet(frame);
  if (!eth) return std::nullopt;
  if (eth->ether_type == kEtherTypeVlan) {
    if (frame.size() < kEthernetHeaderLen + kVlanTagLen) return std::nullopt;
    return kEthernetHeaderLen + kVlanTagLen;
  }
  return kEthernetHeaderLen;
}

std::optional<FlowKey> parse_flow(std::span<const std::byte> frame) {
  const auto eth = parse_ethernet(frame);
  if (!eth) return std::nullopt;
  std::uint16_t ether_type = eth->ether_type;
  std::size_t offset = kEthernetHeaderLen;
  if (ether_type == kEtherTypeVlan) {
    const auto tag = parse_vlan(frame);
    if (!tag) return std::nullopt;
    ether_type = tag->inner_ether_type;
    offset += kVlanTagLen;
  }
  if (ether_type != kEtherTypeIpv4) return std::nullopt;
  const auto l3 = frame.subspan(offset);
  const auto ip = parse_ipv4(l3);
  if (!ip) return std::nullopt;
  FlowKey key;
  key.src_ip = ip->src;
  key.dst_ip = ip->dst;
  key.proto = ip->protocol;
  const auto l4 = l3.subspan(ip->header_len());
  switch (ip->protocol) {
    case IpProto::kUdp: {
      const auto udp = parse_udp(l4);
      if (!udp) return std::nullopt;
      key.src_port = udp->src_port;
      key.dst_port = udp->dst_port;
      break;
    }
    case IpProto::kTcp: {
      const auto tcp = parse_tcp(l4);
      if (!tcp) return std::nullopt;
      key.src_port = tcp->src_port;
      key.dst_port = tcp->dst_port;
      break;
    }
    case IpProto::kIcmp:
      key.src_port = 0;
      key.dst_port = 0;
      break;
  }
  return key;
}

void write_ethernet(std::span<std::byte> frame, const EthernetHeader& eth) {
  if (frame.size() < kEthernetHeaderLen) {
    throw std::invalid_argument("write_ethernet: buffer too small");
  }
  for (std::size_t i = 0; i < 6; ++i) {
    write_u8(frame, i, eth.dst.octets[i]);
    write_u8(frame, 6 + i, eth.src.octets[i]);
  }
  write_be16(frame, 12, eth.ether_type);
}

void write_ipv4(std::span<std::byte> l3, const Ipv4Header& header) {
  if (l3.size() < kIpv4MinHeaderLen) {
    throw std::invalid_argument("write_ipv4: buffer too small");
  }
  write_u8(l3, 0, static_cast<std::uint8_t>(0x40 | (header.ihl & 0x0F)));
  write_u8(l3, 1, header.dscp_ecn);
  write_be16(l3, 2, header.total_length);
  write_be16(l3, 4, header.identification);
  write_be16(l3, 6, header.flags_fragment);
  write_u8(l3, 8, header.ttl);
  write_u8(l3, 9, static_cast<std::uint8_t>(header.protocol));
  write_be16(l3, 10, 0);  // checksum placeholder
  write_be32(l3, 12, header.src.value());
  write_be32(l3, 16, header.dst.value());
  const std::uint16_t csum = internet_checksum(l3.first(kIpv4MinHeaderLen));
  write_be16(l3, 10, csum);
}

void write_vlan(std::span<std::byte> frame, const VlanTag& tag) {
  if (frame.size() < kEthernetHeaderLen + kVlanTagLen) {
    throw std::invalid_argument("write_vlan: buffer too small");
  }
  const std::uint16_t tci = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(tag.pcp) << 13) |
      (static_cast<std::uint16_t>(tag.dei ? 1 : 0) << 12) |
      (tag.vid & 0x0FFF));
  write_be16(frame, 14, tci);
  write_be16(frame, 16, tag.inner_ether_type);
}

void write_ipv6(std::span<std::byte> l3, const Ipv6Header& header) {
  if (l3.size() < kIpv6HeaderLen) {
    throw std::invalid_argument("write_ipv6: buffer too small");
  }
  const std::uint32_t word =
      (6u << 28) | (static_cast<std::uint32_t>(header.traffic_class) << 20) |
      (header.flow_label & 0xFFFFF);
  write_be32(l3, 0, word);
  write_be16(l3, 4, header.payload_length);
  write_u8(l3, 6, static_cast<std::uint8_t>(header.next_header));
  write_u8(l3, 7, header.hop_limit);
  for (std::size_t i = 0; i < 16; ++i) {
    write_u8(l3, 8 + i, header.src.octets[i]);
    write_u8(l3, 24 + i, header.dst.octets[i]);
  }
}

void write_udp(std::span<std::byte> l4, const UdpHeader& header) {
  if (l4.size() < kUdpHeaderLen) {
    throw std::invalid_argument("write_udp: buffer too small");
  }
  write_be16(l4, 0, header.src_port);
  write_be16(l4, 2, header.dst_port);
  write_be16(l4, 4, header.length);
  write_be16(l4, 6, 0);  // checksum optional for IPv4
}

void write_tcp(std::span<std::byte> l4, const TcpHeader& header,
               Ipv4Addr src_ip, Ipv4Addr dst_ip,
               std::span<const std::byte> payload) {
  if (l4.size() < kTcpMinHeaderLen) {
    throw std::invalid_argument("write_tcp: buffer too small");
  }
  write_be16(l4, 0, header.src_port);
  write_be16(l4, 2, header.dst_port);
  write_be32(l4, 4, header.seq);
  write_be32(l4, 8, header.ack);
  write_u8(l4, 12, static_cast<std::uint8_t>(header.data_offset << 4));
  write_u8(l4, 13, header.flags);
  write_be16(l4, 14, header.window);
  write_be16(l4, 16, 0);  // checksum placeholder
  write_be16(l4, 18, header.urgent);

  // Pseudo-header: src, dst, zero, proto, tcp length.
  std::array<std::byte, 12> pseudo{};
  write_be32(pseudo, 0, src_ip.value());
  write_be32(pseudo, 4, dst_ip.value());
  write_u8(pseudo, 8, 0);
  write_u8(pseudo, 9, static_cast<std::uint8_t>(IpProto::kTcp));
  const auto tcp_len =
      static_cast<std::uint16_t>(kTcpMinHeaderLen + payload.size());
  write_be16(pseudo, 10, tcp_len);

  std::uint64_t sum = checksum_partial(pseudo);
  sum = checksum_partial(l4.first(kTcpMinHeaderLen), sum);
  sum = checksum_partial(payload, sum);
  write_be16(l4, 16, finish_checksum(sum));
}

std::size_t min_frame_len(IpProto proto) {
  const std::size_t l4 = proto == IpProto::kTcp ? kTcpMinHeaderLen
                         : proto == IpProto::kUdp ? kUdpHeaderLen
                                                  : 8;
  return kEthernetHeaderLen + kIpv4MinHeaderLen + l4;
}

std::size_t build_frame(std::span<std::byte> out, const FlowKey& flow,
                        std::size_t frame_len, MacAddr src_mac, MacAddr dst_mac,
                        std::uint16_t ip_id) {
  const std::size_t minimum = min_frame_len(flow.proto);
  if (frame_len < minimum) {
    throw std::invalid_argument("build_frame: frame_len below header minimum");
  }
  if (out.size() < frame_len) {
    throw std::invalid_argument("build_frame: output buffer too small");
  }
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(frame_len),
            std::byte{0});

  write_ethernet(out, EthernetHeader{dst_mac, src_mac, kEtherTypeIpv4});

  auto l3 = out.subspan(kEthernetHeaderLen);
  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(frame_len - kEthernetHeaderLen);
  ip.identification = ip_id;
  ip.protocol = flow.proto;
  ip.src = flow.src_ip;
  ip.dst = flow.dst_ip;
  write_ipv4(l3, ip);

  auto l4 = l3.subspan(kIpv4MinHeaderLen);
  const std::size_t l4_len = frame_len - kEthernetHeaderLen - kIpv4MinHeaderLen;
  switch (flow.proto) {
    case IpProto::kUdp: {
      UdpHeader udp;
      udp.src_port = flow.src_port;
      udp.dst_port = flow.dst_port;
      udp.length = static_cast<std::uint16_t>(l4_len);
      write_udp(l4, udp);
      break;
    }
    case IpProto::kTcp: {
      TcpHeader tcp;
      tcp.src_port = flow.src_port;
      tcp.dst_port = flow.dst_port;
      const auto payload = l4.subspan(kTcpMinHeaderLen, l4_len - kTcpMinHeaderLen);
      write_tcp(l4, tcp, flow.src_ip, flow.dst_ip, payload);
      break;
    }
    case IpProto::kIcmp:
      // Echo-request-shaped filler: type 8, code 0, zero checksum field
      // then correct checksum.
      write_u8(l4, 0, 8);
      write_u8(l4, 1, 0);
      write_be16(l4, 2, internet_checksum(l4.first(l4_len)));
      break;
  }
  return frame_len;
}

std::size_t build_vlan_frame(std::span<std::byte> out, const FlowKey& flow,
                             std::uint16_t vid, std::size_t frame_len,
                             MacAddr src_mac, MacAddr dst_mac) {
  const std::size_t minimum = min_frame_len(flow.proto) + kVlanTagLen;
  if (frame_len < minimum) {
    throw std::invalid_argument("build_vlan_frame: frame_len below minimum");
  }
  if (out.size() < frame_len) {
    throw std::invalid_argument("build_vlan_frame: output buffer too small");
  }
  // Build the untagged frame 4 bytes shorter, then splice in the tag.
  std::array<std::byte, 2048> scratch{};
  build_frame(scratch, flow, frame_len - kVlanTagLen, src_mac, dst_mac);
  std::copy_n(scratch.begin(), 12, out.begin());
  write_be16(out, 12, kEtherTypeVlan);
  VlanTag tag;
  tag.vid = vid;
  tag.inner_ether_type = kEtherTypeIpv4;
  write_vlan(out, tag);
  std::copy_n(scratch.begin() + 14,
              frame_len - kVlanTagLen - kEthernetHeaderLen,
              out.begin() + 18);
  return frame_len;
}

std::size_t build_ipv4_frame(std::span<std::byte> out,
                             const Ipv4FrameSpec& spec) {
  if (spec.ihl < 5 || spec.ihl > 15) {
    throw std::invalid_argument("build_ipv4_frame: ihl out of range");
  }
  const std::size_t l2_len =
      kEthernetHeaderLen + kVlanTagLen * spec.vlan_vids.size();
  const std::size_t ip_hdr_len = static_cast<std::size_t>(spec.ihl) * 4;
  const bool is_fragment = (spec.flags_fragment & 0x1FFF) != 0;
  const std::size_t l4_min =
      is_fragment ? 0
      : spec.flow.proto == IpProto::kTcp ? kTcpMinHeaderLen
      : spec.flow.proto == IpProto::kUdp ? kUdpHeaderLen
                                         : 8;
  const std::size_t minimum = l2_len + ip_hdr_len + l4_min;
  if (spec.wire_len < minimum) {
    throw std::invalid_argument("build_ipv4_frame: wire_len below minimum");
  }
  if (out.size() < spec.wire_len) {
    throw std::invalid_argument("build_ipv4_frame: output buffer too small");
  }
  std::fill(out.begin(),
            out.begin() + static_cast<std::ptrdiff_t>(spec.wire_len),
            std::byte{0});

  write_ethernet(out, EthernetHeader{spec.dst_mac, spec.src_mac,
                                     spec.vlan_vids.empty() ? kEtherTypeIpv4
                                                            : kEtherTypeVlan});
  for (std::size_t i = 0; i < spec.vlan_vids.size(); ++i) {
    write_be16(out, 14 + 4 * i,
               static_cast<std::uint16_t>(spec.vlan_vids[i] & 0x0FFF));
    write_be16(out, 16 + 4 * i,
               i + 1 < spec.vlan_vids.size() ? kEtherTypeVlan
                                             : kEtherTypeIpv4);
  }

  auto l3 = out.subspan(l2_len);
  Ipv4Header ip;
  ip.ihl = spec.ihl;
  ip.total_length = static_cast<std::uint16_t>(spec.wire_len - l2_len);
  ip.identification = spec.ip_id;
  ip.flags_fragment = spec.flags_fragment;
  ip.protocol = spec.flow.proto;
  ip.src = spec.flow.src_ip;
  ip.dst = spec.flow.dst_ip;
  // Options (ihl > 5) stay zero-filled, so the checksum write_ipv4
  // computes over the first 20 bytes covers the full header.
  write_ipv4(l3, ip);

  auto l4 = l3.subspan(ip_hdr_len);
  const std::size_t l4_len = spec.wire_len - l2_len - ip_hdr_len;
  if (is_fragment) {
    // Non-first fragment: the bytes at the L4 offset are mid-datagram
    // payload, not a header.  Pattern them so port primitives that
    // (incorrectly) read them would see nonzero garbage.
    std::fill(l4.begin(), l4.begin() + static_cast<std::ptrdiff_t>(l4_len),
              std::byte{0xA5});
    return spec.wire_len;
  }
  switch (spec.flow.proto) {
    case IpProto::kUdp: {
      UdpHeader udp;
      udp.src_port = spec.flow.src_port;
      udp.dst_port = spec.flow.dst_port;
      udp.length = static_cast<std::uint16_t>(l4_len);
      write_udp(l4, udp);
      break;
    }
    case IpProto::kTcp: {
      TcpHeader tcp;
      tcp.src_port = spec.flow.src_port;
      tcp.dst_port = spec.flow.dst_port;
      const auto payload =
          l4.subspan(kTcpMinHeaderLen, l4_len - kTcpMinHeaderLen);
      write_tcp(l4, tcp, spec.flow.src_ip, spec.flow.dst_ip, payload);
      break;
    }
    case IpProto::kIcmp:
      write_u8(l4, 0, 8);
      write_u8(l4, 1, 0);
      write_be16(l4, 2, internet_checksum(l4.first(l4_len)));
      break;
  }
  return spec.wire_len;
}

std::size_t build_ipv6_frame(std::span<std::byte> out, const Ipv6Addr& src,
                             const Ipv6Addr& dst, IpProto proto,
                             std::uint16_t src_port, std::uint16_t dst_port,
                             std::size_t frame_len, MacAddr src_mac,
                             MacAddr dst_mac) {
  const std::size_t l4_min = proto == IpProto::kTcp ? kTcpMinHeaderLen
                             : proto == IpProto::kUdp ? kUdpHeaderLen
                                                      : 8;
  const std::size_t minimum = kEthernetHeaderLen + kIpv6HeaderLen + l4_min;
  if (frame_len < minimum) {
    throw std::invalid_argument("build_ipv6_frame: frame_len below minimum");
  }
  if (out.size() < frame_len) {
    throw std::invalid_argument("build_ipv6_frame: output buffer too small");
  }
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(frame_len),
            std::byte{0});
  write_ethernet(out, EthernetHeader{dst_mac, src_mac, kEtherTypeIpv6});

  auto l3 = out.subspan(kEthernetHeaderLen);
  Ipv6Header ip;
  ip.payload_length = static_cast<std::uint16_t>(
      frame_len - kEthernetHeaderLen - kIpv6HeaderLen);
  ip.next_header = proto;
  ip.src = src;
  ip.dst = dst;
  write_ipv6(l3, ip);

  auto l4 = l3.subspan(kIpv6HeaderLen);
  const std::size_t l4_len = ip.payload_length;
  switch (proto) {
    case IpProto::kUdp: {
      UdpHeader udp;
      udp.src_port = src_port;
      udp.dst_port = dst_port;
      udp.length = static_cast<std::uint16_t>(l4_len);
      write_udp(l4, udp);
      break;
    }
    case IpProto::kTcp: {
      // TCP checksum over the IPv6 pseudo-header.
      write_be16(l4, 0, src_port);
      write_be16(l4, 2, dst_port);
      write_u8(l4, 12, 5 << 4);
      write_u8(l4, 13, 0x10);
      write_be16(l4, 14, 65535);
      std::array<std::byte, 40> pseudo{};
      for (std::size_t i = 0; i < 16; ++i) {
        pseudo[i] = static_cast<std::byte>(src.octets[i]);
        pseudo[16 + i] = static_cast<std::byte>(dst.octets[i]);
      }
      write_be32(pseudo, 32, static_cast<std::uint32_t>(l4_len));
      write_u8(pseudo, 39, static_cast<std::uint8_t>(IpProto::kTcp));
      std::uint64_t sum = checksum_partial(pseudo);
      sum = checksum_partial(l4.first(l4_len), sum);
      write_be16(l4, 16, finish_checksum(sum));
      break;
    }
    case IpProto::kIcmp:
      write_u8(l4, 0, 128);  // ICMPv6 echo request
      break;
  }
  return frame_len;
}

}  // namespace wirecap::net
