// RFC 1071 Internet checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace wirecap::net {

/// Sums 16-bit big-endian words (with end-around carry deferred); use
/// finish_checksum to fold and complement.  Exposed so the pseudo-header
/// sum for TCP/UDP can be accumulated across discontiguous regions.
[[nodiscard]] std::uint64_t checksum_partial(std::span<const std::byte> data,
                                             std::uint64_t sum = 0);

/// Folds a partial sum into the final one's-complement checksum.
[[nodiscard]] std::uint16_t finish_checksum(std::uint64_t sum);

/// One-shot checksum over a contiguous region.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::byte> data);

}  // namespace wirecap::net
