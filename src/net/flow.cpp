#include "net/flow.hpp"

#include <cstdio>

namespace wirecap::net {

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

std::string FlowKey::to_string() const {
  return std::string(wirecap::net::to_string(proto)) + " " +
         src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
         dst_ip.to_string() + ":" + std::to_string(dst_port);
}

}  // namespace wirecap::net
