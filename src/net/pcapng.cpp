#include "net/pcapng.hpp"

#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>
#include <stdexcept>

namespace wirecap::net {

namespace {

constexpr std::uint32_t pad4(std::uint32_t n) { return (n + 3u) & ~3u; }

#ifdef IOV_MAX
constexpr std::size_t kMaxIov = IOV_MAX;
#else
constexpr std::size_t kMaxIov = 1024;
#endif

constexpr std::uint32_t bswap32(std::uint32_t v) {
  return (v << 24) | ((v << 8) & 0x00FF0000u) | ((v >> 8) & 0x0000FF00u) |
         (v >> 24);
}

}  // namespace

// --- writer ---

void PcapngWriter::ensure_open() const {
  if (out_ == nullptr) {
    throw std::runtime_error("PcapngWriter: write after close");
  }
}

void PcapngWriter::put_bytes(const void* data, std::size_t size) {
  if (size != 0) std::fwrite(data, 1, size, out_);
}

void PcapngWriter::put32(std::uint32_t value) {
  put_bytes(&value, sizeof(value));
}

void PcapngWriter::put16(std::uint16_t value) {
  put_bytes(&value, sizeof(value));
}

void PcapngWriter::put_option(std::uint16_t code,
                              std::span<const std::byte> value) {
  put16(code);
  put16(static_cast<std::uint16_t>(value.size()));
  put_bytes(value.data(), value.size());
  const std::uint32_t padding =
      pad4(static_cast<std::uint32_t>(value.size())) -
      static_cast<std::uint32_t>(value.size());
  const char zeros[4] = {};
  put_bytes(zeros, padding);
}

void PcapngWriter::put_end_of_options() {
  put16(0);  // opt_endofopt
  put16(0);
}

PcapngWriter::PcapngWriter(const std::filesystem::path& path,
                           std::uint32_t snaplen, const std::string& hardware,
                           const std::string& application)
    : out_(std::fopen(path.c_str(), "wb")) {
  if (out_ == nullptr) {
    throw std::runtime_error("PcapngWriter: cannot open " + path.string());
  }
  const auto string_option = [](const std::string& text) {
    return std::span<const std::byte>{
        reinterpret_cast<const std::byte*>(text.data()), text.size()};
  };

  // Section Header Block: type, length, byte-order magic, version 1.0,
  // section length -1 (unknown), options shb_hardware / shb_userappl.
  // Each option is a 4-byte header plus the 4-byte-padded value; the
  // list ends with the 4-byte opt_endofopt.
  const std::uint32_t shb_options =
      4 + pad4(static_cast<std::uint32_t>(hardware.size())) +
      4 + pad4(static_cast<std::uint32_t>(application.size())) + 4;
  const std::uint32_t shb_len = 28 + shb_options;
  put32(kPcapngShbType);
  put32(shb_len);
  put32(kPcapngByteOrderMagic);
  put16(1);  // major
  put16(0);  // minor
  put32(0xFFFFFFFFu);  // section length, low  (-1)
  put32(0xFFFFFFFFu);  // section length, high
  put_option(2, string_option(hardware));      // shb_hardware
  put_option(4, string_option(application));   // shb_userappl
  put_end_of_options();
  put32(shb_len);

  // Interface Description Block: Ethernet, with if_tsresol = 9
  // (nanoseconds).
  const std::uint8_t tsresol = 9;
  const std::uint32_t idb_options = 8 /*tsresol padded*/ + 4 /*end*/;
  const std::uint32_t idb_len = 20 + idb_options;
  put32(kPcapngIdbType);
  put32(idb_len);
  put16(1);  // LINKTYPE_ETHERNET
  put16(0);  // reserved
  put32(snaplen);
  put_option(9, std::span<const std::byte>{
                    reinterpret_cast<const std::byte*>(&tsresol), 1});
  put_end_of_options();
  put32(idb_len);
  bytes_ = shb_len + idb_len;
}

void PcapngWriter::write(Nanos timestamp, std::span<const std::byte> data,
                         std::uint32_t orig_len, std::uint32_t interface_id,
                         std::optional<std::uint64_t> packet_id) {
  ensure_open();
  if (timestamp.count() < 0) {
    throw std::invalid_argument("PcapngWriter: negative timestamp");
  }
  const auto ts = static_cast<std::uint64_t>(timestamp.count());
  const auto captured = static_cast<std::uint32_t>(data.size());
  // With a packet id: epb_packetid option (4 header + 8 value) plus the
  // 4-byte opt_endofopt.
  const std::uint32_t options_len = packet_id ? 12 + 4 : 0;
  const std::uint32_t block_len = 32 + pad4(captured) + options_len;

  put32(kPcapngEpbType);
  put32(block_len);
  put32(interface_id);
  put32(static_cast<std::uint32_t>(ts >> 32));
  put32(static_cast<std::uint32_t>(ts & 0xFFFFFFFFu));
  put32(captured);
  put32(orig_len);
  put_bytes(data.data(), captured);
  const char zeros[4] = {};
  put_bytes(zeros, pad4(captured) - captured);
  if (packet_id) {
    const std::uint64_t id = *packet_id;
    put_option(5, std::span<const std::byte>{
                      reinterpret_cast<const std::byte*>(&id), 8});
    put_end_of_options();
  }
  put32(block_len);
  if (std::ferror(out_)) throw std::runtime_error("PcapngWriter: write failed");
  ++records_;
  bytes_ += block_len;
}

void PcapngWriter::write_gather(std::span<const GatherSlice> slices,
                                std::uint32_t interface_id) {
  ensure_open();
  if (slices.empty()) return;

  gather_arena_.clear();
  gather_pieces_.clear();
  const auto arena32 = [this](std::uint32_t value) {
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    gather_arena_.insert(gather_arena_.end(), raw, raw + 4);
  };
  const auto arena16 = [this](std::uint16_t value) {
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    gather_arena_.insert(gather_arena_.end(), raw, raw + 2);
  };

  std::uint64_t batch_bytes = 0;
  for (const GatherSlice& slice : slices) {
    if (slice.timestamp.count() < 0) {
      throw std::invalid_argument("PcapngWriter: negative timestamp");
    }
    const auto ts = static_cast<std::uint64_t>(slice.timestamp.count());
    const auto captured = static_cast<std::uint32_t>(slice.data.size());
    // epb_packetid option (4 header + 8 value) + opt_endofopt.
    const std::uint32_t options_len = 12 + 4;
    const std::uint32_t block_len = 32 + pad4(captured) + options_len;

    // Header piece (28 bytes of framing up to the packet data).
    const std::size_t header_at = gather_arena_.size();
    arena32(kPcapngEpbType);
    arena32(block_len);
    arena32(interface_id);
    arena32(static_cast<std::uint32_t>(ts >> 32));
    arena32(static_cast<std::uint32_t>(ts & 0xFFFFFFFFu));
    arena32(captured);
    arena32(slice.orig_len);
    gather_pieces_.push_back(
        {header_at, nullptr, gather_arena_.size() - header_at});

    // The payload stays external — that is the whole point of the
    // gather path.
    if (captured != 0) {
      gather_pieces_.push_back({0, slice.data.data(), captured});
    }

    // Tail piece: data padding, epb_packetid option, end-of-options,
    // trailing block length.
    const std::size_t tail_at = gather_arena_.size();
    gather_arena_.resize(tail_at + (pad4(captured) - captured),
                         std::byte{0});
    arena16(5);  // epb_packetid
    arena16(8);
    const auto* id_raw = reinterpret_cast<const std::byte*>(&slice.packet_id);
    gather_arena_.insert(gather_arena_.end(), id_raw, id_raw + 8);
    arena16(0);  // opt_endofopt
    arena16(0);
    arena32(block_len);
    gather_pieces_.push_back({tail_at, nullptr, gather_arena_.size() - tail_at});

    batch_bytes += block_len;
  }

  // Materialize iovecs only now: the arena has stopped growing, so its
  // data() pointer is stable.
  std::vector<::iovec> iov;
  iov.reserve(gather_pieces_.size());
  for (const GatherPiece& piece : gather_pieces_) {
    if (piece.len == 0) continue;
    const std::byte* base = piece.external != nullptr
                                ? piece.external
                                : gather_arena_.data() + piece.arena_offset;
    iov.push_back({const_cast<std::byte*>(base), piece.len});
  }

  // Push any buffered scalar writes first so the vectored bytes land in
  // order, then drain the iovec list through writev.
  if (std::fflush(out_) != 0) {
    throw std::runtime_error("PcapngWriter: flush before gather failed");
  }
  const int fd = ::fileno(out_);
  std::size_t idx = 0;
  while (idx < iov.size()) {
    const auto count =
        static_cast<int>(std::min(iov.size() - idx, kMaxIov));
    const ssize_t wrote = ::writev(fd, iov.data() + idx, count);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("PcapngWriter: writev failed");
    }
    auto remaining = static_cast<std::size_t>(wrote);
    while (idx < iov.size() && remaining >= iov[idx].iov_len) {
      remaining -= iov[idx].iov_len;
      ++idx;
    }
    if (remaining > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + remaining;
      iov[idx].iov_len -= remaining;
    }
  }

  records_ += slices.size();
  bytes_ += batch_bytes;
}

void PcapngWriter::write_custom_block(std::uint32_t pen,
                                      std::span<const std::byte> payload) {
  ensure_open();
  const auto size = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t block_len = 16 + pad4(size);
  put32(kPcapngCbType);
  put32(block_len);
  put32(pen);
  put_bytes(payload.data(), size);
  const char zeros[4] = {};
  put_bytes(zeros, pad4(size) - size);
  put32(block_len);
  if (std::ferror(out_)) {
    throw std::runtime_error("PcapngWriter: custom block failed");
  }
  bytes_ += block_len;
}

PcapngWriter::~PcapngWriter() {
  if (out_ != nullptr) std::fclose(out_);  // flushes; errors swallowed
}

void PcapngWriter::flush() {
  if (out_ != nullptr) std::fflush(out_);
}

void PcapngWriter::close() {
  if (out_ == nullptr) return;
  const int flush_rc = std::fflush(out_);
  const int had_error = std::ferror(out_);
  const int close_rc = std::fclose(out_);
  out_ = nullptr;
  if (flush_rc != 0 || close_rc != 0 || had_error != 0) {
    throw std::runtime_error("PcapngWriter: close failed");
  }
}

// --- reader ---

PcapngReader::PcapngReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("PcapngReader: cannot open " + path.string());
  }
  // Peek at the SHB to learn the byte order before general block parsing.
  std::uint32_t type = 0, body_magic = 0;
  char header[12];
  if (!in_.read(header, sizeof(header))) {
    throw std::runtime_error("PcapngReader: truncated SHB");
  }
  std::memcpy(&type, header, 4);
  std::memcpy(&body_magic, header + 8, 4);
  if (type != kPcapngShbType) {
    throw std::runtime_error("PcapngReader: not a pcapng file");
  }
  if (body_magic == kPcapngByteOrderMagic) {
    swapped_ = false;
  } else if (bswap32(body_magic) == kPcapngByteOrderMagic) {
    swapped_ = true;
  } else {
    throw std::runtime_error("PcapngReader: bad byte-order magic");
  }
  // Rewind and let the block loop consume the SHB properly.
  in_.seekg(0);
  std::vector<std::byte> body;
  if (!read_block(type, body) || type != kPcapngShbType) {
    throw std::runtime_error("PcapngReader: SHB re-read failed");
  }
  // Extract shb_hardware (option 2) if present: options start at byte 16
  // of the SHB body (after magic, version and section length).
  std::size_t offset = 16;
  while (offset + 4 <= body.size()) {
    std::uint16_t code, length;
    std::memcpy(&code, body.data() + offset, 2);
    std::memcpy(&length, body.data() + offset + 2, 2);
    if (swapped_) {
      code = static_cast<std::uint16_t>((code << 8) | (code >> 8));
      length = static_cast<std::uint16_t>((length << 8) | (length >> 8));
    }
    if (code == 0) break;
    if (code == 2 && offset + 4 + length <= body.size()) {
      hardware_.assign(reinterpret_cast<const char*>(body.data()) + offset + 4,
                       length);
    }
    offset += 4 + pad4(length);
  }
}

std::uint32_t PcapngReader::get32(std::span<const std::byte> data,
                                  std::size_t offset) const {
  if (offset + 4 > data.size()) {
    throw std::runtime_error("PcapngReader: short block");
  }
  std::uint32_t value;
  std::memcpy(&value, data.data() + offset, 4);
  return swapped_ ? bswap32(value) : value;
}

bool PcapngReader::read_block(std::uint32_t& type,
                              std::vector<std::byte>& body) {
  std::uint32_t raw_type = 0, raw_len = 0;
  if (!in_.read(reinterpret_cast<char*>(&raw_type), 4)) return false;
  if (!in_.read(reinterpret_cast<char*>(&raw_len), 4)) {
    throw std::runtime_error("PcapngReader: truncated block header");
  }
  type = swapped_ ? bswap32(raw_type) : raw_type;
  const std::uint32_t total = swapped_ ? bswap32(raw_len) : raw_len;
  if (total < 12 || total > (1u << 26) || (total & 3) != 0) {
    throw std::runtime_error("PcapngReader: implausible block length");
  }
  body.resize(total - 12);
  if (!in_.read(reinterpret_cast<char*>(body.data()),
                static_cast<std::streamsize>(body.size()))) {
    throw std::runtime_error("PcapngReader: truncated block body");
  }
  std::uint32_t trailer = 0;
  if (!in_.read(reinterpret_cast<char*>(&trailer), 4)) {
    throw std::runtime_error("PcapngReader: missing block trailer");
  }
  if ((swapped_ ? bswap32(trailer) : trailer) != total) {
    throw std::runtime_error("PcapngReader: trailer/length mismatch");
  }
  return true;
}

std::optional<PcapngRecord> PcapngReader::next() {
  std::uint32_t type = 0;
  std::vector<std::byte> body;
  while (read_block(type, body)) {
    if (type == kPcapngIdbType) {
      // Record the interface's timestamp resolution (default 10^-6).
      std::uint32_t digits = 6;
      std::size_t offset = 8;  // linktype+reserved+snaplen
      while (offset + 4 <= body.size()) {
        std::uint16_t code, length;
        std::memcpy(&code, body.data() + offset, 2);
        std::memcpy(&length, body.data() + offset + 2, 2);
        if (swapped_) {
          code = static_cast<std::uint16_t>((code << 8) | (code >> 8));
          length = static_cast<std::uint16_t>((length << 8) | (length >> 8));
        }
        if (code == 0) break;
        if (code == 9 && length >= 1 && offset + 4 < body.size()) {
          const auto tsresol = static_cast<std::uint8_t>(body[offset + 4]);
          if ((tsresol & 0x80) == 0) digits = tsresol;
        }
        offset += 4 + pad4(length);
      }
      tsresol_digits_.push_back(digits);
      ++interfaces_seen_;
      continue;
    }
    if (type != kPcapngEpbType) continue;  // skip unknown blocks

    PcapngRecord record;
    record.interface_id = get32(body, 0);
    const std::uint64_t ts =
        (static_cast<std::uint64_t>(get32(body, 4)) << 32) | get32(body, 8);
    const std::uint32_t captured = get32(body, 12);
    record.orig_len = get32(body, 16);
    if (20 + captured > body.size()) {
      throw std::runtime_error("PcapngReader: EPB data overruns block");
    }
    record.data.assign(body.begin() + 20,
                       body.begin() + 20 + static_cast<std::ptrdiff_t>(captured));
    // Options (after the padded data): extract epb_packetid (code 5).
    std::size_t opt = 20 + pad4(captured);
    while (opt + 4 <= body.size()) {
      std::uint16_t code, length;
      std::memcpy(&code, body.data() + opt, 2);
      std::memcpy(&length, body.data() + opt + 2, 2);
      if (swapped_) {
        code = static_cast<std::uint16_t>((code << 8) | (code >> 8));
        length = static_cast<std::uint16_t>((length << 8) | (length >> 8));
      }
      if (code == 0) break;
      if (code == 5 && length == 8 && opt + 12 <= body.size()) {
        std::uint64_t id;
        std::memcpy(&id, body.data() + opt + 4, 8);
        if (swapped_) {
          id = (static_cast<std::uint64_t>(bswap32(
                    static_cast<std::uint32_t>(id & 0xFFFFFFFFu)))
                << 32) |
               bswap32(static_cast<std::uint32_t>(id >> 32));
        }
        record.packet_id = id;
      }
      opt += 4 + pad4(length);
    }
    const std::uint32_t digits =
        record.interface_id < tsresol_digits_.size()
            ? tsresol_digits_[record.interface_id]
            : 6;
    std::uint64_t to_nanos = 1;
    for (std::uint32_t d = digits; d < 9; ++d) to_nanos *= 10;
    record.timestamp = Nanos{static_cast<std::int64_t>(ts * to_nanos)};
    return record;
  }
  return std::nullopt;
}

std::vector<PcapngRecord> PcapngReader::read_all() {
  std::vector<PcapngRecord> records;
  while (auto record = next()) records.push_back(std::move(*record));
  return records;
}

}  // namespace wirecap::net
