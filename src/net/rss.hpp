// Toeplitz hash — the receive-side-scaling (RSS) function implemented by
// the Intel 82599 and most other multi-queue NICs.  The NIC computes
// this hash over the IPv4 5-tuple fields of each incoming packet and
// uses (hash mod queues) / an indirection table to pick the receive
// queue, which is exactly what keeps all packets of one flow on one
// core — and what produces the load imbalance the paper studies.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "net/flow.hpp"
#include "net/headers.hpp"

namespace wirecap::net {

/// The 40-byte Microsoft/Intel default RSS key (the "well-known" key
/// shipped in the 82599 datasheet and countless drivers).
inline constexpr std::array<std::uint8_t, 40> kDefaultRssKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

/// Computes the Toeplitz hash of `input` under `key`.  `input` is the
/// concatenated big-endian tuple fields.
[[nodiscard]] std::uint32_t toeplitz_hash(std::span<const std::uint8_t> input,
                                          std::span<const std::uint8_t> key);

/// RSS hash of an IPv4 TCP/UDP 4-tuple + addresses as the 82599 computes
/// it for "IPv4 with L4" packet types: src ip, dst ip, src port, dst
/// port, all big-endian.  For protocols without ports the NIC hashes the
/// addresses only; this helper does the same when proto is not TCP/UDP.
[[nodiscard]] std::uint32_t rss_hash(
    const FlowKey& flow,
    std::span<const std::uint8_t> key = kDefaultRssKey);

/// RSS hash of an IPv6 TCP/UDP tuple ("IPv6 with L4" packet type): the
/// concatenated 16-byte source and destination addresses followed by
/// the ports.  With `with_ports == false`, addresses only.
[[nodiscard]] std::uint32_t rss_hash_ipv6(
    const Ipv6Addr& src, const Ipv6Addr& dst, std::uint16_t src_port,
    std::uint16_t dst_port, bool with_ports = true,
    std::span<const std::uint8_t> key = kDefaultRssKey);

/// Size of the RSS indirection table (RETA); 128 entries on the 82599.
inline constexpr std::uint32_t kRssRetaSize = 128;

/// Receive queue selected for `flow` when the NIC is configured with
/// `num_queues` queues and the default round-robin-populated indirection
/// table (RETA[i] = i mod num_queues), as drivers initialize it.
[[nodiscard]] inline std::uint32_t rss_queue(const FlowKey& flow,
                                             std::uint32_t num_queues) {
  const std::uint32_t index = rss_hash(flow) & (kRssRetaSize - 1);
  return index % num_queues;
}

}  // namespace wirecap::net
