// The packet value type that travels through the simulated wire, NIC and
// capture engines.
//
// A WirePacket carries its arrival timestamp, wire length, parsed flow
// key (used by the NIC steering hardware model) and the leading bytes of
// the frame (headers + start of payload, up to kSnapBytes).  The DMA
// model copies these bytes into ring-buffer cells, so BPF filters and
// forwarding code operate on real frame bytes; bodies beyond the snap
// length are accounted for by wire_len but not materialized, keeping
// multi-million-packet experiments cheap.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/units.hpp"
#include "net/flow.hpp"
#include "net/headers.hpp"

namespace wirecap::net {

class WirePacket {
 public:
  /// Bytes of the frame that are materialized.  64 covers the whole
  /// minimum-size frame and all headers of larger ones.
  static constexpr std::size_t kSnapBytes = 64;

  WirePacket() = default;

  /// Builds a real frame for `flow` of `wire_len` bytes (excluding FCS)
  /// arriving at `timestamp`.
  static WirePacket make(Nanos timestamp, const FlowKey& flow,
                         std::uint32_t wire_len, std::uint64_t seq = 0,
                         std::uint16_t ip_id = 0);

  /// Constructs from existing frame bytes (trace/pcap replay).
  static WirePacket from_bytes(Nanos timestamp,
                               std::span<const std::byte> frame,
                               std::uint32_t wire_len, std::uint64_t seq = 0);

  [[nodiscard]] Nanos timestamp() const { return timestamp_; }
  void set_timestamp(Nanos t) { timestamp_ = t; }

  /// Full length of the frame on the wire (excluding FCS/preamble).
  [[nodiscard]] std::uint32_t wire_len() const { return wire_len_; }

  /// Number of materialized bytes (min(wire_len, kSnapBytes)).
  [[nodiscard]] std::uint32_t snap_len() const { return snap_len_; }

  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {data_.data(), snap_len_};
  }
  [[nodiscard]] std::span<std::byte> mutable_bytes() {
    return {data_.data(), snap_len_};
  }

  [[nodiscard]] const FlowKey& flow() const { return flow_; }

  /// Monotone sequence number assigned by the generator; used to verify
  /// conservation (sent == delivered + dropped) and FIFO per flow.
  [[nodiscard]] std::uint64_t seq() const { return seq_; }

 private:
  Nanos timestamp_{};
  std::uint32_t wire_len_ = 0;
  std::uint32_t snap_len_ = 0;
  std::uint64_t seq_ = 0;
  FlowKey flow_{};
  std::array<std::byte, kSnapBytes> data_{};
};

}  // namespace wirecap::net
