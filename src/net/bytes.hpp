// Safe big-endian (network order) reads and writes over byte spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>

namespace wirecap::net {

[[nodiscard]] inline std::uint8_t read_u8(std::span<const std::byte> data,
                                          std::size_t offset) {
  if (offset + 1 > data.size()) throw std::out_of_range("read_u8");
  return static_cast<std::uint8_t>(data[offset]);
}

[[nodiscard]] inline std::uint16_t read_be16(std::span<const std::byte> data,
                                             std::size_t offset) {
  if (offset + 2 > data.size()) throw std::out_of_range("read_be16");
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data[offset]) << 8) |
      static_cast<std::uint16_t>(data[offset + 1]));
}

[[nodiscard]] inline std::uint32_t read_be32(std::span<const std::byte> data,
                                             std::size_t offset) {
  if (offset + 4 > data.size()) throw std::out_of_range("read_be32");
  return (static_cast<std::uint32_t>(data[offset]) << 24) |
         (static_cast<std::uint32_t>(data[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(data[offset + 2]) << 8) |
         static_cast<std::uint32_t>(data[offset + 3]);
}

inline void write_u8(std::span<std::byte> data, std::size_t offset,
                     std::uint8_t value) {
  if (offset + 1 > data.size()) throw std::out_of_range("write_u8");
  data[offset] = static_cast<std::byte>(value);
}

inline void write_be16(std::span<std::byte> data, std::size_t offset,
                       std::uint16_t value) {
  if (offset + 2 > data.size()) throw std::out_of_range("write_be16");
  data[offset] = static_cast<std::byte>(value >> 8);
  data[offset + 1] = static_cast<std::byte>(value & 0xFF);
}

inline void write_be32(std::span<std::byte> data, std::size_t offset,
                       std::uint32_t value) {
  if (offset + 4 > data.size()) throw std::out_of_range("write_be32");
  data[offset] = static_cast<std::byte>(value >> 24);
  data[offset + 1] = static_cast<std::byte>((value >> 16) & 0xFF);
  data[offset + 2] = static_cast<std::byte>((value >> 8) & 0xFF);
  data[offset + 3] = static_cast<std::byte>(value & 0xFF);
}

}  // namespace wirecap::net
