// Classic libpcap savefile (.pcap) reader and writer, implemented from
// the format specification (no libpcap dependency).  Supports the
// microsecond (0xA1B2C3D4) and nanosecond (0xA1B23C4D) magics in either
// byte order, linktype EN10MB.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "net/packet.hpp"

namespace wirecap::net {

inline constexpr std::uint32_t kPcapMagicMicros = 0xA1B2C3D4;
inline constexpr std::uint32_t kPcapMagicNanos = 0xA1B23C4D;
inline constexpr std::uint32_t kLinktypeEthernet = 1;

struct PcapRecord {
  Nanos timestamp;            // relative to the epoch stored in the file
  std::uint32_t orig_len = 0; // length on the wire
  std::vector<std::byte> data;
};

/// Streaming pcap writer.
class PcapWriter {
 public:
  /// Creates/truncates `path`.  Nanosecond-resolution magic is written by
  /// default (the sim clock is nanoseconds).
  explicit PcapWriter(const std::filesystem::path& path,
                      std::uint32_t snaplen = 65535, bool nanosecond = true);

  /// Flushes any buffered tail bytes; errors are swallowed (use close()
  /// to observe them).
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Appends one record; `timestamp` is seconds.nanos since file epoch.
  void write(Nanos timestamp, std::span<const std::byte> data,
             std::uint32_t orig_len);

  /// Convenience for simulated packets.
  void write(const WirePacket& packet) {
    write(packet.timestamp(), packet.bytes(), packet.wire_len());
  }

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

  void flush();
  /// Flushes and closes the underlying stream, throwing on failure.
  /// Idempotent; further write() calls throw.
  void close();

 private:
  std::ofstream out_;
  bool nanosecond_;
  std::uint64_t records_ = 0;
};

/// Streaming pcap reader.
class PcapReader {
 public:
  explicit PcapReader(const std::filesystem::path& path);

  /// Reads the next record; nullopt at end of file.  Throws
  /// std::runtime_error on a corrupt file.
  std::optional<PcapRecord> next();

  /// Reads everything remaining.
  std::vector<PcapRecord> read_all();

  [[nodiscard]] bool nanosecond() const { return nanosecond_; }
  [[nodiscard]] bool swapped() const { return swapped_; }
  [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }
  [[nodiscard]] std::uint32_t linktype() const { return linktype_; }

 private:
  [[nodiscard]] std::uint32_t fix32(std::uint32_t v) const;
  [[nodiscard]] std::uint16_t fix16(std::uint16_t v) const;

  std::ifstream in_;
  bool nanosecond_ = false;
  bool swapped_ = false;
  std::uint32_t snaplen_ = 0;
  std::uint32_t linktype_ = 0;
};

}  // namespace wirecap::net
