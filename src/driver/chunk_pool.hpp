// The ring-buffer-pool (§3.2.1, Figure 4).
//
// Each receive queue owns a pool of R packet-buffer chunks.  A chunk is
// M fixed-size cells occupying contiguous memory; each cell backs one
// receive descriptor of a descriptor segment.  A chunk is in one of
// three states:
//
//   free      — held in the kernel, available for (re)use
//   attached  — its cells are tied to a descriptor segment, receiving
//   captured  — filled and moved (by metadata only) to user space
//
// Globally a chunk is identified by {nic_id, ring_id, chunk_id}.  The
// recycle path validates this metadata strictly — a misbehaving
// application must not be able to corrupt kernel state (§3.2.2c).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace wirecap::driver {

enum class ChunkState : std::uint8_t { kFree, kAttached, kCaptured };

class RingBufferPool;
struct ChunkMeta;

/// Observation seam for every chunk state transition a pool performs.
/// The production pool runs with a null observer (one predicted branch
/// per transition); the lifecycle auditor (src/testing) subscribes here
/// to shadow the state machine and fail fast on violations.
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;

  /// Fired after a transition commits.  `cause` is a static string
  /// naming the operation ("attach", "capture", "rescue", "recycle",
  /// "release").
  virtual void on_transition(const RingBufferPool& pool,
                             std::uint32_t chunk_id, ChunkState from,
                             ChunkState to, const char* cause) = 0;

  /// Fired when recycle() rejects user-supplied metadata (the chunk, if
  /// any, did not change state).
  virtual void on_recycle_reject(const RingBufferPool& pool,
                                 const ChunkMeta& meta, StatusCode code) {
    static_cast<void>(pool);
    static_cast<void>(meta);
    static_cast<void>(code);
  }

  /// Fired after a fan-out share grant (`delta` > 0) or release
  /// (`delta` < 0) commits on a captured chunk; `now` is the resulting
  /// share count.  Shares gate recycle: a chunk cannot leave the
  /// captured state while any remain.
  virtual void on_shares(const RingBufferPool& pool, std::uint32_t chunk_id,
                         std::int64_t delta, std::uint32_t now) {
    static_cast<void>(pool);
    static_cast<void>(chunk_id);
    static_cast<void>(delta);
    static_cast<void>(now);
  }
};

/// Per-state population of a pool; free + attached + captured always
/// equals R (every chunk is in exactly one state).
struct ChunkStateCounts {
  std::uint32_t free = 0;
  std::uint32_t attached = 0;
  std::uint32_t captured = 0;
};

[[nodiscard]] constexpr const char* to_string(ChunkState state) {
  switch (state) {
    case ChunkState::kFree: return "free";
    case ChunkState::kAttached: return "attached";
    case ChunkState::kCaptured: return "captured";
  }
  return "?";
}

/// Metadata passed between kernel and user space when a chunk is
/// captured or recycled: {nic_id, ring_id, chunk_id} plus the valid cell
/// range.  The chunk body is never copied — this struct *is* the
/// capture.
struct ChunkMeta {
  std::uint32_t nic_id = 0;
  std::uint32_t ring_id = 0;
  std::uint32_t chunk_id = 0;
  /// First cell holding a packet (nonzero after a partial-copy rescue
  /// consumed a prefix of the chunk).
  std::uint32_t first_cell = 0;
  /// Number of packets in the chunk.
  std::uint32_t pkt_count = 0;

  constexpr bool operator==(const ChunkMeta&) const = default;
};

/// Per-cell packet metadata written by the driver when the cell's
/// descriptor completes (the simulation's stand-in for the descriptor
/// writeback the user library reads).
struct CellInfo {
  std::uint32_t length = 0;
  std::uint32_t wire_length = 0;
  std::int64_t timestamp_ns = 0;
  std::uint64_t seq = 0;
};

class RingBufferPool {
 public:
  /// Creates a pool of `chunk_count` (R) chunks of `cells_per_chunk` (M)
  /// cells, each `cell_size` bytes (2 KiB in the paper's
  /// implementation).
  RingBufferPool(std::uint32_t nic_id, std::uint32_t ring_id,
                 std::uint32_t cells_per_chunk, std::uint32_t chunk_count,
                 std::uint32_t cell_size = 2048, std::uint32_t numa_node = 0);

  [[nodiscard]] std::uint32_t nic_id() const { return nic_id_; }
  [[nodiscard]] std::uint32_t ring_id() const { return ring_id_; }
  /// Process-unique pool instance id.  {nic_id, ring_id} repeats across
  /// close()/open() cycles (a reopened queue builds a fresh pool with
  /// the same coordinates); observers that shadow per-pool state key on
  /// this instead so a recycled heap address can't alias a dead pool.
  [[nodiscard]] std::uint64_t uid() const { return uid_; }
  [[nodiscard]] std::uint32_t cells_per_chunk() const { return cells_per_chunk_; }
  [[nodiscard]] std::uint32_t chunk_count() const { return chunk_count_; }
  [[nodiscard]] std::uint32_t cell_size() const { return cell_size_; }
  /// NUMA node the pool's memory is allocated on (placement decided by
  /// the driver config; the cost model charges remote-socket access).
  [[nodiscard]] std::uint32_t numa_node() const { return numa_node_; }

  /// Total buffering capacity in packets (R * M).
  [[nodiscard]] std::uint64_t capacity_packets() const {
    return static_cast<std::uint64_t>(cells_per_chunk_) * chunk_count_;
  }

  /// Total pool memory in bytes (R * M * cell_size).
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return capacity_packets() * cell_size_;
  }

  [[nodiscard]] std::uint32_t free_chunks() const {
    return static_cast<std::uint32_t>(free_list_.size());
  }

  // --- state transitions ---

  /// free -> attached.  Returns the chunk id, or kExhausted when the
  /// free list is empty — the condition that leads to packet capture
  /// drops ("the free packet buffer chunks in the ring buffer pool
  /// become depleted").
  Result<std::uint32_t> acquire_for_attach();

  /// attached -> captured.  `first_cell`/`pkt_count` describe the valid
  /// range.  Returns the metadata handed to user space.
  Result<ChunkMeta> mark_captured(std::uint32_t chunk_id,
                                  std::uint32_t first_cell,
                                  std::uint32_t pkt_count);

  /// free -> captured directly: used by the partial-copy rescue path,
  /// which fills a free chunk with copied packets and captures it
  /// without ever attaching it.
  Result<ChunkMeta> capture_free_chunk(std::uint32_t pkt_count);

  /// captured -> free, with strict validation of every metadata field.
  /// kPermissionDenied on a foreign {nic_id, ring_id}; kInvalidArgument
  /// on a bad chunk_id or cell range; kInvalidArgument when the chunk is
  /// not in the captured state (double recycle).
  Status recycle(const ChunkMeta& meta);

  /// attached -> free: the driver detaches a chunk whose descriptors are
  /// no longer in the ring — a rescue donor whose cells were all copied
  /// out, or a still-attached chunk at close().  Throws on a chunk that
  /// is not attached (this is a driver-internal path, not a user one).
  void release_attached(std::uint32_t chunk_id);

  // --- fan-out share accounting ---

  /// Registers `extra` additional user-space release shares on a
  /// *captured* chunk (the pipeline's FanOut hands one chunk's metadata
  /// to several subscribers; each share is one pending release).
  /// recycle() refuses the chunk while shares remain — defense in depth
  /// against an engine bug recycling a fanned-out chunk early.
  /// kInvalidArgument on a bad chunk id or a chunk not captured.
  Status add_shares(std::uint32_t chunk_id, std::uint32_t extra);

  /// Drops `count` shares of `chunk_id` (the engine clears a chunk's
  /// remaining shares when its last reference is released, immediately
  /// before recycling it).  kInvalidArgument when fewer than `count`
  /// shares are outstanding.
  Status release_shares(std::uint32_t chunk_id, std::uint32_t count);

  /// Outstanding fan-out shares of `chunk_id`.
  [[nodiscard]] std::uint32_t extra_shares(std::uint32_t chunk_id) const;

  /// Registers (or clears, with null) the transition observer.  The
  /// observer must outlive the pool or be cleared before destruction.
  void set_observer(PoolObserver* observer) { observer_ = observer; }
  [[nodiscard]] PoolObserver* observer() const { return observer_; }

  // --- cell access ---

  [[nodiscard]] ChunkState state(std::uint32_t chunk_id) const;

  /// Current population of each state (O(R); for audits and tests).
  [[nodiscard]] ChunkStateCounts state_counts() const;

  /// Memory of one cell (the DMA target / packet bytes).
  [[nodiscard]] std::span<std::byte> cell(std::uint32_t chunk_id,
                                          std::uint32_t cell_index);
  [[nodiscard]] std::span<const std::byte> cell(std::uint32_t chunk_id,
                                                std::uint32_t cell_index) const;

  /// Driver-written per-cell packet info.
  [[nodiscard]] CellInfo& cell_info(std::uint32_t chunk_id,
                                    std::uint32_t cell_index);
  [[nodiscard]] const CellInfo& cell_info(std::uint32_t chunk_id,
                                          std::uint32_t cell_index) const;

  /// Whole-chunk accessors for the batch delivery path: one bounds
  /// check per chunk instead of two per cell, then plain indexing.
  /// Defined inline below so the per-batch hot loop can inline them.
  [[nodiscard]] std::span<std::byte> chunk_bytes(std::uint32_t chunk_id);
  [[nodiscard]] std::span<const CellInfo> chunk_cells(
      std::uint32_t chunk_id) const;

  /// Encodes (chunk, cell) into the DMA-buffer cookie and back.
  [[nodiscard]] static constexpr std::uint64_t make_cookie(
      std::uint32_t chunk_id, std::uint32_t cell_index) {
    return (static_cast<std::uint64_t>(chunk_id) << 32) | cell_index;
  }
  [[nodiscard]] static constexpr std::uint32_t cookie_chunk(std::uint64_t c) {
    return static_cast<std::uint32_t>(c >> 32);
  }
  [[nodiscard]] static constexpr std::uint32_t cookie_cell(std::uint64_t c) {
    return static_cast<std::uint32_t>(c & 0xFFFFFFFF);
  }

 private:
  static std::uint64_t next_uid();

  void check_chunk_id(std::uint32_t chunk_id) const;

  void notify(std::uint32_t chunk_id, ChunkState from, ChunkState to,
              const char* cause) {
    if (observer_) observer_->on_transition(*this, chunk_id, from, to, cause);
  }

  std::uint64_t uid_ = next_uid();
  std::uint32_t nic_id_;
  std::uint32_t ring_id_;
  std::uint32_t cells_per_chunk_;
  std::uint32_t chunk_count_;
  std::uint32_t cell_size_;
  std::uint32_t numa_node_ = 0;
  /// One contiguous allocation for all chunks: chunk c's cell i lives at
  /// offset ((c * M) + i) * cell_size — "physically contiguous memory".
  std::vector<std::byte> memory_;
  std::vector<CellInfo> cell_info_;
  std::vector<ChunkState> states_;
  std::vector<std::uint32_t> free_list_;
  /// Per-chunk fan-out share counts; nonzero only while captured.
  std::vector<std::uint32_t> extra_shares_;
  PoolObserver* observer_ = nullptr;
};

inline std::span<std::byte> RingBufferPool::chunk_bytes(
    std::uint32_t chunk_id) {
  check_chunk_id(chunk_id);
  const std::size_t stride =
      static_cast<std::size_t>(cells_per_chunk_) * cell_size_;
  return std::span<std::byte>(memory_.data() + chunk_id * stride, stride);
}

inline std::span<const CellInfo> RingBufferPool::chunk_cells(
    std::uint32_t chunk_id) const {
  check_chunk_id(chunk_id);
  return std::span<const CellInfo>(
      cell_info_.data() +
          static_cast<std::size_t>(chunk_id) * cells_per_chunk_,
      cells_per_chunk_);
}

}  // namespace wirecap::driver
