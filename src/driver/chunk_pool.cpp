#include "driver/chunk_pool.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace wirecap::driver {

std::uint64_t RingBufferPool::next_uid() {
  static std::uint64_t counter = 0;
  return ++counter;
}

RingBufferPool::RingBufferPool(std::uint32_t nic_id, std::uint32_t ring_id,
                               std::uint32_t cells_per_chunk,
                               std::uint32_t chunk_count,
                               std::uint32_t cell_size,
                               std::uint32_t numa_node)
    : nic_id_(nic_id),
      ring_id_(ring_id),
      cells_per_chunk_(cells_per_chunk),
      chunk_count_(chunk_count),
      cell_size_(cell_size),
      numa_node_(numa_node) {
  if (cells_per_chunk == 0 || chunk_count == 0 || cell_size == 0) {
    throw std::invalid_argument("RingBufferPool: M, R, cell size must be > 0");
  }
  memory_.resize(memory_bytes());
  cell_info_.resize(capacity_packets());
  states_.assign(chunk_count, ChunkState::kFree);
  extra_shares_.assign(chunk_count, 0);
  // Free list as a stack; lowest ids on top for deterministic behaviour.
  free_list_.resize(chunk_count);
  std::iota(free_list_.rbegin(), free_list_.rend(), 0u);
}

Result<std::uint32_t> RingBufferPool::acquire_for_attach() {
  if (free_list_.empty()) return StatusCode::kExhausted;
  const std::uint32_t chunk_id = free_list_.back();
  free_list_.pop_back();
  states_[chunk_id] = ChunkState::kAttached;
  notify(chunk_id, ChunkState::kFree, ChunkState::kAttached, "attach");
  return chunk_id;
}

Result<ChunkMeta> RingBufferPool::mark_captured(std::uint32_t chunk_id,
                                                std::uint32_t first_cell,
                                                std::uint32_t pkt_count) {
  if (chunk_id >= chunk_count_) return StatusCode::kInvalidArgument;
  if (states_[chunk_id] != ChunkState::kAttached) {
    return StatusCode::kInvalidArgument;
  }
  if (first_cell + pkt_count > cells_per_chunk_) {
    return StatusCode::kInvalidArgument;
  }
  states_[chunk_id] = ChunkState::kCaptured;
  notify(chunk_id, ChunkState::kAttached, ChunkState::kCaptured, "capture");
  return ChunkMeta{nic_id_, ring_id_, chunk_id, first_cell, pkt_count};
}

Result<ChunkMeta> RingBufferPool::capture_free_chunk(std::uint32_t pkt_count) {
  if (pkt_count > cells_per_chunk_) return StatusCode::kInvalidArgument;
  if (free_list_.empty()) return StatusCode::kExhausted;
  const std::uint32_t chunk_id = free_list_.back();
  free_list_.pop_back();
  states_[chunk_id] = ChunkState::kCaptured;
  notify(chunk_id, ChunkState::kFree, ChunkState::kCaptured, "rescue");
  return ChunkMeta{nic_id_, ring_id_, chunk_id, 0, pkt_count};
}

Status RingBufferPool::recycle(const ChunkMeta& meta) {
  // Strict validation: the kernel trusts nothing in user-supplied
  // metadata (§3.2.2c).
  const auto reject = [&](StatusCode code) {
    if (observer_) observer_->on_recycle_reject(*this, meta, code);
    return Status{code};
  };
  if (meta.nic_id != nic_id_ || meta.ring_id != ring_id_) {
    return reject(StatusCode::kPermissionDenied);
  }
  if (meta.chunk_id >= chunk_count_) {
    return reject(StatusCode::kInvalidArgument);
  }
  if (meta.first_cell + meta.pkt_count > cells_per_chunk_) {
    return reject(StatusCode::kInvalidArgument);
  }
  if (states_[meta.chunk_id] != ChunkState::kCaptured) {
    return reject(StatusCode::kInvalidArgument);  // double recycle / foreign
  }
  if (extra_shares_[meta.chunk_id] != 0) {
    // Fan-out subscribers still hold shares of this chunk; recycling
    // now would hand their live views' memory back to the NIC.
    return reject(StatusCode::kWouldBlock);
  }
  states_[meta.chunk_id] = ChunkState::kFree;
  free_list_.push_back(meta.chunk_id);
  notify(meta.chunk_id, ChunkState::kCaptured, ChunkState::kFree, "recycle");
  return Status::ok();
}

void RingBufferPool::release_attached(std::uint32_t chunk_id) {
  check_chunk_id(chunk_id);
  if (states_[chunk_id] != ChunkState::kAttached) {
    throw std::logic_error("RingBufferPool::release_attached: not attached");
  }
  states_[chunk_id] = ChunkState::kFree;
  free_list_.push_back(chunk_id);
  notify(chunk_id, ChunkState::kAttached, ChunkState::kFree, "release");
}

Status RingBufferPool::add_shares(std::uint32_t chunk_id,
                                  std::uint32_t extra) {
  if (chunk_id >= chunk_count_) return Status{StatusCode::kInvalidArgument};
  if (states_[chunk_id] != ChunkState::kCaptured) {
    return Status{StatusCode::kInvalidArgument};
  }
  extra_shares_[chunk_id] += extra;
  if (observer_ && extra != 0) {
    observer_->on_shares(*this, chunk_id, static_cast<std::int64_t>(extra),
                         extra_shares_[chunk_id]);
  }
  return Status::ok();
}

Status RingBufferPool::release_shares(std::uint32_t chunk_id,
                                      std::uint32_t count) {
  if (chunk_id >= chunk_count_) return Status{StatusCode::kInvalidArgument};
  if (extra_shares_[chunk_id] < count) {
    return Status{StatusCode::kInvalidArgument};
  }
  extra_shares_[chunk_id] -= count;
  if (observer_ && count != 0) {
    observer_->on_shares(*this, chunk_id, -static_cast<std::int64_t>(count),
                         extra_shares_[chunk_id]);
  }
  return Status::ok();
}

std::uint32_t RingBufferPool::extra_shares(std::uint32_t chunk_id) const {
  check_chunk_id(chunk_id);
  return extra_shares_[chunk_id];
}

ChunkState RingBufferPool::state(std::uint32_t chunk_id) const {
  check_chunk_id(chunk_id);
  return states_[chunk_id];
}

ChunkStateCounts RingBufferPool::state_counts() const {
  ChunkStateCounts counts;
  for (const ChunkState state : states_) {
    switch (state) {
      case ChunkState::kFree: ++counts.free; break;
      case ChunkState::kAttached: ++counts.attached; break;
      case ChunkState::kCaptured: ++counts.captured; break;
    }
  }
  return counts;
}

std::span<std::byte> RingBufferPool::cell(std::uint32_t chunk_id,
                                          std::uint32_t cell_index) {
  check_chunk_id(chunk_id);
  if (cell_index >= cells_per_chunk_) {
    throw std::out_of_range("RingBufferPool::cell: bad cell index");
  }
  const std::size_t offset =
      (static_cast<std::size_t>(chunk_id) * cells_per_chunk_ + cell_index) *
      cell_size_;
  return {memory_.data() + offset, cell_size_};
}

std::span<const std::byte> RingBufferPool::cell(
    std::uint32_t chunk_id, std::uint32_t cell_index) const {
  return const_cast<RingBufferPool*>(this)->cell(chunk_id, cell_index);
}

CellInfo& RingBufferPool::cell_info(std::uint32_t chunk_id,
                                    std::uint32_t cell_index) {
  check_chunk_id(chunk_id);
  if (cell_index >= cells_per_chunk_) {
    throw std::out_of_range("RingBufferPool::cell_info: bad cell index");
  }
  return cell_info_[static_cast<std::size_t>(chunk_id) * cells_per_chunk_ +
                    cell_index];
}

const CellInfo& RingBufferPool::cell_info(std::uint32_t chunk_id,
                                          std::uint32_t cell_index) const {
  return const_cast<RingBufferPool*>(this)->cell_info(chunk_id, cell_index);
}

void RingBufferPool::check_chunk_id(std::uint32_t chunk_id) const {
  if (chunk_id >= chunk_count_) {
    throw std::out_of_range("RingBufferPool: bad chunk id");
  }
}

}  // namespace wirecap::driver
