#include "driver/wirecap_driver.hpp"

#include <algorithm>
#include <stdexcept>

namespace wirecap::driver {

WirecapQueueDriver::WirecapQueueDriver(nic::MultiQueueNic& nic,
                                       std::uint32_t queue,
                                       WirecapDriverConfig config)
    : nic_(nic),
      queue_(queue),
      config_(config),
      pool_(nic.nic_id(), queue, config.cells_per_chunk, config.chunk_count,
            config.cell_size, config.numa_node) {
  if (config_.cells_per_chunk > nic.config().rx_ring_size) {
    throw std::invalid_argument(
        "WirecapQueueDriver: segment size M exceeds the ring size");
  }
  const std::uint32_t segments_in_ring =
      nic.config().rx_ring_size / config_.cells_per_chunk;
  if (config_.chunk_count <= segments_in_ring) {
    throw std::invalid_argument(
        "WirecapQueueDriver: R must exceed ring_size / M so the pool "
        "provides buffering beyond the ring itself");
  }
}

void WirecapQueueDriver::open() {
  if (open_) return;
  open_ = true;
  replenish();
}

void WirecapQueueDriver::replenish() {
  nic::RxRing& ring = nic_.rx_ring(queue_);
  const std::uint32_t m = config_.cells_per_chunk;
  while (ring.empty_slots() >= m) {
    auto acquired = pool_.acquire_for_attach();
    if (!acquired) {
      ++stats_.attach_failures;
      break;
    }
    const std::uint32_t chunk_id = acquired.value();
    for (std::uint32_t cell = 0; cell < m; ++cell) {
      const bool ok = ring.attach(nic::DmaBuffer{
          pool_.cell(chunk_id, cell),
          RingBufferPool::make_cookie(chunk_id, cell)});
      if (!ok) throw std::logic_error("WirecapQueueDriver: attach failed");
    }
    segments_.push_back(Segment{chunk_id, 0});
    // Descriptor-segment transition: a free chunk entered the ring.
    if (tracer_ && tracer_->enabled() && clock_) {
      tracer_->instant("segment.attach", "driver", clock_(), queue_, "chunk",
                       chunk_id);
    }
  }
  nic_.kick(queue_);
}

std::uint32_t WirecapQueueDriver::consume_cells(Segment& segment,
                                                std::uint32_t count) {
  nic::RxRing& ring = nic_.rx_ring(queue_);
  const std::uint32_t first = segment.consumed_cells;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto consumed = ring.consume();
    const std::uint32_t chunk =
        RingBufferPool::cookie_chunk(consumed.buffer.cookie);
    const std::uint32_t cell =
        RingBufferPool::cookie_cell(consumed.buffer.cookie);
    if (chunk != segment.chunk_id || cell != segment.consumed_cells) {
      throw std::logic_error(
          "WirecapQueueDriver: descriptor/segment order violated");
    }
    CellInfo& info = pool_.cell_info(chunk, cell);
    info.length = consumed.writeback.length;
    info.wire_length = consumed.writeback.wire_length;
    info.timestamp_ns = consumed.writeback.timestamp.count();
    info.seq = consumed.writeback.seq;
    ++segment.consumed_cells;
  }
  return first;
}

std::uint32_t WirecapQueueDriver::capture(Nanos now, std::size_t max_chunks,
                                          std::vector<ChunkMeta>& out) {
  if (!open_) return 0;
  nic::RxRing& ring = nic_.rx_ring(queue_);
  const std::uint32_t m = config_.cells_per_chunk;
  std::size_t produced = 0;

  // Zero-copy path: move every completely filled chunk.
  while (produced < max_chunks && !segments_.empty()) {
    Segment& segment = segments_.front();
    const std::uint32_t remaining = m - segment.consumed_cells;
    if (ring.filled_count() < remaining) break;
    const std::uint32_t first = consume_cells(segment, remaining);
    auto meta = pool_.mark_captured(segment.chunk_id, first, remaining);
    if (!meta) {
      throw std::logic_error("WirecapQueueDriver: mark_captured failed");
    }
    out.push_back(meta.value());
    ++stats_.chunks_captured;
    stats_.packets_captured += remaining;
    WIRECAP_TRACE(tracer_, instant("chunk.capture", "driver", now, queue_,
                                   "chunk", meta->chunk_id, "pkts", remaining));
    segments_.pop_front();
    ++produced;
    replenish();
  }
  if (produced > 0) return 0;

  // Timeout path: packets held in the ring too long are copied into a
  // free chunk, "which is moved to the user space instead".
  if (segments_.empty() || !ring.has_filled()) return 0;
  const Nanos age = now - ring.peek_writeback().timestamp;
  if (age < config_.partial_chunk_timeout) return 0;

  Segment& segment = segments_.front();
  const std::uint32_t filled = std::min(
      ring.filled_count(), m - segment.consumed_cells);
  if (filled == 0) return 0;
  auto rescue = pool_.capture_free_chunk(filled);
  if (!rescue) {
    // No free chunk to copy into; leave packets in the ring.
    ++stats_.attach_failures;
    return 0;
  }

  const std::uint32_t source_chunk = segment.chunk_id;
  const std::uint32_t source_first = consume_cells(segment, filled);
  for (std::uint32_t i = 0; i < filled; ++i) {
    const auto src = pool_.cell(source_chunk, source_first + i);
    const auto dst = pool_.cell(rescue->chunk_id, i);
    std::copy(src.begin(), src.end(), dst.begin());
    pool_.cell_info(rescue->chunk_id, i) =
        pool_.cell_info(source_chunk, source_first + i);
  }
  out.push_back(rescue.value());
  ++stats_.partial_rescues;
  stats_.packets_copied += filled;
  stats_.packets_captured += filled;
  WIRECAP_TRACE(tracer_, instant("chunk.rescue", "driver", now, queue_,
                                 "chunk", rescue->chunk_id, "copied", filled));
  // The rescue consumed ring cells: re-attach free chunks where whole
  // segments now fit and kick the NIC.  When the ring size is not a
  // multiple of M, the rescue itself is what pushes empty_slots past
  // the segment threshold — without replenishing here the free chunk
  // sits idle and the ring runs short until the next recycle happens
  // to arrive.
  replenish();
  return filled;
}

Nanos WirecapQueueDriver::chunk_arrival(const ChunkMeta& meta) const {
  if (meta.pkt_count == 0) return Nanos::zero();
  return Nanos{pool_.cell_info(meta.chunk_id, meta.first_cell).timestamp_ns};
}

Status WirecapQueueDriver::recycle(const ChunkMeta& meta) {
  const Status status = pool_.recycle(meta);
  if (status.is_ok()) {
    ++stats_.chunks_recycled;
    if (tracer_ && tracer_->enabled() && clock_) {
      tracer_->instant("chunk.recycle", "driver", clock_(), queue_, "chunk",
                       meta.chunk_id);
    }
    replenish();
  } else {
    ++stats_.recycle_rejects;
  }
  return status;
}

std::size_t WirecapQueueDriver::recycle_batch(
    const std::vector<ChunkMeta>& metas) {
  std::size_t accepted = 0;
  for (const ChunkMeta& meta : metas) {
    if (pool_.recycle(meta).is_ok()) {
      ++stats_.chunks_recycled;
      ++accepted;
      if (tracer_ && tracer_->enabled() && clock_) {
        tracer_->instant("chunk.recycle", "driver", clock_(), queue_, "chunk",
                         meta.chunk_id);
      }
    } else {
      ++stats_.recycle_rejects;
    }
  }
  // One replenish covers the whole batch: every freed chunk is visible
  // to the attach loop, without the per-chunk ring scans the singular
  // path pays.
  if (accepted > 0) replenish();
  return accepted;
}

bool WirecapQueueDriver::transmit(std::uint32_t tx_queue,
                                  const ChunkMeta& meta,
                                  std::uint32_t cell_index,
                                  std::function<void()> on_complete) {
  if (pool_.state(meta.chunk_id) != ChunkState::kCaptured) {
    throw std::invalid_argument(
        "WirecapQueueDriver::transmit: chunk not captured");
  }
  const CellInfo& info = pool_.cell_info(meta.chunk_id, cell_index);
  const auto cell = pool_.cell(meta.chunk_id, cell_index);
  nic::TxRequest request;
  request.frame = cell.first(info.length);
  request.wire_length = info.wire_length;
  request.seq = info.seq;
  request.on_complete = std::move(on_complete);
  return nic_.transmit(tx_queue, std::move(request));
}

void WirecapQueueDriver::close() {
  if (!open_) return;
  open_ = false;
  // Detach every chunk still tied to the ring and rewind the ring's
  // descriptors/cursors, so a later open() (or a reopened queue's fresh
  // driver) starts from a clean slate instead of consuming descriptors
  // whose cookies reference a dead pool.
  for (const Segment& segment : segments_) {
    pool_.release_attached(segment.chunk_id);
  }
  segments_.clear();
  nic_.rx_ring(queue_).reset();
}

void WirecapQueueDriver::set_tracer(telemetry::EventTracer* tracer,
                                    std::function<Nanos()> clock) {
  tracer_ = tracer;
  clock_ = std::move(clock);
}

}  // namespace wirecap::driver
