// The WireCAP kernel-mode driver for one receive queue (§3.2-3.3).
//
// Manages the queue's descriptor segments and ring buffer pool and
// implements the four ioctl operations of the ring-buffer-pool
// mechanism:
//
//   open    — map the pool, attach every descriptor segment with a free
//             chunk
//   capture — move filled chunks to user space by metadata only; on
//             timeout, rescue a partially filled chunk by copying its
//             packets into a free chunk
//   recycle — validate user metadata and return a chunk to the free pool
//   close   — tear down
//
// The driver also exposes the zero-copy transmit path: a captured
// packet still sitting in a pool cell is attached to a NIC transmit
// descriptor without being copied.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "driver/chunk_pool.hpp"
#include "nic/device.hpp"
#include "telemetry/tracer.hpp"

namespace wirecap::driver {

struct WirecapDriverConfig {
  /// M — descriptors per segment == cells per chunk.
  std::uint32_t cells_per_chunk = 256;
  /// R — chunks in the pool (R > ring_size / M "to provide a large ring
  /// buffer pool").
  std::uint32_t chunk_count = 100;
  std::uint32_t cell_size = 2048;
  /// Timeout after which a partially filled chunk is copied out so
  /// packets are not held in the receive ring too long.
  Nanos partial_chunk_timeout = Nanos::from_millis(1.0);
  /// NUMA node the ring buffer pool is allocated on (the node the
  /// queue's capture thread is pinned to; remote-socket penalties are
  /// charged by the engine's cost model, not by the driver).
  std::uint32_t numa_node = 0;
};

struct WirecapDriverStats {
  std::uint64_t chunks_captured = 0;     // full, zero-copy
  std::uint64_t partial_rescues = 0;     // timeout copies (chunks)
  std::uint64_t packets_copied = 0;      // packets moved by partial rescue
  std::uint64_t packets_captured = 0;    // total packets delivered upward
  std::uint64_t chunks_recycled = 0;
  std::uint64_t recycle_rejects = 0;     // failed metadata validation
  std::uint64_t attach_failures = 0;     // free list empty on replenish
};

class WirecapQueueDriver {
 public:
  WirecapQueueDriver(nic::MultiQueueNic& nic, std::uint32_t queue,
                     WirecapDriverConfig config);

  [[nodiscard]] std::uint32_t queue() const { return queue_; }
  [[nodiscard]] const RingBufferPool& pool() const { return pool_; }
  [[nodiscard]] RingBufferPool& pool() { return pool_; }
  [[nodiscard]] const WirecapDriverStats& stats() const { return stats_; }

  /// The open operation: attaches free chunks to every descriptor
  /// segment the ring has room for.
  void open();

  /// The capture operation.  Moves up to `max_chunks` *full* chunks to
  /// user space (metadata only) and appends them to `out`.  When no full
  /// chunk is available but packets older than the configured timeout
  /// sit in the ring, performs one partial-chunk rescue (copy into a
  /// free chunk).  Returns the number of packets copied (0 on the pure
  /// zero-copy path) so the caller can charge the copy cost.
  std::uint32_t capture(Nanos now, std::size_t max_chunks,
                        std::vector<ChunkMeta>& out);

  /// The recycle operation, with strict metadata validation.
  Status recycle(const ChunkMeta& meta);

  /// Batched recycle: validates and returns every chunk, replenishing
  /// the ring once at the end instead of once per chunk (the engine's
  /// poll drains its whole recycle queue through this).  Returns the
  /// number of chunks accepted; rejects count in `recycle_rejects`.
  std::size_t recycle_batch(const std::vector<ChunkMeta>& metas);

  /// Arrival time of a just-captured chunk: the NIC writeback timestamp
  /// of its first packet.  This is when the chunk's data entered the
  /// ring — the anchor for end-to-end latency accounting.
  [[nodiscard]] Nanos chunk_arrival(const ChunkMeta& meta) const;

  /// Zero-copy transmit of a captured packet residing in a pool cell.
  /// Returns false when the TX ring is full.
  bool transmit(std::uint32_t tx_queue, const ChunkMeta& meta,
                std::uint32_t cell_index, std::function<void()> on_complete);

  /// The close operation: detaches every still-attached chunk back to
  /// the free pool and resets the receive ring.  Packets sitting
  /// unconsumed in the ring are discarded.  Requires a quiesced NIC (no
  /// DMA in flight into this queue).
  void close();

  /// Hands the driver the experiment's tracer and a virtual-time source
  /// so segment attaches and chunk capture/rescue/recycle transitions
  /// show up in the event trace.  Both may be null (tracing off).
  void set_tracer(telemetry::EventTracer* tracer, std::function<Nanos()> clock);

 private:
  /// One descriptor segment currently attached to the ring.
  struct Segment {
    std::uint32_t chunk_id = 0;
    std::uint32_t consumed_cells = 0;  // delivered via partial rescue
  };

  /// Attaches free chunks while the ring has room for full segments.
  void replenish();

  /// Consumes `count` filled descriptors from the oldest segment,
  /// recording per-cell info.  Returns the cell index of the first
  /// consumed cell.
  std::uint32_t consume_cells(Segment& segment, std::uint32_t count);

  nic::MultiQueueNic& nic_;
  std::uint32_t queue_;
  WirecapDriverConfig config_;
  RingBufferPool pool_;
  std::deque<Segment> segments_;  // oldest first
  WirecapDriverStats stats_;
  bool open_ = false;
  telemetry::EventTracer* tracer_ = nullptr;
  std::function<Nanos()> clock_;  // virtual time for sites without a `now`
};

}  // namespace wirecap::driver
