#include "engines/psioe_engine.hpp"

#include <algorithm>

namespace wirecap::engines {

PsioeEngine::PsioeEngine(nic::MultiQueueNic& nic, PsioeConfig config)
    : inner_(nic, Type2Config{"PSIOE-inner", config.sync_batch, Nanos{8},
                              2048}),
      config_(config) {
  user_buffers_.resize(nic.config().num_rx_queues);
  copies_.resize(nic.config().num_rx_queues, 0);
}

void PsioeEngine::open(std::uint32_t queue, sim::SimCore& app_core) {
  inner_.open(queue, app_core);
  user_buffers_.at(queue).resize(config_.user_buffer_bytes);
}

void PsioeEngine::close(std::uint32_t queue) { inner_.close(queue); }

std::optional<CaptureView> PsioeEngine::try_next(std::uint32_t queue) {
  auto view = inner_.try_next(queue);
  if (!view) return std::nullopt;
  // Copy into the user buffer and release the ring buffer right away:
  // the application works from its own memory from here on.
  auto& staging = user_buffers_.at(queue);
  const std::size_t n = std::min(view->bytes.size(), staging.size());
  std::copy_n(view->bytes.begin(), n, staging.begin());
  ++copies_.at(queue);
  inner_.done(queue, *view);
  CaptureView out = *view;
  out.bytes = {staging.data(), n};
  out.handle = 0;
  return out;
}

void PsioeEngine::done(std::uint32_t /*queue*/, const CaptureView& /*view*/) {
  // The ring buffer was already released when the packet was copied.
}

std::size_t PsioeEngine::try_next_batch(std::uint32_t queue,
                                        std::size_t max_packets,
                                        PacketBatch& batch) {
  batch.clear();
  batch.source_ring = queue;
  auto& staging = user_buffers_.at(queue);
  const std::size_t slot_bytes = config_.user_buffer_bytes;
  if (staging.size() < max_packets * slot_bytes) {
    staging.resize(max_packets * slot_bytes);
  }
  while (batch.views.size() < max_packets) {
    auto view = inner_.try_next(queue);
    if (!view) break;
    const std::size_t offset = batch.views.size() * slot_bytes;
    const std::size_t n = std::min(view->bytes.size(), slot_bytes);
    std::copy_n(view->bytes.begin(), n,
                staging.begin() + static_cast<std::ptrdiff_t>(offset));
    ++copies_.at(queue);
    inner_.done(queue, *view);
    CaptureView out = *view;
    out.bytes = {staging.data() + offset, n};
    out.handle = 0;
    batch.views.push_back(out);
    batch.refs.push_back(BatchRef{out.handle, 1});
  }
  return batch.views.size();
}

bool PsioeEngine::forward(std::uint32_t queue, const CaptureView& view,
                          nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) {
  // The staging buffer is reused per packet, so keep the frame alive
  // for the duration of the transmit.
  auto keepalive = std::make_shared<std::vector<std::byte>>(
      view.bytes.begin(), view.bytes.end());
  ++copies_.at(queue);
  nic::TxRequest request;
  request.frame = {keepalive->data(), keepalive->size()};
  request.wire_length = view.wire_len;
  request.seq = view.seq;
  request.on_complete = [keepalive] {};
  return out_nic.transmit(tx_queue, std::move(request));
}

Nanos PsioeEngine::app_overhead_per_packet() const {
  return config_.copy_cost + inner_.app_overhead_per_packet();
}

void PsioeEngine::set_data_callback(std::uint32_t queue,
                                    std::function<void()> fn) {
  inner_.set_data_callback(queue, std::move(fn));
}

EngineQueueStats PsioeEngine::queue_stats(std::uint32_t queue) const {
  EngineQueueStats stats = inner_.queue_stats(queue);
  stats.copies += copies_.at(queue);
  return stats;
}

}  // namespace wirecap::engines
