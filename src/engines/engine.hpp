// The capture-engine interface shared by WireCAP and the baseline
// engines (PF_RING, DNA, NETMAP, PSIOE).
//
// An engine instance manages one NIC.  The application side is a
// per-queue, non-blocking read API: try_next() yields a zero-copy (or,
// for copying engines, engine-buffered) view of the next packet; the
// application finishes with done() or forwards with forward().
//
// Engines charge their internal CPU work (NAPI copies, capture-thread
// ioctls) to the appropriate simulated cores themselves; the per-packet
// *application-side* overhead an engine imposes (ring syncs, user-space
// copies) is reported via app_overhead_per_packet() and charged by the
// application actor together with its own processing cost.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "engines/packet_view.hpp"
#include "engines/tenant.hpp"
#include "nic/device.hpp"
#include "sim/core.hpp"
#include "telemetry/telemetry.hpp"

namespace wirecap::engines {

struct EngineQueueStats {
  /// Packets handed to the application.
  std::uint64_t delivered = 0;
  /// Packets captured off the wire but lost before delivery (Type-I
  /// intermediate-buffer overflow) — the paper's "packet delivery drop".
  std::uint64_t delivery_dropped = 0;
  /// Per-packet copy operations performed anywhere on the path.
  std::uint64_t copies = 0;
  /// Chunks this queue's capture thread redirected to buddies / chunks
  /// that arrived from buddies (WireCAP advanced mode only).
  std::uint64_t chunks_offloaded_out = 0;
  std::uint64_t chunks_offloaded_in = 0;
};

class CaptureEngine {
 public:
  virtual ~CaptureEngine() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Opens `queue` for capture.  The application thread that will
  /// consume this queue runs on `app_core`; engines doing kernel-context
  /// work on the application's core (NAPI) charge it there.
  virtual void open(std::uint32_t queue, sim::SimCore& app_core) = 0;

  virtual void close(std::uint32_t queue) = 0;

  /// Registers (or, for an existing `spec.name`, replaces) a tenant:
  /// one application owning a disjoint set of this NIC's queues — its
  /// buddy/peer group — plus a chunk quota and optional per-tenant
  /// policy overrides (see engines/tenant.hpp).  Queues the spec claims
  /// are released from any previous owner.  Returns the tenant's dense
  /// id.  Throws std::invalid_argument on an empty name or an empty or
  /// duplicate-carrying queue list.  The base
  /// implementation only maintains the registry; engines override to
  /// wire the group into their offload/peer machinery (and may add
  /// preconditions, e.g. WireCAP requires the queues to be open).
  virtual TenantId register_tenant(const TenantSpec& spec);

  /// Registered tenant specs, indexed by TenantId.
  [[nodiscard]] const std::vector<TenantSpec>& tenants() const {
    return tenants_;
  }

  /// The tenant owning `queue`, or kNoTenant.
  [[nodiscard]] TenantId tenant_of(std::uint32_t queue) const;

  /// Non-blocking read of the next packet of `queue`.
  virtual std::optional<CaptureView> try_next(std::uint32_t queue) = 0;

  /// The application is finished with the packet.
  virtual void done(std::uint32_t queue, const CaptureView& view) = 0;

  /// Non-blocking read of the next whole chunk of `queue` for
  /// chunk-granularity consumers.  The base implementation synthesizes a
  /// pseudo-chunk by draining up to `max_packets` try_next() views, so
  /// every engine can feed the spool; chunk-native engines (WireCAP)
  /// override it to hand over one ring-buffer-pool chunk zero-copy.
  virtual std::optional<ChunkCaptureView> try_next_chunk(
      std::uint32_t queue, std::size_t max_packets = 64);

  /// Releases every packet of a chunk obtained from try_next_chunk().
  virtual void done_chunk(std::uint32_t queue, const ChunkCaptureView& chunk);

  /// Non-blocking batch read: fills `batch` with up to `max_packets`
  /// views from `queue` and returns the number delivered (0 when the
  /// queue is empty).  `batch` is cleared first and its storage is
  /// reused across calls, so a steady-state read loop allocates
  /// nothing.  The base implementation adapts per-packet try_next() in
  /// a loop so copying baselines stay honest about their per-packet
  /// cost structure; chunk-native engines (WireCAP) override it to
  /// surface one captured chunk's worth of views metadata-only, with
  /// accounting amortized to one update per batch.  Either way
  /// `batch.refs` records the batch's original extent, so releasing is
  /// independent of later in-place compaction of `batch.views`.
  virtual std::size_t try_next_batch(std::uint32_t queue,
                                     std::size_t max_packets,
                                     PacketBatch& batch);

  /// Releases a batch obtained from try_next_batch() in one call.
  /// Settles `batch.refs` — the extent recorded at read time — so a
  /// batch whose views were compacted in place (a pipeline stage
  /// dropping packets, even down to zero) still releases every buffer
  /// exactly once.  Views released out of band (forward()) must be
  /// subtracted via PacketBatch::note_released() first.  Hand-built
  /// batches with empty refs fall back to one done() per view.
  virtual void done_batch(std::uint32_t queue, const PacketBatch& batch);

  /// True when the engine implements add_batch_shares() natively (the
  /// pipeline FanOut then lets subscribers release independently;
  /// otherwise it falls back to holding the original batch itself).
  [[nodiscard]] virtual bool supports_batch_shares() const { return false; }

  /// Grants `extra` additional release shares for every ref of `batch`:
  /// after this call the buffers behind the batch tolerate (1 + extra)
  /// full releases — one per done_batch() on the original and on each
  /// of `extra` ref-copies handed to fan-out subscribers — and recycle
  /// only on the last.  Must be called while the original batch is
  /// still unreleased.  Throws std::logic_error on engines without
  /// native support (check supports_batch_shares()).
  virtual void add_batch_shares(std::uint32_t queue, const PacketBatch& batch,
                                std::uint32_t extra);

  /// Forwards the packet out `tx_queue` of `out_nic`, releasing the
  /// underlying buffer when transmission completes (zero-copy where the
  /// engine supports it).  Implies done().  Returns false when the TX
  /// ring is full (the packet is then released unsent).
  virtual bool forward(std::uint32_t queue, const CaptureView& view,
                       nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) = 0;

  /// Per-packet cost the *application* pays to use this engine's read
  /// path (ring sync, user-space copy), in addition to its own work.
  [[nodiscard]] virtual Nanos app_overhead_per_packet() const {
    return Nanos::zero();
  }

  /// Fires whenever new data may be available on `queue` (edge
  /// trigger); the application actor uses it to wake from idle.
  virtual void set_data_callback(std::uint32_t queue,
                                 std::function<void()> fn) = 0;

  [[nodiscard]] virtual EngineQueueStats queue_stats(
      std::uint32_t queue) const = 0;

  /// Publishes this engine's metrics into `telemetry.registry` under
  /// `prefix` (e.g. "engine.wirecap_a") and stores the tracer for
  /// hot-path event emission.  The base implementation binds every
  /// EngineQueueStats field of queues [0, num_queues) as
  /// "<prefix>.q<N>.<field>"; engines override to add engine-specific
  /// gauges (pool occupancy, capture-queue depth, ...) on top.
  /// The engine must outlive the registry's last snapshot.
  virtual void bind_telemetry(telemetry::Telemetry& telemetry,
                              const std::string& prefix,
                              std::uint32_t num_queues);

  /// Sums queue_stats over all opened queues.
  [[nodiscard]] EngineQueueStats total_stats(std::uint32_t num_queues) const {
    EngineQueueStats total;
    for (std::uint32_t q = 0; q < num_queues; ++q) {
      const EngineQueueStats s = queue_stats(q);
      total.delivered += s.delivered;
      total.delivery_dropped += s.delivery_dropped;
      total.copies += s.copies;
      total.chunks_offloaded_out += s.chunks_offloaded_out;
      total.chunks_offloaded_in += s.chunks_offloaded_in;
    }
    return total;
  }

 protected:
  /// Releases `count` references of the buffers behind `handle` — the
  /// settlement primitive done_batch() applies per ref.  The base
  /// implementation synthesizes a handle-only view and loops done()
  /// (every engine's done() keys off `view.handle` alone); it only ever
  /// sees count == 1 because the base try_next_batch() mints one ref
  /// per view.  WireCAP overrides it with one chunk-refcount decrement
  /// of `count`.
  virtual void release_ref(std::uint32_t queue, std::uint64_t handle,
                           std::uint32_t count);

  /// Set by bind_telemetry; null (the default) keeps every trace site at
  /// its single-branch disabled cost.
  telemetry::EventTracer* tracer_ = nullptr;

  /// Tenant registry maintained by the base register_tenant(); indexed
  /// by TenantId.  Disjointness invariant: no queue appears in more
  /// than one spec.
  std::vector<TenantSpec> tenants_;
};

}  // namespace wirecap::engines
