// Engine factory + registry: one place that knows how to build every
// capture engine by name, so benches, examples, the difftest
// crosscheck and the harness stop copy-pasting per-engine construction
// blocks.
//
// Built-in names (registered by wirecap_core, which links all engine
// layers): "PF_RING", "DNA", "NETMAP", "PSIOE", "DPDK",
// "DPDK+app-offload", "WireCAP-B", "WireCAP-A".  Lookup is exact.
// register_engine() adds (or replaces) an entry, e.g. for an ablation
// variant a bench wants to sweep.
//
// The definitions live in src/core/engine_factory.cpp: the registry
// must be able to construct core::WirecapEngine, which the engines
// layer cannot link.  Every consumer of the factory already links
// wirecap_core.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/handoff.hpp"
#include "engines/engine.hpp"
#include "sim/costs.hpp"

namespace wirecap::engines {

/// Engine-construction knobs shared across engine kinds.  Fields an
/// engine does not use are ignored (a PF_RING build reads only
/// `costs`); WireCAP reads M/R and — for "WireCAP-A" — T and the
/// offload policy.  The DPDK mempool is matched to R*M, keeping the
/// tab02-style comparisons honest.
struct EngineConfig {
  sim::CostModel costs{};
  /// M — cells per chunk (WireCAP) / mempool factor (DPDK).
  std::uint32_t cells_per_chunk = 256;
  /// R — chunks per ring buffer pool.
  std::uint32_t chunk_count = 100;
  /// T — offloading threshold ("WireCAP-A" / "DPDK+app-offload" only).
  double offload_threshold = 0.6;
  /// Offload target selection (the paper's policy is least-busy; the
  /// others are ablations).  Enum, not a string: argv is converted once
  /// at the CLI boundary via parse_offload_policy() — see
  /// common/handoff.hpp — which throws listing the allowed set.
  OffloadPolicy offload_policy = OffloadPolicy::kLeastBusy;
  /// Capture-queue handoff: kLockFree (per-queue SPSC ring + steal
  /// inbox, non-blocking dispatch) or kMutex (MpmcQueue work-queue
  /// pair — the blocking baseline and the §5e shared-queue paradigm).
  /// CLI strings go through parse_handoff_mode().
  HandoffMode handoff = HandoffMode::kLockFree;
  /// NUMA node of the NIC's DMA target (two-socket capture boxes).
  std::uint32_t nic_numa_node = 0;
  /// Per-queue NUMA placement of capture threads + pools; empty keeps
  /// every queue on nic_numa_node.  WireCAP-only (other engines ignore
  /// placement; the paper's testbed is single-socket).
  std::vector<std::uint32_t> queue_numa_node;
};

using EngineFactoryFn = std::function<std::unique_ptr<CaptureEngine>(
    nic::MultiQueueNic&, const EngineConfig&)>;

/// Builds the engine registered under `name` over `nic` (the scheduler
/// comes from nic.scheduler()).  Throws std::invalid_argument for an
/// unknown name — the message lists the registered names.
[[nodiscard]] std::unique_ptr<CaptureEngine> make_engine(
    std::string_view name, nic::MultiQueueNic& nic,
    const EngineConfig& config = {});

/// Registers (or replaces) a factory under `name`.
void register_engine(std::string name, EngineFactoryFn factory);

/// Registered names, sorted — the canonical engine list for matrix
/// benches and crosschecks.
[[nodiscard]] std::vector<std::string> registered_engines();

}  // namespace wirecap::engines
