#include "engines/type2_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace wirecap::engines {

Type2Engine::Type2Engine(nic::MultiQueueNic& nic, Type2Config config)
    : nic_(nic), config_(std::move(config)) {
  if (config_.sync_batch == 0) {
    throw std::invalid_argument("Type2Engine: sync_batch must be >= 1");
  }
  queues_.resize(nic_.config().num_rx_queues);
}

std::span<std::byte> Type2Engine::cell(QueueState& qs, std::uint64_t index) {
  return {qs.cells.data() + index * config_.cell_size, config_.cell_size};
}

void Type2Engine::open(std::uint32_t queue, sim::SimCore& /*app_core*/) {
  QueueState& qs = queues_.at(queue);
  if (qs.open) return;
  qs.open = true;
  const std::uint32_t ring_size = nic_.config().rx_ring_size;
  qs.cells.resize(static_cast<std::size_t>(ring_size) * config_.cell_size);
  nic::RxRing& ring = nic_.rx_ring(queue);
  for (std::uint32_t i = 0; i < ring_size; ++i) {
    ring.attach(nic::DmaBuffer{cell(qs, i), i});
  }
  nic_.kick(queue);
  nic_.set_rx_interrupt(queue, [this, queue] {
    QueueState& state = queues_[queue];
    if (state.data_callback) state.data_callback();
  });
}

void Type2Engine::close(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  qs.open = false;
  qs.data_callback = nullptr;
  nic_.set_rx_interrupt(queue, nullptr);
}

std::optional<CaptureView> Type2Engine::try_next(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  nic::RxRing& ring = nic_.rx_ring(queue);
  if (!qs.open || !ring.has_filled()) {
    // The blocked application's poll()/NIOCRXSYNC reclaims whatever it
    // has released so far.
    sync(queue);
    return std::nullopt;
  }
  const auto consumed = ring.consume();
  CaptureView view;
  view.bytes = consumed.buffer.data.first(consumed.writeback.length);
  view.wire_len = consumed.writeback.wire_length;
  view.timestamp = consumed.writeback.timestamp;
  view.seq = consumed.writeback.seq;
  view.handle = consumed.buffer.cookie;
  ++qs.stats.delivered;
  return view;
}

void Type2Engine::release(std::uint32_t queue, std::uint64_t cookie) {
  QueueState& qs = queues_.at(queue);
  qs.released.push_back(cookie);
  if (qs.released.size() >= config_.sync_batch) sync(queue);
}

void Type2Engine::sync(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  if (qs.released.empty()) return;
  nic::RxRing& ring = nic_.rx_ring(queue);
  for (const std::uint64_t cookie : qs.released) {
    if (!ring.attach(nic::DmaBuffer{cell(qs, cookie), cookie})) {
      throw std::logic_error("Type2Engine: ring refused re-attach");
    }
  }
  qs.released.clear();
  nic_.kick(queue);
}

void Type2Engine::done(std::uint32_t queue, const CaptureView& view) {
  release(queue, view.handle);
}

bool Type2Engine::forward(std::uint32_t queue, const CaptureView& view,
                          nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) {
  // Zero-copy forward: the ring buffer stays out of the RX ring until
  // the frame has left the TX port.
  nic::TxRequest request;
  request.frame = view.bytes;
  request.wire_length = view.wire_len;
  request.seq = view.seq;
  request.on_complete = [this, queue, cookie = view.handle] {
    release(queue, cookie);
  };
  if (!out_nic.transmit(tx_queue, std::move(request))) {
    release(queue, view.handle);  // TX ring full: drop, reclaim buffer
    return false;
  }
  return true;
}

void Type2Engine::set_data_callback(std::uint32_t queue,
                                    std::function<void()> fn) {
  queues_.at(queue).data_callback = std::move(fn);
}

EngineQueueStats Type2Engine::queue_stats(std::uint32_t queue) const {
  return queues_.at(queue).stats;
}

void Type2Engine::bind_telemetry(telemetry::Telemetry& telemetry,
                                 const std::string& prefix,
                                 std::uint32_t num_queues) {
  CaptureEngine::bind_telemetry(telemetry, prefix, num_queues);
  for (std::uint32_t q = 0; q < num_queues && q < queues_.size(); ++q) {
    telemetry.registry.bind_gauge(
        prefix + ".q" + std::to_string(q) + ".released.pending",
        [this, q] { return static_cast<double>(queues_[q].released.size()); });
  }
}

}  // namespace wirecap::engines
