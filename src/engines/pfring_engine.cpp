#include "engines/pfring_engine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace wirecap::engines {

PfRingEngine::PfRingEngine(sim::Scheduler& scheduler, nic::MultiQueueNic& nic,
                           PfRingConfig config)
    : scheduler_(scheduler), nic_(nic), config_(config) {
  if (config_.pf_ring_slots == 0) {
    throw std::invalid_argument("PfRingEngine: pf_ring needs slots");
  }
  queues_.resize(nic_.config().num_rx_queues);
}

std::span<std::byte> PfRingEngine::cell(QueueState& qs, std::uint64_t index) {
  return {qs.cells.data() + index * config_.cell_size, config_.cell_size};
}

void PfRingEngine::open(std::uint32_t queue, sim::SimCore& app_core) {
  QueueState& qs = queues_.at(queue);
  if (qs.open) return;
  qs.open = true;
  qs.app_core = &app_core;
  const std::uint32_t ring_size = nic_.config().rx_ring_size;
  qs.cells.resize(static_cast<std::size_t>(ring_size) * config_.cell_size);
  qs.slots.resize(config_.pf_ring_slots);
  for (auto& slot : qs.slots) slot.data.resize(config_.slot_bytes);

  nic::RxRing& ring = nic_.rx_ring(queue);
  for (std::uint32_t i = 0; i < ring_size; ++i) {
    ring.attach(nic::DmaBuffer{cell(qs, i), i});
  }
  nic_.kick(queue);
  // The RX interrupt arms NAPI polling on the application's core.
  nic_.set_rx_interrupt(queue, [this, queue] { schedule_napi(queue); });
}

void PfRingEngine::close(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  qs.open = false;
  qs.data_callback = nullptr;
  nic_.set_rx_interrupt(queue, nullptr);
}

void PfRingEngine::schedule_napi(std::uint32_t queue) {
  QueueState& qs = queues_[queue];
  if (qs.napi_active || !qs.open) return;
  qs.napi_active = true;
  scheduler_.schedule_after(config_.napi_wakeup_delay,
                            [this, queue] { napi_step(queue); });
}

void PfRingEngine::napi_step(std::uint32_t queue) {
  QueueState& qs = queues_[queue];
  if (!qs.open) {
    qs.napi_active = false;
    return;
  }
  nic::RxRing& ring = nic_.rx_ring(queue);
  if (!ring.has_filled()) {
    // Ring drained: leave polling mode; the next interrupt re-arms.
    qs.napi_active = false;
    return;
  }
  // One packet's worth of softirq work at kernel priority on the app
  // core — this is what preempts the application under load (receive
  // livelock).
  qs.app_core->submit(sim::WorkPriority::kKernel,
                      config_.kernel_cost_per_packet, [this, queue] {
    QueueState& state = queues_[queue];
    if (!state.open) {
      state.napi_active = false;
      return;
    }
    nic::RxRing& r = nic_.rx_ring(queue);
    if (r.has_filled()) {
      const auto consumed = r.consume();
      if (state.count >= state.slots.size()) {
        // pf_ring overflow: captured off the wire, lost before the
        // application — a packet delivery drop.
        ++state.stats.delivery_dropped;
      } else {
        const std::uint32_t tail = static_cast<std::uint32_t>(
            (state.head + state.count) % state.slots.size());
        PfSlot& slot = state.slots[tail];
        const std::size_t n = std::min<std::size_t>(
            consumed.writeback.length, slot.data.size());
        std::copy_n(consumed.buffer.data.begin(), n, slot.data.begin());
        slot.length = static_cast<std::uint32_t>(n);
        slot.wire_length = consumed.writeback.wire_length;
        slot.timestamp = consumed.writeback.timestamp;
        slot.seq = consumed.writeback.seq;
        ++state.count;
        ++state.stats.copies;
        if (state.data_callback) state.data_callback();
      }
      // Refill the descriptor with the same 1-to-1 mapped buffer.
      r.attach(nic::DmaBuffer{cell(state, consumed.buffer.cookie),
                              consumed.buffer.cookie});
      nic_.kick(queue);
    }
    napi_step(queue);
  });
}

std::optional<CaptureView> PfRingEngine::try_next(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  if (!qs.open || qs.read_ahead >= qs.count) return std::nullopt;
  const std::uint32_t index = static_cast<std::uint32_t>(
      (qs.head + qs.read_ahead) % qs.slots.size());
  PfSlot& slot = qs.slots[index];
  CaptureView view;
  view.bytes = {slot.data.data(), slot.length};
  view.wire_len = slot.wire_length;
  view.timestamp = slot.timestamp;
  view.seq = slot.seq;
  view.handle = index;
  ++qs.read_ahead;
  ++qs.stats.delivered;
  return view;
}

void PfRingEngine::done(std::uint32_t queue, const CaptureView& view) {
  QueueState& qs = queues_.at(queue);
  const std::uint32_t index = static_cast<std::uint32_t>(view.handle);
  // The slot must be inside the read-ahead window and not yet released.
  const std::uint32_t offset = static_cast<std::uint32_t>(
      (index + qs.slots.size() - qs.head) % qs.slots.size());
  if (offset >= qs.read_ahead || qs.slots[index].released) {
    throw std::logic_error("PfRingEngine::done: release outside read window");
  }
  qs.slots[index].released = true;
  // Reclaim in ring order: the head only advances over released slots,
  // so an out-of-order release (batch forwarding) is deferred, not lost.
  while (qs.read_ahead > 0 && qs.slots[qs.head].released) {
    qs.slots[qs.head].released = false;
    qs.head = static_cast<std::uint32_t>((qs.head + 1) % qs.slots.size());
    --qs.count;
    --qs.read_ahead;
  }
}

bool PfRingEngine::forward(std::uint32_t queue, const CaptureView& view,
                           nic::MultiQueueNic& out_nic,
                           std::uint32_t tx_queue) {
  // The pf_ring slot is recycled as soon as done() runs, so forwarding
  // from a Type-I engine needs one more copy to keep the frame alive
  // until transmission completes.
  QueueState& qs = queues_.at(queue);
  auto keepalive = std::make_shared<std::vector<std::byte>>(
      view.bytes.begin(), view.bytes.end());
  ++qs.stats.copies;
  nic::TxRequest request;
  request.frame = {keepalive->data(), keepalive->size()};
  request.wire_length = view.wire_len;
  request.seq = view.seq;
  request.on_complete = [keepalive] {};
  const bool ok = out_nic.transmit(tx_queue, std::move(request));
  done(queue, view);
  return ok;
}

void PfRingEngine::set_data_callback(std::uint32_t queue,
                                     std::function<void()> fn) {
  queues_.at(queue).data_callback = std::move(fn);
}

EngineQueueStats PfRingEngine::queue_stats(std::uint32_t queue) const {
  return queues_.at(queue).stats;
}

void PfRingEngine::bind_telemetry(telemetry::Telemetry& telemetry,
                                  const std::string& prefix,
                                  std::uint32_t num_queues) {
  CaptureEngine::bind_telemetry(telemetry, prefix, num_queues);
  for (std::uint32_t q = 0; q < num_queues && q < queues_.size(); ++q) {
    const std::string qp = prefix + ".q" + std::to_string(q) + ".";
    telemetry.registry.bind_gauge(qp + "pf_ring.depth", [this, q] {
      return static_cast<double>(queues_[q].count);
    });
    telemetry.registry.bind_gauge(qp + "pf_ring.slots", [this] {
      return static_cast<double>(config_.pf_ring_slots);
    });
  }
}

}  // namespace wirecap::engines
