#include "engines/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace wirecap::engines {

TenantId CaptureEngine::register_tenant(const TenantSpec& spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("register_tenant: tenant name is empty");
  }
  if (spec.queues.empty()) {
    throw std::invalid_argument("register_tenant: tenant \"" + spec.name +
                                "\" owns no queues");
  }
  std::vector<std::uint32_t> sorted = spec.queues;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("register_tenant: tenant \"" + spec.name +
                                "\" lists a queue twice");
  }

  // Upsert by name.
  TenantId id = kNoTenant;
  for (TenantId i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].name == spec.name) {
      id = i;
      break;
    }
  }
  if (id == kNoTenant) {
    id = static_cast<TenantId>(tenants_.size());
    tenants_.emplace_back();
  }

  // Exclusive ownership: queues the new spec claims are released from
  // their previous owner, keeping every pair of tenants disjoint.
  for (TenantId i = 0; i < tenants_.size(); ++i) {
    if (i == id) continue;
    auto& owned = tenants_[i].queues;
    owned.erase(std::remove_if(owned.begin(), owned.end(),
                               [&spec](std::uint32_t q) {
                                 return std::find(spec.queues.begin(),
                                                  spec.queues.end(),
                                                  q) != spec.queues.end();
                               }),
                owned.end());
  }
  tenants_[id] = spec;
  return id;
}

TenantId CaptureEngine::tenant_of(std::uint32_t queue) const {
  for (TenantId i = 0; i < tenants_.size(); ++i) {
    const auto& owned = tenants_[i].queues;
    if (std::find(owned.begin(), owned.end(), queue) != owned.end()) return i;
  }
  return kNoTenant;
}

std::optional<ChunkCaptureView> CaptureEngine::try_next_chunk(
    std::uint32_t queue, std::size_t max_packets) {
  ChunkCaptureView chunk;
  chunk.source_ring = queue;
  while (chunk.packets.size() < max_packets) {
    auto view = try_next(queue);
    if (!view) break;
    chunk.packets.push_back(*view);
  }
  if (chunk.packets.empty()) return std::nullopt;
  return chunk;
}

void CaptureEngine::done_chunk(std::uint32_t queue,
                               const ChunkCaptureView& chunk) {
  for (const CaptureView& view : chunk.packets) done(queue, view);
}

std::size_t CaptureEngine::try_next_batch(std::uint32_t queue,
                                          std::size_t max_packets,
                                          PacketBatch& batch) {
  batch.clear();
  batch.source_ring = queue;
  while (batch.views.size() < max_packets) {
    auto view = try_next(queue);
    if (!view) break;
    batch.views.push_back(*view);
    batch.refs.push_back(BatchRef{view->handle, 1});
  }
  return batch.views.size();
}

void CaptureEngine::done_batch(std::uint32_t queue, const PacketBatch& batch) {
  if (!batch.refs.empty()) {
    for (const BatchRef& ref : batch.refs) {
      if (ref.packets > 0) release_ref(queue, ref.handle, ref.packets);
    }
    return;
  }
  for (const CaptureView& view : batch.views) done(queue, view);
}

void CaptureEngine::add_batch_shares(std::uint32_t /*queue*/,
                                     const PacketBatch& /*batch*/,
                                     std::uint32_t /*extra*/) {
  throw std::logic_error(
      "CaptureEngine::add_batch_shares: engine has no native share support");
}

void CaptureEngine::release_ref(std::uint32_t queue, std::uint64_t handle,
                                std::uint32_t count) {
  CaptureView view;
  view.handle = handle;
  for (std::uint32_t i = 0; i < count; ++i) done(queue, view);
}

void CaptureEngine::bind_telemetry(telemetry::Telemetry& telemetry,
                                   const std::string& prefix,
                                   std::uint32_t num_queues) {
  tracer_ = &telemetry.tracer;
  telemetry::MetricRegistry& registry = telemetry.registry;
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    const std::string qp = prefix + ".q" + std::to_string(q) + ".";
    registry.bind_counter(qp + "delivered",
                          [this, q] { return queue_stats(q).delivered; });
    registry.bind_counter(qp + "delivery_dropped", [this, q] {
      return queue_stats(q).delivery_dropped;
    });
    registry.bind_counter(qp + "copies",
                          [this, q] { return queue_stats(q).copies; });
    registry.bind_counter(qp + "chunks_offloaded_out", [this, q] {
      return queue_stats(q).chunks_offloaded_out;
    });
    registry.bind_counter(qp + "chunks_offloaded_in", [this, q] {
      return queue_stats(q).chunks_offloaded_in;
    });
  }
}

}  // namespace wirecap::engines
