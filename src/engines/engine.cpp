#include "engines/engine.hpp"

namespace wirecap::engines {

void CaptureEngine::bind_telemetry(telemetry::Telemetry& telemetry,
                                   const std::string& prefix,
                                   std::uint32_t num_queues) {
  tracer_ = &telemetry.tracer;
  telemetry::MetricRegistry& registry = telemetry.registry;
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    const std::string qp = prefix + ".q" + std::to_string(q) + ".";
    registry.bind_counter(qp + "delivered",
                          [this, q] { return queue_stats(q).delivered; });
    registry.bind_counter(qp + "delivery_dropped", [this, q] {
      return queue_stats(q).delivery_dropped;
    });
    registry.bind_counter(qp + "copies",
                          [this, q] { return queue_stats(q).copies; });
    registry.bind_counter(qp + "chunks_offloaded_out", [this, q] {
      return queue_stats(q).chunks_offloaded_out;
    });
    registry.bind_counter(qp + "chunks_offloaded_in", [this, q] {
      return queue_stats(q).chunks_offloaded_in;
    });
  }
}

}  // namespace wirecap::engines
