// Type-II packet capture engines: DNA and NETMAP (§2.1).
//
// "DNA and NETMAP expose shadow copies of receive rings to user-space
// applications.  The ring buffers ... not only are used to receive
// packets but are also employed as data capture buffer."  Delivery is
// zero-copy, but a received packet occupies its ring buffer (and its
// receive descriptor) until the application consumes it and the ring is
// re-synced — so buffering is limited to the ring size, the deficiency
// Table 2 records.
//
// The two engines share the architecture and differ in their sync
// discipline: DNA's per-packet release returns descriptors to the NIC
// immediately, while NETMAP batches descriptor reclamation in its
// NIOC*SYNC ioctl, holding more of the ring back under pressure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engines/engine.hpp"

namespace wirecap::engines {

struct Type2Config {
  std::string name = "DNA";
  /// Released buffers are re-attached to the ring once this many are
  /// pending (1 = per-packet, DNA; larger = batched sync, NETMAP).  A
  /// sync also happens whenever the application finds the queue empty.
  std::uint32_t sync_batch = 1;
  /// Per-packet application-side cost of the sync path.
  Nanos sync_cost = Nanos{8};
  std::uint32_t cell_size = 2048;
};

class Type2Engine final : public CaptureEngine {
 public:
  Type2Engine(nic::MultiQueueNic& nic, Type2Config config);

  [[nodiscard]] std::string_view name() const override { return config_.name; }

  void open(std::uint32_t queue, sim::SimCore& app_core) override;
  void close(std::uint32_t queue) override;
  std::optional<CaptureView> try_next(std::uint32_t queue) override;
  void done(std::uint32_t queue, const CaptureView& view) override;
  bool forward(std::uint32_t queue, const CaptureView& view,
               nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) override;
  [[nodiscard]] Nanos app_overhead_per_packet() const override {
    return config_.sync_cost;
  }
  void set_data_callback(std::uint32_t queue,
                         std::function<void()> fn) override;
  [[nodiscard]] EngineQueueStats queue_stats(
      std::uint32_t queue) const override;
  /// Base metrics plus the released-but-unsynced descriptor backlog
  /// (the batched-sync pressure NETMAP exhibits under load).
  void bind_telemetry(telemetry::Telemetry& telemetry,
                      const std::string& prefix,
                      std::uint32_t num_queues) override;

 private:
  struct QueueState {
    bool open = false;
    /// One cell per ring descriptor, 1-to-1 mapped.
    std::vector<std::byte> cells;
    /// Cookies (cell indices) released by the app, awaiting sync.
    std::vector<std::uint64_t> released;
    std::function<void()> data_callback;
    EngineQueueStats stats;
  };

  [[nodiscard]] std::span<std::byte> cell(QueueState& qs, std::uint64_t index);
  void sync(std::uint32_t queue);
  void release(std::uint32_t queue, std::uint64_t cookie);

  nic::MultiQueueNic& nic_;
  Type2Config config_;
  std::vector<QueueState> queues_;
};

}  // namespace wirecap::engines
