// Application-side packet views and the batch container of the
// batch-granularity read path.
//
// Kept free of NIC/simulation dependencies so low-level consumers (the
// BPF batch executor, the store) can include it without pulling in the
// whole engine layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/units.hpp"

namespace wirecap::engines {

/// A captured packet as seen by the application.  `bytes` is writable:
/// middlebox applications may modify packets in flight before
/// forwarding.
struct CaptureView {
  std::span<std::byte> bytes{};
  std::uint32_t wire_len = 0;
  Nanos timestamp{};
  std::uint64_t seq = 0;
  std::uint64_t handle = 0;  // engine-internal
};

/// A whole captured chunk delivered to a chunk-granularity consumer
/// (the capture-to-disk spool, src/store).  `packets` are zero-copy
/// views into the chunk's cells, valid until done_chunk(); the chunk
/// body is never copied — this mirrors the paper's metadata-only
/// capture handoff at the application boundary.
struct ChunkCaptureView {
  std::vector<CaptureView> packets;
  /// Receive queue whose pool owns the cells (with WireCAP offloading
  /// this can differ from the queue the chunk was read from).  Consumers
  /// holding chunks across a close() of this ring must drop them first.
  std::uint32_t source_ring = 0;
};

/// One release obligation of a batch: `packets` pending releases of the
/// buffers behind `handle`.  try_next_batch() records the batch's
/// original extent here — one ref covering the whole chunk run for
/// chunk-native engines (WireCAP), one ref per view for the per-packet
/// baselines — and done_batch() settles the refs, not the views.  That
/// makes in-place compaction of `views` (a pipeline stage dropping
/// packets, even all of them) leak-free by construction: removing a
/// view never loses its release.
struct BatchRef {
  std::uint64_t handle = 0;
  std::uint32_t packets = 0;
};

/// One batch of captured packets on the batch-granularity read path
/// (CaptureEngine::try_next_batch / done_batch).  The caller owns the
/// storage and reuses it across calls, so a steady-state read loop
/// performs no per-batch allocation.  For chunk-native engines
/// (WireCAP) a batch is (up to `max_packets` of) one ring-buffer-pool
/// chunk: the views alias the chunk's cells, metadata-only, and stay
/// valid until done_batch().
struct PacketBatch {
  std::vector<CaptureView> views;
  /// The release obligations try_next_batch() minted for this batch.
  /// `views` may be compacted freely without touching `refs`; a view
  /// released out of band (forward(), inject bookkeeping) must be
  /// subtracted via note_released() so done_batch() does not release it
  /// a second time.
  std::vector<BatchRef> refs;
  /// Receive queue whose pool owns the cells (see ChunkCaptureView).
  std::uint32_t source_ring = 0;

  [[nodiscard]] std::size_t size() const { return views.size(); }
  [[nodiscard]] bool empty() const { return views.empty(); }
  void clear() {
    views.clear();
    refs.clear();
    source_ring = 0;
  }

  /// Total releases done_batch() still owes.
  [[nodiscard]] std::uint64_t pending_releases() const {
    std::uint64_t total = 0;
    for (const BatchRef& ref : refs) total += ref.packets;
    return total;
  }

  /// Records that the view behind `handle` was already released through
  /// another channel (forward(), an individual done()).  Matches the
  /// ref minted for exactly this handle first; a batch whose single ref
  /// covers a whole chunk run (WireCAP) accepts any of its cells'
  /// handles.  Throws when no ref has releases left — the caller
  /// double-released.
  void note_released(std::uint64_t handle) {
    for (BatchRef& ref : refs) {
      if (ref.handle == handle && ref.packets > 0) {
        --ref.packets;
        return;
      }
    }
    if (refs.size() == 1 && refs.front().packets > 0) {
      --refs.front().packets;
      return;
    }
    throw std::logic_error(
        "PacketBatch::note_released: no ref covers this view");
  }

  [[nodiscard]] auto begin() const { return views.begin(); }
  [[nodiscard]] auto end() const { return views.end(); }
};

}  // namespace wirecap::engines
