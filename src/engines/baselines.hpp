// Canonical configurations of the baseline engines, calibrated to the
// paper's testbed (see sim/costs.hpp for the calibration anchors).
#pragma once

#include "engines/pfring_engine.hpp"
#include "engines/psioe_engine.hpp"
#include "engines/type2_engine.hpp"

namespace wirecap::engines {

/// DNA: per-packet descriptor release — descriptors return to the NIC
/// immediately after the application consumes a packet.
[[nodiscard]] inline Type2Config dna_config() {
  Type2Config config;
  config.name = "DNA";
  config.sync_batch = 1;
  config.sync_cost = Nanos{6};
  return config;
}

/// NETMAP: descriptors are reclaimed in batched NIOCRXSYNC calls, so
/// under pressure more of the ring is held back than with DNA.
[[nodiscard]] inline Type2Config netmap_config() {
  Type2Config config;
  config.name = "NETMAP";
  config.sync_batch = 512;
  config.sync_cost = Nanos{9};
  return config;
}

}  // namespace wirecap::engines
