// Type-I packet capture engine: PF_RING (§2.1).
//
// Ring buffers are 1-to-1 mapped to descriptors and refilled with the
// same buffer after the kernel copies each packet into an intermediate
// per-queue buffer (pf_ring), which is memory-mapped into the
// application.  Two structural consequences the paper measures:
//
//   * at least one copy per packet, performed in NAPI (softirq) context
//     *on the application's core* at kernel priority — at high packet
//     rates this starves the application: the receive-livelock problem;
//   * when the application cannot keep pace, the pf_ring buffer
//     overflows and packets are lost *after* capture: packet delivery
//     drops.
#pragma once

#include <cstdint>
#include <vector>

#include "engines/engine.hpp"
#include "sim/costs.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::engines {

struct PfRingConfig {
  /// Slots in the pf_ring intermediate buffer (the paper sets 10,240).
  std::uint32_t pf_ring_slots = 10240;
  /// Bytes stored per slot (snap length; headers are what applications
  /// filter on).
  std::uint32_t slot_bytes = 256;
  std::uint32_t cell_size = 2048;
  /// Per-packet kernel work (copy + softirq overhead), charged at
  /// kernel priority on the application's core.
  Nanos kernel_cost_per_packet = Nanos{1800};
  /// Interrupt-to-poll latency when NAPI is re-armed.
  Nanos napi_wakeup_delay = Nanos::from_micros(60);
};

class PfRingEngine final : public CaptureEngine {
 public:
  PfRingEngine(sim::Scheduler& scheduler, nic::MultiQueueNic& nic,
               PfRingConfig config);

  [[nodiscard]] std::string_view name() const override { return "PF_RING"; }

  void open(std::uint32_t queue, sim::SimCore& app_core) override;
  void close(std::uint32_t queue) override;
  std::optional<CaptureView> try_next(std::uint32_t queue) override;
  void done(std::uint32_t queue, const CaptureView& view) override;
  bool forward(std::uint32_t queue, const CaptureView& view,
               nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) override;
  void set_data_callback(std::uint32_t queue,
                         std::function<void()> fn) override;
  [[nodiscard]] EngineQueueStats queue_stats(
      std::uint32_t queue) const override;
  /// Base metrics plus the pf_ring intermediate-buffer occupancy — the
  /// Type-I delivery-drop signal (Table 1's 56.8%).
  void bind_telemetry(telemetry::Telemetry& telemetry,
                      const std::string& prefix,
                      std::uint32_t num_queues) override;

 private:
  struct PfSlot {
    std::vector<std::byte> data;
    std::uint32_t length = 0;
    std::uint32_t wire_length = 0;
    Nanos timestamp{};
    std::uint64_t seq = 0;
    bool released = false;  // read and done(), head not yet past it
  };

  struct QueueState {
    bool open = false;
    sim::SimCore* app_core = nullptr;
    std::vector<std::byte> cells;  // 1-to-1 ring buffers
    // pf_ring circular buffer.
    std::vector<PfSlot> slots;
    std::uint32_t head = 0;        // oldest slot not yet released
    std::uint32_t count = 0;       // occupied slots
    /// Slots handed to the application (batch read-ahead) but not yet
    /// released; they occupy [head, head + read_ahead).  Slots stay
    /// occupied — and the pf_ring can still overflow past them — until
    /// done(), exactly as if the app were mid-way through its mmap'd
    /// window.
    std::uint32_t read_ahead = 0;
    bool napi_active = false;
    std::function<void()> data_callback;
    EngineQueueStats stats;
  };

  [[nodiscard]] std::span<std::byte> cell(QueueState& qs, std::uint64_t index);
  void schedule_napi(std::uint32_t queue);
  void napi_step(std::uint32_t queue);

  sim::Scheduler& scheduler_;
  nic::MultiQueueNic& nic_;
  PfRingConfig config_;
  std::vector<QueueState> queues_;
};

}  // namespace wirecap::engines
