// The PacketShader I/O engine (PSIOE) model (§6).
//
// PSIOE is structurally a Type-II engine — ring buffers are the only
// kernel-side buffering — but "uses a user-space thread, instead of
// Linux NAPI polling, to copy packets from receive ring buffers to a
// consecutive user-level buffer".  The copy is charged to the
// application (user priority) and counted; buffering stays limited to
// the ring, which is why PSIOE "is not suitable for a heavy-load
// application" (Table 2).
#pragma once

#include <memory>

#include "engines/type2_engine.hpp"

namespace wirecap::engines {

struct PsioeConfig {
  std::uint32_t sync_batch = 64;       // batched descriptor reclamation
  Nanos copy_cost = Nanos{95};         // per-packet user-space copy
  std::uint32_t user_buffer_bytes = 2048;
};

class PsioeEngine final : public CaptureEngine {
 public:
  PsioeEngine(nic::MultiQueueNic& nic, PsioeConfig config);

  [[nodiscard]] std::string_view name() const override { return "PSIOE"; }

  void open(std::uint32_t queue, sim::SimCore& app_core) override;
  void close(std::uint32_t queue) override;
  std::optional<CaptureView> try_next(std::uint32_t queue) override;
  void done(std::uint32_t queue, const CaptureView& view) override;
  /// PSIOE copies bursts "to a consecutive user-level buffer"
  /// (PacketShader's chunk): the batch read carves the staging buffer
  /// into one user_buffer_bytes slot per packet so every view of the
  /// batch has distinct storage (the base adapter would alias them all
  /// to the single per-packet slot).  Views are valid until the next
  /// batch is pulled; done()/done_batch() remain no-ops because the
  /// ring buffers were released at copy time.
  std::size_t try_next_batch(std::uint32_t queue, std::size_t max_packets,
                             PacketBatch& batch) override;
  bool forward(std::uint32_t queue, const CaptureView& view,
               nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) override;
  [[nodiscard]] Nanos app_overhead_per_packet() const override;
  void set_data_callback(std::uint32_t queue,
                         std::function<void()> fn) override;
  [[nodiscard]] EngineQueueStats queue_stats(
      std::uint32_t queue) const override;

 private:
  Type2Engine inner_;
  PsioeConfig config_;
  /// Per-queue staging buffer in "user space"; the packet is copied here
  /// and the ring buffer released immediately.
  std::vector<std::vector<std::byte>> user_buffers_;
  std::vector<std::uint64_t> copies_;
};

}  // namespace wirecap::engines
