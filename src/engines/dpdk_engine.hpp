// A DPDK-style packet I/O engine (§6 Related work, §7 Future work).
//
// Per the paper's comparison: like WireCAP, DPDK "provides large packet
// buffer pools at each receive queue to accommodate packet bursts,
// supports dynamic packet buffer management, employs flexible
// zero-copying, and receives packets from each receive queue through
// polling."  It differs in two ways that this model captures:
//
//   * buffer pools live in *user space* (UIO): a dedicated RX lcore per
//     queue (the classic DPDK pipeline arrangement) polls
//     rte_eth_rx_burst, refilling descriptors immediately from the
//     mempool's free mbufs and passing packet handles to the worker
//     thread through a software ring — so buffering is bounded by the
//     mempool, not the descriptor ring;
//   * DPDK itself has **no offloading mechanism**: "a DPDK-based
//     application must implement an offloading mechanism in the
//     application layer to handle long-term load imbalance" — and the
//     paper lists the design burdens that entails (steering policy,
//     thread synchronization, buffer recycling across threads).
//
// The optional application-layer offloading here implements exactly
// that hand-rolled machinery (software queues between application
// threads, per-packet handle passing, cross-thread buffer return) so
// the future-work comparison — WireCAP's engine-level offloading vs
// DPDK-with-app-offloading — can be run; see bench_ext_dpdk.  The extra
// per-packet work of the application-layer path is charged to the
// application cores.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "engines/engine.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::engines {

struct DpdkConfig {
  /// mbufs in each queue's mempool (the buffering bound).
  std::uint32_t mempool_size = 25'600;
  std::uint32_t mbuf_size = 2048;
  /// Packets consumed per rx_burst call.
  std::uint32_t burst_size = 32;
  /// Per-packet application-side cost of popping the software ring.
  Nanos rx_cost = Nanos{7};
  /// Per-packet cost of the RX lcore's burst receive path (descriptor
  /// refill amortized), charged to the lcore.
  Nanos io_cost = Nanos{12};
  /// RX lcore poll interval when the ring is empty.
  Nanos poll_interval = Nanos::from_micros(50);

  /// Enables the hand-rolled application-layer offloading.
  bool app_offload = false;
  /// Backlog fraction of the mempool beyond which a burst is redirected.
  double app_offload_threshold = 0.6;
  /// Extra per-packet cost of the application-layer redirection
  /// (software-queue enqueue + synchronization), charged to the sender.
  Nanos app_offload_cost = Nanos{120};
};

class DpdkEngine final : public CaptureEngine {
 public:
  DpdkEngine(sim::Scheduler& scheduler, nic::MultiQueueNic& nic,
             DpdkConfig config);


  [[nodiscard]] std::string_view name() const override {
    return config_.app_offload ? "DPDK+app-offload" : "DPDK";
  }

  void open(std::uint32_t queue, sim::SimCore& app_core) override;
  void close(std::uint32_t queue) override;
  std::optional<CaptureView> try_next(std::uint32_t queue) override;
  void done(std::uint32_t queue, const CaptureView& view) override;
  bool forward(std::uint32_t queue, const CaptureView& view,
               nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) override;
  [[nodiscard]] Nanos app_overhead_per_packet() const override {
    return config_.rx_cost;
  }
  void set_data_callback(std::uint32_t queue,
                         std::function<void()> fn) override;
  [[nodiscard]] EngineQueueStats queue_stats(
      std::uint32_t queue) const override;
  /// Base metrics plus mempool occupancy, software-ring depths and the
  /// RX lcore's utilization.
  void bind_telemetry(telemetry::Telemetry& telemetry,
                      const std::string& prefix,
                      std::uint32_t num_queues) override;

  /// Declares the application threads that may exchange packets through
  /// the app-layer software queues (the DPDK analogue of a buddy group,
  /// except the *application* owns all of it).
  void set_peer_group(const std::vector<std::uint32_t>& queues);

  /// Tenant registration maps onto peer groups: each tenant's queues
  /// exchange packets among themselves only.  Quotas and NUMA overrides
  /// are WireCAP concepts and are ignored here.
  TenantId register_tenant(const TenantSpec& spec) override;

  /// mbufs currently out of the free list (backlog indicator).
  [[nodiscard]] std::uint32_t in_use(std::uint32_t queue) const;

 private:
  /// An mbuf handed between threads: which mempool it came from and
  /// which mbuf it is, plus the packet metadata.
  struct PacketHandle {
    std::uint32_t owner_queue = 0;
    std::uint32_t mbuf = 0;
    std::uint32_t length = 0;
    std::uint32_t wire_length = 0;
    Nanos timestamp{};
    std::uint64_t seq = 0;
  };

  struct QueueState {
    bool open = false;
    sim::SimCore* app_core = nullptr;
    std::unique_ptr<sim::SimCore> io_core;  // the queue's RX lcore
    std::vector<std::byte> mempool;       // mempool_size * mbuf_size bytes
    std::vector<std::uint32_t> free_mbufs;
    std::deque<PacketHandle> local;       // software ring to the worker
    std::deque<PacketHandle> inbound;     // redirected here by peers
    std::vector<std::uint32_t> peers;
    std::function<void()> data_callback;
    EngineQueueStats stats;
  };

  [[nodiscard]] std::span<std::byte> mbuf_bytes(QueueState& qs,
                                                std::uint32_t mbuf);
  /// The RX lcore's poll loop: repeated rte_eth_rx_burst draining the
  /// descriptor ring into the software ring(s).
  void io_poll(std::uint32_t queue);
  /// One rte_eth_rx_burst: consume up to burst_size filled descriptors,
  /// refilling each with a fresh mbuf; places handles on `local` or, if
  /// offloading trips, on the least busy peer's `inbound`.  Returns the
  /// number received.
  std::size_t rx_burst(std::uint32_t queue);
  void release(const PacketHandle& handle);
  [[nodiscard]] static constexpr std::uint64_t pack(const PacketHandle& h) {
    return (static_cast<std::uint64_t>(h.owner_queue) << 32) | h.mbuf;
  }

  sim::Scheduler& scheduler_;
  nic::MultiQueueNic& nic_;
  DpdkConfig config_;
  std::vector<QueueState> queues_;
};

}  // namespace wirecap::engines
