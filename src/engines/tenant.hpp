// Multi-tenant registration: several applications (an IDS, a flow-stats
// collector, a capture-to-disk spool) share one NIC, each owning a
// disjoint set of its receive queues.
//
// A TenantSpec replaces the old single-application
// WirecapEngine::set_buddy_group(queues) call: the tenant's queues form
// its buddy group (offloading never crosses tenants), `chunk_quota`
// caps how many captured chunks the tenant may hold engine-wide at once
// (a stalled tenant exhausts only its own budget, not the NIC), and the
// optional per-tenant knobs override the engine-wide defaults for the
// tenant's queues only.
//
// Registration is an upsert keyed on `name`: re-registering a name
// replaces that tenant's spec.  Queue ownership is exclusive — a queue
// claimed by a new spec is released from its previous owner (whose
// buddy lists shrink accordingly), so the disjointness invariant holds
// at every moment without making reconfiguration a two-step dance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/handoff.hpp"

namespace wirecap::engines {

/// Index of a registered tenant (dense, assigned by registration order;
/// stable across upserts of the same name).
using TenantId = std::uint32_t;

/// A queue that belongs to no tenant (the state every queue starts in).
inline constexpr TenantId kNoTenant = 0xFFFFFFFFu;

struct TenantSpec {
  /// Upsert key; also the telemetry label under `tenant.<id>.*`.
  std::string name;

  /// The receive queues this tenant owns — its buddy group.  Must be
  /// non-empty and duplicate-free; queues claimed here are released
  /// from any other tenant.
  std::vector<std::uint32_t> queues;

  /// Cap on captured chunks the tenant may hold at once, summed over
  /// its queues (in capture queues, parked, awaiting recycle, or held
  /// by the application).  0 means unlimited.  A tenant at its quota
  /// stops capturing — its rings back up and drop — without touching
  /// any other tenant's pools.
  std::uint32_t chunk_quota = 0;

  /// Per-tenant overrides of the engine-wide defaults; nullopt keeps
  /// the engine config's value, so a spec with every optional empty is
  /// behaviorally identical to the old set_buddy_group call.
  std::optional<OffloadPolicy> offload_policy;
  std::optional<double> offload_threshold;

  /// Pins every member queue's capture thread and pool to this NUMA
  /// node (applied to pools created by subsequent open() calls; the
  /// cost-model penalties apply immediately).
  std::optional<std::uint32_t> numa_node;
};

/// Quota-side account of one tenant, exposed for tests / benches /
/// the lifecycle auditor's per-tenant conservation check.
struct TenantAccount {
  std::uint32_t quota = 0;          ///< 0 = unlimited
  std::uint64_t charged = 0;        ///< captured chunks currently held
  std::uint64_t quota_stalls = 0;   ///< capture polls skipped at quota
};

}  // namespace wirecap::engines
