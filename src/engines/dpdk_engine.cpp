#include "engines/dpdk_engine.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace wirecap::engines {

DpdkEngine::DpdkEngine(sim::Scheduler& scheduler, nic::MultiQueueNic& nic,
                       DpdkConfig config)
    : scheduler_(scheduler), nic_(nic), config_(config) {
  if (config_.mempool_size <= nic.config().rx_ring_size) {
    throw std::invalid_argument(
        "DpdkEngine: mempool must exceed the ring size");
  }
  if (config_.burst_size == 0) {
    throw std::invalid_argument("DpdkEngine: burst_size must be positive");
  }
  queues_.resize(nic_.config().num_rx_queues);
}

std::span<std::byte> DpdkEngine::mbuf_bytes(QueueState& qs,
                                            std::uint32_t mbuf) {
  return {qs.mempool.data() +
              static_cast<std::size_t>(mbuf) * config_.mbuf_size,
          config_.mbuf_size};
}

void DpdkEngine::open(std::uint32_t queue, sim::SimCore& app_core) {
  QueueState& qs = queues_.at(queue);
  if (qs.open) return;
  qs.open = true;
  qs.app_core = &app_core;
  qs.mempool.resize(static_cast<std::size_t>(config_.mempool_size) *
                    config_.mbuf_size);
  qs.free_mbufs.resize(config_.mempool_size);
  std::iota(qs.free_mbufs.rbegin(), qs.free_mbufs.rend(), 0u);

  nic::RxRing& ring = nic_.rx_ring(queue);
  for (std::uint32_t i = 0; i < nic_.config().rx_ring_size; ++i) {
    const std::uint32_t mbuf = qs.free_mbufs.back();
    qs.free_mbufs.pop_back();
    ring.attach(nic::DmaBuffer{mbuf_bytes(qs, mbuf), mbuf});
  }
  nic_.kick(queue);
  // The queue's dedicated RX lcore: poll-mode, no interrupts.
  qs.io_core = std::make_unique<sim::SimCore>(
      scheduler_, 2000 + nic_.nic_id() * 64 + queue);
  io_poll(queue);
}

void DpdkEngine::io_poll(std::uint32_t queue) {
  QueueState& qs = queues_[queue];
  if (!qs.open) return;
  std::size_t received = 0;
  while (true) {
    const std::size_t n = rx_burst(queue);
    if (n == 0) break;
    received += n;
  }
  const Nanos cost{static_cast<std::int64_t>(received) *
                   config_.io_cost.count()};
  qs.io_core->submit(sim::WorkPriority::kUser, cost,
                     [this, queue, received] {
    QueueState& state = queues_[queue];
    if (!state.open) return;
    if (received > 0) {
      io_poll(queue);
    } else {
      scheduler_.schedule_after(config_.poll_interval,
                                [this, queue] { io_poll(queue); });
    }
  });
}

void DpdkEngine::close(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  qs.open = false;  // the lcore poll loop exits on its next wakeup
  qs.data_callback = nullptr;
}

void DpdkEngine::set_peer_group(const std::vector<std::uint32_t>& queues) {
  for (const std::uint32_t q : queues) {
    if (!queues_.at(q).open) {
      throw std::logic_error("DpdkEngine: peer queue not open");
    }
    queues_[q].peers.clear();
    for (const std::uint32_t other : queues) {
      if (other != q) queues_[q].peers.push_back(other);
    }
  }
}

TenantId DpdkEngine::register_tenant(const TenantSpec& spec) {
  for (const std::uint32_t q : spec.queues) {
    if (!queues_.at(q).open) {
      throw std::logic_error("DpdkEngine: peer queue not open");
    }
  }
  const TenantId id = CaptureEngine::register_tenant(spec);
  // Rebuild every queue's peer list from the registry so queues a new
  // spec claimed from another tenant drop their stale peers too.
  for (std::uint32_t q = 0; q < queues_.size(); ++q) {
    queues_[q].peers.clear();
    const TenantId owner = tenant_of(q);
    if (owner == kNoTenant) continue;
    for (const std::uint32_t other : tenants()[owner].queues) {
      if (other != q) queues_[q].peers.push_back(other);
    }
  }
  return id;
}

std::uint32_t DpdkEngine::in_use(std::uint32_t queue) const {
  const QueueState& qs = queues_.at(queue);
  return config_.mempool_size -
         static_cast<std::uint32_t>(qs.free_mbufs.size());
}

std::size_t DpdkEngine::rx_burst(std::uint32_t queue) {
  QueueState& qs = queues_[queue];
  nic::RxRing& ring = nic_.rx_ring(queue);

  // Top up descriptors lost to earlier mempool exhaustion.
  while (ring.empty_slots() > 0 && !qs.free_mbufs.empty()) {
    const std::uint32_t mbuf = qs.free_mbufs.back();
    qs.free_mbufs.pop_back();
    ring.attach(nic::DmaBuffer{mbuf_bytes(qs, mbuf), mbuf});
  }

  std::vector<PacketHandle> burst;
  while (burst.size() < config_.burst_size && ring.has_filled()) {
    const auto consumed = ring.consume();
    PacketHandle handle;
    handle.owner_queue = queue;
    handle.mbuf = static_cast<std::uint32_t>(consumed.buffer.cookie);
    handle.length = consumed.writeback.length;
    handle.wire_length = consumed.writeback.wire_length;
    handle.timestamp = consumed.writeback.timestamp;
    handle.seq = consumed.writeback.seq;
    burst.push_back(handle);
    // Refill the descriptor immediately from the mempool — this is what
    // makes DPDK's buffering mempool-bound rather than ring-bound.
    if (!qs.free_mbufs.empty()) {
      const std::uint32_t mbuf = qs.free_mbufs.back();
      qs.free_mbufs.pop_back();
      ring.attach(nic::DmaBuffer{mbuf_bytes(qs, mbuf), mbuf});
    }
  }
  nic_.kick(queue);
  if (burst.empty()) return 0;

  // The application-layer offloading a DPDK application must hand-roll:
  // when this thread's backlog exceeds the threshold, redirect the burst
  // to the least busy peer through a software queue, paying the
  // synchronization cost on this thread's core.
  if (config_.app_offload && !qs.peers.empty()) {
    const double backlog_fraction =
        static_cast<double>(in_use(queue)) /
        static_cast<double>(config_.mempool_size);
    if (backlog_fraction > config_.app_offload_threshold) {
      std::uint32_t target = queue;
      std::size_t best = qs.local.size() + qs.inbound.size();
      for (const std::uint32_t peer : qs.peers) {
        const std::size_t peer_backlog =
            queues_[peer].local.size() + queues_[peer].inbound.size();
        if (peer_backlog < best) {
          best = peer_backlog;
          target = peer;
        }
      }
      if (target != queue) {
        QueueState& ts = queues_[target];
        for (const auto& handle : burst) ts.inbound.push_back(handle);
        qs.stats.chunks_offloaded_out += 1;
        ts.stats.chunks_offloaded_in += 1;
        // The redirection machinery (enqueue + synchronization) runs on
        // this queue's lcore.
        qs.io_core->submit(
            sim::WorkPriority::kUser,
            Nanos{static_cast<std::int64_t>(burst.size()) *
                  config_.app_offload_cost.count()},
            [] {});
        if (ts.data_callback) ts.data_callback();
        return burst.size();
      }
    }
  }

  for (const auto& handle : burst) qs.local.push_back(handle);
  if (qs.data_callback) qs.data_callback();
  return burst.size();
}

std::optional<CaptureView> DpdkEngine::try_next(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  if (!qs.open) return std::nullopt;

  PacketHandle handle;
  if (!qs.inbound.empty()) {
    handle = qs.inbound.front();
    qs.inbound.pop_front();
  } else if (!qs.local.empty()) {
    handle = qs.local.front();
    qs.local.pop_front();
  } else {
    return std::nullopt;
  }

  QueueState& owner = queues_[handle.owner_queue];
  CaptureView view;
  view.bytes = mbuf_bytes(owner, handle.mbuf).first(handle.length);
  view.wire_len = handle.wire_length;
  view.timestamp = handle.timestamp;
  view.seq = handle.seq;
  view.handle = pack(handle);
  ++qs.stats.delivered;
  return view;
}

void DpdkEngine::release(const PacketHandle& handle) {
  queues_[handle.owner_queue].free_mbufs.push_back(handle.mbuf);
}

void DpdkEngine::done(std::uint32_t /*queue*/, const CaptureView& view) {
  PacketHandle handle;
  handle.owner_queue = static_cast<std::uint32_t>(view.handle >> 32);
  handle.mbuf = static_cast<std::uint32_t>(view.handle & 0xFFFFFFFF);
  release(handle);
}

bool DpdkEngine::forward(std::uint32_t queue, const CaptureView& view,
                         nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) {
  nic::TxRequest request;
  request.frame = view.bytes;
  request.wire_length = view.wire_len;
  request.seq = view.seq;
  request.on_complete = [this, queue, handle = view.handle] {
    CaptureView view_copy;
    view_copy.handle = handle;
    done(queue, view_copy);
  };
  if (!out_nic.transmit(tx_queue, std::move(request))) {
    done(queue, view);
    return false;
  }
  return true;
}

void DpdkEngine::set_data_callback(std::uint32_t queue,
                                   std::function<void()> fn) {
  queues_.at(queue).data_callback = std::move(fn);
}

EngineQueueStats DpdkEngine::queue_stats(std::uint32_t queue) const {
  return queues_.at(queue).stats;
}

void DpdkEngine::bind_telemetry(telemetry::Telemetry& telemetry,
                                const std::string& prefix,
                                std::uint32_t num_queues) {
  CaptureEngine::bind_telemetry(telemetry, prefix, num_queues);
  for (std::uint32_t q = 0; q < num_queues && q < queues_.size(); ++q) {
    const std::string qp = prefix + ".q" + std::to_string(q) + ".";
    telemetry.registry.bind_gauge(qp + "mempool.in_use", [this, q] {
      return static_cast<double>(in_use(q));
    });
    telemetry.registry.bind_gauge(qp + "sw_ring.depth", [this, q] {
      return static_cast<double>(queues_[q].local.size() +
                                 queues_[q].inbound.size());
    });
    telemetry.registry.bind_gauge(qp + "io_core.utilization", [this, q] {
      return queues_[q].io_core ? queues_[q].io_core->utilization() : 0.0;
    });
  }
}

}  // namespace wirecap::engines
