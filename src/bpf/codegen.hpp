// Compiles a filter AST to a classic-BPF program, tcpdump-style: an
// Ethernet/IPv4 packet is tested field by field with conditional jumps
// to shared accept/reject tails.
#pragma once

#include <cstdint>

#include "bpf/ast.hpp"
#include "bpf/insn.hpp"

namespace wirecap::bpf {

/// Value returned by the generated program on a match (tcpdump uses the
/// snap length; 65535 accepts the whole packet).
inline constexpr std::uint32_t kAcceptAll = 65535;

/// Compiles `expr` into a verified cBPF program.  A null expr (empty
/// filter) compiles to the single-instruction accept-everything program.
/// Throws std::invalid_argument if the expression is too complex for
/// cBPF's 8-bit jump offsets (not reachable with realistic filters).
[[nodiscard]] Program compile(const Expr* expr,
                              std::uint32_t accept_len = kAcceptAll);

/// Parses and compiles in one step (the pcap_compile equivalent).
[[nodiscard]] Program compile_filter(std::string_view text,
                                     std::uint32_t accept_len = kAcceptAll);

}  // namespace wirecap::bpf
