// Pre-decoded cBPF execution form — the batch path's filter engine.
//
// bpf::run() re-decodes every instruction on every packet: it splits the
// 16-bit opcode into class/size/mode/op/src fields at runtime, re-checks
// the fields it already checked for the previous packet, and keeps
// defensive throw paths for encodings the verifier would never admit.
// Predecoded hoists all of that to construction: the program is verified
// ONCE, each instruction is lowered to a dense Op tag with operands
// resolved (jump targets become absolute instruction indices, constant
// divisors are known non-zero), and execution is a tight switch-threaded
// dispatch with no per-packet setup or re-validation.
//
// run_batch() filters a whole engines::PacketBatch in one pass — the
// batch-granularity analogue of calling bpf::matches() per packet.
//
// Semantics are pinned to the reference interpreter: in debug builds
// every execution is cross-checked against bpf::run() (abort on
// divergence), and the PR 4 differential oracle exercises the pair over
// the seeded filter × frame corpus.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bpf/insn.hpp"
#include "engines/packet_view.hpp"

namespace wirecap::bpf {

/// Dense operation tag: one enumerator per (class, size/mode/op, source)
/// combination the verifier admits, so the executor switch is a single
/// indexed dispatch with no field masking.
enum class Op : std::uint8_t {
  kLdAbsW, kLdAbsH, kLdAbsB,   // A <- P[k]
  kLdIndW, kLdIndH, kLdIndB,   // A <- P[X+k]
  kLdImm, kLdLen, kLdMem,      // A <- k / wire_len / M[k]
  kLdxImm, kLdxLen, kLdxMem,   // X <- k / wire_len / M[k]
  kLdxMsh,                     // X <- 4*(P[k]&0xF)
  kSt, kStx,                   // M[k] <- A / X
  kAluAddK, kAluAddX, kAluSubK, kAluSubX, kAluMulK, kAluMulX,
  kAluDivK, kAluDivX, kAluModK, kAluModX,  // DivK/ModK: k != 0 (verified)
  kAluAndK, kAluAndX, kAluOrK, kAluOrX, kAluXorK, kAluXorX,
  kAluLshK, kAluLshX, kAluRshK, kAluRshX, kAluNegate,
  kJa,                         // pc <- jt (absolute)
  kJeqK, kJeqX, kJgtK, kJgtX, kJgeK, kJgeX, kJsetK, kJsetX,
  kRetConst, kRetAcc,  // named apart from the kRetK/kRetA code constants
  kTax, kTxa,
  // Fused pairs (load/ALU + compare-and-branch in one dispatch).  The
  // decoder emits these for the dominant codegen patterns — ethertype
  // and protocol checks (ldh/ldb + jeq), address compares (ld + jeq),
  // fragment tests (ldh + jset), and masked net matches (and + jeq) —
  // whenever the second instruction is not itself a jump target.  The
  // superseded second instruction stays in place, unreachable, so every
  // absolute jump index remains valid.
  kLdAbsWJeqK, kLdAbsHJeqK, kLdAbsBJeqK,  // A <- P[k]; pc <- A==cmp ? jt:jf
  kLdAbsHJsetK,                           // A <- P[k]; pc <- A&cmp ? jt:jf
  kAluAndKJeqK,                           // A &= k;    pc <- A==cmp ? jt:jf
  // Indirect-load fusions: the VLAN-aware codegen addresses every L3/L4
  // field as P[X+k] (X holds the link-layer length), so these — not the
  // absolute forms — cover the hot instructions of typical filters.
  kLdIndWJeqK, kLdIndHJeqK, kLdIndBJeqK,  // A <- P[X+k]; pc <- A==cmp?jt:jf
  kLdIndHJsetK,                           // A <- P[X+k]; pc <- A&cmp?jt:jf
  // Triple fusions for whole idioms the codegen emits:
  kLdAbsWAndKJeqK,  // A <- P[k]&mask;   pc <- A==cmp ? jt:jf  (subnet)
  kLdIndWAndKJeqK,  // A <- P[X+k]&mask; pc <- A==cmp ? jt:jf  (subnet)
  kLdImmStTax,      // A <- k; M[mask] <- A; X <- A; pc <- jt  (L3 base)
  kStTax,           // M[k] <- A; X <- A  (L3 base via a branch join)
  kLdxMemLdIndBJeqK,  // X <- M[mask]; A <- P[X+k]; branch     (ip proto)
};

/// One pre-decoded instruction.  Jump targets are absolute instruction
/// indices (kMaxInsns = 4096 fits in 16 bits); for kJa the target is in
/// `jt`.  Shift-by-constant >= 32 is lowered at decode time to the
/// zeroing constant the reference semantics demand.  Fused ops keep the
/// first instruction's operand in `k` and the comparison immediate of
/// the folded branch in `cmp`.
struct PInsn {
  Op op{};
  std::uint16_t jt = 0;
  std::uint16_t jf = 0;
  std::uint32_t k = 0;
  std::uint32_t cmp = 0;
  std::uint32_t mask = 0;  // kLdAbsWAndKJeqK only: the folded AND operand
};

class Predecoded {
 public:
  /// Verifies and lowers `program` once.  Throws std::invalid_argument
  /// with the verifier's message when the program is invalid — the
  /// executor itself contains no validation.
  explicit Predecoded(const Program& program);

  /// Executes over one packet; same contract as bpf::run(): returns the
  /// RET value (0 = reject), out-of-bounds packet load rejects.
  [[nodiscard]] std::uint32_t run(std::span<const std::byte> packet,
                                  std::uint32_t wire_len) const;

  [[nodiscard]] bool matches(std::span<const std::byte> packet,
                             std::uint32_t wire_len) const {
    return run(packet, wire_len) != 0;
  }

  /// Filters a whole batch in one pass.  `accepts` is resized to
  /// batch.size(); accepts[i] != 0 iff packet i matches.  Returns the
  /// number of matching packets.
  std::size_t run_batch(const engines::PacketBatch& batch,
                        std::vector<std::uint8_t>& accepts) const;

  [[nodiscard]] std::size_t size() const { return insns_.size(); }
  [[nodiscard]] const std::vector<PInsn>& insns() const { return insns_; }

 private:
  /// The executor, in two instantiations: kChecked=true bounds-checks
  /// every packet load; kChecked=false elides the checks on *absolute*
  /// loads — legal whenever packet.size() >= abs_guard_, which run() /
  /// run_batch() test once per packet instead of once per load.
  /// Indirect (X-relative) loads are always checked: X is data-dependent.
  template <bool kChecked>
  [[nodiscard]] std::uint32_t exec(std::span<const std::byte> packet,
                                   std::uint32_t wire_len) const;

  [[nodiscard]] std::uint32_t dispatch(std::span<const std::byte> packet,
                                       std::uint32_t wire_len) const {
    return packet.size() >= abs_guard_ ? exec<false>(packet, wire_len)
                                       : exec<true>(packet, wire_len);
  }

  std::vector<PInsn> insns_;
  /// Minimum packet length (bytes) under which every absolute load in
  /// the program is in bounds; 0 when the program has no such loads.
  std::size_t abs_guard_ = 0;
  /// Whether exec() must clear the scratch slots: false when the
  /// program never loads from M[], which makes stores unobservable too.
  bool zero_mem_ = false;
#ifndef NDEBUG
  Program source_;  // debug-build parity oracle against bpf::run()
#endif
};

}  // namespace wirecap::bpf
