// cBPF disassembler producing the classic "(000) ldh [12]" listing
// format familiar from `tcpdump -d`.
#pragma once

#include <string>

#include "bpf/insn.hpp"

namespace wirecap::bpf {

/// One instruction, without the program-counter prefix.
[[nodiscard]] std::string disassemble_insn(const Insn& insn, std::size_t pc);

/// Whole program, one numbered line per instruction.
[[nodiscard]] std::string disassemble(const Program& program);

}  // namespace wirecap::bpf
