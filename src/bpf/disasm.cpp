#include "bpf/disasm.hpp"

#include <cstdio>

namespace wirecap::bpf {

namespace {

std::string format(const char* fmt, auto... args) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

const char* size_suffix(std::uint16_t code) {
  switch (insn_size(code)) {
    case kSizeW: return "";
    case kSizeH: return "h";
    case kSizeB: return "b";
  }
  return "?";
}

std::string alu_name(std::uint16_t op) {
  switch (op) {
    case kAluAdd: return "add";
    case kAluSub: return "sub";
    case kAluMul: return "mul";
    case kAluDiv: return "div";
    case kAluMod: return "mod";
    case kAluAnd: return "and";
    case kAluOr: return "or";
    case kAluXor: return "xor";
    case kAluLsh: return "lsh";
    case kAluRsh: return "rsh";
    case kAluNeg: return "neg";
  }
  return "alu?";
}

std::string jmp_name(std::uint16_t op) {
  switch (op) {
    case kJmpJeq: return "jeq";
    case kJmpJgt: return "jgt";
    case kJmpJge: return "jge";
    case kJmpJset: return "jset";
  }
  return "jmp?";
}

}  // namespace

std::string disassemble_insn(const Insn& insn, std::size_t pc) {
  const auto cls = insn_class(insn.code);
  switch (cls) {
    case kClassLd:
    case kClassLdx: {
      const char* reg = cls == kClassLd ? "ld" : "ldx";
      switch (insn_mode(insn.code)) {
        case kModeImm: return format("%s%s #%u", reg, size_suffix(insn.code), insn.k);
        case kModeAbs: return format("%s%s [%u]", reg, size_suffix(insn.code), insn.k);
        case kModeInd: return format("%s%s [x + %u]", reg, size_suffix(insn.code), insn.k);
        case kModeMem: return format("%s M[%u]", reg, insn.k);
        case kModeLen: return format("%s #pktlen", reg);
        case kModeMsh: return format("ldxb 4*([%u]&0xf)", insn.k);
      }
      return "ld?";
    }
    case kClassSt: return format("st M[%u]", insn.k);
    case kClassStx: return format("stx M[%u]", insn.k);
    case kClassAlu:
      if (insn_op(insn.code) == kAluNeg) return "neg";
      if (insn_src(insn.code) == kSrcX) {
        return format("%s x", alu_name(insn_op(insn.code)).c_str());
      }
      return format("%s #%u", alu_name(insn_op(insn.code)).c_str(), insn.k);
    case kClassJmp:
      if (insn_op(insn.code) == kJmpJa) {
        return format("ja %zu", pc + 1 + insn.k);
      }
      if (insn_src(insn.code) == kSrcX) {
        return format("%s x, jt %zu, jf %zu",
                      jmp_name(insn_op(insn.code)).c_str(), pc + 1 + insn.jt,
                      pc + 1 + insn.jf);
      }
      return format("%s #0x%x, jt %zu, jf %zu",
                    jmp_name(insn_op(insn.code)).c_str(), insn.k,
                    pc + 1 + insn.jt, pc + 1 + insn.jf);
    case kClassRet:
      return (insn.code & 0x18) == kRetA ? "ret a" : format("ret #%u", insn.k);
    case kClassMisc:
      return (insn.code & 0xF8) == kMiscTax ? "tax" : "txa";
  }
  return "?";
}

std::string disassemble(const Program& program) {
  std::string out;
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    out += format("(%03zu) ", pc);
    out += disassemble_insn(program[pc], pc);
    out += '\n';
  }
  return out;
}

}  // namespace wirecap::bpf
