#include "bpf/parser.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <stdexcept>
#include <vector>

namespace wirecap::bpf {

namespace {

enum class TokenKind : std::uint8_t {
  kWord,    // keyword or identifier
  kNumber,  // decimal integer
  kDotted,  // dotted prefix, 2-4 numeric parts: "131.225.2"
  kSlash,
  kDash,
  kLParen,
  kRParen,
  kLe,  // <=
  kGe,  // >=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // lowercased for kWord
  std::uint64_t number = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_space();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (c == '-') { tokens.push_back({TokenKind::kDash, "-"}); ++pos_; continue; }
      if (c == '(') { tokens.push_back({TokenKind::kLParen, "("}); ++pos_; continue; }
      if (c == ')') { tokens.push_back({TokenKind::kRParen, ")"}); ++pos_; continue; }
      if (c == '/') { tokens.push_back({TokenKind::kSlash, "/"}); ++pos_; continue; }
      if (c == '!') { tokens.push_back({TokenKind::kWord, "not"}); ++pos_; continue; }
      if (c == '&') { expect_pair('&'); tokens.push_back({TokenKind::kWord, "and"}); continue; }
      if (c == '|') { expect_pair('|'); tokens.push_back({TokenKind::kWord, "or"}); continue; }
      if (c == '<' || c == '>') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '=') {
          throw ParseError("expected '<=' or '>='");
        }
        tokens.push_back({c == '<' ? TokenKind::kLe : TokenKind::kGe,
                          std::string{c} + "="});
        pos_ += 2;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        tokens.push_back(lex_number_or_dotted());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c))) {
        tokens.push_back(lex_word());
        continue;
      }
      throw ParseError(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back({TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void expect_pair(char c) {
    if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != c) {
      throw ParseError(std::string("expected '") + c + c + "'");
    }
    pos_ += 2;
  }

  Token lex_number_or_dotted() {
    std::string text;
    unsigned parts = 1;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        text.push_back(c);
        ++pos_;
      } else if (c == '.' && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        text.push_back(c);
        ++parts;
        ++pos_;
      } else {
        break;
      }
    }
    if (parts == 1) {
      try {
        return {TokenKind::kNumber, text, std::stoull(text)};
      } catch (const std::out_of_range&) {
        throw ParseError("number out of range: " + text);
      }
    }
    if (parts > 4) throw ParseError("too many address components: " + text);
    return {TokenKind::kDotted, text};
  }

  Token lex_word() {
    std::string word;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
        ++pos_;
      } else {
        break;
      }
    }
    return {TokenKind::kWord, word};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

struct DottedPrefix {
  net::Ipv4Addr addr;
  unsigned octets;  // how many dotted parts were given
};

DottedPrefix parse_dotted(const std::string& text) {
  std::uint32_t value = 0;
  unsigned octets = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string part =
        text.substr(start, dot == std::string::npos ? dot : dot - start);
    unsigned long octet = 0;
    try {
      octet = std::stoul(part);
    } catch (const std::out_of_range&) {
      throw ParseError("address octet out of range: " + text);
    }
    if (octet > 255) throw ParseError("address octet out of range: " + text);
    value = (value << 8) | static_cast<std::uint32_t>(octet);
    ++octets;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  if (octets == 0 || octets > 4) throw ParseError("bad address: " + text);
  value <<= 8 * (4 - octets);
  return {net::Ipv4Addr{value}, octets};
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ExprPtr run() {
    if (peek().kind == TokenKind::kEnd) return nullptr;
    ExprPtr expr = parse_or();
    if (peek().kind != TokenKind::kEnd) {
      throw ParseError("trailing input after expression: '" + peek().text + "'");
    }
    return expr;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool accept_word(std::string_view word) {
    if (peek().kind == TokenKind::kWord && peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (accept_word("or")) {
      lhs = Expr::make_or(std::move(lhs), parse_and());
    }
    return lhs;
  }

  // "and" may be omitted: "udp port 53" is (udp) and (port 53)?  No —
  // tcpdump treats "udp port 53" as a single qualified primitive.  We
  // keep it simple and unambiguous: juxtaposition of two *factors* is a
  // conjunction, so "udp port 53" parses as (udp and port 53), which has
  // identical match semantics.
  ExprPtr parse_and() {
    ExprPtr lhs = parse_factor();
    while (true) {
      if (accept_word("and")) {
        lhs = Expr::make_and(std::move(lhs), parse_factor());
      } else if (starts_factor()) {
        lhs = Expr::make_and(std::move(lhs), parse_factor());
      } else {
        return lhs;
      }
    }
  }

  [[nodiscard]] bool starts_factor() const {
    switch (peek().kind) {
      case TokenKind::kLParen:
      case TokenKind::kDotted:
        return true;
      case TokenKind::kWord:
        return peek().text != "or" && peek().text != "and";
      default:
        return false;
    }
  }

  ExprPtr parse_factor() {
    // Recursion bound: parentheses and `not` chains are the only ways
    // the grammar recurses, and both pass through here.  Without a cap
    // a ~100 kB string of '(' overflows the C++ stack (UB) before any
    // syntax error is reached.
    if (depth_ >= kMaxDepth) {
      throw ParseError("expression nested too deeply");
    }
    ++depth_;
    ExprPtr result;
    if (accept_word("not")) {
      result = Expr::make_not(parse_factor());
    } else if (peek().kind == TokenKind::kLParen) {
      ++pos_;
      result = parse_or();
      if (peek().kind != TokenKind::kRParen) throw ParseError("expected ')'");
      ++pos_;
    } else {
      result = parse_primitive();
    }
    --depth_;
    return result;
  }

  ExprPtr parse_primitive() {
    // Bare dotted prefix shorthand: "131.225.2" == "net 131.225.2".
    if (peek().kind == TokenKind::kDotted) {
      return make_net(Direction::kEither, advance().text);
    }
    if (peek().kind != TokenKind::kWord) {
      throw ParseError("expected a filter primitive, got '" + peek().text + "'");
    }

    Direction dir = Direction::kEither;
    if (accept_word("src")) {
      dir = Direction::kSrc;
    } else if (accept_word("dst")) {
      dir = Direction::kDst;
    }

    if (accept_word("host")) return make_host(dir);
    if (accept_word("net")) return make_net_token(dir);
    if (accept_word("portrange")) return make_portrange(dir);
    if (accept_word("port")) return make_port(dir);

    if (dir != Direction::kEither) {
      throw ParseError("expected host/net/port after src/dst");
    }

    if (accept_word("ip6")) return make_proto(PrimitiveKind::kProtoIp6);
    if (accept_word("ip")) return make_proto(PrimitiveKind::kProtoIp);
    if (accept_word("tcp")) return make_proto(PrimitiveKind::kProtoTcp);
    if (accept_word("udp")) return make_proto(PrimitiveKind::kProtoUdp);
    if (accept_word("icmp")) return make_proto(PrimitiveKind::kProtoIcmp);
    if (accept_word("vlan")) return make_vlan();
    if (accept_word("len")) return make_len();
    if (accept_word("greater")) return make_len_alias(PrimitiveKind::kLenGe);
    if (accept_word("less")) return make_len_alias(PrimitiveKind::kLenLe);

    throw ParseError("unknown primitive '" + peek().text + "'");
  }

  static ExprPtr make_proto(PrimitiveKind kind) {
    Primitive p;
    p.kind = kind;
    return Expr::make_primitive(p);
  }

  ExprPtr make_host(Direction dir) {
    if (peek().kind != TokenKind::kDotted && peek().kind != TokenKind::kNumber) {
      throw ParseError("expected address after 'host'");
    }
    const auto dotted = parse_dotted(advance().text);
    if (dotted.octets != 4) throw ParseError("host requires a full dotted quad");
    Primitive p;
    p.kind = PrimitiveKind::kHost;
    p.dir = dir;
    p.addr = dotted.addr;
    return Expr::make_primitive(p);
  }

  ExprPtr make_net_token(Direction dir) {
    if (peek().kind != TokenKind::kDotted && peek().kind != TokenKind::kNumber) {
      throw ParseError("expected prefix after 'net'");
    }
    return make_net(dir, advance().text);
  }

  ExprPtr make_net(Direction dir, const std::string& text) {
    const auto dotted = parse_dotted(text);
    unsigned prefix_len = dotted.octets * 8;
    if (peek().kind == TokenKind::kSlash) {
      ++pos_;
      if (peek().kind != TokenKind::kNumber) {
        throw ParseError("expected prefix length after '/'");
      }
      const auto bits = advance().number;
      if (bits > 32) throw ParseError("prefix length out of range");
      prefix_len = static_cast<unsigned>(bits);
    }
    Primitive p;
    p.kind = PrimitiveKind::kNet;
    p.dir = dir;
    p.addr = dotted.addr;
    p.prefix_len = prefix_len;
    return Expr::make_primitive(p);
  }

  ExprPtr make_port(Direction dir) {
    if (peek().kind != TokenKind::kNumber) {
      throw ParseError("expected port number");
    }
    const auto value = advance().number;
    if (value > 65535) throw ParseError("port out of range");
    Primitive p;
    p.kind = PrimitiveKind::kPort;
    p.dir = dir;
    p.port = static_cast<std::uint16_t>(value);
    return Expr::make_primitive(p);
  }

  ExprPtr make_vlan() {
    Primitive p;
    p.kind = PrimitiveKind::kVlan;
    if (peek().kind == TokenKind::kNumber) {
      const auto vid = advance().number;
      if (vid > 0x0FFF) throw ParseError("VLAN id out of range");
      p.vlan_id = static_cast<std::uint16_t>(vid);
      p.has_vlan_id = true;
    }
    return Expr::make_primitive(p);
  }

  ExprPtr make_portrange(Direction dir) {
    if (peek().kind != TokenKind::kNumber) {
      throw ParseError("expected port number after 'portrange'");
    }
    const auto lo = advance().number;
    if (peek().kind != TokenKind::kDash) {
      throw ParseError("expected '-' in portrange");
    }
    ++pos_;
    if (peek().kind != TokenKind::kNumber) {
      throw ParseError("expected upper port in portrange");
    }
    const auto hi = advance().number;
    if (lo > 65535 || hi > 65535 || lo > hi) {
      throw ParseError("bad portrange bounds");
    }
    Primitive p;
    p.kind = PrimitiveKind::kPortRange;
    p.dir = dir;
    p.port = static_cast<std::uint16_t>(lo);
    p.port_hi = static_cast<std::uint16_t>(hi);
    return Expr::make_primitive(p);
  }

  std::uint32_t take_length() {
    const auto value = advance().number;
    if (value > 0xFFFFFFFFull) throw ParseError("length out of range");
    return static_cast<std::uint32_t>(value);
  }

  ExprPtr make_len_alias(PrimitiveKind kind) {
    if (peek().kind != TokenKind::kNumber) {
      throw ParseError("expected length");
    }
    Primitive p;
    p.kind = kind;
    p.length = take_length();
    return Expr::make_primitive(p);
  }

  ExprPtr make_len() {
    const TokenKind cmp = peek().kind;
    if (cmp != TokenKind::kLe && cmp != TokenKind::kGe) {
      throw ParseError("expected '<=' or '>=' after 'len'");
    }
    ++pos_;
    if (peek().kind != TokenKind::kNumber) {
      throw ParseError("expected length");
    }
    Primitive p;
    p.kind = cmp == TokenKind::kLe ? PrimitiveKind::kLenLe : PrimitiveKind::kLenGe;
    p.length = take_length();
    return Expr::make_primitive(p);
  }

  static constexpr int kMaxDepth = 200;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

std::string primitive_to_string(const Primitive& p) {
  const auto dir_prefix = [&]() -> std::string {
    switch (p.dir) {
      case Direction::kSrc: return "src ";
      case Direction::kDst: return "dst ";
      case Direction::kEither: return "";
    }
    return "";
  }();
  switch (p.kind) {
    case PrimitiveKind::kProtoIp: return "ip";
    case PrimitiveKind::kProtoIp6: return "ip6";
    case PrimitiveKind::kVlan:
      return p.has_vlan_id ? "vlan " + std::to_string(p.vlan_id) : "vlan";
    case PrimitiveKind::kPortRange:
      return dir_prefix + "portrange " + std::to_string(p.port) + "-" +
             std::to_string(p.port_hi);
    case PrimitiveKind::kProtoTcp: return "tcp";
    case PrimitiveKind::kProtoUdp: return "udp";
    case PrimitiveKind::kProtoIcmp: return "icmp";
    case PrimitiveKind::kHost: return dir_prefix + "host " + p.addr.to_string();
    case PrimitiveKind::kNet:
      return dir_prefix + "net " + p.addr.to_string() + "/" +
             std::to_string(p.prefix_len);
    case PrimitiveKind::kPort: return dir_prefix + "port " + std::to_string(p.port);
    case PrimitiveKind::kLenLe: return "len <= " + std::to_string(p.length);
    case PrimitiveKind::kLenGe: return "len >= " + std::to_string(p.length);
  }
  return "?";
}

}  // namespace

ExprPtr parse_filter(std::string_view text) {
  Lexer lexer{text};
  Parser parser{lexer.run()};
  return parser.run();
}

std::string to_string(const Expr& expr) {
  // Built via append rather than operator+ chains: GCC 12's -Wrestrict
  // false-positives on the rvalue-string operator+ overloads at -O3.
  std::string out;
  switch (expr.kind) {
    case ExprKind::kAnd:
    case ExprKind::kOr:
      out.append("(");
      out.append(to_string(*expr.lhs));
      out.append(expr.kind == ExprKind::kAnd ? " and " : " or ");
      out.append(to_string(*expr.rhs));
      out.append(")");
      return out;
    case ExprKind::kNot:
      out.append("(not ");
      out.append(to_string(*expr.lhs));
      out.append(")");
      return out;
    case ExprKind::kPrimitive:
      return primitive_to_string(expr.prim);
  }
  return "?";
}

}  // namespace wirecap::bpf
