// cBPF verifier and interpreter.
//
// verify() performs the same static checks the Linux kernel applies when
// a socket filter is attached: non-empty, bounded length, every jump
// lands inside the program, constant divisors are non-zero, memory slots
// in range, and the last reachable instruction chain ends in RET.
//
// run() executes a verified program over packet bytes and returns the
// number of bytes to accept (0 = reject) — exactly the classic
// bpf_filter() contract.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "bpf/insn.hpp"

namespace wirecap::bpf {

/// Maximum program length accepted by the verifier (Linux: 4096).
inline constexpr std::size_t kMaxInsns = 4096;

struct VerifyResult {
  bool ok = false;
  std::string error;  // empty when ok

  [[nodiscard]] static VerifyResult success() { return {true, {}}; }
  [[nodiscard]] static VerifyResult failure(std::string why) {
    return {false, std::move(why)};
  }
};

/// Statically validates `program`.  A program that passes cannot read
/// out-of-bounds scratch memory, jump outside the program, or divide by
/// a constant zero.  (Packet loads are bounds-checked at run time, as in
/// the reference implementation: an out-of-bounds packet load returns 0
/// — reject.)
[[nodiscard]] VerifyResult verify(const Program& program);

/// Executes `program` over `packet`.  `wire_len` is the original packet
/// length reported by BPF_LD+BPF_LEN (may exceed packet.size() when the
/// capture snapped the packet).  Returns the RET value: 0 to reject, or
/// the number of bytes to keep.
///
/// Precondition: verify(program).ok.  Behaviour on an unverified program
/// is safe (throws std::runtime_error) but slow paths are not optimized.
[[nodiscard]] std::uint32_t run(const Program& program,
                                std::span<const std::byte> packet,
                                std::uint32_t wire_len);

/// Convenience: non-zero return means the packet matches the filter.
[[nodiscard]] inline bool matches(const Program& program,
                                  std::span<const std::byte> packet,
                                  std::uint32_t wire_len) {
  return run(program, packet, wire_len) != 0;
}

}  // namespace wirecap::bpf
