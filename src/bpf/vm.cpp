#include "bpf/vm.hpp"

#include <array>
#include <stdexcept>

namespace wirecap::bpf {

namespace {

[[nodiscard]] bool valid_load_code(std::uint16_t code) {
  const auto mode = insn_mode(code);
  const auto size = insn_size(code);
  if (size != kSizeW && size != kSizeH && size != kSizeB) return false;
  switch (mode) {
    case kModeAbs:
    case kModeInd:
      return true;
    case kModeImm:
    case kModeMem:
    case kModeLen:
      // Register-only loads carry no width; the reference checker
      // (Linux sk_chk_filter) admits only the W-sized encoding.
      return size == kSizeW;
    case kModeMsh:
      return false;  // MSH is LDX-only
    default:
      return false;
  }
}

[[nodiscard]] bool valid_ldx_code(std::uint16_t code) {
  const auto mode = insn_mode(code);
  switch (mode) {
    case kModeImm:
    case kModeMem:
    case kModeLen:
      return insn_size(code) == kSizeW;
    case kModeMsh:
      return insn_size(code) == kSizeB;
    default:
      return false;
  }
}

[[nodiscard]] bool valid_alu_op(std::uint16_t op) {
  switch (op) {
    case kAluAdd:
    case kAluSub:
    case kAluMul:
    case kAluDiv:
    case kAluMod:
    case kAluAnd:
    case kAluOr:
    case kAluXor:
    case kAluLsh:
    case kAluRsh:
    case kAluNeg:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] bool valid_jmp_op(std::uint16_t op) {
  switch (op) {
    case kJmpJa:
    case kJmpJeq:
    case kJmpJgt:
    case kJmpJge:
    case kJmpJset:
      return true;
    default:
      return false;
  }
}

}  // namespace

VerifyResult verify(const Program& program) {
  if (program.empty()) return VerifyResult::failure("empty program");
  if (program.size() > kMaxInsns) return VerifyResult::failure("program too long");

  const std::size_t len = program.size();
  for (std::size_t pc = 0; pc < len; ++pc) {
    const Insn& insn = program[pc];
    const auto cls = insn_class(insn.code);
    const auto at = "at insn " + std::to_string(pc);
    // The accessors mask the bits they care about, so without this a
    // code with garbage high bits would execute as something else
    // entirely; the reference checker compares full codes.
    if ((insn.code & ~0xFFu) != 0) {
      return VerifyResult::failure("garbage high code bits " + at);
    }
    switch (cls) {
      case kClassLd:
        if (!valid_load_code(insn.code)) {
          return VerifyResult::failure("bad LD code " + at);
        }
        if (insn_mode(insn.code) == kModeMem && insn.k >= kMemSlots) {
          return VerifyResult::failure("LD MEM slot out of range " + at);
        }
        break;
      case kClassLdx:
        if (!valid_ldx_code(insn.code)) {
          return VerifyResult::failure("bad LDX code " + at);
        }
        if (insn_mode(insn.code) == kModeMem && insn.k >= kMemSlots) {
          return VerifyResult::failure("LDX MEM slot out of range " + at);
        }
        break;
      case kClassSt:
      case kClassStx:
        if (insn.k >= kMemSlots) {
          return VerifyResult::failure("ST slot out of range " + at);
        }
        break;
      case kClassAlu: {
        const auto op = insn_op(insn.code);
        if (!valid_alu_op(op)) {
          return VerifyResult::failure("bad ALU op " + at);
        }
        if ((op == kAluDiv || op == kAluMod) &&
            insn_src(insn.code) == kSrcK && insn.k == 0) {
          return VerifyResult::failure("division by constant zero " + at);
        }
        break;
      }
      case kClassJmp: {
        const auto op = insn_op(insn.code);
        if (!valid_jmp_op(op)) {
          return VerifyResult::failure("bad JMP op " + at);
        }
        if (op == kJmpJa) {
          if (pc + 1 + insn.k >= len) {
            return VerifyResult::failure("JA target out of range " + at);
          }
        } else {
          if (pc + 1 + insn.jt >= len || pc + 1 + insn.jf >= len) {
            return VerifyResult::failure("jump target out of range " + at);
          }
        }
        break;
      }
      case kClassRet:
        // Exact codes only: masking with 0x18 would also admit e.g.
        // 0x26 ("ret" with a stray mode bit), which the reference
        // checker rejects.
        if (insn.code != (kClassRet | kRetK) &&
            insn.code != (kClassRet | kRetA)) {
          return VerifyResult::failure("bad RET code " + at);
        }
        break;
      case kClassMisc:
        if (insn.code != (kClassMisc | kMiscTax) &&
            insn.code != (kClassMisc | kMiscTxa)) {
          return VerifyResult::failure("bad MISC code " + at);
        }
        break;
      default:
        return VerifyResult::failure("unknown class " + at);
    }
  }

  // Every straight-line path must terminate: the final instruction must be
  // a RET or an unconditional jump cannot be last (checked above by range).
  const auto last_class = insn_class(program.back().code);
  if (last_class != kClassRet) {
    return VerifyResult::failure("program does not end in RET");
  }
  return VerifyResult::success();
}

std::uint32_t run(const Program& program, std::span<const std::byte> packet,
                  std::uint32_t wire_len) {
  std::uint32_t a = 0;  // accumulator
  std::uint32_t x = 0;  // index register
  std::array<std::uint32_t, kMemSlots> mem{};

  const std::size_t len = program.size();

  // Bounds-checked packet loads: classic BPF rejects the packet (returns
  // 0) when a load falls outside the captured bytes.
  const auto load_w = [&](std::size_t off, std::uint32_t& out) {
    if (off + 4 > packet.size()) return false;
    out = (static_cast<std::uint32_t>(packet[off]) << 24) |
          (static_cast<std::uint32_t>(packet[off + 1]) << 16) |
          (static_cast<std::uint32_t>(packet[off + 2]) << 8) |
          static_cast<std::uint32_t>(packet[off + 3]);
    return true;
  };
  const auto load_h = [&](std::size_t off, std::uint32_t& out) {
    if (off + 2 > packet.size()) return false;
    out = (static_cast<std::uint32_t>(packet[off]) << 8) |
          static_cast<std::uint32_t>(packet[off + 1]);
    return true;
  };
  const auto load_b = [&](std::size_t off, std::uint32_t& out) {
    if (off + 1 > packet.size()) return false;
    out = static_cast<std::uint32_t>(packet[off]);
    return true;
  };

  for (std::size_t pc = 0; pc < len; ++pc) {
    const Insn& insn = program[pc];
    switch (insn_class(insn.code)) {
      case kClassLd: {
        const auto size = insn_size(insn.code);
        std::size_t off = 0;
        switch (insn_mode(insn.code)) {
          case kModeImm: a = insn.k; continue;
          case kModeLen: a = wire_len; continue;
          case kModeMem: a = mem[insn.k]; continue;
          case kModeAbs: off = insn.k; break;
          case kModeInd: off = static_cast<std::size_t>(x) + insn.k; break;
          default: throw std::runtime_error("bpf: bad LD mode at runtime");
        }
        const bool ok = size == kSizeW   ? load_w(off, a)
                        : size == kSizeH ? load_h(off, a)
                                         : load_b(off, a);
        if (!ok) return 0;
        break;
      }
      case kClassLdx: {
        switch (insn_mode(insn.code)) {
          case kModeImm: x = insn.k; break;
          case kModeLen: x = wire_len; break;
          case kModeMem: x = mem[insn.k]; break;
          case kModeMsh: {
            std::uint32_t b = 0;
            if (!load_b(insn.k, b)) return 0;
            x = (b & 0x0F) * 4;
            break;
          }
          default: throw std::runtime_error("bpf: bad LDX mode at runtime");
        }
        break;
      }
      case kClassSt: mem[insn.k] = a; break;
      case kClassStx: mem[insn.k] = x; break;
      case kClassAlu: {
        const std::uint32_t operand =
            insn_src(insn.code) == kSrcX ? x : insn.k;
        switch (insn_op(insn.code)) {
          case kAluAdd: a += operand; break;
          case kAluSub: a -= operand; break;
          case kAluMul: a *= operand; break;
          case kAluDiv:
            if (operand == 0) return 0;  // runtime divide-by-X-zero rejects
            a /= operand;
            break;
          case kAluMod:
            if (operand == 0) return 0;
            a %= operand;
            break;
          case kAluAnd: a &= operand; break;
          case kAluOr: a |= operand; break;
          case kAluXor: a ^= operand; break;
          case kAluLsh: a = operand < 32 ? a << operand : 0; break;
          case kAluRsh: a = operand < 32 ? a >> operand : 0; break;
          case kAluNeg: a = 0u - a; break;
          default: throw std::runtime_error("bpf: bad ALU op at runtime");
        }
        break;
      }
      case kClassJmp: {
        const auto op = insn_op(insn.code);
        if (op == kJmpJa) {
          pc += insn.k;
          break;
        }
        const std::uint32_t operand =
            insn_src(insn.code) == kSrcX ? x : insn.k;
        bool taken = false;
        switch (op) {
          case kJmpJeq: taken = a == operand; break;
          case kJmpJgt: taken = a > operand; break;
          case kJmpJge: taken = a >= operand; break;
          case kJmpJset: taken = (a & operand) != 0; break;
          default: throw std::runtime_error("bpf: bad JMP op at runtime");
        }
        pc += taken ? insn.jt : insn.jf;
        break;
      }
      case kClassRet:
        return (insn.code & 0x18) == kRetA ? a : insn.k;
      case kClassMisc:
        if ((insn.code & 0xF8) == kMiscTax) {
          x = a;
        } else {
          a = x;
        }
        break;
      default:
        throw std::runtime_error("bpf: unknown class at runtime");
    }
  }
  throw std::runtime_error("bpf: fell off end of program (unverified?)");
}

}  // namespace wirecap::bpf
