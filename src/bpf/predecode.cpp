#include "bpf/predecode.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bpf/vm.hpp"

namespace wirecap::bpf {

namespace {

[[nodiscard]] Op decode_ld(const Insn& insn) {
  const auto size = insn_size(insn.code);
  switch (insn_mode(insn.code)) {
    case kModeImm: return Op::kLdImm;
    case kModeLen: return Op::kLdLen;
    case kModeMem: return Op::kLdMem;
    case kModeAbs:
      return size == kSizeW ? Op::kLdAbsW
             : size == kSizeH ? Op::kLdAbsH
                              : Op::kLdAbsB;
    default:  // kModeInd (verified)
      return size == kSizeW ? Op::kLdIndW
             : size == kSizeH ? Op::kLdIndH
                              : Op::kLdIndB;
  }
}

[[nodiscard]] Op decode_alu(const Insn& insn) {
  const bool x = insn_src(insn.code) == kSrcX;
  switch (insn_op(insn.code)) {
    case kAluAdd: return x ? Op::kAluAddX : Op::kAluAddK;
    case kAluSub: return x ? Op::kAluSubX : Op::kAluSubK;
    case kAluMul: return x ? Op::kAluMulX : Op::kAluMulK;
    case kAluDiv: return x ? Op::kAluDivX : Op::kAluDivK;
    case kAluMod: return x ? Op::kAluModX : Op::kAluModK;
    case kAluAnd: return x ? Op::kAluAndX : Op::kAluAndK;
    case kAluOr: return x ? Op::kAluOrX : Op::kAluOrK;
    case kAluXor: return x ? Op::kAluXorX : Op::kAluXorK;
    case kAluLsh: return x ? Op::kAluLshX : Op::kAluLshK;
    case kAluRsh: return x ? Op::kAluRshX : Op::kAluRshK;
    default: return Op::kAluNegate;  // kAluNeg (verified)
  }
}

[[nodiscard]] Op decode_jmp(const Insn& insn) {
  const bool x = insn_src(insn.code) == kSrcX;
  switch (insn_op(insn.code)) {
    case kJmpJeq: return x ? Op::kJeqX : Op::kJeqK;
    case kJmpJgt: return x ? Op::kJgtX : Op::kJgtK;
    case kJmpJge: return x ? Op::kJgeX : Op::kJgeK;
    default: return x ? Op::kJsetX : Op::kJsetK;  // kJmpJset (verified)
  }
}

}  // namespace

Predecoded::Predecoded(const Program& program) {
  // The one and only validation pass: the executor below assumes every
  // invariant the verifier establishes (jumps in range, memory slots in
  // range, constant divisors non-zero, terminating RET).
  const VerifyResult vr = verify(program);
  if (!vr.ok) {
    throw std::invalid_argument("bpf::Predecoded: " + vr.error);
  }

  insns_.reserve(program.size());
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    const Insn& insn = program[pc];
    PInsn out;
    out.k = insn.k;
    switch (insn_class(insn.code)) {
      case kClassLd:
        out.op = decode_ld(insn);
        break;
      case kClassLdx:
        switch (insn_mode(insn.code)) {
          case kModeImm: out.op = Op::kLdxImm; break;
          case kModeLen: out.op = Op::kLdxLen; break;
          case kModeMem: out.op = Op::kLdxMem; break;
          default: out.op = Op::kLdxMsh; break;  // kModeMsh (verified)
        }
        break;
      case kClassSt: out.op = Op::kSt; break;
      case kClassStx: out.op = Op::kStx; break;
      case kClassAlu:
        out.op = decode_alu(insn);
        // Shift-by-constant >= 32 always yields 0 in the reference
        // semantics; lower it to A &= 0 so the executor's constant
        // shifts never need a range check.
        if ((out.op == Op::kAluLshK || out.op == Op::kAluRshK) &&
            insn.k >= 32) {
          out.op = Op::kAluAndK;
          out.k = 0;
        }
        break;
      case kClassJmp:
        if (insn_op(insn.code) == kJmpJa) {
          out.op = Op::kJa;
          out.jt = static_cast<std::uint16_t>(pc + 1 + insn.k);
        } else {
          out.op = decode_jmp(insn);
          out.jt = static_cast<std::uint16_t>(pc + 1 + insn.jt);
          out.jf = static_cast<std::uint16_t>(pc + 1 + insn.jf);
        }
        break;
      case kClassRet:
        out.op =
            insn_size(insn.code) == kRetA ? Op::kRetAcc : Op::kRetConst;
        break;
      default:  // kClassMisc (verified)
        out.op = insn.code == (kClassMisc | kMiscTax) ? Op::kTax : Op::kTxa;
        break;
    }
    insns_.push_back(out);
  }

  for (const PInsn& insn : insns_) {
    if (insn.op == Op::kLdMem || insn.op == Op::kLdxMem) {
      zero_mem_ = true;
      break;
    }
  }

  // Peephole fusion: fold (load/ALU, compare-and-branch) pairs into one
  // dispatch when nothing jumps to the second instruction.  The second
  // instruction is left in place, unreachable — fall-through skips it
  // via the fused branch and no jump targets it — so every absolute
  // index stays valid.
  std::vector<bool> is_target(program.size(), false);
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    const Insn& insn = program[pc];
    if (insn_class(insn.code) != kClassJmp) continue;
    if (insn_op(insn.code) == kJmpJa) {
      is_target[pc + 1 + insn.k] = true;
    } else {
      is_target[pc + 1 + insn.jt] = true;
      is_target[pc + 1 + insn.jf] = true;
    }
  }
  for (std::size_t pc = 0; pc + 1 < insns_.size(); ++pc) {
    if (is_target[pc + 1]) continue;
    const Op first = insns_[pc].op;
    const Op second = insns_[pc + 1].op;
    // Triples first (ld;and;jeq / ld;st;tax / ldx;ldb;jeq): each folds a
    // whole codegen idiom into one dispatch when neither successor is a
    // jump target.  Both superseded slots stay in place, dead.
    if (pc + 2 < insns_.size() && !is_target[pc + 2]) {
      const Op third = insns_[pc + 2].op;
      if ((first == Op::kLdAbsW || first == Op::kLdIndW) &&
          second == Op::kAluAndK && third == Op::kJeqK) {
        insns_[pc].op = first == Op::kLdAbsW ? Op::kLdAbsWAndKJeqK
                                             : Op::kLdIndWAndKJeqK;
        insns_[pc].mask = insns_[pc + 1].k;
        insns_[pc].cmp = insns_[pc + 2].k;
        insns_[pc].jt = insns_[pc + 2].jt;
        insns_[pc].jf = insns_[pc + 2].jf;
        pc += 2;
        continue;
      }
      if (first == Op::kLdImm && second == Op::kSt && third == Op::kTax &&
          pc + 3 < insns_.size()) {
        insns_[pc].op = Op::kLdImmStTax;
        insns_[pc].mask = insns_[pc + 1].k;  // scratch slot
        insns_[pc].jt = static_cast<std::uint16_t>(pc + 3);
        pc += 2;
        continue;
      }
      if (first == Op::kLdxMem && second == Op::kLdIndB &&
          third == Op::kJeqK) {
        insns_[pc].op = Op::kLdxMemLdIndBJeqK;
        insns_[pc].mask = insns_[pc].k;      // scratch slot
        insns_[pc].k = insns_[pc + 1].k;     // load offset
        insns_[pc].cmp = insns_[pc + 2].k;
        insns_[pc].jt = insns_[pc + 2].jt;
        insns_[pc].jf = insns_[pc + 2].jf;
        pc += 2;
        continue;
      }
    }
    if (first == Op::kSt && second == Op::kTax &&
        pc + 2 < insns_.size()) {
      insns_[pc].op = Op::kStTax;
      insns_[pc].jt = static_cast<std::uint16_t>(pc + 2);
      ++pc;
      continue;
    }
    Op fused;
    if (second == Op::kJeqK) {
      switch (first) {
        case Op::kLdAbsW: fused = Op::kLdAbsWJeqK; break;
        case Op::kLdAbsH: fused = Op::kLdAbsHJeqK; break;
        case Op::kLdAbsB: fused = Op::kLdAbsBJeqK; break;
        case Op::kLdIndW: fused = Op::kLdIndWJeqK; break;
        case Op::kLdIndH: fused = Op::kLdIndHJeqK; break;
        case Op::kLdIndB: fused = Op::kLdIndBJeqK; break;
        case Op::kAluAndK: fused = Op::kAluAndKJeqK; break;
        default: continue;
      }
    } else if (second == Op::kJsetK && first == Op::kLdAbsH) {
      fused = Op::kLdAbsHJsetK;
    } else if (second == Op::kJsetK && first == Op::kLdIndH) {
      fused = Op::kLdIndHJsetK;
    } else {
      continue;
    }
    insns_[pc].op = fused;
    insns_[pc].cmp = insns_[pc + 1].k;
    insns_[pc].jt = insns_[pc + 1].jt;
    insns_[pc].jf = insns_[pc + 1].jf;
    ++pc;  // the superseded branch is dead; never fuse into it
  }

  // The per-packet bounds guard: a packet at least this long satisfies
  // every absolute load, so exec<false> can skip the per-load checks.
  // Superseded (dead) instructions are never *absolute* loads, so
  // scanning the whole array is safe — and overestimating only costs
  // speed, not correctness.  Indirect loads stay checked in both modes.
  for (const PInsn& insn : insns_) {
    std::size_t need = 0;
    switch (insn.op) {
      case Op::kLdAbsW:
      case Op::kLdAbsWJeqK:
      case Op::kLdAbsWAndKJeqK: need = insn.k + std::size_t{4}; break;
      case Op::kLdAbsH:
      case Op::kLdAbsHJeqK:
      case Op::kLdAbsHJsetK: need = insn.k + std::size_t{2}; break;
      case Op::kLdAbsB:
      case Op::kLdAbsBJeqK:
      case Op::kLdxMsh: need = insn.k + std::size_t{1}; break;
      default: break;
    }
    abs_guard_ = std::max(abs_guard_, need);
  }
#ifndef NDEBUG
  source_ = program;
#endif
}

template <bool kChecked>
std::uint32_t Predecoded::exec(std::span<const std::byte> packet,
                               std::uint32_t wire_len) const {
  std::uint32_t a = 0;
  std::uint32_t x = 0;
  // Scratch slots are cleared only when the program can read them;
  // store-only or scratch-free programs (most filters) skip the memset.
  std::uint32_t mem[kMemSlots];
  if (zero_mem_) {
    for (std::uint32_t& slot : mem) slot = 0;
  }
  const std::byte* const p = packet.data();
  const std::size_t plen = packet.size();
  const PInsn* const code = insns_.data();

  // Switch-threaded dispatch: the verifier guarantees in-range jumps and
  // a terminating RET, so the loop has no pc bounds check and every
  // `default` is unreachable.
  for (std::uint16_t pc = 0;; ) {
    const PInsn& insn = code[pc];
    ++pc;
    switch (insn.op) {
      case Op::kLdAbsW: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off + 4 > plen) return 0;
        }
        a = (static_cast<std::uint32_t>(p[off]) << 24) |
            (static_cast<std::uint32_t>(p[off + 1]) << 16) |
            (static_cast<std::uint32_t>(p[off + 2]) << 8) |
            static_cast<std::uint32_t>(p[off + 3]);
        break;
      }
      case Op::kLdAbsH: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off + 2 > plen) return 0;
        }
        a = (static_cast<std::uint32_t>(p[off]) << 8) |
            static_cast<std::uint32_t>(p[off + 1]);
        break;
      }
      case Op::kLdAbsB: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off >= plen) return 0;
        }
        a = static_cast<std::uint32_t>(p[off]);
        break;
      }
      case Op::kLdIndW: {
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off + 4 > plen) return 0;
        a = (static_cast<std::uint32_t>(p[off]) << 24) |
            (static_cast<std::uint32_t>(p[off + 1]) << 16) |
            (static_cast<std::uint32_t>(p[off + 2]) << 8) |
            static_cast<std::uint32_t>(p[off + 3]);
        break;
      }
      case Op::kLdIndH: {
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off + 2 > plen) return 0;
        a = (static_cast<std::uint32_t>(p[off]) << 8) |
            static_cast<std::uint32_t>(p[off + 1]);
        break;
      }
      case Op::kLdIndB: {
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off >= plen) return 0;
        a = static_cast<std::uint32_t>(p[off]);
        break;
      }
      case Op::kLdImm: a = insn.k; break;
      case Op::kLdLen: a = wire_len; break;
      case Op::kLdMem: a = mem[insn.k]; break;
      case Op::kLdxImm: x = insn.k; break;
      case Op::kLdxLen: x = wire_len; break;
      case Op::kLdxMem: x = mem[insn.k]; break;
      case Op::kLdxMsh: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off >= plen) return 0;
        }
        x = (static_cast<std::uint32_t>(p[off]) & 0x0F) * 4;
        break;
      }
      case Op::kSt: mem[insn.k] = a; break;
      case Op::kStx: mem[insn.k] = x; break;
      case Op::kAluAddK: a += insn.k; break;
      case Op::kAluAddX: a += x; break;
      case Op::kAluSubK: a -= insn.k; break;
      case Op::kAluSubX: a -= x; break;
      case Op::kAluMulK: a *= insn.k; break;
      case Op::kAluMulX: a *= x; break;
      case Op::kAluDivK: a /= insn.k; break;  // k != 0: verified
      case Op::kAluDivX:
        if (x == 0) return 0;
        a /= x;
        break;
      case Op::kAluModK: a %= insn.k; break;  // k != 0: verified
      case Op::kAluModX:
        if (x == 0) return 0;
        a %= x;
        break;
      case Op::kAluAndK: a &= insn.k; break;
      case Op::kAluAndX: a &= x; break;
      case Op::kAluOrK: a |= insn.k; break;
      case Op::kAluOrX: a |= x; break;
      case Op::kAluXorK: a ^= insn.k; break;
      case Op::kAluXorX: a ^= x; break;
      case Op::kAluLshK: a <<= insn.k; break;  // k < 32: lowered at decode
      case Op::kAluLshX: a = x < 32 ? a << x : 0; break;
      case Op::kAluRshK: a >>= insn.k; break;  // k < 32: lowered at decode
      case Op::kAluRshX: a = x < 32 ? a >> x : 0; break;
      case Op::kAluNegate: a = 0u - a; break;
      case Op::kJa: pc = insn.jt; break;
      case Op::kJeqK: pc = a == insn.k ? insn.jt : insn.jf; break;
      case Op::kJeqX: pc = a == x ? insn.jt : insn.jf; break;
      case Op::kJgtK: pc = a > insn.k ? insn.jt : insn.jf; break;
      case Op::kJgtX: pc = a > x ? insn.jt : insn.jf; break;
      case Op::kJgeK: pc = a >= insn.k ? insn.jt : insn.jf; break;
      case Op::kJgeX: pc = a >= x ? insn.jt : insn.jf; break;
      case Op::kJsetK: pc = (a & insn.k) != 0 ? insn.jt : insn.jf; break;
      case Op::kJsetX: pc = (a & x) != 0 ? insn.jt : insn.jf; break;
      case Op::kRetConst: return insn.k;
      case Op::kRetAcc: return a;
      case Op::kTax: x = a; break;
      case Op::kTxa: a = x; break;
      case Op::kLdAbsWJeqK: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off + 4 > plen) return 0;
        }
        a = (static_cast<std::uint32_t>(p[off]) << 24) |
            (static_cast<std::uint32_t>(p[off + 1]) << 16) |
            (static_cast<std::uint32_t>(p[off + 2]) << 8) |
            static_cast<std::uint32_t>(p[off + 3]);
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdAbsHJeqK: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off + 2 > plen) return 0;
        }
        a = (static_cast<std::uint32_t>(p[off]) << 8) |
            static_cast<std::uint32_t>(p[off + 1]);
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdAbsBJeqK: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off >= plen) return 0;
        }
        a = static_cast<std::uint32_t>(p[off]);
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdAbsHJsetK: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off + 2 > plen) return 0;
        }
        a = (static_cast<std::uint32_t>(p[off]) << 8) |
            static_cast<std::uint32_t>(p[off + 1]);
        pc = (a & insn.cmp) != 0 ? insn.jt : insn.jf;
        break;
      }
      case Op::kAluAndKJeqK:
        a &= insn.k;
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      case Op::kLdAbsWAndKJeqK: {
        const std::size_t off = insn.k;
        if constexpr (kChecked) {
          if (off + 4 > plen) return 0;
        }
        a = ((static_cast<std::uint32_t>(p[off]) << 24) |
             (static_cast<std::uint32_t>(p[off + 1]) << 16) |
             (static_cast<std::uint32_t>(p[off + 2]) << 8) |
             static_cast<std::uint32_t>(p[off + 3])) &
            insn.mask;
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdIndWJeqK: {
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off + 4 > plen) return 0;
        a = (static_cast<std::uint32_t>(p[off]) << 24) |
            (static_cast<std::uint32_t>(p[off + 1]) << 16) |
            (static_cast<std::uint32_t>(p[off + 2]) << 8) |
            static_cast<std::uint32_t>(p[off + 3]);
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdIndHJeqK: {
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off + 2 > plen) return 0;
        a = (static_cast<std::uint32_t>(p[off]) << 8) |
            static_cast<std::uint32_t>(p[off + 1]);
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdIndBJeqK: {
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off >= plen) return 0;
        a = static_cast<std::uint32_t>(p[off]);
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdIndHJsetK: {
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off + 2 > plen) return 0;
        a = (static_cast<std::uint32_t>(p[off]) << 8) |
            static_cast<std::uint32_t>(p[off + 1]);
        pc = (a & insn.cmp) != 0 ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdIndWAndKJeqK: {
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off + 4 > plen) return 0;
        a = ((static_cast<std::uint32_t>(p[off]) << 24) |
             (static_cast<std::uint32_t>(p[off + 1]) << 16) |
             (static_cast<std::uint32_t>(p[off + 2]) << 8) |
             static_cast<std::uint32_t>(p[off + 3])) &
            insn.mask;
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
      case Op::kLdImmStTax:
        a = insn.k;
        mem[insn.mask] = a;
        x = a;
        pc = insn.jt;
        break;
      case Op::kStTax:
        mem[insn.k] = a;
        x = a;
        pc = insn.jt;
        break;
      case Op::kLdxMemLdIndBJeqK: {
        x = mem[insn.mask];
        const std::size_t off = static_cast<std::size_t>(x) + insn.k;
        if (off >= plen) return 0;
        a = static_cast<std::uint32_t>(p[off]);
        pc = a == insn.cmp ? insn.jt : insn.jf;
        break;
      }
    }
  }
}

template std::uint32_t Predecoded::exec<true>(std::span<const std::byte>,
                                              std::uint32_t) const;
template std::uint32_t Predecoded::exec<false>(std::span<const std::byte>,
                                               std::uint32_t) const;

std::uint32_t Predecoded::run(std::span<const std::byte> packet,
                              std::uint32_t wire_len) const {
  const std::uint32_t result = dispatch(packet, wire_len);
  // Parity with the reference interpreter, asserted on every execution
  // in debug builds (the difftest oracle covers release semantics).
  assert(result == bpf::run(source_, packet, wire_len));
  return result;
}

std::size_t Predecoded::run_batch(const engines::PacketBatch& batch,
                                  std::vector<std::uint8_t>& accepts) const {
  const std::size_t n = batch.views.size();
  accepts.resize(n);
  std::size_t matched = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const engines::CaptureView& view = batch.views[i];
    const std::uint32_t result = dispatch(view.bytes, view.wire_len);
    assert(result == bpf::run(source_, view.bytes, view.wire_len));
    accepts[i] = result != 0 ? 1 : 0;
    matched += accepts[i];
  }
  return matched;
}

}  // namespace wirecap::bpf
