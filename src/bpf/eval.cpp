#include "bpf/eval.hpp"

#include <optional>

#include "net/headers.hpp"

namespace wirecap::bpf {

namespace {

struct ParsedFrame {
  std::optional<net::Ipv4Header> ip;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<net::VlanTag> vlan;
  bool is_ipv6 = false;
  std::uint32_t wire_len = 0;
};

ParsedFrame parse(std::span<const std::byte> frame, std::uint32_t wire_len) {
  ParsedFrame parsed;
  parsed.wire_len = wire_len;
  const auto eth = net::parse_ethernet(frame);
  if (!eth) return parsed;
  parsed.vlan = net::parse_vlan(frame);
  parsed.is_ipv6 = eth->ether_type == net::kEtherTypeIpv6;
  if (eth->ether_type != net::kEtherTypeIpv4) return parsed;
  const auto l3 = frame.subspan(net::kEthernetHeaderLen);
  parsed.ip = net::parse_ipv4(l3);
  if (!parsed.ip) return parsed;
  // Ports are defined only for unfragmented-first TCP/UDP segments.
  if ((parsed.ip->flags_fragment & 0x1FFF) != 0) return parsed;
  if (l3.size() < parsed.ip->header_len()) return parsed;
  const auto l4 = l3.subspan(parsed.ip->header_len());
  if (parsed.ip->protocol == net::IpProto::kTcp) {
    if (const auto tcp = net::parse_tcp(l4)) {
      parsed.src_port = tcp->src_port;
      parsed.dst_port = tcp->dst_port;
    }
  } else if (parsed.ip->protocol == net::IpProto::kUdp) {
    if (const auto udp = net::parse_udp(l4)) {
      parsed.src_port = udp->src_port;
      parsed.dst_port = udp->dst_port;
    }
  }
  return parsed;
}

bool eval_primitive(const Primitive& p, const ParsedFrame& f) {
  switch (p.kind) {
    case PrimitiveKind::kProtoIp:
      return f.ip.has_value();
    case PrimitiveKind::kProtoIp6:
      return f.is_ipv6;
    case PrimitiveKind::kVlan:
      return f.vlan && (!p.has_vlan_id || f.vlan->vid == p.vlan_id);
    case PrimitiveKind::kProtoTcp:
      return f.ip && f.ip->protocol == net::IpProto::kTcp;
    case PrimitiveKind::kProtoUdp:
      return f.ip && f.ip->protocol == net::IpProto::kUdp;
    case PrimitiveKind::kProtoIcmp:
      return f.ip && f.ip->protocol == net::IpProto::kIcmp;
    case PrimitiveKind::kHost: {
      if (!f.ip) return false;
      const bool src = f.ip->src == p.addr;
      const bool dst = f.ip->dst == p.addr;
      switch (p.dir) {
        case Direction::kSrc: return src;
        case Direction::kDst: return dst;
        case Direction::kEither: return src || dst;
      }
      return false;
    }
    case PrimitiveKind::kNet: {
      if (!f.ip) return false;
      const bool src = f.ip->src.in_prefix(p.addr, p.prefix_len);
      const bool dst = f.ip->dst.in_prefix(p.addr, p.prefix_len);
      switch (p.dir) {
        case Direction::kSrc: return src;
        case Direction::kDst: return dst;
        case Direction::kEither: return src || dst;
      }
      return false;
    }
    case PrimitiveKind::kPortRange: {
      const bool src =
          f.src_port && *f.src_port >= p.port && *f.src_port <= p.port_hi;
      const bool dst =
          f.dst_port && *f.dst_port >= p.port && *f.dst_port <= p.port_hi;
      switch (p.dir) {
        case Direction::kSrc: return src;
        case Direction::kDst: return dst;
        case Direction::kEither: return src || dst;
      }
      return false;
    }
    case PrimitiveKind::kPort: {
      const bool src = f.src_port && *f.src_port == p.port;
      const bool dst = f.dst_port && *f.dst_port == p.port;
      switch (p.dir) {
        case Direction::kSrc: return src;
        case Direction::kDst: return dst;
        case Direction::kEither: return src || dst;
      }
      return false;
    }
    case PrimitiveKind::kLenLe:
      return f.wire_len <= p.length;
    case PrimitiveKind::kLenGe:
      return f.wire_len >= p.length;
  }
  return false;
}

bool eval_expr(const Expr& expr, const ParsedFrame& f) {
  switch (expr.kind) {
    case ExprKind::kAnd: return eval_expr(*expr.lhs, f) && eval_expr(*expr.rhs, f);
    case ExprKind::kOr: return eval_expr(*expr.lhs, f) || eval_expr(*expr.rhs, f);
    case ExprKind::kNot: return !eval_expr(*expr.lhs, f);
    case ExprKind::kPrimitive: return eval_primitive(expr.prim, f);
  }
  return false;
}

}  // namespace

bool evaluate(const Expr* expr, std::span<const std::byte> frame,
              std::uint32_t wire_len) {
  if (expr == nullptr) return true;
  return eval_expr(*expr, parse(frame, wire_len));
}

}  // namespace wirecap::bpf
