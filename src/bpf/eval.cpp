#include "bpf/eval.hpp"

#include <optional>

#include "net/headers.hpp"

namespace wirecap::bpf {

namespace {

// The evaluator works on raw frame fields at the same offsets the code
// generator emits loads for, and mirrors classic-BPF packet-load
// semantics: a field that lies beyond the captured bytes aborts the
// whole evaluation with a reject (the VM returns 0 the moment any load
// falls outside caplen, regardless of the surrounding boolean
// structure).  Three-valued logic carries that abort through and/or/not
// exactly the way the compiled program's control flow does.
//
// Deliberately libpcap-compatible (and deliberately *not* full header
// validation): a frame whose (possibly VLAN-nested) ethertype is 0x0800
// is treated as IPv4 without checking the version nibble or minimum
// IHL, and L4 ports are read at l3 + 4*(ihl & 0xf) whatever ihl says —
// the same bytes a kernel socket filter would read.

enum class Verdict : std::uint8_t { kFalse, kTrue, kAbort };

[[nodiscard]] constexpr Verdict verdict_of(bool value) {
  return value ? Verdict::kTrue : Verdict::kFalse;
}

struct RawFrame {
  std::span<const std::byte> bytes;  // the captured prefix (caplen)
  std::uint32_t wire_len = 0;
};

[[nodiscard]] std::optional<std::uint32_t> load_b(const RawFrame& f,
                                                  std::size_t off) {
  if (off + 1 > f.bytes.size()) return std::nullopt;
  return static_cast<std::uint32_t>(f.bytes[off]);
}

[[nodiscard]] std::optional<std::uint32_t> load_h(const RawFrame& f,
                                                  std::size_t off) {
  if (off + 2 > f.bytes.size()) return std::nullopt;
  return (static_cast<std::uint32_t>(f.bytes[off]) << 8) |
         static_cast<std::uint32_t>(f.bytes[off + 1]);
}

[[nodiscard]] std::optional<std::uint32_t> load_w(const RawFrame& f,
                                                  std::size_t off) {
  if (off + 4 > f.bytes.size()) return std::nullopt;
  return (static_cast<std::uint32_t>(f.bytes[off]) << 24) |
         (static_cast<std::uint32_t>(f.bytes[off + 1]) << 16) |
         (static_cast<std::uint32_t>(f.bytes[off + 2]) << 8) |
         static_cast<std::uint32_t>(f.bytes[off + 3]);
}

/// Result of the ethertype dispatch every IP/IPv6 primitive performs:
/// either the L3 offset (14, or 18 behind a single 802.1Q tag), a
/// definite "not that protocol", or an abort because the dispatch loads
/// themselves fell outside the capture.
struct L3Dispatch {
  Verdict verdict = Verdict::kFalse;  // kTrue: l3_offset valid
  std::size_t l3_offset = 0;
};

[[nodiscard]] L3Dispatch dispatch_l3(const RawFrame& f,
                                     std::uint16_t target_ether_type) {
  const auto outer = load_h(f, 12);
  if (!outer) return {Verdict::kAbort, 0};
  if (*outer == target_ether_type) {
    return {Verdict::kTrue, net::kEthernetHeaderLen};
  }
  if (*outer != net::kEtherTypeVlan) return {Verdict::kFalse, 0};
  const auto inner = load_h(f, 16);
  if (!inner) return {Verdict::kAbort, 0};
  if (*inner != target_ether_type) return {Verdict::kFalse, 0};
  return {Verdict::kTrue, net::kEthernetHeaderLen + net::kVlanTagLen};
}

/// Matches `value` under `mask` against the src and/or dst IPv4 address
/// words, replicating the compiled load order (src first; dst only when
/// src failed to match).
[[nodiscard]] Verdict match_addr(const RawFrame& f, std::size_t l3,
                                 std::uint32_t value, std::uint32_t mask,
                                 Direction dir) {
  const auto test_one = [&](std::size_t off) -> Verdict {
    const auto word = load_w(f, off);
    if (!word) return Verdict::kAbort;
    return verdict_of((*word & mask) == value);
  };
  switch (dir) {
    case Direction::kSrc: return test_one(l3 + 12);
    case Direction::kDst: return test_one(l3 + 16);
    case Direction::kEither: {
      const Verdict src = test_one(l3 + 12);
      if (src != Verdict::kFalse) return src;
      return test_one(l3 + 16);
    }
  }
  return Verdict::kFalse;
}

/// Matches TCP/UDP ports in [lo, hi], replicating the compiled
/// sequence: protocol byte, fragment-offset halfword, IHL byte, then
/// the port halfword(s) at l3 + 4*(ihl & 0xf).
[[nodiscard]] Verdict match_port(const RawFrame& f, std::size_t l3,
                                 std::uint16_t lo, std::uint16_t hi,
                                 Direction dir) {
  const auto proto = load_b(f, l3 + 9);
  if (!proto) return Verdict::kAbort;
  if (*proto != static_cast<std::uint32_t>(net::IpProto::kTcp) &&
      *proto != static_cast<std::uint32_t>(net::IpProto::kUdp)) {
    return Verdict::kFalse;
  }
  const auto frag = load_h(f, l3 + 6);
  if (!frag) return Verdict::kAbort;
  if ((*frag & 0x1FFF) != 0) return Verdict::kFalse;
  const auto version_ihl = load_b(f, l3);
  if (!version_ihl) return Verdict::kAbort;
  const std::size_t l4 = l3 + 4 * (*version_ihl & 0x0F);
  const auto test_one = [&](std::size_t off) -> Verdict {
    const auto port = load_h(f, off);
    if (!port) return Verdict::kAbort;
    return verdict_of(*port >= lo && *port <= hi);
  };
  switch (dir) {
    case Direction::kSrc: return test_one(l4);
    case Direction::kDst: return test_one(l4 + 2);
    case Direction::kEither: {
      const Verdict src = test_one(l4);
      if (src != Verdict::kFalse) return src;
      return test_one(l4 + 2);
    }
  }
  return Verdict::kFalse;
}

[[nodiscard]] Verdict eval_primitive(const Primitive& p, const RawFrame& f) {
  switch (p.kind) {
    case PrimitiveKind::kProtoIp:
      return dispatch_l3(f, net::kEtherTypeIpv4).verdict;
    case PrimitiveKind::kProtoIp6:
      return dispatch_l3(f, net::kEtherTypeIpv6).verdict;
    case PrimitiveKind::kVlan: {
      const auto outer = load_h(f, 12);
      if (!outer) return Verdict::kAbort;
      if (*outer != net::kEtherTypeVlan) return Verdict::kFalse;
      if (!p.has_vlan_id) return Verdict::kTrue;
      const auto tci = load_h(f, 14);
      if (!tci) return Verdict::kAbort;
      return verdict_of((*tci & 0x0FFF) == p.vlan_id);
    }
    case PrimitiveKind::kProtoTcp:
    case PrimitiveKind::kProtoUdp:
    case PrimitiveKind::kProtoIcmp: {
      const auto l3 = dispatch_l3(f, net::kEtherTypeIpv4);
      if (l3.verdict != Verdict::kTrue) return l3.verdict;
      const auto proto = load_b(f, l3.l3_offset + 9);
      if (!proto) return Verdict::kAbort;
      const auto want = p.kind == PrimitiveKind::kProtoTcp ? net::IpProto::kTcp
                        : p.kind == PrimitiveKind::kProtoUdp
                            ? net::IpProto::kUdp
                            : net::IpProto::kIcmp;
      return verdict_of(*proto == static_cast<std::uint32_t>(want));
    }
    case PrimitiveKind::kHost:
    case PrimitiveKind::kNet: {
      const auto l3 = dispatch_l3(f, net::kEtherTypeIpv4);
      if (l3.verdict != Verdict::kTrue) return l3.verdict;
      std::uint32_t mask = 0xFFFFFFFFu;
      if (p.kind == PrimitiveKind::kNet) {
        mask = p.prefix_len == 0
                   ? 0
                   : (p.prefix_len >= 32 ? 0xFFFFFFFFu
                                         : ~((1u << (32 - p.prefix_len)) - 1));
      }
      return match_addr(f, l3.l3_offset, p.addr.value() & mask, mask, p.dir);
    }
    case PrimitiveKind::kPort:
    case PrimitiveKind::kPortRange: {
      const auto l3 = dispatch_l3(f, net::kEtherTypeIpv4);
      if (l3.verdict != Verdict::kTrue) return l3.verdict;
      const std::uint16_t hi =
          p.kind == PrimitiveKind::kPort ? p.port : p.port_hi;
      return match_port(f, l3.l3_offset, p.port, hi, p.dir);
    }
    case PrimitiveKind::kLenLe:
      return verdict_of(f.wire_len <= p.length);
    case PrimitiveKind::kLenGe:
      return verdict_of(f.wire_len >= p.length);
  }
  return Verdict::kFalse;
}

[[nodiscard]] Verdict eval_expr(const Expr& expr, const RawFrame& f) {
  switch (expr.kind) {
    case ExprKind::kAnd: {
      const Verdict lhs = eval_expr(*expr.lhs, f);
      if (lhs != Verdict::kTrue) return lhs;  // false or abort
      return eval_expr(*expr.rhs, f);
    }
    case ExprKind::kOr: {
      const Verdict lhs = eval_expr(*expr.lhs, f);
      if (lhs != Verdict::kFalse) return lhs;  // true or abort
      return eval_expr(*expr.rhs, f);
    }
    case ExprKind::kNot: {
      const Verdict inner = eval_expr(*expr.lhs, f);
      if (inner == Verdict::kAbort) return Verdict::kAbort;
      return verdict_of(inner == Verdict::kFalse);
    }
    case ExprKind::kPrimitive:
      return eval_primitive(expr.prim, f);
  }
  return Verdict::kFalse;
}

}  // namespace

bool evaluate(const Expr* expr, std::span<const std::byte> frame,
              std::uint32_t wire_len) {
  if (expr == nullptr) return true;
  return eval_expr(*expr, RawFrame{frame, wire_len}) == Verdict::kTrue;
}

}  // namespace wirecap::bpf
