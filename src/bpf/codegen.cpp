#include "bpf/codegen.hpp"

#include <stdexcept>
#include <vector>

#include "bpf/parser.hpp"
#include "bpf/vm.hpp"
#include "net/headers.hpp"

namespace wirecap::bpf {

namespace {

// Frame offsets for linktype EN10MB.  The L3 header starts at 14 on a
// plain frame and at 18 behind a single 802.1Q tag; the dispatch in
// require_ipv4() computes that offset at runtime into X (and M[0] so
// later primitives can restore it), and all IPv4 field loads are
// emitted X-relative.
constexpr std::uint32_t kOffEtherType = 12;
constexpr std::uint32_t kOffVlanTci = 14;
constexpr std::uint32_t kOffInnerEtherType = 16;
constexpr std::uint32_t kL3Plain = net::kEthernetHeaderLen;
constexpr std::uint32_t kL3Vlan = net::kEthernetHeaderLen + net::kVlanTagLen;
// IPv4 field offsets relative to the start of the IP header.
constexpr std::uint32_t kRelIpFrag = 6;
constexpr std::uint32_t kRelIpProto = 9;
constexpr std::uint32_t kRelIpSrc = 12;
constexpr std::uint32_t kRelIpDst = 16;
// Scratch slot holding the L3 offset once an IPv4 dispatch succeeded.
constexpr std::uint32_t kMemL3Offset = 0;

/// Code generator with symbolic labels.  Conditional jumps record the
/// label they target; resolve() converts them into the 8-bit relative
/// offsets of the final program.
class CodeGen {
 public:
  using Label = std::uint32_t;

  Label new_label() { return next_label_++; }

  void place(Label label) {
    if (label >= placed_.size()) placed_.resize(label + 1, kUnplaced);
    placed_[label] = static_cast<std::uint32_t>(insns_.size());
  }

  /// Emits a plain statement.
  void emit(std::uint16_t code, std::uint32_t k) {
    insns_.push_back(stmt(code, k));
    patches_.push_back({});
  }

  /// Emits a conditional jump whose true/false arms go to labels.
  void emit_branch(std::uint16_t code, std::uint32_t k, Label on_true,
                   Label on_false) {
    insns_.push_back(jump(code, k, 0, 0));
    patches_.push_back(Patch{on_true, on_false, true});
  }

  /// Emits an unconditional jump to `target` (encoded as JA).
  void emit_jump(Label target) {
    insns_.push_back(stmt(kClassJmp | kJmpJa, 0));
    patches_.push_back(Patch{target, target, false});
  }

  [[nodiscard]] Program resolve() {
    for (std::size_t pc = 0; pc < insns_.size(); ++pc) {
      const Patch& patch = patches_[pc];
      if (!patch.conditional && patch.on_true == kNoLabel) continue;
      const auto resolve_to = [&](Label label) -> std::uint32_t {
        const std::uint32_t target = placed_.at(label);
        if (target == kUnplaced) {
          throw std::logic_error("bpf codegen: unplaced label");
        }
        if (target <= pc) {
          throw std::logic_error("bpf codegen: backward jump");
        }
        return target - static_cast<std::uint32_t>(pc) - 1;
      };
      if (patch.conditional) {
        const std::uint32_t jt = resolve_to(patch.on_true);
        const std::uint32_t jf = resolve_to(patch.on_false);
        if (jt > 255 || jf > 255) {
          throw std::invalid_argument(
              "bpf codegen: filter too complex (jump offset > 255)");
        }
        insns_[pc].jt = static_cast<std::uint8_t>(jt);
        insns_[pc].jf = static_cast<std::uint8_t>(jf);
      } else {
        insns_[pc].k = resolve_to(patch.on_true);
      }
    }
    return insns_;
  }

 private:
  static constexpr std::uint32_t kUnplaced = 0xFFFFFFFF;
  static constexpr Label kNoLabel = 0xFFFFFFFF;

  struct Patch {
    Label on_true = kNoLabel;
    Label on_false = kNoLabel;
    bool conditional = false;
  };

  std::vector<Insn> insns_;
  std::vector<Patch> patches_;
  std::vector<std::uint32_t> placed_;
  Label next_label_ = 0;
};

/// Facts established on the true-path of already-generated code, used
/// for common-subexpression elimination: inside an AND chain, once the
/// left operand has proven the frame is IPv4 (leaving the L3 offset in
/// M[0]), the right operand's primitives can skip their own ethertype
/// dispatch and reload X from M[0] instead (the same elimination
/// tcpdump's optimizer performs).
struct KnownFacts {
  bool ipv4 = false;
};

class Compiler {
 public:
  explicit Compiler(std::uint32_t accept_len) : accept_len_(accept_len) {}

  Program run(const Expr* expr) {
    if (expr == nullptr) {
      return Program{stmt(kClassRet | kRetK, accept_len_)};
    }
    const auto accept = gen_.new_label();
    const auto reject = gen_.new_label();
    gen_expr(*expr, accept, reject, KnownFacts{});
    gen_.place(accept);
    gen_.emit(kClassRet | kRetK, accept_len_);
    gen_.place(reject);
    gen_.emit(kClassRet | kRetK, 0);
    Program program = gen_.resolve();
    if (const auto result = verify(program); !result.ok) {
      throw std::logic_error("bpf codegen produced invalid program: " +
                             result.error);
    }
    return program;
  }

 private:
  using Label = CodeGen::Label;

  /// True when `expr` being satisfied proves the frame is IPv4 with the
  /// L3 offset in M[0] (so an AND-sibling generated afterwards may omit
  /// its ethertype dispatch).
  [[nodiscard]] static bool establishes_ipv4(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kAnd:
        return establishes_ipv4(*expr.lhs) || establishes_ipv4(*expr.rhs);
      case ExprKind::kOr:
        return establishes_ipv4(*expr.lhs) && establishes_ipv4(*expr.rhs);
      case ExprKind::kNot:
        return false;
      case ExprKind::kPrimitive:
        switch (expr.prim.kind) {
          case PrimitiveKind::kProtoIp:
          case PrimitiveKind::kProtoTcp:
          case PrimitiveKind::kProtoUdp:
          case PrimitiveKind::kProtoIcmp:
          case PrimitiveKind::kHost:
          case PrimitiveKind::kNet:
          case PrimitiveKind::kPort:
          case PrimitiveKind::kPortRange:
            return true;
          default:
            return false;
        }
    }
    return false;
  }

  void gen_expr(const Expr& expr, Label on_true, Label on_false,
                KnownFacts facts) {
    switch (expr.kind) {
      case ExprKind::kAnd: {
        const auto mid = gen_.new_label();
        gen_expr(*expr.lhs, mid, on_false, facts);
        gen_.place(mid);
        // The right operand only runs when the left matched, so any fact
        // the left establishes holds here.
        KnownFacts rhs_facts = facts;
        rhs_facts.ipv4 = rhs_facts.ipv4 || establishes_ipv4(*expr.lhs);
        gen_expr(*expr.rhs, on_true, on_false, rhs_facts);
        return;
      }
      case ExprKind::kOr: {
        const auto mid = gen_.new_label();
        gen_expr(*expr.lhs, on_true, mid, facts);
        gen_.place(mid);
        // The right operand runs when the left *failed*: a failed check
        // proves nothing, so only inherited facts survive.
        gen_expr(*expr.rhs, on_true, on_false, facts);
        return;
      }
      case ExprKind::kNot:
        gen_expr(*expr.lhs, on_false, on_true, facts);
        return;
      case ExprKind::kPrimitive:
        gen_primitive(expr.prim, on_true, on_false, facts);
        return;
    }
  }

  /// Branches to on_false unless the frame carries IPv4 — either
  /// directly (ethertype 0x0800 at 12, L3 at 14) or behind exactly one
  /// 802.1Q tag (0x8100 at 12, inner ethertype 0x0800 at 16, L3 at 18).
  /// On the fall-through path X and M[0] hold the L3 offset.  When the
  /// fact is already established only X needs restoring (a preceding
  /// port primitive leaves X pointing at L4).
  void require_ipv4(Label on_false, const KnownFacts& facts) {
    if (facts.ipv4) {
      gen_.emit(kClassLdx | kSizeW | kModeMem, kMemL3Offset);
      return;
    }
    const auto check_vlan = gen_.new_label();
    const auto vlan_tag = gen_.new_label();
    const auto tagged = gen_.new_label();
    const auto plain = gen_.new_label();
    const auto join = gen_.new_label();
    gen_.emit(kClassLd | kSizeH | kModeAbs, kOffEtherType);
    gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, net::kEtherTypeIpv4, plain,
                     check_vlan);
    gen_.place(check_vlan);
    gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, net::kEtherTypeVlan,
                     vlan_tag, on_false);
    gen_.place(vlan_tag);
    gen_.emit(kClassLd | kSizeH | kModeAbs, kOffInnerEtherType);
    gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, net::kEtherTypeIpv4, tagged,
                     on_false);
    gen_.place(tagged);
    gen_.emit(kClassLd | kSizeW | kModeImm, kL3Vlan);
    gen_.emit_jump(join);
    gen_.place(plain);
    gen_.emit(kClassLd | kSizeW | kModeImm, kL3Plain);
    gen_.place(join);
    gen_.emit(kClassSt, kMemL3Offset);
    gen_.emit(kClassMisc | kMiscTax, 0);
  }

  void gen_primitive(const Primitive& p, Label on_true, Label on_false,
                     const KnownFacts& facts) {
    switch (p.kind) {
      case PrimitiveKind::kProtoIp: {
        if (facts.ipv4) {
          gen_.emit_jump(on_true);
          return;
        }
        require_ipv4(on_false, facts);
        gen_.emit_jump(on_true);
        return;
      }
      case PrimitiveKind::kProtoIp6: {
        // Same single-tag descent as IPv4, but no offset is recorded:
        // no other primitive consumes an IPv6 L3 offset.
        const auto check_vlan = gen_.new_label();
        const auto vlan_tag = gen_.new_label();
        gen_.emit(kClassLd | kSizeH | kModeAbs, kOffEtherType);
        gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, net::kEtherTypeIpv6,
                         on_true, check_vlan);
        gen_.place(check_vlan);
        gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, net::kEtherTypeVlan,
                         vlan_tag, on_false);
        gen_.place(vlan_tag);
        gen_.emit(kClassLd | kSizeH | kModeAbs, kOffInnerEtherType);
        gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, net::kEtherTypeIpv6,
                         on_true, on_false);
        return;
      }
      case PrimitiveKind::kVlan: {
        const auto tagged = gen_.new_label();
        gen_.emit(kClassLd | kSizeH | kModeAbs, kOffEtherType);
        gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, net::kEtherTypeVlan,
                         tagged, on_false);
        gen_.place(tagged);
        if (!p.has_vlan_id) {
          gen_.emit_jump(on_true);
          return;
        }
        // TCI at frame offset 14; VID is the low 12 bits.
        gen_.emit(kClassLd | kSizeH | kModeAbs, kOffVlanTci);
        gen_.emit(kClassAlu | kAluAnd | kSrcK, 0x0FFF);
        gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, p.vlan_id, on_true,
                         on_false);
        return;
      }
      case PrimitiveKind::kProtoTcp:
        gen_proto(static_cast<std::uint8_t>(net::IpProto::kTcp), on_true,
                  on_false, facts);
        return;
      case PrimitiveKind::kProtoUdp:
        gen_proto(static_cast<std::uint8_t>(net::IpProto::kUdp), on_true,
                  on_false, facts);
        return;
      case PrimitiveKind::kProtoIcmp:
        gen_proto(static_cast<std::uint8_t>(net::IpProto::kIcmp), on_true,
                  on_false, facts);
        return;
      case PrimitiveKind::kHost:
        gen_addr_match(p.addr.value(), 0xFFFFFFFFu, p.dir, on_true, on_false,
                       facts);
        return;
      case PrimitiveKind::kNet: {
        const std::uint32_t mask =
            p.prefix_len == 0
                ? 0
                : (p.prefix_len >= 32 ? 0xFFFFFFFFu
                                      : ~((1u << (32 - p.prefix_len)) - 1));
        gen_addr_match(p.addr.value() & mask, mask, p.dir, on_true, on_false,
                       facts);
        return;
      }
      case PrimitiveKind::kPort:
        gen_port(p.port, p.port, p.dir, on_true, on_false, facts);
        return;
      case PrimitiveKind::kPortRange:
        gen_port(p.port, p.port_hi, p.dir, on_true, on_false, facts);
        return;
      case PrimitiveKind::kLenLe: {
        gen_.emit(kClassLd | kSizeW | kModeLen, 0);
        // len <= k  <=>  !(len > k)
        gen_.emit_branch(kClassJmp | kJmpJgt | kSrcK, p.length, on_false,
                         on_true);
        return;
      }
      case PrimitiveKind::kLenGe: {
        gen_.emit(kClassLd | kSizeW | kModeLen, 0);
        gen_.emit_branch(kClassJmp | kJmpJge | kSrcK, p.length, on_true,
                         on_false);
        return;
      }
    }
  }

  void gen_proto(std::uint8_t proto, Label on_true, Label on_false,
                 const KnownFacts& facts) {
    require_ipv4(on_false, facts);
    gen_.emit(kClassLd | kSizeB | kModeInd, kRelIpProto);
    gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, proto, on_true, on_false);
  }

  void gen_addr_match(std::uint32_t value, std::uint32_t mask, Direction dir,
                      Label on_true, Label on_false,
                      const KnownFacts& facts) {
    require_ipv4(on_false, facts);
    const auto test_one = [&](std::uint32_t offset, Label match_true,
                              Label match_false) {
      gen_.emit(kClassLd | kSizeW | kModeInd, offset);
      if (mask != 0xFFFFFFFFu) {
        gen_.emit(kClassAlu | kAluAnd | kSrcK, mask);
      }
      gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, value, match_true,
                       match_false);
    };
    switch (dir) {
      case Direction::kSrc:
        test_one(kRelIpSrc, on_true, on_false);
        return;
      case Direction::kDst:
        test_one(kRelIpDst, on_true, on_false);
        return;
      case Direction::kEither: {
        const auto try_dst = gen_.new_label();
        test_one(kRelIpSrc, on_true, try_dst);
        gen_.place(try_dst);
        test_one(kRelIpDst, on_true, on_false);
        return;
      }
    }
  }

  void gen_port(std::uint16_t lo, std::uint16_t hi, Direction dir,
                Label on_true, Label on_false, const KnownFacts& facts) {
    require_ipv4(on_false, facts);
    // Protocol must be TCP or UDP.
    const auto proto_ok = gen_.new_label();
    const auto try_udp = gen_.new_label();
    gen_.emit(kClassLd | kSizeB | kModeInd, kRelIpProto);
    gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK,
                     static_cast<std::uint8_t>(net::IpProto::kTcp), proto_ok,
                     try_udp);
    gen_.place(try_udp);
    gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK,
                     static_cast<std::uint8_t>(net::IpProto::kUdp), proto_ok,
                     on_false);
    gen_.place(proto_ok);
    // Reject fragments with a nonzero offset: ports live in the first
    // fragment only.
    const auto not_fragment = gen_.new_label();
    gen_.emit(kClassLd | kSizeH | kModeInd, kRelIpFrag);
    gen_.emit_branch(kClassJmp | kJmpJset | kSrcK, 0x1FFF, on_false,
                     not_fragment);
    gen_.place(not_fragment);
    // X <- L3 offset + 4*IHL (the L4 offset); MSH can't be used here
    // because the IP header no longer sits at a fixed frame offset.
    gen_.emit(kClassLd | kSizeB | kModeInd, 0);
    gen_.emit(kClassAlu | kAluAnd | kSrcK, 0x0F);
    gen_.emit(kClassAlu | kAluLsh | kSrcK, 2);
    gen_.emit(kClassAlu | kAluAdd | kSrcX, 0);
    gen_.emit(kClassMisc | kMiscTax, 0);
    // Tests A against [lo, hi]; equality when lo == hi.
    const auto test_in_range = [&](std::uint32_t offset, Label match,
                                   Label no_match) {
      gen_.emit(kClassLd | kSizeH | kModeInd, offset);
      if (lo == hi) {
        gen_.emit_branch(kClassJmp | kJmpJeq | kSrcK, lo, match, no_match);
        return;
      }
      const auto check_hi = gen_.new_label();
      gen_.emit_branch(kClassJmp | kJmpJge | kSrcK, lo, check_hi, no_match);
      gen_.place(check_hi);
      // A <= hi  <=>  !(A > hi)
      gen_.emit_branch(kClassJmp | kJmpJgt | kSrcK, hi, no_match, match);
    };
    switch (dir) {
      case Direction::kSrc:
        test_in_range(0, on_true, on_false);
        return;
      case Direction::kDst:
        test_in_range(2, on_true, on_false);
        return;
      case Direction::kEither: {
        const auto try_dst = gen_.new_label();
        test_in_range(0, on_true, try_dst);
        gen_.place(try_dst);
        test_in_range(2, on_true, on_false);
        return;
      }
    }
  }

  CodeGen gen_;
  std::uint32_t accept_len_;
};

}  // namespace

Program compile(const Expr* expr, std::uint32_t accept_len) {
  Compiler compiler{accept_len};
  return compiler.run(expr);
}

Program compile_filter(std::string_view text, std::uint32_t accept_len) {
  const ExprPtr expr = parse_filter(text);
  return compile(expr.get(), accept_len);
}

}  // namespace wirecap::bpf
