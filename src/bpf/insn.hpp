// Classic BPF (cBPF) instruction set, as defined by McCanne & Jacobson's
// "The BSD Packet Filter" and implemented by the Linux socket filter.
//
// An instruction is {code, jt, jf, k}: a 16-bit opcode, two 8-bit
// relative forward jump offsets for conditional jumps, and a 32-bit
// immediate.  The opcode is composed of a class, a size/mode (for loads)
// or operation/source (for ALU and jumps).
#pragma once

#include <cstdint>
#include <vector>

namespace wirecap::bpf {

// --- instruction classes (low 3 bits) ---
inline constexpr std::uint16_t kClassLd = 0x00;
inline constexpr std::uint16_t kClassLdx = 0x01;
inline constexpr std::uint16_t kClassSt = 0x02;
inline constexpr std::uint16_t kClassStx = 0x03;
inline constexpr std::uint16_t kClassAlu = 0x04;
inline constexpr std::uint16_t kClassJmp = 0x05;
inline constexpr std::uint16_t kClassRet = 0x06;
inline constexpr std::uint16_t kClassMisc = 0x07;

// --- load sizes (bits 3-4) ---
inline constexpr std::uint16_t kSizeW = 0x00;  // 32-bit word
inline constexpr std::uint16_t kSizeH = 0x08;  // 16-bit half
inline constexpr std::uint16_t kSizeB = 0x10;  // 8-bit byte

// --- load modes (bits 5-7) ---
inline constexpr std::uint16_t kModeImm = 0x00;
inline constexpr std::uint16_t kModeAbs = 0x20;
inline constexpr std::uint16_t kModeInd = 0x40;
inline constexpr std::uint16_t kModeMem = 0x60;
inline constexpr std::uint16_t kModeLen = 0x80;
inline constexpr std::uint16_t kModeMsh = 0xA0;  // 4 * (pkt[k] & 0x0F), LDX B only

// --- ALU/JMP operations (bits 4-7) ---
inline constexpr std::uint16_t kAluAdd = 0x00;
inline constexpr std::uint16_t kAluSub = 0x10;
inline constexpr std::uint16_t kAluMul = 0x20;
inline constexpr std::uint16_t kAluDiv = 0x30;
inline constexpr std::uint16_t kAluOr = 0x40;
inline constexpr std::uint16_t kAluAnd = 0x50;
inline constexpr std::uint16_t kAluLsh = 0x60;
inline constexpr std::uint16_t kAluRsh = 0x70;
inline constexpr std::uint16_t kAluNeg = 0x80;
inline constexpr std::uint16_t kAluMod = 0x90;
inline constexpr std::uint16_t kAluXor = 0xA0;

inline constexpr std::uint16_t kJmpJa = 0x00;
inline constexpr std::uint16_t kJmpJeq = 0x10;
inline constexpr std::uint16_t kJmpJgt = 0x20;
inline constexpr std::uint16_t kJmpJge = 0x30;
inline constexpr std::uint16_t kJmpJset = 0x40;

// --- operand source (bit 3) for ALU/JMP ---
inline constexpr std::uint16_t kSrcK = 0x00;
inline constexpr std::uint16_t kSrcX = 0x08;

// --- RET sources (bits 3-4) ---
inline constexpr std::uint16_t kRetK = 0x00;
inline constexpr std::uint16_t kRetA = 0x10;

// --- MISC ops ---
inline constexpr std::uint16_t kMiscTax = 0x00;
inline constexpr std::uint16_t kMiscTxa = 0x80;

/// Number of scratch memory slots (matches the BSD/Linux implementation).
inline constexpr std::uint32_t kMemSlots = 16;

struct Insn {
  std::uint16_t code = 0;
  std::uint8_t jt = 0;
  std::uint8_t jf = 0;
  std::uint32_t k = 0;

  constexpr bool operator==(const Insn&) const = default;
};

using Program = std::vector<Insn>;

/// Convenience constructors mirroring the classic BPF_STMT / BPF_JUMP
/// macros.
[[nodiscard]] constexpr Insn stmt(std::uint16_t code, std::uint32_t k) {
  return Insn{code, 0, 0, k};
}
[[nodiscard]] constexpr Insn jump(std::uint16_t code, std::uint32_t k,
                                  std::uint8_t jt, std::uint8_t jf) {
  return Insn{code, jt, jf, k};
}

[[nodiscard]] constexpr std::uint16_t insn_class(std::uint16_t code) {
  return code & 0x07;
}
[[nodiscard]] constexpr std::uint16_t insn_size(std::uint16_t code) {
  return code & 0x18;
}
[[nodiscard]] constexpr std::uint16_t insn_mode(std::uint16_t code) {
  return code & 0xE0;
}
[[nodiscard]] constexpr std::uint16_t insn_op(std::uint16_t code) {
  return code & 0xF0;
}
[[nodiscard]] constexpr std::uint16_t insn_src(std::uint16_t code) {
  return code & 0x08;
}

}  // namespace wirecap::bpf
