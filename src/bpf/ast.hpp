// Abstract syntax tree for the filter expression language — a practical
// subset of tcpdump/libpcap syntax sufficient for the paper's filters
// (e.g. "131.225.2 and udp") and the examples.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/flow.hpp"

namespace wirecap::bpf {

enum class Direction : std::uint8_t { kEither, kSrc, kDst };

enum class PrimitiveKind : std::uint8_t {
  kProtoIp,    // any IPv4 packet
  kProtoIp6,   // any IPv6 packet
  kProtoTcp,
  kProtoUdp,
  kProtoIcmp,
  kVlan,       // 802.1Q tagged (optionally a specific VID)
  kHost,       // IPv4 address equality (with direction)
  kNet,        // IPv4 prefix match (with direction)
  kPort,       // TCP or UDP port (with direction)
  kPortRange,  // TCP or UDP port within [port, port_hi] (with direction)
  kLenLe,      // wire length <= k
  kLenGe,      // wire length >= k
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Primitive {
  PrimitiveKind kind{};
  Direction dir = Direction::kEither;
  net::Ipv4Addr addr{};       // kHost / kNet
  unsigned prefix_len = 32;   // kNet
  std::uint16_t port = 0;     // kPort / kPortRange (lower bound)
  std::uint16_t port_hi = 0;  // kPortRange (upper bound)
  std::uint32_t length = 0;   // kLenLe / kLenGe
  std::uint16_t vlan_id = 0;  // kVlan (when has_vlan_id)
  bool has_vlan_id = false;   // kVlan
};

enum class ExprKind : std::uint8_t { kAnd, kOr, kNot, kPrimitive };

struct Expr {
  ExprKind kind{};
  ExprPtr lhs;       // kAnd / kOr / kNot (kNot uses lhs only)
  ExprPtr rhs;       // kAnd / kOr
  Primitive prim{};  // kPrimitive

  [[nodiscard]] static ExprPtr make_and(ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAnd;
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    return e;
  }
  [[nodiscard]] static ExprPtr make_or(ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kOr;
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    return e;
  }
  [[nodiscard]] static ExprPtr make_not(ExprPtr a) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kNot;
    e->lhs = std::move(a);
    return e;
  }
  [[nodiscard]] static ExprPtr make_primitive(Primitive p) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kPrimitive;
    e->prim = p;
    return e;
  }
};

/// Renders the AST back to filter syntax (for diagnostics and tests).
[[nodiscard]] std::string to_string(const Expr& expr);

}  // namespace wirecap::bpf
