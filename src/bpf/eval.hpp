// Reference evaluator: interprets the filter AST directly against parsed
// protocol headers, with no BPF machinery involved.  Property tests
// compare compile()+run() against this oracle over randomized packets.
#pragma once

#include <cstddef>
#include <span>

#include "bpf/ast.hpp"

namespace wirecap::bpf {

/// True when `frame` (with original on-wire length `wire_len`) satisfies
/// `expr`.  A null expr matches everything.
[[nodiscard]] bool evaluate(const Expr* expr, std::span<const std::byte> frame,
                            std::uint32_t wire_len);

}  // namespace wirecap::bpf
