// Lexer and recursive-descent parser for the filter expression language.
//
// Grammar (tcpdump-compatible subset):
//
//   expr     := term (("or" | "||") term)*
//   term     := factor (("and" | "&&")? factor)*      -- juxtaposition = and
//   factor   := ("not" | "!") factor | "(" expr ")" | primitive
//   primitive:= proto
//             | dir? "host" ADDR
//             | dir? "net" PREFIX ("/" NUM)?
//             | dir? "port" NUM
//             | "len" ("<=" | ">=") NUM
//             | PREFIX            -- bare address/prefix shorthand, as in
//                                    the paper's filter "131.225.2 and UDP"
//   proto    := "ip" | "tcp" | "udp" | "icmp"
//   dir      := "src" | "dst"
//
// ADDR is a dotted quad; PREFIX is 1-4 dotted octets (1-3 octets imply a
// /8, /16, /24 network).  Keywords are case-insensitive ("UDP" works).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "bpf/ast.hpp"

namespace wirecap::bpf {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses a filter expression.  An empty (or all-whitespace) expression
/// yields nullptr, meaning "match everything" — the libpcap convention.
/// Throws ParseError on malformed input.
[[nodiscard]] ExprPtr parse_filter(std::string_view text);

}  // namespace wirecap::bpf
