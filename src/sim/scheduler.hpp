// Deterministic discrete-event scheduler.
//
// Every experiment in this reproduction runs on virtual time: packet
// arrivals, DMA completions, capture-thread polls and application
// processing are all events ordered by (timestamp, insertion sequence).
// Ties are broken by insertion order, so runs are bit-for-bit repeatable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace wirecap::sim {

/// Handle for a scheduled event; allows cancellation (e.g. a blocking
/// capture whose timeout is pre-empted by packet arrival).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Safe to call repeatedly
  /// or on a default-constructed handle.
  void cancel() {
    if (auto alive = alive_.lock()) *alive = false;
  }

  [[nodiscard]] bool pending() const {
    auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  friend class Scheduler;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}

  std::weak_ptr<bool> alive_;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (>= now).
  EventHandle schedule_at(Nanos when, Callback fn);

  /// Schedules `fn` after a relative delay (>= 0).
  EventHandle schedule_after(Nanos delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty.  Returns the number executed.
  std::uint64_t run();

  /// Runs events with timestamps <= `deadline`; afterwards now() ==
  /// max(now, deadline).  Returns the number executed.
  std::uint64_t run_until(Nanos deadline);

  /// Executes the single next event, if any.  Returns false when empty.
  bool step();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Nanos when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Nanos now_ = Nanos::zero();
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace wirecap::sim
