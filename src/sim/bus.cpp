#include "sim/bus.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace wirecap::sim {

IoBus::IoBus(Scheduler& scheduler, Rate capacity)
    : scheduler_(scheduler), capacity_(capacity) {}

void IoBus::issue(double transactions, std::function<void()> done) {
  if (transactions < 0.0) {
    throw std::invalid_argument("IoBus: negative transaction count");
  }
  total_ += transactions;
  if (unconstrained()) {
    // Infinitely fast bus: complete synchronously.  Callers are written
    // to tolerate the callback running inside issue() — this removes one
    // scheduled event per packet on the (common) unconstrained path.
    done();
    return;
  }
  const Nanos service = Nanos::from_seconds(transactions / capacity_.per_second());
  const Nanos start = std::max(scheduler_.now(), busy_until_);
  busy_until_ = start + service;
  scheduler_.schedule_at(busy_until_, std::move(done));
}

Nanos IoBus::current_backlog_delay() const {
  if (unconstrained()) return Nanos::zero();
  const Nanos now = scheduler_.now();
  return busy_until_ > now ? busy_until_ - now : Nanos::zero();
}

}  // namespace wirecap::sim
