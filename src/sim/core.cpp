#include "sim/core.hpp"

#include <stdexcept>
#include <utility>

namespace wirecap::sim {

SimCore::SimCore(Scheduler& scheduler, std::uint32_t id, double speed_ghz)
    : scheduler_(scheduler), id_(id), speed_scale_(2.4 / speed_ghz) {
  if (speed_ghz <= 0.0) {
    throw std::invalid_argument("SimCore: speed must be positive");
  }
}

void SimCore::submit(WorkPriority priority, Nanos cost,
                     std::function<void()> done) {
  if (cost.count() < 0) {
    throw std::invalid_argument("SimCore: negative work cost");
  }
  auto& queue = priority == WorkPriority::kKernel ? kernel_queue_ : user_queue_;
  queue.push_back(WorkItem{cost, std::move(done)});
  if (!running_) start_next();
}

void SimCore::start_next() {
  WorkItem item = [&] {
    if (!kernel_queue_.empty()) {
      WorkItem front = std::move(kernel_queue_.front());
      kernel_queue_.pop_front();
      return front;
    }
    WorkItem front = std::move(user_queue_.front());
    user_queue_.pop_front();
    return front;
  }();

  running_ = true;
  const Nanos scaled{static_cast<std::int64_t>(
      static_cast<double>(item.cost.count()) * speed_scale_)};
  busy_time_ += scaled;
  scheduler_.schedule_after(scaled, [this, done = std::move(item.done)] {
    done();
    if (backlog() > 0) {
      start_next();
    } else {
      running_ = false;
    }
  });
}

double SimCore::utilization() const {
  const Nanos now = scheduler_.now();
  if (now.count() <= 0) return 0.0;
  return busy_time_.seconds() / now.seconds();
}

}  // namespace wirecap::sim
