// A shared I/O bus (PCIe + memory path) with finite transaction capacity.
//
// Figure 14 of the paper shows both DNA and WireCAP dropping packets once
// the two NICs together offer ~30 Mp/s of 64-byte packets: "the
// experiment system bus becomes saturated".  The bus model serializes
// transactions at a configurable rate; a DMA packet write is one
// transaction, and WireCAP's chunk attach/capture metadata operations add
// fractional extra transactions per packet, which is why WireCAP pays
// slightly more than DNA under saturation.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::sim {

class IoBus {
 public:
  /// `capacity` is the sustainable transaction rate.  A default-constructed
  /// bus is infinitely fast (experiments that do not study bus saturation
  /// leave it unconstrained).
  explicit IoBus(Scheduler& scheduler, Rate capacity = Rate{0.0});

  IoBus(const IoBus&) = delete;
  IoBus& operator=(const IoBus&) = delete;

  [[nodiscard]] bool unconstrained() const { return capacity_.is_zero(); }
  [[nodiscard]] Rate capacity() const { return capacity_; }

  /// Issues `transactions` bus transactions (may be fractional: metadata
  /// updates amortized over a chunk).  `done` fires when the last one has
  /// crossed the bus — synchronously inside this call when the bus is
  /// unconstrained, via the scheduler otherwise.  FIFO service discipline.
  void issue(double transactions, std::function<void()> done);

  /// Virtual time at which the bus becomes free.
  [[nodiscard]] Nanos busy_until() const { return busy_until_; }

  /// Total transactions issued, for reporting.
  [[nodiscard]] double total_transactions() const { return total_; }

  /// Current queueing delay a new transaction would experience.
  [[nodiscard]] Nanos current_backlog_delay() const;

 private:
  Scheduler& scheduler_;
  Rate capacity_;
  Nanos busy_until_ = Nanos::zero();
  double total_ = 0.0;
};

}  // namespace wirecap::sim
