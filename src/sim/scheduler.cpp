#include "sim/scheduler.hpp"

#include <stdexcept>

namespace wirecap::sim {

EventHandle Scheduler::schedule_at(Nanos when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{alive};
  queue_.push(Event{when, next_seq_++, std::move(fn), std::move(alive)});
  return handle;
}

std::uint64_t Scheduler::run() {
  std::uint64_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::uint64_t Scheduler::run_until(Nanos deadline) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (step()) ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied cheaply (shared
    // callback state) and popped before running so the callback may
    // schedule freely.
    Event event = queue_.top();
    queue_.pop();
    if (!*event.alive) continue;  // cancelled
    now_ = event.when;
    *event.alive = false;
    event.fn();
    return true;
  }
  return false;
}

}  // namespace wirecap::sim
