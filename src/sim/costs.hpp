// Calibrated per-operation CPU and bus costs.
//
// The paper pins down two absolute rates on its 2.4 GHz Intel E5-2690
// testbed, and every cost below is chosen to be consistent with them:
//
//   * pkt_handler with x = 300 BPF applications per packet sustains
//     38,844 packets/s  =>  total per-packet cost 25,744 ns.
//   * with x = 0, DNA / NETMAP / WireCAP capture 64-byte packets at the
//     10 GbE wire rate (14.88 Mp/s => 67.2 ns budget per packet) without
//     loss, while PF_RING drops: its kernel-side copy alone must exceed
//     the budget.
//
// Hence: app_base_cost + 300 * bpf_run_cost = 25,744 ns with
// app_base_cost below 67 ns, and pf_ring_copy_cost above 67 ns.
#pragma once

#include "common/units.hpp"

namespace wirecap::sim {

struct CostModel {
  // --- application (user priority, runs on the app thread's core) ---

  /// Per-packet cost of the pcap-style read path: popping a packet from a
  /// capture queue / mapped ring, touching its header.  55 ns keeps a
  /// single core just above wire rate at x = 0.
  Nanos app_base_cost = Nanos{55};

  /// One application of the compiled BPF filter to one packet, in
  /// (fractional) nanoseconds.  300 applications at 85.63 ns plus the
  /// base cost gives exactly the paper's 38,844 p/s.
  double bpf_run_cost_ns = 85.63;

  /// Per-packet cost of forwarding (attach to a TX descriptor, metadata
  /// only — the packet body is not copied).  Low enough that a single
  /// core forwards 100-byte frames at wire rate (Fig. 14's lossless
  /// 100 B row).
  Nanos forward_attach_cost = Nanos{28};

  // --- Type-I engine (PF_RING): kernel priority on the app core ---

  /// NAPI softirq per-packet work (copy into the pf_ring buffer plus
  /// softirq and wakeup overhead that per-packet processing cannot
  /// amortize).  Far above the 67.2 ns wire-rate budget: PF_RING cannot
  /// capture 64-byte packets at wire speed, and because this work runs
  /// at kernel priority on the application's core it also starves the
  /// application (receive livelock) — the calibration behind PF_RING's
  /// 56.8% delivery-drop rate at queue 0 of Table 1.
  Nanos pfring_kernel_cost = Nanos{1800};

  /// Latency between packet arrival in an empty ring and the NAPI poll
  /// loop starting to service it (interrupt + softirq scheduling).
  Nanos napi_wakeup_delay = Nanos::from_micros(60);

  /// Packets drained per NAPI poll invocation (the Linux NAPI "budget").
  unsigned napi_budget = 64;

  // --- Type-II engines (DNA / NETMAP): app-driven sync ---

  /// Per-packet amortized cost of the ring sync ioctl (descriptor
  /// reinitialization, batched).
  Nanos ring_sync_cost = Nanos{8};

  // --- WireCAP driver operations (run on the capture thread's core) ---

  /// One capture ioctl moving one full chunk to user space (metadata
  /// only).  Amortized per packet this is capture_chunk_cost / M.
  Nanos capture_chunk_cost = Nanos::from_micros(2.0);

  /// One recycle ioctl returning one chunk to the free pool.
  Nanos recycle_chunk_cost = Nanos::from_micros(0.5);

  /// Per-packet cost of the timeout path that copies a partially filled
  /// chunk into a free chunk.
  Nanos partial_copy_cost = Nanos{100};

  /// Polling interval of a WireCAP capture thread when its ring has no
  /// full chunk (also the blocking-capture timeout granularity).
  Nanos capture_poll_interval = Nanos::from_micros(50);

  /// Placing one chunk's metadata on a mutex+condvar capture queue:
  /// lock acquire, push, unlock, notify under light contention.
  Nanos mutex_handoff_cost = Nanos{150};

  /// Placing one chunk's metadata on the lock-free SPSC ring or steal
  /// inbox: a couple of uncontended atomics, no syscall, no futex.
  Nanos lockfree_handoff_cost = Nanos{25};

  /// Delay between a condvar notify and the blocked application thread
  /// actually running (futex wake + scheduler dispatch) — the queue-wait
  /// latency the lock-free path's poll-driven delivery avoids.
  Nanos condvar_wakeup_delay = Nanos::from_micros(2.0);

  /// Timeout after which a partially-filled chunk is copied out rather
  /// than held in the ring (the paper's "avoids holding packets in the
  /// receive ring for too long").
  Nanos partial_chunk_timeout = Nanos::from_millis(1.0);

  // --- NUMA placement (two-socket capture boxes) ---

  /// Extra capture-ioctl cost per chunk when the queue's capture thread
  /// (and its ring buffer pool) sit on a different socket than the NIC:
  /// the DMA'd descriptors and cell headers are read across the
  /// interconnect instead of from the local LLC.  ~0.3 µs/chunk keeps
  /// the per-packet penalty (÷M) around the measured 1-2 ns remote-read
  /// tax at M = 256 while making misplacement visible at small M.
  Nanos numa_remote_capture_cost = Nanos{300};

  /// Extra handoff cost per chunk when an offload target's socket
  /// differs from the dispatching queue's: the enqueue and the
  /// consumer's subsequent reads bounce cache lines across sockets.
  Nanos numa_remote_handoff_cost = Nanos{120};

  // --- capture-to-disk spool (src/store) ---

  /// Sustained simulated-disk cost per byte spooled (0.25 ns/B ≈ 4 GB/s,
  /// a modern NVMe stream).  The spool's slow-disk fault multiplies it.
  double disk_write_ns_per_byte = 0.25;

  /// Fixed per-chunk submission overhead of one spool write (syscall /
  /// queued-IO doorbell, amortized over the chunk's M packets).
  Nanos disk_write_op_cost = Nanos::from_micros(2.0);

  /// Cost of rotating a spool segment: finalize the footer index, fsync,
  /// open the successor.
  Nanos disk_segment_rotate_cost = Nanos::from_micros(50.0);

  /// How long a shard whose disk reported full waits before retrying.
  Nanos disk_full_retry_interval = Nanos::from_micros(100.0);

  /// Outstanding spool writes the simulated disk accepts before a shard
  /// stops submitting (NVMe-style queued IO).  At depth N the fixed
  /// disk_write_op_cost completion latency of up to N chunks overlaps;
  /// depth 1 reproduces the old synchronous one-write-at-a-time drain.
  unsigned disk_queue_depth = 4;

  /// Extra per-packet submission cost of the packet-at-a-time drain (one
  /// write call per packet).  The vectored gather path pays it once per
  /// chunk instead — the writev()-vs-write() gap this model exposes.
  Nanos disk_packet_write_cost = Nanos{600};

  // --- bus transactions (dimensionless multipliers of one DMA write) ---

  /// A packet DMA'd from the NIC to host memory: one transaction.
  double dma_transactions_per_packet = 1.0;

  /// WireCAP's extra bus traffic per packet (chunk attach + capture
  /// metadata, amortized over M packets plus pool-management accesses).
  double wirecap_extra_transactions_per_packet = 0.08;

  /// Extra per-packet bus cost modelling page-table pressure when very
  /// large ring-buffer pools are configured (the paper's "big-memory
  /// application pays a high cost for page-based virtual memory",
  /// Fig. 14 WireCAP-A-(256,500) at 5-6 queues/NIC).  Applied per MiB of
  /// total pool memory beyond a working-set knee; see bench_fig14.
  double memory_pressure_transactions_per_mib = 1e-4;

  /// Returns the per-packet cost of one pkt_handler iteration at BPF
  /// repetition count x.
  [[nodiscard]] constexpr Nanos pkt_handler_cost(unsigned x) const {
    const double bpf_total = static_cast<double>(x) * bpf_run_cost_ns;
    return app_base_cost + Nanos{static_cast<std::int64_t>(bpf_total + 0.5)};
  }
};

/// The reference rate the paper reports for x = 300 at 2.4 GHz.
inline constexpr double kPaperPktHandlerRate300 = 38844.0;

/// 10 GbE wire rate for 64-byte frames (packets per second).
inline constexpr double kWireRate64B = 14'880'952.0;

}  // namespace wirecap::sim
