// A simulated CPU core.
//
// A core executes work items serially.  Each item carries a cost in
// virtual nanoseconds and a priority: kKernel work (NAPI polling, softirq
// packet copies) runs ahead of kUser work (application packet
// processing), exactly as softirq context pre-empts user context in
// Linux.  This asymmetry is what reproduces PF_RING's receive-livelock
// behaviour in Table 1: at high arrival rates the per-packet kernel copy
// work monopolizes the core and the user-space consumer starves.
//
// Scheduling is non-pre-emptive at item granularity (an item in progress
// finishes), which matches per-packet softirq work being short.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/units.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::sim {

enum class WorkPriority : std::uint8_t { kKernel = 0, kUser = 1 };

class SimCore {
 public:
  /// `id` names the core in logs and stats; `speed_ghz` scales all costs
  /// (costs are calibrated at 2.4 GHz, the paper's CPU frequency).
  SimCore(Scheduler& scheduler, std::uint32_t id, double speed_ghz = 2.4);

  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// Submits a work item costing `cost` (at 2.4 GHz reference speed) and
  /// invokes `done` when it completes.  Items of equal priority run FIFO.
  void submit(WorkPriority priority, Nanos cost, std::function<void()> done);

  /// Total busy virtual time accumulated, for utilization reporting.
  [[nodiscard]] Nanos busy_time() const { return busy_time_; }

  /// Work items currently queued (not yet started).
  [[nodiscard]] std::size_t backlog() const {
    return kernel_queue_.size() + user_queue_.size();
  }

  [[nodiscard]] bool idle() const { return !running_ && backlog() == 0; }

  /// Utilization in [0,1] over the window [0, now].
  [[nodiscard]] double utilization() const;

 private:
  struct WorkItem {
    Nanos cost;
    std::function<void()> done;
  };

  void start_next();

  Scheduler& scheduler_;
  std::uint32_t id_;
  double speed_scale_;  // reference 2.4 GHz / actual speed
  std::deque<WorkItem> kernel_queue_;
  std::deque<WorkItem> user_queue_;
  bool running_ = false;
  Nanos busy_time_ = Nanos::zero();
};

}  // namespace wirecap::sim
