// Time-ordered reader over a spool directory.
//
// A spool run leaves N shards × M segments of pcapng, each ending in a
// footer index.  Shard streams are NOT timestamp-sorted (buddy-group
// offloading interleaves chunks captured on other queues), so the
// reader sorts each segment in memory and k-way-merges every segment
// cursor into one globally timestamp-ordered stream.  Ties are broken
// by (shard id, segment seq, record index): duplicate timestamps across
// shards come out in a stable, deterministic order.
//
// Queries carry an optional time range, an optional exact flow, and an
// optional BPF filter expression; the per-segment indexes prune
// segments that provably cannot match before any packet is read.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "net/flow.hpp"
#include "net/pcapng.hpp"
#include "store/segment_index.hpp"

namespace wirecap::store {

struct StoreQuery {
  /// Inclusive timestamp range; unset bounds are open.
  std::optional<Nanos> start;
  std::optional<Nanos> end;
  /// Exact 5-tuple; segments whose index rules the flow out are skipped.
  std::optional<net::FlowKey> flow;
  /// BPF filter expression (tcpdump syntax); empty matches everything.
  std::string filter;
};

struct StoreReadStats {
  std::uint64_t segments_total = 0;
  /// Segments never opened thanks to the footer index.
  std::uint64_t segments_skipped_time = 0;
  std::uint64_t segments_skipped_flow = 0;
  /// Segments skipped because the BPF filter pins a full 5-tuple that
  /// the index (exact tally or bloom) rules out.
  std::uint64_t segments_skipped_filter = 0;
  std::uint64_t packets_scanned = 0;
  std::uint64_t packets_matched = 0;
};

class StoreReader {
 public:
  /// Enumerates `dir` for shardNNN-segNNNNNN.pcapng files and loads
  /// their footer indexes.  A segment without a footer (writer died
  /// before finish()) gets an index synthesized by scanning its
  /// packets; a segment truncated mid-block (crash mid-write) yields
  /// its readable prefix.  Throws std::runtime_error if `dir` does not
  /// exist.
  explicit StoreReader(const std::filesystem::path& dir);

  /// Segments whose packet scan hit a truncated block (crash evidence);
  /// their readable prefix is still served.
  [[nodiscard]] std::uint64_t truncated_segments() const {
    return truncated_segments_;
  }

  /// Segment catalogue, ordered by (shard id, segment seq).
  [[nodiscard]] const std::vector<SegmentIndex>& segments() const {
    return segments_;
  }

  /// Streams every matching record in global timestamp order through
  /// `fn` (second argument: owning shard id).  Returns skip/scan stats.
  StoreReadStats read_merged(
      const StoreQuery& query,
      const std::function<void(const net::PcapngRecord&, std::uint32_t)>& fn)
      const;

  /// Convenience: collects the merged stream.
  [[nodiscard]] std::vector<net::PcapngRecord> read_all(
      const StoreQuery& query = {}) const;

 private:
  struct SegmentFile {
    std::filesystem::path path;
    SegmentIndex index;
  };

  std::vector<SegmentFile> files_;
  std::vector<SegmentIndex> segments_;
  std::uint64_t truncated_segments_ = 0;
};

}  // namespace wirecap::store
