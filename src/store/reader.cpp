#include "store/reader.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"
#include "net/headers.hpp"
#include "store/spool.hpp"

namespace wirecap::store {

StoreReader::StoreReader(const std::filesystem::path& dir) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("StoreReader: no such spool directory: " +
                             dir.string());
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const auto parsed = SegmentWriter::parse_segment_name(name);
    if (!parsed) continue;
    std::optional<SegmentIndex> index = read_segment_index(entry.path());
    if (!index) {
      // No footer (writer died before finish()): synthesize the index by
      // scanning the packets that did make it to disk.
      SegmentIndex synth;
      synth.shard_id = parsed->first;
      synth.segment_seq = parsed->second;
      net::PcapngReader reader(entry.path());
      while (const auto record = reader.next()) {
        ++synth.packet_count;
        synth.byte_count += record->data.size();
        synth.min_timestamp = std::min(synth.min_timestamp, record->timestamp);
        synth.max_timestamp = std::max(synth.max_timestamp, record->timestamp);
      }
      synth.unindexed_packets = synth.packet_count;
      index = synth;
    }
    files_.push_back(SegmentFile{entry.path(), *index});
  }
  std::sort(files_.begin(), files_.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              if (a.index.shard_id != b.index.shard_id) {
                return a.index.shard_id < b.index.shard_id;
              }
              return a.index.segment_seq < b.index.segment_seq;
            });
  segments_.reserve(files_.size());
  for (const SegmentFile& file : files_) segments_.push_back(file.index);
}

StoreReadStats StoreReader::read_merged(
    const StoreQuery& query,
    const std::function<void(const net::PcapngRecord&, std::uint32_t)>& fn)
    const {
  StoreReadStats stats;
  stats.segments_total = files_.size();

  std::optional<bpf::Program> program;
  if (!query.filter.empty()) program = bpf::compile_filter(query.filter);

  // One cursor per surviving segment; segments are loaded (and sorted)
  // lazily the first time the merge needs their earliest record.
  struct Cursor {
    const SegmentFile* file = nullptr;
    std::vector<net::PcapngRecord> records;
    std::size_t next = 0;
    bool loaded = false;
  };
  std::vector<Cursor> cursors;
  for (const SegmentFile& file : files_) {
    if (!file.index.overlaps(query.start, query.end)) {
      ++stats.segments_skipped_time;
      continue;
    }
    if (query.flow && !file.index.may_contain_flow(*query.flow)) {
      ++stats.segments_skipped_flow;
      continue;
    }
    cursors.push_back(Cursor{&file, {}, 0, false});
  }

  // Total merge order: (timestamp, shard id, segment seq); the record
  // index within a segment is implied by each cursor advancing in
  // sorted order.  stable_sort below preserves file order for equal
  // timestamps within one segment.
  struct HeapEntry {
    Nanos key;
    std::uint32_t shard_id;
    std::uint32_t segment_seq;
    std::size_t cursor;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.key != b.key) return a.key > b.key;
      if (a.shard_id != b.shard_id) return a.shard_id > b.shard_id;
      return a.segment_seq > b.segment_seq;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap;
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    const SegmentIndex& index = cursors[i].file->index;
    if (index.packet_count == 0) continue;
    heap.push(HeapEntry{index.min_timestamp, index.shard_id,
                        index.segment_seq, i});
  }

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    Cursor& cursor = cursors[top.cursor];
    if (!cursor.loaded) {
      net::PcapngReader reader(cursor.file->path);
      cursor.records = reader.read_all();
      std::stable_sort(cursor.records.begin(), cursor.records.end(),
                       [](const net::PcapngRecord& a,
                          const net::PcapngRecord& b) {
                         return a.timestamp < b.timestamp;
                       });
      cursor.loaded = true;
      if (cursor.records.empty()) continue;
      heap.push(HeapEntry{cursor.records.front().timestamp, top.shard_id,
                          top.segment_seq, top.cursor});
      continue;
    }

    const net::PcapngRecord& record = cursor.records[cursor.next];
    ++cursor.next;
    if (cursor.next < cursor.records.size()) {
      heap.push(HeapEntry{cursor.records[cursor.next].timestamp, top.shard_id,
                          top.segment_seq, top.cursor});
    }

    ++stats.packets_scanned;
    bool matches = true;
    if (query.start && record.timestamp < *query.start) matches = false;
    if (matches && query.end && record.timestamp > *query.end) matches = false;
    if (matches && query.flow) {
      matches = net::parse_flow(record.data) == *query.flow;
    }
    if (matches && program) {
      matches = bpf::run(*program, record.data, record.orig_len) != 0;
    }
    if (matches) {
      ++stats.packets_matched;
      fn(record, top.shard_id);
    }
    // Release a drained segment's records early: the merge holds at
    // most the segments whose time ranges currently overlap.
    if (cursor.next >= cursor.records.size()) {
      cursor.records.clear();
      cursor.records.shrink_to_fit();
    }
  }
  return stats;
}

std::vector<net::PcapngRecord> StoreReader::read_all(
    const StoreQuery& query) const {
  std::vector<net::PcapngRecord> records;
  read_merged(query, [&records](const net::PcapngRecord& record,
                                std::uint32_t /*shard*/) {
    records.push_back(record);
  });
  return records;
}

}  // namespace wirecap::store
