#include "store/reader.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "bpf/codegen.hpp"
#include "bpf/parser.hpp"
#include "bpf/vm.hpp"
#include "net/headers.hpp"
#include "store/spool.hpp"

namespace wirecap::store {

namespace {

/// Reads every EPB of `path`, tolerating a file truncated mid-block
/// (crash mid-write): the readable prefix is returned and `truncated`
/// set, instead of the PcapngReader's std::runtime_error propagating.
std::vector<net::PcapngRecord> read_records_tolerant(
    const std::filesystem::path& path, bool& truncated) {
  std::vector<net::PcapngRecord> records;
  try {
    net::PcapngReader reader(path);
    while (auto record = reader.next()) records.push_back(std::move(*record));
  } catch (const std::runtime_error&) {
    truncated = true;
  }
  return records;
}

/// The 5-tuple fields a conjunctive BPF filter pins to single values.
struct FlowPins {
  std::optional<net::Ipv4Addr> src_ip, dst_ip;
  std::optional<std::uint16_t> src_port, dst_port;
  std::optional<net::IpProto> proto;
  /// Two conjuncts pinned the same field to different values; the
  /// filter is unsatisfiable on that field, so pruning stays off (the
  /// per-record filter still decides).
  bool contradictory = false;
};

/// Walks AND-chains collecting primitives that any matching packet must
/// satisfy.  kOr / kNot subtrees pin nothing (their conjunct-level
/// truth does not force a field value), which keeps every pin a
/// necessary condition — the soundness requirement for segment
/// pruning.
void collect_pins(const bpf::Expr& expr, FlowPins& pins) {
  if (expr.kind == bpf::ExprKind::kAnd) {
    collect_pins(*expr.lhs, pins);
    collect_pins(*expr.rhs, pins);
    return;
  }
  if (expr.kind != bpf::ExprKind::kPrimitive) return;
  const bpf::Primitive& p = expr.prim;
  const auto pin = [&pins](auto& slot, auto value) {
    if (slot.has_value() && *slot != value) {
      pins.contradictory = true;
    } else {
      slot = value;
    }
  };
  switch (p.kind) {
    case bpf::PrimitiveKind::kHost:
      if (p.dir == bpf::Direction::kSrc) pin(pins.src_ip, p.addr);
      if (p.dir == bpf::Direction::kDst) pin(pins.dst_ip, p.addr);
      return;
    case bpf::PrimitiveKind::kPort:
      if (p.dir == bpf::Direction::kSrc) pin(pins.src_port, p.port);
      if (p.dir == bpf::Direction::kDst) pin(pins.dst_port, p.port);
      return;
    case bpf::PrimitiveKind::kPortRange:
      if (p.port != p.port_hi) return;  // a real range pins nothing
      if (p.dir == bpf::Direction::kSrc) pin(pins.src_port, p.port);
      if (p.dir == bpf::Direction::kDst) pin(pins.dst_port, p.port);
      return;
    case bpf::PrimitiveKind::kProtoTcp:
      pin(pins.proto, net::IpProto::kTcp);
      return;
    case bpf::PrimitiveKind::kProtoUdp:
      pin(pins.proto, net::IpProto::kUdp);
      return;
    default:
      return;
  }
}

/// When the filter pins src/dst host and src/dst port, every matching
/// packet's parsed flow is one of the returned keys (port primitives
/// only match TCP/UDP, so an unpinned proto leaves exactly those two
/// candidates) — and the segment index can rule whole segments out.
std::vector<net::FlowKey> filter_flow_candidates(const std::string& filter) {
  std::vector<net::FlowKey> candidates;
  if (filter.empty()) return candidates;
  bpf::ExprPtr ast;
  try {
    ast = bpf::parse_filter(filter);
  } catch (const bpf::ParseError&) {
    return candidates;  // compile_filter will report it properly
  }
  if (!ast) return candidates;
  FlowPins pins;
  collect_pins(*ast, pins);
  if (pins.contradictory || !pins.src_ip || !pins.dst_ip ||
      !pins.src_port || !pins.dst_port) {
    return candidates;
  }
  net::FlowKey key;
  key.src_ip = *pins.src_ip;
  key.dst_ip = *pins.dst_ip;
  key.src_port = *pins.src_port;
  key.dst_port = *pins.dst_port;
  if (pins.proto.has_value()) {
    key.proto = *pins.proto;
    candidates.push_back(key);
  } else {
    key.proto = net::IpProto::kTcp;
    candidates.push_back(key);
    key.proto = net::IpProto::kUdp;
    candidates.push_back(key);
  }
  return candidates;
}

}  // namespace

StoreReader::StoreReader(const std::filesystem::path& dir) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("StoreReader: no such spool directory: " +
                             dir.string());
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const auto parsed = SegmentWriter::parse_segment_name(name);
    if (!parsed) continue;
    std::optional<SegmentIndex> index = read_segment_index(entry.path());
    if (!index) {
      // No footer (writer died before finish()): synthesize the index
      // by scanning the packets that did make it to disk — including
      // the readable prefix of a file cut off mid-block.
      SegmentIndex synth;
      synth.shard_id = parsed->first;
      synth.segment_seq = parsed->second;
      bool truncated = false;
      for (const net::PcapngRecord& record :
           read_records_tolerant(entry.path(), truncated)) {
        ++synth.packet_count;
        synth.byte_count += record.data.size();
        synth.min_timestamp = std::min(synth.min_timestamp, record.timestamp);
        synth.max_timestamp = std::max(synth.max_timestamp, record.timestamp);
      }
      if (truncated) ++truncated_segments_;
      synth.unindexed_packets = synth.packet_count;
      index = synth;
    }
    files_.push_back(SegmentFile{entry.path(), *index});
  }
  std::sort(files_.begin(), files_.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              if (a.index.shard_id != b.index.shard_id) {
                return a.index.shard_id < b.index.shard_id;
              }
              return a.index.segment_seq < b.index.segment_seq;
            });
  segments_.reserve(files_.size());
  for (const SegmentFile& file : files_) segments_.push_back(file.index);
}

StoreReadStats StoreReader::read_merged(
    const StoreQuery& query,
    const std::function<void(const net::PcapngRecord&, std::uint32_t)>& fn)
    const {
  StoreReadStats stats;
  stats.segments_total = files_.size();

  std::optional<bpf::Program> program;
  if (!query.filter.empty()) program = bpf::compile_filter(query.filter);
  // A filter that pins a full 5-tuple prunes segments like an exact
  // flow query does.
  const std::vector<net::FlowKey> filter_flows =
      filter_flow_candidates(query.filter);

  // One cursor per surviving segment; segments are loaded (and sorted)
  // lazily the first time the merge needs their earliest record.
  struct Cursor {
    const SegmentFile* file = nullptr;
    std::vector<net::PcapngRecord> records;
    std::size_t next = 0;
    bool loaded = false;
  };
  std::vector<Cursor> cursors;
  for (const SegmentFile& file : files_) {
    if (!file.index.overlaps(query.start, query.end)) {
      ++stats.segments_skipped_time;
      continue;
    }
    if (query.flow && !file.index.may_contain_flow(*query.flow)) {
      ++stats.segments_skipped_flow;
      continue;
    }
    if (!filter_flows.empty()) {
      bool may = false;
      for (const net::FlowKey& key : filter_flows) {
        may = may || file.index.may_contain_flow(key);
      }
      if (!may) {
        ++stats.segments_skipped_filter;
        continue;
      }
    }
    cursors.push_back(Cursor{&file, {}, 0, false});
  }

  // Total merge order: (timestamp, shard id, segment seq); the record
  // index within a segment is implied by each cursor advancing in
  // sorted order.  stable_sort below preserves file order for equal
  // timestamps within one segment.
  struct HeapEntry {
    Nanos key;
    std::uint32_t shard_id;
    std::uint32_t segment_seq;
    std::size_t cursor;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.key != b.key) return a.key > b.key;
      if (a.shard_id != b.shard_id) return a.shard_id > b.shard_id;
      return a.segment_seq > b.segment_seq;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap;
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    const SegmentIndex& index = cursors[i].file->index;
    if (index.packet_count == 0) continue;
    heap.push(HeapEntry{index.min_timestamp, index.shard_id,
                        index.segment_seq, i});
  }

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    Cursor& cursor = cursors[top.cursor];
    if (!cursor.loaded) {
      bool truncated = false;
      cursor.records = read_records_tolerant(cursor.file->path, truncated);
      std::stable_sort(cursor.records.begin(), cursor.records.end(),
                       [](const net::PcapngRecord& a,
                          const net::PcapngRecord& b) {
                         return a.timestamp < b.timestamp;
                       });
      cursor.loaded = true;
      if (cursor.records.empty()) continue;
      heap.push(HeapEntry{cursor.records.front().timestamp, top.shard_id,
                          top.segment_seq, top.cursor});
      continue;
    }

    const net::PcapngRecord& record = cursor.records[cursor.next];
    ++cursor.next;
    if (cursor.next < cursor.records.size()) {
      heap.push(HeapEntry{cursor.records[cursor.next].timestamp, top.shard_id,
                          top.segment_seq, top.cursor});
    }

    ++stats.packets_scanned;
    bool matches = true;
    if (query.start && record.timestamp < *query.start) matches = false;
    if (matches && query.end && record.timestamp > *query.end) matches = false;
    if (matches && query.flow) {
      matches = net::parse_flow(record.data) == *query.flow;
    }
    if (matches && program) {
      matches = bpf::run(*program, record.data, record.orig_len) != 0;
    }
    if (matches) {
      ++stats.packets_matched;
      fn(record, top.shard_id);
    }
    // Release a drained segment's records early: the merge holds at
    // most the segments whose time ranges currently overlap.
    if (cursor.next >= cursor.records.size()) {
      cursor.records.clear();
      cursor.records.shrink_to_fit();
    }
  }
  return stats;
}

std::vector<net::PcapngRecord> StoreReader::read_all(
    const StoreQuery& query) const {
  std::vector<net::PcapngRecord> records;
  read_merged(query, [&records](const net::PcapngRecord& record,
                                std::uint32_t /*shard*/) {
    records.push_back(record);
  });
  return records;
}

}  // namespace wirecap::store
