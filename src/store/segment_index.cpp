#include "store/segment_index.hpp"

#include <cstring>
#include <fstream>

#include "net/pcapng.hpp"

namespace wirecap::store {

namespace {

// resize+memcpy rather than insert(end, p, p+4): GCC 12's
// -Wstringop-overflow false-positives on the insert form at -O3.
void put32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

/// Bounds-checked sequential decoder over the payload.
class Getter {
 public:
  explicit Getter(std::span<const std::byte> data) : data_(data) {}

  bool get32(std::uint32_t& v) { return get(&v, sizeof(v)); }
  bool get64(std::uint64_t& v) { return get(&v, sizeof(v)); }

 private:
  bool get(void* out, std::size_t n) {
    if (offset_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + offset_, n);
    offset_ += n;
    return true;
  }

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

}  // namespace

FlowBloom FlowBloom::make(std::size_t bits, std::uint32_t hashes) {
  std::size_t rounded = 64;
  while (rounded < bits) rounded *= 2;
  FlowBloom bloom;
  bloom.hash_count = hashes == 0 ? 1 : hashes;
  bloom.words.assign(rounded / 64, 0);
  return bloom;
}

std::vector<std::byte> encode_segment_index(const SegmentIndex& index) {
  std::vector<std::byte> out;
  out.reserve(64 + index.flows.size() * 16 + index.flow_bloom.words.size() * 8);
  put32(out, kSegmentIndexMagic);
  put32(out, kSegmentIndexVersion);
  put32(out, index.shard_id);
  put32(out, index.segment_seq);
  put64(out, index.packet_count);
  put64(out, index.byte_count);
  put64(out, static_cast<std::uint64_t>(index.min_timestamp.count()));
  put64(out, static_cast<std::uint64_t>(index.max_timestamp.count()));
  put64(out, index.unindexed_packets);
  put32(out, static_cast<std::uint32_t>(index.flows.size()));
  for (const SegmentFlowEntry& entry : index.flows) {
    put32(out, entry.flow.src_ip.value());
    put32(out, entry.flow.dst_ip.value());
    put32(out, (static_cast<std::uint32_t>(entry.flow.src_port) << 16) |
                   entry.flow.dst_port);
    put32(out, static_cast<std::uint32_t>(entry.flow.proto));
    put64(out, entry.packets);
  }
  put32(out, index.flow_bloom.hash_count);
  put32(out, static_cast<std::uint32_t>(index.flow_bloom.words.size()));
  for (const std::uint64_t word : index.flow_bloom.words) put64(out, word);
  return out;
}

std::optional<SegmentIndex> decode_segment_index(
    std::span<const std::byte> payload) {
  Getter in(payload);
  std::uint32_t magic = 0, version = 0;
  if (!in.get32(magic) || magic != kSegmentIndexMagic) return std::nullopt;
  if (!in.get32(version) || version < 1 || version > kSegmentIndexVersion) {
    return std::nullopt;
  }
  SegmentIndex index;
  std::uint64_t min_ts = 0, max_ts = 0;
  std::uint32_t flow_count = 0;
  if (!in.get32(index.shard_id) || !in.get32(index.segment_seq) ||
      !in.get64(index.packet_count) || !in.get64(index.byte_count) ||
      !in.get64(min_ts) || !in.get64(max_ts) ||
      !in.get64(index.unindexed_packets) || !in.get32(flow_count)) {
    return std::nullopt;
  }
  index.min_timestamp = Nanos{static_cast<std::int64_t>(min_ts)};
  index.max_timestamp = Nanos{static_cast<std::int64_t>(max_ts)};
  if (flow_count > (1u << 20)) return std::nullopt;  // implausible
  index.flows.reserve(flow_count);
  for (std::uint32_t i = 0; i < flow_count; ++i) {
    std::uint32_t src = 0, dst = 0, ports = 0, proto = 0;
    SegmentFlowEntry entry;
    if (!in.get32(src) || !in.get32(dst) || !in.get32(ports) ||
        !in.get32(proto) || !in.get64(entry.packets)) {
      return std::nullopt;
    }
    entry.flow.src_ip = net::Ipv4Addr{src};
    entry.flow.dst_ip = net::Ipv4Addr{dst};
    entry.flow.src_port = static_cast<std::uint16_t>(ports >> 16);
    entry.flow.dst_port = static_cast<std::uint16_t>(ports & 0xFFFF);
    entry.flow.proto = static_cast<net::IpProto>(proto);
    index.flows.push_back(entry);
  }
  if (version >= 2) {
    std::uint32_t hash_count = 0, word_count = 0;
    if (!in.get32(hash_count) || !in.get32(word_count)) return std::nullopt;
    if (word_count > (1u << 22)) return std::nullopt;  // implausible (32 MiB)
    if (word_count != 0 && (word_count & (word_count - 1)) != 0) {
      return std::nullopt;  // bit count must stay a power of two
    }
    index.flow_bloom.hash_count = hash_count;
    index.flow_bloom.words.resize(word_count);
    for (std::uint32_t i = 0; i < word_count; ++i) {
      if (!in.get64(index.flow_bloom.words[i])) return std::nullopt;
    }
  }
  return index;
}

std::optional<SegmentIndex> read_segment_index(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  const auto get32 = [&in](std::uint32_t& v) {
    return static_cast<bool>(
        in.read(reinterpret_cast<char*>(&v), sizeof(v)));
  };

  // Walk the block sequence: [type, total_length, body..., total_length].
  // Segments are written (and read back) on one host, so only native
  // byte order is handled; a foreign-order SHB fails the magic check
  // below and the scan reports "no index".
  std::optional<SegmentIndex> found;
  for (;;) {
    std::uint32_t type = 0, total_len = 0;
    if (!get32(type)) break;  // clean EOF
    if (!get32(total_len)) break;
    if (total_len < 12 || total_len % 4 != 0 || total_len > (1u << 28)) {
      break;  // corrupt or foreign byte order: stop scanning
    }
    const std::uint32_t body_len = total_len - 12;
    if (type == net::kPcapngCbType && body_len >= 4) {
      std::vector<std::byte> body(body_len);
      if (!in.read(reinterpret_cast<char*>(body.data()),
                   static_cast<std::streamsize>(body_len))) {
        break;
      }
      std::uint32_t pen = 0;
      std::memcpy(&pen, body.data(), sizeof(pen));
      if (pen == kSegmentIndexPen) {
        const std::span<const std::byte> payload{body.data() + 4,
                                                 body.size() - 4};
        if (auto index = decode_segment_index(payload)) found = index;
      }
    } else if (type == net::kPcapngShbType) {
      // Verify the byte-order magic before trusting any length field.
      std::uint32_t bom = 0;
      if (!get32(bom) || bom != net::kPcapngByteOrderMagic) break;
      if (body_len < 4) break;
      in.seekg(body_len - 4, std::ios::cur);
    } else {
      in.seekg(body_len, std::ios::cur);
    }
    std::uint32_t trailer = 0;
    if (!get32(trailer) || trailer != total_len) break;
  }
  return found;
}

}  // namespace wirecap::store
