// Per-segment footer index for spooled pcapng segments.
//
// Each finished segment ends in a pcapng Custom Block carrying a compact
// summary: packet/byte counts, the min/max packet timestamp, and a
// capped per-flow packet tally.  The StoreReader uses it to skip whole
// segments for time-range and exact-flow queries without touching their
// packet blocks; foreign pcapng readers skip the block (unknown PEN) and
// see a plain capture file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "net/flow.hpp"

namespace wirecap::store {

/// Private Enterprise Number namespacing our Custom Blocks ("WCAP").
inline constexpr std::uint32_t kSegmentIndexPen = 0x57434150;
/// First payload word of an index block ("WSIX").
inline constexpr std::uint32_t kSegmentIndexMagic = 0x57534958;
inline constexpr std::uint32_t kSegmentIndexVersion = 1;

struct SegmentFlowEntry {
  net::FlowKey flow;
  std::uint64_t packets = 0;
};

struct SegmentIndex {
  std::uint32_t shard_id = 0;
  std::uint32_t segment_seq = 0;
  std::uint64_t packet_count = 0;
  /// Stored (possibly snapped) packet bytes, excluding block framing.
  std::uint64_t byte_count = 0;
  /// Minimum / maximum packet timestamp in the segment.  NOT first/last
  /// written: offloaded chunks make shard streams non-monotonic.
  Nanos min_timestamp = Nanos::max();
  Nanos max_timestamp = Nanos{std::numeric_limits<std::int64_t>::min()};
  /// Per-flow packet counts, capped at the writer's flow_index_cap.
  std::vector<SegmentFlowEntry> flows;
  /// Packets not attributed in `flows` (non-IPv4/TCP/UDP frames, or
  /// flows beyond the cap).  Non-zero means a flow query cannot rule
  /// this segment out.
  std::uint64_t unindexed_packets = 0;

  [[nodiscard]] bool overlaps(std::optional<Nanos> start,
                              std::optional<Nanos> end) const {
    if (packet_count == 0) return false;
    if (start && max_timestamp < *start) return false;
    if (end && min_timestamp > *end) return false;
    return true;
  }

  /// False only when the index proves no packet of `flow` is present.
  [[nodiscard]] bool may_contain_flow(const net::FlowKey& flow) const {
    if (unindexed_packets > 0) return true;
    for (const SegmentFlowEntry& entry : flows) {
      if (entry.flow == flow) return true;
    }
    return false;
  }
};

/// Serializes `index` into the Custom Block payload format.
[[nodiscard]] std::vector<std::byte> encode_segment_index(
    const SegmentIndex& index);

/// Parses a payload produced by encode_segment_index(); nullopt on a
/// foreign or corrupt payload.
[[nodiscard]] std::optional<SegmentIndex> decode_segment_index(
    std::span<const std::byte> payload);

/// Scans the pcapng file at `path` for the footer index block (the last
/// Custom Block under our PEN).  Returns nullopt when the file has none
/// — e.g. a segment whose writer died before finish().
[[nodiscard]] std::optional<SegmentIndex> read_segment_index(
    const std::filesystem::path& path);

}  // namespace wirecap::store
