// Per-segment footer index for spooled pcapng segments.
//
// Each finished segment ends in a pcapng Custom Block carrying a compact
// summary: packet/byte counts, the min/max packet timestamp, and a
// capped per-flow packet tally.  The StoreReader uses it to skip whole
// segments for time-range and exact-flow queries without touching their
// packet blocks; foreign pcapng readers skip the block (unknown PEN) and
// see a plain capture file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "net/flow.hpp"

namespace wirecap::store {

/// Private Enterprise Number namespacing our Custom Blocks ("WCAP").
inline constexpr std::uint32_t kSegmentIndexPen = 0x57434150;
/// First payload word of an index block ("WSIX").
inline constexpr std::uint32_t kSegmentIndexMagic = 0x57534958;
/// Version 2 appended the flow Bloom filter; version-1 payloads (no
/// bloom) still decode.
inline constexpr std::uint32_t kSegmentIndexVersion = 2;

struct SegmentFlowEntry {
  net::FlowKey flow;
  std::uint64_t packets = 0;
};

/// Bloom filter over FlowKey::mix() hashes.  Unlike the exact tally
/// (capped at flow_index_cap), every parseable flow in the segment is
/// inserted, so a negative lookup proves the segment holds no packet of
/// that flow — the probabilistic index that keeps flow queries cheap on
/// high-cardinality segments.
struct FlowBloom {
  std::uint32_t hash_count = 0;
  /// Bit array; bit count is words.size() * 64 and always a power of
  /// two (double hashing indexes with a mask).
  std::vector<std::uint64_t> words;

  /// Builds an empty filter of at least `bits` bits (rounded up to a
  /// power of two, minimum 64) probed with `hashes` positions.
  [[nodiscard]] static FlowBloom make(std::size_t bits, std::uint32_t hashes);

  [[nodiscard]] bool empty() const { return words.empty(); }

  void insert(const net::FlowKey& flow) {
    for_each_bit(flow, [this](std::size_t bit) {
      words[bit >> 6] |= std::uint64_t{1} << (bit & 63);
    });
  }

  [[nodiscard]] bool may_contain(const net::FlowKey& flow) const {
    bool all = true;
    for_each_bit(flow, [this, &all](std::size_t bit) {
      all = all && (words[bit >> 6] >> (bit & 63)) & 1;
    });
    return all;
  }

  bool operator==(const FlowBloom&) const = default;

 private:
  template <typename Fn>
  void for_each_bit(const net::FlowKey& flow, Fn&& fn) const {
    // Kirsch–Mitzenmacher double hashing off the 64-bit flow mix.
    const std::uint64_t h1 = flow.mix();
    const std::uint64_t h2 = (h1 >> 32) | 1;  // odd, so all probes differ
    const std::uint64_t mask = words.size() * 64 - 1;
    for (std::uint32_t i = 0; i < hash_count; ++i) {
      fn(static_cast<std::size_t>((h1 + i * h2) & mask));
    }
  }
};

struct SegmentIndex {
  std::uint32_t shard_id = 0;
  std::uint32_t segment_seq = 0;
  std::uint64_t packet_count = 0;
  /// Stored (possibly snapped) packet bytes, excluding block framing.
  std::uint64_t byte_count = 0;
  /// Minimum / maximum packet timestamp in the segment.  NOT first/last
  /// written: offloaded chunks make shard streams non-monotonic.
  Nanos min_timestamp = Nanos::max();
  Nanos max_timestamp = Nanos{std::numeric_limits<std::int64_t>::min()};
  /// Per-flow packet counts, capped at the writer's flow_index_cap.
  std::vector<SegmentFlowEntry> flows;
  /// Packets not attributed in `flows` (non-IPv4/TCP/UDP frames, or
  /// flows beyond the cap).  Non-zero means a flow query cannot rule
  /// this segment out — unless the bloom below can.
  std::uint64_t unindexed_packets = 0;
  /// Probabilistic flow index covering every parseable flow, including
  /// those past flow_index_cap.  Empty on version-1 segments.
  FlowBloom flow_bloom;

  [[nodiscard]] bool overlaps(std::optional<Nanos> start,
                              std::optional<Nanos> end) const {
    if (packet_count == 0) return false;
    if (start && max_timestamp < *start) return false;
    if (end && min_timestamp > *end) return false;
    return true;
  }

  /// False only when the index proves no packet of `flow` is present.
  /// The exact tally answers first; past flow_index_cap the bloom
  /// decides (it covers every parseable flow, and frames that fail flow
  /// parsing can never equal an exact query key); legacy version-1
  /// indexes fall back to the conservative unindexed_packets check.
  [[nodiscard]] bool may_contain_flow(const net::FlowKey& flow) const {
    for (const SegmentFlowEntry& entry : flows) {
      if (entry.flow == flow) return true;
    }
    if (!flow_bloom.empty()) return flow_bloom.may_contain(flow);
    return unindexed_packets > 0;
  }
};

/// Serializes `index` into the Custom Block payload format.
[[nodiscard]] std::vector<std::byte> encode_segment_index(
    const SegmentIndex& index);

/// Parses a payload produced by encode_segment_index(); nullopt on a
/// foreign or corrupt payload.
[[nodiscard]] std::optional<SegmentIndex> decode_segment_index(
    std::span<const std::byte> payload);

/// Scans the pcapng file at `path` for the footer index block (the last
/// Custom Block under our PEN).  Returns nullopt when the file has none
/// — e.g. a segment whose writer died before finish().
[[nodiscard]] std::optional<SegmentIndex> read_segment_index(
    const std::filesystem::path& path);

}  // namespace wirecap::store
