#include "store/spool.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "net/headers.hpp"

namespace wirecap::store {

// --- SegmentWriter ---

SegmentWriter::SegmentWriter(std::filesystem::path dir, std::uint32_t shard_id,
                             Options options)
    : dir_(std::move(dir)), shard_id_(shard_id), options_(options) {}

SegmentWriter::~SegmentWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors swallow close errors; call finish() to observe them.
  }
}

std::string SegmentWriter::segment_name(std::uint32_t shard_id,
                                        std::uint32_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "shard%03u-seg%06u.pcapng", shard_id, seq);
  return buf;
}

std::optional<std::pair<std::uint32_t, std::uint32_t>>
SegmentWriter::parse_segment_name(const std::string& name) {
  // shard<digits>-seg<digits>.pcapng
  constexpr std::string_view kShard = "shard";
  constexpr std::string_view kSeg = "-seg";
  constexpr std::string_view kExt = ".pcapng";
  if (name.size() < kShard.size() + kSeg.size() + kExt.size() + 2) {
    return std::nullopt;
  }
  if (name.compare(0, kShard.size(), kShard) != 0) return std::nullopt;
  const std::size_t seg_pos = name.find(kSeg, kShard.size());
  if (seg_pos == std::string::npos) return std::nullopt;
  if (name.compare(name.size() - kExt.size(), kExt.size(), kExt) != 0) {
    return std::nullopt;
  }
  std::uint32_t shard = 0, seq = 0;
  const char* shard_begin = name.data() + kShard.size();
  const char* shard_end = name.data() + seg_pos;
  const char* seq_begin = name.data() + seg_pos + kSeg.size();
  const char* seq_end = name.data() + name.size() - kExt.size();
  auto [p1, e1] = std::from_chars(shard_begin, shard_end, shard);
  auto [p2, e2] = std::from_chars(seq_begin, seq_end, seq);
  if (e1 != std::errc{} || p1 != shard_end) return std::nullopt;
  if (e2 != std::errc{} || p2 != seq_end) return std::nullopt;
  return std::make_pair(shard, seq);
}

void SegmentWriter::open_segment() {
  const std::uint32_t seq = next_seq_++;
  writer_ = std::make_unique<net::PcapngWriter>(
      dir_ / segment_name(shard_id_, seq), options_.snaplen);
  index_ = SegmentIndex{};
  index_.shard_id = shard_id_;
  index_.segment_seq = seq;
  if (options_.flow_bloom_bits != 0) {
    index_.flow_bloom = FlowBloom::make(options_.flow_bloom_bits, 4);
  }
  flow_tally_.clear();
  ++segments_opened_;
}

void SegmentWriter::close_segment() {
  if (!writer_) return;
  index_.flows.reserve(flow_tally_.size());
  for (const auto& [flow, packets] : flow_tally_) {
    index_.flows.push_back(SegmentFlowEntry{flow, packets});
  }
  // unordered_map iteration order is not specified; sort for
  // deterministic files (the soak diffs runs byte-for-byte).
  std::sort(index_.flows.begin(), index_.flows.end(),
            [](const SegmentFlowEntry& a, const SegmentFlowEntry& b) {
              return a.flow < b.flow;
            });
  const std::vector<std::byte> payload = encode_segment_index(index_);
  writer_->write_custom_block(kSegmentIndexPen, payload);
  writer_->close();
  finished_bytes_ += writer_->bytes_written();
  writer_.reset();
}

void SegmentWriter::note_packet(Nanos timestamp,
                                std::span<const std::byte> snapped) {
  ++index_.packet_count;
  index_.byte_count += snapped.size();
  index_.min_timestamp = std::min(index_.min_timestamp, timestamp);
  index_.max_timestamp = std::max(index_.max_timestamp, timestamp);
  if (const auto flow = net::parse_flow(snapped)) {
    // The bloom covers every parseable flow, including those the exact
    // tally caps out on — that is what lets flow queries skip
    // high-cardinality segments.
    if (!index_.flow_bloom.empty()) index_.flow_bloom.insert(*flow);
    const auto it = flow_tally_.find(*flow);
    if (it != flow_tally_.end()) {
      ++it->second;
    } else if (flow_tally_.size() < options_.flow_index_cap) {
      flow_tally_[*flow] = 1;
    } else {
      ++index_.unindexed_packets;
    }
  } else {
    ++index_.unindexed_packets;
  }
}

std::uint32_t SegmentWriter::write(Nanos timestamp,
                                   std::span<const std::byte> data,
                                   std::uint32_t wire_len,
                                   std::uint64_t packet_id) {
  std::uint32_t rotations = 0;
  if (writer_ && index_.packet_count > 0) {
    const Nanos new_min = std::min(index_.min_timestamp, timestamp);
    const Nanos new_max = std::max(index_.max_timestamp, timestamp);
    if (writer_->bytes_written() >= options_.segment_max_bytes ||
        new_max - new_min > options_.segment_max_span) {
      close_segment();
      rotations = 1;
    }
  }
  if (!writer_) open_segment();

  const std::span<const std::byte> snapped =
      data.first(std::min<std::size_t>(data.size(), options_.snaplen));
  writer_->write(timestamp, snapped, wire_len, 0, packet_id);
  ++packets_written_;
  note_packet(timestamp, snapped);
  return rotations;
}

std::uint32_t SegmentWriter::write_chunk(
    std::span<const engines::CaptureView> packets) {
  if (packets.empty()) return 0;

  // One rotation check for the whole batch against its timestamp
  // extent; a segment may overshoot a threshold by at most one chunk.
  Nanos batch_min = packets.front().timestamp;
  Nanos batch_max = packets.front().timestamp;
  for (const engines::CaptureView& view : packets.subspan(1)) {
    batch_min = std::min(batch_min, view.timestamp);
    batch_max = std::max(batch_max, view.timestamp);
  }
  std::uint32_t rotations = 0;
  if (writer_ && index_.packet_count > 0) {
    const Nanos new_min = std::min(index_.min_timestamp, batch_min);
    const Nanos new_max = std::max(index_.max_timestamp, batch_max);
    if (writer_->bytes_written() >= options_.segment_max_bytes ||
        new_max - new_min > options_.segment_max_span) {
      close_segment();
      rotations = 1;
    }
  }
  if (!writer_) open_segment();

  gather_slices_.clear();
  gather_slices_.reserve(packets.size());
  for (const engines::CaptureView& view : packets) {
    const std::span<const std::byte> snapped = view.bytes.first(
        std::min<std::size_t>(view.bytes.size(), options_.snaplen));
    gather_slices_.push_back(
        net::GatherSlice{view.timestamp, snapped, view.wire_len, view.seq});
    note_packet(view.timestamp, snapped);
  }
  writer_->write_gather(gather_slices_);
  packets_written_ += packets.size();
  return rotations;
}

void SegmentWriter::finish() { close_segment(); }

std::uint64_t SegmentWriter::total_bytes() const {
  return finished_bytes_ + (writer_ ? writer_->bytes_written() : 0);
}

// --- SpoolShard ---

SpoolShard::SpoolShard(sim::Scheduler& scheduler, const sim::CostModel& costs,
                       const SpoolConfig& config, std::uint32_t shard_id)
    : scheduler_(scheduler),
      costs_(costs),
      config_(config),
      shard_id_(shard_id),
      writer_(config.dir, shard_id,
              SegmentWriter::Options{config.snaplen, config.segment_max_bytes,
                                     config.segment_max_span,
                                     config.flow_index_cap,
                                     config.flow_bloom_bits}) {
  if (config_.queue_capacity_chunks == 0) {
    // kDropOldest would pop an empty deque; kBlock would never accept.
    throw std::invalid_argument("SpoolShard: queue_capacity_chunks == 0");
  }
}

void SpoolShard::discard(Queued&& item,
                         std::uint64_t ShardStats::*chunk_counter,
                         std::uint64_t ShardStats::*packet_counter) {
  stats_.*chunk_counter += 1;
  stats_.*packet_counter += item.chunk.packets.size();
  if (config_.record_lost_seqs) {
    for (const engines::CaptureView& view : item.chunk.packets) {
      lost_seqs_.push_back(view.seq);
    }
  }
  item.release(item.chunk);
}

void SpoolShard::offer(engines::ChunkCaptureView chunk, Release release) {
  if (closed_) {
    discard(Queued{std::move(chunk), std::move(release)},
            &ShardStats::chunks_evicted, &ShardStats::packets_evicted);
    return;
  }
  if (!accepting()) {
    switch (config_.policy) {
      case BackpressurePolicy::kBlock:
        ++stats_.block_overruns;
        break;
      case BackpressurePolicy::kDropNewest:
        discard(Queued{std::move(chunk), std::move(release)},
                &ShardStats::chunks_dropped_newest,
                &ShardStats::packets_dropped_newest);
        return;
      case BackpressurePolicy::kDropOldest:
        discard(std::move(queue_.front()), &ShardStats::chunks_dropped_oldest,
                &ShardStats::packets_dropped_oldest);
        queue_.pop_front();
        break;
    }
  }
  queue_.push_back(
      Queued{std::move(chunk), std::move(release), scheduler_.now()});
  ++stats_.chunks_enqueued;
  stats_.queue_high_water = std::max(
      stats_.queue_high_water, static_cast<std::uint64_t>(queue_.size()));
  maybe_start_write();
}

std::size_t SpoolShard::effective_queue_depth() const {
  const unsigned depth = config_.disk_queue_depth != 0
                             ? config_.disk_queue_depth
                             : costs_.disk_queue_depth;
  return depth == 0 ? 1 : depth;
}

void SpoolShard::maybe_start_write() {
  while (!closed_ && !retry_scheduled_ && !queue_.empty() &&
         in_flight_.size() < effective_queue_depth()) {
    const Nanos now = scheduler_.now();
    if (now < full_until_) {
      // ENOSPC: hold the queue (backpressure propagates to the pool)
      // and retry once space might be back.
      ++stats_.full_stalls;
      const Nanos retry =
          std::min(full_until_, now + costs_.disk_full_retry_interval);
      retry_scheduled_ = true;
      scheduler_.schedule_at(retry, [this] {
        retry_scheduled_ = false;
        maybe_start_write();
      });
      return;
    }
    start_write();
  }
}

void SpoolShard::start_write() {
  Queued item = std::move(queue_.front());
  queue_.pop_front();

  // The file bytes are produced NOW, at dequeue time, while the chunk's
  // cells are guaranteed live; the scheduled completion below only
  // models the disk latency and releases the chunk.  A ring close
  // between start and completion therefore cannot make the write read
  // freed memory.
  const std::uint64_t before = writer_.total_bytes();
  std::uint32_t rotations = 0;
  if (config_.vectored_drain) {
    rotations = writer_.write_chunk(item.chunk.packets);
  } else {
    for (const engines::CaptureView& view : item.chunk.packets) {
      rotations += writer_.write(view.timestamp, view.bytes, view.wire_len,
                                 view.seq);
    }
  }
  const std::uint64_t bytes = writer_.total_bytes() - before;

  const Nanos now = scheduler_.now();
  const double factor = now < slow_until_ ? slow_factor_ : 1.0;
  const double write_ns =
      static_cast<double>(bytes) * costs_.disk_write_ns_per_byte * factor;
  // Device occupancy: the serialized transfer, segment rotations, and —
  // on the packet-at-a-time path — one submission cost per packet.
  Nanos device = Nanos{static_cast<std::int64_t>(write_ns + 0.5)} +
                 static_cast<std::int64_t>(rotations) *
                     costs_.disk_segment_rotate_cost;
  if (!config_.vectored_drain) {
    device += static_cast<std::int64_t>(item.chunk.packets.size()) *
              costs_.disk_packet_write_cost;
  }
  // The device serializes transfers, but the fixed per-op completion
  // latency rides after each transfer and overlaps across outstanding
  // writes — the throughput win of queue depth > 1.
  const Nanos start = std::max(now, device_busy_until_);
  device_busy_until_ = start + device;
  const Nanos completion = device_busy_until_ + costs_.disk_write_op_cost;

  stats_.chunks_written += 1;
  stats_.packets_written += item.chunk.packets.size();
  stats_.bytes_written += bytes;
  stats_.segments_opened = writer_.segments_opened();
  const std::uint64_t op_id = next_op_id_++;
  in_flight_.push_back(InFlight{op_id, std::move(item)});
  stats_.in_flight_high_water =
      std::max(stats_.in_flight_high_water,
               static_cast<std::uint64_t>(in_flight_.size()));
  scheduler_.schedule_at(completion,
                         [this, op_id] { complete_write(op_id); });
}

void SpoolShard::complete_write(std::uint64_t op_id) {
  const auto it =
      std::find_if(in_flight_.begin(), in_flight_.end(),
                   [op_id](const InFlight& op) { return op.op_id == op_id; });
  // close()/evict_ring() settled this op already; the stale completion
  // must not release a second time (or touch a torn-down pool).
  if (it == in_flight_.end()) return;
  Queued done = std::move(it->item);
  in_flight_.erase(it);
  // Disk leg of the latency pipeline: offer() to release.  Recorded
  // unconditionally — this path already paid for a simulated disk
  // write, so one histogram increment is noise.
  drain_latency_.record((scheduler_.now() - done.offered_at).count());
  done.release(done.chunk);
  if (drain_callback_) drain_callback_();
  maybe_start_write();
}

void SpoolShard::settle(InFlight&& op) {
  Queued done = std::move(op.item);
  ++stats_.in_flight_settled;
  drain_latency_.record((scheduler_.now() - done.offered_at).count());
  done.release(done.chunk);
}

void SpoolShard::evict_ring(std::uint32_t ring) {
  std::deque<Queued> kept;
  while (!queue_.empty()) {
    Queued item = std::move(queue_.front());
    queue_.pop_front();
    if (item.chunk.source_ring == ring) {
      discard(std::move(item), &ShardStats::chunks_evicted,
              &ShardStats::packets_evicted);
    } else {
      kept.push_back(std::move(item));
    }
  }
  queue_ = std::move(kept);
  // Outstanding writes from the evicted ring: their bytes are already
  // in the segment file, but the deferred completion would release the
  // chunk into a torn-down pool.  Settle them now; the stale completion
  // event later finds no matching op_id and no-ops.
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->item.chunk.source_ring == ring) {
      InFlight op = std::move(*it);
      it = in_flight_.erase(it);
      settle(std::move(op));
    } else {
      ++it;
    }
  }
  maybe_start_write();
}

void SpoolShard::set_slow_disk(double factor, Nanos until) {
  if (factor < 1.0) throw std::invalid_argument("SpoolShard: factor < 1");
  slow_factor_ = factor;
  slow_until_ = until;
}

void SpoolShard::set_disk_full(Nanos until) { full_until_ = until; }

void SpoolShard::close() {
  if (closed_) return;
  closed_ = true;
  // Settle outstanding writes first: their bytes hit the file at submit
  // time, so the chunks are durably spooled — releasing them now keeps
  // the lifecycle auditor's conservation census exact when an
  // experiment ends mid-write.
  while (!in_flight_.empty()) {
    InFlight op = std::move(in_flight_.front());
    in_flight_.pop_front();
    settle(std::move(op));
  }
  while (!queue_.empty()) {
    Queued item = std::move(queue_.front());
    queue_.pop_front();
    discard(std::move(item), &ShardStats::chunks_evicted,
            &ShardStats::packets_evicted);
  }
  writer_.finish();
  stats_.segments_opened = writer_.segments_opened();
}

// --- Spool ---

Spool::Spool(sim::Scheduler& scheduler, const sim::CostModel& costs,
             SpoolConfig config)
    : config_(std::move(config)) {
  if (config_.num_shards == 0) {
    throw std::invalid_argument("Spool: num_shards == 0");
  }
  std::filesystem::create_directories(config_.dir);
  shards_.reserve(config_.num_shards);
  for (std::uint32_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(
        std::make_unique<SpoolShard>(scheduler, costs, config_, i));
  }
}

bool Spool::drained() const {
  return std::all_of(shards_.begin(), shards_.end(),
                     [](const auto& s) { return s->backlog() == 0; });
}

void Spool::close() {
  for (const auto& shard : shards_) shard->close();
}

ShardStats Spool::total_stats() const {
  ShardStats total;
  for (const auto& shard : shards_) {
    const ShardStats& s = shard->stats();
    total.chunks_enqueued += s.chunks_enqueued;
    total.chunks_written += s.chunks_written;
    total.packets_written += s.packets_written;
    total.bytes_written += s.bytes_written;
    total.chunks_dropped_newest += s.chunks_dropped_newest;
    total.packets_dropped_newest += s.packets_dropped_newest;
    total.chunks_dropped_oldest += s.chunks_dropped_oldest;
    total.packets_dropped_oldest += s.packets_dropped_oldest;
    total.chunks_evicted += s.chunks_evicted;
    total.packets_evicted += s.packets_evicted;
    total.segments_opened += s.segments_opened;
    total.queue_high_water =
        std::max(total.queue_high_water, s.queue_high_water);
    total.block_overruns += s.block_overruns;
    total.full_stalls += s.full_stalls;
    total.in_flight_settled += s.in_flight_settled;
    total.in_flight_high_water =
        std::max(total.in_flight_high_water, s.in_flight_high_water);
  }
  return total;
}

void Spool::bind_telemetry(telemetry::Telemetry& telemetry,
                           const std::string& prefix) {
  telemetry::MetricRegistry& registry = telemetry.registry;
  for (const auto& shard_ptr : shards_) {
    SpoolShard* shard = shard_ptr.get();
    const std::string sp =
        prefix + ".shard" + std::to_string(shard->shard_id()) + ".";
    const auto counter = [&registry, shard, &sp](
                             const char* name,
                             std::uint64_t ShardStats::*field) {
      registry.bind_counter(sp + name,
                            [shard, field] { return shard->stats().*field; });
    };
    counter("chunks_enqueued", &ShardStats::chunks_enqueued);
    counter("chunks_written", &ShardStats::chunks_written);
    counter("packets_written", &ShardStats::packets_written);
    counter("bytes_written", &ShardStats::bytes_written);
    counter("chunks_dropped_newest", &ShardStats::chunks_dropped_newest);
    counter("packets_dropped_newest", &ShardStats::packets_dropped_newest);
    counter("chunks_dropped_oldest", &ShardStats::chunks_dropped_oldest);
    counter("packets_dropped_oldest", &ShardStats::packets_dropped_oldest);
    counter("chunks_evicted", &ShardStats::chunks_evicted);
    counter("packets_evicted", &ShardStats::packets_evicted);
    counter("segments_opened", &ShardStats::segments_opened);
    counter("queue_high_water", &ShardStats::queue_high_water);
    counter("block_overruns", &ShardStats::block_overruns);
    counter("full_stalls", &ShardStats::full_stalls);
    counter("in_flight_settled", &ShardStats::in_flight_settled);
    counter("in_flight_high_water", &ShardStats::in_flight_high_water);
    registry.bind_gauge(sp + "backlog", [shard] {
      return static_cast<double>(shard->backlog());
    });
    static constexpr struct {
      const char* name;
      double q;
    } kQuantiles[] = {
        {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};
    for (const auto& quantile : kQuantiles) {
      registry.bind_gauge(sp + "drain_latency." + quantile.name,
                          [shard, q = quantile.q] {
                            return shard->drain_latency().quantile(q);
                          });
    }
  }
}

}  // namespace wirecap::store
