// The glue actor between one engine queue and one spool shard.
//
// A StoreSink wakes on the engine's data callback, pops whole chunks
// with try_next_chunk(), and offers them to its shard; the shard's
// release path hands them back to the engine (done_chunk) once the
// packets are on disk or dropped.  Under the kBlock policy the sink
// gates on shard.accepting(): un-consumed chunks back up in the
// engine's capture queue, where the registered spool-backlog probe and
// the queue depth together trip the buddy-group offload threshold T —
// the lossless feedback path.
#pragma once

#include <cstdint>

#include "engines/engine.hpp"
#include "store/spool.hpp"

namespace wirecap::store {

class StoreSink {
 public:
  /// Does not register callbacks yet — call start() once the engine
  /// queue is open.  The sink must outlive every chunk the shard still
  /// holds (i.e. close the spool before destroying sinks).
  StoreSink(engines::CaptureEngine& engine, std::uint32_t queue,
            SpoolShard& shard);

  StoreSink(const StoreSink&) = delete;
  StoreSink& operator=(const StoreSink&) = delete;

  /// Registers the engine data callback and the shard drain callback,
  /// then drains whatever is already queued.
  void start();

  /// Consumes until the engine is empty or (kBlock) the shard is full.
  void poll();

  [[nodiscard]] std::uint64_t chunks_consumed() const {
    return chunks_consumed_;
  }
  [[nodiscard]] std::uint64_t packets_consumed() const {
    return packets_consumed_;
  }

 private:
  engines::CaptureEngine& engine_;
  std::uint32_t queue_;
  SpoolShard& shard_;
  std::uint64_t chunks_consumed_ = 0;
  std::uint64_t packets_consumed_ = 0;
};

}  // namespace wirecap::store
