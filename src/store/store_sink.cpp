#include "store/store_sink.hpp"

namespace wirecap::store {

StoreSink::StoreSink(engines::CaptureEngine& engine, std::uint32_t queue,
                     SpoolShard& shard)
    : engine_(engine), queue_(queue), shard_(shard) {}

void StoreSink::start() {
  engine_.set_data_callback(queue_, [this] { poll(); });
  shard_.set_drain_callback([this] { poll(); });
  poll();
}

void StoreSink::poll() {
  for (;;) {
    if (shard_.policy() == BackpressurePolicy::kBlock &&
        !shard_.accepting()) {
      // Leave chunks in the capture queue; the drain callback re-wakes
      // us, and meanwhile the engine's offload feedback sees the depth.
      return;
    }
    auto chunk = engine_.try_next_chunk(queue_);
    if (!chunk) return;
    ++chunks_consumed_;
    packets_consumed_ += chunk->packets.size();
    shard_.offer(std::move(*chunk),
                 [this](const engines::ChunkCaptureView& done) {
                   engine_.done_chunk(queue_, done);
                 });
  }
}

}  // namespace wirecap::store
