// Capture-to-disk spool: per-capture-thread shards writing indexed
// pcapng segments.
//
// The spool consumes whole ring-buffer-pool chunks (zero-copy
// ChunkCaptureView handoff from the engine) into per-shard bounded
// queues; a simulated disk drains each queue in virtual time at a
// calibrated cost (sim::CostModel's disk_* fields).  Segment files
// rotate on size/span and end in a footer index (segment_index.hpp)
// that the StoreReader uses to skip segments.
//
// Backpressure when a shard's queue fills is a policy choice:
//   * kBlock       — the shard stops accepting; chunks back up into the
//                    engine's capture queue, where the buddy-group
//                    offloading threshold T sees them (lossless).
//   * kDropNewest  — arriving chunks are discarded, counted.
//   * kDropOldest  — the oldest queued chunk is discarded to make room.
//
// SegmentWriter is deliberately free of any simulation dependency so
// real-thread users (examples/live_capture) can spool with it directly.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "engines/engine.hpp"
#include "net/pcapng.hpp"
#include "sim/costs.hpp"
#include "sim/scheduler.hpp"
#include "store/segment_index.hpp"
#include "telemetry/telemetry.hpp"

namespace wirecap::store {

enum class BackpressurePolicy : std::uint8_t {
  kBlock,
  kDropNewest,
  kDropOldest,
};

[[nodiscard]] constexpr const char* to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropNewest: return "drop-newest";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
  }
  return "?";
}

struct SpoolConfig {
  std::filesystem::path dir;
  std::uint32_t num_shards = 1;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Bound on each shard's queue of accepted-but-unwritten chunks.
  std::size_t queue_capacity_chunks = 64;
  /// Segment rotation thresholds (whichever trips first).
  std::uint64_t segment_max_bytes = 8ull << 20;
  Nanos segment_max_span = Nanos::from_millis(100.0);
  std::uint32_t snaplen = 65535;
  /// Distinct flows tallied per segment index before the remainder is
  /// lumped into unindexed_packets.
  std::size_t flow_index_cap = 32;
  /// Record the engine seq of every dropped/evicted packet (conservation
  /// audits); costs memory proportional to losses.
  bool record_lost_seqs = false;
  /// Drain chunks through the writev-shaped gather path (one rotation
  /// check and one vectored commit per chunk).  Off, the drain issues
  /// one write per packet and pays disk_packet_write_cost for each.
  bool vectored_drain = true;
  /// Outstanding simulated-disk writes per shard; 0 takes the cost
  /// model's disk_queue_depth.  Depth 1 reproduces the synchronous
  /// one-write-at-a-time drain.
  unsigned disk_queue_depth = 0;
  /// Bits per segment footer flow Bloom filter (rounded up to a power
  /// of two); 0 disables the bloom, leaving only the exact flow tally.
  std::size_t flow_bloom_bits = 8192;
};

struct ShardStats {
  std::uint64_t chunks_enqueued = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t packets_written = 0;
  /// File bytes, including pcapng framing.
  std::uint64_t bytes_written = 0;
  std::uint64_t chunks_dropped_newest = 0;
  std::uint64_t packets_dropped_newest = 0;
  std::uint64_t chunks_dropped_oldest = 0;
  std::uint64_t packets_dropped_oldest = 0;
  /// Chunks pulled back before a ring close (evict_ring) or at a
  /// non-drained close().
  std::uint64_t chunks_evicted = 0;
  std::uint64_t packets_evicted = 0;
  std::uint64_t segments_opened = 0;
  std::uint64_t queue_high_water = 0;
  /// Chunks accepted past the queue bound under kBlock: producers are
  /// expected to gate on accepting(), so this staying 0 is the sign the
  /// blocking handshake works (a chunk is never lost either way).
  std::uint64_t block_overruns = 0;
  /// Writes deferred because the simulated disk reported full.
  std::uint64_t full_stalls = 0;
  /// Outstanding writes released early by close()/evict_ring(): their
  /// bytes were already on disk, only the completion event was pending.
  std::uint64_t in_flight_settled = 0;
  /// Most writes simultaneously outstanding (bounded by the disk queue
  /// depth).
  std::uint64_t in_flight_high_water = 0;
};

/// Rotating, indexed pcapng segment writer for one shard.  No simulation
/// dependency: write() performs real file I/O immediately.
class SegmentWriter {
 public:
  struct Options {
    std::uint32_t snaplen = 65535;
    std::uint64_t segment_max_bytes = 8ull << 20;
    Nanos segment_max_span = Nanos::from_millis(100.0);
    std::size_t flow_index_cap = 32;
    /// Bits in the per-segment flow Bloom filter; 0 disables it.
    std::size_t flow_bloom_bits = 8192;
  };

  SegmentWriter(std::filesystem::path dir, std::uint32_t shard_id,
                Options options);
  ~SegmentWriter();

  /// Appends one packet, rotating first if the current segment is over
  /// a threshold.  Returns the number of rotations performed (0 or 1).
  std::uint32_t write(Nanos timestamp, std::span<const std::byte> data,
                      std::uint32_t wire_len, std::uint64_t packet_id);

  /// Appends a whole chunk through the vectored gather path: one
  /// rotation check for the batch (against its min/max timestamp, so a
  /// segment may overshoot the thresholds by at most one chunk), then a
  /// single writev-shaped commit of every packet.  Returns the number
  /// of rotations performed (0 or 1).
  std::uint32_t write_chunk(std::span<const engines::CaptureView> packets);

  /// Finalizes the current segment (footer index + close).  Idempotent.
  void finish();

  [[nodiscard]] std::uint32_t shard_id() const { return shard_id_; }
  [[nodiscard]] std::uint64_t segments_opened() const {
    return segments_opened_;
  }
  [[nodiscard]] std::uint64_t packets_written() const {
    return packets_written_;
  }
  /// Total file bytes across all segments of this shard.
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Segment file name, e.g. "shard002-seg000017.pcapng".
  [[nodiscard]] static std::string segment_name(std::uint32_t shard_id,
                                                std::uint32_t seq);
  /// Inverse of segment_name(); nullopt for foreign files.
  [[nodiscard]] static std::optional<std::pair<std::uint32_t, std::uint32_t>>
  parse_segment_name(const std::string& name);

 private:
  void open_segment();
  void close_segment();
  /// Folds one (snapped) packet into the open segment's index: counts,
  /// timestamp extent, exact flow tally, bloom.
  void note_packet(Nanos timestamp, std::span<const std::byte> snapped);

  std::filesystem::path dir_;
  std::uint32_t shard_id_;
  Options options_;
  std::unique_ptr<net::PcapngWriter> writer_;
  SegmentIndex index_;                 // of the open segment
  std::unordered_map<net::FlowKey, std::uint64_t> flow_tally_;
  std::vector<net::GatherSlice> gather_slices_;  // reused per chunk
  std::uint32_t next_seq_ = 0;
  std::uint64_t segments_opened_ = 0;
  std::uint64_t packets_written_ = 0;
  std::uint64_t finished_bytes_ = 0;   // bytes of closed segments
};

/// One spool shard: bounded chunk queue + virtual-time disk drain.
class SpoolShard {
 public:
  /// Called with the chunk once its packets are on disk or dropped; the
  /// producer releases the chunk back to the engine here.
  using Release = std::function<void(const engines::ChunkCaptureView&)>;

  SpoolShard(sim::Scheduler& scheduler, const sim::CostModel& costs,
             const SpoolConfig& config, std::uint32_t shard_id);

  /// Hands one chunk to the shard; `release` is guaranteed to run
  /// exactly once (after the write completes, or immediately on a
  /// drop).  When the queue is full the policy decides: kDropNewest
  /// discards `chunk`, kDropOldest discards the oldest queued chunk,
  /// and kBlock enqueues past the bound but counts a block_overrun —
  /// blocking producers must gate on accepting() instead of offering.
  void offer(engines::ChunkCaptureView chunk, Release release);

  /// True while the queue has room (kBlock producers gate on this).
  [[nodiscard]] bool accepting() const {
    return queue_.size() < config_.queue_capacity_chunks;
  }

  /// Chunks accepted but not yet released — queued plus every write
  /// still outstanding on the simulated disk.  The engine's
  /// offload-feedback probe (set_spool_backlog_probe) reads this.
  [[nodiscard]] std::size_t backlog() const {
    return queue_.size() + in_flight_.size();
  }

  /// Drops every queued chunk whose cells belong to `ring`'s pool and
  /// settles every outstanding write from that ring (bytes already hit
  /// the file at submit time; the release must fire now, not from a
  /// deferred completion into a torn-down pool).  MUST be called before
  /// engine close(ring): queued views dangle once the pool is gone.
  void evict_ring(std::uint32_t ring);

  /// Simulated-disk faults: multiply write costs until `until`, or
  /// refuse writes entirely (ENOSPC) until `until`.
  void set_slow_disk(double factor, Nanos until);
  void set_disk_full(Nanos until);

  /// Fires whenever a write completes (queue space may have opened).
  void set_drain_callback(std::function<void()> fn) {
    drain_callback_ = std::move(fn);
  }

  /// Settles outstanding writes (their bytes are already on disk, so
  /// the chunks are released immediately), evicts anything still
  /// queued, then finalizes the segment writer.
  void close();

  [[nodiscard]] const ShardStats& stats() const { return stats_; }
  /// Offer-to-release latency of every drained chunk (the disk leg of
  /// the end-to-end latency pipeline).  Dropped/evicted chunks are not
  /// recorded — they never drained.
  [[nodiscard]] const telemetry::HdrHistogram& drain_latency() const {
    return drain_latency_;
  }
  [[nodiscard]] std::uint32_t shard_id() const { return shard_id_; }
  [[nodiscard]] BackpressurePolicy policy() const { return config_.policy; }
  /// Engine seqs of dropped/evicted packets (record_lost_seqs only).
  [[nodiscard]] const std::vector<std::uint64_t>& lost_seqs() const {
    return lost_seqs_;
  }

 private:
  struct Queued {
    engines::ChunkCaptureView chunk;
    Release release;
    /// When offer() accepted the chunk; anchors drain latency.
    Nanos offered_at = Nanos::zero();
  };

  /// One outstanding disk write.  Identified by op_id so a completion
  /// event scheduled for an op that close()/evict_ring() already
  /// settled finds nothing and no-ops instead of double-releasing.
  struct InFlight {
    std::uint64_t op_id = 0;
    Queued item;
  };

  void maybe_start_write();
  void start_write();
  void complete_write(std::uint64_t op_id);
  /// Releases one outstanding write early (close/evict): the bytes hit
  /// the file at submit time, only the completion latency was pending.
  void settle(InFlight&& op);
  [[nodiscard]] std::size_t effective_queue_depth() const;
  void discard(Queued&& item, std::uint64_t ShardStats::*chunk_counter,
               std::uint64_t ShardStats::*packet_counter);

  sim::Scheduler& scheduler_;
  const sim::CostModel& costs_;
  SpoolConfig config_;
  std::uint32_t shard_id_;
  SegmentWriter writer_;
  std::deque<Queued> queue_;
  bool retry_scheduled_ = false;
  bool closed_ = false;
  /// Outstanding writes, oldest first: bytes already on disk, awaiting
  /// the virtual-time completion events that release them.  Bounded by
  /// effective_queue_depth().
  std::deque<InFlight> in_flight_;
  std::uint64_t next_op_id_ = 0;
  /// The simulated device serializes transfers; this is when it frees
  /// up.  The fixed per-op completion latency overlaps across
  /// outstanding writes.
  Nanos device_busy_until_ = Nanos::zero();
  double slow_factor_ = 1.0;
  Nanos slow_until_ = Nanos::zero();
  Nanos full_until_ = Nanos::zero();
  ShardStats stats_;
  telemetry::HdrHistogram drain_latency_;
  std::vector<std::uint64_t> lost_seqs_;
  std::function<void()> drain_callback_;
};

/// The spool: owns one shard per capture queue plus the target
/// directory.
class Spool {
 public:
  Spool(sim::Scheduler& scheduler, const sim::CostModel& costs,
        SpoolConfig config);

  [[nodiscard]] SpoolShard& shard(std::uint32_t i) { return *shards_.at(i); }
  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const SpoolConfig& config() const { return config_; }

  /// True once every shard's queue is empty and no write is in flight.
  [[nodiscard]] bool drained() const;

  /// Closes every shard (evicting undrained chunks) and finalizes all
  /// segment footers.  Idempotent.
  void close();

  [[nodiscard]] ShardStats total_stats() const;

  /// Binds "<prefix>.shard<N>.<field>" counters and backlog gauges.
  void bind_telemetry(telemetry::Telemetry& telemetry,
                      const std::string& prefix);

 private:
  SpoolConfig config_;
  std::vector<std::unique_ptr<SpoolShard>> shards_;
};

}  // namespace wirecap::store
