#include "nic/device.hpp"

#include <algorithm>
#include <stdexcept>

namespace wirecap::nic {

MultiQueueNic::MultiQueueNic(sim::Scheduler& scheduler, sim::IoBus& bus,
                             NicConfig config,
                             std::unique_ptr<SteeringPolicy> steering)
    : scheduler_(scheduler),
      bus_(bus),
      config_(config),
      steering_(steering ? std::move(steering) : make_rss_steering()) {
  if (config_.num_rx_queues == 0 || config_.num_tx_queues == 0) {
    throw std::invalid_argument("MultiQueueNic: need >= 1 queue");
  }
  rx_rings_.reserve(config_.num_rx_queues);
  for (std::uint32_t q = 0; q < config_.num_rx_queues; ++q) {
    rx_rings_.push_back(std::make_unique<RxRing>(config_.rx_ring_size));
  }
  rx_interrupts_.resize(config_.num_rx_queues);
  rx_stats_.resize(config_.num_rx_queues);
  rx_fifos_.resize(config_.num_rx_queues);
  for (auto& fifo : rx_fifos_) {
    fifo.capacity_bytes = config_.rx_fifo_bytes / config_.num_rx_queues;
  }
  tx_queues_.resize(config_.num_tx_queues);
  tx_stats_.resize(config_.num_tx_queues);
}

void MultiQueueNic::receive(const net::WirePacket& packet) {
  const std::uint32_t queue =
      steering_->select_queue(packet, config_.num_rx_queues);
  RxRing& ring = *rx_rings_[queue];
  RxQueueStats& stats = rx_stats_[queue];
  RxFifo& fifo = rx_fifos_[queue];

  // Frames queue behind anything already waiting in the internal packet
  // buffer; otherwise, a ready descriptor means direct DMA.
  if (fifo.frames.empty() && ring.can_receive()) {
    start_dma(queue, packet);
    return;
  }

  const std::uint32_t footprint = fifo_footprint(packet);
  if (fifo.used_bytes + footprint > fifo.capacity_bytes) {
    // Packet capture drop: no ready descriptor and the packet buffer is
    // full.
    ++stats.dropped;
    return;
  }
  fifo.frames.push_back(packet);
  fifo.used_bytes += footprint;
  ++stats.fifo_buffered;
  drain_fifo(queue);
}

std::uint32_t MultiQueueNic::fifo_footprint(
    const net::WirePacket& packet) const {
  const std::uint32_t slots =
      (packet.wire_len() + config_.rx_fifo_slot_bytes - 1) /
      config_.rx_fifo_slot_bytes;
  return slots * config_.rx_fifo_slot_bytes;
}

void MultiQueueNic::drain_fifo(std::uint32_t queue) {
  RxRing& ring = *rx_rings_[queue];
  RxFifo& fifo = rx_fifos_[queue];
  while (!fifo.frames.empty() && ring.can_receive()) {
    const net::WirePacket packet = fifo.frames.front();
    fifo.frames.pop_front();
    fifo.used_bytes -= fifo_footprint(packet);
    start_dma(queue, packet);
  }
}

void MultiQueueNic::kick(std::uint32_t queue) { drain_fifo(queue); }

void MultiQueueNic::start_dma(std::uint32_t queue,
                              const net::WirePacket& packet) {
  RxRing& ring = *rx_rings_[queue];
  const std::uint32_t index = ring.begin_dma();
  // The DMA engine moves the frame across the bus, then writes back
  // completion metadata.  With an unconstrained bus this completes
  // synchronously.
  bus_.issue(config_.rx_transactions_per_packet,
             [this, queue, index, packet] {
               RxRing& r = *rx_rings_[queue];
               DmaBuffer& buffer = r.buffer_at(index);
               const auto bytes = packet.bytes();
               const std::size_t n =
                   std::min(bytes.size(), buffer.data.size());
               std::copy_n(bytes.begin(), n, buffer.data.begin());
               RxWriteback writeback;
               writeback.length = static_cast<std::uint32_t>(n);
               writeback.wire_length = packet.wire_len();
               writeback.timestamp = packet.timestamp();
               writeback.seq = packet.seq();
               writeback.flow = packet.flow();
               r.complete_dma(index, writeback);
               RxQueueStats& s = rx_stats_[queue];
               ++s.received;
               s.bytes += packet.wire_len();
               if (rx_interrupts_[queue]) rx_interrupts_[queue]();
             });
}

void MultiQueueNic::set_rx_interrupt(std::uint32_t queue,
                                     std::function<void()> fn) {
  rx_interrupts_.at(queue) = std::move(fn);
}

bool MultiQueueNic::transmit(std::uint32_t queue, TxRequest request) {
  auto& tx_queue = tx_queues_.at(queue);
  if (tx_queue.size() >= config_.tx_ring_size) {
    ++tx_stats_[queue].dropped;
    return false;
  }
  tx_queue.push_back(std::move(request));
  if (!tx_active_) {
    tx_active_ = true;
    start_tx_drain();
  }
  return true;
}

void MultiQueueNic::start_tx_drain() {
  // Round-robin arbitration across TX queues.
  for (std::uint32_t i = 0; i < config_.num_tx_queues; ++i) {
    const std::uint32_t q = (tx_arbiter_ + i) % config_.num_tx_queues;
    if (!tx_queues_[q].empty()) {
      tx_arbiter_ = (q + 1) % config_.num_tx_queues;
      // The frame's DMA read loads the shared bus (contending with RX
      // DMA) but transmission is pipelined — descriptor prefetch means
      // the wire, not a bus round-trip, paces the TX path.
      bus_.issue(config_.tx_transactions_per_packet, [] {});
      finish_tx(q);
      return;
    }
  }
  tx_active_ = false;
}

void MultiQueueNic::finish_tx(std::uint32_t queue) {
  TxRequest request = std::move(tx_queues_[queue].front());
  tx_queues_[queue].pop_front();

  const double bytes_on_wire = static_cast<double>(
      request.wire_length + ethernet::kWireOverheadBytes);
  const Nanos serialization = Nanos::from_seconds(
      bytes_on_wire * 8.0 / config_.link_bits_per_second);

  scheduler_.schedule_after(
      serialization,
      [this, queue, request = std::move(request)]() mutable {
        ++tx_stats_[queue].transmitted;
        if (egress_) {
          net::WirePacket out = net::WirePacket::from_bytes(
              scheduler_.now(), request.frame, request.wire_length,
              request.seq);
          egress_(out);
        }
        if (request.on_complete) request.on_complete();
        start_tx_drain();
      });
}

std::uint64_t MultiQueueNic::total_rx_dropped() const {
  std::uint64_t total = 0;
  for (const auto& s : rx_stats_) total += s.dropped;
  return total;
}

std::uint64_t MultiQueueNic::total_received() const {
  std::uint64_t total = 0;
  for (const auto& s : rx_stats_) total += s.received;
  return total;
}

std::uint64_t MultiQueueNic::total_transmitted() const {
  std::uint64_t total = 0;
  for (const auto& s : tx_stats_) total += s.transmitted;
  return total;
}

}  // namespace wirecap::nic
