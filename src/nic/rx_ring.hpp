// The receive ring: a circular array of receive descriptors with three
// cursors advancing in ring order.
//
//   attach cursor  — where the driver attaches the next empty buffer
//   dma cursor     — the next descriptor the NIC will fill
//   consume cursor — the next descriptor the driver will consume
//
// Invariant: consume <= dma <= attach <= consume + size (in unwrapped
// cursor arithmetic).  A packet arriving when the descriptor at the DMA
// cursor is not ready is a *packet capture drop* — the central failure
// mode the paper studies.
#pragma once

#include <cstdint>
#include <vector>

#include "nic/descriptor.hpp"

namespace wirecap::nic {

class RxRing {
 public:
  explicit RxRing(std::uint32_t size);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(descriptors_.size());
  }

  // --- driver side ---

  /// Descriptors currently without a buffer (attachable).
  [[nodiscard]] std::uint32_t empty_slots() const;

  /// Attaches `buffer` to the descriptor at the attach cursor.
  /// Returns false when no empty slot is available.
  bool attach(DmaBuffer buffer);

  /// Index of the next filled descriptor awaiting consumption, or
  /// negative if none.  DMA completes in FIFO order, so filled
  /// descriptors are always contiguous from the consume cursor.
  [[nodiscard]] bool has_filled() const;

  /// Number of contiguous filled descriptors from the consume cursor.
  [[nodiscard]] std::uint32_t filled_count() const;

  /// Consumes the filled descriptor at the consume cursor: returns its
  /// buffer + writeback and resets the slot to empty.  Precondition:
  /// has_filled().
  struct Consumed {
    DmaBuffer buffer;
    RxWriteback writeback;
  };
  Consumed consume();

  /// Writeback of the oldest filled descriptor (for age/timeout checks).
  /// Precondition: has_filled().
  [[nodiscard]] const RxWriteback& peek_writeback() const;

  /// Detaches every descriptor and rewinds all cursors — the driver's
  /// close operation, after which a fresh open() starts from a clean
  /// ring.  Throws if a DMA is in flight: the caller must quiesce the
  /// NIC first (a completion landing on a reset slot would corrupt the
  /// new owner's buffer).
  void reset();

  /// True while any descriptor has a DMA in flight — the condition the
  /// caller must wait out before reset().
  [[nodiscard]] bool dma_in_flight() const;

  // --- NIC side ---

  /// True when the descriptor at the DMA cursor is ready to receive.
  [[nodiscard]] bool can_receive() const;

  /// Claims the descriptor at the DMA cursor for an in-flight DMA.
  /// Returns the descriptor index.  Precondition: can_receive().
  std::uint32_t begin_dma();

  /// Completes an in-flight DMA: the frame bytes have been written into
  /// the buffer; records writeback metadata.
  void complete_dma(std::uint32_t index, const RxWriteback& writeback);

  /// Direct access for the DMA engine to copy bytes into the claimed
  /// descriptor's buffer.
  [[nodiscard]] DmaBuffer& buffer_at(std::uint32_t index) {
    return descriptors_[index].buffer;
  }

  // --- statistics ---

  [[nodiscard]] std::uint32_t ready_count() const;
  [[nodiscard]] RxDescState state_at(std::uint32_t index) const {
    return descriptors_[index].state;
  }

 private:
  [[nodiscard]] std::uint32_t wrap(std::uint64_t cursor) const {
    return static_cast<std::uint32_t>(cursor % descriptors_.size());
  }

  std::vector<RxDescriptor> descriptors_;
  // Unwrapped (monotone) cursors; invariant consume_ <= dma_ <= attach_
  // <= consume_ + size().
  std::uint64_t attach_ = 0;
  std::uint64_t dma_ = 0;
  std::uint64_t consume_ = 0;
};

}  // namespace wirecap::nic
