// Hardware traffic-steering policies (§6 Related work):
//
//   * RSS — the default: Toeplitz hash of the 5-tuple through the
//     indirection table; per-flow, preserves application logic, but can
//     concentrate flow groups on one queue (the paper's load imbalance).
//   * Round-robin — spreads perfectly but breaks application logic
//     ("packets belonging to the same flow can be delivered to different
//     applications"); provided as the §2.3 strawman.
//   * Flow Director — an exact-match flow table with an RSS fallback for
//     misses; "typically not used in a packet capture environment
//     because the traffic is unidirectional" but modelled for
//     completeness.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/packet.hpp"
#include "net/rss.hpp"

namespace wirecap::nic {

class SteeringPolicy {
 public:
  virtual ~SteeringPolicy() = default;

  /// Selects the receive queue in [0, num_queues) for `packet`.
  [[nodiscard]] virtual std::uint32_t select_queue(
      const net::WirePacket& packet, std::uint32_t num_queues) = 0;
};

class RssSteering final : public SteeringPolicy {
 public:
  [[nodiscard]] std::uint32_t select_queue(const net::WirePacket& packet,
                                           std::uint32_t num_queues) override {
    return net::rss_queue(packet.flow(), num_queues);
  }
};

class RoundRobinSteering final : public SteeringPolicy {
 public:
  [[nodiscard]] std::uint32_t select_queue(const net::WirePacket&,
                                           std::uint32_t num_queues) override {
    return next_++ % num_queues;
  }

 private:
  std::uint32_t next_ = 0;
};

/// Flow Director model: "maintains a flow table in the NIC to assign
/// packets across queues"; unprogrammed flows fall back to RSS.  The
/// table has finite capacity (the 82599 supports up to 32 K entries in
/// its smallest-footprint mode); inserts beyond capacity are rejected.
class FlowDirectorSteering final : public SteeringPolicy {
 public:
  explicit FlowDirectorSteering(std::size_t capacity = 32768)
      : capacity_(capacity) {}

  /// Programs an exact-match entry.  Returns false when the table is full.
  bool program(const net::FlowKey& flow, std::uint32_t queue) {
    if (table_.size() >= capacity_ && !table_.contains(flow)) return false;
    table_[flow] = queue;
    return true;
  }

  void remove(const net::FlowKey& flow) { table_.erase(flow); }
  [[nodiscard]] std::size_t entries() const { return table_.size(); }

  [[nodiscard]] std::uint32_t select_queue(const net::WirePacket& packet,
                                           std::uint32_t num_queues) override {
    if (const auto it = table_.find(packet.flow()); it != table_.end()) {
      return it->second % num_queues;
    }
    return net::rss_queue(packet.flow(), num_queues);
  }

 private:
  std::size_t capacity_;
  std::unordered_map<net::FlowKey, std::uint32_t> table_;
};

[[nodiscard]] inline std::unique_ptr<SteeringPolicy> make_rss_steering() {
  return std::make_unique<RssSteering>();
}

}  // namespace wirecap::nic
