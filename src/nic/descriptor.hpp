// Receive/transmit descriptors — the software model of the 82599's
// descriptor format.
//
// A receive descriptor in the ready state points at an empty host
// buffer; the NIC DMA-writes the frame into the buffer and writes back
// completion metadata (length, timestamp).  A descriptor without an
// attached buffer cannot receive: "incoming packets will be dropped if
// the receive descriptors in the ready state aren't available."
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "common/units.hpp"
#include "net/flow.hpp"

namespace wirecap::nic {

/// Host memory the NIC may DMA into/out of.  The driver guarantees the
/// span stays valid while attached (in the real system this is the
/// IOMMU-mapped DMA address).
struct DmaBuffer {
  std::span<std::byte> data{};
  /// Opaque driver cookie identifying the backing cell (e.g. which
  /// chunk/cell of a ring buffer pool); returned to the driver on
  /// consume so it can track buffer ownership.
  std::uint64_t cookie = 0;

  [[nodiscard]] bool valid() const { return !data.empty(); }
};

enum class RxDescState : std::uint8_t {
  kEmpty,     // no buffer attached; cannot receive
  kReady,     // buffer attached, awaiting a packet
  kDmaInFlight,  // NIC is writing a frame into the buffer
  kFilled,    // frame written; awaiting driver consumption
};

/// Completion metadata the NIC writes back into the descriptor.
struct RxWriteback {
  std::uint32_t length = 0;      // captured bytes written to the buffer
  std::uint32_t wire_length = 0; // original frame length on the wire
  Nanos timestamp{};             // arrival time (hardware timestamp)
  std::uint64_t seq = 0;         // generator sequence (simulation aid for
                                 // conservation checks; not on real HW)
  net::FlowKey flow{};           // parsed by the NIC's RSS logic
};

struct RxDescriptor {
  RxDescState state = RxDescState::kEmpty;
  DmaBuffer buffer{};
  RxWriteback writeback{};
};

/// A transmit request: the frame to send and a completion callback fired
/// when the NIC has finished transmitting (the driver then releases or
/// recycles the buffer — zero-copy forwarding keeps the packet in the
/// ring-buffer-pool cell until this fires).
struct TxRequest {
  std::span<const std::byte> frame{};
  std::uint32_t wire_length = 0;
  std::uint64_t seq = 0;
  net::FlowKey flow{};
  std::function<void()> on_complete{};
};

}  // namespace wirecap::nic
