#include "nic/rx_ring.hpp"

#include <stdexcept>

namespace wirecap::nic {

RxRing::RxRing(std::uint32_t size) : descriptors_(size) {
  if (size == 0) throw std::invalid_argument("RxRing: size must be positive");
}

std::uint32_t RxRing::empty_slots() const {
  return static_cast<std::uint32_t>(descriptors_.size() - (attach_ - consume_));
}

bool RxRing::attach(DmaBuffer buffer) {
  if (!buffer.valid()) {
    throw std::invalid_argument("RxRing::attach: invalid buffer");
  }
  if (attach_ - consume_ >= descriptors_.size()) return false;  // ring full
  RxDescriptor& desc = descriptors_[wrap(attach_)];
  desc.state = RxDescState::kReady;
  desc.buffer = buffer;
  desc.writeback = RxWriteback{};
  ++attach_;
  return true;
}

bool RxRing::has_filled() const {
  return consume_ < dma_ &&
         descriptors_[wrap(consume_)].state == RxDescState::kFilled;
}

std::uint32_t RxRing::filled_count() const {
  std::uint32_t count = 0;
  for (std::uint64_t c = consume_; c < dma_; ++c) {
    if (descriptors_[wrap(c)].state != RxDescState::kFilled) break;
    ++count;
  }
  return count;
}

RxRing::Consumed RxRing::consume() {
  if (!has_filled()) {
    throw std::logic_error("RxRing::consume: no filled descriptor");
  }
  RxDescriptor& desc = descriptors_[wrap(consume_)];
  Consumed out{desc.buffer, desc.writeback};
  desc.state = RxDescState::kEmpty;
  desc.buffer = DmaBuffer{};
  ++consume_;
  return out;
}

const RxWriteback& RxRing::peek_writeback() const {
  if (!has_filled()) {
    throw std::logic_error("RxRing::peek_writeback: no filled descriptor");
  }
  return descriptors_[wrap(consume_)].writeback;
}

bool RxRing::dma_in_flight() const {
  for (const RxDescriptor& desc : descriptors_) {
    if (desc.state == RxDescState::kDmaInFlight) return true;
  }
  return false;
}

void RxRing::reset() {
  if (dma_in_flight()) {
    throw std::logic_error("RxRing::reset: DMA in flight");
  }
  for (RxDescriptor& desc : descriptors_) desc = RxDescriptor{};
  attach_ = dma_ = consume_ = 0;
}

bool RxRing::can_receive() const {
  return dma_ < attach_ &&
         descriptors_[wrap(dma_)].state == RxDescState::kReady;
}

std::uint32_t RxRing::begin_dma() {
  if (!can_receive()) {
    throw std::logic_error("RxRing::begin_dma: no ready descriptor");
  }
  const std::uint32_t index = wrap(dma_);
  descriptors_[index].state = RxDescState::kDmaInFlight;
  ++dma_;
  return index;
}

void RxRing::complete_dma(std::uint32_t index, const RxWriteback& writeback) {
  RxDescriptor& desc = descriptors_.at(index);
  if (desc.state != RxDescState::kDmaInFlight) {
    throw std::logic_error("RxRing::complete_dma: descriptor not in flight");
  }
  desc.state = RxDescState::kFilled;
  desc.writeback = writeback;
}

std::uint32_t RxRing::ready_count() const {
  return static_cast<std::uint32_t>(attach_ - dma_);
}

}  // namespace wirecap::nic
