// The multi-queue NIC device model: RX queues with descriptor rings fed
// by a steering policy and a DMA engine, TX queues drained onto the
// egress port at line rate, and per-queue drop accounting.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "net/packet.hpp"
#include "nic/descriptor.hpp"
#include "nic/rx_ring.hpp"
#include "nic/steering.hpp"
#include "sim/bus.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::nic {

struct NicConfig {
  std::uint32_t nic_id = 0;
  std::uint32_t num_rx_queues = 1;
  std::uint32_t num_tx_queues = 1;
  /// Descriptors per RX ring.  The 82599 has 8192 total; the paper's
  /// experiments configure each ring with 1,024.
  std::uint32_t rx_ring_size = 1024;
  std::uint32_t tx_ring_size = 1024;
  double link_bits_per_second = 10e9;
  /// Bus transactions per received packet (DMA write) and per
  /// transmitted packet (DMA read).
  double rx_transactions_per_packet = 1.0;
  double tx_transactions_per_packet = 1.0;
  /// Internal receive packet buffer (the 82599 has 512 KB).  Frames
  /// arriving while no descriptor is ready wait here; it is partitioned
  /// evenly across the configured receive queues.
  std::uint32_t rx_fifo_bytes = 512 * 1024;
  /// Storage granularity inside the packet buffer: each frame occupies a
  /// whole number of slots of this size.
  std::uint32_t rx_fifo_slot_bytes = 128;
};

struct RxQueueStats {
  std::uint64_t received = 0;   // frames DMA'd into the ring
  std::uint64_t dropped = 0;    // frames lost: no descriptor and FIFO full
  std::uint64_t bytes = 0;
  std::uint64_t fifo_buffered = 0;  // frames that waited in the RX FIFO
};

struct TxQueueStats {
  std::uint64_t transmitted = 0;
  std::uint64_t dropped = 0;    // TX ring full
};

class MultiQueueNic {
 public:
  MultiQueueNic(sim::Scheduler& scheduler, sim::IoBus& bus, NicConfig config,
                std::unique_ptr<SteeringPolicy> steering = nullptr);

  [[nodiscard]] const NicConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t nic_id() const { return config_.nic_id; }
  /// The scheduler this device lives on; engine factories use it so a
  /// NIC reference alone is enough to construct an engine.
  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }

  // --- ingress (called by the wire at frame arrival time) ---

  /// A frame arrives from the wire.  In promiscuous capture mode every
  /// frame is steered to a queue; if the queue's ring has no ready
  /// descriptor the frame is dropped and counted.
  void receive(const net::WirePacket& packet);

  // --- driver interface ---

  [[nodiscard]] RxRing& rx_ring(std::uint32_t queue) {
    return *rx_rings_.at(queue);
  }
  [[nodiscard]] const RxRing& rx_ring(std::uint32_t queue) const {
    return *rx_rings_.at(queue);
  }

  /// Registers a callback fired after each DMA completion into `queue`
  /// (the interrupt / NAPI schedule hook).
  void set_rx_interrupt(std::uint32_t queue, std::function<void()> fn);

  /// Tells the NIC that the driver refilled descriptors on `queue`:
  /// frames parked in the internal RX FIFO resume DMA.  Drivers call
  /// this after attaching buffers.
  void kick(std::uint32_t queue);

  /// Queues a frame for transmission on `queue`.  Returns false when the
  /// TX ring is full.  The frame span must stay valid until the
  /// request's on_complete fires.
  bool transmit(std::uint32_t queue, TxRequest request);

  /// Observer of frames leaving the egress port (the directly connected
  /// "packet receiver" of the paper's forwarding experiments).
  void set_egress(std::function<void(const net::WirePacket&)> fn) {
    egress_ = std::move(fn);
  }

  // --- statistics ---

  [[nodiscard]] const RxQueueStats& rx_stats(std::uint32_t queue) const {
    return rx_stats_.at(queue);
  }
  [[nodiscard]] const TxQueueStats& tx_stats(std::uint32_t queue) const {
    return tx_stats_.at(queue);
  }
  [[nodiscard]] std::uint64_t total_rx_dropped() const;
  [[nodiscard]] std::uint64_t total_received() const;
  [[nodiscard]] std::uint64_t total_transmitted() const;

 private:
  struct RxFifo {
    std::deque<net::WirePacket> frames;
    std::uint32_t used_bytes = 0;
    std::uint32_t capacity_bytes = 0;
  };

  void start_dma(std::uint32_t queue, const net::WirePacket& packet);
  [[nodiscard]] std::uint32_t fifo_footprint(
      const net::WirePacket& packet) const;
  void drain_fifo(std::uint32_t queue);
  void start_tx_drain();
  void finish_tx(std::uint32_t queue);

  sim::Scheduler& scheduler_;
  sim::IoBus& bus_;
  NicConfig config_;
  std::unique_ptr<SteeringPolicy> steering_;
  std::vector<std::unique_ptr<RxRing>> rx_rings_;
  std::vector<std::function<void()>> rx_interrupts_;
  std::vector<RxQueueStats> rx_stats_;
  std::vector<RxFifo> rx_fifos_;

  std::vector<std::deque<TxRequest>> tx_queues_;
  std::vector<TxQueueStats> tx_stats_;
  std::uint32_t tx_arbiter_ = 0;  // round-robin over TX queues
  bool tx_active_ = false;
  std::function<void(const net::WirePacket&)> egress_;
};

}  // namespace wirecap::nic
